// Enforced constraints: the paper's constraint classes as a LIVE
// integrity layer.
//
// Standard SQL can declare NOT NULL and UNIQUE; it cannot declare
// certain keys over nullable columns, nor functional dependencies —
// the DDL generator can only leave "-- requires trigger-based
// enforcement" comments. This example runs the bundled mini SQL engine,
// whose CREATE TABLE accepts CERTAIN KEY / CERTAIN FD / POSSIBLE FD
// clauses and enforces them on every INSERT and UPDATE.

#include <cstdio>

#include "sqlnf/engine/sql.h"

using namespace sqlnf;

namespace {

void Run(SqlSession* session, const char* statement)
    SQLNF_REQUIRES(writer_thread_role) {
  std::printf("sql> %s\n", statement);
  auto result = session->Execute(statement);
  if (result.ok()) {
    std::printf("%s\n\n", result->ToString().c_str());
  } else {
    std::printf("REJECTED: %s\n\n", result.status().message().c_str());
  }
}

}  // namespace

int main() {
  WriterScope writer;  // single-threaded example: main is the writer
  Database db;
  SqlSession session(&db);

  // The running example, with the business rule as a CERTAIN FD: the
  // same item from the same catalog — even a not-yet-known catalog —
  // must have one price.
  Run(&session,
      "CREATE TABLE purchase ("
      "  order_id TEXT NOT NULL,"
      "  item TEXT NOT NULL,"
      "  catalog TEXT,"
      "  price TEXT NOT NULL,"
      "  CERTAIN FD (item, catalog -> price))");

  Run(&session,
      "INSERT INTO purchase VALUES ('5299401', 'Fitbit Surge', "
      "'Amazon', '240')");
  // Weakly similar (catalog unknown) with the same price: accepted.
  Run(&session,
      "INSERT INTO purchase VALUES ('5299401', 'Fitbit Surge', NULL, "
      "'240')");
  // Weakly similar with a DIFFERENT price: the c-FD fires (this is
  // Figure 4's inconsistency, stopped at write time).
  Run(&session,
      "INSERT INTO purchase VALUES ('7485113', 'Fitbit Surge', NULL, "
      "'200')");
  Run(&session,
      "INSERT INTO purchase VALUES ('7485113', 'Dora Doll', 'Kingtoys', "
      "'25')");

  // A half-hearted price change violates the FD; the engine rejects the
  // whole statement (update anomaly prevented)...
  Run(&session,
      "UPDATE purchase SET price = '250' WHERE order_id = '5299401' AND "
      "catalog = 'Amazon'");
  // ...changing every occurrence together is consistent.
  Run(&session, "UPDATE purchase SET price = '250' WHERE item = "
                "'Fitbit Surge'");

  Run(&session, "SELECT * FROM purchase");

  // Certain keys over nullable columns — the constraint Example 1
  // needed and SQL cannot declare.
  Run(&session,
      "CREATE TABLE employee ("
      "  name TEXT NOT NULL,"
      "  dob TEXT,"
      "  appointment TEXT NOT NULL,"
      "  CERTAIN FD (name, dob -> dob))");
  Run(&session,
      "INSERT INTO employee VALUES ('John Smith', '19/05/1969', "
      "'DB Admin')");
  Run(&session,
      "INSERT INTO employee VALUES ('John Smith', '01/04/1971', "
      "'Finance Manager')");
  // A John Smith with unknown dob is not uniquely identifiable: the
  // internal c-FD nd ->w d rejects the row.
  Run(&session,
      "INSERT INTO employee VALUES ('John Smith', NULL, 'Programmer')");
  // A distinct person with unknown dob is fine.
  Run(&session,
      "INSERT INTO employee VALUES ('James Brown', NULL, 'Programmer')");
  Run(&session, "SELECT * FROM employee");
  return 0;
}
