// Quickstart: the sqlnf public API in ~80 lines.
//
//   1. declare a schema (attributes + NOT NULL columns),
//   2. state constraints (possible/certain FDs and keys),
//   3. reason: implication, normal forms,
//   4. normalize: Algorithm 3, losslessness,
//   5. emit SQL DDL.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "sqlnf/constraints/parser.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/engine/ddl.h"
#include "sqlnf/normalform/normal_forms.h"
#include "sqlnf/reasoning/implication.h"

using namespace sqlnf;  // examples only; library code never does this

int main() {
  // 1. A purchase table: order_id, item, catalog, price. The catalog
  //    may be unknown (nullable); everything else is NOT NULL.
  auto schema_result =
      TableSchema::Make("purchase", {"order_id", "item", "catalog", "price"},
                        {"order_id", "item", "price"});
  if (!schema_result.ok()) {
    std::printf("schema error: %s\n",
                schema_result.status().ToString().c_str());
    return 1;
  }
  TableSchema schema = std::move(schema_result).value();

  // 2. Business rule: the same item from the same catalog has one
  //    price, even when the catalog is only partially known — a
  //    CERTAIN functional dependency (weak similarity on the left).
  auto sigma = ParseConstraintSet(
      schema, "item,catalog ->w item,catalog,price");
  SchemaDesign design{schema, std::move(sigma).value()};

  // 3. Reasoning: is the FD's LHS a certain key? Is the design in
  //    SQL-BCNF (equivalently: free of value redundancy, Theorem 15)?
  Implication implication(design.table, design.sigma);
  KeyConstraint candidate = KeyConstraint::Certain(
      ParseAttributeSet(schema, "item,catalog").value());
  std::printf("Sigma implies c<item,catalog>: %s\n",
              implication.Implies(candidate) ? "yes" : "no");
  auto vrnf = IsVrnf(design);
  std::printf("design is in VRNF:            %s\n",
              *vrnf ? "yes" : "no (instances can store redundant values)");

  // 4. Normalize with Algorithm 3 (input: total FDs + certain keys).
  auto result = VrnfDecompose(design);
  if (!result.ok()) {
    std::printf("decompose error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nAlgorithm 3 decomposition: %s\n",
              result->decomposition.ToString(schema).c_str());
  for (const VrnfStep& step : result->steps) {
    std::printf("  %s\n", step.ToString(schema).c_str());
  }

  // 5. SQL DDL for the normalized schema.
  std::printf("\n%s", EmitDecompositionDdl(design, *result).c_str());
  return 0;
}
