// Mining workflow: generate a small synthetic corpus, mine each table
// under all four FD semantics, classify (Section 7's nn/p/c/t/λ), and
// explain one implication axiomaticlly — a tour of the analysis half of
// the library.

#include <cstdio>

#include "sqlnf/datagen/generator.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/reasoning/axioms.h"
#include "sqlnf/reasoning/cover.h"
#include "sqlnf/util/text_table.h"

using namespace sqlnf;

int main() {
  // A small 2-tables-per-profile corpus (the full 130-table corpus is
  // exercised by bench/bench_mining_counts).
  std::vector<CorpusProfile> profiles = DefaultCorpusProfiles();
  for (auto& p : profiles) p.num_tables = 2;
  auto corpus = BuildCorpus(profiles, 2016);
  if (!corpus.ok()) {
    std::printf("%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  TextTable tt;
  tt.SetHeader({"table", "cols", "rows", "nn", "p", "c", "t", "lambda"});
  int total_lambda = 0;
  for (const Table& table : *corpus) {
    DiscoveryOptions options;
    options.hitting.max_size = 4;
    auto mined = DiscoverConstraints(table, options);
    if (!mined.ok()) continue;
    FdClassification cls = ClassifyDiscovered(table, *mined);
    total_lambda += cls.lambda_count;
    tt.AddRow({table.schema().name(), std::to_string(table.num_columns()),
               std::to_string(table.num_rows()),
               std::to_string(cls.nn_count), std::to_string(cls.p_count),
               std::to_string(cls.c_count), std::to_string(cls.t_count),
               std::to_string(cls.lambda_count)});
  }
  std::printf("%s\n", tt.ToString().c_str());
  std::printf("lambda-FDs across the mini corpus: %d\n\n", total_lambda);

  // Zoom into one table: show a reduced cover of its mined c-FDs and an
  // axiomatic explanation for one consequence.
  const Table& table = corpus->front();
  auto mined = DiscoverConstraints(table).value();
  TableSchema schema = table.schema();
  (void)schema.SetNfs(mined.null_free_columns);
  ConstraintSet sigma;
  for (const auto& fd : mined.c_fds) sigma.AddUniqueFd(fd);
  for (const auto& key : mined.c_keys) sigma.AddUniqueKey(key);
  ConstraintSet reduced = ReducedCover(schema, sigma);
  std::printf("table %s: mined %zu constraints, reduced cover has %zu:\n",
              schema.name().c_str(), sigma.size(), reduced.size());
  for (const Constraint& c : reduced.All()) {
    std::printf("  %s\n", ConstraintToString(c, schema).c_str());
  }

  // Derive something and print the proof (only feasible on few
  // attributes; fall back gracefully otherwise).
  if (!reduced.fds().empty() && schema.num_attributes() <= 6) {
    const FunctionalDependency& fd = reduced.fds().front();
    FunctionalDependency augmented = fd;
    augmented.lhs = schema.all();
    auto engine = AxiomEngine::Saturate(schema, reduced);
    if (engine.ok()) {
      auto proof = engine->Explain(Constraint(augmented));
      if (proof.ok()) {
        std::printf("\nwhy %s follows (axioms of Tables 1-3):\n%s",
                    augmented.ToString(schema).c_str(), proof->c_str());
      }
    }
  }
  return 0;
}
