// The paper's running example, end to end (Figures 1-5, Example 3,
// Section 6): shows why possible FDs cannot drive SQL decomposition,
// why certain FDs can, where redundancy hides, and what Algorithm 3
// produces.

#include <cstdio>

#include "sqlnf/constraints/parser.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/normalform/construction.h"
#include "sqlnf/normalform/normal_forms.h"
#include "sqlnf/normalform/redundancy.h"

using namespace sqlnf;

namespace {

Table MakePurchase(const TableSchema& schema) {
  Table t(schema);
  auto add = [&](const char* o, const char* i, const char* c,
                 const char* p) {
    Value catalog = c == nullptr ? Value::Null() : Value::Str(c);
    (void)t.AddRow(Tuple({Value::Str(o), Value::Str(i), catalog,
                          Value::Str(p)}));
  };
  // Figure 5's instance: one catalog unknown, prices constrained.
  add("5299401", "Fitbit Surge", "Amazon", "240");
  add("5299401", "Fitbit Surge", nullptr, "240");
  add("7485113", "Fitbit Surge", "Amazon", "240");
  add("7485113", "Dora Doll", "Kingtoys", "25");
  return t;
}

}  // namespace

int main() {
  TableSchema schema =
      TableSchema::Make("purchase",
                        {"order_id", "item", "catalog", "price"},
                        {"order_id", "item", "price"})
          .value();
  Table purchase = MakePurchase(schema);
  std::printf("%s\n", purchase.ToString().c_str());

  FunctionalDependency p_fd =
      ParseFd(schema, "item,catalog ->s price").value();
  FunctionalDependency c_fd =
      ParseFd(schema, "item,catalog ->w price").value();
  std::printf("p-FD %s holds: %s\n", p_fd.ToString(schema).c_str(),
              Satisfies(purchase, p_fd) ? "yes" : "no");
  std::printf("c-FD %s holds: %s\n\n", c_fd.ToString(schema).c_str(),
              Satisfies(purchase, c_fd) ? "yes" : "no");

  // Redundancy (Definition 4): which price cells cannot be changed?
  ConstraintSet sigma;
  sigma.AddFd(c_fd);
  auto price = schema.FindAttribute("price").value();
  for (int row = 0; row < purchase.num_rows(); ++row) {
    Position pos{row, price};
    std::printf("price in row %d (%s) redundant: %s\n", row,
                purchase.row(row)[price].ToString().c_str(),
                IsRedundantPosition(purchase, sigma, pos) ? "YES" : "no");
  }

  // The schema is not in RFNF; a two-tuple witness exists (Lemma 2).
  SchemaDesign design{schema, sigma};
  std::printf("\nschema in RFNF (= BCNF, Theorem 9): %s\n",
              IsRfnf(design) ? "yes" : "no");
  auto witness = MakeRedundancyWitness(design);
  if (witness.ok()) {
    std::printf("construction-lemma witness instance:\n%s",
                witness->instance.ToString().c_str());
    std::printf("redundant position: row %d, column %s\n\n",
                witness->position.row,
                schema.attribute_name(witness->position.column).c_str());
  }

  // Decompose by the TOTAL form of the c-FD (Algorithm 3).
  SchemaDesign total_design{
      schema,
      ParseConstraintSet(schema,
                         "item,catalog ->w item,catalog,price")
          .value()};
  VrnfResult vrnf = VrnfDecompose(total_design).value();
  std::printf("Algorithm 3: %s\n",
              vrnf.decomposition.ToString(schema).c_str());

  auto tables = ProjectAll(purchase, vrnf.decomposition).value();
  for (const Table& t : tables) std::printf("%s\n", t.ToString().c_str());

  bool lossless =
      IsLosslessForInstance(purchase, vrnf.decomposition).value();
  std::printf("equality join reconstructs the original: %s\n",
              lossless ? "yes (Theorem 11)" : "NO");

  // Contrast: the p-FD-driven decomposition is lossy on instances with
  // ⊥ in the LHS (Figure 4's lesson).
  Table lossy(schema);
  (void)lossy.AddRow(Tuple({Value::Str("5299401"),
                            Value::Str("Fitbit Surge"), Value::Null(),
                            Value::Str("240")}));
  (void)lossy.AddRow(Tuple({Value::Str("7485113"),
                            Value::Str("Fitbit Surge"), Value::Null(),
                            Value::Str("200")}));
  std::printf("\nFigure 4 instance satisfies the p-FD: %s\n",
              Satisfies(lossy, p_fd) ? "yes" : "no");
  Decomposition by_pfd = DecomposeByFd(schema, p_fd);
  std::printf("its p-FD decomposition is lossless: %s (expected: no)\n",
              IsLosslessForInstance(lossy, by_pfd).value() ? "yes" : "no");
  return 0;
}
