// Schema advisor: CSV in → mined constraints → VRNF normalization →
// SQL DDL out.
//
// Usage:
//   ./examples/schema_advisor [file.csv]
//
// Without an argument a bundled demo dataset (employee assignments) is
// analyzed. With a CSV file (header row; the literal token NULL denotes
// a missing value), the advisor mines certain FDs and keys from the
// data, selects the λ-FDs usable for decomposition, runs Algorithm 3,
// reports the redundancy eliminated, and prints CREATE TABLE statements
// for the normalized schema.

#include <cstdio>
#include <string>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/report.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/engine/csv.h"
#include "sqlnf/engine/ddl.h"

using namespace sqlnf;

namespace {

const char* kDemoCsv =
    "emp,dept,mgr,office,site\n"
    "e01,sales,diaz,o1,berlin\n"
    "e02,sales,diaz,o1,berlin\n"
    "e03,sales,diaz,o2,berlin\n"
    "e04,eng,khan,o3,berlin\n"
    "e05,eng,khan,o3,berlin\n"
    "e06,eng,khan,o4,munich\n"
    "e07,ops,roy,o5,munich\n"
    "e08,ops,roy,o5,NULL\n"
    "e09,ops,roy,o6,munich\n"
    "e10,legal,chen,o7,munich\n";

int Advise(const Table& table) {
  std::printf("input: %s — %d rows x %d columns\n\n",
              table.schema().name().c_str(), table.num_rows(),
              table.num_columns());

  // 1. Mine.
  DiscoveryOptions options;
  options.hitting.max_size = 4;
  auto mined = DiscoverConstraints(table, options);
  if (!mined.ok()) {
    std::printf("mining failed: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  TableSchema schema = table.schema();
  if (auto st = schema.SetNfs(mined->null_free_columns); !st.ok()) {
    std::printf("%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("null-free columns (inferred NOT NULL): %s\n",
              schema.FormatSet(schema.nfs()).c_str());
  std::printf("mined: %zu c-FDs, %zu c-keys, %zu p-keys\n",
              mined->c_fds.size(), mined->c_keys.size(),
              mined->p_keys.size());

  // 2. Classify; keep the λ-FDs (total, external RHS, LHS not a key).
  FdClassification cls = ClassifyDiscovered(table, *mined);
  std::printf("total FDs: %d, of which lambda (decomposition-worthy): %d\n",
              cls.t_count, cls.lambda_count);
  ConstraintSet sigma;
  for (const auto& fd : cls.lambda_fds) {
    std::printf("  lambda: %s (relative projection size %.0f%%)\n",
                fd.ToString(schema).c_str(),
                100 * RelativeProjectionSize(table, fd).ValueOr(1.0));
    sigma.AddUniqueFd(fd);
  }
  for (const auto& key : mined->c_keys) sigma.AddUniqueKey(key);
  if (sigma.fds().empty()) {
    std::printf("\nnothing to normalize: no usable lambda-FDs mined.\n");
    return 0;
  }

  // 3. Normalize.
  SchemaDesign design{schema, sigma};
  auto vrnf = VrnfDecompose(design);
  if (!vrnf.ok()) {
    std::printf("decomposition failed: %s\n",
                vrnf.status().ToString().c_str());
    return 1;
  }
  std::printf("\ndecomposition: %s\n",
              vrnf->decomposition.ToString(schema).c_str());

  // 4. Verify and report.
  auto lossless = IsLosslessForInstance(table, vrnf->decomposition);
  std::printf("lossless on the input data: %s\n",
              lossless.ok() && *lossless ? "yes" : "NO");
  auto report = ReportDecomposition(table, vrnf->decomposition);
  if (report.ok()) {
    std::printf("%s\n", report->ToString(schema).c_str());
  }

  // 5. DDL.
  std::printf("%s", EmitDecompositionDdl(design, *vrnf).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Result<Table> table = argc > 1 ? ReadCsvFile(argv[1])
                                 : ReadCsvString(kDemoCsv);
  if (!table.ok()) {
    std::printf("cannot read input: %s\n",
                table.status().ToString().c_str());
    return 1;
  }
  return Advise(*table);
}
