# Empty compiler generated dependencies file for sqlnf_cli.
# This may be replaced when dependencies are built.
