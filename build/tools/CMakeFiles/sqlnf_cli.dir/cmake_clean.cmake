file(REMOVE_RECURSE
  "CMakeFiles/sqlnf_cli.dir/sqlnf_cli.cc.o"
  "CMakeFiles/sqlnf_cli.dir/sqlnf_cli.cc.o.d"
  "sqlnf"
  "sqlnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlnf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
