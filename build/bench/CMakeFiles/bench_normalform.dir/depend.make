# Empty dependencies file for bench_normalform.
# This may be replaced when dependencies are built.
