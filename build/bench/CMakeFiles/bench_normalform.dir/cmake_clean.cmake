file(REMOVE_RECURSE
  "CMakeFiles/bench_normalform.dir/bench_normalform.cc.o"
  "CMakeFiles/bench_normalform.dir/bench_normalform.cc.o.d"
  "bench_normalform"
  "bench_normalform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_normalform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
