file(REMOVE_RECURSE
  "CMakeFiles/bench_contractor.dir/bench_contractor.cc.o"
  "CMakeFiles/bench_contractor.dir/bench_contractor.cc.o.d"
  "bench_contractor"
  "bench_contractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
