# Empty dependencies file for bench_validation_perf.
# This may be replaced when dependencies are built.
