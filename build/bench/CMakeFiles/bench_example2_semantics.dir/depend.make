# Empty dependencies file for bench_example2_semantics.
# This may be replaced when dependencies are built.
