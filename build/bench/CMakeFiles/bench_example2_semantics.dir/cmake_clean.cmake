file(REMOVE_RECURSE
  "CMakeFiles/bench_example2_semantics.dir/bench_example2_semantics.cc.o"
  "CMakeFiles/bench_example2_semantics.dir/bench_example2_semantics.cc.o.d"
  "bench_example2_semantics"
  "bench_example2_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example2_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
