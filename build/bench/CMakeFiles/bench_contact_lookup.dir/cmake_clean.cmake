file(REMOVE_RECURSE
  "CMakeFiles/bench_contact_lookup.dir/bench_contact_lookup.cc.o"
  "CMakeFiles/bench_contact_lookup.dir/bench_contact_lookup.cc.o.d"
  "bench_contact_lookup"
  "bench_contact_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contact_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
