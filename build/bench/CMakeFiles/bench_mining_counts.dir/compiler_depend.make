# Empty compiler generated dependencies file for bench_mining_counts.
# This may be replaced when dependencies are built.
