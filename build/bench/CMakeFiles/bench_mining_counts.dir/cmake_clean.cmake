file(REMOVE_RECURSE
  "CMakeFiles/bench_mining_counts.dir/bench_mining_counts.cc.o"
  "CMakeFiles/bench_mining_counts.dir/bench_mining_counts.cc.o.d"
  "bench_mining_counts"
  "bench_mining_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mining_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
