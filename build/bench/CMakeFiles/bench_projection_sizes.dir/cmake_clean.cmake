file(REMOVE_RECURSE
  "CMakeFiles/bench_projection_sizes.dir/bench_projection_sizes.cc.o"
  "CMakeFiles/bench_projection_sizes.dir/bench_projection_sizes.cc.o.d"
  "bench_projection_sizes"
  "bench_projection_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_projection_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
