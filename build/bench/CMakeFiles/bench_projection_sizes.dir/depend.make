# Empty dependencies file for bench_projection_sizes.
# This may be replaced when dependencies are built.
