file(REMOVE_RECURSE
  "libsqlnf.a"
)
