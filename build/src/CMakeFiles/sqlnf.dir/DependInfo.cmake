
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlnf/constraints/constraint.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/constraints/constraint.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/constraints/constraint.cc.o.d"
  "/root/repo/src/sqlnf/constraints/parser.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/constraints/parser.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/constraints/parser.cc.o.d"
  "/root/repo/src/sqlnf/constraints/satisfies.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/constraints/satisfies.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/constraints/satisfies.cc.o.d"
  "/root/repo/src/sqlnf/constraints/serialize.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/constraints/serialize.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/constraints/serialize.cc.o.d"
  "/root/repo/src/sqlnf/core/attribute_set.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/core/attribute_set.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/core/attribute_set.cc.o.d"
  "/root/repo/src/sqlnf/core/schema.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/core/schema.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/core/schema.cc.o.d"
  "/root/repo/src/sqlnf/core/similarity.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/core/similarity.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/core/similarity.cc.o.d"
  "/root/repo/src/sqlnf/core/table.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/core/table.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/core/table.cc.o.d"
  "/root/repo/src/sqlnf/core/value.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/core/value.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/core/value.cc.o.d"
  "/root/repo/src/sqlnf/datagen/generator.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/datagen/generator.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/datagen/generator.cc.o.d"
  "/root/repo/src/sqlnf/datagen/lmrp.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/datagen/lmrp.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/datagen/lmrp.cc.o.d"
  "/root/repo/src/sqlnf/datagen/uci.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/datagen/uci.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/datagen/uci.cc.o.d"
  "/root/repo/src/sqlnf/decomposition/bcnf_decompose.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/bcnf_decompose.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/bcnf_decompose.cc.o.d"
  "/root/repo/src/sqlnf/decomposition/chase.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/chase.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/chase.cc.o.d"
  "/root/repo/src/sqlnf/decomposition/decomposition.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/decomposition.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/decomposition.cc.o.d"
  "/root/repo/src/sqlnf/decomposition/dependency_preservation.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/dependency_preservation.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/dependency_preservation.cc.o.d"
  "/root/repo/src/sqlnf/decomposition/lossless.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/lossless.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/lossless.cc.o.d"
  "/root/repo/src/sqlnf/decomposition/report.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/report.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/report.cc.o.d"
  "/root/repo/src/sqlnf/decomposition/three_nf.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/three_nf.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/three_nf.cc.o.d"
  "/root/repo/src/sqlnf/decomposition/vrnf_decompose.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/vrnf_decompose.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/decomposition/vrnf_decompose.cc.o.d"
  "/root/repo/src/sqlnf/discovery/agree_sets.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/agree_sets.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/agree_sets.cc.o.d"
  "/root/repo/src/sqlnf/discovery/approximate.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/approximate.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/approximate.cc.o.d"
  "/root/repo/src/sqlnf/discovery/discover.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/discover.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/discover.cc.o.d"
  "/root/repo/src/sqlnf/discovery/hitting_set.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/hitting_set.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/hitting_set.cc.o.d"
  "/root/repo/src/sqlnf/discovery/partition.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/partition.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/partition.cc.o.d"
  "/root/repo/src/sqlnf/discovery/tane.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/tane.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/discovery/tane.cc.o.d"
  "/root/repo/src/sqlnf/engine/catalog.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/catalog.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/catalog.cc.o.d"
  "/root/repo/src/sqlnf/engine/csv.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/csv.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/csv.cc.o.d"
  "/root/repo/src/sqlnf/engine/ddl.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/ddl.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/ddl.cc.o.d"
  "/root/repo/src/sqlnf/engine/enforcer.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/enforcer.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/enforcer.cc.o.d"
  "/root/repo/src/sqlnf/engine/relops.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/relops.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/relops.cc.o.d"
  "/root/repo/src/sqlnf/engine/sql.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/sql.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/sql.cc.o.d"
  "/root/repo/src/sqlnf/engine/validate.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/validate.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/engine/validate.cc.o.d"
  "/root/repo/src/sqlnf/normalform/armstrong.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/normalform/armstrong.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/normalform/armstrong.cc.o.d"
  "/root/repo/src/sqlnf/normalform/construction.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/normalform/construction.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/normalform/construction.cc.o.d"
  "/root/repo/src/sqlnf/normalform/normal_forms.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/normalform/normal_forms.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/normalform/normal_forms.cc.o.d"
  "/root/repo/src/sqlnf/normalform/projection.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/normalform/projection.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/normalform/projection.cc.o.d"
  "/root/repo/src/sqlnf/normalform/redundancy.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/normalform/redundancy.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/normalform/redundancy.cc.o.d"
  "/root/repo/src/sqlnf/reasoning/axioms.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/reasoning/axioms.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/reasoning/axioms.cc.o.d"
  "/root/repo/src/sqlnf/reasoning/closure.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/reasoning/closure.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/reasoning/closure.cc.o.d"
  "/root/repo/src/sqlnf/reasoning/cover.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/reasoning/cover.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/reasoning/cover.cc.o.d"
  "/root/repo/src/sqlnf/reasoning/implication.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/reasoning/implication.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/reasoning/implication.cc.o.d"
  "/root/repo/src/sqlnf/related/alt_semantics.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/related/alt_semantics.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/related/alt_semantics.cc.o.d"
  "/root/repo/src/sqlnf/related/possible_worlds.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/related/possible_worlds.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/related/possible_worlds.cc.o.d"
  "/root/repo/src/sqlnf/util/rng.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/util/rng.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/util/rng.cc.o.d"
  "/root/repo/src/sqlnf/util/status.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/util/status.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/util/status.cc.o.d"
  "/root/repo/src/sqlnf/util/string_util.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/util/string_util.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/util/string_util.cc.o.d"
  "/root/repo/src/sqlnf/util/text_table.cc" "src/CMakeFiles/sqlnf.dir/sqlnf/util/text_table.cc.o" "gcc" "src/CMakeFiles/sqlnf.dir/sqlnf/util/text_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
