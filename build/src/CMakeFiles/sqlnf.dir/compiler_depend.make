# Empty compiler generated dependencies file for sqlnf.
# This may be replaced when dependencies are built.
