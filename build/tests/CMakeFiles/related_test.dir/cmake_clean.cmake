file(REMOVE_RECURSE
  "CMakeFiles/related_test.dir/related_test.cc.o"
  "CMakeFiles/related_test.dir/related_test.cc.o.d"
  "related_test"
  "related_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
