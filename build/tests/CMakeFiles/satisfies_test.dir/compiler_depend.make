# Empty compiler generated dependencies file for satisfies_test.
# This may be replaced when dependencies are built.
