file(REMOVE_RECURSE
  "CMakeFiles/satisfies_test.dir/satisfies_test.cc.o"
  "CMakeFiles/satisfies_test.dir/satisfies_test.cc.o.d"
  "satisfies_test"
  "satisfies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satisfies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
