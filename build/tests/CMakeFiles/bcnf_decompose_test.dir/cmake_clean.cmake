file(REMOVE_RECURSE
  "CMakeFiles/bcnf_decompose_test.dir/bcnf_decompose_test.cc.o"
  "CMakeFiles/bcnf_decompose_test.dir/bcnf_decompose_test.cc.o.d"
  "bcnf_decompose_test"
  "bcnf_decompose_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcnf_decompose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
