# Empty compiler generated dependencies file for bcnf_decompose_test.
# This may be replaced when dependencies are built.
