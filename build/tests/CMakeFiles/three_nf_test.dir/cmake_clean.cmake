file(REMOVE_RECURSE
  "CMakeFiles/three_nf_test.dir/three_nf_test.cc.o"
  "CMakeFiles/three_nf_test.dir/three_nf_test.cc.o.d"
  "three_nf_test"
  "three_nf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_nf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
