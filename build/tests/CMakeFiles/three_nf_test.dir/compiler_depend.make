# Empty compiler generated dependencies file for three_nf_test.
# This may be replaced when dependencies are built.
