file(REMOVE_RECURSE
  "CMakeFiles/normal_forms_test.dir/normal_forms_test.cc.o"
  "CMakeFiles/normal_forms_test.dir/normal_forms_test.cc.o.d"
  "normal_forms_test"
  "normal_forms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normal_forms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
