# Empty compiler generated dependencies file for vrnf_decompose_test.
# This may be replaced when dependencies are built.
