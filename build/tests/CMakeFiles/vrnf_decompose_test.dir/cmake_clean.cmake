file(REMOVE_RECURSE
  "CMakeFiles/vrnf_decompose_test.dir/vrnf_decompose_test.cc.o"
  "CMakeFiles/vrnf_decompose_test.dir/vrnf_decompose_test.cc.o.d"
  "vrnf_decompose_test"
  "vrnf_decompose_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrnf_decompose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
