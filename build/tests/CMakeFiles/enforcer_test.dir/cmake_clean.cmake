file(REMOVE_RECURSE
  "CMakeFiles/enforcer_test.dir/enforcer_test.cc.o"
  "CMakeFiles/enforcer_test.dir/enforcer_test.cc.o.d"
  "enforcer_test"
  "enforcer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enforcer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
