# Empty compiler generated dependencies file for preservation_test.
# This may be replaced when dependencies are built.
