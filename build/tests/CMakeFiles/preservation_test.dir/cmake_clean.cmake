file(REMOVE_RECURSE
  "CMakeFiles/preservation_test.dir/preservation_test.cc.o"
  "CMakeFiles/preservation_test.dir/preservation_test.cc.o.d"
  "preservation_test"
  "preservation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
