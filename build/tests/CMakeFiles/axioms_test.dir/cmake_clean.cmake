file(REMOVE_RECURSE
  "CMakeFiles/axioms_test.dir/axioms_test.cc.o"
  "CMakeFiles/axioms_test.dir/axioms_test.cc.o.d"
  "axioms_test"
  "axioms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axioms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
