# Empty dependencies file for redundancy_test.
# This may be replaced when dependencies are built.
