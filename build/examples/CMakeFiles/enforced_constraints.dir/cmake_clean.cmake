file(REMOVE_RECURSE
  "CMakeFiles/enforced_constraints.dir/enforced_constraints.cpp.o"
  "CMakeFiles/enforced_constraints.dir/enforced_constraints.cpp.o.d"
  "enforced_constraints"
  "enforced_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enforced_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
