# Empty dependencies file for enforced_constraints.
# This may be replaced when dependencies are built.
