# Empty compiler generated dependencies file for purchase_normalization.
# This may be replaced when dependencies are built.
