file(REMOVE_RECURSE
  "CMakeFiles/purchase_normalization.dir/purchase_normalization.cpp.o"
  "CMakeFiles/purchase_normalization.dir/purchase_normalization.cpp.o.d"
  "purchase_normalization"
  "purchase_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purchase_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
