file(REMOVE_RECURSE
  "CMakeFiles/mining_workflow.dir/mining_workflow.cpp.o"
  "CMakeFiles/mining_workflow.dir/mining_workflow.cpp.o.d"
  "mining_workflow"
  "mining_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
