# Empty dependencies file for mining_workflow.
# This may be replaced when dependencies are built.
