// sqlnf — command-line front end for the library.
//
//   sqlnf check <design-file>
//       Normal-form report: BCNF/RFNF, SQL-BCNF/VRNF, violations, and a
//       construction-lemma witness instance for the first violation.
//   sqlnf normalize <design-file>
//       Algorithm 3 (after NormalizeToTotal): decomposition, dependency
//       preservation, and CREATE TABLE statements.
//   sqlnf implies <design-file> '<constraint>'
//       Decide Σ ⊨ φ; prints an axiomatic proof (small schemas) or a
//       counterexample instance.
//   sqlnf mine <csv-file>
//       Discover keys and FDs from data; classify (nn/p/c/t/λ).
//   sqlnf advise <csv-file>
//       mine + normalize + DDL, end to end.
//   sqlnf validate <csv-file> '<constraints>' [--threads N]
//       Validate a constraint set against the data with the columnar
//       dictionary-encoded kernels; prints a witness per violation.
//   sqlnf query <csv-file> '<sql>'
//       Load a CSV into a table named after the file stem and run SQL
//       against it on the columnar executor.
//   sqlnf shell [script.sql]
//       Run SQL (with the CERTAIN KEY / CERTAIN FD extensions, enforced
//       on every write) from a script file or interactively from stdin.
//   sqlnf serve [--port P] [--workers N] [--threads N] [csv...]
//       HTTP front door: load the CSVs and expose /query /validate
//       /discover /normalize /health as JSON endpoints (net/service.h).
//   sqlnf corpus <name> <out.csv>
//       Write a built-in corpus (contractor, uci_adult, ...) to a CSV.
//
// query and validate are thin renderers over the same session layer
// the server uses (engine/session.h): one execution pipeline, two
// transports.
//
// Design file format: see sqlnf/constraints/serialize.h.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sqlnf/constraints/parser.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/constraints/serialize.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/decomposition/dependency_preservation.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/report.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/datagen/uci.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/engine/csv.h"
#include "sqlnf/engine/ddl.h"
#include "sqlnf/engine/session.h"
#include "sqlnf/engine/sql.h"
#include "sqlnf/engine/validate.h"
#include "sqlnf/net/server.h"
#include "sqlnf/net/service.h"
#include "sqlnf/normalform/construction.h"
#include "sqlnf/normalform/normal_forms.h"
#include "sqlnf/reasoning/axioms.h"
#include "sqlnf/reasoning/implication.h"

namespace sqlnf {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Failure with a script position: "error: ParseError: ... (statement
/// 2, line 3:14)" — the detail is assembled by the session layer.
int FailDetail(const ErrorDetail& detail) {
  std::fprintf(stderr, "error: %s\n", detail.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: sqlnf <command> <args>\n"
      "  check <design-file>                normal-form report\n"
      "  normalize <design-file>            Algorithm 3 + DDL\n"
      "  implies <design-file> <constraint> decide implication\n"
      "  mine <csv-file>                    discover constraints\n"
      "  advise <csv-file>                  mine + normalize + DDL\n"
      "  validate <csv-file> <constraints> [--threads N]\n"
      "                                     columnar constraint check\n"
      "  query <csv-file> <sql>             run SQL against a CSV\n"
      "  shell [script.sql]                 SQL with enforced c-keys/FDs\n"
      "  serve [--port P] [--workers N] [--threads N] [csv...]\n"
      "                                     HTTP API (/query /validate\n"
      "                                     /discover /normalize /health)\n"
      "  corpus <name> <out.csv>            write a built-in corpus\n"
      "                                     (contractor, uci_breast,\n"
      "                                     uci_adult, uci_hepatitis)\n");
  return 2;
}

int CmdShell(const std::string& path) {
  WriterScope writer;  // the CLI is single-threaded: it owns the writer role
  Database db;
  SqlSession session(&db);
  if (!path.empty()) {
    std::ifstream in(path);
    if (!in) return Fail(Status::IoError("cannot open " + path));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto results = session.ExecuteScript(buffer.str());
    if (!results.ok()) return Fail(results.status());
    for (const QueryResult& result : *results) {
      std::printf("%s\n", result.ToString().c_str());
    }
    return 0;
  }
  // Interactive: one statement per ';'-terminated chunk from stdin.
  std::string buffer;
  std::string line;
  std::printf("sqlnf shell — SQL with CERTAIN KEY / CERTAIN FD "
              "enforcement. Ctrl-D to exit.\n> ");
  while (std::getline(std::cin, line)) {
    buffer += line + "\n";
    if (line.find(';') != std::string::npos) {
      auto results = session.ExecuteScript(buffer);
      if (!results.ok()) {
        std::printf("error: %s\n", results.status().ToString().c_str());
      } else {
        for (const QueryResult& result : *results) {
          std::printf("%s\n", result.ToString().c_str());
        }
      }
      buffer.clear();
    }
    std::printf("> ");
  }
  return 0;
}

int CmdCheck(const std::string& path) {
  auto design = ReadDesignFile(path);
  if (!design.ok()) return Fail(design.status());
  std::printf("%s\n\n", design->ToString().c_str());

  auto violation = FindBcnfViolation(*design);
  std::printf("BCNF / RFNF (Theorems 6, 9): %s\n",
              violation ? "NO" : "yes");
  if (violation) {
    std::printf("  violation: %s\n",
                violation->ToString(design->table).c_str());
    auto witness = MakeRedundancyWitness(*design);
    if (witness.ok()) {
      std::printf(
          "  witness instance (redundant at row %d, column %s):\n%s",
          witness->position.row,
          design->table.attribute_name(witness->position.column).c_str(),
          witness->instance.ToString().c_str());
    }
  }
  auto sql_bcnf = IsSqlBcnf(*design);
  if (sql_bcnf.ok()) {
    std::printf("SQL-BCNF / VRNF (Theorems 14, 15): %s\n",
                *sql_bcnf ? "yes" : "NO");
  } else {
    std::printf("SQL-BCNF / VRNF: n/a (%s)\n",
                sql_bcnf.status().message().c_str());
  }
  return 0;
}

int CmdNormalize(const std::string& path) {
  auto design = ReadDesignFile(path);
  if (!design.ok()) return Fail(design.status());
  auto total = NormalizeToTotal(design->table, design->sigma);
  if (!total.ok()) return Fail(total.status());
  SchemaDesign normalized{design->table, std::move(total).value()};

  auto result = VrnfDecompose(normalized);
  if (!result.ok()) return Fail(result.status());
  std::printf("decomposition: %s\n",
              result->decomposition.ToString(design->table).c_str());
  for (const VrnfStep& step : result->steps) {
    std::printf("  %s\n", step.ToString(design->table).c_str());
  }
  auto preserving =
      IsDependencyPreserving(normalized, result->decomposition);
  if (preserving.ok()) {
    std::printf("dependency preserving: %s\n",
                *preserving ? "yes" : "NO (cross-table checks needed)");
  }
  std::printf("\n%s", EmitDecompositionDdl(normalized, *result).c_str());
  return 0;
}

int CmdImplies(const std::string& path, const std::string& constraint_text) {
  auto design = ReadDesignFile(path);
  if (!design.ok()) return Fail(design.status());
  auto constraint = ParseConstraint(design->table, constraint_text);
  if (!constraint.ok()) return Fail(constraint.status());

  Implication imp(design->table, design->sigma);
  bool implied = imp.Implies(*constraint);
  std::printf("Sigma %s %s\n", implied ? "implies" : "does NOT imply",
              ConstraintToString(*constraint, design->table).c_str());
  if (implied) {
    auto engine = AxiomEngine::Saturate(design->table, design->sigma);
    if (engine.ok()) {
      auto proof = engine->Explain(*constraint);
      if (proof.ok()) std::printf("\nproof:\n%s", proof->c_str());
    } else {
      std::printf("(schema too large for an axiomatic proof print)\n");
    }
  } else {
    auto witness = CounterExample(*design, *constraint);
    if (witness.ok()) {
      std::printf("counterexample instance over (T, T_S, Sigma):\n%s",
                  witness->ToString().c_str());
    }
  }
  return 0;
}

int CmdMine(const std::string& path) {
  auto table = ReadCsvFile(path);
  if (!table.ok()) return Fail(table.status());
  DiscoveryOptions options;
  options.hitting.max_size = 5;
  auto mined = DiscoverConstraints(*table, options);
  if (!mined.ok()) return Fail(mined.status());

  TableSchema schema = table->schema();
  (void)schema.SetNfs(mined->null_free_columns);
  std::printf("table: %d rows x %d columns, null-free columns %s\n\n",
              table->num_rows(), table->num_columns(),
              schema.FormatSet(schema.nfs()).c_str());
  auto print_fds = [&](const char* label,
                       const std::vector<FunctionalDependency>& fds) {
    std::printf("%s (%zu):\n", label, fds.size());
    for (const auto& fd : fds) {
      std::printf("  %s\n", fd.ToString(schema).c_str());
    }
  };
  print_fds("certain FDs", mined->c_fds);
  print_fds("possible FDs", mined->p_fds);
  std::printf("certain keys (%zu):\n", mined->c_keys.size());
  for (const auto& key : mined->c_keys) {
    std::printf("  %s\n", key.ToString(schema).c_str());
  }
  std::printf("possible keys (%zu):\n", mined->p_keys.size());
  for (const auto& key : mined->p_keys) {
    std::printf("  %s\n", key.ToString(schema).c_str());
  }
  FdClassification cls = ClassifyDiscovered(*table, *mined);
  std::printf(
      "\nclassification: nn=%d p=%d c=%d total=%d lambda=%d\n",
      cls.nn_count, cls.p_count, cls.c_count, cls.t_count,
      cls.lambda_count);
  return 0;
}

int CmdValidate(const std::string& path, const std::string& sigma_text,
                int threads) {
  auto table = ReadCsvFile(path);
  if (!table.ok()) return Fail(table.status());
  auto sigma = ParseConstraintSet(table->schema(), sigma_text);
  if (!sigma.ok()) return Fail(sigma.status());

  // One dictionary encoding over every mentioned column, shared by all
  // constraints.
  AttributeSet mentioned;
  for (const auto& fd : sigma->fds()) {
    mentioned = mentioned.Union(fd.lhs).Union(fd.rhs);
  }
  for (const auto& key : sigma->keys()) {
    mentioned = mentioned.Union(key.attrs);
  }
  const EncodedTable enc(*table, mentioned);

  // The shared session-layer core; RenderText() is the historical
  // stdout of this command, byte for byte (golden-pinned).
  const ValidationReport report =
      ValidateConstraints(table->schema(), enc, *sigma, threads);
  std::fputs(report.RenderText().c_str(), stdout);
  return report.violated == 0 ? 0 : 1;
}

int CmdQuery(const std::string& path, const std::string& sql) {
  // The table is named after the file stem: data/contractor.csv is
  // queried as `contractor`.
  std::string stem = path;
  const size_t slash = stem.find_last_of("/\\");
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  const size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  CsvOptions options;
  options.table_name = stem;
  auto table = ReadCsvFile(path, options);
  if (!table.ok()) return Fail(table.status());

  Database db;
  {
    WriterScope writer;  // ingest is a write; scoped to just that
    Status ingested = db.IngestTable(*table, ConstraintSet{});
    if (!ingested.ok()) return Fail(ingested);
  }
  std::printf("loaded '%s': %d rows x %d columns\n\n", stem.c_str(),
              table->num_rows(), table->num_columns());

  // The same session pipeline the HTTP server runs; the CLI is just a
  // text renderer over its ResultSet.
  SessionRegistry registry(&db);
  Session session(&registry);
  const ResultSet rs = session.Execute(sql);
  if (!rs.ok()) return FailDetail(rs.error);
  for (const QueryResult& result : rs.statements) {
    std::printf("%s\n", result.ToString().c_str());
  }
  return 0;
}

int CmdAdvise(const std::string& path) {
  auto table = ReadCsvFile(path);
  if (!table.ok()) return Fail(table.status());
  DiscoveryOptions options;
  options.hitting.max_size = 4;
  auto mined = DiscoverConstraints(*table, options);
  if (!mined.ok()) return Fail(mined.status());

  TableSchema schema = table->schema();
  (void)schema.SetNfs(mined->null_free_columns);
  FdClassification cls = ClassifyDiscovered(*table, *mined);
  ConstraintSet sigma;
  for (const auto& fd : cls.lambda_fds) sigma.AddUniqueFd(fd);
  for (const auto& key : mined->c_keys) sigma.AddUniqueKey(key);
  SchemaDesign design{schema, sigma};
  std::printf("mined design:\n%s\n", FormatDesign(design).c_str());

  if (sigma.fds().empty()) {
    std::printf("no lambda-FDs found; nothing to normalize.\n");
    return 0;
  }
  auto result = VrnfDecompose(design);
  if (!result.ok()) return Fail(result.status());
  auto report = ReportDecomposition(*table, result->decomposition);
  if (report.ok()) {
    std::printf("%s\n", report->ToString(schema).c_str());
  }
  auto lossless = IsLosslessForInstance(*table, result->decomposition);
  if (lossless.ok()) {
    std::printf("lossless on the input data: %s\n\n",
                *lossless ? "yes" : "NO");
  }
  std::printf("%s", EmitDecompositionDdl(design, *result).c_str());
  return 0;
}

/// File stem: data/contractor.csv → contractor.
std::string TableStem(const std::string& path) {
  std::string stem = path;
  const size_t slash = stem.find_last_of("/\\");
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  const size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  return stem;
}

int CmdServe(const std::vector<std::string>& args) {
  int port = 8080;
  int workers = 4;
  int threads = 1;
  std::vector<std::string> csvs;
  for (size_t i = 0; i < args.size(); ++i) {
    auto int_flag = [&](const char* name, int* out) {
      if (args[i] != name) return false;
      if (i + 1 >= args.size()) return true;  // value missing: keep default
      *out = std::atoi(args[++i].c_str());
      return true;
    };
    if (int_flag("--port", &port) || int_flag("--workers", &workers) ||
        int_flag("--threads", &threads)) {
      continue;
    }
    csvs.push_back(args[i]);
  }

  Database db;
  {
    WriterScope writer;
    for (const std::string& path : csvs) {
      CsvOptions options;
      options.table_name = TableStem(path);
      auto table = ReadCsvFile(path, options);
      if (!table.ok()) return Fail(table.status());
      Status ingested = db.IngestTable(*table, ConstraintSet{});
      if (!ingested.ok()) return Fail(ingested);
      std::printf("loaded '%s': %d rows x %d columns\n",
                  options.table_name.c_str(), table->num_rows(),
                  table->num_columns());
    }
  }

  SessionRegistry registry(&db);
  SqlnfServiceOptions service_options;
  service_options.threads = threads < 1 ? 1 : threads;
  SqlnfService service(&registry, service_options);

  // Block the shutdown signals BEFORE spawning server threads (they
  // inherit the mask), then wait for one synchronously — no handler,
  // no flag race.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  HttpServerOptions server_options;
  server_options.port = port;
  server_options.workers = workers < 1 ? 1 : workers;
  HttpServer server(
      [&service](const HttpRequest& request) {
        return service.Handle(request);
      },
      server_options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::printf("serving on http://127.0.0.1:%d (%d workers)\n",
              server.port(), server_options.workers);
  std::fflush(stdout);

  int received = 0;
  sigwait(&signals, &received);
  std::printf("shutting down\n");
  server.Stop();
  return 0;
}

int CmdCorpus(const std::string& name, const std::string& out_path) {
  Result<Table> table = Status::Invalid("");
  if (name == "contractor") {
    table = Contractor();
  } else if (name == "uci_breast") {
    table = UciBreastCancerShaped();
  } else if (name == "uci_adult") {
    table = UciAdultShaped();
  } else if (name == "uci_hepatitis") {
    table = UciHepatitisShaped();
  } else {
    return Fail(Status::Invalid(
        "unknown corpus '" + name +
        "' (try contractor, uci_breast, uci_adult, uci_hepatitis)"));
  }
  if (!table.ok()) return Fail(table.status());
  Status written = WriteCsvFile(*table, out_path);
  if (!written.ok()) return Fail(written);
  std::printf("wrote '%s': %d rows x %d columns\n", out_path.c_str(),
              table->num_rows(), table->num_columns());
  return 0;
}

}  // namespace
}  // namespace sqlnf

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "shell") {
    return sqlnf::CmdShell(argc >= 3 ? argv[2] : "");
  }
  if (argc >= 2 && std::string(argv[1]) == "serve") {
    return sqlnf::CmdServe(
        std::vector<std::string>(argv + 2, argv + argc));
  }
  if (argc < 3) return sqlnf::Usage();
  const std::string command = argv[1];
  const std::string arg = argv[2];
  if (command == "check") return sqlnf::CmdCheck(arg);
  if (command == "normalize") return sqlnf::CmdNormalize(arg);
  if (command == "implies") {
    if (argc < 4) return sqlnf::Usage();
    return sqlnf::CmdImplies(arg, argv[3]);
  }
  if (command == "mine") return sqlnf::CmdMine(arg);
  if (command == "advise") return sqlnf::CmdAdvise(arg);
  if (command == "query") {
    if (argc < 4) return sqlnf::Usage();
    return sqlnf::CmdQuery(arg, argv[3]);
  }
  if (command == "validate") {
    if (argc < 4) return sqlnf::Usage();
    int threads = 1;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        threads = std::atoi(argv[++i]);
        if (threads < 1) threads = 1;
      }
    }
    return sqlnf::CmdValidate(arg, argv[3], threads);
  }
  if (command == "corpus") {
    if (argc < 4) return sqlnf::Usage();
    return sqlnf::CmdCorpus(arg, argv[3]);
  }
  return sqlnf::Usage();
}
