#!/usr/bin/env sh
# Negative-compile gate for the thread-safety contract.
#
# Usage: negative_compile_check.sh <compiler> <source> [extra compile flags...]
#
# Asserts that <source> FAILS to compile under Clang Thread Safety
# Analysis, and that the failure is actually a thread-safety diagnostic
# (an unrelated syntax error must not count as a passing gate). Run by
# the thread_safety_violation_must_not_compile ctest target on Clang
# builds; see tests/thread_safety_violation.cc.
set -u

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <compiler> <source> [flags...]" >&2
  exit 2
fi

compiler="$1"
src="$2"
shift 2

out=$("$compiler" -std=c++20 -fsyntax-only \
      -Wthread-safety -Werror=thread-safety "$@" "$src" 2>&1)
status=$?

if [ "$status" -eq 0 ]; then
  echo "FAIL: $src compiled cleanly — thread safety analysis did not fire."
  echo "The annotations are inert or the violation fixture has rotted."
  exit 1
fi

# A compiler that does not know -Wthread-safety (GCC) fails with an
# "unknown option" error that also mentions the flag name — that must
# not count as the analysis firing.
case "$out" in
  *"unrecognized command-line option"*|*"no option -Wthread-safety"*)
    echo "FAIL: compiler does not support -Wthread-safety; this gate"
    echo "requires Clang. Compiler output:"
    echo "$out"
    exit 1
    ;;
esac

case "$out" in
  *thread-safety-analysis*|*"requires holding"*|*"is not held"*)
    ;;
  *)
    echo "FAIL: $src failed to compile, but not with a thread-safety"
    echo "diagnostic. Compiler output:"
    echo "$out"
    exit 1
    ;;
esac

count=$(echo "$out" | grep -c 'error:')
echo "OK: thread safety analysis rejected $src ($count errors)."
exit 0
