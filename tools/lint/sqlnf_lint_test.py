#!/usr/bin/env python3
"""Tests for sqlnf_lint.py: one fixture tree per rule under testdata/.

Each violation fixture also embeds the rule's sanctioned counterpart
(allowlisted file, exempt construct), so these tests pin both halves of
every rule: it fires where it must and stays quiet where it must not.
"""

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import sqlnf_lint  # noqa: E402

TESTDATA = Path(__file__).resolve().parent / "testdata"


def rules_of(findings):
    return sorted({f.rule for f in findings})


class CleanFixtureTest(unittest.TestCase):
    def test_clean_tree_has_no_findings(self):
        findings = sqlnf_lint.run(TESTDATA / "clean")
        self.assertEqual(findings, [],
                         "\n".join(str(f) for f in findings))


class OrderedCodeCompareTest(unittest.TestCase):
    def setUp(self):
        self.findings = sqlnf_lint.check_ordered_code_compare(
            TESTDATA / "ordered_code")

    def test_flags_code_vs_code_comparison(self):
        self.assertEqual(len(self.findings), 1,
                         "\n".join(str(f) for f in self.findings))
        f = self.findings[0]
        self.assertEqual(f.rule, "ordered-code-compare")
        self.assertEqual(f.path, "src/sqlnf/engine/join.cc")
        self.assertEqual(f.line, 4)

    def test_exempts_bounds_checks_and_allowlisted_files(self):
        flagged = {f.path for f in self.findings}
        self.assertNotIn("src/sqlnf/engine/predicate.cc", flagged)
        # join.cc's bounds check (line 7) must not be among the hits.
        self.assertEqual([f.line for f in self.findings
                          if f.path == "src/sqlnf/engine/join.cc"], [4])


class NondeterminismTest(unittest.TestCase):
    def test_flags_rand_clock_and_getenv(self):
        findings = sqlnf_lint.check_nondeterminism(TESTDATA / "nondet")
        self.assertEqual(len(findings), 3,
                         "\n".join(str(f) for f in findings))
        messages = " ".join(f.message for f in findings)
        self.assertIn("rand()", messages)
        self.assertIn("chrono clock", messages)
        self.assertIn("getenv()", messages)

    def test_comments_and_strings_do_not_fire(self):
        findings = sqlnf_lint.check_nondeterminism(TESTDATA / "clean")
        self.assertEqual(findings, [])

    def test_simd_dispatch_getenv_is_exempt(self):
        # The pinned (simd_kernels.cc, getenv) pair never fires; the
        # fixture tree carries that exact call to prove it.
        findings = sqlnf_lint.check_nondeterminism(TESTDATA / "nondet")
        self.assertNotIn("src/sqlnf/core/simd_kernels.cc",
                         {f.path for f in findings})


class SimdConfinementTest(unittest.TestCase):
    def setUp(self):
        self.findings = sqlnf_lint.check_simd_confinement(TESTDATA / "simd")

    def test_flags_intrinsics_and_macros_outside_kernel_layer(self):
        # The immintrin.h include and the SQLNF_SIMD_X86 use.
        self.assertEqual(len(self.findings), 2,
                         "\n".join(str(f) for f in self.findings))
        self.assertTrue(all(f.rule == "simd-confinement"
                            for f in self.findings))
        self.assertTrue(all(f.path == "src/sqlnf/engine/hand_vector.cc"
                            for f in self.findings))

    def test_kernel_layer_is_sanctioned(self):
        flagged = {f.path for f in self.findings}
        self.assertNotIn("src/sqlnf/util/simd.h", flagged)
        self.assertNotIn("src/sqlnf/core/simd_kernels.cc", flagged)


class MutableCodesTest(unittest.TestCase):
    def test_flags_unsanctioned_caller_only(self):
        findings = sqlnf_lint.check_mutable_codes(TESTDATA / "mutable_codes")
        self.assertEqual(len(findings), 1,
                         "\n".join(str(f) for f in findings))
        self.assertEqual(findings[0].path, "src/sqlnf/engine/sneaky.cc")
        self.assertEqual(findings[0].rule, "mutable-codes")


class TestRegistrationTest(unittest.TestCase):
    def test_flags_orphan_and_stale_entries(self):
        findings = sqlnf_lint.check_test_registration(
            TESTDATA / "unregistered")
        self.assertEqual(rules_of(findings), ["unregistered-test"])
        messages = " ".join(f.message for f in findings)
        self.assertIn("orphan_test", messages)  # on disk, not registered
        self.assertIn("ghost_test", messages)   # registered, not on disk
        self.assertEqual(len(findings), 2,
                         "\n".join(str(f) for f in findings))

    def test_clean_registration_passes(self):
        findings = sqlnf_lint.check_test_registration(TESTDATA / "clean")
        self.assertEqual(findings, [])


class RawMutexTest(unittest.TestCase):
    def test_flags_raw_locking_outside_wrapper(self):
        findings = sqlnf_lint.check_raw_mutex(TESTDATA / "raw_mutex")
        flagged = {(f.path, f.line) for f in findings}
        # The include, the std::mutex member, and the lock_guard.
        self.assertEqual(len(findings), 3,
                         "\n".join(str(f) for f in findings))
        self.assertTrue(all(p == "src/sqlnf/engine/locky.cc"
                            for p, _ in flagged))

    def test_wrapper_itself_is_sanctioned(self):
        findings = sqlnf_lint.check_raw_mutex(TESTDATA / "raw_mutex")
        self.assertNotIn("src/sqlnf/util/mutex.h",
                         {f.path for f in findings})


class RawSocketTest(unittest.TestCase):
    def setUp(self):
        self.findings = sqlnf_lint.check_raw_socket(
            TESTDATA / "raw_socket")

    def test_flags_engine_socket_usage(self):
        # The include, the socket() call, and the ::connect() call.
        self.assertEqual(len(self.findings), 3,
                         "\n".join(str(f) for f in self.findings))
        self.assertTrue(all(f.rule == "raw-socket" for f in self.findings))
        self.assertTrue(all(f.path == "src/sqlnf/engine/phone_home.cc"
                            for f in self.findings))

    def test_member_calls_do_not_fire(self):
        lines = {f.line for f in self.findings}
        # send/accept member calls live past line 10 of the fixture.
        self.assertTrue(all(line <= 10 for line in lines), lines)

    def test_net_subtree_is_sanctioned(self):
        self.assertNotIn("src/sqlnf/net/transport.cc",
                         {f.path for f in self.findings})


class RealTreeTest(unittest.TestCase):
    """The shipped tree must be lint-clean — this is the CI gate."""

    def test_repository_is_clean(self):
        repo_root = Path(__file__).resolve().parents[2]
        if not (repo_root / "src" / "sqlnf").is_dir():
            self.skipTest("not running inside the repository checkout")
        findings = sqlnf_lint.run(repo_root)
        self.assertEqual(findings, [],
                         "\n".join(str(f) for f in findings))


if __name__ == "__main__":
    unittest.main()
