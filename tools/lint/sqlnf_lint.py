#!/usr/bin/env python3
"""Repo-specific invariant linter for sqlnf.

Machine-checks conventions the compiler cannot see. Each rule guards an
invariant that has a semantic story in this codebase, not a style
preference:

  ordered-code-compare  Dictionary codes are allocation-order integers;
                        comparing them with < / <= / > / >= is only
                        meaningful where the order-preserving dictionary
                        contract is in force (engine/predicate.cc,
                        core/encoded_table.cc). Anywhere else an ordered
                        comparison on codes is a latent wrong-answer bug.
                        Bounds checks against sizes/counts are exempt.

  nondeterminism        src/ must be bit-reproducible: differential and
                        metamorphic suites rely on identical reruns. No
                        wall clocks, PRNG seeding from the environment,
                        process ids, or env vars in library code (the
                        seeded util/rng.h is the sanctioned source of
                        randomness; benches and tests may time things).
                        One pinned exemption: the SQLNF_SIMD_LEVEL
                        getenv() in core/simd_kernels.cc — the SIMD
                        bit-identity contract means the dispatch level
                        selects an implementation, never an answer.

  simd-confinement      Intrinsics headers (immintrin.h, arm_neon.h,
                        ...) and SQLNF_SIMD_* feature macros live ONLY
                        in util/simd.h + core/simd_kernels.cc. Every
                        other translation unit goes through the
                        ISA-agnostic dispatch API of
                        core/simd_kernels.h, so one stray _mm256_*
                        call can never fork engine semantics by ISA or
                        break the scalar-forced CI leg.

  mutable-codes         EncodedTable::mutable_codes() bypasses the
                        dictionary/null-count bookkeeping. Only the
                        encoded-table core and the two-phase emission
                        sites in encoded_ops.cc / relops.cc may use it.

  unregistered-test     Every tests/*_test.cc must be listed in
                        SQLNF_TESTS in tests/CMakeLists.txt (and every
                        listed test must exist) so ctest labels cover
                        the whole suite — an unregistered test never
                        runs in CI and rots silently.

  raw-mutex             All locking goes through util/mutex.h's
                        annotated Mutex/MutexLock/CondVar so Clang
                        Thread Safety Analysis sees every acquisition.
                        A raw std::mutex is invisible to the analysis.

  raw-socket            All socket syscalls and socket headers live in
                        src/sqlnf/net/ — the one place the transport
                        reader limits, EINTR loops, and shutdown-based
                        cancellation are enforced. A stray socket() in
                        engine code would bypass all three and punch an
                        unaudited I/O path through the library.

Usage: sqlnf_lint.py [--root DIR]
Exits 0 when clean, 1 with findings on stdout, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".cc", ".h", ".cpp", ".hpp"}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _strip_comments_and_strings(line: str) -> str:
    """Blanks out string/char literals and // comments (keeps length)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def iter_cxx_files(root: Path, subdir: str):
    base = root / subdir
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.suffix in CXX_SUFFIXES and path.is_file():
            yield path


# --- Rule: ordered-code-compare -------------------------------------------

# Files where ordered comparisons on codes are sanctioned: the
# order-preserving dictionary itself and the range kernels built on its
# contract (the compiled-predicate compiler and the SIMD kernel layer
# its scan loops dispatch into).
ORDERED_CODE_ALLOWLIST = {
    "src/sqlnf/engine/predicate.cc",
    "src/sqlnf/core/encoded_table.cc",
    "src/sqlnf/core/simd_kernels.cc",
}

# An operand: identifier path (a.b->c[i]) with optional casts stripped
# by the caller. "Code-ish" means the trailing identifier component
# names a dictionary code and is a value (lowercase), not a type like
# EncodedTable.
_OPERAND = r"[A-Za-z_][\w.\->]*(?:\[[^\]]*\])?(?:\(\))?"
_CMP_RE = re.compile(
    rf"(?P<lhs>{_OPERAND})\s*(?<![<>=!&|+\-])(?P<op><=|>=|<|>)(?![<>=])\s*"
    rf"(?P<rhs>{_OPERAND}|\d+)"
)
_CODEISH_RE = re.compile(r"(?:^|_)codes?(?:\[[^\]]*\])?$")
_SIZEISH_RE = re.compile(
    r"(size|count|num|capacity|length|\bn\b|\bd\b|\bend\b|\d+)", re.IGNORECASE
)


def _last_component(operand: str) -> str:
    # a.b->codes[i] -> "codes[i]"; DecodeCode(...) etc. keep call parens.
    part = re.split(r"\.|->", operand)[-1]
    return part


def _is_codeish(operand: str) -> bool:
    part = _last_component(operand)
    if part != part.lower():
        return False  # type names (EncodedTable) are not values
    return bool(_CODEISH_RE.search(part.split("(")[0].split("[")[0] or part))


def _is_sizeish(operand: str) -> bool:
    return bool(_SIZEISH_RE.search(operand))


def check_ordered_code_compare(root: Path) -> list[Finding]:
    findings = []
    for path in iter_cxx_files(root, "src"):
        rel = path.relative_to(root).as_posix()
        if rel in ORDERED_CODE_ALLOWLIST:
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = _strip_comments_and_strings(raw)
            if "template" in line or "#include" in line:
                continue
            for m in _CMP_RE.finditer(line):
                lhs, rhs = m.group("lhs"), m.group("rhs")
                code_side = None
                other = None
                if _is_codeish(lhs):
                    code_side, other = lhs, rhs
                elif _is_codeish(rhs):
                    code_side, other = rhs, lhs
                if code_side is None:
                    continue
                # Bounds checks and loop limits compare a code against a
                # size/count; those carry no value-order meaning.
                if _is_sizeish(other):
                    continue
                findings.append(Finding(
                    rel, lineno, "ordered-code-compare",
                    f"ordered comparison on dictionary code '{code_side}' "
                    f"outside the order-preserving contract "
                    f"(sanctioned: {', '.join(sorted(ORDERED_CODE_ALLOWLIST))})"))
    return findings


# --- Rule: nondeterminism -------------------------------------------------

_NONDET_PATTERNS = [
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::time\b|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "wall-clock time()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b(?:system|steady|high_resolution)_clock\b"),
     "chrono clock"),
    (re.compile(r"\bgetenv\s*\("), "getenv()"),
    (re.compile(r"\bgetpid\s*\("), "getpid()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
]

# Pinned (file, pattern) exemptions. simd_kernels.cc reads
# SQLNF_SIMD_LEVEL once to cap the dispatch level; the kernels are
# bit-identical across levels by contract (enforced by the
# level-sweeping fuzz/differential harnesses), so the env var can
# change speed but never a result.
_NONDET_EXEMPT = {
    ("src/sqlnf/core/simd_kernels.cc", "getenv()"),
}


def check_nondeterminism(root: Path) -> list[Finding]:
    findings = []
    for path in iter_cxx_files(root, "src"):
        rel = path.relative_to(root).as_posix()
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = _strip_comments_and_strings(raw)
            for pattern, what in _NONDET_PATTERNS:
                if (rel, what) in _NONDET_EXEMPT:
                    continue
                if pattern.search(line):
                    findings.append(Finding(
                        rel, lineno, "nondeterminism",
                        f"{what} in library code — src/ must be "
                        f"bit-reproducible (use the seeded util/rng.h)"))
    return findings


# --- Rule: mutable-codes --------------------------------------------------

MUTABLE_CODES_ALLOWLIST = {
    "src/sqlnf/core/encoded_table.h",
    "src/sqlnf/core/encoded_table.cc",
    "src/sqlnf/decomposition/encoded_ops.cc",
    "src/sqlnf/engine/relops.cc",
}


def check_mutable_codes(root: Path) -> list[Finding]:
    findings = []
    for path in iter_cxx_files(root, "src"):
        rel = path.relative_to(root).as_posix()
        if rel in MUTABLE_CODES_ALLOWLIST:
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = _strip_comments_and_strings(raw)
            if re.search(r"\bmutable_codes\s*\(", line):
                findings.append(Finding(
                    rel, lineno, "mutable-codes",
                    "mutable_codes() bypasses dictionary/null bookkeeping "
                    f"(sanctioned: {', '.join(sorted(MUTABLE_CODES_ALLOWLIST))})"))
    return findings


# --- Rule: unregistered-test ----------------------------------------------

_TESTS_LIST_RE = re.compile(r"set\(SQLNF_TESTS\s*(.*?)\)", re.DOTALL)


def check_test_registration(root: Path) -> list[Finding]:
    findings = []
    cmake = root / "tests" / "CMakeLists.txt"
    if not cmake.is_file():
        return [Finding("tests/CMakeLists.txt", 1, "unregistered-test",
                        "tests/CMakeLists.txt not found")]
    text = cmake.read_text()
    m = _TESTS_LIST_RE.search(text)
    if not m:
        return [Finding("tests/CMakeLists.txt", 1, "unregistered-test",
                        "no set(SQLNF_TESTS ...) block found")]
    registered = set(m.group(1).split())

    tests_dir = root / "tests"
    on_disk = {p.stem for p in sorted(tests_dir.glob("*_test.cc"))}

    for stem in sorted(on_disk - registered):
        findings.append(Finding(
            f"tests/{stem}.cc", 1, "unregistered-test",
            f"test binary '{stem}' is not listed in SQLNF_TESTS — it will "
            f"never run under ctest"))
    for stem in sorted(registered - on_disk):
        findings.append(Finding(
            "tests/CMakeLists.txt", 1, "unregistered-test",
            f"SQLNF_TESTS lists '{stem}' but tests/{stem}.cc does not exist"))
    # The registration loop must attach a ctest label to every binary.
    if registered and 'LABELS "tier1"' not in text:
        findings.append(Finding(
            "tests/CMakeLists.txt", 1, "unregistered-test",
            "registered tests must carry a ctest LABELS property"))
    return findings


# --- Rule: raw-mutex ------------------------------------------------------

RAW_MUTEX_ALLOWLIST = {
    "src/sqlnf/util/mutex.h",
}

_RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable(?:_any)?)\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")


def check_raw_mutex(root: Path) -> list[Finding]:
    findings = []
    for path in iter_cxx_files(root, "src"):
        rel = path.relative_to(root).as_posix()
        if rel in RAW_MUTEX_ALLOWLIST:
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = _strip_comments_and_strings(raw)
            if _RAW_MUTEX_RE.search(line):
                findings.append(Finding(
                    rel, lineno, "raw-mutex",
                    "raw standard-library locking is invisible to Thread "
                    "Safety Analysis — use util/mutex.h"))
    return findings


# --- Rule: raw-socket -----------------------------------------------------

# The transport layer: the only subtree that may touch BSD sockets.
RAW_SOCKET_ALLOWED_PREFIX = "src/sqlnf/net/"

# Socket syscalls as free/global calls. The negative lookbehind skips
# member calls (queue.send(x), listener.accept()) — only `send(` and
# `::send(` style calls are the C API.
_RAW_SOCKET_CALL_RE = re.compile(
    r"(?<![\w.>])(?:::)?"
    r"(?:socket|bind|listen|accept4?|connect|recv|recvfrom|send|sendto|"
    r"setsockopt|getsockopt|getsockname|getpeername|shutdown)\s*\(")
_RAW_SOCKET_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:sys/socket\.h|netinet/[\w.]+|arpa/inet\.h|"
    r"netdb\.h|sys/un\.h)>")


def check_raw_socket(root: Path) -> list[Finding]:
    findings = []
    for path in iter_cxx_files(root, "src"):
        rel = path.relative_to(root).as_posix()
        if rel.startswith(RAW_SOCKET_ALLOWED_PREFIX):
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), 1):
            line = _strip_comments_and_strings(raw)
            if (_RAW_SOCKET_INCLUDE_RE.search(raw)
                    or _RAW_SOCKET_CALL_RE.search(line)):
                findings.append(Finding(
                    rel, lineno, "raw-socket",
                    "socket syscalls outside the transport layer bypass "
                    "its framing limits and cancellation (sanctioned: "
                    f"{RAW_SOCKET_ALLOWED_PREFIX})"))
    return findings


# --- Rule: simd-confinement -----------------------------------------------

# The kernel layer: the only files that may see intrinsics headers or
# the SQLNF_SIMD_* feature-detection macros. Everything else calls the
# ISA-agnostic dispatchers in core/simd_kernels.h, which are
# bit-identical across levels — so no caller can fork behavior by ISA.
SIMD_ALLOWLIST = {
    "src/sqlnf/util/simd.h",
    "src/sqlnf/core/simd_kernels.cc",
}

_SIMD_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:immintrin\.h|x86intrin\.h|arm_neon\.h|arm_sve\.h|"
    r"[a-z]+mmintrin\.h)>")
_SIMD_MACRO_RE = re.compile(r"\bSQLNF_SIMD_\w+")


def check_simd_confinement(root: Path) -> list[Finding]:
    findings = []
    for subdir in ("src", "tests", "bench", "tools"):
        for path in iter_cxx_files(root, subdir):
            rel = path.relative_to(root).as_posix()
            if rel in SIMD_ALLOWLIST or "/testdata/" in rel:
                continue
            for lineno, raw in enumerate(path.read_text().splitlines(), 1):
                line = _strip_comments_and_strings(raw)
                if _SIMD_INCLUDE_RE.search(line) or _SIMD_MACRO_RE.search(line):
                    findings.append(Finding(
                        rel, lineno, "simd-confinement",
                        "intrinsics and SQLNF_SIMD_* macros are confined to "
                        "the kernel layer — dispatch through "
                        "core/simd_kernels.h (sanctioned: "
                        f"{', '.join(sorted(SIMD_ALLOWLIST))})"))
    return findings


ALL_CHECKS = [
    check_ordered_code_compare,
    check_nondeterminism,
    check_simd_confinement,
    check_mutable_codes,
    check_test_registration,
    check_raw_mutex,
    check_raw_socket,
]


def run(root: Path) -> list[Finding]:
    findings = []
    for check in ALL_CHECKS:
        findings.extend(check(root))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"error: {root} does not look like the repo root "
              f"(no src/ directory)", file=sys.stderr)
        return 2
    findings = run(root)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} finding(s).")
        return 1
    print("sqlnf_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
