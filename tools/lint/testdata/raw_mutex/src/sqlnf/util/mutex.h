#include <mutex>
namespace sqlnf {
class Mutex {
  std::mutex mu_;  // sanctioned: the one wrapper over std::mutex
};
}  // namespace sqlnf
