#include <mutex>
namespace sqlnf {
std::mutex raw_mu;  // VIOLATION: invisible to thread safety analysis
void Critical() {
  std::lock_guard<std::mutex> lock(raw_mu);  // VIOLATION
}
}  // namespace sqlnf
