#include <cstdlib>
namespace sqlnf::simd {
int EnvLevel() {
  // EXEMPT: the pinned SQLNF_SIMD_LEVEL dispatch-cap read.
  const char* env = std::getenv("SQLNF_SIMD_LEVEL");
  return env != nullptr ? 1 : 0;
}
}  // namespace sqlnf::simd
