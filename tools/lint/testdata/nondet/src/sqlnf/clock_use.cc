#include <chrono>
#include <cstdlib>
namespace sqlnf {
long Nondet() {
  long x = std::rand();                                    // VIOLATION
  x += std::chrono::steady_clock::now().time_since_epoch().count();  // VIOLATION
  if (std::getenv("SQLNF_SEED") != nullptr) x += 1;        // VIOLATION
  return x;
}
}  // namespace sqlnf
