// sanctioned: the kernel layer may include intrinsics and test macros.
#if SQLNF_SIMD_X86
#include <immintrin.h>
#endif
namespace sqlnf::simd {
int Kernels() { return 0; }
}  // namespace sqlnf::simd
