// sanctioned: the ISA-plumbing header may define the feature macros.
#ifndef SQLNF_UTIL_SIMD_H_
#define SQLNF_UTIL_SIMD_H_
#if defined(__x86_64__)
#define SQLNF_SIMD_X86 1
#else
#define SQLNF_SIMD_X86 0
#endif
#endif  // SQLNF_UTIL_SIMD_H_
