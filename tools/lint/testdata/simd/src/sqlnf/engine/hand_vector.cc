#include <immintrin.h>  // VIOLATION: intrinsics outside the kernel layer
namespace sqlnf {
int HandVectorized(const unsigned* codes) {
#if SQLNF_SIMD_X86  // VIOLATION: feature macro outside the kernel layer
  return _mm_cvtsi128_si32(_mm_loadu_si128((const __m128i*)codes));
#else
  return (int)codes[0];
#endif
}
}  // namespace sqlnf
