#include <cstdint>
namespace sqlnf {
bool Before(uint32_t left_code, uint32_t right_code) {
  return left_code < right_code;  // VIOLATION: code-vs-code order
}
bool Bounded(uint32_t code, uint32_t dict_size) {
  return code < dict_size;  // exempt: bounds check
}
}  // namespace sqlnf
