#include <cstdint>
namespace sqlnf {
bool RangeHit(uint32_t code, uint32_t lo_code) {
  return code >= lo_code;  // sanctioned: order-preserving contract file
}
}  // namespace sqlnf
