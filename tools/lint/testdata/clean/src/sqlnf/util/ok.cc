// Exercises every rule's exemptions: bounds checks on codes, the
// seeded Rng, comments naming banned identifiers, and no locking.
#include <cstdint>
#include <vector>

namespace sqlnf {

// rand() and std::mutex in a comment must not fire.
int CountInRange(const std::vector<uint32_t>& codes, uint32_t dict_size) {
  int hits = 0;
  for (uint32_t code = 0; code < dict_size; ++code) {
    if (code >= codes.size()) break;   // bounds check: size-ish partner
    hits += static_cast<int>(codes[code] != 0);  // equality is fine
  }
  const char* banner = "std::random_device inside a string literal";
  (void)banner;
  return hits;
}

}  // namespace sqlnf
