namespace sqlnf {
void Sneak(EncodedTable* t) {
  auto* dst = t->mutable_codes(0);  // VIOLATION: bypasses bookkeeping
  (void)dst;
}
}  // namespace sqlnf
