namespace sqlnf {
void Emit(EncodedTable* t) {
  auto* dst = t->mutable_codes(0);  // sanctioned: two-phase emission
  (void)dst;
}
}  // namespace sqlnf
