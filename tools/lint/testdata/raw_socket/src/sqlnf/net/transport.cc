// Sanctioned counterpart: the transport subtree owns the socket API.

#include <netinet/tcp.h>
#include <sys/socket.h>

int Listen() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  bind(fd, nullptr, 0);
  listen(fd, 16);
  shutdown(fd, SHUT_RDWR);
  return fd;
}
