// Violation fixture: engine code opening its own socket, bypassing the
// transport layer's limits and cancellation. The include and the two
// calls below must each fire the raw-socket rule; the member calls
// and the comment further down must not.

#include <sys/socket.h>

int fd = socket(AF_INET, SOCK_STREAM, 0);
int err = ::connect(fd, nullptr, 0);

void MemberCallsAreNotSyscalls(Queue* q, Queue& local) {
  q->send(1);    // member call: exempt
  q->accept();   // member call: exempt
  local.send(2);  // also exempt; socket() in this comment is too
}
