#!/usr/bin/env sh
# Golden-output gate for the CLI front ends (ISSUE acceptance
# criterion): `sqlnf query` and `sqlnf validate` must stay
# byte-identical across the session/result refactor. The goldens in
# tests/golden/ were captured from the pre-refactor CLI on the
# contractor corpus; any diff here means the service layers changed
# user-visible output.
#
# Usage: golden_cli_check.sh <sqlnf_binary> <golden_dir>
set -u

if [ "$#" -ne 2 ]; then
  echo "usage: $0 <sqlnf_binary> <golden_dir>" >&2
  exit 2
fi

sqlnf="$1"
golden="$2"
work=$(mktemp -d) || exit 2
trap 'rm -rf "$work"' EXIT
fail=0

"$sqlnf" corpus contractor "$work/contractor.csv" > /dev/null || {
  echo "FAIL: could not generate the contractor corpus"
  exit 1
}

# q1: predicate mix (AND/OR precedence, comparisons) with projection.
"$sqlnf" query "$work/contractor.csv" \
  "SELECT city, url, dmerc_rgn, status FROM contractor WHERE status = 'retired' AND contractor_id < 60 OR dmerc_rgn = 'R2'" \
  > "$work/q1.txt" 2>&1
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: q1 exited $status (want 0)"
  fail=1
fi

# q2: a two-statement script (BETWEEN, IN, NULL comparison semantics).
"$sqlnf" query "$work/contractor.csv" \
  "SELECT * FROM contractor WHERE contractor_id BETWEEN '10' AND '14'; SELECT cmd_name, phone FROM contractor WHERE dmerc_rgn = NULL AND contractor_id IN ('3', '5', '151')" \
  > "$work/q2.txt" 2>&1
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: q2 exited $status (want 0)"
  fail=1
fi

# v1: mixed satisfied/violated constraints; exit 1 signals violations.
"$sqlnf" validate "$work/contractor.csv" \
  'city,url ->w dmerc_rgn,status; cmd_name,phone,url ->w contractor_version,status_flag; address1,contractor_bus_name,contractor_type_id ->w url; c<contractor_id>; city,state ->w contractor_id' \
  --threads 2 > "$work/v1.txt" 2>&1
status=$?
if [ "$status" -ne 1 ]; then
  echo "FAIL: v1 exited $status (want 1: violations present)"
  fail=1
fi

for case in q1 q2 v1; do
  if ! diff -u "$golden/$case.txt" "$work/$case.txt"; then
    echo "FAIL: $case output diverged from tests/golden/$case.txt"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "OK: CLI output byte-identical to the pre-refactor goldens."
exit 0
