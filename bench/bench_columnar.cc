// E14 — the columnar executor vs the row-major reference on the
// Section 7 contractor workload at scale: contractor × 1000 = 173,000
// rows under the three λ-FDs. Three operator families, same inputs,
// same (multiset) outputs:
//
//   * the Theorem-11 round trip: project onto the VRNF components and
//     fold the equality join back (JoinComponents vs
//     JoinComponentsEncoded at 1 and 4 threads),
//   * point scans by city (SelectWhere vs SelectRowsEncoded + gather),
//   * group fact updates (UpdateWhere vs UpdateWhereEncoded).
//
// The encode cost the columnar path pays once at ingest is timed
// separately; in the engine the enforcer maintains the encoding
// incrementally, so queries never pay it. The shape check requires the
// encoded join to be at least 2× faster than the row-major join AND
// every result multiset-identical.

#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "sqlnf/constraints/parser.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/decomposition/encoded_ops.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

constexpr int kScale = 1000;  // contractor × 1000 = 173,000 rows

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  Table contractor = ValueOrDie(Contractor(), "contractor");
  Table big = ValueOrDie(CrossWithSequence(contractor, kScale, "new"),
                         "cross");
  ConstraintSet sigma = ValueOrDie(
      ParseConstraintSet(
          big.schema(),
          "new,city,url ->w new,city,url,dmerc_rgn,status; "
          "new,cmd_name,phone,url ->w "
          "new,cmd_name,phone,url,contractor_version,status_flag; "
          "new,address1,contractor_bus_name,contractor_type_id ->w "
          "new,address1,contractor_bus_name,contractor_type_id,url"),
      "sigma");
  SchemaDesign design{big.schema(), sigma};
  VrnfResult vrnf = ValueOrDie(VrnfDecompose(design), "vrnf");
  const Decomposition& d = vrnf.decomposition;

  std::optional<EncodedTable> enc;
  double encode_ms = TimeMs([&] { enc.emplace(big); });
  std::printf("input: %d rows × %d columns; one-time encode %.1f ms\n\n",
              big.num_rows(), big.num_columns(), encode_ms);

  // --- Theorem-11 round trip: project onto the VRNF components, join
  // them back, confirm the instance is reproduced.
  std::optional<Table> row_joined;
  double row_join_ms = TimeMs(
      [&] { row_joined = ValueOrDie(JoinComponents(big, d), "row join"); });

  std::optional<EncodedRelation> enc_joined;
  double enc_join_ms = TimeMs([&] {
    enc_joined = ValueOrDie(
        JoinComponentsEncoded(big.schema(), *enc, d, ParallelOptions{1}),
        "encoded join");
  });
  std::optional<EncodedRelation> enc_joined4;
  double enc_join4_ms = TimeMs([&] {
    enc_joined4 = ValueOrDie(
        JoinComponentsEncoded(big.schema(), *enc, d, ParallelOptions{4}),
        "encoded join t4");
  });

  // Both executors emit components in the same order, so the columns
  // align positionally; compare the multisets on codes.
  const bool join_same =
      SameMultisetEncoded(EncodedTable(*row_joined), enc_joined->columns) &&
      SameMultisetEncoded(enc_joined->columns, enc_joined4->columns);
  const bool lossless =
      ValueOrDie(IsLosslessForInstanceEncoded(big.schema(), *enc, d),
                 "lossless") &&
      enc_joined->columns.num_rows() == big.num_rows();

  // --- point scans: all rows of one city, 100 rounds.
  auto city_value = [](int g1) {
    return Value::Str("City g1-" + std::to_string(g1));
  };
  const AttributeId city =
      ValueOrDie(big.schema().FindAttribute("city"), "city");
  const AttributeId status =
      ValueOrDie(big.schema().FindAttribute("status"), "status");
  volatile long long sink = 0;
  (void)sink;
  bool scan_same = true;
  double row_scan_ms = TimeMs([&] {
    for (int i = 0; i < 100; ++i) {
      Table hit = SelectWhere(big, [&](const Tuple& t) {
        return t[city] == city_value(i % 38);
      });
      sink += hit.num_rows();
    }
  });
  double enc_scan_ms = TimeMs([&] {
    for (int i = 0; i < 100; ++i) {
      const std::vector<int> sel =
          SelectRowsEncoded(*enc, {{city, city_value(i % 38)}});
      sink += static_cast<long long>(enc->GatherRows(sel).num_rows());
    }
  });
  for (int i = 0; i < 38; ++i) {  // equal hit sets, checked once per group
    const Table hit = SelectWhere(big, [&](const Tuple& t) {
      return t[city] == city_value(i);
    });
    const std::vector<int> sel =
        SelectRowsEncoded(*enc, {{city, city_value(i)}});
    scan_same = scan_same &&
                static_cast<int>(sel.size()) == hit.num_rows();
  }

  // --- group fact updates: flip the status of one city group, 20
  // rounds, alternating so every round touches the whole group.
  Table row_upd = big;
  EncodedTable enc_upd = *enc;
  int row_changed = 0;
  double row_update_ms = TimeMs([&] {
    for (int round = 0; round < 20; ++round) {
      Value v = Value::Str(round % 2 ? "active" : "suspended");
      row_changed += ValueOrDie(
          UpdateWhere(
              &row_upd,
              [&](const Tuple& t) { return t[city] == city_value(7); },
              status, v),
          "row update");
    }
  });
  int enc_changed = 0;
  double enc_update_ms = TimeMs([&] {
    for (int round = 0; round < 20; ++round) {
      Value v = Value::Str(round % 2 ? "active" : "suspended");
      enc_changed +=
          UpdateWhereEncoded(&enc_upd, {{city, city_value(7)}}, status, v);
    }
  });
  const bool update_same =
      row_changed == enc_changed &&
      SameMultisetEncoded(EncodedTable(row_upd), enc_upd);

  TextTable tt;
  tt.SetHeader({"operator", "row-major [ms]", "columnar [ms]", "speedup"});
  char a[32], b[32], c[32];
  auto add_row = [&](const char* label, double lhs, double rhs) {
    std::snprintf(a, sizeof(a), "%.1f", lhs);
    std::snprintf(b, sizeof(b), "%.1f", rhs);
    std::snprintf(c, sizeof(c), "%.1fx", lhs / rhs);
    tt.AddRow({label, a, b, c});
  };
  add_row("Theorem-11 project+join", row_join_ms, enc_join_ms);
  add_row("Theorem-11 project+join (4 threads)", row_join_ms, enc_join4_ms);
  add_row("100 point scans by city", row_scan_ms, enc_scan_ms);
  add_row("20 group fact updates", row_update_ms, enc_update_ms);
  std::printf("%s\n", tt.ToString().c_str());
  std::printf("results multiset-identical: join %s, scans %s, updates %s; "
              "Theorem-11 round trip lossless: %s\n",
              join_same ? "yes" : "NO", scan_same ? "yes" : "NO",
              update_same ? "yes" : "NO", lossless ? "yes" : "NO");

  const bool ok = join_same && scan_same && update_same && lossless &&
                  row_join_ms / enc_join_ms >= 2.0;
  std::printf("shape check (columnar join ≥2× and identical results): %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
