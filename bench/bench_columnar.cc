// E14 — the columnar executor vs the row-major reference on the
// Section 7 contractor workload at scale: contractor × 1000 = 173,000
// rows under the three λ-FDs. Three operator families, same inputs,
// same (multiset) outputs:
//
//   * the Theorem-11 round trip: project onto the VRNF components and
//     fold the equality join back (JoinComponents vs
//     JoinComponentsEncoded at 1 and 4 threads),
//   * point scans by city (SelectWhere vs SelectRowsEncoded + gather),
//   * group fact updates (UpdateWhere vs UpdateWhereEncoded).
//
// The encode cost the columnar path pays once at ingest is timed
// separately; in the engine the enforcer maintains the encoding
// incrementally, so queries never pay it. The shape check requires the
// encoded join to be at least 2× faster than the row-major join AND
// every result multiset-identical.
//
// E15 — morsel-join thread scaling: the same Theorem-11 join swept over
// thread counts {1, 2, 4, 8}. Every parallel run must reproduce the
// serial run code for code (the morsel pipeline's determinism
// contract); when the machine has ≥ 4 hardware threads the 4-thread
// join must additionally be ≥ 2.5× faster than serial (skipped with a
// note otherwise — scaling can't be measured without cores).
//
// E17 — order-preserving range/IN/OR scans: WHERE predicates over the
// sequence column (`new` ∈ 1..1000, uniform) at 0.1% / 1% / 50%
// selectivity, plus an IN probe and an OR of two conjunctions. Each
// predicate runs two ways on the same encoding: the compiled
// branch-free interval scan (SelectRowsEncoded) and a decode-per-row
// fallback that decodes every tested cell and evaluates the predicate
// row-major (what the scan would cost without order-aware
// dictionaries). Identical selection vectors required; the shape gate
// demands the compiled scan ≥ 4× the fallback at 1% selectivity —
// core-count independent, both sides are single-threaded.
//
// E19 — the explicit SIMD kernel layer: every core/simd_kernels.h
// kernel timed per dispatch level (scalar → simd128 → avx2, as far as
// the machine goes) on a synthetic 1M-code column, ns/row each, with a
// bit-identity cross-check of every wider level against the scalar
// oracle on the same inputs. The gate requires the AVX2 eq-scan and
// interval-scan kernels to be ≥ 2× the forced-scalar kernels; on a
// machine (or build) without AVX2 the gate SKIPS with a note — there
// is nothing to measure, and the scalar-forced CI leg must still pass.
// `bench_columnar --check` runs ONLY the E19 section (fast, for CI).
//
// Timings are also emitted machine-readably to BENCH_columnar.json,
// BENCH_rangescan.json, and BENCH_simd.json in the working directory:
// one {op, rows, threads, ns_per_op} record per measurement, for CI
// trend tracking.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sqlnf/constraints/parser.h"
#include "sqlnf/core/simd_kernels.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/decomposition/encoded_ops.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/engine/predicate.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/util/fnv.h"
#include "sqlnf/util/rng.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

constexpr int kScale = 1000;  // contractor × 1000 = 173,000 rows

/// One timing record for BENCH_columnar.json.
struct BenchRecord {
  std::string op;
  int rows;
  int threads;
  double ns_per_op;
};

void WriteJson(const char* path, const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"rows\": %d, \"threads\": %d, "
                 "\"ns_per_op\": %.0f}%s\n",
                 r.op.c_str(), r.rows, r.threads, r.ns_per_op,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu records to %s\n", records.size(), path);
}

/// Code-for-code equality — the determinism check between a serial and
/// a parallel run of the same join (stronger than multiset equality).
bool BitIdentical(const EncodedRelation& a, const EncodedRelation& b) {
  if (a.schema.num_attributes() != b.schema.num_attributes() ||
      a.columns.num_rows() != b.columns.num_rows()) {
    return false;
  }
  for (AttributeId col = 0; col < a.schema.num_attributes(); ++col) {
    if (a.schema.attribute_name(col) != b.schema.attribute_name(col) ||
        a.columns.column(col) != b.columns.column(col)) {
      return false;
    }
  }
  return true;
}

// --- E19: the SIMD kernel layer, per kernel × per dispatch level.

/// Human label + the levels this machine can actually run.
std::vector<simd::Level> AvailableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() >= simd::Level::kSimd128) {
    levels.push_back(simd::Level::kSimd128);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

int RunSimdE19() {
  using bench::TimeMs;

  constexpr int kN = 1 << 18;        // 256K codes: L2-resident, compute-bound
  constexpr uint32_t kD = 1 << 14;   // dictionary size for gather kernels
  constexpr int kRounds = 60;

  // Synthetic column: uniform codes with a sprinkle of ⊥/missing
  // sentinels (they clamp to the rank/table sentinel slot, exactly as
  // in a real encoded column).
  Rng rng(20260808);
  std::vector<uint32_t> codes(kN);
  for (uint32_t& c : codes) {
    const double roll = rng.NextDouble();
    if (roll < 0.05) {
      c = EncodedTable::kNullCode;
    } else if (roll < 0.07) {
      c = EncodedTable::kMissingCode;
    } else {
      c = static_cast<uint32_t>(rng.Uniform(0, kD - 1));
    }
  }
  std::vector<uint32_t> rank(kD + 1);
  for (uint32_t i = 0; i < kD; ++i) rank[i] = i;
  rank[kD] = 0xFFFFFFFFu;  // the kNoRank sentinel slot
  std::vector<uint8_t> in_table(kD + 1 + simd::kByteTablePad, 0);
  for (uint32_t i = 0; i < kD; ++i) in_table[i] = rng.Chance(0.5) ? 1 : 0;
  std::vector<uint8_t> src_bytes(kN);
  for (uint8_t& b : src_bytes) b = rng.Chance(0.5) ? 1 : 0;
  std::vector<int> gather_rows(kN);
  for (int i = 0; i < kN; ++i) gather_rows[i] = i;
  rng.Shuffle(&gather_rows);

  const uint32_t want = kD / 3;
  const uint32_t lo = kD / 4;
  const uint32_t span = kD / 2;

  // One timed body per kernel, writing into per-kernel scratch. Each
  // body is a pure function of its inputs, so the scalar run doubles
  // as the differential oracle for the wider levels.
  std::vector<uint8_t> match(kN);
  std::vector<uint64_t> hashes(kN);
  std::vector<uint32_t> folded(kN), gathered(kN);
  std::vector<int> sel(kN);
  volatile long long sink = 0;
  (void)sink;
  struct Kernel {
    const char* name;
    std::function<void(simd::Level)> body;
  };
  const std::vector<Kernel> kernels = {
      {"eq_code",
       [&](simd::Level l) {
         simd::EqCode(l, codes.data(), kN, want, simd::Store::kAssign,
                      match.data());
       }},
      {"ne_code",
       [&](simd::Level l) {
         simd::NeCode(l, codes.data(), kN, want, simd::Store::kAssign,
                      match.data());
       }},
      {"code_interval",
       [&](simd::Level l) {
         simd::CodeInterval(l, codes.data(), kN, lo, span,
                            simd::Store::kAssign, match.data());
       }},
      {"rank_interval",
       [&](simd::Level l) {
         simd::RankInterval(l, codes.data(), kN, rank.data(), kD, lo, span,
                            simd::Store::kAssign, match.data());
       }},
      {"byte_table",
       [&](simd::Level l) {
         simd::ByteTable(l, codes.data(), kN, in_table.data(), kD,
                         simd::Store::kAssign, match.data());
       }},
      {"or_bytes",
       [&](simd::Level l) {
         std::memset(match.data(), 0, kN);
         simd::OrBytes(l, src_bytes.data(), kN, match.data());
       }},
      {"count_bytes",
       [&](simd::Level l) {
         sink += simd::CountBytes(l, src_bytes.data(), kN);
       }},
      {"compress_store",
       [&](simd::Level l) {
         sink += simd::CompressStore(l, src_bytes.data(), kN, 0, sel.data());
       }},
      {"fnv_mix_codes",
       [&](simd::Level l) {
         std::fill(hashes.begin(), hashes.end(), kFnv64OffsetBasis);
         simd::FnvMixCodes(l, codes.data(), kN, hashes.data());
       }},
      {"fold_mask",
       [&](simd::Level l) {
         simd::FoldMask(l, hashes.data(), kN, (1u << 16) - 1, folded.data());
       }},
      {"gather_codes",
       [&](simd::Level l) {
         simd::GatherCodes(l, codes.data(), gather_rows.data(), kN,
                           gathered.data());
       }},
  };

  const std::vector<simd::Level> levels = AvailableLevels();
  std::printf("\nE19 SIMD kernels: %d rows × %d rounds, detected level %s\n",
              kN, kRounds, simd::LevelName(simd::DetectedLevel()));

  // Bit-identity cross-check first: every wider level must reproduce
  // the scalar kernel byte for byte on the full input.
  bool identical = true;
  for (const Kernel& k : kernels) {
    // Snapshot the scalar outputs, then compare each level's.
    k.body(simd::Level::kScalar);
    const auto m0 = match;
    const auto h0 = hashes;
    const auto f0 = folded;
    const auto g0 = gathered;
    const auto s0 = sel;
    for (size_t li = 1; li < levels.size(); ++li) {
      k.body(levels[li]);
      const bool same = match == m0 && hashes == h0 && folded == f0 &&
                        gathered == g0 && sel == s0;
      if (!same) {
        std::printf("E19 IDENTITY FAILURE: %s at level %s\n", k.name,
                    simd::LevelName(levels[li]));
        identical = false;
      }
    }
  }

  // Timings: ns/row per kernel per level.
  TextTable tt;
  std::vector<std::string> header = {"kernel"};
  for (const simd::Level l : levels) {
    header.push_back(std::string(simd::LevelName(l)) + " [ns/row]");
  }
  if (levels.size() > 1) header.push_back("speedup");
  tt.SetHeader(header);

  std::vector<BenchRecord> records;
  double eq_speedup = 0.0, interval_speedup = 0.0;
  for (const Kernel& k : kernels) {
    std::vector<double> ns_per_row;
    for (const simd::Level l : levels) {
      const double ms = TimeMs([&] {
        for (int r = 0; r < kRounds; ++r) k.body(l);
      });
      ns_per_row.push_back(ms * 1e6 / kRounds / kN);
      records.push_back({std::string(k.name) + "_" + simd::LevelName(l), kN,
                         1, ms * 1e6 / kRounds});
    }
    std::vector<std::string> row = {k.name};
    char buf[32];
    for (const double ns : ns_per_row) {
      std::snprintf(buf, sizeof(buf), "%.3f", ns);
      row.push_back(buf);
    }
    if (levels.size() > 1) {
      const double speedup = ns_per_row.front() / ns_per_row.back();
      std::snprintf(buf, sizeof(buf), "%.1fx", speedup);
      row.push_back(buf);
      if (std::strcmp(k.name, "eq_code") == 0) eq_speedup = speedup;
      if (std::strcmp(k.name, "code_interval") == 0) {
        interval_speedup = speedup;
      }
    }
    tt.AddRow(row);
  }
  std::printf("%s\n", tt.ToString().c_str());
  WriteJson("BENCH_simd.json", records);

  if (!identical) {
    std::printf("E19 shape check: FAILED (kernel outputs differ by level)\n");
    return 1;
  }
  // The perf gate only has meaning when the widest level exists.
  if (simd::DetectedLevel() < simd::Level::kAvx2) {
    std::printf("E19 perf gate skipped: no AVX2 at runtime (level %s) — "
                "identity checks passed\n",
                simd::LevelName(simd::DetectedLevel()));
    return 0;
  }
  const bool ok = eq_speedup >= 2.0 && interval_speedup >= 2.0;
  std::printf("E19 shape check (avx2 eq/interval scan ≥2x forced-scalar, "
              "got %.1fx / %.1fx; all levels bit-identical): %s\n",
              eq_speedup, interval_speedup, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  Table contractor = ValueOrDie(Contractor(), "contractor");
  Table big = ValueOrDie(CrossWithSequence(contractor, kScale, "new"),
                         "cross");
  ConstraintSet sigma = ValueOrDie(
      ParseConstraintSet(
          big.schema(),
          "new,city,url ->w new,city,url,dmerc_rgn,status; "
          "new,cmd_name,phone,url ->w "
          "new,cmd_name,phone,url,contractor_version,status_flag; "
          "new,address1,contractor_bus_name,contractor_type_id ->w "
          "new,address1,contractor_bus_name,contractor_type_id,url"),
      "sigma");
  SchemaDesign design{big.schema(), sigma};
  VrnfResult vrnf = ValueOrDie(VrnfDecompose(design), "vrnf");
  const Decomposition& d = vrnf.decomposition;

  std::optional<EncodedTable> enc;
  double encode_ms = TimeMs([&] { enc.emplace(big); });
  std::printf("input: %d rows × %d columns; one-time encode %.1f ms\n\n",
              big.num_rows(), big.num_columns(), encode_ms);

  // --- Theorem-11 round trip: project onto the VRNF components, join
  // them back, confirm the instance is reproduced.
  std::optional<Table> row_joined;
  double row_join_ms = TimeMs(
      [&] { row_joined = ValueOrDie(JoinComponents(big, d), "row join"); });

  // E15: the same encoded join swept over thread counts; index 0 is the
  // serial reference every parallel run must reproduce bit for bit.
  const std::vector<int> kJoinThreads = {1, 2, 4, 8};
  std::vector<double> enc_join_ms(kJoinThreads.size());
  std::vector<EncodedRelation> enc_joined;
  for (size_t t = 0; t < kJoinThreads.size(); ++t) {
    std::optional<EncodedRelation> r;
    enc_join_ms[t] = TimeMs([&] {
      r = ValueOrDie(JoinComponentsEncoded(big.schema(), *enc, d,
                                           ParallelOptions{kJoinThreads[t]}),
                     "encoded join");
    });
    enc_joined.push_back(std::move(*r));
  }

  bool join_deterministic = true;
  for (size_t t = 1; t < enc_joined.size(); ++t) {
    join_deterministic =
        join_deterministic && BitIdentical(enc_joined[0], enc_joined[t]);
  }
  // Both executors emit the declaration-order column layout, so the
  // columns align positionally; compare the multisets on codes.
  const bool join_same =
      SameMultisetEncoded(EncodedTable(*row_joined), enc_joined[0].columns) &&
      join_deterministic;
  const bool lossless =
      ValueOrDie(IsLosslessForInstanceEncoded(big.schema(), *enc, d),
                 "lossless") &&
      enc_joined[0].columns.num_rows() == big.num_rows();

  // --- point scans: all rows of one city, 100 rounds.
  auto city_value = [](int g1) {
    return Value::Str("City g1-" + std::to_string(g1));
  };
  const AttributeId city =
      ValueOrDie(big.schema().FindAttribute("city"), "city");
  const AttributeId status =
      ValueOrDie(big.schema().FindAttribute("status"), "status");
  volatile long long sink = 0;
  (void)sink;
  bool scan_same = true;
  double row_scan_ms = TimeMs([&] {
    for (int i = 0; i < 100; ++i) {
      Table hit = SelectWhere(big, [&](const Tuple& t) {
        return t[city] == city_value(i % 38);
      });
      sink += hit.num_rows();
    }
  });
  double enc_scan_ms = TimeMs([&] {
    for (int i = 0; i < 100; ++i) {
      const std::vector<int> sel =
          SelectRowsEncoded(*enc, {{city, city_value(i % 38)}});
      sink += static_cast<long long>(enc->GatherRows(sel).num_rows());
    }
  });
  for (int i = 0; i < 38; ++i) {  // equal hit sets, checked once per group
    const Table hit = SelectWhere(big, [&](const Tuple& t) {
      return t[city] == city_value(i);
    });
    const std::vector<int> sel =
        SelectRowsEncoded(*enc, {{city, city_value(i)}});
    scan_same = scan_same &&
                static_cast<int>(sel.size()) == hit.num_rows();
  }

  // --- group fact updates: flip the status of one city group, 20
  // rounds, alternating so every round touches the whole group.
  Table row_upd = big;
  EncodedTable enc_upd = *enc;
  int row_changed = 0;
  double row_update_ms = TimeMs([&] {
    for (int round = 0; round < 20; ++round) {
      Value v = Value::Str(round % 2 ? "active" : "suspended");
      row_changed += ValueOrDie(
          UpdateWhere(
              &row_upd,
              [&](const Tuple& t) { return t[city] == city_value(7); },
              status, v),
          "row update");
    }
  });
  int enc_changed = 0;
  double enc_update_ms = TimeMs([&] {
    for (int round = 0; round < 20; ++round) {
      Value v = Value::Str(round % 2 ? "active" : "suspended");
      enc_changed +=
          UpdateWhereEncoded(&enc_upd, {{city, city_value(7)}}, status, v);
    }
  });
  const bool update_same =
      row_changed == enc_changed &&
      SameMultisetEncoded(EncodedTable(row_upd), enc_upd);

  // --- E17: range/IN/OR scans over the sequence column (uniform
  // 1..kScale, 173 rows per value) at three selectivities, against a
  // decode-per-row fallback on the same encoding.
  const AttributeId seq =
      ValueOrDie(big.schema().FindAttribute("new"), "new");
  struct RangeCase {
    const char* label;
    Predicate pred;
  };
  std::vector<RangeCase> range_cases;
  range_cases.push_back(
      {"range 0.1% (new <= 1)",
       Predicate::And({Cmp(seq, CompareOp::kLe, Value::Int(1))})});
  range_cases.push_back(
      {"range 1% (new <= 10)",
       Predicate::And({Cmp(seq, CompareOp::kLe, Value::Int(10))})});
  range_cases.push_back(
      {"range 50% (new <= 500)",
       Predicate::And({Cmp(seq, CompareOp::kLe, Value::Int(500))})});
  {
    std::vector<Value> probes;
    for (int k = 1; k <= 10; ++k) probes.push_back(Value::Int(k * 97));
    range_cases.push_back(
        {"IN 1% (10 probes)", Predicate::And({In(seq, std::move(probes))})});
  }
  {
    Predicate por;
    por.disjuncts.push_back({Cmp(seq, CompareOp::kLe, Value::Int(5))});
    por.disjuncts.push_back({Cmp(city, CompareOp::kEq, city_value(7)),
                             Cmp(seq, CompareOp::kGt, Value::Int(990))});
    range_cases.push_back({"OR of two conjunctions", std::move(por)});
  }

  // The fallback: decode every cell an atom touches and evaluate the
  // predicate row-major — the cost of the scan without compiled
  // intervals. Same selection-vector contract as SelectRowsEncoded.
  auto decode_per_row = [&](const Predicate& pred) {
    std::vector<int> out;
    const int n = enc->num_rows();
    for (int i = 0; i < n; ++i) {
      bool any = false;
      for (const Conjunction& conj : pred.disjuncts) {
        bool all = true;
        for (const PredicateAtom& atom : conj) {
          const Value& cell =
              enc->DecodeCode(atom.column, enc->code(atom.column, i));
          if (!MatchesAtom(cell, atom)) {
            all = false;
            break;
          }
        }
        if (all) {
          any = true;
          break;
        }
      }
      if (any) out.push_back(i);
    }
    return out;
  };

  constexpr int kScanRounds = 10;
  struct RangeResult {
    const char* label;
    double fallback_ms;
    double encoded_ms;
    size_t hits;
    bool same;
  };
  std::vector<RangeResult> range_results;
  for (const RangeCase& rc : range_cases) {
    std::vector<int> fallback_sel, encoded_sel;
    const double fb_ms = TimeMs([&] {
      for (int r = 0; r < kScanRounds; ++r) {
        fallback_sel = decode_per_row(rc.pred);
      }
    });
    const double en_ms = TimeMs([&] {
      for (int r = 0; r < kScanRounds; ++r) {
        encoded_sel = SelectRowsEncoded(*enc, rc.pred);
      }
    });
    range_results.push_back({rc.label, fb_ms, en_ms, encoded_sel.size(),
                             fallback_sel == encoded_sel});
  }

  TextTable tt;
  tt.SetHeader({"operator", "row-major [ms]", "columnar [ms]", "speedup"});
  char a[32], b[32], c[32];
  auto add_row = [&](const char* label, double lhs, double rhs) {
    std::snprintf(a, sizeof(a), "%.1f", lhs);
    std::snprintf(b, sizeof(b), "%.1f", rhs);
    std::snprintf(c, sizeof(c), "%.1fx", lhs / rhs);
    tt.AddRow({label, a, b, c});
  };
  add_row("Theorem-11 project+join", row_join_ms, enc_join_ms[0]);
  for (size_t t = 1; t < kJoinThreads.size(); ++t) {
    char label[48];
    std::snprintf(label, sizeof(label), "Theorem-11 project+join (%d threads)",
                  kJoinThreads[t]);
    add_row(label, row_join_ms, enc_join_ms[t]);
  }
  add_row("100 point scans by city", row_scan_ms, enc_scan_ms);
  add_row("20 group fact updates", row_update_ms, enc_update_ms);
  std::printf("%s\n", tt.ToString().c_str());
  std::printf("results multiset-identical: join %s, scans %s, updates %s; "
              "join bit-identical across threads {1,2,4,8}: %s; "
              "Theorem-11 round trip lossless: %s\n",
              join_same ? "yes" : "NO", scan_same ? "yes" : "NO",
              update_same ? "yes" : "NO", join_deterministic ? "yes" : "NO",
              lossless ? "yes" : "NO");

  // E15 scaling summary.
  std::printf("\nE15 morsel-join thread scaling (serial %.1f ms):\n",
              enc_join_ms[0]);
  for (size_t t = 1; t < kJoinThreads.size(); ++t) {
    std::printf("  %d threads: %.1f ms (%.2fx over serial)\n",
                kJoinThreads[t], enc_join_ms[t],
                enc_join_ms[0] / enc_join_ms[t]);
  }

  // E17 range/IN/OR scan summary.
  std::printf("\nE17 range/IN/OR scans (%d rounds each):\n", kScanRounds);
  TextTable rt;
  rt.SetHeader({"predicate", "decode/row [ms]", "compiled [ms]", "speedup",
                "hits", "identical"});
  bool range_same = true;
  double range_gate_speedup = 0.0;
  for (const RangeResult& rr : range_results) {
    char f1[32], f2[32], f3[32], f4[32];
    std::snprintf(f1, sizeof(f1), "%.1f", rr.fallback_ms);
    std::snprintf(f2, sizeof(f2), "%.1f", rr.encoded_ms);
    const double speedup = rr.fallback_ms / rr.encoded_ms;
    std::snprintf(f3, sizeof(f3), "%.1fx", speedup);
    std::snprintf(f4, sizeof(f4), "%zu", rr.hits);
    rt.AddRow({rr.label, f1, f2, f3, f4, rr.same ? "yes" : "NO"});
    range_same = range_same && rr.same;
    if (std::string(rr.label).find("range 1%") != std::string::npos) {
      range_gate_speedup = speedup;
    }
  }
  std::printf("%s\n", rt.ToString().c_str());

  // --- machine-readable timings.
  const int rows = big.num_rows();
  std::vector<BenchRecord> records;
  records.push_back({"encode", rows, 1, encode_ms * 1e6});
  records.push_back({"join_row_major", rows, 1, row_join_ms * 1e6});
  for (size_t t = 0; t < kJoinThreads.size(); ++t) {
    records.push_back(
        {"join_encoded", rows, kJoinThreads[t], enc_join_ms[t] * 1e6});
  }
  records.push_back({"scan_row_major", rows, 1, row_scan_ms * 1e6 / 100});
  records.push_back({"scan_encoded", rows, 1, enc_scan_ms * 1e6 / 100});
  records.push_back({"update_row_major", rows, 1, row_update_ms * 1e6 / 20});
  records.push_back({"update_encoded", rows, 1, enc_update_ms * 1e6 / 20});
  WriteJson("BENCH_columnar.json", records);

  std::vector<BenchRecord> range_records;
  for (const RangeResult& rr : range_results) {
    std::string op(rr.label);
    for (char& ch : op) {
      if (ch == ' ') ch = '_';
    }
    range_records.push_back(
        {op + "_decode_per_row", rows, 1,
         rr.fallback_ms * 1e6 / kScanRounds});
    range_records.push_back(
        {op + "_compiled", rows, 1, rr.encoded_ms * 1e6 / kScanRounds});
  }
  WriteJson("BENCH_rangescan.json", range_records);

  // The E17 gate: both sides single-threaded, so it holds on any core
  // count — the compiled interval scan does one branch-free compare
  // per cell while the fallback pays a dictionary decode + Value
  // comparison per cell.
  const bool range_ok = range_same && range_gate_speedup >= 4.0;
  std::printf("E17 shape check (identical selections, compiled range scan "
              "≥4x decode-per-row at 1%% selectivity, got %.1fx): %s\n",
              range_gate_speedup, range_ok ? "OK" : "FAILED");

  // E19 runs last so its table lands next to the shape checks.
  const bool simd_ok = RunSimdE19() == 0;

  bool ok = join_same && scan_same && update_same && lossless && range_ok &&
            simd_ok && row_join_ms / enc_join_ms[0] >= 2.0;
  // The parallel-speedup gate needs real cores; on a smaller machine it
  // is reported but not enforced.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4) {
    const double scaling = enc_join_ms[0] / enc_join_ms[2];  // 4 threads
    ok = ok && scaling >= 2.5;
    std::printf("shape check (columnar join ≥2× row-major, 4-thread join "
                "≥2.5× serial, identical results): %s\n",
                ok ? "OK" : "FAILED");
  } else {
    std::printf("4-thread scaling gate skipped: only %u hardware threads\n",
                hw);
    std::printf("shape check (columnar join ≥2× row-major, identical "
                "results): %s\n",
                ok ? "OK" : "FAILED");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main(int argc, char** argv) {
  // `--check` runs only the E19 kernel gate (fast; skips the perf bar
  // without AVX2) — the scalar-forced CI leg uses it.
  if (argc > 1 && std::strcmp(argv[1], "--check") == 0) {
    return sqlnf::RunSimdE19();
  }
  return sqlnf::Run();
}
