// E2 — Figure 6: relative sizes of set-projections on λ-FDs (and on
// nn-FDs whose LHSs are not keys).
//
// Paper's observations to reproduce in shape:
//  * λ-FD projection sizes are bimodal with a gap (paper: no values
//    between 52% and 78%): the high mode is "dirty near-keys" (LHSs
//    that should be keys), the low mode genuinely decomposable FDs;
//  * nn-FDs show no clear gap.
//
// Our corpus generator plants both modes explicitly (near_key_fraction
// + dirty rows vs low-cardinality LHS FDs).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/datagen/generator.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

void PrintHistogram(const char* label, const std::vector<double>& values) {
  const int kBuckets = 10;
  std::vector<int> buckets(kBuckets, 0);
  for (double v : values) {
    int b = std::min(kBuckets - 1, static_cast<int>(v * kBuckets));
    ++buckets[b];
  }
  std::printf("%s (n=%zu)\n", label, values.size());
  for (int b = 0; b < kBuckets; ++b) {
    std::printf("  %3d%%-%3d%% | %-4d ", b * 10, (b + 1) * 10,
                buckets[b]);
    for (int i = 0; i < buckets[b] && i < 60; ++i) std::printf("#");
    std::printf("\n");
  }
}

int Run() {
  using bench::ValueOrDie;

  std::vector<Table> corpus =
      ValueOrDie(BuildCorpus(DefaultCorpusProfiles()), "corpus");

  std::vector<double> lambda_sizes;
  std::vector<double> nn_sizes;
  for (const Table& table : corpus) {
    DiscoveryOptions options;
    options.hitting.max_size = 5;
    options.hitting.max_results = 2000;
    DiscoveryResult result =
        ValueOrDie(DiscoverConstraints(table, options), "mine");
    FdClassification cls = ClassifyDiscovered(table, result);
    for (const auto& fd : cls.lambda_fds) {
      lambda_sizes.push_back(
          ValueOrDie(RelativeProjectionSize(table, fd), "size"));
    }
    for (const auto& fd : result.nn_fds) {
      // "nn-FDs whose LHSs are not keys" (the paper's second series).
      if (Satisfies(table, KeyConstraint::Possible(fd.lhs))) continue;
      FunctionalDependency padded{fd.lhs, fd.lhs.Union(fd.rhs),
                                  Mode::kPossible};
      nn_sizes.push_back(
          ValueOrDie(RelativeProjectionSize(table, padded), "nn size"));
    }
  }
  std::sort(lambda_sizes.begin(), lambda_sizes.end());
  std::sort(nn_sizes.begin(), nn_sizes.end());

  PrintHistogram("Figure 6a: relative projection sizes of lambda-FDs",
                 lambda_sizes);
  std::printf("\n");
  PrintHistogram("Figure 6b: relative projection sizes of non-key nn-FDs",
                 nn_sizes);

  // The paper's headline observation: a gap in the λ distribution
  // separating decomposition-worthy FDs from dirty near-keys.
  double largest_gap = 0, gap_lo = 0, gap_hi = 0;
  for (size_t i = 1; i < lambda_sizes.size(); ++i) {
    double gap = lambda_sizes[i] - lambda_sizes[i - 1];
    if (gap > largest_gap) {
      largest_gap = gap;
      gap_lo = lambda_sizes[i - 1];
      gap_hi = lambda_sizes[i];
    }
  }
  std::printf(
      "\nlargest gap in the lambda distribution: %.0f%% .. %.0f%% "
      "(paper: 52%% .. 78%%)\n",
      gap_lo * 100, gap_hi * 100);
  int low_mode = 0;
  for (double v : lambda_sizes) {
    if (v <= gap_lo + 1e-9) ++low_mode;
  }
  std::printf(
      "lambda-FDs below the gap (decomposition-worthy): %d of %zu "
      "(paper: 27 of 83 usable)\n",
      low_mode, lambda_sizes.size());

  const bool ok = !lambda_sizes.empty() && !nn_sizes.empty() &&
                  largest_gap > 0.10;
  std::printf("shape check (non-empty series, gap > 10%%): %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
