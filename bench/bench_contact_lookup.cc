// E3 — Figures 7 and 8: the LMRP contact_draft_lookup case study.
//
// Prints the Figure-7 snippet, its VRNF decomposition by
//   σ: first_name,last_name,city ->w first_name,last_name,city,state_id
// (Figure 8), and the full-table numbers: 124 rows → 105-row set
// projection (19 sources of potential inconsistency eliminated), with
// c<first_name,last_name,city> holding on the projection and
// city ->w state_id already failing on the snippet.

#include <cstdio>

#include "bench_util.h"
#include "sqlnf/constraints/parser.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/report.h"
#include "sqlnf/decomposition/vrnf_decompose.h"

namespace sqlnf {
namespace {

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  // ---- Figure 7: the snippet.
  Table snippet = ValueOrDie(ContactDraftLookupSnippet(), "snippet");
  std::printf("Figure 7 snippet I of contact_draft_lookup:\n%s\n",
              snippet.ToString().c_str());

  FunctionalDependency sigma =
      ValueOrDie(ContactSigmaFd(snippet.schema()), "sigma");
  std::printf("sigma = %s\n", sigma.ToString(snippet.schema()).c_str());
  std::printf("snippet satisfies sigma: %s\n",
              Satisfies(snippet, sigma) ? "yes" : "NO");
  FunctionalDependency city_state =
      ValueOrDie(ParseFd(snippet.schema(), "city ->w state_id"), "cs");
  std::printf("city ->w state_id on snippet: %s (paper: fails)\n\n",
              Satisfies(snippet, city_state) ? "holds" : "fails");

  // ---- Figure 8: the snippet's decomposition.
  SchemaDesign snippet_design{snippet.schema(), {}};
  snippet_design.sigma.AddFd(sigma);
  VrnfResult snippet_vrnf =
      ValueOrDie(VrnfDecompose(snippet_design), "snippet vrnf");
  auto snippet_tables =
      ValueOrDie(ProjectAll(snippet, snippet_vrnf.decomposition),
                 "snippet projections");
  std::printf("Figure 8 (VRNF decomposition of I):\n");
  for (const Table& t : snippet_tables) {
    std::printf("%s\n", t.ToString().c_str());
  }

  // ---- The full 14x124 replica.
  Table contact = ValueOrDie(ContactDraftLookup(), "contact");
  FunctionalDependency full_sigma =
      ValueOrDie(ContactSigmaFd(contact.schema()), "full sigma");
  SchemaDesign design{contact.schema(), {}};
  design.sigma.AddFd(full_sigma);

  VrnfResult vrnf;
  double decompose_ms =
      TimeMs([&] { vrnf = ValueOrDie(VrnfDecompose(design), "vrnf"); });
  auto report = ValueOrDie(
      ReportDecomposition(contact, vrnf.decomposition), "report");

  std::printf("full table: %d rows x %d columns\n", contact.num_rows(),
              contact.num_columns());
  for (size_t i = 0; i < report.tables.size(); ++i) {
    std::printf("  component %s: %d rows x %d cols\n",
                vrnf.decomposition.components[i]
                    .ToString(contact.schema())
                    .c_str(),
                report.tables[i].num_rows(),
                report.tables[i].num_columns());
  }

  int set_rows = 0;
  for (size_t i = 0; i < report.tables.size(); ++i) {
    if (!vrnf.decomposition.components[i].multiset) {
      set_rows = report.tables[i].num_rows();
    }
  }
  std::printf(
      "set projection rows: %d (paper: 105); redundancy sources "
      "eliminated: %d (paper: 19)\n",
      set_rows, contact.num_rows() - set_rows);

  bool lossless =
      ValueOrDie(IsLosslessForInstance(contact, vrnf.decomposition),
                 "lossless");
  std::printf("lossless reconstruction: %s; decomposition time %.1f ms\n",
              lossless ? "yes" : "NO", decompose_ms);

  const bool ok = Satisfies(snippet, sigma) &&
                  !Satisfies(snippet, city_state) && set_rows == 105 &&
                  lossless;
  std::printf("shape check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
