// E1 — Section 7 quantitative table: FD counts mined from the corpus.
//
//   paper (130 real tables):  nn-FDs 847 | p-FDs 557 | c-FDs 419
//                             | t-FDs 205 | λ-FDs 83
//
// We mine the 130-table synthetic corpus (DESIGN.md substitution). The
// paper calls its own numbers qualitative; the shape under test is the
// monotone chain  nn ≥ ~p ≥ c ≥ t ≥ λ  with every class non-empty and
// λ-FDs a small fraction, i.e. c-FDs occur frequently and a usable
// subset of them drives VRNF decomposition.

#include <cstdio>

#include "bench_util.h"
#include "sqlnf/datagen/generator.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/util/parallel.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  std::vector<Table> corpus =
      ValueOrDie(BuildCorpus(DefaultCorpusProfiles()), "corpus");
  std::printf("mining %zu synthetic tables (7 source profiles)...\n",
              corpus.size());

  // One classification per table; mined serially for the reference
  // timing, then re-mined corpus-level with one table per pool task.
  auto mine_one = [](const Table& table) {
    DiscoveryOptions options;
    options.hitting.max_size = 5;
    options.hitting.max_results = 2000;
    DiscoveryResult result =
        bench::ValueOrDie(DiscoverConstraints(table, options), "mine");
    return ClassifyDiscovered(table, result);
  };

  std::vector<FdClassification> classified(corpus.size());
  double total_ms = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    total_ms += TimeMs([&] { classified[i] = mine_one(corpus[i]); });
  }

  const int kThreads = 4;
  std::vector<FdClassification> classified_par(corpus.size());
  double parallel_ms = TimeMs([&] {
    ThreadPool pool(kThreads);
    pool.RunTasks(static_cast<int>(corpus.size()), [&](int i) {
      classified_par[i] = mine_one(corpus[i]);
    });
  });

  int nn = 0, p = 0, c = 0, t = 0, lambda = 0;
  bool parallel_identical = true;
  for (size_t i = 0; i < corpus.size(); ++i) {
    const FdClassification& cls = classified[i];
    nn += cls.nn_count;
    p += cls.p_count;
    c += cls.c_count;
    t += cls.t_count;
    lambda += cls.lambda_count;
    parallel_identical =
        parallel_identical &&
        classified_par[i].nn_count == cls.nn_count &&
        classified_par[i].p_count == cls.p_count &&
        classified_par[i].c_count == cls.c_count &&
        classified_par[i].t_count == cls.t_count &&
        classified_par[i].lambda_count == cls.lambda_count;
  }

  TextTable tt;
  tt.SetHeader({"", "nn-FDs", "p-FDs", "c-FDs", "t-FDs", "lambda-FDs"});
  tt.AddRow({"paper (130 real tables)", "847", "557", "419", "205", "83"});
  tt.AddRow({"here (130 synthetic)", std::to_string(nn),
             std::to_string(p), std::to_string(c), std::to_string(t),
             std::to_string(lambda)});
  std::printf("%s\n", tt.ToString().c_str());
  std::printf("mining time: serial %.1f s (%.1f ms/table); corpus-level "
              "one-table-per-task at %d threads %.1f s (%.2fx)\n",
              total_ms / 1000.0, total_ms / corpus.size(), kThreads,
              parallel_ms / 1000.0, total_ms / parallel_ms);
  std::printf("parallel corpus counts identical to serial: %s\n",
              parallel_identical ? "OK" : "FAILED");

  const bool shape_ok =
      nn > 0 && p > 0 && c > 0 && t > 0 && lambda > 0 && c >= t &&
      t >= lambda;
  std::printf("shape check (all classes populated, c >= t >= lambda): %s\n",
              shape_ok ? "OK" : "FAILED");
  return shape_ok && parallel_identical ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
