// E1 — Section 7 quantitative table: FD counts mined from the corpus.
//
//   paper (130 real tables):  nn-FDs 847 | p-FDs 557 | c-FDs 419
//                             | t-FDs 205 | λ-FDs 83
//
// We mine the 130-table synthetic corpus (DESIGN.md substitution). The
// paper calls its own numbers qualitative; the shape under test is the
// monotone chain  nn ≥ ~p ≥ c ≥ t ≥ λ  with every class non-empty and
// λ-FDs a small fraction, i.e. c-FDs occur frequently and a usable
// subset of them drives VRNF decomposition.

#include <cstdio>

#include "bench_util.h"
#include "sqlnf/datagen/generator.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  std::vector<Table> corpus =
      ValueOrDie(BuildCorpus(DefaultCorpusProfiles()), "corpus");
  std::printf("mining %zu synthetic tables (7 source profiles)...\n",
              corpus.size());

  int nn = 0, p = 0, c = 0, t = 0, lambda = 0;
  double total_ms = 0;
  for (const Table& table : corpus) {
    DiscoveryOptions options;
    options.hitting.max_size = 5;
    options.hitting.max_results = 2000;
    DiscoveryResult result;
    FdClassification cls;
    total_ms += TimeMs([&] {
      result = ValueOrDie(DiscoverConstraints(table, options), "mine");
      cls = ClassifyDiscovered(table, result);
    });
    nn += cls.nn_count;
    p += cls.p_count;
    c += cls.c_count;
    t += cls.t_count;
    lambda += cls.lambda_count;
  }

  TextTable tt;
  tt.SetHeader({"", "nn-FDs", "p-FDs", "c-FDs", "t-FDs", "lambda-FDs"});
  tt.AddRow({"paper (130 real tables)", "847", "557", "419", "205", "83"});
  tt.AddRow({"here (130 synthetic)", std::to_string(nn),
             std::to_string(p), std::to_string(c), std::to_string(t),
             std::to_string(lambda)});
  std::printf("%s\n", tt.ToString().c_str());
  std::printf("mining time: %.1f s total, %.1f ms/table\n",
              total_ms / 1000.0, total_ms / corpus.size());

  const bool shape_ok =
      nn > 0 && p > 0 && c > 0 && t > 0 && lambda > 0 && c >= t &&
      t >= lambda;
  std::printf("shape check (all classes populated, c >= t >= lambda): %s\n",
              shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
