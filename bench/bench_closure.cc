// E8 — Theorems 3/5: linear-time implication.
//
// Scaling evidence for the closure engine: the counter-based
// ClosureEngine grows linearly with the number of FDs, while the naive
// Algorithm-1/2 loops grow quadratically. Also times full implication
// queries for the combined class (FDs + keys).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sqlnf/reasoning/closure.h"
#include "sqlnf/reasoning/implication.h"

namespace sqlnf {
namespace {

constexpr int kAttributes = 32;

ConstraintSet MakeSigma(int num_fds) {
  Rng rng(num_fds * 7 + 1);
  return bench::RandomBenchSigma(&rng, kAttributes, num_fds, 0);
}

void BM_ClosureLinear(benchmark::State& state) {
  const int num_fds = static_cast<int>(state.range(0));
  Rng rng(3);
  TableSchema schema = bench::RandomBenchSchema(&rng, kAttributes);
  ConstraintSet sigma = MakeSigma(num_fds);
  ClosureEngine engine(sigma, schema.nfs());
  AttributeSet x = {0, 5, 9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.PClosure(x));
    benchmark::DoNotOptimize(engine.CClosure(x));
  }
  state.SetComplexityN(num_fds);
}
BENCHMARK(BM_ClosureLinear)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_ClosureNaive(benchmark::State& state) {
  const int num_fds = static_cast<int>(state.range(0));
  Rng rng(3);
  TableSchema schema = bench::RandomBenchSchema(&rng, kAttributes);
  ConstraintSet sigma = MakeSigma(num_fds);
  AttributeSet x = {0, 5, 9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PClosureNaive(sigma, schema.nfs(), x));
    benchmark::DoNotOptimize(CClosureNaive(sigma, schema.nfs(), x));
  }
  state.SetComplexityN(num_fds);
}
BENCHMARK(BM_ClosureNaive)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

void BM_ImplicationCombinedClass(benchmark::State& state) {
  const int num_constraints = static_cast<int>(state.range(0));
  Rng rng(11);
  TableSchema schema = bench::RandomBenchSchema(&rng, kAttributes);
  ConstraintSet sigma = bench::RandomBenchSigma(
      &rng, kAttributes, num_constraints * 3 / 4, num_constraints / 4);
  // Query: one FD and one key (engine built per iteration: the
  // Theorem-5 bound covers building Σ|FD and the closure index).
  FunctionalDependency fd{{0, 5}, {9}, Mode::kCertain};
  KeyConstraint key{{0, 5, 9}, Mode::kPossible};
  for (auto _ : state) {
    Implication imp(schema, sigma);
    benchmark::DoNotOptimize(imp.Implies(fd));
    benchmark::DoNotOptimize(imp.Implies(key));
  }
  state.SetComplexityN(num_constraints);
}
BENCHMARK(BM_ImplicationCombinedClass)->RangeMultiplier(4)
    ->Range(16, 4096)->Complexity(benchmark::oN);

}  // namespace
}  // namespace sqlnf

BENCHMARK_MAIN();
