// Mixed read/write concurrency bench over the snapshot machinery
// (EXPERIMENTS.md E16): ONE writer thread batching transactions through
// the incremental enforcer while {1, 4, 16} reader threads stream
// point SELECTs against GetSnapshot/SelectFromSnapshot. Readers never
// block the writer beyond the snapshot-publication mutex; the scan and
// decode run on an immutable epoch.
//
// Emits BENCH_concurrency.json: one record per (op, reader count) with
// the read/write mix, aggregate ops/sec, and per-op p99 latency, for
// the plots in EXPERIMENTS.md. Shape checks (not timing gates): zero
// reader errors, per-reader monotone epochs and row counts, final
// enforcer invariants, and the last published snapshot bit-identical
// to the live encoding.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"
#include "sqlnf/core/value.h"
#include "sqlnf/engine/catalog.h"
#include "sqlnf/util/rng.h"

namespace sqlnf::bench {
namespace {

// Table size, statements per transaction, and wall-clock budget per
// reader configuration. 20k rows keeps one snapshot scan in the tens
// of microseconds so both sides get thousands of ops per run.
constexpr int kPreloadRows = 20000;
constexpr int kUpdatesPerTxn = 8;
constexpr double kRunMs = 300.0;
constexpr int kReaderCounts[] = {1, 4, 16};

struct BenchRecord {
  std::string op;
  int readers = 0;
  std::string mix;  // e.g. "4r:1w"
  double ops_per_sec = 0;
  double p99_us = 0;
};

double Percentile(std::vector<double>* xs, double p) {
  if (xs->empty()) return 0;
  std::sort(xs->begin(), xs->end());
  size_t i = static_cast<size_t>(p * static_cast<double>(xs->size() - 1));
  return (*xs)[i];
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// kv(k, v, w) with a certain key on the nullable-free k column; v and
// w are payload churned by the writer. (Database owns a mutex, so it
// is populated in place rather than returned.)
void Preload(Database* db) {
  WriterScope writer;  // runs on the main thread before any reader exists
  TableSchema schema =
      ValueOrDie(TableSchema::MakeCompact("kv", "kvw", "k"), "schema");
  ConstraintSet sigma;
  AttributeSet key;
  key.Add(0);
  sigma.AddKey({key, Mode::kCertain});

  Table data(schema);
  for (int i = 0; i < kPreloadRows; ++i) {
    CheckOk(data.AddRow(Tuple({Value::Int(i), Value::Str("v0"),
                               Value::Str("w" + std::to_string(i % 97))})),
            "preload AddRow");
  }
  CheckOk(db->IngestTable(data, sigma), "IngestTable");
}

struct ReaderResult {
  std::vector<double> latencies_us;
  int64_t ops = 0;
  int64_t hits = 0;
};

// One reader: loop GetSnapshot + point SELECT on a random preloaded
// key until `stop`. Asserts the snapshot stream is sane (monotone
// epochs/rows, whole-batch row counts are the writer's job to keep).
void ReaderLoop(Database* db, std::atomic<bool>* stop,
                std::atomic<int>* failures, uint64_t seed,
                ReaderResult* out) {
  Rng rng(seed);
  uint64_t last_epoch = 0;
  int last_rows = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    auto start = std::chrono::steady_clock::now();
    Result<TableSnapshot> snap = db->GetSnapshot("kv");
    if (!snap.ok()) {
      failures->fetch_add(1);
      return;
    }
    int64_t key = rng.Uniform(0, kPreloadRows - 1);
    Result<Table> rows = SelectFromSnapshot(
        snap.value(), {{AttributeId{0}, Value::Int(key)}});
    if (!rows.ok() || rows.value().num_rows() != 1) {
      failures->fetch_add(1);
      return;
    }
    out->latencies_us.push_back(MicrosSince(start));
    ++out->ops;
    out->hits += rows.value().num_rows();
    // Epochs and committed row counts only ever advance: a snapshot
    // can never travel backwards in the commit history.
    if (snap.value().epoch < last_epoch ||
        (snap.value().epoch == last_epoch &&
         snap.value().num_rows() < last_rows)) {
      failures->fetch_add(1);
      return;
    }
    last_epoch = snap.value().epoch;
    last_rows = snap.value().num_rows();
  }
}

struct WriterResult {
  std::vector<double> txn_latencies_us;
  int64_t txns = 0;
  int64_t statements = 0;
};

// The single writer: each transaction updates kUpdatesPerTxn random
// payload cells, inserts a fresh key, and deletes the fresh key of the
// previous transaction (table size stays ~kPreloadRows). One in ten
// transactions rolls back instead of committing, so readers also race
// the undo-log replay path.
void WriterLoop(Database* db, std::atomic<bool>* stop,
                std::atomic<int>* failures, WriterResult* out) {
  WriterScope writer;  // this function IS the single writer thread
  Rng rng(0x5eedull);
  int64_t next_key = kPreloadRows;
  int64_t pending_delete = -1;
  while (!stop->load(std::memory_order_relaxed)) {
    auto start = std::chrono::steady_clock::now();
    if (!db->Begin().ok()) {
      failures->fetch_add(1);
      return;
    }
    bool ok = true;
    for (int i = 0; i < kUpdatesPerTxn && ok; ++i) {
      int64_t key = rng.Uniform(0, kPreloadRows - 1);
      Result<int> changed = db->Update(
          "kv", {{AttributeId{0}, Value::Int(key)}}, AttributeId{1},
          Value::Str("r" + std::to_string(out->statements)));
      ok = changed.ok();
      ++out->statements;
    }
    if (ok) {
      ok = db->Insert("kv", Tuple({Value::Int(next_key), Value::Str("fresh"),
                                   Value::Null()}))
               .ok();
      ++out->statements;
    }
    if (ok && pending_delete >= 0) {
      Result<int> removed =
          db->Delete("kv", {{AttributeId{0}, Value::Int(pending_delete)}});
      ok = removed.ok() && removed.value() == 1;
      ++out->statements;
    }
    bool commit = ok && !rng.Chance(0.1);
    Status end = commit ? db->Commit() : db->Rollback();
    if (!ok || !end.ok()) {
      failures->fetch_add(1);
      return;
    }
    if (commit) {
      pending_delete = next_key;
      ++next_key;
    }
    out->txn_latencies_us.push_back(MicrosSince(start));
    ++out->txns;
  }
}

void WriteJson(const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen("BENCH_concurrency.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WARN could not open BENCH_concurrency.json\n");
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"readers\": %d, \"mix\": \"%s\", "
                 "\"ops_per_sec\": %.1f, \"p99_us\": %.2f}%s\n",
                 r.op.c_str(), r.readers, r.mix.c_str(), r.ops_per_sec,
                 r.p99_us, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote BENCH_concurrency.json (%zu records)\n",
               records.size());
}

int Run() {
  std::vector<BenchRecord> records;
  std::vector<double> read_throughputs;
  std::printf("%-22s %8s %8s %14s %12s\n", "op", "readers", "mix", "ops/sec",
              "p99(us)");

  for (int readers : kReaderCounts) {
    Database db;
    Preload(&db);
    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};
    std::vector<ReaderResult> reader_results(readers);
    WriterResult writer_result;

    std::vector<std::thread> threads;
    threads.reserve(readers + 1);
    threads.emplace_back(WriterLoop, &db, &stop, &failures, &writer_result);
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back(ReaderLoop, &db, &stop, &failures,
                           0x9000ull + static_cast<uint64_t>(r),
                           &reader_results[r]);
    }
    auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(kRunMs)));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads) t.join();
    double elapsed_s = MicrosSince(start) / 1e6;

    if (failures.load() != 0) {
      std::fprintf(stderr, "FAIL %d reader/writer errors at %d readers\n",
                   failures.load(), readers);
      return 1;
    }

    // Shape checks on the final state: enforcer invariants hold and the
    // published snapshot is bit-identical to the live encoding. All
    // threads have joined, so the main thread owns the writer role.
    WriterScope shape_check_writer;
    const StoredTable* stored = ValueOrDie(db.Find("kv"), "Find kv");
    CheckOk(stored->enforcer().CheckInvariants(), "CheckInvariants");
    TableSnapshot final_snap = ValueOrDie(db.GetSnapshot("kv"), "snapshot");
    if (!final_snap.columns->BitIdentical(stored->columns())) {
      std::fprintf(stderr, "FAIL final snapshot diverged from live columns\n");
      return 1;
    }

    std::vector<double> read_latencies;
    int64_t read_ops = 0;
    for (ReaderResult& rr : reader_results) {
      read_ops += rr.ops;
      read_latencies.insert(read_latencies.end(), rr.latencies_us.begin(),
                            rr.latencies_us.end());
    }
    if (read_ops == 0 || writer_result.txns == 0) {
      std::fprintf(stderr, "FAIL starved side at %d readers (reads=%lld "
                           "txns=%lld)\n",
                   readers, static_cast<long long>(read_ops),
                   static_cast<long long>(writer_result.txns));
      return 1;
    }

    std::string mix = std::to_string(readers) + "r:1w";
    BenchRecord read_rec{"snapshot_point_select", readers, mix,
                         static_cast<double>(read_ops) / elapsed_s,
                         Percentile(&read_latencies, 0.99)};
    BenchRecord write_rec{"writer_txn_commit", readers, mix,
                          static_cast<double>(writer_result.txns) / elapsed_s,
                          Percentile(&writer_result.txn_latencies_us, 0.99)};
    for (const BenchRecord& r : {read_rec, write_rec}) {
      std::printf("%-22s %8d %8s %14.1f %12.2f\n", r.op.c_str(), r.readers,
                  r.mix.c_str(), r.ops_per_sec, r.p99_us);
    }
    records.push_back(read_rec);
    records.push_back(write_rec);
    read_throughputs.push_back(read_rec.ops_per_sec);
  }

  // Scaling gate, only meaningful with real cores to spread over: with
  // 8+ hardware threads, 4 readers on immutable snapshots must beat 1
  // reader's aggregate throughput. Kept loose (1.3x, not 4x) — the
  // writer competes for cores and CI boxes are noisy.
  unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 8 && read_throughputs.size() >= 2 &&
      read_throughputs[1] < 1.3 * read_throughputs[0]) {
    std::fprintf(stderr,
                 "FAIL no reader scaling on %u cores: 1r=%.0f/s 4r=%.0f/s\n",
                 hw, read_throughputs[0], read_throughputs[1]);
    return 1;
  }
  if (hw < 8) {
    std::printf("(scaling gate skipped: hardware_concurrency=%u)\n", hw);
  }

  WriteJson(records);
  std::printf("OK\n");
  return 0;
}

}  // namespace
}  // namespace sqlnf::bench

int main() { return sqlnf::bench::Run(); }
