// E10 — Theorem 16 / Algorithm 3 cost, plus the classical-BCNF ablation
// (T_S = T with a key: the idealized relational special case).
//
// The dominant cost is the exponential VRNF certification of the final
// components (the projection problem is co-NP-complete, Theorem 17), so
// the sweep is over the number of attributes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sqlnf/decomposition/bcnf_decompose.h"
#include "sqlnf/decomposition/vrnf_decompose.h"

namespace sqlnf {
namespace {

// A design with `n` attributes and n/3 planted total FDs.
SchemaDesign MakeDesign(int n, bool idealized) {
  Rng rng(n * 13 + (idealized ? 1 : 0));
  std::vector<std::string> names;
  std::vector<std::string> not_null;
  for (int i = 0; i < n; ++i) {
    names.push_back("a" + std::to_string(i));
    if (idealized || rng.Chance(0.5)) not_null.push_back(names.back());
  }
  TableSchema schema = bench::ValueOrDie(
      TableSchema::Make("norm", names, not_null), "schema");
  ConstraintSet sigma;
  for (int f = 0; f < n / 3; ++f) {
    AttributeSet lhs;
    lhs.Add(static_cast<AttributeId>(rng.Index(n)));
    lhs.Add(static_cast<AttributeId>(rng.Index(n)));
    AttributeSet rhs = lhs;
    rhs.Add(static_cast<AttributeId>(rng.Index(n)));
    if (rhs == lhs) continue;
    sigma.AddFd(FunctionalDependency::Certain(lhs, rhs));
  }
  if (idealized) {
    sigma.AddKey(KeyConstraint::Certain(schema.all()));
  }
  return {std::move(schema), std::move(sigma)};
}

void BM_VrnfDecompose(benchmark::State& state) {
  SchemaDesign design = MakeDesign(static_cast<int>(state.range(0)),
                                   /*idealized=*/false);
  for (auto _ : state) {
    auto result = VrnfDecompose(design);
    bench::CheckOk(result.status(), "VrnfDecompose");
    benchmark::DoNotOptimize(result->decomposition.components.size());
  }
}
BENCHMARK(BM_VrnfDecompose)->DenseRange(6, 18, 3);

void BM_VrnfDecomposeIdealized(benchmark::State& state) {
  SchemaDesign design = MakeDesign(static_cast<int>(state.range(0)),
                                   /*idealized=*/true);
  for (auto _ : state) {
    auto result = VrnfDecompose(design);
    bench::CheckOk(result.status(), "VrnfDecompose idealized");
    benchmark::DoNotOptimize(result->decomposition.components.size());
  }
}
BENCHMARK(BM_VrnfDecomposeIdealized)->DenseRange(6, 18, 3);

void BM_ClassicalBcnfBaseline(benchmark::State& state) {
  SchemaDesign design = MakeDesign(static_cast<int>(state.range(0)),
                                   /*idealized=*/true);
  for (auto _ : state) {
    auto result = ClassicalBcnfDecompose(design);
    bench::CheckOk(result.status(), "ClassicalBcnfDecompose");
    benchmark::DoNotOptimize(result->components.size());
  }
}
BENCHMARK(BM_ClassicalBcnfBaseline)->DenseRange(6, 18, 3);

}  // namespace
}  // namespace sqlnf

BENCHMARK_MAIN();
