// End-to-end HTTP service throughput (EXPERIMENTS.md E18): an
// in-process HttpServer + SqlnfService loaded with the contractor
// replica, hammered by 16 keep-alive loopback connections issuing
// read-only /query POSTs, with the server worker pool swept over
// {1, 4}. Each request exercises the full stack — socket framing,
// JSON body parse, snapshot-routed execution, ResultSet JSON render —
// so the numbers measure the service, not just the engine.
//
// Emits BENCH_server.json: one record per worker count with aggregate
// requests/sec and p50/p99 latency. Shape checks (always on): zero
// transport or HTTP errors, every body carries "ok":true, and the
// row count in each response matches the contractor table. Scaling
// gate: with >= 4 hardware threads, 4 workers must serve >= 2x the
// requests/sec of 1 worker — the snapshot read path has no shared
// lock, so worker threads must scale (ISSUE acceptance criterion).
// `--check` runs the same sweep on a shorter clock for CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sqlnf/core/table.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/session.h"
#include "sqlnf/net/client.h"
#include "sqlnf/net/server.h"
#include "sqlnf/net/service.h"

namespace sqlnf::bench {
namespace {

constexpr int kConnections = 16;
constexpr int kWorkerCounts[] = {1, 4};

struct BenchRecord {
  int workers = 0;
  int connections = 0;
  int64_t requests = 0;
  double requests_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

double Percentile(std::vector<double>* xs, double p) {
  if (xs->empty()) return 0;
  std::sort(xs->begin(), xs->end());
  size_t i = static_cast<size_t>(p * static_cast<double>(xs->size() - 1));
  return (*xs)[i];
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct ClientResult {
  std::vector<double> latencies_us;
  int64_t requests = 0;
};

// One client: a keep-alive connection looping the same read-only
// /query until `stop`. The SELECT returns the whole contractor table,
// so every round trip pays for a 173-row x 22-column JSON render on
// the server side — the cost we want the worker pool to parallelize.
void ClientLoop(int port, int expect_rows, std::atomic<bool>* stop,
                std::atomic<int>* failures, ClientResult* out) {
  Result<HttpConnection> conn = HttpConnection::Open(port);
  if (!conn.ok()) {
    failures->fetch_add(1);
    return;
  }
  const std::string body = R"({"sql":"SELECT * FROM contractor;"})";
  const std::string rows_marker =
      "\"affected\":" + std::to_string(expect_rows);
  while (!stop->load(std::memory_order_relaxed)) {
    auto start = std::chrono::steady_clock::now();
    Result<HttpClientResponse> r = conn->Post("/query", body);
    if (!r.ok() || r->status != 200 ||
        r->body.find("\"ok\":true") == std::string::npos ||
        r->body.find(rows_marker) == std::string::npos) {
      failures->fetch_add(1);
      return;
    }
    out->latencies_us.push_back(MicrosSince(start));
    ++out->requests;
  }
}

void WriteJson(const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen("BENCH_server.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WARN could not open BENCH_server.json\n");
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"op\": \"http_query_select\", \"workers\": %d, "
                 "\"connections\": %d, \"requests\": %lld, "
                 "\"requests_per_sec\": %.1f, \"p50_us\": %.2f, "
                 "\"p99_us\": %.2f}%s\n",
                 r.workers, r.connections,
                 static_cast<long long>(r.requests), r.requests_per_sec,
                 r.p50_us, r.p99_us, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote BENCH_server.json (%zu records)\n",
               records.size());
}

int Run(double run_ms) {
  // One database serves every sweep point: the workload is read-only,
  // so reusing it just means every config reads the same snapshot.
  Database db;
  Table contractor = ValueOrDie(Contractor(), "Contractor");
  {
    WriterScope writer;  // main thread, before the server exists
    CheckOk(db.IngestTable(contractor, ConstraintSet()), "IngestTable");
  }
  const int expect_rows = contractor.num_rows();
  SessionRegistry registry(&db);
  SqlnfService service(&registry);

  std::vector<BenchRecord> records;
  std::printf("%-18s %8s %12s %14s %10s %10s\n", "op", "workers", "conns",
              "req/sec", "p50(us)", "p99(us)");

  for (int workers : kWorkerCounts) {
    HttpServerOptions options;
    options.workers = workers;
    HttpServer server(
        [&service](const HttpRequest& r) { return service.Handle(r); },
        options);
    CheckOk(server.Start(), "HttpServer::Start");

    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};
    std::vector<ClientResult> results(kConnections);
    std::vector<std::thread> clients;
    clients.reserve(kConnections);
    for (int c = 0; c < kConnections; ++c) {
      clients.emplace_back(ClientLoop, server.port(), expect_rows, &stop,
                           &failures, &results[c]);
    }
    auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(run_ms)));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : clients) t.join();
    double elapsed_s = MicrosSince(start) / 1e6;
    server.Stop();

    if (failures.load() != 0) {
      std::fprintf(stderr, "FAIL %d client errors at %d workers\n",
                   failures.load(), workers);
      return 1;
    }

    std::vector<double> latencies;
    int64_t requests = 0;
    for (ClientResult& cr : results) {
      requests += cr.requests;
      latencies.insert(latencies.end(), cr.latencies_us.begin(),
                       cr.latencies_us.end());
    }
    if (requests == 0) {
      std::fprintf(stderr, "FAIL no requests completed at %d workers\n",
                   workers);
      return 1;
    }

    BenchRecord rec{workers, kConnections, requests,
                    static_cast<double>(requests) / elapsed_s,
                    Percentile(&latencies, 0.50),
                    Percentile(&latencies, 0.99)};
    std::printf("%-18s %8d %12d %14.1f %10.2f %10.2f\n",
                "http_query_select", rec.workers, rec.connections,
                rec.requests_per_sec, rec.p50_us, rec.p99_us);
    records.push_back(rec);
  }

  // Scaling gate: reads route through SnapshotAll (no writer mutex),
  // so with real cores a 4-worker pool must at least double 1-worker
  // throughput. Skipped on tiny machines, where the 16 client threads
  // and the workers fight for the same core.
  unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4 && records.size() >= 2 &&
      records[1].requests_per_sec < 2.0 * records[0].requests_per_sec) {
    std::fprintf(stderr,
                 "FAIL no worker scaling on %u cores: 1w=%.0f/s 4w=%.0f/s\n",
                 hw, records[0].requests_per_sec,
                 records[1].requests_per_sec);
    return 1;
  }
  if (hw < 4) {
    std::printf("(scaling gate skipped: hardware_concurrency=%u)\n", hw);
  }

  WriteJson(records);
  std::printf("OK\n");
  return 0;
}

}  // namespace
}  // namespace sqlnf::bench

int main(int argc, char** argv) {
  // --check: the CI entry point — same sweep and gates, shorter clock.
  const bool check =
      argc > 1 && std::strcmp(argv[1], "--check") == 0;
  return sqlnf::bench::Run(check ? 300.0 : 1500.0);
}
