// E6 — Section 7 discovery-cost table: number of classical FDs and
// discovery time vs number of c-FDs and discovery time, on the three
// UCI-shaped datasets (breast-cancer 11×699, adult 14×48842, hepatitis
// 20×155).
//
// Substitutions (DESIGN.md): the datasets are synthetic with the
// original shapes, and our pairwise difference-set miner stands in for
// both the best-of-breed classical miners of [33] and the authors' own
// c-FD algorithm. Each column is timed as an independent end-to-end run
// (its own pair sweep + hitting-set enumeration). The adult pair sweep
// is capped at 8000 rows (printed below). The paper's claim under test
// is the relative one: c-FD discovery is competitive with classical FD
// discovery.

#include <cstdio>

#include "bench_util.h"
#include "sqlnf/datagen/uci.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/discovery/tane.h"
#include "sqlnf/util/parallel.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  const int kAdultCap = 20000;
  Table breast = ValueOrDie(UciBreastCancerShaped(), "breast");
  Table adult = ValueOrDie(UciAdultShaped(), "adult");
  Table hepatitis = ValueOrDie(UciHepatitisShaped(), "hepatitis");

  struct PaperRow {
    const char* paper_fds;
    const char* paper_cfds;
  };
  const PaperRow paper[] = {
      {"46 / 0.5s", "54 / 0.1s"},
      {"78 / 5.9s", "78 / 10.4s"},
      {"8250 / 0.8s", "264 / 1.2s"},
  };
  const Table* tables[] = {&breast, &adult, &hepatitis};

  const int kThreads = 4;
  double serial_total_ms = 0;
  bool parallel_identical = true;
  TextTable tt;
  tt.SetHeader({"data set", "cols", "rows", "FDs#", "time[s]", "c-FDs#",
                "serial[s]", "par4[s]", "paper FDs", "paper c-FDs"});
  for (int i = 0; i < 3; ++i) {
    const Table& t = *tables[i];
    DiscoveryOptions options;
    options.max_rows = kAdultCap;
    options.hitting.max_size = 8;
    options.hitting.max_results = 100000;

    // Classical FDs via TANE (partition-based, the [33] family; full
    // row count); c-FDs via the pairwise difference-set miner (weak
    // similarity breaks partition refinement, so pairs it is). The c-FD
    // pair sweep also runs with the parallel sweeper — its output must
    // be bit-identical to serial (ordered chunk merge, agree_sets.h).
    TaneResult classical;
    std::vector<FunctionalDependency> certain;
    std::vector<FunctionalDependency> certain_par;
    TaneOptions tane_options;
    tane_options.max_lhs_size = options.hitting.max_size;
    double classical_ms = TimeMs([&] {
      classical = ValueOrDie(DiscoverFdsTane(t, tane_options), "tane");
    });
    double certain_ms = TimeMs([&] {
      certain = ValueOrDie(DiscoverFds(t, FdSemantics::kCertain, options),
                           "certain");
    });
    DiscoveryOptions par_options = options;
    par_options.threads = kThreads;
    double certain_par_ms = TimeMs([&] {
      certain_par = ValueOrDie(
          DiscoverFds(t, FdSemantics::kCertain, par_options), "certain-par");
    });
    serial_total_ms += classical_ms + certain_ms;
    if (certain_par != certain) parallel_identical = false;

    char fd_time[32], cfd_time[32], cfd_par_time[32];
    std::snprintf(fd_time, sizeof(fd_time), "%.2f", classical_ms / 1000.0);
    std::snprintf(cfd_time, sizeof(cfd_time), "%.2f", certain_ms / 1000.0);
    std::snprintf(cfd_par_time, sizeof(cfd_par_time), "%.2f",
                  certain_par_ms / 1000.0);
    tt.AddRow({t.schema().name(), std::to_string(t.num_columns()),
               std::to_string(t.num_rows()),
               std::to_string(classical.fds.size()), fd_time,
               std::to_string(certain.size()), cfd_time, cfd_par_time,
               paper[i].paper_fds, paper[i].paper_cfds});
  }
  std::printf("%s\n", tt.ToString().c_str());

  // Corpus-level parallelism: the three datasets mined end-to-end as
  // one task per table (the serial reference is the sum timed above).
  double corpus_par_ms = TimeMs([&] {
    ThreadPool pool(kThreads);
    pool.RunTasks(3, [&](int i) {
      DiscoveryOptions options;
      options.max_rows = kAdultCap;
      options.hitting.max_size = 8;
      options.hitting.max_results = 100000;
      TaneOptions tane_options;
      tane_options.max_lhs_size = options.hitting.max_size;
      ValueOrDie(DiscoverFdsTane(*tables[i], tane_options), "tane-task");
      ValueOrDie(DiscoverFds(*tables[i], FdSemantics::kCertain, options),
                 "certain-task");
    });
  });
  std::printf(
      "serial-vs-parallel: per-table c-FD sweep at %d threads (par4 "
      "column); corpus-level one-table-per-task %.2fs vs %.2fs serial "
      "(%.2fx)\n",
      kThreads, corpus_par_ms / 1000.0, serial_total_ms / 1000.0,
      serial_total_ms / corpus_par_ms);
  std::printf("parallel c-FD output bit-identical to serial: %s\n",
              parallel_identical ? "OK" : "FAILED");
  if (!parallel_identical) return 1;
  std::printf(
      "note: classical FDs mined with TANE (partition-based levelwise,\n"
      "the paper's [33] family) on the FULL row counts; c-FDs with the\n"
      "pairwise difference-set miner, whose adult sweep is capped at %d\n"
      "rows (weak similarity is not an equivalence relation, so\n"
      "partition refinement does not apply — see DESIGN.md). Shape\n"
      "under test: c-FD discovery cost is within a small factor of\n"
      "classical FD discovery on the same data, as in the paper.\n",
      kAdultCap);
  return 0;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
