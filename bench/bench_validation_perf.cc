// E5 — Section 7 performance comparison on the contractor replica,
// scaled with the paper's cross-product trick (new = 1..1000, giving
// 173,000 rows):
//
//   * validating the c-FD  new,city,url ->w dmerc_rgn,status  on the
//     NON-normalized table, vs validating the c-key c<new,city,url> on
//     the normalized 38k-row component        (paper: 122 ms vs 15 ms);
//   * SELECT * from the non-normalized table, vs the join of all
//     normalized tables                       (paper: 2957 ms vs 3150 ms).
//
// Absolute numbers depend on hardware; the SHAPE must hold: key
// validation on the normalized component is much cheaper, and the join
// is only moderately more expensive than the base scan.

#include <cstdio>

#include "bench_util.h"
#include "sqlnf/constraints/parser.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/engine/validate.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  Table contractor = ValueOrDie(Contractor(), "Contractor()");
  Table big =
      ValueOrDie(CrossWithSequence(contractor, 1000, "new"), "cross");
  std::printf("non-normalized table: %d rows x %d columns\n",
              big.num_rows(), big.num_columns());

  // Constraints on the crossed schema: `new` joins every FD and key.
  ConstraintSet sigma = ValueOrDie(
      ParseConstraintSet(
          big.schema(),
          "new,city,url ->w new,city,url,dmerc_rgn,status; "
          "new,cmd_name,phone,url ->w "
          "new,cmd_name,phone,url,contractor_version,status_flag; "
          "new,address1,contractor_bus_name,contractor_type_id ->w "
          "new,address1,contractor_bus_name,contractor_type_id,url"),
      "sigma");

  SchemaDesign design{big.schema(), sigma};
  VrnfResult vrnf = ValueOrDie(VrnfDecompose(design), "VrnfDecompose");
  std::vector<Table> normalized =
      ValueOrDie(ProjectAll(big, vrnf.decomposition), "ProjectAll");
  std::printf("normalized into %zu tables:", normalized.size());
  for (const Table& t : normalized) {
    std::printf(" %dx%d", t.num_rows(), t.num_columns());
  }
  std::printf("\n\n");

  // (1) consistency validation, serial and with the parallel bucket
  // scanner (explicit thread count; see util/parallel.h).
  const ParallelOptions par{4};
  const FunctionalDependency& fd = sigma.fds()[0];
  bool fd_ok = false;
  double fd_ms = TimeMs([&] { fd_ok = ValidateFd(big, fd); });
  bool fd_ok_par = false;
  double fd_par_ms =
      TimeMs([&] { fd_ok_par = ValidateFd(big, fd, par); });

  KeyConstraint key = KeyConstraint::Certain(fd.lhs);
  // The first set component is [new,city,url,dmerc_rgn,status]; its key
  // attributes keep their names.
  const Table* component = nullptr;
  for (size_t i = 0; i < normalized.size(); ++i) {
    if (!vrnf.decomposition.components[i].multiset &&
        fd.lhs.IsSubsetOf(vrnf.decomposition.components[i].attrs)) {
      component = &normalized[i];
      break;
    }
  }
  AttributeSet local_key;
  for (AttributeId a : key.attrs) {
    local_key.Add(ValueOrDie(
        component->schema().FindAttribute(big.schema().attribute_name(a)),
        "key attr"));
  }
  bool key_ok = false;
  double key_ms = TimeMs([&] {
    key_ok = ValidateKey(*component, KeyConstraint::Certain(local_key));
  });
  bool key_ok_par = false;
  double key_par_ms = TimeMs([&] {
    key_ok_par =
        ValidateKey(*component, KeyConstraint::Certain(local_key), par);
  });

  // (1b) tuple-vs-encoded ablation on the 173k-row table: the legacy
  // tuple-hashing path, the columnar kernel including its encode step,
  // and the kernel alone on a prebuilt encoding (the enforcer/discovery
  // situation), serial and at 4 threads.
  bool abl_ok = true;
  double tuple_ms =
      TimeMs([&] { abl_ok &= !FindFdViolationTuple(big, fd).has_value(); });
  EncodedTable enc(big, fd.lhs.Union(fd.rhs));
  double encode_ms = TimeMs([&] {
    EncodedTable fresh(big, fd.lhs.Union(fd.rhs));
    abl_ok &= fresh.num_rows() == big.num_rows();
  });
  double kernel_ms =
      TimeMs([&] { abl_ok &= ValidateFdEncoded(enc, fd); });
  double kernel_par_ms =
      TimeMs([&] { abl_ok &= ValidateFdEncoded(enc, fd, par); });

  // (2) query performance.
  int64_t scanned = 0;
  double scan_ms = TimeMs([&] {
    Table all = SelectAll(big);
    scanned = all.num_rows();
  });
  int64_t joined_rows = 0;
  double join_ms = TimeMs([&] {
    Table joined = ValueOrDie(JoinAll(normalized, "joined"), "JoinAll");
    joined_rows = joined.num_rows();
  });

  TextTable tt;
  tt.SetHeader({"measurement", "paper [ms]", "here [ms]", "result"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", fd_ms);
  tt.AddRow({"validate c-FD on non-normalized (serial)", "122", buf,
             fd_ok ? "satisfied" : "VIOLATED"});
  std::snprintf(buf, sizeof(buf), "%.1f", fd_par_ms);
  tt.AddRow({"validate c-FD on non-normalized (4 threads)", "-", buf,
             fd_ok_par ? "satisfied" : "VIOLATED"});
  std::snprintf(buf, sizeof(buf), "%.1f", key_ms);
  tt.AddRow({"validate c-key on normalized (serial)", "15", buf,
             key_ok ? "satisfied" : "VIOLATED"});
  std::snprintf(buf, sizeof(buf), "%.1f", key_par_ms);
  tt.AddRow({"validate c-key on normalized (4 threads)", "-", buf,
             key_ok_par ? "satisfied" : "VIOLATED"});
  std::snprintf(buf, sizeof(buf), "%.1f", tuple_ms);
  tt.AddRow({"c-FD tuple-hashing path (pre-columnar)", "-", buf,
             abl_ok ? "satisfied" : "VIOLATED"});
  std::snprintf(buf, sizeof(buf), "%.1f", encode_ms);
  tt.AddRow({"c-FD dictionary encode (lhs+rhs columns)", "-", buf, ""});
  std::snprintf(buf, sizeof(buf), "%.1f", kernel_ms);
  tt.AddRow({"c-FD encoded kernel, prebuilt encoding", "-", buf,
             abl_ok ? "satisfied" : "VIOLATED"});
  std::snprintf(buf, sizeof(buf), "%.1f", kernel_par_ms);
  tt.AddRow({"c-FD encoded kernel, prebuilt, 4 threads", "-", buf,
             abl_ok ? "satisfied" : "VIOLATED"});
  std::snprintf(buf, sizeof(buf), "%.1f", scan_ms);
  tt.AddRow({"SELECT * non-normalized", "2957", buf,
             std::to_string(scanned) + " rows"});
  std::snprintf(buf, sizeof(buf), "%.1f", join_ms);
  tt.AddRow({"SELECT * join of normalized", "3150", buf,
             std::to_string(joined_rows) + " rows"});
  std::printf("%s\n", tt.ToString().c_str());

  std::printf("shape checks: key validation %.1fx cheaper than FD "
              "validation; join/scan ratio %.2f (paper: 8.1x, 1.07)\n",
              fd_ms / key_ms, join_ms / scan_ms);
  std::printf("parallel validation (threads=%d): c-FD %.2fx, c-key "
              "%.2fx vs serial (speedup tracks available cores)\n",
              par.threads, fd_ms / fd_par_ms, key_ms / key_par_ms);
  std::printf("encoded vs tuple: kernel %.2fx faster than the "
              "tuple-hashing path (%.2fx including the encode)\n",
              tuple_ms / kernel_ms, tuple_ms / (encode_ms + kernel_ms));
  const bool encoded_wins = tuple_ms / kernel_ms >= 2.0;
  if (!encoded_wins) {
    std::printf("ERROR: encoded kernel is not >=2x faster than the "
                "tuple path\n");
  }
  if (!fd_ok || !key_ok || !abl_ok || !encoded_wins ||
      fd_ok_par != fd_ok || key_ok_par != key_ok ||
      scanned != big.num_rows() || joined_rows != big.num_rows()) {
    std::printf("ERROR: correctness check failed\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
