// E7 — Example 2's comparison of FD semantics on the Turing relation:
//
//   | e(mployee) | d(ept) | m(anager)   | s(alary) |
//   | Turing     | CS     | von Neumann | ⊥        |
//   | Turing     | ⊥      | Gödel       | ⊥        |
//
// Columns: Vassiliou [39] (3-valued), Levene/Loizou weak & strong [24],
// Lien's possible FDs [28], and this paper's certain FDs.

#include <cstdio>

#include "bench_util.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/related/alt_semantics.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

int Run() {
  using bench::ValueOrDie;

  TableSchema schema = ValueOrDie(
      TableSchema::MakeCompact("example2", "edms"), "schema");
  Table t(schema);
  bench::CheckOk(t.AddRow(Tuple({Value::Str("Turing"), Value::Str("CS"),
                                 Value::Str("von Neumann"),
                                 Value::Null()})),
                 "row1");
  bench::CheckOk(t.AddRow(Tuple({Value::Str("Turing"), Value::Null(),
                                 Value::Str("Goedel"), Value::Null()})),
                 "row2");
  std::printf("%s\n", t.ToString().c_str());

  struct Expected {
    const char* fd;
    AttributeSet lhs, rhs;
    const char* paper;  // Vas | weak | strong | possible | certain
  };
  const Expected rows[] = {
      {"e -> d", {0}, {1}, "unk T F F F"},
      {"e -> m", {0}, {2}, "F F F F F"},
      {"e -> s", {0}, {3}, "unk T F T T"},
      {"d -> d", {1}, {1}, "T T T T F"},
      {"d -> m", {1}, {2}, "unk T F T F"},
      {"m -> e", {2}, {0}, "T T T T T"},
      {"m -> d", {2}, {1}, "unk T T T T"},
  };

  TextTable tt;
  tt.SetHeader({"FD", "[39] Vassiliou", "[24] weak", "[24] strong",
                "[28] possible", "here: certain", "paper row"});
  bool all_match = true;
  for (const Expected& row : rows) {
    ThreeValued vas = VassiliouFd(t, row.lhs, row.rhs);
    bool weak = ValueOrDie(LeveneLoizouWeakFd(t, row.lhs, row.rhs), "w");
    bool strong =
        ValueOrDie(LeveneLoizouStrongFd(t, row.lhs, row.rhs), "s");
    bool possible =
        Satisfies(t, FunctionalDependency::Possible(row.lhs, row.rhs));
    bool certain =
        Satisfies(t, FunctionalDependency::Certain(row.lhs, row.rhs));

    std::string measured = std::string(ThreeValuedToString(vas)) + " " +
                           (weak ? "T" : "F") + " " +
                           (strong ? "T" : "F") + " " +
                           (possible ? "T" : "F") + " " +
                           (certain ? "T" : "F");
    if (measured != row.paper) all_match = false;
    tt.AddRow({row.fd, ThreeValuedToString(vas), weak ? "T" : "F",
               strong ? "T" : "F", possible ? "T" : "F",
               certain ? "T" : "F", row.paper});
  }
  std::printf("%s\n", tt.ToString().c_str());
  std::printf("all 35 cells match the paper's Example 2 table: %s\n",
              all_match ? "OK" : "FAILED");
  return all_match ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
