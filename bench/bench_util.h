// Shared helpers for the benchmark harness: wall-clock timing for the
// table-reproduction benches and random-input builders for the
// google-benchmark scaling sweeps.

#ifndef SQLNF_BENCH_BENCH_UTIL_H_
#define SQLNF_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/util/rng.h"
#include "sqlnf/util/status.h"

namespace sqlnf::bench {

/// Milliseconds spent running `fn` once.
template <typename Fn>
double TimeMs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Aborts the bench binary with a readable message on error statuses —
/// bench inputs are all library-generated, so failures are bugs.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// Random schema of n attributes named a0..a{n-1} with a random NFS.
inline TableSchema RandomBenchSchema(Rng* rng, int n) {
  std::vector<std::string> names;
  std::vector<std::string> not_null;
  names.reserve(n);
  for (int i = 0; i < n; ++i) {
    names.push_back("a" + std::to_string(i));
    if (rng->Chance(0.5)) not_null.push_back(names.back());
  }
  return ValueOrDie(TableSchema::Make("bench", names, not_null),
                    "RandomBenchSchema");
}

/// Random mixed constraint set: `fds` FDs (LHS ~3 attrs) + `keys` keys.
inline ConstraintSet RandomBenchSigma(Rng* rng, int n, int fds, int keys) {
  ConstraintSet sigma;
  auto random_set = [&](double p) {
    AttributeSet s;
    for (int i = 0; i < n; ++i) {
      if (rng->Chance(p)) s.Add(i);
    }
    if (s.empty()) s.Add(static_cast<AttributeId>(rng->Index(n)));
    return s;
  };
  for (int i = 0; i < fds; ++i) {
    sigma.AddFd({random_set(3.0 / n), random_set(2.0 / n),
                 rng->Chance(0.5) ? Mode::kPossible : Mode::kCertain});
  }
  for (int i = 0; i < keys; ++i) {
    sigma.AddKey({random_set(4.0 / n),
                  rng->Chance(0.5) ? Mode::kPossible : Mode::kCertain});
  }
  return sigma;
}

}  // namespace sqlnf::bench

#endif  // SQLNF_BENCH_BENCH_UTIL_H_
