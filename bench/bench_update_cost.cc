// E11 (ablation, beyond the paper's tables) — why redundancy is
// expensive: the update-anomaly cost on the contractor replica, plus a
// validator ablation (grouped fast path vs O(n²) reference).
//
// The paper's Section 1 motivation: "all occurrences of a redundant
// data value must be modified consistently". We make that concrete:
// changing the `status` of one (city,url) group on the de-normalized
// table must touch every member row to keep the c-FD satisfied, while
// the normalized schema stores the fact once.

#include <cstdio>

#include "bench_util.h"
#include "sqlnf/constraints/parser.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/engine/validate.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  Table contractor = ValueOrDie(Contractor(), "contractor");
  ConstraintSet lambda =
      ValueOrDie(ContractorLambdaFds(contractor.schema()), "lambda");
  SchemaDesign design{contractor.schema(), lambda};
  VrnfResult vrnf = ValueOrDie(VrnfDecompose(design), "vrnf");
  auto normalized =
      ValueOrDie(ProjectAll(contractor, vrnf.decomposition), "project");

  // ---- update anomaly: move the big (city,url) group to a new status.
  const AttributeId city =
      ValueOrDie(contractor.schema().FindAttribute("city"), "city");
  const AttributeId status =
      ValueOrDie(contractor.schema().FindAttribute("status"), "status");
  auto in_group = [&](const Tuple& t) {
    return t[city] == Value::Str("City g1-0");
  };

  // De-normalized: a single-row update breaks the c-FD...
  Table broken = contractor;
  bool first = true;
  int touched_one = ValueOrDie(
      UpdateWhere(
          &broken,
          [&](const Tuple& t) {
            if (!in_group(t) || !first) return false;
            first = false;
            return true;
          },
          status, Value::Str("suspended")),
      "single update");
  bool still_ok = ValidateFd(broken, lambda.fds()[0]);
  std::printf(
      "de-normalized: updating %d row leaves c-FD city,url ->w "
      "dmerc,status satisfied: %s (the update anomaly)\n",
      touched_one, still_ok ? "yes (?)" : "NO");

  // ... a consistent update must touch the whole group.
  Table consistent = contractor;
  int touched_all = ValueOrDie(
      UpdateWhere(&consistent, in_group, status, Value::Str("suspended")),
      "group update");
  bool group_ok = ValidateFd(consistent, lambda.fds()[0]);
  std::printf(
      "de-normalized: consistent update touches %d rows (c-FD "
      "satisfied: %s)\n",
      touched_all, group_ok ? "yes" : "NO");

  // Normalized: one row in the [city,url,dmerc,status] component.
  Table* component = nullptr;
  for (size_t i = 0; i < normalized.size(); ++i) {
    if (normalized[i].schema().FindAttribute("status").ok() &&
        normalized[i].num_columns() == 4) {
      component = &normalized[i];
    }
  }
  const AttributeId comp_city =
      ValueOrDie(component->schema().FindAttribute("city"), "c");
  const AttributeId comp_status =
      ValueOrDie(component->schema().FindAttribute("status"), "s");
  int touched_norm = ValueOrDie(
      UpdateWhere(
          component,
          [&](const Tuple& t) {
            return t[comp_city] == Value::Str("City g1-0");
          },
          comp_status, Value::Str("suspended")),
      "normalized update");
  std::printf("normalized:   the same fact changes %d row(s)\n\n",
              touched_norm);

  TextTable tt;
  tt.SetHeader({"layout", "rows touched"});
  tt.AddRow({"de-normalized (consistent)", std::to_string(touched_all)});
  tt.AddRow({"normalized component", std::to_string(touched_norm)});
  std::printf("%s\n", tt.ToString().c_str());

  // ---- validator ablation: grouped fast path vs O(n²) reference.
  Table big =
      ValueOrDie(CrossWithSequence(contractor, 40, "new"), "cross");
  ConstraintSet sigma = ValueOrDie(
      ParseConstraintSet(big.schema(),
                         "new,city,url ->w dmerc_rgn,status"),
      "fd");
  const FunctionalDependency& fd = sigma.fds()[0];
  double fast_ms = TimeMs([&] { (void)ValidateFd(big, fd); });
  double ref_ms = TimeMs([&] { (void)Satisfies(big, fd); });
  double tuple_ms =
      TimeMs([&] { (void)FindFdViolationTuple(big, fd); });
  const EncodedTable enc(big, fd.lhs.Union(fd.rhs));
  double kernel_ms = TimeMs([&] { (void)ValidateFdEncoded(enc, fd); });
  std::printf(
      "validator ablation on %d rows: encoded kernel %.1f ms (grouped "
      "incl. encode %.1f ms, tuple-hashing %.1f ms, O(n^2) reference "
      "%.1f ms)\n",
      big.num_rows(), kernel_ms, fast_ms, tuple_ms, ref_ms);

  // ---- update ablation: the same group update on codes vs on rows.
  const AttributeId big_city =
      ValueOrDie(big.schema().FindAttribute("city"), "bc");
  const AttributeId big_status =
      ValueOrDie(big.schema().FindAttribute("status"), "bs");
  Table row_upd = big;
  EncodedTable enc_upd(big);
  double row_upd_ms = TimeMs([&] {
    (void)UpdateWhere(
        &row_upd,
        [&](const Tuple& t) { return t[big_city] == Value::Str("City g1-0"); },
        big_status, Value::Str("suspended"));
  });
  double enc_upd_ms = TimeMs([&] {
    (void)UpdateWhereEncoded(&enc_upd,
                             {{big_city, Value::Str("City g1-0")}},
                             big_status, Value::Str("suspended"));
  });
  std::printf(
      "update ablation on %d rows: encoded group update %.2f ms, "
      "row-major %.2f ms\n",
      big.num_rows(), enc_upd_ms, row_upd_ms);

  const bool ok = !still_ok && group_ok && touched_all == 135 &&
                  touched_norm == 1 && ref_ms > fast_ms &&
                  tuple_ms > kernel_ms;
  std::printf("shape check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
