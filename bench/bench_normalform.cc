// E9 — Theorems 7/10/14: deciding BCNF / RFNF / SQL-BCNF in time
// quadratic in the input (one linear-time implication query per given
// FD). Sweeps the number of constraints.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sqlnf/normalform/normal_forms.h"

namespace sqlnf {
namespace {

constexpr int kAttributes = 32;

void BM_IsBcnf(benchmark::State& state) {
  const int num_fds = static_cast<int>(state.range(0));
  Rng rng(num_fds + 5);
  TableSchema schema = bench::RandomBenchSchema(&rng, kAttributes);
  ConstraintSet sigma =
      bench::RandomBenchSigma(&rng, kAttributes, num_fds, num_fds / 4);
  SchemaDesign design{schema, sigma};
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsBcnf(design));
  }
  state.SetComplexityN(num_fds);
}
BENCHMARK(BM_IsBcnf)->RangeMultiplier(4)->Range(8, 2048)
    ->Complexity(benchmark::oNSquared);

void BM_IsSqlBcnf(benchmark::State& state) {
  const int num_fds = static_cast<int>(state.range(0));
  Rng rng(num_fds + 9);
  TableSchema schema = bench::RandomBenchSchema(&rng, kAttributes);
  ConstraintSet sigma =
      bench::RandomBenchSigma(&rng, kAttributes, num_fds, num_fds / 4);
  // SQL-BCNF is defined for certain constraints only.
  for (auto& fd : *sigma.mutable_fds()) fd.mode = Mode::kCertain;
  for (auto& key : *sigma.mutable_keys()) key.mode = Mode::kCertain;
  SchemaDesign design{schema, sigma};
  for (auto _ : state) {
    auto result = IsSqlBcnf(design);
    bench::CheckOk(result.status(), "IsSqlBcnf");
    benchmark::DoNotOptimize(*result);
  }
  state.SetComplexityN(num_fds);
}
BENCHMARK(BM_IsSqlBcnf)->RangeMultiplier(4)->Range(8, 2048)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace sqlnf

BENCHMARK_MAIN();
