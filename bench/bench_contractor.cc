// E4 — Section 7: Algorithm 3 on the LMRP contractor replica.
//
// Paper numbers reproduced exactly by construction of the replica:
//   4 output tables: 38×4, 67×5, 73×4, 173×17 (multiset remainder);
//   cells 3806 → 3720;
//   448 redundant data values eliminated (1 dmerc_rgn + 135 status +
//   106 contractor_version + 106 status_flag + 100 url) plus 134
//   redundant null markers in dmerc_rgn.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/report.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/engine/ddl.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  Table contractor = ValueOrDie(Contractor(), "contractor");
  ConstraintSet lambda =
      ValueOrDie(ContractorLambdaFds(contractor.schema()), "lambda");
  std::printf("contractor: %d rows x %d columns (%lld cells)\n",
              contractor.num_rows(), contractor.num_columns(),
              static_cast<long long>(contractor.num_cells()));
  std::printf("lambda-FDs:\n");
  for (const auto& fd : lambda.fds()) {
    std::printf("  %s\n", fd.ToString(contractor.schema()).c_str());
  }

  SchemaDesign design{contractor.schema(), lambda};
  VrnfResult vrnf;
  double ms =
      TimeMs([&] { vrnf = ValueOrDie(VrnfDecompose(design), "vrnf"); });

  auto report = ValueOrDie(
      ReportDecomposition(contractor, vrnf.decomposition), "report");
  std::printf("\nAlgorithm 3 output (%zu steps, %.1f ms):\n",
              vrnf.steps.size(), ms);
  for (const auto& step : vrnf.steps) {
    std::printf("  %s\n", step.ToString(contractor.schema()).c_str());
  }
  TextTable shapes;
  shapes.SetHeader({"component", "rows", "cols", "kind"});
  for (size_t i = 0; i < report.tables.size(); ++i) {
    shapes.AddRow(
        {contractor.schema().FormatSet(
             vrnf.decomposition.components[i].attrs),
         std::to_string(report.tables[i].num_rows()),
         std::to_string(report.tables[i].num_columns()),
         vrnf.decomposition.components[i].multiset ? "multiset" : "set"});
  }
  std::printf("%s", shapes.ToString().c_str());
  std::printf("cells: %lld -> %lld (paper: 3806 -> 3720)\n\n",
              static_cast<long long>(report.cells_before),
              static_cast<long long>(report.cells_after));

  auto steps = ValueOrDie(ReportVrnfSteps(contractor, vrnf), "steps");
  TextTable elim;
  elim.SetHeader({"column", "values eliminated", "nulls eliminated",
                  "paper"});
  int total_values = 0, total_nulls = 0;
  struct Expect {
    const char* column;
    const char* paper;
  };
  const Expect expectations[] = {
      {"dmerc_rgn", "1 (+134 nulls)"}, {"status", "135"},
      {"contractor_version", "106"},   {"status_flag", "106"},
      {"url", "100"},
  };
  for (const auto& step : steps) {
    for (const auto& col : step.columns) {
      total_values += col.values_eliminated;
      total_nulls += col.nulls_eliminated;
      const char* paper = "";
      for (const Expect& e : expectations) {
        if (contractor.schema().attribute_name(col.column) == e.column) {
          paper = e.paper;
        }
      }
      elim.AddRow({contractor.schema().attribute_name(col.column),
                   std::to_string(col.values_eliminated),
                   std::to_string(col.nulls_eliminated), paper});
    }
  }
  std::printf("%s", elim.ToString().c_str());
  std::printf(
      "total: %d redundant values + %d redundant nulls eliminated "
      "(paper: 448 + 134)\n\n",
      total_values, total_nulls);

  bool lossless = ValueOrDie(
      IsLosslessForInstance(contractor, vrnf.decomposition), "lossless");
  std::printf("lossless reconstruction: %s\n\n",
              lossless ? "yes" : "NO");

  std::printf("generated DDL for the normalized schema:\n%s",
              EmitDecompositionDdl(design, vrnf).c_str());

  const bool ok = report.cells_before == 3806 &&
                  report.cells_after == 3720 && total_values == 448 &&
                  total_nulls == 134 && lossless;
  std::printf("shape check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
