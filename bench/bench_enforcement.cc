// E12 (ablation) — write-path cost of constraint enforcement: the
// indexed incremental enforcer vs the reference per-row scan, inserting
// contractor-shaped rows under the three λ-FDs plus the Theorem-12
// c-key. This is the run-time face of schema design: the constraints a
// good schema needs enforced are exactly the ones Algorithm 3 turns
// into cheap keys.

#include <cstdio>

#include "bench_util.h"
#include "sqlnf/constraints/parser.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/writer_role.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/engine/validate.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  Table contractor = ValueOrDie(Contractor(), "contractor");
  Table big = ValueOrDie(CrossWithSequence(contractor, 60, "new"),
                         "cross");  // 10,380 rows
  ConstraintSet sigma = ValueOrDie(
      ParseConstraintSet(
          big.schema(),
          "new,city,url ->w new,city,url,dmerc_rgn,status; "
          "new,cmd_name,phone,url ->w "
          "new,cmd_name,phone,url,contractor_version,status_flag; "
          "new,address1,contractor_bus_name,contractor_type_id ->w "
          "new,address1,contractor_bus_name,contractor_type_id,url"),
      "sigma");

  // Reference: per-insert scan of all stored rows.
  Table scan_table(big.schema());
  double scan_ms = TimeMs([&] {
    for (const Tuple& row : big.rows()) {
      if (!ValidateRowAgainst(scan_table, row, sigma)) {
        bench::CheckOk(scan_table.AddRow(row), "add");
      }
    }
  });

  // Indexed: hash buckets on the NOT NULL LHS columns.
  Table indexed_table(big.schema());
  IncrementalEnforcer enforcer(big.schema(), sigma);
  double indexed_ms = TimeMs([&] {
    WriterScope writer;
    for (const Tuple& row : big.rows()) {
      if (!enforcer.Check(row)) {
        enforcer.Add(row, indexed_table.num_rows());
        bench::CheckOk(indexed_table.AddRow(row), "add");
      }
    }
  });

  TextTable tt;
  tt.SetHeader({"write path", "rows", "time [ms]", "rows/s"});
  char buf[64], rate[64];
  std::snprintf(buf, sizeof(buf), "%.1f", scan_ms);
  std::snprintf(rate, sizeof(rate), "%.0f",
                scan_table.num_rows() / (scan_ms / 1000.0));
  tt.AddRow({"reference per-row scan",
             std::to_string(scan_table.num_rows()), buf, rate});
  std::snprintf(buf, sizeof(buf), "%.1f", indexed_ms);
  std::snprintf(rate, sizeof(rate), "%.0f",
                indexed_table.num_rows() / (indexed_ms / 1000.0));
  tt.AddRow({"indexed incremental enforcer",
             std::to_string(indexed_table.num_rows()), buf, rate});
  std::printf("%s\n", tt.ToString().c_str());
  std::printf("speedup: %.1fx; identical accept decisions: %s\n",
              scan_ms / indexed_ms,
              scan_table.SameMultiset(indexed_table) ? "yes" : "NO");

  // Batch re-validation after the workload: the enforcer's maintained
  // encoding feeds the columnar kernels directly, skipping the encode
  // a from-Table validation pays.
  bool batch_ok = false;
  double batch_table_ms =
      TimeMs([&] { batch_ok = ValidateAll(indexed_table, sigma); });
  bool batch_enc_ok = false;
  double batch_enc_ms = TimeMs([&] {
    batch_enc_ok = ValidateAllEncoded(enforcer.encoding(),
                                      big.schema().nfs(), sigma);
  });
  std::printf("batch re-validation: from Table %.1f ms, from maintained "
              "encoding %.1f ms (both %s)\n",
              batch_table_ms, batch_enc_ms,
              batch_ok && batch_enc_ok ? "satisfied" : "DIVERGED");

  const bool ok = scan_table.SameMultiset(indexed_table) &&
                  indexed_ms < scan_ms && batch_ok && batch_enc_ok &&
                  indexed_table.num_rows() == big.num_rows();
  std::printf("shape check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
