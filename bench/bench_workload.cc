// E13 (ablation) — the paper's opening claim, end to end: "derive a
// database schema at design time that can process the most frequent
// updates efficiently at run time". We load the contractor data into
// the constraint-enforcing Database twice — de-normalized (three
// λ-FDs enforced on one wide table) and normalized by Algorithm 3
// (component tables with their Theorem-12 certain keys) — and run the
// same mixed workload against both:
//
//   * fact updates: change the status of a (city,url) group,
//   * point lookups: all rows of one city,
//   * inserts: brand-new contractor groups.
//
// Every write is constraint-checked; the normalized schema pays one
// cheap key probe where the de-normalized one re-validates FD groups.

#include <cstdio>

#include "bench_util.h"
#include "sqlnf/constraints/parser.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

constexpr int kScale = 20;  // contractor × 20 = 3460 rows

struct Latencies {
  double update_ms = 0;
  double select_ms = 0;
  double insert_ms = 0;
};

int Run() {
  using bench::TimeMs;
  using bench::ValueOrDie;

  // Single-threaded bench: this thread is the writer for both DBs.
  WriterScope writer;

  Table contractor = ValueOrDie(Contractor(), "contractor");
  Table big = ValueOrDie(CrossWithSequence(contractor, kScale, "new"),
                         "cross");
  ConstraintSet sigma = ValueOrDie(
      ParseConstraintSet(
          big.schema(),
          "new,city,url ->w new,city,url,dmerc_rgn,status; "
          "new,cmd_name,phone,url ->w "
          "new,cmd_name,phone,url,contractor_version,status_flag; "
          "new,address1,contractor_bus_name,contractor_type_id ->w "
          "new,address1,contractor_bus_name,contractor_type_id,url"),
      "sigma");
  SchemaDesign design{big.schema(), sigma};
  VrnfResult vrnf = ValueOrDie(VrnfDecompose(design), "vrnf");
  auto parts = ValueOrDie(ProjectAll(big, vrnf.decomposition), "parts");

  // --- de-normalized database: one wide table, FDs enforced.
  Database denorm;
  bench::CheckOk(denorm.CreateTable(big.schema(), sigma), "create");
  double denorm_load = TimeMs([&] {
    WriterScope scope;
    for (const Tuple& t : big.rows()) {
      bench::CheckOk(denorm.Insert(big.schema().name(), t), "load");
    }
  });

  // --- normalized database: component tables with their gained keys.
  Database norm;
  std::vector<std::string> part_names;
  for (size_t i = 0; i < parts.size(); ++i) {
    ConstraintSet part_sigma;
    for (const KeyConstraint& key : vrnf.component_keys[i]) {
      AttributeSet local;
      for (AttributeId a : key.attrs) {
        local.Add(ValueOrDie(parts[i].schema().FindAttribute(
                                 big.schema().attribute_name(a)),
                             "key attr"));
      }
      part_sigma.AddKey(KeyConstraint::Certain(local));
    }
    bench::CheckOk(norm.CreateTable(parts[i].schema(), part_sigma),
                   "create part");
    part_names.push_back(parts[i].schema().name());
  }
  double norm_load = TimeMs([&] {
    WriterScope scope;
    for (const Table& part : parts) {
      for (const Tuple& t : part.rows()) {
        bench::CheckOk(norm.Insert(part.schema().name(), t), "load part");
      }
    }
  });
  std::printf("load: de-normalized %.0f ms (%d rows), normalized %.0f ms "
              "(%d+%d+%d+%d rows)\n\n",
              denorm_load, big.num_rows(), norm_load,
              parts[0].num_rows(), parts[1].num_rows(),
              parts[2].num_rows(), parts[3].num_rows());

  // Which component holds (city,url,dmerc,status)?
  std::string status_table;
  for (const std::string& name : part_names) {
    auto stored = norm.Find(name);
    if ((*stored)->schema().FindAttribute("status").ok() &&
        (*stored)->num_columns() == 5) {
      status_table = name;
    }
  }

  auto city_value = [](int g1) { return Value::Str("City g1-" + std::to_string(g1)); };
  const AttributeId big_city =
      ValueOrDie(big.schema().FindAttribute("city"), "city");
  const AttributeId big_status =
      ValueOrDie(big.schema().FindAttribute("status"), "status");

  Latencies denorm_lat, norm_lat;
  volatile long long sink = 0;
  (void)sink;

  // --- workload 1: 30 group fact updates (alternate the status value).
  denorm_lat.update_ms = TimeMs([&] {
    WriterScope scope;
    for (int round = 0; round < 30; ++round) {
      Value v = Value::Str(round % 2 ? "active" : "suspended");
      auto changed = denorm.Update(
          big.schema().name(), {{big_city, city_value(3)}}, big_status, v);
      bench::CheckOk(changed.status(), "denorm update");
    }
  });
  auto stored_status = norm.Find(status_table);
  const AttributeId part_city = ValueOrDie(
      (*stored_status)->schema().FindAttribute("city"), "pc");
  const AttributeId part_status = ValueOrDie(
      (*stored_status)->schema().FindAttribute("status"), "ps");
  norm_lat.update_ms = TimeMs([&] {
    WriterScope scope;
    for (int round = 0; round < 30; ++round) {
      Value v = Value::Str(round % 2 ? "active" : "suspended");
      auto changed = norm.Update(status_table, {{part_city, city_value(3)}},
                                 part_status, v);
      bench::CheckOk(changed.status(), "norm update");
    }
  });

  // --- workload 2: 300 point lookups by city.
  denorm_lat.select_ms = TimeMs([&] {
    WriterScope scope;
    for (int i = 0; i < 300; ++i) {
      auto hit = denorm.Select(big.schema().name(),
                               {{big_city, city_value(i % 38)}});
      bench::CheckOk(hit.status(), "denorm select");
      sink += hit.value().num_rows();
    }
  });
  norm_lat.select_ms = TimeMs([&] {
    WriterScope scope;
    for (int i = 0; i < 300; ++i) {
      auto hit = norm.Select(status_table,
                             {{part_city, city_value(i % 38)}});
      bench::CheckOk(hit.status(), "norm select");
      sink += hit.value().num_rows();
    }
  });

  TextTable tt;
  tt.SetHeader({"workload", "de-normalized [ms]", "normalized [ms]",
                "speedup"});
  char a[32], b[32], c[32];
  auto add_row = [&](const char* label, double lhs, double rhs) {
    std::snprintf(a, sizeof(a), "%.1f", lhs);
    std::snprintf(b, sizeof(b), "%.1f", rhs);
    std::snprintf(c, sizeof(c), "%.1fx", lhs / rhs);
    tt.AddRow({label, a, b, c});
  };
  add_row("30 group fact updates", denorm_lat.update_ms,
          norm_lat.update_ms);
  add_row("300 point lookups (status facts)", denorm_lat.select_ms,
          norm_lat.select_ms);
  std::printf("%s\n", tt.ToString().c_str());

  const bool ok = norm_lat.update_ms < denorm_lat.update_ms;
  std::printf("shape check (normalized updates cheaper): %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace sqlnf

int main() { return sqlnf::Run(); }
