// Alternative FD semantics (Section 3): the full Example 2 comparison
// matrix across all five semantics, possible-worlds machinery, and the
// ∃/∀ LHS-replacement characterizations of p-/c-FDs (Section 2's
// intuition) as a tested property.

#include "sqlnf/related/alt_semantics.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/related/possible_worlds.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::RandomInstance;
using testing::Rows;
using testing::Schema;

// Example 2's relation: e(mployee) d(ept) m(anager) s(alary).
Table Example2() {
  return Rows(Schema("edms"), {"TCV_", "T_G_"});
}

struct Example2Row {
  const char* lhs;
  const char* rhs;
  ThreeValued vassiliou;
  bool ll_weak;
  bool ll_strong;
  bool possible;
  bool certain;
};

TEST(Example2Test, FullComparisonMatrix) {
  Table t = Example2();
  const TableSchema& schema = t.schema();
  const Example2Row rows[] = {
      {"e", "d", ThreeValued::kUnknown, true, false, false, false},
      {"e", "m", ThreeValued::kFalse, false, false, false, false},
      {"e", "s", ThreeValued::kUnknown, true, false, true, true},
      {"d", "d", ThreeValued::kTrue, true, true, true, false},
      {"d", "m", ThreeValued::kUnknown, true, false, true, false},
      {"m", "e", ThreeValued::kTrue, true, true, true, true},
      {"m", "d", ThreeValued::kUnknown, true, true, true, true},
  };
  for (const Example2Row& row : rows) {
    AttributeSet lhs = Attrs(schema, row.lhs);
    AttributeSet rhs = Attrs(schema, row.rhs);
    SCOPED_TRACE(std::string(row.lhs) + " -> " + row.rhs);
    EXPECT_EQ(VassiliouFd(t, lhs, rhs), row.vassiliou);
    ASSERT_OK_AND_ASSIGN(bool weak, LeveneLoizouWeakFd(t, lhs, rhs));
    EXPECT_EQ(weak, row.ll_weak);
    ASSERT_OK_AND_ASSIGN(bool strong, LeveneLoizouStrongFd(t, lhs, rhs));
    EXPECT_EQ(strong, row.ll_strong);
    EXPECT_EQ(Satisfies(t, FunctionalDependency::Possible(lhs, rhs)),
              row.possible);
    EXPECT_EQ(Satisfies(t, FunctionalDependency::Certain(lhs, rhs)),
              row.certain);
  }
}

TEST(PossibleWorldsTest, CountsCompletionsOfTotalTableAsOne) {
  Table t = Rows(Schema("ab"), {"11", "22"});
  int worlds = 0;
  ASSERT_OK_AND_ASSIGN(
      long long visited,
      ForEachCompletion(t, t.schema().all(), [&](const Table& world) {
        ++worlds;
        EXPECT_TRUE(world.SameMultiset(t));
        return true;
      }));
  EXPECT_EQ(visited, 1);
  EXPECT_EQ(worlds, 1);
}

TEST(PossibleWorldsTest, EnumeratesExistingAndFreshTargets) {
  // One ⊥ in a column with one existing value: targets = {existing,
  // fresh} → 2 worlds.
  Table t = Rows(Schema("a"), {"1", "_"});
  ASSERT_OK_AND_ASSIGN(
      long long visited,
      ForEachCompletion(t, t.schema().all(),
                        [](const Table&) { return true; }));
  EXPECT_EQ(visited, 2);
}

TEST(PossibleWorldsTest, SharedFreshValuesAcrossNulls) {
  // Two ⊥s in one column, no existing values: partitions {same fresh},
  // {different fresh} must both be realized so equality patterns are
  // complete: 2 distinguishable patterns out of 4 assignments.
  Table t = Rows(Schema("ab"), {"_1", "_2"});
  bool saw_equal = false, saw_different = false;
  ASSERT_OK(ForEachCompletion(t, Attrs(t.schema(), "a"),
                              [&](const Table& world) {
                                if (world.row(0)[0] == world.row(1)[0]) {
                                  saw_equal = true;
                                } else {
                                  saw_different = true;
                                }
                                return true;
                              })
                .status());
  EXPECT_TRUE(saw_equal);
  EXPECT_TRUE(saw_different);
}

TEST(PossibleWorldsTest, RespectsLimit) {
  TableSchema schema = Schema("abcd");
  Table t = Rows(schema, {"____", "____", "____", "____"});
  WorldLimits limits;
  limits.max_worlds = 10;
  EXPECT_FALSE(
      ForEachCompletion(t, schema.all(), [](const Table&) { return true; },
                        limits)
          .ok());
}

TEST(VassiliouTest, ReflexivePairsMatter) {
  // A single tuple with ⊥ already renders X -> Y unknown when Y has ⊥
  // and X is total (T → U = U under Łukasiewicz).
  Table t = Rows(Schema("ab"), {"1_"});
  EXPECT_EQ(VassiliouFd(t, {0}, {1}), ThreeValued::kUnknown);
  // But d -> d stays true: U → U = T.
  EXPECT_EQ(VassiliouFd(t, {1}, {1}), ThreeValued::kTrue);
}

// The paper's intuition for Definition 1, as a theorem: a p-FD holds iff
// SOME replacement of LHS ⊥s satisfies the FD classically; a c-FD holds
// iff EVERY replacement does.
class ReplacementCharacterizationTest
    : public ::testing::TestWithParam<int> {};

TEST_P(ReplacementCharacterizationTest, MatchesDefinition1) {
  Rng rng(GetParam() * 101 + 43);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 1));
    TableSchema schema =
        testing::Schema(std::string("abc").substr(0, n));
    Table t = RandomInstance(&rng, schema, 3, 2, 0.35);
    AttributeSet lhs = testing::RandomSubset(&rng, n, 0.5);
    AttributeSet rhs = testing::RandomSubset(&rng, n, 0.5);

    ASSERT_OK_AND_ASSIGN(bool some,
                         SomeLhsReplacementSatisfies(t, lhs, rhs));
    ASSERT_OK_AND_ASSIGN(bool every,
                         EveryLhsReplacementSatisfies(t, lhs, rhs));
    EXPECT_EQ(some,
              Satisfies(t, FunctionalDependency::Possible(lhs, rhs)))
        << schema.FormatSet(lhs) << "->" << schema.FormatSet(rhs) << "\n"
        << t.ToString();
    EXPECT_EQ(every,
              Satisfies(t, FunctionalDependency::Certain(lhs, rhs)))
        << schema.FormatSet(lhs) << "->" << schema.FormatSet(rhs) << "\n"
        << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplacementCharacterizationTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace sqlnf
