#include "sqlnf/constraints/constraint.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/parser.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Fd;
using testing::Key;
using testing::Schema;
using testing::Sigma;

TEST(ParserTest, CompactAndCommaNotation) {
  TableSchema schema = Schema("oicp");
  FunctionalDependency fd = Fd(schema, "oi ->s c");
  EXPECT_EQ(fd.lhs, (AttributeSet{0, 1}));
  EXPECT_EQ(fd.rhs, AttributeSet{2});
  EXPECT_TRUE(fd.is_possible());

  FunctionalDependency fd2 = Fd(schema, "i,c ->w p");
  EXPECT_EQ(fd2.lhs, (AttributeSet{1, 2}));
  EXPECT_TRUE(fd2.is_certain());
}

TEST(ParserTest, LongAttributeNames) {
  auto schema =
      TableSchema::Make("t", {"item", "catalog", "price"}, {}).value();
  FunctionalDependency fd = Fd(schema, "item,catalog ->w price");
  EXPECT_EQ(fd.lhs, (AttributeSet{0, 1}));
  EXPECT_EQ(fd.rhs, AttributeSet{2});
}

TEST(ParserTest, EmptySets) {
  TableSchema schema = Schema("ab");
  FunctionalDependency fd = Fd(schema, "{} ->s a");
  EXPECT_TRUE(fd.lhs.empty());
  FunctionalDependency fd2 = Fd(schema, "a ->w {}");
  EXPECT_TRUE(fd2.rhs.empty());
}

TEST(ParserTest, Keys) {
  TableSchema schema = Schema("oicp");
  KeyConstraint pk = Key(schema, "p<oic>");
  EXPECT_TRUE(pk.is_possible());
  EXPECT_EQ(pk.attrs, (AttributeSet{0, 1, 2}));
  KeyConstraint ck = Key(schema, "c<i,c>");
  EXPECT_TRUE(ck.is_certain());
}

TEST(ParserTest, ConstraintSetMixed) {
  TableSchema schema = Schema("oicp");
  ConstraintSet sigma = Sigma(schema, "oi ->s c; ic ->w p; p<oic>");
  EXPECT_EQ(sigma.fds().size(), 2u);
  EXPECT_EQ(sigma.keys().size(), 1u);
}

TEST(ParserTest, Errors) {
  TableSchema schema = Schema("ab");
  EXPECT_FALSE(ParseFd(schema, "a -> b").ok());      // missing mode
  EXPECT_FALSE(ParseFd(schema, "a ->x b").ok());     // bad mode
  EXPECT_FALSE(ParseFd(schema, "a ->s z").ok());     // unknown attr
  EXPECT_FALSE(ParseKey(schema, "q<a>").ok());       // bad prefix
  EXPECT_FALSE(ParseKey(schema, "p<>").ok());        // empty term
  EXPECT_FALSE(ParseConstraint(schema, "xyz").ok());
}

TEST(ConstraintTest, InternalExternalTotal) {
  TableSchema schema = Schema("abc");
  EXPECT_TRUE(Fd(schema, "ab ->w a").IsInternal());
  EXPECT_FALSE(Fd(schema, "ab ->w c").IsInternal());
  EXPECT_TRUE(Fd(schema, "a ->w ab").IsTotal());    // X ⊆ RHS, certain
  EXPECT_FALSE(Fd(schema, "a ->s ab").IsTotal());   // possible
  EXPECT_FALSE(Fd(schema, "ab ->w b").IsTotal());   // LHS ⊄ RHS
}

TEST(ConstraintTest, Triviality) {
  TableSchema schema = Schema("abc", "a");
  const AttributeSet nfs = schema.nfs();
  // p-FD: trivial iff RHS ⊆ LHS.
  EXPECT_TRUE(Fd(schema, "ab ->s a").IsTrivial(nfs));
  EXPECT_FALSE(Fd(schema, "ab ->s c").IsTrivial(nfs));
  // c-FD: trivial iff RHS ⊆ LHS ∩ T_S. b is nullable → ab ->w b is a
  // real constraint (Example 1's nd ->w d pattern).
  EXPECT_TRUE(Fd(schema, "ab ->w a").IsTrivial(nfs));
  EXPECT_FALSE(Fd(schema, "ab ->w b").IsTrivial(nfs));
  EXPECT_FALSE(Fd(schema, "ab ->w ab").IsTrivial(nfs));
}

TEST(ConstraintTest, ToStringRoundTrips) {
  TableSchema schema = Schema("oicp");
  EXPECT_EQ(Fd(schema, "oi ->s c").ToString(schema), "{o,i} ->s {c}");
  EXPECT_EQ(Key(schema, "c<ic>").ToString(schema), "c<{i,c}>");
}

TEST(ConstraintSetTest, UniqueAdd) {
  TableSchema schema = Schema("ab");
  ConstraintSet sigma;
  EXPECT_TRUE(sigma.AddUniqueFd(Fd(schema, "a ->w b")));
  EXPECT_FALSE(sigma.AddUniqueFd(Fd(schema, "a ->w b")));
  EXPECT_TRUE(sigma.AddUniqueFd(Fd(schema, "a ->s b")));  // mode differs
  EXPECT_EQ(sigma.fds().size(), 2u);
}

TEST(ConstraintSetTest, FdProjectionReplacesKeys) {
  TableSchema schema = Schema("oicp", "ocp");
  ConstraintSet sigma = Sigma(schema, "oi ->s c; p<oic>");
  ConstraintSet fds = sigma.FdProjection(schema.all());
  EXPECT_TRUE(fds.keys().empty());
  ASSERT_EQ(fds.fds().size(), 2u);
  // The key p<oic> became the p-FD oic ->s oicp.
  EXPECT_EQ(fds.fds()[1].lhs, (AttributeSet{0, 1, 2}));
  EXPECT_EQ(fds.fds()[1].rhs, schema.all());
  EXPECT_TRUE(fds.fds()[1].is_possible());
}

TEST(ConstraintSetTest, KeyProjection) {
  TableSchema schema = Schema("oicp");
  ConstraintSet sigma = Sigma(schema, "oi ->s c; p<oic>; c<op>");
  ConstraintSet keys = sigma.KeyProjection();
  EXPECT_TRUE(keys.fds().empty());
  EXPECT_EQ(keys.keys().size(), 2u);
}

TEST(ConstraintSetTest, Predicates) {
  TableSchema schema = Schema("abc");
  EXPECT_TRUE(Sigma(schema, "a ->w ab; c<ab>").AllCertain());
  EXPECT_FALSE(Sigma(schema, "a ->s b").AllCertain());
  EXPECT_TRUE(Sigma(schema, "a ->w ab; ab ->w abc").AllFdsTotal());
  EXPECT_FALSE(Sigma(schema, "a ->w b").AllFdsTotal());
  EXPECT_EQ(Sigma(schema, "a ->w ab; c<ab>").InputSize(), 5);
}

TEST(ConstraintSetTest, SchemaDesignToString) {
  TableSchema schema = Schema("oicp", "ocp");
  SchemaDesign design{schema, Sigma(schema, "ic ->w p")};
  std::string s = design.ToString();
  EXPECT_NE(s.find("{i,c} ->w {p}"), std::string::npos);
  EXPECT_NE(s.find("NOT NULL"), std::string::npos);
}

}  // namespace
}  // namespace sqlnf
