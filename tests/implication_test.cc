// Implication for the combined constraint class (Theorems 2, 4, 5),
// including the FD-projection / key-projection reductions and the
// cross-check against the axiomatic saturation engine (Theorem 4's
// soundness + completeness, verified constructively on small schemas).

#include "sqlnf/reasoning/implication.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/reasoning/axioms.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Fd;
using testing::Key;
using testing::RandomInstance;
using testing::RandomSchema;
using testing::RandomSigma;
using testing::RandomSubset;
using testing::Rows;
using testing::Schema;
using testing::Sigma;

TEST(ImplicationTest, PaperFdExample) {
  TableSchema schema = Schema("oicp", "ocp");
  Implication imp(schema, Sigma(schema, "oi ->s c; ic ->w p"));
  EXPECT_TRUE(imp.Implies(Fd(schema, "oi ->s p")));
  EXPECT_FALSE(imp.Implies(Fd(schema, "oi ->w p")));
  // Witness from the paper for the non-implication.
  Table witness = Rows(schema, {"1FAX", "1_KY"});
  EXPECT_TRUE(SatisfiesAll(witness, Sigma(schema, "oi ->s c; ic ->w p")));
  EXPECT_FALSE(Satisfies(witness, Fd(schema, "oi ->w p")));
}

TEST(ImplicationTest, PaperKeyExample) {
  // Σ = {oi ->s c, p<oic>} implies p<oi> via key-null-transitivity
  // (c ∈ T_S).
  TableSchema schema = Schema("oicp", "ocp");
  Implication imp(schema, Sigma(schema, "oi ->s c; p<oic>"));
  EXPECT_TRUE(imp.Implies(Key(schema, "p<oi>")));
  EXPECT_FALSE(imp.Implies(Key(schema, "c<oi>")));
  EXPECT_FALSE(imp.Implies(Fd(schema, "oi ->w p")));
}

TEST(ImplicationTest, KeyImpliedByKeysAloneAxioms) {
  TableSchema schema = Schema("abc", "ab");
  const AttributeSet nfs = schema.nfs();
  std::vector<KeyConstraint> keys = {Key(schema, "p<a>")};
  // kA: supersets are implied.
  EXPECT_TRUE(KeyImpliedByKeysAlone(keys, nfs, Key(schema, "p<ab>")));
  EXPECT_FALSE(KeyImpliedByKeysAlone(keys, nfs, Key(schema, "p<b>")));
  // kS: p<a> with a ∈ T_S gives c<a> (and supersets).
  EXPECT_TRUE(KeyImpliedByKeysAlone(keys, nfs, Key(schema, "c<ac>")));
  // A p-key with a nullable attribute does not certify.
  std::vector<KeyConstraint> keys2 = {Key(schema, "p<ac>")};
  EXPECT_FALSE(KeyImpliedByKeysAlone(keys2, nfs, Key(schema, "c<ac>")));
  EXPECT_TRUE(KeyImpliedByKeysAlone(keys2, nfs, Key(schema, "p<abc>")));
  // kW: a c-key gives the p-key.
  std::vector<KeyConstraint> keys3 = {Key(schema, "c<ac>")};
  EXPECT_TRUE(KeyImpliedByKeysAlone(keys3, nfs, Key(schema, "p<ac>")));
}

TEST(ImplicationTest, CertainKeyViaCertainFdAndKey) {
  // kT (certain): X ->w Y and c<XY> imply c<X>.
  TableSchema schema = Schema("abc", "");
  Implication imp(schema, Sigma(schema, "a ->w bc; c<abc>"));
  EXPECT_TRUE(imp.Implies(Key(schema, "c<a>")));
  EXPECT_TRUE(imp.Implies(Key(schema, "p<a>")));  // kW
}

TEST(ImplicationTest, PossibleFdDoesNotCertifyKey) {
  // With a ->s bc only, weakly similar ⊥-rows escape: c<a> not implied.
  TableSchema schema = Schema("abc", "");
  Implication imp(schema, Sigma(schema, "a ->s bc; c<abc>"));
  EXPECT_FALSE(imp.Implies(Key(schema, "c<a>")));
  // kT (possible): p<a> IS implied.
  EXPECT_TRUE(imp.Implies(Key(schema, "p<a>")));
  // Semantic confirmation of the negative: a two-row model.
  Table m = Rows(schema, {"_12", "134"});
  EXPECT_TRUE(SatisfiesAll(m, Sigma(schema, "a ->s bc; c<abc>")));
  EXPECT_FALSE(Satisfies(m, Key(schema, "c<a>")));
}

TEST(ImplicationTest, TrivialFdsAlwaysImplied) {
  TableSchema schema = Schema("abc", "a");
  Implication imp(schema, ConstraintSet());
  EXPECT_TRUE(imp.Implies(Fd(schema, "ab ->s ab")));
  EXPECT_TRUE(imp.Implies(Fd(schema, "ab ->w a")));   // a ∈ T_S
  EXPECT_FALSE(imp.Implies(Fd(schema, "ab ->w b")));  // b nullable
}

TEST(ImplicationTest, CertainFdImpliesPossibleFd) {
  TableSchema schema = Schema("ab", "");
  Implication imp(schema, Sigma(schema, "a ->w b"));
  EXPECT_TRUE(imp.Implies(Fd(schema, "a ->s b")));
}

TEST(ImplicationTest, EquivalentSigmas) {
  TableSchema schema = Schema("abc", "abc");
  // On fully NOT NULL schemas, ->s and ->w coincide.
  EXPECT_TRUE(EquivalentSigmas(schema, Sigma(schema, "a ->s b"),
                               Sigma(schema, "a ->w b")));
  TableSchema nullable = Schema("abc", "");
  EXPECT_FALSE(EquivalentSigmas(nullable, Sigma(nullable, "a ->s b"),
                                Sigma(nullable, "a ->w b")));
  EXPECT_TRUE(EquivalentSigmas(schema, Sigma(schema, "a ->s b; a ->s c"),
                               Sigma(schema, "a ->s bc")));
}

// The big cross-check: the linear-time decision procedure agrees with
// axiomatic derivability (Theorems 1 and 4) on every queried constraint
// over random small schemas.
class ImplicationVsAxiomsTest : public ::testing::TestWithParam<int> {};

TEST_P(ImplicationVsAxiomsTest, DecisionMatchesDerivability) {
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 12; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 2));  // 2..4 attributes
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(
        &rng, n, static_cast<int>(rng.Uniform(0, 4)),
        static_cast<int>(rng.Uniform(0, 2)));
    auto engine = AxiomEngine::Saturate(schema, sigma);
    ASSERT_OK(engine.status());
    Implication imp(schema, sigma);

    for (int q = 0; q < 30; ++q) {
      if (rng.Chance(0.6)) {
        FunctionalDependency fd;
        fd.lhs = RandomSubset(&rng, n);
        fd.rhs = RandomSubset(&rng, n);
        fd.mode = rng.Chance(0.5) ? Mode::kPossible : Mode::kCertain;
        EXPECT_EQ(imp.Implies(fd), engine->Derivable(fd))
            << fd.ToString(schema) << " over " << sigma.ToString(schema)
            << " NFS " << schema.FormatSet(schema.nfs());
      } else {
        KeyConstraint key;
        key.attrs = RandomSubset(&rng, n, 0.5);
        key.mode = rng.Chance(0.5) ? Mode::kPossible : Mode::kCertain;
        EXPECT_EQ(imp.Implies(key), engine->Derivable(key))
            << key.ToString(schema) << " over " << sigma.ToString(schema)
            << " NFS " << schema.FormatSet(schema.nfs());
      }
    }
  }
}

// Soundness via model checking: whenever the decision procedure says
// Σ ⊨ φ, no random instance satisfying Σ may violate φ.
TEST_P(ImplicationVsAxiomsTest, SoundnessAgainstRandomModels) {
  Rng rng(GetParam() * 97 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 2, 1);
    Implication imp(schema, sigma);

    std::vector<Constraint> queries;
    for (int q = 0; q < 12; ++q) {
      FunctionalDependency fd;
      fd.lhs = RandomSubset(&rng, n);
      fd.rhs = RandomSubset(&rng, n);
      fd.mode = rng.Chance(0.5) ? Mode::kPossible : Mode::kCertain;
      if (imp.Implies(fd)) queries.emplace_back(fd);
      KeyConstraint key{RandomSubset(&rng, n, 0.5),
                        rng.Chance(0.5) ? Mode::kPossible : Mode::kCertain};
      if (imp.Implies(key)) queries.emplace_back(key);
    }
    for (int m = 0; m < 15; ++m) {
      Table instance = RandomInstance(&rng, schema, 4, 2);
      if (!SatisfiesAll(instance, sigma)) continue;
      for (const Constraint& c : queries) {
        EXPECT_TRUE(Satisfies(instance, c))
            << ConstraintToString(c, schema) << " claimed implied by "
            << sigma.ToString(schema) << "\n"
            << instance.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationVsAxiomsTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace sqlnf
