// Metamorphic properties of constraint satisfaction: transformations of
// the instance with a KNOWN effect on every verdict, checked across the
// reference checker and the columnar kernels.
//
//   * Row permutation   — satisfaction is set semantics; any row order
//                         gives the same verdict on every path.
//   * Duplicate row     — satisfies every FD (a duplicate pair agrees on
//                         everything) but violates every c-key, and
//                         violates a p-key iff the copied row is total
//                         on the key (Figure 3's phenomenon).
//   * Column reorder    — verdicts are invariant under relabelling the
//                         attributes of both the table and the
//                         constraint.
//   * Encode → decode   — EncodedTable(t).Decode(schema) reproduces the
//                         original table cell for cell.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/engine/predicate.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/engine/validate.h"
#include "sqlnf/util/rng.h"
#include "reference_oracle.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::RandomInstance;
using testing::RandomSchema;
using testing::RandomSubset;

// One verdict per path; the metamorphic laws quantify over all of them.
struct Verdicts {
  bool reference;
  bool tuple;
  bool encoded1;
  bool encoded4;
};

Verdicts FdVerdicts(const Table& table, const FunctionalDependency& fd) {
  const EncodedTable enc(table);
  return {Satisfies(table, fd), !FindFdViolationTuple(table, fd).has_value(),
          ValidateFdEncoded(enc, fd, ParallelOptions{1}),
          ValidateFdEncoded(enc, fd, ParallelOptions{4})};
}

Verdicts KeyVerdicts(const Table& table, const KeyConstraint& key) {
  const EncodedTable enc(table);
  return {Satisfies(table, key),
          !FindKeyViolationTuple(table, key).has_value(),
          ValidateKeyEncoded(enc, key, ParallelOptions{1}),
          ValidateKeyEncoded(enc, key, ParallelOptions{4})};
}

void ExpectVerdicts(const Verdicts& v, bool expect, const std::string& what) {
  EXPECT_EQ(v.reference, expect) << what << " [reference]";
  EXPECT_EQ(v.tuple, expect) << what << " [tuple]";
  EXPECT_EQ(v.encoded1, expect) << what << " [encoded t=1]";
  EXPECT_EQ(v.encoded4, expect) << what << " [encoded t=4]";
}

Table Permuted(const Table& table, const std::vector<int>& order) {
  Table out(table.schema());
  for (int r : order) {
    auto st = out.AddRow(table.row(r));
    EXPECT_TRUE(st.ok());
  }
  return out;
}

TEST(MetamorphicTest, RowPermutationInvariance) {
  Rng rng(11);
  for (int iter = 0; iter < 40; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 5));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table = RandomInstance(&rng, schema,
                                       static_cast<int>(rng.Uniform(2, 30)),
                                       /*domain=*/3, 0.3);
    std::vector<int> order(table.num_rows());
    for (int i = 0; i < table.num_rows(); ++i) order[i] = i;
    rng.Shuffle(&order);
    const Table shuffled = Permuted(table, order);

    FunctionalDependency fd;
    fd.lhs = RandomSubset(&rng, cols);
    fd.rhs = AttributeSet::Single(static_cast<AttributeId>(rng.Index(cols)));
    KeyConstraint key;
    key.attrs = RandomSubset(&rng, cols, 0.5);
    if (key.attrs.empty()) key.attrs = fd.rhs;

    for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
      fd.mode = mode;
      key.mode = mode;
      const std::string what = "iter=" + std::to_string(iter);
      ExpectVerdicts(FdVerdicts(shuffled, fd),
                     testing::OracleSatisfiesFd(table, fd), what + " fd");
      ExpectVerdicts(KeyVerdicts(shuffled, key),
                     testing::OracleSatisfiesKey(table, key), what + " key");
    }
  }
}

TEST(MetamorphicTest, DuplicateRowLaws) {
  Rng rng(22);
  for (int iter = 0; iter < 40; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 5));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table = RandomInstance(&rng, schema,
                                       static_cast<int>(rng.Uniform(1, 20)),
                                       /*domain=*/3, 0.3);
    const int victim = static_cast<int>(rng.Index(table.num_rows()));
    Table dup = table;
    ASSERT_TRUE(dup.AddRow(table.row(victim)).ok());
    const std::string what = "iter=" + std::to_string(iter);

    // An FD's verdict never changes: the duplicate pair agrees on
    // everything, and pairs with other rows mirror the original row's.
    FunctionalDependency fd;
    fd.lhs = RandomSubset(&rng, cols);
    fd.rhs = AttributeSet::Single(static_cast<AttributeId>(rng.Index(cols)));
    for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
      fd.mode = mode;
      ExpectVerdicts(FdVerdicts(dup, fd),
                     testing::OracleSatisfiesFd(table, fd), what + " fd");
    }

    // Keys: every c-key is now violated (the duplicate pair is weakly
    // similar on anything); a p-key is violated iff the copied row is
    // total on the key attributes — ⊥ breaks strong similarity.
    KeyConstraint key;
    key.attrs = RandomSubset(&rng, cols, 0.5);
    if (key.attrs.empty()) {
      key.attrs = AttributeSet::Single(
          static_cast<AttributeId>(rng.Index(cols)));
    }
    key.mode = Mode::kCertain;
    ExpectVerdicts(KeyVerdicts(dup, key), false, what + " c-key");

    key.mode = Mode::kPossible;
    bool total = true;
    for (AttributeId a : key.attrs) {
      if (table.row(victim)[a].is_null()) total = false;
    }
    if (total) {
      ExpectVerdicts(KeyVerdicts(dup, key), false, what + " p-key total");
    } else if (testing::OracleSatisfiesKey(table, key)) {
      // A non-total duplicate adds no strongly-similar pair.
      ExpectVerdicts(KeyVerdicts(dup, key), true, what + " p-key partial");
    }
  }
}

TEST(MetamorphicTest, ColumnReorderInvariance) {
  Rng rng(33);
  for (int iter = 0; iter < 40; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 5));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table = RandomInstance(&rng, schema,
                                       static_cast<int>(rng.Uniform(0, 25)),
                                       /*domain=*/3, 0.3);

    // perm[old] = new position.
    std::vector<int> perm(cols);
    for (int i = 0; i < cols; ++i) perm[i] = i;
    rng.Shuffle(&perm);

    std::string attrs(cols, '?'), nfs;
    for (int a = 0; a < cols; ++a) attrs[perm[a]] = static_cast<char>('a' + a);
    for (int a = 0; a < cols; ++a) {
      if (schema.nfs().Contains(a)) nfs += attrs[perm[a]];
    }
    const TableSchema reordered_schema = testing::Schema(attrs, nfs);
    Table reordered(reordered_schema);
    for (int r = 0; r < table.num_rows(); ++r) {
      std::vector<Value> values(cols, Value::Null());
      for (int a = 0; a < cols; ++a) values[perm[a]] = table.row(r)[a];
      ASSERT_TRUE(reordered.AddRow(Tuple(std::move(values))).ok());
    }
    auto remap = [&](const AttributeSet& s) {
      AttributeSet out;
      for (AttributeId a : s) out.Add(perm[a]);
      return out;
    };

    FunctionalDependency fd, rfd;
    fd.lhs = RandomSubset(&rng, cols);
    fd.rhs = AttributeSet::Single(static_cast<AttributeId>(rng.Index(cols)));
    rfd.lhs = remap(fd.lhs);
    rfd.rhs = remap(fd.rhs);
    KeyConstraint key, rkey;
    key.attrs = RandomSubset(&rng, cols, 0.5);
    if (key.attrs.empty()) key.attrs = fd.rhs;
    rkey.attrs = remap(key.attrs);

    for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
      fd.mode = rfd.mode = mode;
      key.mode = rkey.mode = mode;
      const std::string what = "iter=" + std::to_string(iter);
      ExpectVerdicts(FdVerdicts(reordered, rfd),
                     testing::OracleSatisfiesFd(table, fd), what + " fd");
      ExpectVerdicts(KeyVerdicts(reordered, rkey),
                     testing::OracleSatisfiesKey(table, key), what + " key");
    }
  }
}

TEST(MetamorphicTest, EncodeDecodeRoundTrip) {
  Rng rng(44);
  for (int iter = 0; iter < 30; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(1, 6));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table = RandomInstance(&rng, schema,
                                       static_cast<int>(rng.Uniform(0, 40)),
                                       /*domain=*/4, 0.3);
    const EncodedTable enc(table);
    const Table back = enc.Decode(schema);
    ASSERT_EQ(back.num_rows(), table.num_rows());
    for (int r = 0; r < table.num_rows(); ++r) {
      for (AttributeId a = 0; a < cols; ++a) {
        EXPECT_TRUE(back.row(r)[a] == table.row(r)[a])
            << "iter=" << iter << " row=" << r << " col=" << int{a};
      }
    }
    // And the encoding is equivalent to itself re-encoded from the
    // decode (dictionaries may re-number; EquivalentTo must not care).
    EXPECT_TRUE(enc.EquivalentTo(EncodedTable(back))) << "iter=" << iter;
  }
}

// ---- Metamorphic predicate laws: rewrites with a KNOWN effect on the
// selected row set, checked on the compiled columnar scan.

namespace {

Value RandomPredOperand(Rng* rng, int domain) {
  const double roll = rng->NextDouble();
  if (roll < 0.2) return Value::Null();
  if (roll < 0.35) return Value::Int(rng->Uniform(100, 104));  // absent
  return Value::Int(rng->Uniform(0, domain - 1));
}

std::vector<int> AllRows(const EncodedTable& enc) {
  std::vector<int> out(enc.num_rows());
  for (int i = 0; i < enc.num_rows(); ++i) out[i] = i;
  return out;
}

std::vector<int> Complement(const std::vector<int>& sel, int n) {
  std::vector<int> out;
  size_t next = 0;
  for (int i = 0; i < n; ++i) {
    if (next < sel.size() && sel[next] == i) {
      ++next;
    } else {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace

// De Morgan over marker equality: ¬(a=x ∧ b=y) ≡ (a<>x ∨ b<>y), which
// holds EXACTLY under marker semantics (kNe is the true complement of
// kEq, ⊥ included) — so the complement of the AND-selection equals the
// OR-of-negations selection, row for row.
TEST(MetamorphicTest, PredicateDeMorganEquality) {
  Rng rng(4601);
  for (int iter = 0; iter < 40; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 5));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table = RandomInstance(&rng, schema,
                                       static_cast<int>(rng.Uniform(0, 50)),
                                       /*domain=*/3, 0.3);
    const EncodedTable enc(table);
    Conjunction conj;
    Predicate negated;  // OR of single-atom negations
    const int k = static_cast<int>(rng.Uniform(1, 3));
    for (int j = 0; j < k; ++j) {
      const AttributeId col =
          static_cast<AttributeId>(rng.Index(static_cast<size_t>(cols)));
      const Value v = RandomPredOperand(&rng, 3);
      conj.push_back(Cmp(col, CompareOp::kEq, v));
      negated.disjuncts.push_back({Cmp(col, CompareOp::kNe, v)});
    }
    const std::vector<int> sel =
        SelectRowsEncoded(enc, Predicate::And(conj));
    EXPECT_EQ(SelectRowsEncoded(enc, negated),
              Complement(sel, enc.num_rows()))
        << "iter=" << iter;
  }
}

// On ⊥-FREE columns the ordered complements are exact as well:
// ¬(col < v) ≡ col >= v and ¬(col <= v) ≡ col > v for a non-null
// operand. (With ⊥ present both sides exclude the ⊥ rows, so the
// complement law holds only ⊥-free — which is exactly the documented
// semantics.)
TEST(MetamorphicTest, PredicateOrderedComplementsNullFree) {
  Rng rng(4602);
  for (int iter = 0; iter < 40; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(1, 4));
    std::string attrs;
    for (int i = 0; i < cols; ++i) {
      attrs += static_cast<char>('a' + i);
    }
    const TableSchema schema = testing::Schema(attrs, attrs);  // full NFS
    const Table table = RandomInstance(&rng, schema,
                                       static_cast<int>(rng.Uniform(0, 50)),
                                       /*domain=*/4, /*null_rate=*/0.0);
    const EncodedTable enc(table);
    const AttributeId col =
        static_cast<AttributeId>(rng.Index(static_cast<size_t>(cols)));
    const Value v = Value::Int(rng.Uniform(0, 4));
    const std::vector<int> lt = SelectRowsEncoded(
        enc, Predicate::And({Cmp(col, CompareOp::kLt, v)}));
    const std::vector<int> le = SelectRowsEncoded(
        enc, Predicate::And({Cmp(col, CompareOp::kLe, v)}));
    EXPECT_EQ(SelectRowsEncoded(
                  enc, Predicate::And({Cmp(col, CompareOp::kGe, v)})),
              Complement(lt, enc.num_rows()))
        << "iter=" << iter;
    EXPECT_EQ(SelectRowsEncoded(
                  enc, Predicate::And({Cmp(col, CompareOp::kGt, v)})),
              Complement(le, enc.num_rows()))
        << "iter=" << iter;
  }
}

// BETWEEN a AND b ≡ (col >= a) AND (col <= b); IN (a) ≡ (col = a);
// IN (list) ≡ OR of equalities — on every random table, ⊥ included.
TEST(MetamorphicTest, PredicateBetweenAndInRewrites) {
  Rng rng(4603);
  for (int iter = 0; iter < 40; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(1, 4));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table = RandomInstance(&rng, schema,
                                       static_cast<int>(rng.Uniform(0, 50)),
                                       /*domain=*/4, 0.25);
    const EncodedTable enc(table);
    const AttributeId col =
        static_cast<AttributeId>(rng.Index(static_cast<size_t>(cols)));
    const Value lo = RandomPredOperand(&rng, 4);
    const Value hi = RandomPredOperand(&rng, 4);
    EXPECT_EQ(SelectRowsEncoded(enc, Predicate::And({Between(col, lo, hi)})),
              SelectRowsEncoded(enc, Predicate::And(
                                         {Cmp(col, CompareOp::kGe, lo),
                                          Cmp(col, CompareOp::kLe, hi)})))
        << "iter=" << iter;
    EXPECT_EQ(SelectRowsEncoded(enc, Predicate::And({In(col, {lo})})),
              SelectRowsEncoded(enc,
                                Predicate::And({Cmp(col, CompareOp::kEq,
                                                    lo)})))
        << "iter=" << iter;
    Predicate ors;
    ors.disjuncts.push_back({Cmp(col, CompareOp::kEq, lo)});
    ors.disjuncts.push_back({Cmp(col, CompareOp::kEq, hi)});
    EXPECT_EQ(SelectRowsEncoded(enc, Predicate::And({In(col, {lo, hi})})),
              SelectRowsEncoded(enc, ors))
        << "iter=" << iter;
  }
}

// Selection vectors are emitted in ascending row order regardless of
// predicate shape, so shuffling disjuncts and the atoms inside each
// conjunction must reproduce the identical vector.
TEST(MetamorphicTest, PredicateOrderShuffleInvariance) {
  Rng rng(4604);
  for (int iter = 0; iter < 40; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 5));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table = RandomInstance(&rng, schema,
                                       static_cast<int>(rng.Uniform(0, 50)),
                                       /*domain=*/3, 0.25);
    const EncodedTable enc(table);
    Predicate pred;
    const int disjuncts = static_cast<int>(rng.Uniform(1, 3));
    for (int dj = 0; dj < disjuncts; ++dj) {
      Conjunction conj;
      const int atoms = static_cast<int>(rng.Uniform(1, 3));
      for (int a = 0; a < atoms; ++a) {
        const AttributeId col =
            static_cast<AttributeId>(rng.Index(static_cast<size_t>(cols)));
        const Value v = RandomPredOperand(&rng, 3);
        switch (rng.Uniform(0, 2)) {
          case 0:
            conj.push_back(Cmp(col, CompareOp::kLe, v));
            break;
          case 1:
            conj.push_back(Cmp(col, CompareOp::kNe, v));
            break;
          default:
            conj.push_back(Between(col, v, RandomPredOperand(&rng, 3)));
        }
      }
      pred.disjuncts.push_back(std::move(conj));
    }
    const std::vector<int> sel = SelectRowsEncoded(enc, pred);
    Predicate shuffled = pred;
    rng.Shuffle(&shuffled.disjuncts);
    for (Conjunction& conj : shuffled.disjuncts) rng.Shuffle(&conj);
    EXPECT_EQ(SelectRowsEncoded(enc, shuffled), sel) << "iter=" << iter;
    (void)AllRows;  // helper shared with other predicate laws
  }
}

}  // namespace
}  // namespace sqlnf
