// Instance-level redundancy (Definitions 4 and 10), the Construction
// Lemma (Lemma 2), and the semantic justifications RFNF ⟺ BCNF
// (Theorem 9) and VRNF ⟺ SQL-BCNF (Theorem 15), verified constructively
// on the paper's examples and random schemas.

#include "sqlnf/normalform/redundancy.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/normalform/construction.h"
#include "sqlnf/normalform/normal_forms.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Fd;
using testing::Key;
using testing::RandomInstance;
using testing::RandomSchema;
using testing::RandomSigma;
using testing::Rows;
using testing::Schema;
using testing::Sigma;

TEST(RedundancyTest, Figure1BoldPrices) {
  // purchase satisfies item,catalog -> price; exactly the two
  // Fitbit/Amazon price cells are redundant (the Brookstone 240 is not).
  TableSchema schema = Schema("oicp", "oicp");
  Table purchase = Rows(schema, {"1FAX", "1FBX", "3FAX", "3DKY"});
  ConstraintSet sigma = Sigma(schema, "ic ->w p");
  ASSERT_TRUE(SatisfiesAll(purchase, sigma));

  EXPECT_TRUE(IsRedundantPosition(purchase, sigma, {0, 3}));
  EXPECT_TRUE(IsRedundantPosition(purchase, sigma, {2, 3}));
  EXPECT_FALSE(IsRedundantPosition(purchase, sigma, {1, 3}));
  EXPECT_FALSE(IsRedundantPosition(purchase, sigma, {3, 3}));
  // Non-price positions are never redundant here.
  EXPECT_FALSE(IsRedundantPosition(purchase, sigma, {0, 0}));
  EXPECT_FALSE(IsRedundantPosition(purchase, sigma, {0, 1}));

  auto positions = RedundantPositions(purchase, sigma);
  EXPECT_EQ(positions.size(), 2u);
}

TEST(RedundancyTest, Figure5ProjectionKeepsRedundancy) {
  // purchase[icp] of Figure 5: both 240 occurrences are redundant
  // because c<ic> fails on the projection.
  TableSchema schema = Schema("icp", "ip");
  Table proj = Rows(schema, {"FAX", "F_X", "DKY"});
  ConstraintSet sigma = Sigma(schema, "ic ->w p");
  ASSERT_TRUE(SatisfiesAll(proj, sigma));
  EXPECT_TRUE(IsRedundantPosition(proj, sigma, {0, 2}));
  EXPECT_TRUE(IsRedundantPosition(proj, sigma, {1, 2}));
  EXPECT_FALSE(IsRedundantPosition(proj, sigma, {2, 2}));
}

TEST(RedundancyTest, Section62NullMarkersOnlyRedundantPositions) {
  // The [oic] instance of Section 6.2: ⊥ positions are redundant,
  // the duplicated Kingtoys values are NOT.
  TableSchema schema = Schema("oic", "oi");
  Table t = Rows(schema, {"1F_", "1F_", "3DK", "3DK"});
  ConstraintSet sigma = Sigma(schema, "oic ->w c");
  ASSERT_TRUE(SatisfiesAll(t, sigma));

  EXPECT_TRUE(IsRedundantPosition(t, sigma, {0, 2}));
  EXPECT_TRUE(IsRedundantPosition(t, sigma, {1, 2}));
  EXPECT_FALSE(IsRedundantPosition(t, sigma, {2, 2}));
  EXPECT_FALSE(IsRedundantPosition(t, sigma, {3, 2}));

  // Hence: redundant positions exist (not redundancy-free) but none is
  // value-redundant — exactly the RFNF vs VRNF gap.
  EXPECT_FALSE(IsRedundancyFreeInstance(t, sigma));
  EXPECT_TRUE(IsValueRedundancyFreeInstance(t, sigma));
  EXPECT_TRUE(ValueRedundantPositions(t, sigma).empty());
  EXPECT_EQ(RedundantPositions(t, sigma).size(), 2u);
}

TEST(RedundancyTest, KeysMakeValuesNonRedundant) {
  TableSchema schema = Schema("icp", "icp");
  Table t = Rows(schema, {"FAX", "FBX", "DKY"});
  ConstraintSet sigma = Sigma(schema, "ic ->w p; c<ic>");
  ASSERT_TRUE(SatisfiesAll(t, sigma));
  EXPECT_TRUE(IsRedundancyFreeInstance(t, sigma));
}

TEST(ConstructionTest, PKeyWitness) {
  TableSchema schema = Schema("oicp", "ocp");
  SchemaDesign design{schema, Sigma(schema, "oi ->s c; ic ->w p")};
  ASSERT_OK_AND_ASSIGN(
      Table witness,
      PKeyViolationWitness(design, testing::Attrs(schema, "oi")));
  EXPECT_EQ(witness.num_rows(), 2);
  EXPECT_TRUE(SatisfiesAll(witness, design.sigma));
  EXPECT_FALSE(Satisfies(witness, Key(schema, "p<oi>")));
}

TEST(ConstructionTest, CKeyWitness) {
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "ic ->w p")};
  ASSERT_OK_AND_ASSIGN(
      Table witness,
      CKeyViolationWitness(design, testing::Attrs(schema, "ic")));
  EXPECT_TRUE(SatisfiesAll(witness, design.sigma));
  EXPECT_FALSE(Satisfies(witness, Key(schema, "c<ic>")));
}

TEST(ConstructionTest, RefusesImpliedKeys) {
  TableSchema schema = Schema("ab", "ab");
  SchemaDesign design{schema, Sigma(schema, "c<a>")};
  EXPECT_FALSE(
      PKeyViolationWitness(design, testing::Attrs(schema, "a")).ok());
  EXPECT_FALSE(
      CKeyViolationWitness(design, testing::Attrs(schema, "ab")).ok());
}

TEST(ConstructionTest, RedundancyWitnessForNonBcnfSchema) {
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "ic ->w p")};
  ASSERT_FALSE(IsBcnf(design));
  ASSERT_OK_AND_ASSIGN(RedundancyWitness witness,
                       MakeRedundancyWitness(design));
  EXPECT_TRUE(SatisfiesAll(witness.instance, design.sigma));
  EXPECT_TRUE(IsRedundantPosition(witness.instance, design.sigma,
                                  witness.position));
}

TEST(ConstructionTest, RedundancyWitnessRefusedInBcnf) {
  TableSchema schema = Schema("ab", "ab");
  SchemaDesign design{schema, Sigma(schema, "a ->s b; p<a>")};
  ASSERT_TRUE(IsBcnf(design));
  EXPECT_FALSE(MakeRedundancyWitness(design).ok());
}

TEST(ConstructionTest, FdWitnessForInternalCertainFd) {
  // a ->w a on a nullable a is not implied by the empty Σ; the witness
  // must pair ⊥ against a value.
  TableSchema schema = Schema("ab", "");
  SchemaDesign design{schema, ConstraintSet()};
  ASSERT_OK_AND_ASSIGN(Table witness,
                       FdViolationWitness(design, Fd(schema, "a ->w a")));
  EXPECT_FALSE(Satisfies(witness, Fd(schema, "a ->w a")));
}

// Executable completeness (Theorems 1 and 4): whenever the decision
// procedure rejects an implication, CounterExample builds an instance
// over (T, T_S, Σ) violating the queried constraint.
class CompletenessTest : public ::testing::TestWithParam<int> {};

TEST_P(CompletenessTest, CounterExamplesForAllRejectedQueries) {
  Rng rng(GetParam() * 37 + 11);
  int exercised = 0;
  for (int trial = 0; trial < 25; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 3, 1);
    SchemaDesign design{schema, sigma};
    Implication imp(schema, sigma);
    for (int q = 0; q < 20; ++q) {
      Constraint query;
      if (rng.Chance(0.6)) {
        FunctionalDependency fd;
        fd.lhs = testing::RandomSubset(&rng, n);
        fd.rhs = testing::RandomSubset(&rng, n);
        fd.mode = rng.Chance(0.5) ? Mode::kPossible : Mode::kCertain;
        if (imp.Implies(fd)) continue;
        query = fd;
      } else {
        KeyConstraint key{testing::RandomSubset(&rng, n, 0.5),
                          rng.Chance(0.5) ? Mode::kPossible
                                          : Mode::kCertain};
        if (imp.Implies(key)) continue;
        query = key;
      }
      ++exercised;
      ASSERT_OK_AND_ASSIGN(Table witness, CounterExample(design, query));
      EXPECT_TRUE(SatisfiesAll(witness, sigma))
          << ConstraintToString(query, schema) << " over "
          << design.ToString() << "\n"
          << witness.ToString();
      EXPECT_FALSE(Satisfies(witness, query))
          << ConstraintToString(query, schema) << " over "
          << design.ToString() << "\n"
          << witness.ToString();
    }
  }
  EXPECT_GT(exercised, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompletenessTest, ::testing::Range(0, 6));

// Theorem 9 (RFNF ⟺ BCNF), verified constructively in both directions.
class Theorem9Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem9Test, BcnfSchemasAdmitNoRedundancy) {
  Rng rng(GetParam() * 17 + 2);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 2));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 2, 1);
    SchemaDesign design{schema, sigma};
    if (!IsBcnf(design)) continue;
    for (int m = 0; m < 12; ++m) {
      Table instance = RandomInstance(&rng, schema, 4, 2);
      if (!SatisfiesAll(instance, sigma)) continue;
      EXPECT_TRUE(IsRedundancyFreeInstance(instance, sigma))
          << design.ToString() << "\n"
          << instance.ToString();
    }
  }
}

TEST_P(Theorem9Test, NonBcnfSchemasAdmitRedundancy) {
  Rng rng(GetParam() * 23 + 9);
  int exercised = 0;
  for (int trial = 0; trial < 30; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 2));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 2, 1);
    SchemaDesign design{schema, sigma};
    if (IsBcnf(design)) continue;
    ++exercised;
    ASSERT_OK_AND_ASSIGN(RedundancyWitness witness,
                         MakeRedundancyWitness(design));
    EXPECT_TRUE(SatisfiesAll(witness.instance, sigma))
        << design.ToString() << "\n" << witness.instance.ToString();
    EXPECT_TRUE(
        IsRedundantPosition(witness.instance, sigma, witness.position))
        << design.ToString() << "\n" << witness.instance.ToString();
  }
  EXPECT_GT(exercised, 3);
}

// Theorem 15 (VRNF ⟺ SQL-BCNF) on certain-only constraint sets.
TEST_P(Theorem9Test, SqlBcnfSchemasAdmitNoValueRedundancy) {
  Rng rng(GetParam() * 29 + 4);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 2));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 2, 1);
    for (auto& fd : *sigma.mutable_fds()) fd.mode = Mode::kCertain;
    for (auto& key : *sigma.mutable_keys()) key.mode = Mode::kCertain;
    SchemaDesign design{schema, sigma};
    ASSERT_OK_AND_ASSIGN(bool in_nf, IsSqlBcnf(design));
    if (!in_nf) continue;
    for (int m = 0; m < 12; ++m) {
      Table instance = RandomInstance(&rng, schema, 4, 2);
      if (!SatisfiesAll(instance, sigma)) continue;
      EXPECT_TRUE(IsValueRedundancyFreeInstance(instance, sigma))
          << design.ToString() << "\n"
          << instance.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem9Test, ::testing::Range(0, 5));

}  // namespace
}  // namespace sqlnf
