#include "sqlnf/constraints/serialize.h"

#include <gtest/gtest.h>

#include "sqlnf/reasoning/implication.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::RandomSchema;
using testing::RandomSigma;
using testing::Schema;
using testing::Sigma;

TEST(SerializeTest, ParseBasics) {
  ASSERT_OK_AND_ASSIGN(SchemaDesign design, ParseDesign(R"(
# a comment
table purchase
attrs order_id item catalog price
notnull order_id item price
constraint item,catalog ->w price
constraint p<order_id>
)"));
  EXPECT_EQ(design.table.name(), "purchase");
  EXPECT_EQ(design.table.num_attributes(), 4);
  EXPECT_EQ(design.table.nfs().size(), 3);
  EXPECT_EQ(design.sigma.fds().size(), 1u);
  EXPECT_EQ(design.sigma.keys().size(), 1u);
  EXPECT_TRUE(design.sigma.fds()[0].is_certain());
}

TEST(SerializeTest, Errors) {
  EXPECT_FALSE(ParseDesign("attrs a b\n").ok());         // missing table
  EXPECT_FALSE(ParseDesign("table t\n").ok());           // missing attrs
  EXPECT_FALSE(ParseDesign("table t\nattrs a\nbogus x\n").ok());
  EXPECT_FALSE(
      ParseDesign("table t\nattrs a\nconstraint a ->q a\n").ok());
  EXPECT_FALSE(ParseDesign("table t\nattrs a\nnotnull z\n").ok());
}

TEST(SerializeTest, RoundTripPreservesDesign) {
  TableSchema schema = Schema("abcd", "bd");
  SchemaDesign design{schema,
                      Sigma(schema, "ab ->w abc; c ->s d; c<bd>; p<a>")};
  ASSERT_OK_AND_ASSIGN(SchemaDesign parsed,
                       ParseDesign(FormatDesign(design)));
  EXPECT_TRUE(parsed.table.SameStructure(design.table));
  EXPECT_EQ(parsed.sigma.fds(), design.sigma.fds());
  EXPECT_EQ(parsed.sigma.keys(), design.sigma.keys());
}

TEST(SerializeTest, RandomRoundTrips) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    int n = 1 + static_cast<int>(rng.Uniform(0, 7));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 3, 2);
    SchemaDesign design{schema, sigma};
    auto parsed = ParseDesign(FormatDesign(design));
    ASSERT_OK(parsed.status()) << FormatDesign(design);
    EXPECT_TRUE(parsed->table.SameStructure(schema));
    EXPECT_EQ(parsed->sigma.fds(), sigma.fds());
    EXPECT_EQ(parsed->sigma.keys(), sigma.keys());
  }
}

TEST(SerializeTest, FileRoundTrip) {
  TableSchema schema = Schema("ab", "a");
  SchemaDesign design{schema, Sigma(schema, "a ->w ab")};
  const std::string path = ::testing::TempDir() + "/sqlnf_design_test.txt";
  ASSERT_OK(WriteDesignFile(design, path));
  ASSERT_OK_AND_ASSIGN(SchemaDesign back, ReadDesignFile(path));
  EXPECT_TRUE(back.table.SameStructure(schema));
  EXPECT_FALSE(ReadDesignFile("/nonexistent/file").ok());
}

}  // namespace
}  // namespace sqlnf
