// The chase (schema-level losslessness certification, relational case).

#include "sqlnf/decomposition/chase.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/decomposition/bcnf_decompose.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/three_nf.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::Schema;
using testing::Sigma;

Decomposition TwoWay(const TableSchema& schema, const char* left,
                     const char* right) {
  Decomposition d;
  d.components.push_back({Attrs(schema, left), false, "L"});
  d.components.push_back({Attrs(schema, right), false, "R"});
  return d;
}

TEST(ChaseTest, ClassicTextbookCases) {
  TableSchema schema = Schema("abc", "abc");
  // No FDs: {ab},{bc} is lossy.
  SchemaDesign no_fds{schema, ConstraintSet()};
  ASSERT_OK_AND_ASSIGN(ChaseResult lossy,
                       ChaseLossless(no_fds, TwoWay(schema, "ab", "bc")));
  EXPECT_FALSE(lossy.lossless);
  ASSERT_TRUE(lossy.counterexample.has_value());

  // b -> c certifies it.
  SchemaDesign with_fd{schema, Sigma(schema, "b ->s c")};
  ASSERT_OK_AND_ASSIGN(ChaseResult fine,
                       ChaseLossless(with_fd, TwoWay(schema, "ab", "bc")));
  EXPECT_TRUE(fine.lossless);
  // b -> a also works (the other side holds the join key closure).
  SchemaDesign other{schema, Sigma(schema, "b ->s a")};
  ASSERT_OK_AND_ASSIGN(ChaseResult fine2,
                       ChaseLossless(other, TwoWay(schema, "ab", "bc")));
  EXPECT_TRUE(fine2.lossless);
  // a -> c does not (the shared attribute is b).
  SchemaDesign wrong{schema, Sigma(schema, "a ->s c")};
  ASSERT_OK_AND_ASSIGN(ChaseResult bad,
                       ChaseLossless(wrong, TwoWay(schema, "ab", "bc")));
  EXPECT_FALSE(bad.lossless);
}

TEST(ChaseTest, TransitiveChaseSteps) {
  // Needs two chase rounds: {ab},{bc},{cd} with b -> c, c -> d.
  TableSchema schema = Schema("abcd", "abcd");
  SchemaDesign design{schema, Sigma(schema, "b ->s c; c ->s d")};
  Decomposition d;
  d.components.push_back({Attrs(schema, "ab"), false, ""});
  d.components.push_back({Attrs(schema, "bc"), false, ""});
  d.components.push_back({Attrs(schema, "cd"), false, ""});
  ASSERT_OK_AND_ASSIGN(ChaseResult result, ChaseLossless(design, d));
  EXPECT_TRUE(result.lossless);
}

TEST(ChaseTest, CounterexampleIsRealAndLossy) {
  TableSchema schema = Schema("abc", "abc");
  SchemaDesign design{schema, Sigma(schema, "a ->s c")};
  Decomposition d = TwoWay(schema, "ab", "bc");
  ASSERT_OK_AND_ASSIGN(ChaseResult result, ChaseLossless(design, d));
  ASSERT_FALSE(result.lossless);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_TRUE(SatisfiesAll(*result.counterexample, design.sigma));
  ASSERT_OK_AND_ASSIGN(bool lossless,
                       IsLosslessForInstance(*result.counterexample, d));
  EXPECT_FALSE(lossless);
}

TEST(ChaseTest, RejectsNullableSchemas) {
  TableSchema schema = Schema("ab", "a");
  EXPECT_FALSE(
      ChaseLossless({schema, ConstraintSet()}, TwoWay(schema, "ab", "ab"))
          .ok());
}

class ChasePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChasePropertyTest, CertifiesBcnfAnd3NfAndAlg3Outputs) {
  Rng rng(GetParam() * 19 + 7);
  for (int trial = 0; trial < 15; ++trial) {
    int n = 3 + static_cast<int>(rng.Uniform(0, 2));
    std::string names = std::string("abcdef").substr(0, n);
    TableSchema schema = Schema(names, names);
    ConstraintSet sigma;
    for (int f = 0; f < 2; ++f) {
      AttributeSet lhs = testing::RandomSubset(&rng, n, 0.3);
      AttributeSet rhs = testing::RandomSubset(&rng, n, 0.3);
      if (lhs.empty() || rhs.empty()) continue;
      sigma.AddFd(FunctionalDependency::Certain(lhs, lhs.Union(rhs)));
    }
    sigma.AddKey(KeyConstraint::Certain(schema.all()));
    SchemaDesign design{schema, sigma};

    ASSERT_OK_AND_ASSIGN(Decomposition bcnf,
                         ClassicalBcnfDecompose(design));
    ASSERT_OK_AND_ASSIGN(ChaseResult bcnf_chase,
                         ChaseLossless(design, bcnf));
    EXPECT_TRUE(bcnf_chase.lossless) << design.ToString();

    ASSERT_OK_AND_ASSIGN(Decomposition three_nf, ThreeNfSynthesis(design));
    ASSERT_OK_AND_ASSIGN(ChaseResult three_chase,
                         ChaseLossless(design, three_nf));
    EXPECT_TRUE(three_chase.lossless) << design.ToString();

    ASSERT_OK_AND_ASSIGN(VrnfResult vrnf, VrnfDecompose(design));
    ASSERT_OK_AND_ASSIGN(ChaseResult vrnf_chase,
                         ChaseLossless(design, vrnf.decomposition));
    EXPECT_TRUE(vrnf_chase.lossless) << design.ToString();
  }
}

TEST_P(ChasePropertyTest, LossyVerdictsComeWithWitnesses) {
  Rng rng(GetParam() * 83 + 41);
  int lossy_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    int n = 3 + static_cast<int>(rng.Uniform(0, 2));
    std::string names = std::string("abcde").substr(0, n);
    TableSchema schema = Schema(names, names);
    ConstraintSet sigma;
    AttributeSet lhs = testing::RandomSubset(&rng, n, 0.3);
    AttributeSet rhs = testing::RandomSubset(&rng, n, 0.3);
    if (!lhs.empty() && !rhs.empty()) {
      sigma.AddFd(FunctionalDependency::Possible(lhs, rhs));
    }
    SchemaDesign design{schema, sigma};
    // A random two-way split.
    AttributeSet left = testing::RandomSubset(&rng, n, 0.6);
    if (left.empty() || left == schema.all()) continue;
    Decomposition d;
    d.components.push_back({left, false, "L"});
    d.components.push_back(
        {schema.all().Difference(left).Union(
             AttributeSet::Single(*left.begin())),
         false, "R"});
    ASSERT_OK_AND_ASSIGN(ChaseResult result, ChaseLossless(design, d));
    if (result.lossless) continue;
    ++lossy_seen;
    ASSERT_TRUE(result.counterexample.has_value());
    EXPECT_TRUE(SatisfiesAll(*result.counterexample, sigma));
    ASSERT_OK_AND_ASSIGN(
        bool lossless,
        IsLosslessForInstance(*result.counterexample, d));
    EXPECT_FALSE(lossless) << design.ToString() << "\n"
                           << result.counterexample->ToString();
  }
  EXPECT_GT(lossy_seen, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChasePropertyTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace sqlnf
