// End-to-end flows across the whole library: mine a generated table,
// normalize its design, verify losslessness and redundancy elimination,
// and emit DDL — the full pipeline a downstream user would run.

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/datagen/generator.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/report.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/engine/csv.h"
#include "sqlnf/engine/ddl.h"
#include "sqlnf/engine/sql.h"
#include "sqlnf/engine/validate.h"
#include "sqlnf/normalform/normal_forms.h"
#include "sqlnf/normalform/redundancy.h"
#include "sqlnf/reasoning/cover.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Rows;
using testing::Schema;
using testing::Sigma;

// The paper's end-to-end story on the running example: detect the
// normal-form violation, decompose, verify the result.
TEST(IntegrationTest, PurchaseStory) {
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "oic ->w oicp")};

  // 1. Not in VRNF.
  ASSERT_OK_AND_ASSIGN(bool vrnf_before, IsVrnf(design));
  EXPECT_FALSE(vrnf_before);

  // 2. An instance with redundancy exists (⊥ positions in Figure §6.2).
  Table instance = Rows(schema, {"1F_X", "1F_X", "3DKY", "3DKY"});
  ASSERT_TRUE(SatisfiesAll(instance, design.sigma));
  EXPECT_FALSE(IsRedundancyFreeInstance(instance, design.sigma));

  // 3. Decompose; every component is in VRNF and the instance
  //    reconstructs exactly.
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  ASSERT_OK_AND_ASSIGN(bool vrnf_components,
                       AllComponentsVrnf(design, result));
  EXPECT_TRUE(vrnf_components);
  ASSERT_OK_AND_ASSIGN(bool lossless,
                       IsLosslessForInstance(instance,
                                             result.decomposition));
  EXPECT_TRUE(lossless);

  // 4. The projected instances are free of VALUE redundancy (VRNF's
  //    semantic guarantee, Theorem 15).
  ASSERT_OK_AND_ASSIGN(auto tables,
                       ProjectAll(instance, result.decomposition));
  for (size_t i = 0; i < tables.size(); ++i) {
    ConstraintSet component_sigma;
    for (const KeyConstraint& k : result.component_keys[i]) {
      // Translate global ids to local ones.
      AttributeSet local;
      for (AttributeId a : k.attrs) {
        auto id = tables[i].schema().FindAttribute(
            schema.attribute_name(a));
        ASSERT_OK(id.status());
        local.Add(*id);
      }
      component_sigma.AddKey(KeyConstraint::Certain(local));
      EXPECT_TRUE(Satisfies(tables[i], KeyConstraint::Certain(local)))
          << tables[i].ToString();
    }
    EXPECT_TRUE(IsValueRedundancyFreeInstance(tables[i], component_sigma))
        << tables[i].ToString();
  }

  // 5. DDL names every component; the Theorem-12 key c<oic> has the
  //    nullable catalog column, so it is emitted as a trigger note
  //    rather than a declarative PRIMARY KEY.
  std::string ddl = EmitDecompositionDdl(design, result);
  EXPECT_NE(ddl.find("CREATE TABLE"), std::string::npos);
  EXPECT_NE(ddl.find("trigger-based"), std::string::npos);
}

// CSV in → mining → normalization → DDL out (the schema-advisor flow).
TEST(IntegrationTest, CsvToAdvisedSchema) {
  const char* csv =
      "emp,dept,mgr,site\n"
      "e1,d1,m1,s1\n"
      "e2,d1,m1,s1\n"
      "e3,d2,m2,s1\n"
      "e4,d2,m2,NULL\n"
      "e5,d3,m3,s2\n";
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsvString(csv));
  ASSERT_OK_AND_ASSIGN(DiscoveryResult mined, DiscoverConstraints(t));
  FdClassification cls = ClassifyDiscovered(t, mined);
  // dept ->w mgr should be discovered as a certain (indeed total) FD.
  ASSERT_OK_AND_ASSIGN(AttributeId dept,
                       t.schema().FindAttribute("dept"));
  ASSERT_OK_AND_ASSIGN(AttributeId mgr, t.schema().FindAttribute("mgr"));
  bool found = false;
  for (const auto& fd : cls.lambda_fds) {
    if (fd.lhs == AttributeSet::Single(dept) && fd.rhs.Contains(mgr)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Feed the λ-FDs into Algorithm 3 over the inferred NFS.
  TableSchema schema = t.schema();
  ASSERT_OK(schema.SetNfs(mined.null_free_columns));
  ConstraintSet sigma;
  for (const auto& fd : cls.lambda_fds) sigma.AddUniqueFd(fd);
  SchemaDesign design{schema, sigma};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  EXPECT_GE(result.decomposition.components.size(), 2u);
  ASSERT_OK_AND_ASSIGN(bool lossless,
                       IsLosslessForInstance(t, result.decomposition));
  EXPECT_TRUE(lossless);
}

// Generate → mine → validate: mined constraints hold via the fast
// validators, and cover-reduction keeps the mined FD set equivalent.
TEST(IntegrationTest, GenerateMineValidate) {
  TableSpec spec;
  spec.num_columns = 6;
  spec.num_rows = 150;
  spec.fds = {{{0}, {1}}, {{2, 3}, {4}}};
  spec.null_rates.assign(6, 0.1);
  spec.duplicate_rate = 0.05;
  spec.seed = 321;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(spec));
  ASSERT_OK_AND_ASSIGN(DiscoveryResult mined, DiscoverConstraints(t));

  ConstraintSet sigma;
  for (const auto& fd : mined.c_fds) sigma.AddUniqueFd(fd);
  for (const auto& key : mined.c_keys) sigma.AddUniqueKey(key);
  EXPECT_TRUE(ValidateAll(t, sigma));

  TableSchema schema = t.schema();
  ASSERT_OK(schema.SetNfs(mined.null_free_columns));
  ConstraintSet reduced = ReducedCover(schema, sigma);
  EXPECT_TRUE(EquivalentSigmas(schema, sigma, reduced));
  EXPECT_TRUE(ValidateAll(t, reduced));
}

// Generated DDL executes on the bundled SQL engine: normalize, emit
// CREATE TABLE statements, run them, load the projected data through
// INSERTs, and watch the declared keys do their job.
TEST(IntegrationTest, DdlRoundTripsThroughSqlEngine) {
  WriterScope writer;
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "oic ->w oicp")};
  ASSERT_OK_AND_ASSIGN(VrnfResult vrnf, VrnfDecompose(design));
  std::string ddl = EmitDecompositionDdl(design, vrnf);

  Database db;
  SqlSession sql(&db);
  ASSERT_OK(sql.ExecuteScript(ddl).status()) << ddl;
  // Both component tables exist.
  EXPECT_EQ(db.TableNames().size(), 2u);

  // Load the §6.2 instance's projections.
  Table instance = Rows(schema, {"1F_X", "1F_X", "3DKY", "3DKY"});
  ASSERT_OK_AND_ASSIGN(auto parts,
                       ProjectAll(instance, vrnf.decomposition));
  for (size_t i = 0; i < parts.size(); ++i) {
    const std::string& name = parts[i].schema().name();
    ASSERT_TRUE(db.HasTable(name)) << name;
    for (const Tuple& t : parts[i].rows()) {
      EXPECT_OK(db.Insert(name, t));
    }
  }
  // The multiset component kept its duplicates; the set component is
  // deduplicated (and its rows were accepted under the declared keys).
  ASSERT_OK_AND_ASSIGN(const StoredTable* rest,
                       db.Find(parts[0].schema().name()));
  ASSERT_OK_AND_ASSIGN(const StoredTable* set_part,
                       db.Find(parts[1].schema().name()));
  EXPECT_EQ(rest->num_rows(), 4);
  EXPECT_EQ(set_part->num_rows(), 2);
}

// The full LMRP contractor pipeline with validators instead of the
// reference checker (larger data).
TEST(IntegrationTest, ContractorValidatesAndDecomposes) {
  ASSERT_OK_AND_ASSIGN(Table contractor, Contractor());
  ASSERT_OK_AND_ASSIGN(ConstraintSet lambda,
                       ContractorLambdaFds(contractor.schema()));
  EXPECT_TRUE(ValidateAll(contractor, lambda));

  SchemaDesign design{contractor.schema(), lambda};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  ASSERT_OK_AND_ASSIGN(auto report,
                       ReportDecomposition(contractor,
                                           result.decomposition));
  EXPECT_LT(report.cells_after, report.cells_before);
  std::string ddl = EmitDecompositionDdl(design, result);
  EXPECT_NE(ddl.find("url"), std::string::npos);
}

}  // namespace
}  // namespace sqlnf
