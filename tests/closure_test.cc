// Closure algorithms (Definition 2, Algorithms 1 and 2, Lemma 1,
// Theorem 3): the paper's worked example plus property sweeps comparing
// the naive repeat-until loops against the linear-time engine.

#include "sqlnf/reasoning/closure.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::RandomSchema;
using testing::RandomSigma;
using testing::RandomSubset;
using testing::Schema;
using testing::Sigma;

TEST(ClosureTest, PaperWorkedExample) {
  // PURCHASE = oicp, T_S = ocp, Σ = {oi ->s c, ic ->w p} (Section 4.1):
  // oi*p = oicp (so Σ ⊨ oi ->s p) but oi*c = o (so Σ ⊭ oi ->w p).
  TableSchema schema = Schema("oicp", "ocp");
  ConstraintSet sigma = Sigma(schema, "oi ->s c; ic ->w p");
  AttributeSet oi = Attrs(schema, "oi");

  EXPECT_EQ(PClosureNaive(sigma, schema.nfs(), oi), schema.all());
  EXPECT_EQ(CClosureNaive(sigma, schema.nfs(), oi), Attrs(schema, "o"));

  ClosureEngine engine(sigma, schema.nfs());
  EXPECT_EQ(engine.PClosure(oi), schema.all());
  EXPECT_EQ(engine.CClosure(oi), Attrs(schema, "o"));
}

TEST(ClosureTest, CClosureNeedNotContainX) {
  // X*c starts from X ∩ T_S; nullable LHS attributes are not certain
  // consequences of themselves.
  TableSchema schema = Schema("ab", "");
  ConstraintSet sigma;  // empty
  ClosureEngine engine(sigma, schema.nfs());
  EXPECT_TRUE(engine.CClosure(Attrs(schema, "ab")).empty());
  EXPECT_EQ(engine.PClosure(Attrs(schema, "ab")), schema.all());
}

TEST(ClosureTest, StrongFdNeedsNullFreeSupportInCClosure) {
  // a ->s b can only fire inside a c-closure once its LHS is certain,
  // i.e. within C ∩ T_S.
  TableSchema nullable = Schema("ab", "");
  ConstraintSet sigma = Sigma(nullable, "a ->s b");
  ClosureEngine engine(sigma, nullable.nfs());
  EXPECT_TRUE(engine.CClosure(Attrs(nullable, "a")).empty());

  TableSchema notnull = Schema("ab", "a");
  ConstraintSet sigma2 = Sigma(notnull, "a ->s b");
  ClosureEngine engine2(sigma2, notnull.nfs());
  EXPECT_EQ(engine2.CClosure(Attrs(notnull, "a")), Attrs(notnull, "ab"));
}

TEST(ClosureTest, WeakFdFiresFromXInCClosure) {
  // Algorithm 2 line 4: weak FDs fire when LHS ⊆ C ∪ X, so a nullable
  // LHS attribute of X still triggers certain FDs.
  TableSchema schema = Schema("ab", "");
  ConstraintSet sigma = Sigma(schema, "a ->w b");
  ClosureEngine engine(sigma, schema.nfs());
  EXPECT_EQ(engine.CClosure(Attrs(schema, "a")), Attrs(schema, "b"));
}

TEST(ClosureTest, ChainsThroughBothArrowKinds) {
  TableSchema schema = Schema("abcd", "ab");
  ConstraintSet sigma = Sigma(schema, "a ->w b; b ->s c; c ->w d");
  ClosureEngine engine(sigma, schema.nfs());
  // p-closure of a: a, then b (weak), then c (strong: b ∈ C ∩ T_S),
  // then d (weak).
  EXPECT_EQ(engine.PClosure(Attrs(schema, "a")), schema.all());
  // c-closure of a: a ∈ T_S → C={a}; weak a->b fires → b; strong b->c
  // fires (b ∈ C∩T_S) → c; weak c->d fires → d.
  EXPECT_EQ(engine.CClosure(Attrs(schema, "a")), schema.all());
}

TEST(ClosureTest, EmptyLhsFiresImmediately) {
  TableSchema schema = Schema("ab");
  ConstraintSet sigma = Sigma(schema, "{} ->w a");
  ClosureEngine engine(sigma, schema.nfs());
  EXPECT_EQ(engine.CClosure(AttributeSet()), Attrs(schema, "a"));
  EXPECT_EQ(engine.PClosure(AttributeSet()), Attrs(schema, "a"));
}

class ClosurePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ClosurePropertyTest, LinearEngineMatchesNaiveAlgorithms) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 6));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma =
        RandomSigma(&rng, n, static_cast<int>(rng.Uniform(0, 8)), 0);
    ClosureEngine engine(sigma, schema.nfs());
    for (int q = 0; q < 10; ++q) {
      AttributeSet x = RandomSubset(&rng, n);
      EXPECT_EQ(engine.PClosure(x), PClosureNaive(sigma, schema.nfs(), x))
          << schema.FormatSet(x) << " over " << sigma.ToString(schema);
      EXPECT_EQ(engine.CClosure(x), CClosureNaive(sigma, schema.nfs(), x))
          << schema.FormatSet(x) << " over " << sigma.ToString(schema);
    }
  }
}

TEST_P(ClosurePropertyTest, Lemma1Properties) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 6));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma =
        RandomSigma(&rng, n, static_cast<int>(rng.Uniform(0, 8)), 0);
    ClosureEngine engine(sigma, schema.nfs());
    AttributeSet x = RandomSubset(&rng, n);
    AttributeSet y = x.Union(RandomSubset(&rng, n));

    AttributeSet xp = engine.PClosure(x);
    AttributeSet xc = engine.CClosure(x);
    // (i) monotonicity.
    EXPECT_TRUE(xp.IsSubsetOf(engine.PClosure(y)));
    EXPECT_TRUE(xc.IsSubsetOf(engine.CClosure(y)));
    // (ii) X, X*c ⊆ X*p.
    EXPECT_TRUE(x.IsSubsetOf(xp));
    EXPECT_TRUE(xc.IsSubsetOf(xp));
    // (iii) (X*c)*c ⊆ X*c and (X*p)*c ⊆ X*p.
    EXPECT_TRUE(engine.CClosure(xc).IsSubsetOf(xc));
    EXPECT_TRUE(engine.CClosure(xp).IsSubsetOf(xp));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosurePropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace sqlnf
