// NEGATIVE-COMPILE FIXTURE — this file must NOT compile under Clang
// with -Wthread-safety -Werror=thread-safety. It is deliberately
// excluded from SQLNF_TESTS; the thread_safety_violation_must_not_compile
// ctest target (Clang builds only) invokes the compiler on it directly
// and asserts the build FAILS with thread-safety diagnostics — proving
// the annotations in util/thread_annotations.h are live, not inert
// macros. Every function below is a distinct violation of the
// machine-checked contract; if any of them ever compiles, the gate
// has rotted.
//
// (tools/negative_compile_check.sh also asserts the failure mentions
// thread-safety, so an unrelated syntax error cannot masquerade as a
// passing gate.)

#include <string>

#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/sql.h"
#include "sqlnf/util/mutex.h"

namespace sqlnf {

// Violation 1: a reader-context function — no WriterScope anywhere on
// its path — calling a writer-only catalog entry point. This is the
// exact bug class the phantom WriterThread capability exists to stop:
// a reader thread mutating live state it may only observe through
// snapshots.
Status ReaderMutatesLiveCatalog(Database* db, const Tuple& row) {
  return db->Insert("t", row);  // requires writer_thread_role
}

// Violation 2: driving SQL (DML/DDL entry point) from a reader
// context. SqlSession::Execute requires the role transitively.
void ReaderRunsSql(SqlSession* session) {
  (void)session->Execute("DELETE FROM t;");  // requires writer_thread_role
}

// Violation 3: opening a transaction without the writer role.
Status ReaderOpensTransaction(Database* db) {
  return db->Begin();  // requires writer_thread_role
}

// Violation 4: releasing a mutex that was never acquired — the
// capability on util/mutex.h's Mutex is tracked, not decorative.
void UnlockWithoutLock(Mutex& mu) {
  mu.Unlock();  // releasing a capability that is not held
}

// Violation 5: acquiring without releasing — a function may not exit
// while still holding a capability it claimed.
void LockWithoutUnlock(Mutex& mu) {
  mu.Lock();  // capability still held at end of function
}

}  // namespace sqlnf
