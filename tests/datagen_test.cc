// Data generation: planted FDs hold, corpus shape, and — critically —
// the LMRP replicas reproduce every number the paper reports for them
// (Section 7; see lmrp.h).

#include <algorithm>
#include <map>
#include <utility>

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/datagen/generator.h"
#include "sqlnf/datagen/lmrp.h"
#include "sqlnf/datagen/uci.h"
#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/report.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/engine/validate.h"
#include "test_util.h"

namespace sqlnf {
namespace {

TEST(GeneratorTest, PlantedFdsHold) {
  TableSpec spec;
  spec.num_columns = 6;
  spec.num_rows = 200;
  spec.fds = {{{0, 1}, {2}}, {{2}, {3}}};
  spec.null_rates.assign(6, 0.2);  // only non-FD columns get ⊥
  spec.duplicate_rate = 0.1;
  spec.seed = 11;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(spec));
  EXPECT_EQ(t.num_rows(), 200);
  FunctionalDependency fd1 =
      FunctionalDependency::Certain({0, 1}, {2});
  FunctionalDependency fd2 = FunctionalDependency::Certain({2}, {3});
  EXPECT_TRUE(Satisfies(t, fd1));
  EXPECT_TRUE(Satisfies(t, fd2));
  // FD columns stayed null-free; others received ⊥s.
  EXPECT_EQ(t.CountNulls(0), 0);
  EXPECT_EQ(t.CountNulls(2), 0);
  EXPECT_GT(t.CountNulls(4) + t.CountNulls(5), 0);
}

TEST(GeneratorTest, DirtyRowsBreakPlants) {
  TableSpec spec;
  spec.num_columns = 4;
  spec.num_rows = 300;
  spec.fds = {{{0}, {1}}};
  spec.dirty_rate = 0.3;
  spec.domain_sizes = {10, 50, 5, 5};
  spec.seed = 12;
  ASSERT_OK_AND_ASSIGN(Table t, GenerateTable(spec));
  EXPECT_FALSE(
      Satisfies(t, FunctionalDependency::Certain({0}, {1})));
}

TEST(GeneratorTest, DeterministicAcrossCalls) {
  TableSpec spec;
  spec.seed = 99;
  ASSERT_OK_AND_ASSIGN(Table a, GenerateTable(spec));
  ASSERT_OK_AND_ASSIGN(Table b, GenerateTable(spec));
  EXPECT_TRUE(a.SameMultiset(b));
}

TEST(GeneratorTest, ValidatesSpec) {
  TableSpec bad;
  bad.num_columns = 0;
  EXPECT_FALSE(GenerateTable(bad).ok());
  TableSpec bad_fd;
  bad_fd.num_columns = 3;
  bad_fd.fds = {{{7}, {1}}};
  EXPECT_FALSE(GenerateTable(bad_fd).ok());
}

TEST(CorpusTest, Has130Tables) {
  auto profiles = DefaultCorpusProfiles();
  int total = 0;
  for (const auto& p : profiles) total += p.num_tables;
  EXPECT_EQ(profiles.size(), 7u);
  EXPECT_EQ(total, 130);
}

TEST(CorpusTest, BuildsDeterministically) {
  auto profiles = DefaultCorpusProfiles();
  // Shrink for test speed: 2 tables per profile.
  for (auto& p : profiles) p.num_tables = 2;
  ASSERT_OK_AND_ASSIGN(auto corpus_a, BuildCorpus(profiles, 5));
  ASSERT_OK_AND_ASSIGN(auto corpus_b, BuildCorpus(profiles, 5));
  ASSERT_EQ(corpus_a.size(), corpus_b.size());
  ASSERT_EQ(corpus_a.size(), 14u);
  for (size_t i = 0; i < corpus_a.size(); ++i) {
    EXPECT_TRUE(corpus_a[i].SameMultiset(corpus_b[i]));
  }
}

TEST(LmrpContactTest, SnippetMatchesFigure7) {
  ASSERT_OK_AND_ASSIGN(Table snippet, ContactDraftLookupSnippet());
  EXPECT_EQ(snippet.num_rows(), 14);
  EXPECT_EQ(snippet.num_columns(), 5);
  // σ holds on the snippet; city ->w state_id fails on it (paper).
  ASSERT_OK_AND_ASSIGN(FunctionalDependency sigma,
                       ContactSigmaFd(snippet.schema()));
  EXPECT_TRUE(Satisfies(snippet, sigma));
  auto city_state = ParseFd(snippet.schema(), "city ->w state_id");
  ASSERT_OK(city_state.status());
  EXPECT_FALSE(Satisfies(snippet, *city_state));
  // People move: first,last ->s state_id fails (Stacey Brennan).
  auto person_state =
      ParseFd(snippet.schema(), "first_name,last_name ->s state_id");
  EXPECT_FALSE(Satisfies(snippet, *person_state));
  // Its σ-decomposition has 10 set rows (Figure 8).
  AttributeSet proj = sigma.rhs;
  ASSERT_OK_AND_ASSIGN(Table set_part, ProjectSet(snippet, proj, "p"));
  EXPECT_EQ(set_part.num_rows(), 10);
}

TEST(LmrpContactTest, FullTableMatchesPaperNumbers) {
  ASSERT_OK_AND_ASSIGN(Table contact, ContactDraftLookup());
  EXPECT_EQ(contact.num_rows(), 124);
  EXPECT_EQ(contact.num_columns(), 14);
  ASSERT_OK_AND_ASSIGN(FunctionalDependency sigma,
                       ContactSigmaFd(contact.schema()));
  EXPECT_TRUE(Satisfies(contact, sigma));
  // NFS columns are null-free; city has ⊥s.
  EXPECT_OK(contact.CheckNfs());
  ASSERT_OK_AND_ASSIGN(AttributeId city,
                       contact.schema().FindAttribute("city"));
  EXPECT_GT(contact.CountNulls(city), 0);

  // The 4-column set projection has 105 rows: 19 sources of potential
  // inconsistency eliminated (paper).
  ASSERT_OK_AND_ASSIGN(Table proj, ProjectSet(contact, sigma.rhs, "p"));
  EXPECT_EQ(proj.num_rows(), 105);

  // c<first,last,city> holds on the projection.
  AttributeSet key_attrs = sigma.lhs;
  // Translate into the projection's ids.
  AttributeSet local;
  for (AttributeId a : key_attrs) {
    ASSERT_OK_AND_ASSIGN(
        AttributeId id,
        proj.schema().FindAttribute(contact.schema().attribute_name(a)));
    local.Add(id);
  }
  EXPECT_TRUE(Satisfies(proj, KeyConstraint::Certain(local)));

  // The σ-decomposition is lossless on the replica.
  Decomposition d;
  d.components.push_back(
      {sigma.lhs.Union(contact.schema().all().Difference(sigma.rhs)), true,
       "rest"});
  d.components.push_back({sigma.rhs, false, "proj"});
  ASSERT_OK_AND_ASSIGN(bool lossless, IsLosslessForInstance(contact, d));
  EXPECT_TRUE(lossless);
}

TEST(LmrpContractorTest, MatchesPaperNumbers) {
  ASSERT_OK_AND_ASSIGN(Table contractor, Contractor());
  EXPECT_EQ(contractor.num_rows(), 173);
  EXPECT_EQ(contractor.num_columns(), 22);
  EXPECT_EQ(contractor.num_cells(), 3806);
  ASSERT_OK_AND_ASSIGN(ConstraintSet lambda,
                       ContractorLambdaFds(contractor.schema()));
  ASSERT_EQ(lambda.fds().size(), 3u);
  for (const auto& fd : lambda.fds()) {
    EXPECT_TRUE(fd.IsTotal());
    EXPECT_TRUE(Satisfies(contractor, fd)) << fd.ToString(contractor.schema());
  }

  SchemaDesign design{contractor.schema(), lambda};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  ASSERT_EQ(result.decomposition.components.size(), 4u);
  ASSERT_OK_AND_ASSIGN(auto tables,
                       ProjectAll(contractor, result.decomposition));

  // Paper: tables of 38×4, 67×5, 73×4 and the 173×17 multiset remainder
  // → 3720 cells total (vs 3806).
  ASSERT_OK_AND_ASSIGN(DecompositionReport report,
                       ReportDecomposition(contractor,
                                           result.decomposition));
  EXPECT_EQ(report.cells_before, 3806);
  EXPECT_EQ(report.cells_after, 3720);
  std::vector<std::pair<int, int>> shapes;
  for (const Table& t : tables) {
    shapes.emplace_back(t.num_rows(), t.num_columns());
  }
  std::sort(shapes.begin(), shapes.end());
  EXPECT_EQ(shapes[0], std::make_pair(38, 4));
  EXPECT_EQ(shapes[1], std::make_pair(67, 5));
  EXPECT_EQ(shapes[2], std::make_pair(73, 4));
  EXPECT_EQ(shapes[3], std::make_pair(173, 17));

  // Per-step eliminations: 1 dmerc_rgn value + 134 ⊥, 135 status,
  // 106 contractor_version, 106 status_flag, 100 url = 448 values.
  ASSERT_OK_AND_ASSIGN(auto steps, ReportVrnfSteps(contractor, result));
  int total_values = 0, total_nulls = 0;
  std::map<std::string, std::pair<int, int>> by_column;
  for (const auto& step : steps) {
    for (const auto& col : step.columns) {
      total_values += col.values_eliminated;
      total_nulls += col.nulls_eliminated;
      by_column[contractor.schema().attribute_name(col.column)] = {
          col.values_eliminated, col.nulls_eliminated};
    }
  }
  EXPECT_EQ(total_values, 448);
  EXPECT_EQ(total_nulls, 134);
  EXPECT_EQ(by_column["dmerc_rgn"], std::make_pair(1, 134));
  EXPECT_EQ(by_column["status"], std::make_pair(135, 0));
  EXPECT_EQ(by_column["contractor_version"], std::make_pair(106, 0));
  EXPECT_EQ(by_column["status_flag"], std::make_pair(106, 0));
  EXPECT_EQ(by_column["url"], std::make_pair(100, 0));

  // Lossless on the replica.
  ASSERT_OK_AND_ASSIGN(
      bool lossless,
      IsLosslessForInstance(contractor, result.decomposition));
  EXPECT_TRUE(lossless);
}

TEST(UciShapedTest, Shapes) {
  ASSERT_OK_AND_ASSIGN(Table bc, UciBreastCancerShaped());
  EXPECT_EQ(bc.num_rows(), 699);
  EXPECT_EQ(bc.num_columns(), 11);
  ASSERT_OK_AND_ASSIGN(Table adult, UciAdultShaped(1000));
  EXPECT_EQ(adult.num_rows(), 1000);
  EXPECT_EQ(adult.num_columns(), 14);
  ASSERT_OK_AND_ASSIGN(Table hep, UciHepatitisShaped());
  EXPECT_EQ(hep.num_rows(), 155);
  EXPECT_EQ(hep.num_columns(), 20);
  // Nulls appear where specified.
  ASSERT_OK_AND_ASSIGN(AttributeId protime,
                       hep.schema().FindAttribute("protime"));
  EXPECT_GT(hep.CountNulls(protime), 20);
}

}  // namespace
}  // namespace sqlnf
