// engine/session.h: script routing (lock-free snapshot reads vs
// serialized writes), structured error details with script positions,
// the server-session transaction barrier, the shared constraint-set
// cache, and — under the `concurrency` ctest label — N reader sessions
// racing a committing/aborting writer while observing only committed
// prefixes, bit-identical to the serial oracle.

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/session.h"
#include "sqlnf/util/mutex.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Rows;
using testing::Schema;
using testing::Sigma;

TEST(SessionTest, ExecutesScriptsEndToEnd) {
  Database db;
  SessionRegistry registry(&db);
  Session session(&registry);

  ResultSet ddl = session.Execute(
      "CREATE TABLE t (a TEXT, b TEXT);"
      "INSERT INTO t VALUES ('1', 'x'), ('2', 'y');");
  ASSERT_TRUE(ddl.ok()) << ddl.error.ToString();
  ASSERT_EQ(ddl.statements.size(), 2u);

  ResultSet rs = session.Execute("SELECT a, b FROM t WHERE a = '2';");
  ASSERT_TRUE(rs.ok()) << rs.error.ToString();
  ASSERT_EQ(rs.statements.size(), 1u);
  ASSERT_TRUE(rs.statements[0].rows.has_value());
  EXPECT_EQ(rs.statements[0].rows->num_rows(), 1);
  EXPECT_EQ(rs.statements[0].message, "1 row(s)");
}

// Read-only scripts must not touch the writer mutex: holding it from
// the test thread would deadlock a SELECT that wrongly routed through
// the writer path.
TEST(SessionTest, ReadOnlyScriptsBypassTheWriterMutex) {
  Database db;
  SessionRegistry registry(&db);
  Session session(&registry);
  ASSERT_TRUE(session
                  .Execute("CREATE TABLE t (a TEXT);"
                           "INSERT INTO t VALUES ('1');")
                  .ok());

  MutexLock hold_writer(registry.writer_mu());
  ResultSet rs = session.Execute("SELECT * FROM t; SHOW TABLES;"
                                 "DESCRIBE t;");
  ASSERT_TRUE(rs.ok()) << rs.error.ToString();
  ASSERT_EQ(rs.statements.size(), 3u);
  EXPECT_EQ(rs.statements[0].rows->num_rows(), 1);
}

TEST(SessionTest, ErrorsCarryStatementIndexAndLineColumn) {
  Database db;
  SessionRegistry registry(&db);
  Session session(&registry);

  const std::string script =
      "CREATE TABLE t (a TEXT);\nSELECT nope FROM t;";
  ResultSet rs = session.Execute(script);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.error.statement_index, 1);
  // `nope` starts at byte 32 of the script: line 2, column 8.
  EXPECT_EQ(rs.error.byte_offset, 32);
  EXPECT_EQ(rs.error.line, 2);
  EXPECT_EQ(rs.error.column, 8);
  EXPECT_NE(rs.error.message.find("nope"), std::string::npos);
  // The first statement succeeded and its result is retained.
  ASSERT_EQ(rs.statements.size(), 1u);

  // Read-only path reports positions the same way.
  ResultSet ro = session.Execute("SELECT * FROM missing;");
  ASSERT_FALSE(ro.ok());
  EXPECT_EQ(ro.error.code, StatusCode::kNotFound);
  EXPECT_EQ(ro.error.statement_index, 0);
  EXPECT_EQ(ro.error.byte_offset, 14);
  EXPECT_EQ(ro.error.line, 1);
  EXPECT_EQ(ro.error.column, 15);
}

TEST(SessionTest, ServerSessionRollsBackOpenTransactions) {
  Database db;
  SessionRegistry registry(&db);
  Session session(&registry);
  ASSERT_TRUE(session.Execute("CREATE TABLE t (a TEXT);").ok());

  ResultSet rs =
      session.Execute("BEGIN; INSERT INTO t VALUES ('leaked');");
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.error.code, StatusCode::kFailedPrecondition);
  EXPECT_FALSE(db.InTransaction());

  ResultSet count = session.Execute("SELECT * FROM t;");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.statements[0].affected, 0);  // the insert is gone
}

TEST(SessionTest, ShellSessionMayKeepTransactionsOpen) {
  Database db;
  SessionRegistry registry(&db);
  SessionOptions options;
  options.allow_open_transaction = true;
  Session shell(&registry, options);
  ASSERT_TRUE(shell.Execute("CREATE TABLE t (a TEXT);").ok());

  ResultSet rs = shell.Execute("BEGIN; INSERT INTO t VALUES ('mine');");
  ASSERT_TRUE(rs.ok()) << rs.error.ToString();
  EXPECT_TRUE(db.InTransaction());

  // With the transaction open, reads route through the writer path and
  // see the session's own uncommitted rows (snapshots never would).
  ResultSet mid = shell.Execute("SELECT * FROM t;");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid.statements[0].affected, 1);

  ASSERT_TRUE(shell.Execute("ROLLBACK;").ok());
  EXPECT_FALSE(db.InTransaction());
  ResultSet after = shell.Execute("SELECT * FROM t;");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.statements[0].affected, 0);
}

TEST(SessionTest, ConstraintCacheServesRepeatsAndKeysOnSchema) {
  Database db;
  SessionRegistry registry(&db);
  TableSchema schema = Schema("ab");
  TableSchema other = Schema("ax");

  ASSERT_OK_AND_ASSIGN(auto first,
                       registry.ParsedConstraints(schema, "a ->w b"));
  ASSERT_OK_AND_ASSIGN(auto second,
                       registry.ParsedConstraints(schema, "a ->w b"));
  EXPECT_EQ(first.get(), second.get());  // shared, not re-parsed
  EXPECT_EQ(registry.cache_hits(), 1);
  EXPECT_EQ(registry.cache_misses(), 1);

  // Same text, different schema → different entry (and a re-parse
  // against the new resolution context).
  ASSERT_OK_AND_ASSIGN(auto third,
                       registry.ParsedConstraints(other, "a ->w x"));
  EXPECT_EQ(registry.cache_misses(), 2);
  EXPECT_FALSE(registry.ParsedConstraints(schema, "a ->w zzz").ok());
  (void)third;
}

TEST(SessionTest, ValidateRendersTheHistoricalCliText) {
  Database db;
  SessionRegistry registry(&db);
  Session session(&registry);
  ASSERT_TRUE(session
                  .Execute("CREATE TABLE t (a TEXT, b TEXT);"
                           "INSERT INTO t VALUES ('1', 'x'), ('1', 'y');")
                  .ok());

  ASSERT_OK_AND_ASSIGN(ValidationReport report,
                       session.Validate("t", "a ->w b; c<a,b>"));
  EXPECT_EQ(report.violated, 1);
  EXPECT_EQ(report.RenderText(),
            "table: 2 rows x 2 columns; validating 2 constraint(s), "
            "threads=1\n"
            "  VIOLATED   {a} ->w {b}  (rows 0, 1)\n"
            "  satisfied  c<{a,b}>\n"
            "1 of 2 constraint(s) violated\n");
  EXPECT_NE(report.RenderJson().find("\"witness_rows\":[0,1]"),
            std::string::npos);
}

// N reader sessions race one committing writer and one aborting
// writer. Every result a reader sees must be bit-identical to a serial
// oracle prefix: rows 0..3k-1 in insertion order (batches of 3 commit
// atomically; aborted junk never surfaces). Both SELECTs of each
// read-only script must agree (one SnapshotAll epoch per script).
TEST(SessionTest, ConcurrentSessionsSeeOnlyCommittedPrefixes) {
  Database db;
  SessionRegistry registry(&db);
  {
    Session setup(&registry);
    ASSERT_TRUE(setup.Execute("CREATE TABLE t (a TEXT);").ok());
  }
  constexpr int kBatches = 12;

  // Serial oracle: the only states a reader may observe.
  std::map<int, std::string> oracle;  // row count -> Table::ToString
  {
    Database serial;
    SessionRegistry serial_registry(&serial);
    Session session(&serial_registry);
    ASSERT_TRUE(session.Execute("CREATE TABLE t (a TEXT);").ok());
    int next = 0;
    for (int k = 0; k <= kBatches; ++k) {
      if (k > 0) {
        std::string script = "BEGIN;";
        for (int i = 0; i < 3; ++i) {
          script += "INSERT INTO t VALUES ('" +
                    std::to_string(next++) + "');";
        }
        script += "COMMIT;";
        ASSERT_TRUE(session.Execute(script).ok());
      }
      ResultSet rs = session.Execute("SELECT * FROM t;");
      ASSERT_TRUE(rs.ok());
      oracle[3 * k] = rs.statements[0].rows->ToString();
    }
  }

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::atomic<int> reads{0};
  const int readers =
      std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
  std::vector<std::thread> pool;
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&] {
      Session session(&registry);
      while (!done.load(std::memory_order_relaxed)) {
        ResultSet rs =
            session.Execute("SELECT * FROM t; SELECT * FROM t;");
        if (!rs.ok() || rs.statements.size() != 2) {
          ++violations;
          continue;
        }
        const std::string first = rs.statements[0].rows->ToString();
        auto it = oracle.find(rs.statements[0].rows->num_rows());
        // Committed prefix, and one epoch across the whole script.
        if (it == oracle.end() || it->second != first ||
            rs.statements[1].rows->ToString() != first) {
          ++violations;
        }
        ++reads;
      }
    });
  }
  // An aborting writer racing the committing one: its junk must never
  // be observed. Auto-rollback (no COMMIT) aborts each script.
  std::thread aborter([&] {
    Session session(&registry);
    while (!done.load(std::memory_order_relaxed)) {
      ResultSet rs =
          session.Execute("BEGIN; INSERT INTO t VALUES ('junk');");
      if (rs.ok()) ++violations;  // must report the forced rollback
    }
  });

  {
    Session writer(&registry);
    int next = 0;
    for (int k = 0; k < kBatches; ++k) {
      std::string script = "BEGIN;";
      for (int i = 0; i < 3; ++i) {
        script +=
            "INSERT INTO t VALUES ('" + std::to_string(next++) + "');";
      }
      script += "COMMIT;";
      ResultSet rs = writer.Execute(script);
      ASSERT_TRUE(rs.ok()) << rs.error.ToString();
    }
  }
  // On a loaded 1-core machine the writer can finish before any
  // reader is scheduled at all; hold the door until one read lands.
  while (reads.load() == 0 && violations.load() == 0) {
    std::this_thread::yield();
  }
  done = true;
  for (std::thread& t : pool) t.join();
  aborter.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(reads.load(), 0);

  Session check(&registry);
  ResultSet final_rows = check.Execute("SELECT * FROM t;");
  ASSERT_TRUE(final_rows.ok());
  EXPECT_EQ(final_rows.statements[0].rows->ToString(),
            oracle[3 * kBatches]);
}

}  // namespace
}  // namespace sqlnf
