// The parallel-execution utility: every task runs exactly once, chunked
// helpers cover their ranges, and ordered reduction is deterministic
// for any thread count.

#include "sqlnf/util/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sqlnf {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), std::max(1, threads));
    std::vector<std::atomic<int>> hits(100);
    pool.RunTasks(100, [&](int i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<int> sum{0};
    pool.RunTasks(batch, [&](int i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), batch * (batch - 1) / 2);
  }
}

TEST(ThreadPoolTest, ZeroAndOneTasks) {
  ThreadPool pool(4);
  int calls = 0;
  pool.RunTasks(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.RunTasks(1, [&](int) { ++calls; });  // runs inline on the caller
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    const int64_t n = 12345;
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(pool, 0, n, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelReduceTest, OrderedFoldIsDeterministic) {
  // Concatenation is non-commutative: the fold must visit chunks in
  // order regardless of which thread finished first.
  const int64_t n = 5000;
  std::vector<int> expected(n);
  std::iota(expected.begin(), expected.end(), 0);
  for (int threads : {1, 2, 7}) {
    ThreadPool pool(threads);
    auto got = ParallelReduce<std::vector<int>>(
        pool, 0, n, {},
        [](int64_t b, int64_t e) {
          std::vector<int> chunk;
          for (int64_t i = b; i < e; ++i) chunk.push_back(i);
          return chunk;
        },
        [](std::vector<int> acc, std::vector<int> part) {
          acc.insert(acc.end(), part.begin(), part.end());
          return acc;
        });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParallelReduceTest, SumMatchesSerial) {
  ThreadPool pool(4);
  const int64_t n = 100000;
  auto sum = ParallelReduce<int64_t>(
      pool, 0, n, 0,
      [](int64_t b, int64_t e) {
        int64_t s = 0;
        for (int64_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

}  // namespace
}  // namespace sqlnf
