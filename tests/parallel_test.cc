// The parallel-execution utility: every task runs exactly once, chunked
// helpers cover their ranges, and ordered reduction is deterministic
// for any thread count.

#include "sqlnf/util/parallel.h"

#include <atomic>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace sqlnf {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), std::max(1, threads));
    std::vector<std::atomic<int>> hits(100);
    pool.RunTasks(100, [&](int i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<int> sum{0};
    pool.RunTasks(batch, [&](int i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), batch * (batch - 1) / 2);
  }
}

TEST(ThreadPoolTest, ZeroAndOneTasks) {
  ThreadPool pool(4);
  int calls = 0;
  pool.RunTasks(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.RunTasks(1, [&](int) { ++calls; });  // runs inline on the caller
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    const int64_t n = 12345;
    std::vector<std::atomic<int>> hits(n);
    ParallelFor(pool, 0, n, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelReduceTest, OrderedFoldIsDeterministic) {
  // Concatenation is non-commutative: the fold must visit chunks in
  // order regardless of which thread finished first.
  const int64_t n = 5000;
  std::vector<int> expected(n);
  std::iota(expected.begin(), expected.end(), 0);
  for (int threads : {1, 2, 7}) {
    ThreadPool pool(threads);
    auto got = ParallelReduce<std::vector<int>>(
        pool, 0, n, {},
        [](int64_t b, int64_t e) {
          std::vector<int> chunk;
          for (int64_t i = b; i < e; ++i) chunk.push_back(i);
          return chunk;
        },
        [](std::vector<int> acc, std::vector<int> part) {
          acc.insert(acc.end(), part.begin(), part.end());
          return acc;
        });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParallelEmitTest, CompactionMatchesSerialAtAnyThreadCount) {
  // Keep every multiple of 3 from [0, n). The serial (pool == nullptr)
  // run is the reference; every pool size must emit the exact same
  // vector — same values, same order — and report the same total.
  const int64_t n = 9871;
  auto emit = [&](ThreadPool* pool) {
    std::vector<int64_t> out;
    const int64_t total = ParallelEmit(
        pool, 0, n,
        [](int64_t b, int64_t e) {
          int64_t c = 0;
          for (int64_t i = b; i < e; ++i) {
            if (i % 3 == 0) ++c;
          }
          return c;
        },
        [&](int64_t t) { out.resize(t); },
        [&](int64_t b, int64_t e, int64_t offset) {
          for (int64_t i = b; i < e; ++i) {
            if (i % 3 == 0) out[offset++] = i;
          }
        });
    EXPECT_EQ(total, static_cast<int64_t>(out.size()));
    return out;
  };
  const std::vector<int64_t> expected = emit(nullptr);
  EXPECT_EQ(expected.size(), static_cast<size_t>((n + 2) / 3));
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(emit(&pool), expected) << "threads=" << threads;
  }
}

TEST(ParallelEmitTest, EmptyRangeStillReserves) {
  ThreadPool pool(4);
  bool reserved = false;
  int64_t reserved_total = -1;
  const int64_t total = ParallelEmit(
      &pool, 5, 5,
      [](int64_t, int64_t) { return int64_t{99}; },
      [&](int64_t t) {
        reserved = true;
        reserved_total = t;
      },
      [](int64_t, int64_t, int64_t) { FAIL() << "fill on empty range"; });
  EXPECT_EQ(total, 0);
  EXPECT_TRUE(reserved);
  EXPECT_EQ(reserved_total, 0);
}

TEST(ParallelEmitTest, VariableChunkCountsGetContiguousWindows) {
  // Chunk outputs of wildly different sizes (row i emits i % 5 items)
  // must still land in one gap-free output: slot k holds the k-th item
  // of the serial emission order.
  const int64_t n = 4096;
  std::vector<std::pair<int64_t, int>> expected;
  for (int64_t i = 0; i < n; ++i) {
    for (int r = 0; r < i % 5; ++r) expected.emplace_back(i, r);
  }
  for (int threads : {2, 5}) {
    ThreadPool pool(threads);
    std::vector<std::pair<int64_t, int>> out;
    ParallelEmit(
        &pool, 0, n,
        [](int64_t b, int64_t e) {
          int64_t c = 0;
          for (int64_t i = b; i < e; ++i) c += i % 5;
          return c;
        },
        [&](int64_t t) { out.resize(t); },
        [&](int64_t b, int64_t e, int64_t offset) {
          for (int64_t i = b; i < e; ++i) {
            for (int r = 0; r < i % 5; ++r) out[offset++] = {i, r};
          }
        });
    EXPECT_EQ(out, expected) << "threads=" << threads;
  }
}

TEST(ParallelReduceTest, SumMatchesSerial) {
  ThreadPool pool(4);
  const int64_t n = 100000;
  auto sum = ParallelReduce<int64_t>(
      pool, 0, n, 0,
      [](int64_t b, int64_t e) {
        int64_t s = 0;
        for (int64_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

}  // namespace
}  // namespace sqlnf
