// BCNF and SQL-BCNF (Definitions 5 and 12, Theorems 6, 7, 14),
// exercised on the paper's examples, plus representation-invariance.

#include "sqlnf/normalform/normal_forms.h"

#include <gtest/gtest.h>

#include "sqlnf/reasoning/cover.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Fd;
using testing::RandomSchema;
using testing::RandomSigma;
using testing::Schema;
using testing::Sigma;

TEST(BcnfTest, PaperPurchaseNotInBcnf) {
  // PURCHASE = oicp, T_S = oip, Σ = {ic ->w p}: not in BCNF because
  // c<ic> is not implied (Section 5.1).
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "ic ->w p")};
  EXPECT_FALSE(IsBcnf(design));
  auto violation = FindBcnfViolation(design);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->fd, Fd(schema, "ic ->w p"));
  EXPECT_TRUE(violation->missing_key.is_certain());
  EXPECT_NE(violation->ToString(schema).find("c<{i,c}>"),
            std::string::npos);
}

TEST(BcnfTest, PaperPurchaseVariantInBcnf) {
  // With T_S = ∅ and Σ = {oic ->w p, c<oicp>}, the schema IS in BCNF:
  // c<oic> is implied because p ∈ (oic)*c.
  TableSchema schema = Schema("oicp", "");
  SchemaDesign design{schema, Sigma(schema, "oic ->w p; c<oicp>")};
  EXPECT_TRUE(IsBcnf(design));
  EXPECT_TRUE(IsRfnf(design));
}

TEST(BcnfTest, PossibleFdNeedsPossibleKey) {
  TableSchema schema = Schema("abc", "abc");
  EXPECT_FALSE(IsBcnf({schema, Sigma(schema, "a ->s b")}));
  EXPECT_TRUE(IsBcnf({schema, Sigma(schema, "a ->s b; p<a>")}));
}

TEST(BcnfTest, TrivialFdsDoNotViolate) {
  TableSchema schema = Schema("abc", "a");
  EXPECT_TRUE(IsBcnf({schema, Sigma(schema, "ab ->s a")}));
  EXPECT_TRUE(IsBcnf({schema, Sigma(schema, "ab ->w a")}));  // a ∈ T_S
  // ab ->w b is non-trivial (b nullable) and needs c<ab>.
  EXPECT_FALSE(IsBcnf({schema, Sigma(schema, "ab ->w b")}));
}

TEST(BcnfTest, ClassicalSpecialCase) {
  // All NOT NULL + an implied key: reduces to classical BCNF.
  TableSchema schema = Schema("abc", "abc");
  SchemaDesign good{schema, Sigma(schema, "a ->s bc; c<a>")};
  EXPECT_TRUE(IsIdealizedRelationalCase(good));
  EXPECT_TRUE(IsBcnf(good));
  SchemaDesign bad{schema, Sigma(schema, "a ->s b; c<abc>")};
  EXPECT_TRUE(IsIdealizedRelationalCase(bad));
  EXPECT_FALSE(IsBcnf(bad));  // a determines b but is no key
}

TEST(BcnfTest, InvariantUnderEquivalentRepresentations) {
  TableSchema schema = Schema("abc", "abc");
  ConstraintSet s1 = Sigma(schema, "a ->s bc; c<a>");
  ConstraintSet s2 = Sigma(schema, "a ->s b; a ->s c; c<a>; c<ab>");
  ASSERT_TRUE(EquivalentSigmas(schema, s1, s2));
  EXPECT_EQ(IsBcnf({schema, s1}), IsBcnf({schema, s2}));
  // And under cover reduction.
  ConstraintSet reduced = ReducedCover(schema, s2);
  EXPECT_EQ(IsBcnf({schema, s2}), IsBcnf({schema, reduced}));
}

TEST(SqlBcnfTest, PaperExample3) {
  // (oicp, oip, {oic ->w cp}) is not in SQL-BCNF; both output schemata
  // of Algorithm 3 are (Section 6.2).
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "oic ->w cp")};
  ASSERT_OK_AND_ASSIGN(bool in_nf, IsSqlBcnf(design));
  EXPECT_FALSE(in_nf);

  TableSchema t1 = Schema("oic", "oi");
  ASSERT_OK_AND_ASSIGN(bool nf1,
                       IsSqlBcnf({t1, Sigma(t1, "oic ->w c")}));
  EXPECT_TRUE(nf1);  // internal c-FDs are exempt

  TableSchema t2 = Schema("oicp", "oip");
  ASSERT_OK_AND_ASSIGN(bool nf2, IsSqlBcnf({t2, Sigma(t2, "c<oic>")}));
  EXPECT_TRUE(nf2);
}

TEST(SqlBcnfTest, ExternalFdNeedsCertainKey) {
  TableSchema schema = Schema("abc", "");
  ASSERT_OK_AND_ASSIGN(bool without,
                       IsSqlBcnf({schema, Sigma(schema, "a ->w ab")}));
  EXPECT_FALSE(without);
  ASSERT_OK_AND_ASSIGN(
      bool with, IsSqlBcnf({schema, Sigma(schema, "a ->w ab; c<a>")}));
  EXPECT_TRUE(with);
}

TEST(SqlBcnfTest, RejectsPossibleConstraints) {
  TableSchema schema = Schema("ab", "a");
  EXPECT_FALSE(IsSqlBcnf({schema, Sigma(schema, "a ->s b")}).ok());
  EXPECT_FALSE(IsSqlBcnf({schema, Sigma(schema, "p<a>")}).ok());
}

TEST(SqlBcnfTest, VrnfAliases) {
  TableSchema schema = Schema("oicp", "oip");
  ASSERT_OK_AND_ASSIGN(bool vrnf,
                       IsVrnf({schema, Sigma(schema, "oic ->w cp")}));
  EXPECT_FALSE(vrnf);
}

TEST(SqlBcnfTest, BcnfImpliesSqlBcnfOnCertainInputs) {
  // RFNF ⊆ VRNF: redundancy-freedom is the stronger requirement, so a
  // BCNF schema (certain constraints only) is always in SQL-BCNF.
  Rng rng(77);
  int checked = 0;
  for (int trial = 0; trial < 300; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 2, 1);
    // Force certain-only constraint sets.
    for (auto& fd : *sigma.mutable_fds()) fd.mode = Mode::kCertain;
    for (auto& key : *sigma.mutable_keys()) key.mode = Mode::kCertain;
    SchemaDesign design{schema, sigma};
    if (!IsBcnf(design)) continue;
    ++checked;
    ASSERT_OK_AND_ASSIGN(bool sql_bcnf, IsSqlBcnf(design));
    EXPECT_TRUE(sql_bcnf) << design.ToString();
  }
  EXPECT_GT(checked, 10);
}

}  // namespace
}  // namespace sqlnf
