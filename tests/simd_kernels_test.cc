// Unit tests for the explicit SIMD kernel layer (core/simd_kernels.h).
//
// The load-bearing property is the BIT-IDENTITY CONTRACT: every kernel
// must produce byte-for-byte the output of the scalar reference at
// every dispatch level the CPU supports. Each test sweeps
//
//   * every available Level (scalar, simd128, avx2 when detected),
//   * lengths around every vector-width boundary (0, 1, 7, 8, 9, 15,
//     16, 17, 31, 32, 33, ...) so short and misaligned tails are hit,
//   * unaligned base pointers (the engine hands kernels interior
//     block offsets, not allocation starts),
//   * both Store modes (assign / AND) for the predicate kernels,
//
// against randomized inputs seeded deterministically, plus directed
// edge cases: sentinel codes (kNullCode / kMissingCode), d = 0
// (all-⊥ column: every lookup clamps to the sentinel slot), d = 1
// (dictionary of size 1), empty inputs, and the CompressStore
// no-overstore guarantee ParallelEmit depends on.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/simd_kernels.h"
#include "sqlnf/util/fnv.h"
#include "sqlnf/util/rng.h"

namespace sqlnf {
namespace simd {
namespace {

// Every level the CPU supports, scalar first. ClampToDetected inside
// the dispatchers would make higher levels silently legal anyway, but
// sweeping only real levels keeps "ran at avx2" honest in test names.
std::vector<Level> AvailableLevels() {
  std::vector<Level> levels{Level::kScalar};
  if (DetectedLevel() >= Level::kSimd128) levels.push_back(Level::kSimd128);
  if (DetectedLevel() >= Level::kAvx2) levels.push_back(Level::kAvx2);
  return levels;
}

// Lengths straddling the 8-lane and 16/32-byte boundaries, plus block
// sizes the engine actually uses.
const int kLengths[] = {0,  1,  2,  3,  7,   8,   9,   15,  16, 17,
                        31, 32, 33, 63, 100, 255, 511, 513, 2048};

// Offsets into an over-allocated buffer: kernels must accept interior
// (unaligned) pointers.
const int kOffsets[] = {0, 1, 3};

std::vector<uint32_t> RandomCodes(Rng* rng, int n, uint32_t d) {
  std::vector<uint32_t> codes(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double roll = rng->NextDouble();
    if (roll < 0.10) {
      codes[static_cast<size_t>(i)] = EncodedTable::kNullCode;
    } else if (roll < 0.15) {
      codes[static_cast<size_t>(i)] = EncodedTable::kMissingCode;
    } else if (d > 0) {
      codes[static_cast<size_t>(i)] =
          static_cast<uint32_t>(rng->Uniform(0, d - 1));
    } else {
      codes[static_cast<size_t>(i)] = EncodedTable::kNullCode;
    }
  }
  return codes;
}

std::vector<uint8_t> RandomBytes(Rng* rng, int n) {
  std::vector<uint8_t> bytes(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    bytes[static_cast<size_t>(i)] = rng->Chance(0.4) ? 1 : 0;
  }
  return bytes;
}

// Runs `body(level, n, offset, store)` over the full sweep grid.
template <typename Body>
void SweepMaskKernel(Body&& body) {
  for (Level level : AvailableLevels()) {
    for (int n : kLengths) {
      for (int offset : kOffsets) {
        body(level, n, offset, Store::kAssign);
        body(level, n, offset, Store::kAnd);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, LevelNamesRoundTrip) {
  for (Level level :
       {Level::kScalar, Level::kSimd128, Level::kAvx2}) {
    Level parsed = Level::kAvx2;
    ASSERT_TRUE(ParseLevel(LevelName(level), &parsed)) << LevelName(level);
    EXPECT_EQ(parsed, level);
  }
  Level parsed = Level::kScalar;
  EXPECT_TRUE(ParseLevel("sse2", &parsed));
  EXPECT_EQ(parsed, Level::kSimd128);
  EXPECT_TRUE(ParseLevel("neon", &parsed));
  EXPECT_EQ(parsed, Level::kSimd128);
  EXPECT_FALSE(ParseLevel("avx512", &parsed));
  EXPECT_FALSE(ParseLevel("", &parsed));
  EXPECT_FALSE(ParseLevel(nullptr, &parsed));
}

TEST(SimdDispatchTest, TestOverridePinsActiveLevel) {
  ClearLevelForTesting();
  const Level ambient = ActiveLevel();
  EXPECT_LE(ambient, DetectedLevel());
  SetLevelForTesting(Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  // Requesting above the CPU clamps instead of faulting.
  SetLevelForTesting(Level::kAvx2);
  EXPECT_LE(ActiveLevel(), DetectedLevel());
  ClearLevelForTesting();
  EXPECT_EQ(ActiveLevel(), ambient);
}

// ---------------------------------------------------------------------------
// Predicate mask kernels vs the scalar reference
// ---------------------------------------------------------------------------

TEST(SimdKernelTest, EqNeCodeMatchScalar) {
  Rng rng(20260801);
  SweepMaskKernel([&](Level level, int n, int offset, Store store) {
    const uint32_t d = 7;
    std::vector<uint32_t> codes = RandomCodes(&rng, n + offset, d);
    std::vector<uint8_t> init = RandomBytes(&rng, n);
    for (uint32_t want :
         {uint32_t{0}, uint32_t{3}, EncodedTable::kNullCode,
          EncodedTable::kMissingCode}) {
      std::vector<uint8_t> got = init, ref = init;
      EqCode(level, codes.data() + offset, n, want, store, got.data());
      EqCode(Level::kScalar, codes.data() + offset, n, want, store,
             ref.data());
      ASSERT_EQ(got, ref) << "Eq level=" << LevelName(level) << " n=" << n
                          << " off=" << offset;
      got = init;
      ref = init;
      NeCode(level, codes.data() + offset, n, want, store, got.data());
      NeCode(Level::kScalar, codes.data() + offset, n, want, store,
             ref.data());
      ASSERT_EQ(got, ref) << "Ne level=" << LevelName(level) << " n=" << n
                          << " off=" << offset;
    }
  });
}

TEST(SimdKernelTest, CodeIntervalMatchesScalar) {
  Rng rng(20260802);
  SweepMaskKernel([&](Level level, int n, int offset, Store store) {
    const uint32_t d = 11;
    std::vector<uint32_t> codes = RandomCodes(&rng, n + offset, d);
    std::vector<uint8_t> init = RandomBytes(&rng, n);
    // Spans crossing 0, the full domain, and the unsigned wrap edge.
    const struct {
      uint32_t lo, span;
    } cases[] = {{0, 0}, {0, 1}, {0, d}, {3, 4}, {10, 0xFFFFFFF0u}};
    for (const auto& c : cases) {
      std::vector<uint8_t> got = init, ref = init;
      CodeInterval(level, codes.data() + offset, n, c.lo, c.span, store,
                   got.data());
      CodeInterval(Level::kScalar, codes.data() + offset, n, c.lo, c.span,
                   store, ref.data());
      ASSERT_EQ(got, ref) << "level=" << LevelName(level) << " n=" << n
                          << " off=" << offset << " lo=" << c.lo
                          << " span=" << c.span;
    }
  });
}

TEST(SimdKernelTest, RankIntervalMatchesScalar) {
  Rng rng(20260803);
  // d = 0 (all-⊥ column, rank is just the sentinel slot), d = 1
  // (dictionary of size 1), and a normal dictionary.
  for (uint32_t d : {uint32_t{0}, uint32_t{1}, uint32_t{13}}) {
    // A permutation-ish rank table with the kNoRank sentinel at slot d.
    std::vector<uint32_t> rank(d + 1);
    for (uint32_t i = 0; i < d; ++i) rank[i] = (i * 7 + 3) % d;
    rank[d] = 0xFFFFFFFFu;  // kNoRank: outside every interval
    SweepMaskKernel([&](Level level, int n, int offset, Store store) {
      std::vector<uint32_t> codes = RandomCodes(&rng, n + offset, d);
      std::vector<uint8_t> init = RandomBytes(&rng, n);
      const struct {
        uint32_t lo, span;
      } cases[] = {{0, 0}, {0, d}, {1, 2}, {0, 0xFFFFFFFFu}};
      for (const auto& c : cases) {
        std::vector<uint8_t> got = init, ref = init;
        RankInterval(level, codes.data() + offset, n, rank.data(), d, c.lo,
                     c.span, store, got.data());
        RankInterval(Level::kScalar, codes.data() + offset, n, rank.data(),
                     d, c.lo, c.span, store, ref.data());
        ASSERT_EQ(got, ref) << "level=" << LevelName(level) << " d=" << d
                            << " n=" << n << " off=" << offset;
      }
    });
  }
}

TEST(SimdKernelTest, ByteTableMatchesScalar) {
  Rng rng(20260804);
  for (uint32_t d : {uint32_t{0}, uint32_t{1}, uint32_t{9}}) {
    std::vector<uint8_t> table(d + 1 + kByteTablePad, 0);
    for (uint32_t i = 0; i <= d; ++i) {
      table[i] = rng.Chance(0.5) ? 1 : 0;
    }
    SweepMaskKernel([&](Level level, int n, int offset, Store store) {
      std::vector<uint32_t> codes = RandomCodes(&rng, n + offset, d);
      std::vector<uint8_t> init = RandomBytes(&rng, n);
      std::vector<uint8_t> got = init, ref = init;
      ByteTable(level, codes.data() + offset, n, table.data(), d, store,
                got.data());
      ByteTable(Level::kScalar, codes.data() + offset, n, table.data(), d,
                store, ref.data());
      ASSERT_EQ(got, ref) << "level=" << LevelName(level) << " d=" << d
                          << " n=" << n << " off=" << offset;
    });
  }
}

TEST(SimdKernelTest, OrBytesMatchesScalar) {
  Rng rng(20260805);
  for (Level level : AvailableLevels()) {
    for (int n : kLengths) {
      for (int offset : kOffsets) {
        std::vector<uint8_t> src = RandomBytes(&rng, n + offset);
        std::vector<uint8_t> dst = RandomBytes(&rng, n);
        std::vector<uint8_t> ref = dst;
        OrBytes(level, src.data() + offset, n, dst.data());
        OrBytes(Level::kScalar, src.data() + offset, n, ref.data());
        ASSERT_EQ(dst, ref) << "level=" << LevelName(level) << " n=" << n;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Emission kernels
// ---------------------------------------------------------------------------

TEST(SimdKernelTest, CountBytesMatchesScalar) {
  Rng rng(20260806);
  for (Level level : AvailableLevels()) {
    for (int n : kLengths) {
      for (int offset : kOffsets) {
        std::vector<uint8_t> bytes = RandomBytes(&rng, n + offset);
        EXPECT_EQ(CountBytes(level, bytes.data() + offset, n),
                  CountBytes(Level::kScalar, bytes.data() + offset, n))
            << "level=" << LevelName(level) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, CompressStoreMatchesScalarAndNeverOverstores) {
  Rng rng(20260807);
  constexpr int kCanary = -12345;
  for (Level level : AvailableLevels()) {
    for (int n : kLengths) {
      for (int offset : kOffsets) {
        std::vector<uint8_t> match = RandomBytes(&rng, n + offset);
        const int expect = static_cast<int>(
            CountBytes(Level::kScalar, match.data() + offset, n));
        // Exactly-sized window plus canaries: ParallelEmit hands each
        // chunk a window of exactly its count, so writing even one id
        // past `expect` corrupts the neighbouring chunk.
        std::vector<int> got(static_cast<size_t>(expect) + 4, kCanary);
        std::vector<int> ref(static_cast<size_t>(expect) + 4, kCanary);
        const int base = 1000;
        EXPECT_EQ(expect, CompressStore(level, match.data() + offset, n,
                                        base, got.data()));
        EXPECT_EQ(expect, CompressStore(Level::kScalar, match.data() + offset,
                                        n, base, ref.data()));
        ASSERT_EQ(got, ref) << "level=" << LevelName(level) << " n=" << n
                            << " off=" << offset;
        for (int k = 0; k < 4; ++k) {
          ASSERT_EQ(got[static_cast<size_t>(expect) + k], kCanary)
              << "overstore at level=" << LevelName(level) << " n=" << n;
        }
        // Emitted ids are base-relative and strictly ascending.
        for (int k = 1; k < expect; ++k) {
          ASSERT_LT(got[k - 1], got[k]);
        }
        if (expect > 0) {
          ASSERT_GE(got[0], base);
          ASSERT_LT(got[expect - 1], base + n);
        }
      }
    }
  }
}

// All-zero and all-one match vectors exercise the skip-empty-word fast
// path and the full-vector permute respectively.
TEST(SimdKernelTest, CompressStoreDenseAndEmpty) {
  for (Level level : AvailableLevels()) {
    for (int n : {0, 1, 8, 17, 2048}) {
      std::vector<uint8_t> zeros(static_cast<size_t>(n), 0);
      std::vector<uint8_t> ones(static_cast<size_t>(n), 1);
      std::vector<int> out(static_cast<size_t>(n) + 1, -1);
      EXPECT_EQ(0, CompressStore(level, zeros.data(), n, 0, out.data()));
      EXPECT_EQ(n, CompressStore(level, ones.data(), n, 5, out.data()));
      for (int k = 0; k < n; ++k) ASSERT_EQ(out[k], 5 + k);
    }
  }
}

// ---------------------------------------------------------------------------
// Hash kernels
// ---------------------------------------------------------------------------

TEST(SimdKernelTest, FnvMixCodesMatchesFnvMix) {
  Rng rng(20260808);
  for (Level level : AvailableLevels()) {
    for (int n : kLengths) {
      std::vector<uint32_t> codes = RandomCodes(&rng, n, 1000);
      std::vector<uint64_t> h(static_cast<size_t>(n));
      std::vector<uint64_t> ref(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        h[static_cast<size_t>(i)] = ref[static_cast<size_t>(i)] =
            kFnv64OffsetBasis + static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ull;
      }
      FnvMixCodes(level, codes.data(), n, h.data());
      for (int i = 0; i < n; ++i) {
        ref[static_cast<size_t>(i)] =
            FnvMix(ref[static_cast<size_t>(i)], codes[static_cast<size_t>(i)]);
      }
      ASSERT_EQ(h, ref) << "level=" << LevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdKernelTest, FoldMaskMatchesScalar) {
  Rng rng(20260809);
  for (Level level : AvailableLevels()) {
    for (int n : kLengths) {
      std::vector<uint64_t> h(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        h[static_cast<size_t>(i)] =
            (static_cast<uint64_t>(rng.Uniform(0, 1 << 30)) << 34) ^
            static_cast<uint64_t>(rng.Uniform(0, 1 << 30));
      }
      for (uint64_t mask : {uint64_t{0}, uint64_t{1}, uint64_t{1023},
                            uint64_t{(1u << 20) - 1}}) {
        std::vector<uint32_t> got(static_cast<size_t>(n) + 1, 0xAA55AA55u);
        std::vector<uint32_t> ref = got;
        FoldMask(level, h.data(), n, mask, got.data());
        FoldMask(Level::kScalar, h.data(), n, mask, ref.data());
        ASSERT_EQ(got, ref) << "level=" << LevelName(level) << " n=" << n
                            << " mask=" << mask;
      }
    }
  }
}

TEST(SimdKernelTest, GatherCodesMatchesScalar) {
  Rng rng(20260810);
  std::vector<uint32_t> codes(4096);
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<uint32_t>(rng.Uniform(0, 1 << 20));
  }
  for (Level level : AvailableLevels()) {
    for (int n : kLengths) {
      std::vector<int> rows(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        rows[static_cast<size_t>(i)] =
            static_cast<int>(rng.Uniform(0, 4095));
      }
      std::vector<uint32_t> got(static_cast<size_t>(n) + 1, 7);
      std::vector<uint32_t> ref = got;
      GatherCodes(level, codes.data(), rows.data(), n, got.data());
      GatherCodes(Level::kScalar, codes.data(), rows.data(), n, ref.data());
      ASSERT_EQ(got, ref) << "level=" << LevelName(level) << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace simd
}  // namespace sqlnf
