// Cross-module edge cases: extreme schema sizes, empty/singleton
// instances, all-⊥ columns, empty constraint sets, and other boundary
// behaviour a downstream user will eventually hit.

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/engine/validate.h"
#include "sqlnf/normalform/normal_forms.h"
#include "sqlnf/normalform/redundancy.h"
#include "sqlnf/reasoning/implication.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Fd;
using testing::Key;
using testing::Rows;
using testing::Schema;
using testing::Sigma;

TEST(EdgeCaseTest, SixtyFourAttributeSchema) {
  std::vector<std::string> names;
  for (int i = 0; i < 64; ++i) names.push_back("a" + std::to_string(i));
  ASSERT_OK_AND_ASSIGN(TableSchema schema,
                       TableSchema::Make("wide", names, {"a0", "a63"}));
  EXPECT_EQ(schema.num_attributes(), 64);
  EXPECT_EQ(schema.all().size(), 64);

  // Implication on the full width.
  ConstraintSet sigma;
  sigma.AddFd(FunctionalDependency::Certain({0}, schema.all()));
  Implication imp(schema, sigma);
  EXPECT_TRUE(
      imp.Implies(FunctionalDependency::Certain({0}, {63})));
  EXPECT_TRUE(imp.CClosure({0}) == schema.all());
}

TEST(EdgeCaseTest, EmptyInstanceSatisfiesEverything) {
  TableSchema schema = Schema("abc", "a");
  Table empty(schema);
  EXPECT_TRUE(Satisfies(empty, Fd(schema, "a ->w bc")));
  EXPECT_TRUE(Satisfies(empty, Key(schema, "c<a>")));
  EXPECT_TRUE(SatisfiesAll(empty, Sigma(schema, "a ->s b; p<ab>")));
  EXPECT_TRUE(IsRedundancyFreeInstance(empty, ConstraintSet()));
  EXPECT_TRUE(ValidateAll(empty, Sigma(schema, "a ->w b; c<a>")));
}

TEST(EdgeCaseTest, SingleRowInstance) {
  TableSchema schema = Schema("abc", "a");
  Table one = Rows(schema, {"1_2"});
  EXPECT_TRUE(Satisfies(one, Fd(schema, "a ->w bc")));
  EXPECT_TRUE(Satisfies(one, Key(schema, "c<{}>")));  // one row only
  // A single ⊥ is never redundant under FDs alone (it can become any
  // value without creating a second tuple to disagree with).
  EXPECT_FALSE(IsRedundantPosition(one, Sigma(schema, "a ->w b"),
                                   Position{0, 1}));
}

TEST(EdgeCaseTest, EmptyKeyAttrsMeansAtMostOneRow) {
  TableSchema schema = Schema("ab");
  KeyConstraint empty_p = Key(schema, "p<{}>");
  KeyConstraint empty_c = Key(schema, "c<{}>");
  Table one = Rows(schema, {"12"});
  Table two = Rows(schema, {"12", "34"});
  EXPECT_TRUE(Satisfies(one, empty_p));
  EXPECT_TRUE(Satisfies(one, empty_c));
  EXPECT_FALSE(Satisfies(two, empty_p));  // any two rows agree on ∅
  EXPECT_FALSE(Satisfies(two, empty_c));
  EXPECT_EQ(Satisfies(two, empty_p), ValidateKey(two, empty_p));
  EXPECT_EQ(Satisfies(two, empty_c), ValidateKey(two, empty_c));
}

TEST(EdgeCaseTest, AllNullColumn) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"_1", "_2", "_1"});
  // Everything weakly agrees on the ⊥ column.
  EXPECT_FALSE(Satisfies(t, Fd(schema, "a ->w b")));
  EXPECT_TRUE(Satisfies(t, Fd(schema, "a ->s b")));  // never strongly
  EXPECT_EQ(ValidateFd(t, Fd(schema, "a ->w b")),
            Satisfies(t, Fd(schema, "a ->w b")));
  // Discovery handles it: column 0 is not null-free and is no key.
  ASSERT_OK_AND_ASSIGN(DiscoveryResult mined, DiscoverConstraints(t));
  EXPECT_FALSE(mined.null_free_columns.Contains(0));
}

TEST(EdgeCaseTest, DuplicateOnlyTable) {
  TableSchema schema = Schema("ab", "ab");
  Table t = Rows(schema, {"11", "11", "11"});
  ASSERT_OK_AND_ASSIGN(DiscoveryResult mined, DiscoverConstraints(t));
  // No keys can hold; FDs trivially hold for every LHS (minimal: ∅).
  EXPECT_TRUE(mined.p_keys.empty());
  EXPECT_TRUE(mined.c_keys.empty());
  bool empty_lhs_found = false;
  for (const auto& fd : mined.classical_fds) {
    if (fd.lhs.empty()) empty_lhs_found = true;
  }
  EXPECT_TRUE(empty_lhs_found);
}

TEST(EdgeCaseTest, ImplicationWithEmptySigma) {
  TableSchema schema = Schema("abc", "b");
  Implication imp(schema, ConstraintSet());
  EXPECT_TRUE(imp.Implies(Fd(schema, "ab ->s a")));
  EXPECT_TRUE(imp.Implies(Fd(schema, "ab ->w b")));
  EXPECT_FALSE(imp.Implies(Fd(schema, "ab ->w a")));  // a nullable
  EXPECT_FALSE(imp.Implies(Key(schema, "p<abc>")));
  EXPECT_FALSE(imp.Implies(Key(schema, "c<abc>")));
}

TEST(EdgeCaseTest, VrnfOnSingleAttributeSchema) {
  TableSchema schema = Schema("a", "");
  SchemaDesign design{schema, ConstraintSet()};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  EXPECT_EQ(result.decomposition.components.size(), 1u);
  EXPECT_TRUE(result.steps.empty());
}

TEST(EdgeCaseTest, VrnfWithWholeSchemaKey) {
  TableSchema schema = Schema("abcd", "abcd");
  SchemaDesign design{schema, Sigma(schema, "c<a>")};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  // a is a key: no FD can violate (every LHS ⊇ nothing...); schema
  // stays whole.
  EXPECT_EQ(result.decomposition.components.size(), 1u);
}

TEST(EdgeCaseTest, DecomposeByFdCoveringWholeSchema) {
  // lhs ∪ rhs = T: the "rest" component degenerates to the LHS.
  TableSchema schema = Schema("abc");
  FunctionalDependency fd = Fd(schema, "a ->w bc");
  Decomposition d = DecomposeByFd(schema, fd);
  EXPECT_EQ(d.components[0].attrs, AttributeSet{0});
  Table t = Rows(schema, {"1xy", "1xy", "2pq"});
  ASSERT_TRUE(Satisfies(t, fd));
  ASSERT_OK_AND_ASSIGN(bool lossless, IsLosslessForInstance(t, d));
  EXPECT_TRUE(lossless);
}

TEST(EdgeCaseTest, ClosureEngineIsReusable) {
  TableSchema schema = Schema("abcd", "ab");
  ConstraintSet sigma = Sigma(schema, "a ->w b; b ->s c");
  ClosureEngine engine(sigma, schema.nfs());
  // Repeated and interleaved queries must not interfere.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(engine.PClosure({0}), (AttributeSet{0, 1, 2}));
    EXPECT_EQ(engine.CClosure({3}), AttributeSet{});
    EXPECT_EQ(engine.CClosure({0}), (AttributeSet{0, 1, 2}));
  }
}

TEST(EdgeCaseTest, RedundancyWithKeysOnly) {
  // Keys never force a value, so no position is redundant.
  TableSchema schema = Schema("ab", "ab");
  Table t = Rows(schema, {"11", "22"});
  ConstraintSet sigma = Sigma(schema, "c<a>");
  EXPECT_TRUE(IsRedundancyFreeInstance(t, sigma));
}

TEST(EdgeCaseTest, NormalFormsOnKeylessFdlessSchema) {
  TableSchema schema = Schema("abc", "ac");
  SchemaDesign design{schema, ConstraintSet()};
  EXPECT_TRUE(IsBcnf(design));
  ASSERT_OK_AND_ASSIGN(bool sql_bcnf, IsSqlBcnf(design));
  EXPECT_TRUE(sql_bcnf);
}

TEST(EdgeCaseTest, UnicodeAndSpecialCharactersInValues) {
  TableSchema schema = Schema("ab");
  Table t(schema);
  ASSERT_OK(t.AddRow(Tuple({Value::Str("köhler—link"),
                            Value::Str("tab\tand \"quote\"")})));
  ASSERT_OK(t.AddRow(Tuple({Value::Str("köhler—link"),
                            Value::Str("tab\tand \"quote\"")})));
  EXPECT_TRUE(Satisfies(t, Fd(schema, "a ->w b")));
  EXPECT_FALSE(Satisfies(t, Key(schema, "p<ab>")));
}

}  // namespace
}  // namespace sqlnf
