// Snapshot reads (engine/catalog.h): copy-on-write column sharing
// keeps a published snapshot bit-stable while the writer keeps
// mutating; GetSnapshot publishes committed state only (never
// mid-transaction rows); and concurrent reader threads always observe
// a state bit-identical to some prefix of the writer's serial commit
// schedule. The multi-threaded sections carry the `concurrency` ctest
// label and run under TSan in CI.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "reference_oracle.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/predicate.h"
#include "sqlnf/engine/txn.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Rows;
using testing::Schema;
using testing::Sigma;

Tuple Row(std::initializer_list<const char*> cells) {
  std::vector<Value> values;
  for (const char* c : cells) {
    values.push_back(c == nullptr ? Value::Null() : Value::Str(c));
  }
  return Tuple(std::move(values));
}

// The core copy-on-write contract: a copied EncodedTable stays
// bit-identical across every mutating entry point of the original.
TEST(SnapshotTest, CopyOnWriteKeepsCopiesBitStable) {
  TableSchema schema = Schema("abc");
  EncodedTable live(Rows(schema, {"1xp", "2yq", "3z_"}));
  const EncodedTable frozen = live;  // O(columns) pointer share
  const EncodedTable expected(Rows(schema, {"1xp", "2yq", "3z_"}));

  live.AppendRow(Row({"4", "w", "r"}));
  EXPECT_TRUE(frozen.BitIdentical(expected));
  live.UpdateCell(0, 1, Value::Str("mutated"));
  EXPECT_TRUE(frozen.BitIdentical(expected));
  live.EraseRows({1, 2});
  EXPECT_TRUE(frozen.BitIdentical(expected));
  live.TrimDictionaries(std::vector<int>(3, 1));
  EXPECT_TRUE(frozen.BitIdentical(expected));
  EXPECT_FALSE(live.BitIdentical(expected));

  // And the other direction: the copy detaches before ITS mutation,
  // leaving the original alone.
  EncodedTable fork = expected;
  fork.AppendRow(Row({"9", "9", "9"}));
  EXPECT_EQ(expected.num_rows(), 3);
  EXPECT_TRUE(fork.column(0).size() == 4u);
}

TEST(SnapshotTest, SnapshotAdvancesOnlyAtCommitPoints) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("ab", "a");
  ASSERT_OK(db.CreateTable(schema, ConstraintSet()));
  ASSERT_OK(db.Insert("T", Row({"1", "x"})));

  ASSERT_OK_AND_ASSIGN(TableSnapshot s1, db.GetSnapshot("T"));
  EXPECT_EQ(s1.num_rows(), 1);

  // Same committed state → same epoch, same columns.
  ASSERT_OK_AND_ASSIGN(TableSnapshot again, db.GetSnapshot("T"));
  EXPECT_EQ(again.epoch, s1.epoch);
  EXPECT_TRUE(again.columns->BitIdentical(*s1.columns));

  // An auto-committed statement publishes a fresh epoch...
  ASSERT_OK(db.Insert("T", Row({"2", "y"})));
  ASSERT_OK_AND_ASSIGN(TableSnapshot s2, db.GetSnapshot("T"));
  EXPECT_GT(s2.epoch, s1.epoch);
  EXPECT_EQ(s2.num_rows(), 2);
  // ...while the old snapshot stays bit-stable on its own columns.
  EXPECT_EQ(s1.num_rows(), 1);
  EXPECT_EQ(s1.columns->code(0, 0),
            s1.columns->LookupCode(0, Value::Str("1")));

  // Mid-transaction mutations are invisible: readers keep the
  // pre-transaction epoch until COMMIT.
  ASSERT_OK(db.Begin());
  ASSERT_OK(db.Insert("T", Row({"3", "z"})));
  ASSERT_OK_AND_ASSIGN(TableSnapshot mid, db.GetSnapshot("T"));
  EXPECT_EQ(mid.epoch, s2.epoch);
  EXPECT_EQ(mid.num_rows(), 2);
  ASSERT_OK(db.Commit());
  ASSERT_OK_AND_ASSIGN(TableSnapshot s3, db.GetSnapshot("T"));
  EXPECT_EQ(s3.num_rows(), 3);

  // An aborted transaction publishes nothing.
  ASSERT_OK(db.Begin());
  ASSERT_OK(db.Insert("T", Row({"4", "w"})));
  ASSERT_OK(db.Rollback());
  ASSERT_OK_AND_ASSIGN(TableSnapshot s4, db.GetSnapshot("T"));
  EXPECT_EQ(s4.epoch, s3.epoch);
  EXPECT_TRUE(s4.columns->BitIdentical(*s3.columns));
}

TEST(SnapshotTest, SelectFromSnapshotMatchesMaterialized) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("abc", "a");
  ASSERT_OK(db.IngestTable(
      Rows(schema, {"1xp", "2yp", "3x_", "4xq"}), ConstraintSet()));
  ASSERT_OK_AND_ASSIGN(TableSnapshot snap, db.GetSnapshot("T"));

  ASSERT_OK_AND_ASSIGN(
      Table hits,
      SelectFromSnapshot(snap, {{1, Value::Str("x")}}));
  EXPECT_EQ(hits.num_rows(), 3);
  ASSERT_OK_AND_ASSIGN(
      Table nulls, SelectFromSnapshot(snap, {{2, Value::Null()}}));
  EXPECT_EQ(nulls.num_rows(), 1);  // marker equality: ⊥ matches ⊥
  EXPECT_FALSE(
      SelectFromSnapshot(snap, {{7, Value::Str("x")}}).ok());

  // The snapshot keeps serving after the table is dropped — columns
  // are refcounted, not epoch-swept.
  ASSERT_OK(db.DropTable("T"));
  ASSERT_OK_AND_ASSIGN(
      Table after_drop,
      SelectFromSnapshot(snap, {{1, Value::Str("x")}}));
  EXPECT_EQ(after_drop.num_rows(), 3);
}

// Many readers against one writer. The writer commits batches of
// kBatch rows atomically (one transaction per batch, plus interspersed
// rejected statements and one aborted transaction per batch); readers
// continuously take snapshots and verify each one is bit-identical to
// the serial execution prefix after some whole number of commits —
// never a torn batch, never an uncommitted row. Runs under TSan via
// the `concurrency` ctest label.
TEST(SnapshotTest, ConcurrentReadersSeeCommittedPrefixesOnly) {
  WriterScope writer;
  constexpr int kBatches = 60;
  constexpr int kBatch = 3;
  Database db;
  TableSchema schema = Schema("ab", "a");
  ASSERT_OK(db.CreateTable(schema, Sigma(schema, "c<a>")));

  // The serial schedule: batch k appends rows 3k..3k+2 with values
  // ("<id>", "v<batch>"). Readers recompute any prefix locally.
  auto cell = [](int row) {
    return std::pair<std::string, std::string>{
        std::to_string(row), "v" + std::to_string(row / kBatch)};
  };

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  const int readers =
      std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
  std::vector<std::thread> pool;
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&] {
      uint64_t last_epoch = 0;
      int last_rows = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = db.GetSnapshot("T");
        if (!snap.ok()) {
          ++failures;
          return;
        }
        const TableSnapshot& s = *snap;
        // Committed prefixes only: whole batches, monotone progress.
        if (s.num_rows() % kBatch != 0 || s.num_rows() < last_rows ||
            s.epoch < last_epoch) {
          ++failures;
          return;
        }
        last_rows = s.num_rows();
        last_epoch = s.epoch;
        // Bit-identical to the serial prefix: every cell decodes to
        // the scheduled value, with no lock held while reading.
        for (int i = 0; i < s.num_rows(); ++i) {
          const auto [a, b] = cell(i);
          if (!(s.columns->DecodeCode(0, s.columns->code(0, i)) ==
                Value::Str(a)) ||
              !(s.columns->DecodeCode(1, s.columns->code(1, i)) ==
                Value::Str(b))) {
            ++failures;
            return;
          }
        }
        // Exercise the read path end to end as well.
        if (s.num_rows() > 0) {
          const auto [a, b] = cell(s.num_rows() - 1);
          auto hit = SelectFromSnapshot(s, {{0, Value::Str(a)}});
          if (!hit.ok() || hit->num_rows() != 1) {
            ++failures;
            return;
          }
        }
      }
    });
  }

  for (int k = 0; k < kBatches; ++k) {
    // A rejected auto-commit statement (key collision) before the
    // batch: publishes nothing, mutates nothing.
    if (k > 0) {
      const auto [a, b] = cell(0);
      ASSERT_FALSE(db.Insert("T", Row({a.c_str(), "dup"})).ok());
    }
    {
      TransactionGuard txn(&db);
      ASSERT_OK(txn.begin_status());
      for (int j = 0; j < kBatch; ++j) {
        const auto [a, b] = cell(k * kBatch + j);
        ASSERT_OK(db.Insert("T", Row({a.c_str(), b.c_str()})));
      }
      ASSERT_OK(txn.Commit());
    }
    // An aborted transaction after the batch: also invisible.
    {
      TransactionGuard txn(&db);
      ASSERT_OK(txn.begin_status());
      ASSERT_OK(db.Insert("T", Row({"uncommitted", "never"})));
      ASSERT_OK(
          db.Update("T", std::vector<ColumnCondition>{{0, Value::Str("0")}},
                    1, Value::Str("scribble"))
              .status());
    }  // guard rolls back
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);

  ASSERT_OK_AND_ASSIGN(TableSnapshot final_snap, db.GetSnapshot("T"));
  EXPECT_EQ(final_snap.num_rows(), kBatches * kBatch);
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_OK(stored->enforcer().CheckInvariants());
  EXPECT_TRUE(final_snap.columns->BitIdentical(stored->columns()));
}

// Satellite: the enforcer index for a possible (strong) constraint
// hashes the FULL similarity-attribute set, so an all-nullable key
// fans out across buckets instead of degenerating to one bucket with
// O(n) probes per insert; rows with ⊥ on the key are not indexed at
// all (strong similarity can never relate them).
TEST(SnapshotTest, StrongConstraintIndexFansOutOnNullableKey) {
  WriterScope writer;
  TableSchema schema = Schema("ab");  // no NOT NULL attribute anywhere
  ConstraintSet sigma = testing::Sigma(schema, "p<ab>");
  IncrementalEnforcer enforcer(schema, sigma);
  const int kRows = 64;
  for (int i = 0; i < kRows; ++i) {
    const Tuple row({Value::Int(i), Value::Int(i % 7)});
    ASSERT_FALSE(enforcer.Check(row).has_value()) << i;
    enforcer.Add(row, i);
  }
  // A few ⊥-bearing rows: never strongly similar to anything, accepted
  // and NOT indexed.
  for (int i = 0; i < 5; ++i) {
    const Tuple row({Value::Null(), Value::Int(0)});
    ASSERT_FALSE(enforcer.Check(row).has_value());
    enforcer.Add(row, kRows + i);
  }
  ASSERT_EQ(enforcer.num_indexes(), 1);
  const IncrementalEnforcer::IndexStats stats = enforcer.Stats(0);
  EXPECT_EQ(stats.indexed_rows, kRows);  // ⊥ rows skipped
  EXPECT_EQ(stats.buckets, kRows);       // distinct (a,b) pairs
  EXPECT_EQ(stats.largest_bucket, 1);    // no single-bucket degeneracy
  EXPECT_OK(enforcer.CheckInvariants());
  // Duplicates still caught through the fan-out index.
  EXPECT_TRUE(
      enforcer.Check(Tuple({Value::Int(3), Value::Int(3)})).has_value());
}

// Satellite: Database::Select gathers the selection vector columnar
// (GatherRows) and decodes once at the boundary; result must be the
// same multiset of rows the per-row decode reference produces.
TEST(SnapshotTest, SelectMatchesPerRowDecodeReference) {
  WriterScope writer;
  Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 2 + static_cast<int>(rng.Uniform(0, 2));
    const TableSchema schema = testing::RandomSchema(&rng, n);
    const Table data = testing::RandomInstance(&rng, schema, 40);
    Database db;
    ASSERT_OK(db.IngestTable(data, ConstraintSet()));
    ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));

    std::vector<ColumnCondition> where{
        {static_cast<AttributeId>(rng.Index(n)),
         rng.Chance(0.3) ? Value::Null() : Value::Int(rng.Uniform(0, 2))}};
    ASSERT_OK_AND_ASSIGN(Table got, db.Select("T", where));

    // Reference: per-row decode + row-major condition check, in order.
    Table want(schema);
    for (int i = 0; i < stored->num_rows(); ++i) {
      const Tuple t = stored->DecodeRow(i);
      if (MatchesConditions(t, where)) ASSERT_OK(want.AddRow(t));
    }
    ASSERT_EQ(got.num_rows(), want.num_rows()) << "trial=" << trial;
    const AttributeSet all = AttributeSet::FullSet(n);
    for (int i = 0; i < got.num_rows(); ++i) {
      EXPECT_TRUE(testing::OracleEqualOn(got.row(i), want.row(i), all))
          << "trial=" << trial << " row=" << i;
    }
  }
}

// Range-scan readers race a committing writer — and a periodic VACUUM
// that renumbers every dictionary code. Each reader grabs a snapshot,
// runs SelectFromSnapshot with a range/IN/OR predicate tree, and
// checks the selection against a per-row decode of the SAME snapshot:
// whatever version the reader caught, the compiled columnar scan and
// the row-major oracle must agree, and published snapshots must stay
// bit-stable while compaction publishes fresh column versions
// underneath them. Runs under TSan via the `concurrency` ctest label.
TEST(SnapshotTest, RangeScanReadersRaceCommittingWriterAndVacuum) {
  WriterScope writer;
  constexpr int kSteps = 120;
  Database db;
  TableSchema schema = Schema("ab", "a");
  ASSERT_OK(db.CreateTable(schema, Sigma(schema, "c<a>")));

  // Zero-padded ids so string order equals append order; column b
  // cycles through a tiny domain plus ⊥.
  auto id = [](int i) { return std::to_string(1000 + i).substr(1); };

  // The predicates the readers rotate through: a pure range, a BETWEEN
  // ∧ IN conjunction, and an OR of two conjunctions with a ⊥ atom.
  std::vector<Predicate> preds;
  preds.push_back(Predicate::And({Cmp(0, CompareOp::kGe, Value::Str("050"))}));
  preds.push_back(Predicate::And(
      {Between(0, Value::Str("020"), Value::Str("090")),
       In(1, {Value::Str("v0"), Value::Str("v2")})}));
  {
    Predicate p;
    p.disjuncts.push_back({Cmp(0, CompareOp::kLt, Value::Str("030"))});
    p.disjuncts.push_back({Cmp(1, CompareOp::kEq, Value::Null()),
                           Cmp(0, CompareOp::kGt, Value::Str("060"))});
    preds.push_back(std::move(p));
  }

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  const int readers =
      std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
  std::vector<std::thread> pool;
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      int turn = r;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = db.GetSnapshot("T");
        if (!snap.ok()) {
          ++failures;
          return;
        }
        const TableSnapshot& s = *snap;
        const Predicate& pred = preds[turn++ % preds.size()];
        auto got = SelectFromSnapshot(s, pred);
        if (!got.ok()) {
          ++failures;
          return;
        }
        // Row-major oracle over the same immutable snapshot.
        int want = 0;
        bool rows_match = true;
        for (int i = 0; i < s.num_rows(); ++i) {
          std::vector<Value> cells;
          for (AttributeId a = 0; a < 2; ++a) {
            const uint32_t code = s.columns->code(a, i);
            cells.push_back(code == EncodedTable::kNullCode
                                ? Value::Null()
                                : s.columns->DecodeCode(a, code));
          }
          const Tuple t(std::move(cells));
          if (MatchesPredicate(t, pred)) {
            if (want >= got->num_rows() ||
                !testing::OracleEqualOn(got->row(want), t,
                                        AttributeSet::FullSet(2))) {
              rows_match = false;
              break;
            }
            ++want;
          }
        }
        if (!rows_match || want != got->num_rows()) {
          ++failures;
          return;
        }
      }
    });
  }

  for (int k = 0; k < kSteps; ++k) {
    const std::string b = "v" + std::to_string(k % 3);
    ASSERT_OK(db.Insert(
        "T", Row({id(k).c_str(), k % 5 == 0 ? nullptr : b.c_str()})));
    if (k % 7 == 3) {
      // Strand a dictionary entry, then reclaim it: the next VACUUM
      // races the readers' in-flight snapshots.
      ASSERT_OK(db.Update("T",
                          std::vector<ColumnCondition>{{0, Value::Str(id(k))}},
                          1, Value::Str("rewritten"))
                    .status());
      ASSERT_OK(db.Update("T",
                          std::vector<ColumnCondition>{{0, Value::Str(id(k))}},
                          1, Value::Str(b))
                    .status());
    }
    if (k % 10 == 9) {
      ASSERT_OK_AND_ASSIGN(const int retired, db.CompactTable("T"));
      (void)retired;
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);

  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_OK(stored->enforcer().CheckInvariants());
  EXPECT_EQ(stored->num_rows(), kSteps);
}

}  // namespace
}  // namespace sqlnf
