// TANE (partition-based levelwise discovery) cross-checked against the
// pairwise difference-set miner: two independent algorithms, identical
// minimal classical FDs.

#include "sqlnf/discovery/tane.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/discovery/partition.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::RandomInstance;
using testing::Rows;
using testing::Schema;

TEST(PartitionTest, ColumnPartitions) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1x", "1y", "2x", "3_", "3_"});
  EncodedTable enc(t);
  StrippedPartition pa = StrippedPartition::ForColumn(enc, 0);
  EXPECT_EQ(pa.num_classes(), 2);  // {0,1}, {3,4}; singleton {2} dropped
  EXPECT_EQ(pa.error(), 2);
  StrippedPartition pb = StrippedPartition::ForColumn(enc, 1);
  EXPECT_EQ(pb.num_classes(), 2);  // {0,2} on x; {3,4} on ⊥=⊥
  EXPECT_EQ(pb.error(), 2);

  StrippedPartition pab = pa.Intersect(pb, t.num_rows());
  EXPECT_EQ(pab.num_classes(), 1);  // only rows 3,4 share (a,b)
  EXPECT_EQ(pab.error(), 1);
}

TEST(PartitionTest, UniverseAndKeys) {
  EXPECT_EQ(StrippedPartition::Universe(5).error(), 4);
  EXPECT_EQ(StrippedPartition::Universe(1).error(), 0);
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1x", "2x", "3y"});
  EncodedTable enc(t);
  // Column a is a key: empty stripped partition.
  EXPECT_EQ(StrippedPartition::ForColumn(enc, 0).error(), 0);
}

TEST(TaneTest, FindsPlantedFdAndKey) {
  TableSchema schema = Schema("abc");
  Table t = Rows(schema, {"11x", "11y", "22x", "22y", "33z"});
  ASSERT_OK_AND_ASSIGN(TaneResult result, DiscoverFdsTane(t));
  bool a_to_b = false, b_to_a = false;
  for (const auto& fd : result.fds) {
    if (fd.lhs == AttributeSet{0} && fd.rhs.Contains(1)) a_to_b = true;
    if (fd.lhs == AttributeSet{1} && fd.rhs.Contains(0)) b_to_a = true;
  }
  EXPECT_TRUE(a_to_b);
  EXPECT_TRUE(b_to_a);
  // {a,c} (equivalently {b,c}) are the minimal keys.
  EXPECT_EQ(result.minimal_keys.size(), 2u);
}

TEST(TaneTest, ConstantColumnGivesEmptyLhsFd) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1x", "2x", "3x"});
  ASSERT_OK_AND_ASSIGN(TaneResult result, DiscoverFdsTane(t));
  bool found = false;
  for (const auto& fd : result.fds) {
    if (fd.lhs.empty() && fd.rhs.Contains(1)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TaneTest, NullsAreOrdinaryValues) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1_", "1_", "2x"});
  ASSERT_OK_AND_ASSIGN(TaneResult result, DiscoverFdsTane(t));
  // a -> b holds classically (⊥ = ⊥ for row 0,1).
  bool found = false;
  for (const auto& fd : result.fds) {
    if (fd.lhs == AttributeSet{0} && fd.rhs.Contains(1)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TaneTest, RespectsLevelCap) {
  TableSchema schema = Schema("abcd");
  Table t = Rows(schema, {"1111", "1122", "1212", "2112"});
  TaneOptions options;
  options.max_lhs_size = 1;
  ASSERT_OK_AND_ASSIGN(TaneResult result, DiscoverFdsTane(t, options));
  EXPECT_EQ(result.levels_processed, 1);
  for (const auto& fd : result.fds) {
    EXPECT_LE(fd.lhs.size(), 1);
  }
}

TEST(TaneTest, RejectsEmptyTable) {
  Table empty(Schema("ab"));
  EXPECT_FALSE(DiscoverFdsTane(empty).ok());
}

// Normalize a grouped FD list for comparison.
std::vector<std::pair<uint64_t, uint64_t>> Normalize(
    const std::vector<FunctionalDependency>& fds) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(fds.size());
  for (const auto& fd : fds) {
    out.emplace_back(fd.lhs.bits(), fd.rhs.bits());
  }
  std::sort(out.begin(), out.end());
  return out;
}

class TaneCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(TaneCrossCheckTest, AgreesWithPairwiseMiner) {
  Rng rng(GetParam() * 67 + 3);
  for (int trial = 0; trial < 15; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema =
        testing::Schema(std::string("abcde").substr(0, n));
    Table t = RandomInstance(&rng, schema, 4 + static_cast<int>(
                                               rng.Uniform(0, 20)),
                             2, 0.25);

    TaneOptions tane_options;
    tane_options.max_lhs_size = n + 1;  // uncapped for these sizes
    ASSERT_OK_AND_ASSIGN(TaneResult tane, DiscoverFdsTane(t, tane_options));

    DiscoveryOptions pairwise_options;
    pairwise_options.hitting.max_size = n + 1;
    pairwise_options.hitting.max_results = 100000;
    ASSERT_OK_AND_ASSIGN(
        auto pairwise,
        DiscoverFds(t, FdSemantics::kClassical, pairwise_options));

    EXPECT_EQ(Normalize(tane.fds), Normalize(pairwise))
        << t.ToString() << "\ntane found " << tane.fds.size()
        << ", pairwise " << pairwise.size();

    // Every TANE FD really holds and is LHS-minimal (null-as-value
    // semantics = possible-FD satisfaction on ⊥-free comparisons is
    // not the same thing, so verify with EqualOn-based checking).
    for (const auto& fd : tane.fds) {
      for (int i = 0; i < t.num_rows(); ++i) {
        for (int j = i + 1; j < t.num_rows(); ++j) {
          if (t.row(i).EqualOn(t.row(j), fd.lhs)) {
            EXPECT_TRUE(t.row(i).EqualOn(t.row(j), fd.rhs))
                << fd.ToString(schema);
          }
        }
      }
    }
  }
}

TEST_P(TaneCrossCheckTest, MinimalKeysMatchPKeysOnTotalTables) {
  Rng rng(GetParam() * 73 + 5);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 2));
    std::string names = std::string("abcd").substr(0, n);
    TableSchema schema = testing::Schema(names, names);
    Table t = RandomInstance(&rng, schema, 10, 3, 0.0);

    TaneOptions options;
    options.max_lhs_size = n;
    ASSERT_OK_AND_ASSIGN(TaneResult tane, DiscoverFdsTane(t, options));
    ASSERT_OK_AND_ASSIGN(DiscoveryResult pairwise, DiscoverConstraints(t));

    std::vector<AttributeSet> pairwise_keys;
    for (const auto& key : pairwise.p_keys) {
      pairwise_keys.push_back(key.attrs);
    }
    std::sort(pairwise_keys.begin(), pairwise_keys.end());
    EXPECT_EQ(tane.minimal_keys, pairwise_keys) << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaneCrossCheckTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace sqlnf
