// Schema projection Σ[X] (Section 5.1, Theorems 8/17 context).

#include "sqlnf/normalform/projection.h"

#include <gtest/gtest.h>

#include "sqlnf/normalform/normal_forms.h"
#include "sqlnf/reasoning/implication.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::Fd;
using testing::Key;
using testing::RandomSchema;
using testing::RandomSigma;
using testing::RandomSubset;
using testing::Schema;
using testing::Sigma;

TEST(ProjectionTest, KeepsConstraintsInsideX) {
  TableSchema schema = Schema("abcd", "abcd");
  ConstraintSet sigma = Sigma(schema, "a ->s b; c ->s d");
  ASSERT_OK_AND_ASSIGN(ConstraintSet proj,
                       ProjectSigma(schema, sigma, Attrs(schema, "ab")));
  Implication imp(schema, proj);
  EXPECT_TRUE(imp.Implies(Fd(schema, "a ->s b")));
  EXPECT_FALSE(imp.Implies(Fd(schema, "c ->s d")));
}

TEST(ProjectionTest, TransitiveConsequencesSurviveProjection) {
  // a -> b -> c projected onto {a,c} keeps a -> c.
  TableSchema schema = Schema("abc", "abc");
  ConstraintSet sigma = Sigma(schema, "a ->s b; b ->s c");
  ASSERT_OK_AND_ASSIGN(ConstraintSet proj,
                       ProjectSigma(schema, sigma, Attrs(schema, "ac")));
  Implication imp(schema, proj);
  EXPECT_TRUE(imp.Implies(Fd(schema, "a ->s c")));
}

TEST(ProjectionTest, KeysProject) {
  TableSchema schema = Schema("abc", "abc");
  ConstraintSet sigma = Sigma(schema, "c<a>");
  ASSERT_OK_AND_ASSIGN(ConstraintSet proj,
                       ProjectSigma(schema, sigma, Attrs(schema, "ab")));
  Implication imp(schema, proj);
  EXPECT_TRUE(imp.Implies(Key(schema, "c<ab>")));
  EXPECT_TRUE(imp.Implies(Key(schema, "c<a>")));
}

TEST(ProjectionTest, ProjectDesignRenumbers) {
  TableSchema schema = Schema("abcd", "bd");
  ConstraintSet sigma = Sigma(schema, "b ->w bd");
  ASSERT_OK_AND_ASSIGN(
      SchemaDesign design,
      ProjectDesign(schema, sigma, Attrs(schema, "bd"), "proj"));
  EXPECT_EQ(design.table.num_attributes(), 2);
  EXPECT_EQ(design.table.attribute_name(0), "b");
  EXPECT_EQ(design.table.nfs(), AttributeSet::FullSet(2));
  Implication imp(design.table, design.sigma);
  EXPECT_TRUE(imp.Implies(Fd(design.table, "b ->w d")));
}

TEST(ProjectionTest, RefusesOversizedProjections) {
  ProjectionOptions options;
  options.max_attributes = 3;
  TableSchema schema = Schema("abcde");
  EXPECT_FALSE(
      ProjectSigma(schema, ConstraintSet(), schema.all(), options).ok());
}

TEST(ProjectionTest, RefusesForeignAttributes) {
  TableSchema schema = Schema("ab");
  AttributeSet outside = {5};
  EXPECT_FALSE(ProjectSigma(schema, ConstraintSet(), outside).ok());
}

TEST(ProjectionTest, ProjectionBcnfDecision) {
  // (abc, abc, {a -> b, key c<ac>}) is in BCNF as a whole; its
  // projection onto {a,b} is too (a becomes a key there? No: a -> b
  // projects but no key on {a,b} follows) — Theorem 8's problem.
  TableSchema schema = Schema("abc", "abc");
  ConstraintSet sigma = Sigma(schema, "a ->s b; c<ac>");
  ASSERT_OK_AND_ASSIGN(bool whole_bcnf,
                       IsProjectionBcnf(schema, sigma, schema.all()));
  EXPECT_FALSE(whole_bcnf);  // a -> b without key a
  ASSERT_OK_AND_ASSIGN(bool ab_bcnf,
                       IsProjectionBcnf(schema, sigma, Attrs(schema, "ab")));
  EXPECT_FALSE(ab_bcnf);  // a -> b survives, still no key
  ASSERT_OK_AND_ASSIGN(bool ac_bcnf,
                       IsProjectionBcnf(schema, sigma, Attrs(schema, "ac")));
  EXPECT_TRUE(ac_bcnf);  // only the key c<ac> lives here
}

TEST(ProjectionTest, ProjectionSqlBcnfDecision) {
  TableSchema schema = Schema("oicp", "oip");
  ConstraintSet sigma = Sigma(schema, "oic ->w cp");
  ASSERT_OK_AND_ASSIGN(
      bool oic_vrnf,
      IsProjectionSqlBcnf(schema, sigma, Attrs(schema, "oic")));
  // Example 3's [oic] component is in SQL-BCNF (the surviving c-FD
  // oic ->w c is internal).
  EXPECT_TRUE(oic_vrnf);
  ASSERT_OK_AND_ASSIGN(bool whole,
                       IsProjectionSqlBcnf(schema, sigma, schema.all()));
  EXPECT_FALSE(whole);
}

// The projected cover is exactly Σ+ restricted to X: implication of any
// constraint inside X agrees before and after projection.
class ProjectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ProjectionPropertyTest, CoverPreservesImplicationInsideX) {
  Rng rng(GetParam() * 41 + 11);
  for (int trial = 0; trial < 15; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 3, 1);
    AttributeSet x = RandomSubset(&rng, n, 0.7);
    if (x.empty()) continue;
    auto proj = ProjectSigma(schema, sigma, x);
    ASSERT_OK(proj.status());
    Implication imp_full(schema, sigma);
    Implication imp_proj(schema, *proj);

    for (int q = 0; q < 25; ++q) {
      // Random constraint fully inside X.
      AttributeSet lhs = RandomSubset(&rng, n).Intersect(x);
      AttributeSet rhs = RandomSubset(&rng, n).Intersect(x);
      Mode mode = rng.Chance(0.5) ? Mode::kPossible : Mode::kCertain;
      FunctionalDependency fd{lhs, rhs, mode};
      EXPECT_EQ(imp_full.Implies(fd), imp_proj.Implies(fd))
          << fd.ToString(schema) << " | X=" << schema.FormatSet(x)
          << " | Sigma=" << sigma.ToString(schema)
          << " | proj=" << proj->ToString(schema);
      KeyConstraint key{lhs, mode};
      EXPECT_EQ(imp_full.Implies(key), imp_proj.Implies(key))
          << key.ToString(schema) << " | X=" << schema.FormatSet(x)
          << " | Sigma=" << sigma.ToString(schema)
          << " | proj=" << proj->ToString(schema);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionPropertyTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace sqlnf
