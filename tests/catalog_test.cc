// Database catalog: native enforcement of the paper's constraints on
// writes (the "trigger layer" SQL cannot declare).

#include "sqlnf/engine/catalog.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Rows;
using testing::Schema;
using testing::Sigma;

Tuple Row(std::initializer_list<const char*> cells) {
  std::vector<Value> values;
  for (const char* c : cells) {
    values.push_back(c == nullptr ? Value::Null() : Value::Str(c));
  }
  return Tuple(std::move(values));
}

TEST(ValidateRowAgainstTest, MatchesBatchSemantics) {
  TableSchema schema = Schema("icp", "ip");
  ConstraintSet sigma = Sigma(schema, "ic ->w p");
  Table t = Rows(schema, {"FAX"});
  // Weakly similar on (i,c) with a different price: rejected.
  auto v = ValidateRowAgainst(t, Row({"F", nullptr, "Y"}), sigma);
  ASSERT_TRUE(v.has_value());
  // Same price: accepted.
  EXPECT_FALSE(
      ValidateRowAgainst(t, Row({"F", nullptr, "X"}), sigma).has_value());
  // NFS violation reported with the column.
  auto nfs = ValidateRowAgainst(t, Row({nullptr, "A", "X"}), sigma);
  ASSERT_TRUE(nfs.has_value());
  EXPECT_TRUE(nfs->attribute.has_value());
}

TEST(DatabaseTest, CreateDropAndLookup) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("ab", "a");
  EXPECT_OK(db.CreateTable(schema, ConstraintSet()));
  EXPECT_FALSE(db.CreateTable(schema, ConstraintSet()).ok());  // dup
  EXPECT_TRUE(db.HasTable("T"));
  EXPECT_EQ(db.TableNames().size(), 1u);
  EXPECT_OK(db.DropTable("T"));
  EXPECT_FALSE(db.DropTable("T").ok());
  EXPECT_FALSE(db.Find("T").ok());
}

TEST(DatabaseTest, InsertEnforcesCertainKeyOverNullableColumns) {
  WriterScope writer;
  // c<i,c> with nullable c — inexpressible in standard SQL.
  Database db;
  TableSchema schema = Schema("icp", "ip");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "c<ic>")));
  EXPECT_OK(db.Insert("T", Row({"Fitbit", "Amazon", "240"})));
  // A ⊥-catalog row weakly collides with the stored one: rejected.
  auto st = db.Insert("T", Row({"Fitbit", nullptr, "200"}));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("c<"), std::string::npos);
  // Different item: fine.
  EXPECT_OK(db.Insert("T", Row({"Dora", nullptr, "25"})));
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->num_rows(), 2);
}

TEST(DatabaseTest, InsertEnforcesCertainFd) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("icp", "ip");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "ic ->w p")));
  EXPECT_OK(db.Insert("T", Row({"Fitbit", "Amazon", "240"})));
  EXPECT_OK(db.Insert("T", Row({"Fitbit", nullptr, "240"})));  // same p
  EXPECT_FALSE(db.Insert("T", Row({"Fitbit", nullptr, "200"})).ok());
  EXPECT_OK(db.Insert("T", Row({"Dora", "Kingtoys", "25"})));
}

TEST(DatabaseTest, RejectedWritesLeaveTableUntouched) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("ab", "ab");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "c<a>")));
  ASSERT_OK(db.Insert("T", Row({"1", "x"})));
  EXPECT_FALSE(db.Insert("T", Row({"1", "y"})).ok());
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->num_rows(), 1);
  EXPECT_EQ(stored->DecodeRow(0)[1], Value::Str("x"));
}

TEST(DatabaseTest, UpdateValidatesPostImageAtomically) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("abc", "abc");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "a ->w c")));
  ASSERT_OK(db.Insert("T", Row({"1", "p", "x"})));
  ASSERT_OK(db.Insert("T", Row({"1", "q", "x"})));
  // Changing only one of the two a=1 rows breaks the FD: rejected.
  bool first = true;
  auto one_row = [&first](const Tuple&) {
    bool take = first;
    first = false;
    return take;
  };
  auto rejected = db.Update("T", one_row, 2, Value::Str("y"));
  EXPECT_FALSE(rejected.ok());
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->DecodeRow(0)[2], Value::Str("x"));  // untouched
  // Changing both rows together is consistent.
  ASSERT_OK_AND_ASSIGN(
      int changed,
      db.Update("T", [](const Tuple&) { return true; }, 2,
                Value::Str("y")));
  EXPECT_EQ(changed, 2);
}

TEST(DatabaseTest, UpdateRejectsNullIntoNotNull) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("ab", "a");
  ASSERT_OK(db.CreateTable(schema, ConstraintSet()));
  ASSERT_OK(db.Insert("T", Row({"1", "x"})));
  EXPECT_FALSE(
      db.Update("T", [](const Tuple&) { return true; }, 0, Value::Null())
          .ok());
  // Nullable column accepts ⊥.
  ASSERT_OK_AND_ASSIGN(
      int changed,
      db.Update("T", [](const Tuple&) { return true; }, 1, Value::Null()));
  EXPECT_EQ(changed, 1);
}

TEST(DatabaseTest, DeleteNeverViolates) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("ab", "ab");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "a ->w b")));
  ASSERT_OK(db.Insert("T", Row({"1", "x"})));
  ASSERT_OK(db.Insert("T", Row({"2", "y"})));
  ASSERT_OK_AND_ASSIGN(
      int removed,
      db.Delete("T", [](const Tuple& t) { return t[0] == Value::Str("1"); }));
  EXPECT_EQ(removed, 1);
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->num_rows(), 1);
}

TEST(DatabaseTest, UpdateAndDeleteMaintainIndexWithoutRebuild) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("abc", "a");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "c<ab>; a ->w c")));
  ASSERT_OK(db.Insert("T", Row({"1", "p", "x"})));
  ASSERT_OK(db.Insert("T", Row({"2", "q", "x"})));
  ASSERT_OK(db.Insert("T", Row({"3", nullptr, "y"})));
  ASSERT_OK(db.Insert("T", Row({"4", "r", "z"})));

  // Delete the a=2 row: its key must be freed, survivors renumbered.
  ASSERT_OK_AND_ASSIGN(
      int removed,
      db.Delete("T", [](const Tuple& t) { return t[0] == Value::Str("2"); }));
  EXPECT_EQ(removed, 1);
  EXPECT_OK(db.Insert("T", Row({"2", "q", "w"})));  // key reusable

  // Surviving keys are still guarded (the renumbered index finds the
  // conflict partner at its NEW row id).
  auto dup = db.Insert("T", Row({"4", "r", "z"}));
  EXPECT_FALSE(dup.ok());

  // Update moves a row to a new bucket: the OLD key frees up, the NEW
  // key conflicts.
  ASSERT_OK_AND_ASSIGN(
      int changed,
      db.Update(
          "T", [](const Tuple& t) { return t[0] == Value::Str("4"); }, 1,
          Value::Str("s")));
  EXPECT_EQ(changed, 1);
  EXPECT_FALSE(db.Insert("T", Row({"4", "s", "z"})).ok());  // post-image
  EXPECT_OK(db.Insert("T", Row({"4", "r", "z"})));          // pre-image freed

  // All of the above ran on the incremental paths only.
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->enforcer().rebuilds(), 0);
}

TEST(DatabaseTest, MutationsKeepEnforcerConsistentRandomized) {
  WriterScope writer;
  Rng rng(2026);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3 + static_cast<int>(rng.Uniform(0, 1));
    TableSchema schema = testing::RandomSchema(&rng, n);
    ConstraintSet sigma = testing::RandomSigma(&rng, n, 2, 1);
    Database db;
    ASSERT_OK(db.CreateTable(schema, sigma));

    auto random_row = [&] {
      std::vector<Value> values;
      for (AttributeId a = 0; a < n; ++a) {
        if (!schema.nfs().Contains(a) && rng.Chance(0.25)) {
          values.push_back(Value::Null());
        } else {
          values.push_back(Value::Int(rng.Uniform(0, 2)));
        }
      }
      return Tuple(std::move(values));
    };
    for (int i = 0; i < 25; ++i) (void)db.Insert("T", random_row());

    for (int step = 0; step < 12; ++step) {
      // Random mutation through the catalog write paths.
      const Value match = Value::Int(rng.Uniform(0, 2));
      const AttributeId col = static_cast<AttributeId>(rng.Index(n));
      if (rng.Chance(0.5)) {
        const Value set = rng.Chance(0.2) ? Value::Null()
                                          : Value::Int(rng.Uniform(0, 2));
        (void)db.Update(
            "T", [&](const Tuple& t) { return t[0] == match; }, col, set);
      } else {
        (void)db.Delete("T", [&](const Tuple& t) { return t[col] == match; });
      }

      // The incrementally maintained index must agree with the
      // from-scratch reference on arbitrary candidate rows.
      ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
      ASSERT_EQ(stored->enforcer().rebuilds(), 0);
      for (int k = 0; k < 8; ++k) {
        Tuple candidate = random_row();
        const auto incremental = stored->enforcer().Check(candidate);
        const auto reference =
            ValidateRowAgainst(stored->Materialize(), candidate, sigma);
        ASSERT_EQ(incremental.has_value(), reference.has_value())
            << "trial " << trial << " step " << step;
      }
    }
  }
}

TEST(DatabaseTest, InsertArityChecked) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("ab");
  ASSERT_OK(db.CreateTable(schema, ConstraintSet()));
  EXPECT_FALSE(db.Insert("T", Row({"1"})).ok());
  EXPECT_FALSE(db.Insert("missing", Row({"1", "2"})).ok());
}

}  // namespace
}  // namespace sqlnf
