// Database catalog: native enforcement of the paper's constraints on
// writes (the "trigger layer" SQL cannot declare).

#include "sqlnf/engine/catalog.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Rows;
using testing::Schema;
using testing::Sigma;

Tuple Row(std::initializer_list<const char*> cells) {
  std::vector<Value> values;
  for (const char* c : cells) {
    values.push_back(c == nullptr ? Value::Null() : Value::Str(c));
  }
  return Tuple(std::move(values));
}

TEST(ValidateRowAgainstTest, MatchesBatchSemantics) {
  TableSchema schema = Schema("icp", "ip");
  ConstraintSet sigma = Sigma(schema, "ic ->w p");
  Table t = Rows(schema, {"FAX"});
  // Weakly similar on (i,c) with a different price: rejected.
  auto v = ValidateRowAgainst(t, Row({"F", nullptr, "Y"}), sigma);
  ASSERT_TRUE(v.has_value());
  // Same price: accepted.
  EXPECT_FALSE(
      ValidateRowAgainst(t, Row({"F", nullptr, "X"}), sigma).has_value());
  // NFS violation reported with the column.
  auto nfs = ValidateRowAgainst(t, Row({nullptr, "A", "X"}), sigma);
  ASSERT_TRUE(nfs.has_value());
  EXPECT_TRUE(nfs->attribute.has_value());
}

TEST(DatabaseTest, CreateDropAndLookup) {
  Database db;
  TableSchema schema = Schema("ab", "a");
  EXPECT_OK(db.CreateTable(schema, ConstraintSet()));
  EXPECT_FALSE(db.CreateTable(schema, ConstraintSet()).ok());  // dup
  EXPECT_TRUE(db.HasTable("T"));
  EXPECT_EQ(db.TableNames().size(), 1u);
  EXPECT_OK(db.DropTable("T"));
  EXPECT_FALSE(db.DropTable("T").ok());
  EXPECT_FALSE(db.Find("T").ok());
}

TEST(DatabaseTest, InsertEnforcesCertainKeyOverNullableColumns) {
  // c<i,c> with nullable c — inexpressible in standard SQL.
  Database db;
  TableSchema schema = Schema("icp", "ip");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "c<ic>")));
  EXPECT_OK(db.Insert("T", Row({"Fitbit", "Amazon", "240"})));
  // A ⊥-catalog row weakly collides with the stored one: rejected.
  auto st = db.Insert("T", Row({"Fitbit", nullptr, "200"}));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("c<"), std::string::npos);
  // Different item: fine.
  EXPECT_OK(db.Insert("T", Row({"Dora", nullptr, "25"})));
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->data.num_rows(), 2);
}

TEST(DatabaseTest, InsertEnforcesCertainFd) {
  Database db;
  TableSchema schema = Schema("icp", "ip");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "ic ->w p")));
  EXPECT_OK(db.Insert("T", Row({"Fitbit", "Amazon", "240"})));
  EXPECT_OK(db.Insert("T", Row({"Fitbit", nullptr, "240"})));  // same p
  EXPECT_FALSE(db.Insert("T", Row({"Fitbit", nullptr, "200"})).ok());
  EXPECT_OK(db.Insert("T", Row({"Dora", "Kingtoys", "25"})));
}

TEST(DatabaseTest, RejectedWritesLeaveTableUntouched) {
  Database db;
  TableSchema schema = Schema("ab", "ab");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "c<a>")));
  ASSERT_OK(db.Insert("T", Row({"1", "x"})));
  EXPECT_FALSE(db.Insert("T", Row({"1", "y"})).ok());
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->data.num_rows(), 1);
  EXPECT_EQ(stored->data.row(0)[1], Value::Str("x"));
}

TEST(DatabaseTest, UpdateValidatesPostImageAtomically) {
  Database db;
  TableSchema schema = Schema("abc", "abc");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "a ->w c")));
  ASSERT_OK(db.Insert("T", Row({"1", "p", "x"})));
  ASSERT_OK(db.Insert("T", Row({"1", "q", "x"})));
  // Changing only one of the two a=1 rows breaks the FD: rejected.
  bool first = true;
  auto one_row = [&first](const Tuple&) {
    bool take = first;
    first = false;
    return take;
  };
  auto rejected = db.Update("T", one_row, 2, Value::Str("y"));
  EXPECT_FALSE(rejected.ok());
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->data.row(0)[2], Value::Str("x"));  // untouched
  // Changing both rows together is consistent.
  ASSERT_OK_AND_ASSIGN(
      int changed,
      db.Update("T", [](const Tuple&) { return true; }, 2,
                Value::Str("y")));
  EXPECT_EQ(changed, 2);
}

TEST(DatabaseTest, UpdateRejectsNullIntoNotNull) {
  Database db;
  TableSchema schema = Schema("ab", "a");
  ASSERT_OK(db.CreateTable(schema, ConstraintSet()));
  ASSERT_OK(db.Insert("T", Row({"1", "x"})));
  EXPECT_FALSE(
      db.Update("T", [](const Tuple&) { return true; }, 0, Value::Null())
          .ok());
  // Nullable column accepts ⊥.
  ASSERT_OK_AND_ASSIGN(
      int changed,
      db.Update("T", [](const Tuple&) { return true; }, 1, Value::Null()));
  EXPECT_EQ(changed, 1);
}

TEST(DatabaseTest, DeleteNeverViolates) {
  Database db;
  TableSchema schema = Schema("ab", "ab");
  ASSERT_OK(db.CreateTable(schema, testing::Sigma(schema, "a ->w b")));
  ASSERT_OK(db.Insert("T", Row({"1", "x"})));
  ASSERT_OK(db.Insert("T", Row({"2", "y"})));
  ASSERT_OK_AND_ASSIGN(
      int removed,
      db.Delete("T", [](const Tuple& t) { return t[0] == Value::Str("1"); }));
  EXPECT_EQ(removed, 1);
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->data.num_rows(), 1);
}

TEST(DatabaseTest, InsertArityChecked) {
  Database db;
  TableSchema schema = Schema("ab");
  ASSERT_OK(db.CreateTable(schema, ConstraintSet()));
  EXPECT_FALSE(db.Insert("T", Row({"1"})).ok());
  EXPECT_FALSE(db.Insert("missing", Row({"1", "2"})).ok());
}

}  // namespace
}  // namespace sqlnf
