// Classical BCNF decomposition baseline and its agreement with
// Algorithm 3 on the idealized relational special case (paper §6.3).

#include "sqlnf/decomposition/bcnf_decompose.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::RandomSchema;
using testing::Rows;
using testing::Schema;
using testing::Sigma;

TEST(BcnfDecomposeTest, TextbookExample) {
  // R(a,b,c), a -> b, key {a,c}: split into {a,b} and {a,c}.
  TableSchema schema = Schema("abc", "abc");
  SchemaDesign design{schema, Sigma(schema, "a ->s b; c<ac>")};
  ASSERT_OK_AND_ASSIGN(Decomposition d, ClassicalBcnfDecompose(design));
  ASSERT_EQ(d.components.size(), 2u);
  std::vector<AttributeSet> attrs = {d.components[0].attrs,
                                     d.components[1].attrs};
  std::sort(attrs.begin(), attrs.end());
  EXPECT_EQ(attrs[0], Attrs(schema, "ab"));
  EXPECT_EQ(attrs[1], Attrs(schema, "ac"));
}

TEST(BcnfDecomposeTest, AlreadyBcnfStaysWhole) {
  TableSchema schema = Schema("abc", "abc");
  SchemaDesign design{schema, Sigma(schema, "a ->s bc; c<a>")};
  ASSERT_OK_AND_ASSIGN(Decomposition d, ClassicalBcnfDecompose(design));
  EXPECT_EQ(d.components.size(), 1u);
}

TEST(BcnfDecomposeTest, RejectsNullableSchemas) {
  TableSchema schema = Schema("abc", "ab");
  EXPECT_FALSE(ClassicalBcnfDecompose({schema, ConstraintSet()}).ok());
}

TEST(BcnfDecomposeTest, LosslessOnTotalInstances) {
  TableSchema schema = Schema("oicp", "oicp");
  SchemaDesign design{schema, Sigma(schema, "ic ->s p; c<oic>")};
  ASSERT_OK_AND_ASSIGN(Decomposition d, ClassicalBcnfDecompose(design));
  Table purchase = Rows(schema, {"1FAX", "1FBX", "3FAX", "3DKY"});
  ASSERT_TRUE(SatisfiesAll(purchase, design.sigma));
  ASSERT_OK_AND_ASSIGN(bool lossless,
                       IsLosslessForInstance(purchase, d));
  EXPECT_TRUE(lossless);
}

TEST(BcnfDecomposeTest, AgreesWithAlgorithm3OnIdealizedCase) {
  // Same attribute partitioning (up to component kind) on total
  // relational inputs.
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 3 + static_cast<int>(rng.Uniform(0, 2));
    std::string names;
    for (int i = 0; i < n; ++i) names += static_cast<char>('a' + i);
    TableSchema schema = Schema(names, names);  // T_S = T
    ConstraintSet classical;
    AttributeSet lhs = testing::RandomSubset(&rng, n, 0.3);
    AttributeSet rhs = lhs.Union(testing::RandomSubset(&rng, n, 0.3));
    if (lhs.empty() || rhs == lhs) continue;
    classical.AddFd(FunctionalDependency::Certain(lhs, rhs));
    classical.AddKey(KeyConstraint::Certain(schema.all()));
    SchemaDesign design{schema, classical};

    ASSERT_OK_AND_ASSIGN(Decomposition bcnf,
                         ClassicalBcnfDecompose(design));
    ASSERT_OK_AND_ASSIGN(VrnfResult vrnf, VrnfDecompose(design));

    std::vector<AttributeSet> a, b;
    for (const Component& c : bcnf.components) a.push_back(c.attrs);
    for (const Component& c : vrnf.decomposition.components) {
      b.push_back(c.attrs);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << design.ToString();
  }
}

}  // namespace
}  // namespace sqlnf
