// Incremental enforcer: index-accelerated insert checking equals the
// reference pairwise semantics on random workloads.

#include "sqlnf/engine/enforcer.h"

#include <gtest/gtest.h>

#include "sqlnf/engine/catalog.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::RandomSchema;
using testing::RandomSigma;
using testing::Schema;
using testing::Sigma;

TEST(EnforcerTest, BasicConflicts) {
  WriterScope writer;
  TableSchema schema = Schema("icp", "ip");
  ConstraintSet sigma = Sigma(schema, "ic ->w p; c<ic>");
  Table table(schema);
  IncrementalEnforcer enforcer(schema, sigma);

  Tuple first({Value::Str("F"), Value::Str("A"), Value::Str("1")});
  EXPECT_FALSE(enforcer.Check(first).has_value());
  enforcer.Add(first, 0);
  ASSERT_OK(table.AddRow(first));

  // Weak key collision through ⊥.
  Tuple collide({Value::Str("F"), Value::Null(), Value::Str("1")});
  auto v = enforcer.Check(collide);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->row1, 0);

  Tuple fine({Value::Str("G"), Value::Null(), Value::Str("2")});
  EXPECT_FALSE(enforcer.Check(fine).has_value());
}

TEST(EnforcerTest, RebuildAfterMutation) {
  WriterScope writer;
  TableSchema schema = Schema("ab", "ab");
  ConstraintSet sigma = Sigma(schema, "c<a>");
  Table table(schema);
  IncrementalEnforcer enforcer(schema, sigma);
  Tuple row({Value::Str("1"), Value::Str("x")});
  enforcer.Add(row, 0);
  ASSERT_OK(table.AddRow(row));
  EXPECT_TRUE(enforcer.Check(row).has_value());
  // Simulate a delete + rebuild: the conflict disappears.
  Table empty(schema);
  enforcer.Rebuild(empty);
  EXPECT_FALSE(enforcer.Check(row).has_value());
}

class EnforcerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EnforcerPropertyTest, MatchesReferenceRowValidation) {
  WriterScope writer;
  Rng rng(GetParam() * 131 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 2, 2);

    Table table(schema);
    IncrementalEnforcer enforcer(schema, sigma);
    for (int step = 0; step < 40; ++step) {
      // Random candidate row (⊥ allowed anywhere; the checkers flag
      // NFS violations themselves).
      std::vector<Value> values;
      for (int c = 0; c < n; ++c) {
        values.push_back(rng.Chance(0.25)
                             ? Value::Null()
                             : Value::Int(rng.Uniform(0, 2)));
      }
      Tuple row(std::move(values));
      auto fast = enforcer.Check(row);
      auto reference = ValidateRowAgainst(table, row, sigma);
      EXPECT_EQ(fast.has_value(), reference.has_value())
          << "step " << step << " sigma " << sigma.ToString(schema)
          << "\n"
          << table.ToString();
      if (!fast.has_value()) {
        enforcer.Add(row, table.num_rows());
        ASSERT_OK(table.AddRow(std::move(row)));
      }
    }
    // The accepted prefix is consistent as a whole.
    EXPECT_TRUE(SatisfiesAll(table, sigma)) << sigma.ToString(schema);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnforcerPropertyTest,
                         ::testing::Range(0, 6));

// The enforcer's incrementally maintained EncodedTable must stay
// equivalent (code bijection + equal decoded cells) to a from-scratch
// re-encode of the stored data across a randomized INSERT / UPDATE /
// DELETE workload — and the write paths must never fall back to
// Rebuild().
TEST(EnforcerTest, EncodingStaysConsistentAcrossWriteWorkload) {
  WriterScope writer;
  Rng rng(314159);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    const TableSchema schema = RandomSchema(&rng, n);
    // Sparse Σ so a fair share of statements succeed.
    const ConstraintSet sigma = RandomSigma(&rng, n, 1, 1);
    Database db;
    ASSERT_OK(db.CreateTable(schema, sigma));

    auto random_value = [&]() {
      return rng.Chance(0.25) ? Value::Null()
                              : Value::Int(rng.Uniform(0, 2));
    };
    int accepted = 0;
    for (int step = 0; step < 80; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.6) {
        std::vector<Value> values;
        for (int c = 0; c < n; ++c) values.push_back(random_value());
        if (db.Insert("T", Tuple(std::move(values))).ok()) ++accepted;
      } else if (roll < 0.8) {
        const AttributeId col = static_cast<AttributeId>(rng.Index(n));
        const Value target = Value::Int(rng.Uniform(0, 2));
        // Touch roughly half the rows matching on `col`.
        (void)db.Update(
            "T",
            [&](const Tuple& t) { return t[col] == target; }, col,
            random_value());
      } else {
        const AttributeId col = static_cast<AttributeId>(rng.Index(n));
        const Value target = Value::Int(rng.Uniform(0, 2));
        ASSERT_OK(db.Delete(
            "T", [&](const Tuple& t) { return t[col] == target; })
                      .status());
      }
      ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
      ASSERT_TRUE(
          stored->enforcer().encoding().EquivalentTo(
              EncodedTable(stored->Materialize())))
          << "trial=" << trial << " step=" << step << "\n"
          << stored->Materialize().ToString();
      EXPECT_EQ(stored->enforcer().rebuilds(), 0);
      EXPECT_TRUE(SatisfiesAll(stored->Materialize(), sigma));
    }
    EXPECT_GT(accepted, 0) << "trial=" << trial;
  }
}

}  // namespace
}  // namespace sqlnf
