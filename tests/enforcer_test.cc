// Incremental enforcer: index-accelerated insert checking equals the
// reference pairwise semantics on random workloads.

#include "sqlnf/engine/enforcer.h"

#include <gtest/gtest.h>

#include "sqlnf/engine/catalog.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::RandomSchema;
using testing::RandomSigma;
using testing::Schema;
using testing::Sigma;

TEST(EnforcerTest, BasicConflicts) {
  TableSchema schema = Schema("icp", "ip");
  ConstraintSet sigma = Sigma(schema, "ic ->w p; c<ic>");
  Table table(schema);
  IncrementalEnforcer enforcer(schema, sigma);

  Tuple first({Value::Str("F"), Value::Str("A"), Value::Str("1")});
  EXPECT_FALSE(enforcer.Check(table, first).has_value());
  enforcer.Add(first, 0);
  ASSERT_OK(table.AddRow(first));

  // Weak key collision through ⊥.
  Tuple collide({Value::Str("F"), Value::Null(), Value::Str("1")});
  auto v = enforcer.Check(table, collide);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->row1, 0);

  Tuple fine({Value::Str("G"), Value::Null(), Value::Str("2")});
  EXPECT_FALSE(enforcer.Check(table, fine).has_value());
}

TEST(EnforcerTest, RebuildAfterMutation) {
  TableSchema schema = Schema("ab", "ab");
  ConstraintSet sigma = Sigma(schema, "c<a>");
  Table table(schema);
  IncrementalEnforcer enforcer(schema, sigma);
  Tuple row({Value::Str("1"), Value::Str("x")});
  enforcer.Add(row, 0);
  ASSERT_OK(table.AddRow(row));
  EXPECT_TRUE(enforcer.Check(table, row).has_value());
  // Simulate a delete + rebuild: the conflict disappears.
  Table empty(schema);
  enforcer.Rebuild(empty);
  EXPECT_FALSE(enforcer.Check(empty, row).has_value());
}

class EnforcerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EnforcerPropertyTest, MatchesReferenceRowValidation) {
  Rng rng(GetParam() * 131 + 3);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 2, 2);

    Table table(schema);
    IncrementalEnforcer enforcer(schema, sigma);
    for (int step = 0; step < 40; ++step) {
      // Random candidate row (⊥ allowed anywhere; the checkers flag
      // NFS violations themselves).
      std::vector<Value> values;
      for (int c = 0; c < n; ++c) {
        values.push_back(rng.Chance(0.25)
                             ? Value::Null()
                             : Value::Int(rng.Uniform(0, 2)));
      }
      Tuple row(std::move(values));
      auto fast = enforcer.Check(table, row);
      auto reference = ValidateRowAgainst(table, row, sigma);
      EXPECT_EQ(fast.has_value(), reference.has_value())
          << "step " << step << " sigma " << sigma.ToString(schema)
          << "\n"
          << table.ToString();
      if (!fast.has_value()) {
        enforcer.Add(row, table.num_rows());
        ASSERT_OK(table.AddRow(std::move(row)));
      }
    }
    // The accepted prefix is consistent as a whole.
    EXPECT_TRUE(SatisfiesAll(table, sigma)) << sigma.ToString(schema);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnforcerPropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace sqlnf
