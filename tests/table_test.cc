#include "sqlnf/core/table.h"

#include <gtest/gtest.h>

#include "sqlnf/core/similarity.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Rows;
using testing::Schema;

TEST(ValueTest, EqualityAndOrder) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Int(4));
  EXPECT_FALSE(Value::Int(3) == Value::Str("3"));
  EXPECT_FALSE(Value::Null() == Value::Int(0));
  EXPECT_TRUE(Value::Null() < Value::Int(-100));
  EXPECT_TRUE(Value::Int(5) < Value::Str(""));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Str("abc").ToString(), "abc");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(9).Hash(), Value::Int(9).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
  EXPECT_NE(Value::Int(9).Hash(), Value::Null().Hash());
}

TEST(TupleTest, RestrictAndTotal) {
  TableSchema schema = Schema("abcd");
  Table t = Rows(schema, {"1_34"});
  const Tuple& row = t.row(0);
  EXPECT_TRUE(row.IsTotal({0, 2}));
  EXPECT_FALSE(row.IsTotal({1}));
  Tuple r = row.Restrict({0, 3});
  EXPECT_EQ(r.size(), 2);
  EXPECT_EQ(r[0], Value::Str("1"));
  EXPECT_EQ(r[1], Value::Str("4"));
}

TEST(TupleTest, EqualOnTreatsNullSyntactically) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1_", "1_", "12"});
  EXPECT_TRUE(t.row(0).EqualOn(t.row(1), {0, 1}));   // ⊥ = ⊥
  EXPECT_FALSE(t.row(0).EqualOn(t.row(2), {0, 1}));  // ⊥ ≠ 2
  EXPECT_TRUE(t.row(0).EqualOn(t.row(2), {0}));
}

TEST(TableTest, AddRowChecksArity) {
  Table t(Schema("ab"));
  EXPECT_FALSE(t.AddRow(Tuple({Value::Int(1)})).ok());
  EXPECT_OK(t.AddRow(Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.num_cells(), 2);
}

TEST(TableTest, AddRowTextParsesNull) {
  Table t(Schema("ab"));
  EXPECT_OK(t.AddRowText({"x", "NULL"}));
  EXPECT_FALSE(t.row(0)[0].is_null());
  EXPECT_TRUE(t.row(0)[1].is_null());
}

TEST(TableTest, CheckNfs) {
  TableSchema schema = Schema("ab", "a");
  Table good = Rows(schema, {"1_", "22"});
  EXPECT_OK(good.CheckNfs());
  Table bad = Rows(schema, {"_1"});
  EXPECT_FALSE(bad.CheckNfs().ok());
}

TEST(TableTest, ColumnValuesDistinctNonNull) {
  TableSchema schema = Schema("a");
  Table t = Rows(schema, {"1", "2", "1", "_"});
  auto values = t.ColumnValues(0);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], Value::Str("1"));
  EXPECT_EQ(values[1], Value::Str("2"));
  EXPECT_EQ(t.CountNulls(0), 1);
}

TEST(TableTest, SameMultisetIgnoresOrderRespectsMultiplicity) {
  TableSchema schema = Schema("ab");
  Table a = Rows(schema, {"11", "22", "11"});
  Table b = Rows(schema, {"22", "11", "11"});
  Table c = Rows(schema, {"11", "22", "22"});
  EXPECT_TRUE(a.SameMultiset(b));
  EXPECT_FALSE(a.SameMultiset(c));
}

TEST(TableTest, SameMultisetNeedsSameStructure) {
  Table a = Rows(Schema("ab", "a"), {"11"});
  Table b = Rows(Schema("ab", "b"), {"11"});
  EXPECT_FALSE(a.SameMultiset(b));
}

TEST(TableTest, ToStringMarksNotNull) {
  Table t = Rows(Schema("ab", "a"), {"1_"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a*"), std::string::npos);
  EXPECT_NE(s.find("NULL"), std::string::npos);
}

// Weak/strong similarity (paper, Section 2).
TEST(SimilarityTest, Definitions) {
  TableSchema schema = Schema("abc");
  Table t = Rows(schema, {"11_", "1_2", "132", "112"});
  const AttributeSet all = schema.all();
  // Rows 0,1: a equal; b: one ⊥; c: one ⊥ → weakly similar, not strongly.
  EXPECT_TRUE(WeaklySimilar(t.row(0), t.row(1), all));
  EXPECT_FALSE(StronglySimilar(t.row(0), t.row(1), all));
  // Rows 1,2: b differs? row1 b=⊥ row2 b=3 → weak ok; c equal.
  EXPECT_TRUE(WeaklySimilar(t.row(1), t.row(2), all));
  // Rows 0,2: b: 1 vs 3 both non-null differ → not weakly similar.
  EXPECT_FALSE(WeaklySimilar(t.row(0), t.row(2), all));
  // Rows 1,3: strong on {a,c}: both total and equal.
  EXPECT_TRUE(StronglySimilar(t.row(1), t.row(3), {0, 2}));
  EXPECT_FALSE(StronglySimilar(t.row(1), t.row(3), {1}));
  // Strong and weak coincide on total parts.
  EXPECT_TRUE(WeaklySimilar(t.row(1), t.row(3), {0, 2}));
}

TEST(TableTest, NullFreeColumnsCacheTracksMutations) {
  TableSchema schema = Schema("abc");
  Table t(schema);
  // Empty instance: every column is (vacuously) null-free.
  EXPECT_EQ(t.NullFreeColumns(), AttributeSet::FullSet(3));

  // AddRow maintains the cache incrementally.
  ASSERT_OK(t.AddRowText({"1", "NULL", "2"}));
  EXPECT_EQ(t.NullFreeColumns(), (AttributeSet{0, 2}));
  ASSERT_OK(t.AddRowText({"NULL", "3", "4"}));
  EXPECT_EQ(t.NullFreeColumns(), AttributeSet{2});

  // mutable_row invalidates; the next query recomputes from the data.
  (*t.mutable_row(0))[1] = Value::Str("x");
  (*t.mutable_row(1))[0] = Value::Str("y");
  EXPECT_EQ(t.NullFreeColumns(), AttributeSet::FullSet(3));
  (*t.mutable_row(0))[2] = Value::Null();
  EXPECT_EQ(t.NullFreeColumns(), (AttributeSet{0, 1}));
}

TEST(TableTest, SetCellMaintainsNullCounts) {
  TableSchema schema = Schema("abc");
  Table t(schema);
  ASSERT_OK(t.AddRowText({"1", "NULL", "2"}));
  ASSERT_OK(t.AddRowText({"3", "4", "5"}));
  EXPECT_EQ(t.CountNulls(1), 1);
  EXPECT_EQ(t.NullFreeColumns(), (AttributeSet{0, 2}));

  // Writes through SetCell keep the counts exact — no invalidation.
  t.SetCell(0, 1, Value::Str("x"));
  EXPECT_EQ(t.CountNulls(1), 0);
  EXPECT_EQ(t.NullFreeColumns(), AttributeSet::FullSet(3));
  t.SetCell(1, 0, Value::Null());
  EXPECT_EQ(t.CountNulls(0), 1);
  EXPECT_EQ(t.NullFreeColumns(), (AttributeSet{1, 2}));
  // ⊥ over ⊥ and value over value leave the counts unchanged.
  t.SetCell(1, 0, Value::Null());
  EXPECT_EQ(t.CountNulls(0), 1);
  t.SetCell(0, 2, Value::Str("7"));
  EXPECT_EQ(t.CountNulls(2), 0);

  // SetCell composes with an invalidating mutable_row write: the next
  // query recounts, and subsequent SetCell updates stay exact.
  (*t.mutable_row(0))[0] = Value::Null();
  t.SetCell(1, 1, Value::Null());
  EXPECT_EQ(t.CountNulls(0), 2);
  EXPECT_EQ(t.CountNulls(1), 1);
  EXPECT_EQ(t.NullFreeColumns(), AttributeSet{2});
}

TEST(SimilarityTest, EmptySetAlwaysSimilar) {
  TableSchema schema = Schema("a");
  Table t = Rows(schema, {"1", "2"});
  EXPECT_TRUE(WeaklySimilar(t.row(0), t.row(1), {}));
  EXPECT_TRUE(StronglySimilar(t.row(0), t.row(1), {}));
}

TEST(SimilarityTest, StrongImpliesWeakRandomized) {
  Rng rng(5);
  TableSchema schema = Schema("abcde");
  Table t = testing::RandomInstance(&rng, schema, 30);
  for (int i = 0; i < t.num_rows(); ++i) {
    for (int j = 0; j < t.num_rows(); ++j) {
      AttributeSet x = testing::RandomSubset(&rng, 5);
      if (StronglySimilar(t.row(i), t.row(j), x)) {
        EXPECT_TRUE(WeaklySimilar(t.row(i), t.row(j), x));
        EXPECT_TRUE(t.row(i).IsTotal(x));
      }
    }
  }
}

}  // namespace
}  // namespace sqlnf
