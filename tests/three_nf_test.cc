// Classical 3NF synthesis baseline (reference [7]): always dependency
// preserving and lossless on total relations.

#include "sqlnf/decomposition/three_nf.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/decomposition/dependency_preservation.h"
#include "sqlnf/decomposition/lossless.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::RandomInstance;
using testing::Schema;
using testing::Sigma;

TEST(ThreeNfTest, TextbookSynthesis) {
  // R(a,b,c,d), a -> b, c -> d: components {a,b}, {c,d} plus the key
  // {a,c}.
  TableSchema schema = Schema("abcd", "abcd");
  SchemaDesign design{schema, Sigma(schema, "a ->s b; c ->s d")};
  ASSERT_OK_AND_ASSIGN(Decomposition d, ThreeNfSynthesis(design));
  EXPECT_OK(d.Validate(schema));
  EXPECT_EQ(d.components.size(), 3u);
  ASSERT_OK_AND_ASSIGN(AttributeSet key, MinimalClassicalKey(design));
  EXPECT_EQ(key, Attrs(schema, "ac"));
}

TEST(ThreeNfTest, KeyComponentOmittedWhenCovered) {
  TableSchema schema = Schema("abc", "abc");
  SchemaDesign design{schema, Sigma(schema, "ab ->s c")};
  ASSERT_OK_AND_ASSIGN(Decomposition d, ThreeNfSynthesis(design));
  // {a,b} is the key and lives inside the single FD component.
  EXPECT_EQ(d.components.size(), 1u);
  EXPECT_EQ(d.components[0].attrs, schema.all());
}

TEST(ThreeNfTest, AttributesOutsideFdsLandInKeyComponent) {
  TableSchema schema = Schema("abcd", "abcd");
  SchemaDesign design{schema, Sigma(schema, "a ->s b")};
  ASSERT_OK_AND_ASSIGN(Decomposition d, ThreeNfSynthesis(design));
  EXPECT_OK(d.Validate(schema));  // c and d covered via the key
  ASSERT_OK_AND_ASSIGN(AttributeSet key, MinimalClassicalKey(design));
  EXPECT_EQ(key, Attrs(schema, "acd"));
}

TEST(ThreeNfTest, RejectsNullableSchemas) {
  TableSchema schema = Schema("ab", "a");
  EXPECT_FALSE(ThreeNfSynthesis({schema, ConstraintSet()}).ok());
  EXPECT_FALSE(MinimalClassicalKey({schema, ConstraintSet()}).ok());
}

class ThreeNfPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreeNfPropertyTest, PreservingAndLossless) {
  Rng rng(GetParam() * 91 + 17);
  for (int trial = 0; trial < 15; ++trial) {
    int n = 3 + static_cast<int>(rng.Uniform(0, 2));
    std::string names = std::string("abcdef").substr(0, n);
    TableSchema schema = Schema(names, names);
    ConstraintSet sigma;
    for (int f = 0; f < 2; ++f) {
      AttributeSet lhs = testing::RandomSubset(&rng, n, 0.3);
      AttributeSet rhs = testing::RandomSubset(&rng, n, 0.3);
      if (lhs.empty() || rhs.empty()) continue;
      sigma.AddFd(FunctionalDependency::Possible(lhs, rhs));
    }
    SchemaDesign design{schema, sigma};
    ASSERT_OK_AND_ASSIGN(Decomposition d, ThreeNfSynthesis(design));
    EXPECT_OK(d.Validate(schema));

    // Dependency preservation always holds for synthesis output.
    ASSERT_OK_AND_ASSIGN(bool preserving,
                         IsDependencyPreserving(design, d));
    EXPECT_TRUE(preserving) << design.ToString() << " -> "
                            << d.ToString(schema);

    // Losslessness on random total instances satisfying Σ (set
    // semantics: use duplicate-free instances, the classical setting).
    for (int m = 0; m < 8; ++m) {
      Table instance = RandomInstance(&rng, schema, 5, 2, 0.0);
      if (!SatisfiesAll(instance, sigma)) continue;
      // Deduplicate rows (relations are sets).
      auto dedup = ProjectSet(instance, schema.all(), "dedup");
      ASSERT_OK(dedup.status());
      ASSERT_OK_AND_ASSIGN(bool lossless,
                           IsLosslessForInstance(*dedup, d));
      EXPECT_TRUE(lossless) << design.ToString() << "\n"
                            << dedup->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeNfPropertyTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace sqlnf
