#include <gtest/gtest.h>

#include "sqlnf/util/rng.h"
#include "sqlnf/util/status.h"
#include "sqlnf/util/string_util.h"
#include "sqlnf/util/text_table.h"

namespace sqlnf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kOutOfRange, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kParseError,
        StatusCode::kIoError, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SQLNF_ASSIGN_OR_RETURN(int h, Half(x));
  SQLNF_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(StripAsciiWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t\n "), "");
}

TEST(StringUtilTest, SplitKeepsEmpty) {
  auto pieces = SplitString("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(StringUtilTest, SplitAndStripDropsEmpty) {
  auto pieces = SplitAndStrip(" a ; ;b;", ';');
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(TextTableTest, AlignsColumns) {
  TextTable tt;
  tt.SetHeader({"name", "n"});
  tt.AddRow({"x", "100"});
  tt.AddRow({"longer", "1"});
  std::string s = tt.ToString();
  EXPECT_NE(s.find("name   | n"), std::string::npos);
  EXPECT_NE(s.find("longer | 1"), std::string::npos);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable tt;
  tt.SetHeader({"a", "b", "c"});
  tt.AddRow({"1"});
  EXPECT_EQ(tt.num_rows(), 1u);
  EXPECT_NE(tt.ToString().find("1"), std::string::npos);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace sqlnf
