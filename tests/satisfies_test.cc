// Satisfaction semantics, exercised on the paper's running examples
// (Figures 1, 3, 4, 5; Examples 1 and 2).

#include "sqlnf/constraints/satisfies.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Fd;
using testing::Key;
using testing::Rows;
using testing::Schema;

// Figure 1: the purchase relation. o=order, i=item, c=catalog, p=price;
// F=Fitbit Surge, D=Dora Doll, A=Amazon, B=Brookstone, K=Kingtoys,
// X=240, Y=25.
Table Purchase() {
  return Rows(Schema("oicp"), {"1FAX", "1FBX", "3FAX", "3DKY"});
}

TEST(SatisfiesTest, Figure1PurchaseSatisfiesItemCatalogToPrice) {
  Table purchase = Purchase();
  EXPECT_TRUE(Satisfies(purchase, Fd(purchase.schema(), "ic ->s p")));
  EXPECT_TRUE(Satisfies(purchase, Fd(purchase.schema(), "ic ->w p")));
  // {item, catalog} is not a key: Fitbit/Amazon occurs in two orders.
  EXPECT_FALSE(Satisfies(purchase, Key(purchase.schema(), "p<ic>")));
  EXPECT_FALSE(Satisfies(purchase, Key(purchase.schema(), "c<ic>")));
  // The full schema is a key here (all rows distinct and total).
  EXPECT_TRUE(Satisfies(purchase, Key(purchase.schema(), "p<oicp>")));
}

TEST(SatisfiesTest, Figure3DuplicatesSatisfyAllFdsViolateAllKeys) {
  // Two identical total rows: every FD holds, every key fails.
  TableSchema schema = Schema("icp");
  Table t = Rows(schema, {"FAX", "FAX"});
  for (const char* fd : {"i ->s cp", "ic ->w p", "icp ->s icp",
                         "{} ->w icp"}) {
    EXPECT_TRUE(Satisfies(t, Fd(schema, fd))) << fd;
  }
  for (const char* key : {"p<i>", "p<icp>", "c<icp>", "c<i>"}) {
    EXPECT_FALSE(Satisfies(t, Key(schema, key))) << key;
  }
}

TEST(SatisfiesTest, Figure4PossibleHoldsCertainFails) {
  TableSchema schema = Schema("oicp");
  Table t = Rows(schema, {"1F_X", "2F_Y"});
  // Strong similarity on ic never fires (catalog is ⊥).
  EXPECT_TRUE(Satisfies(t, Fd(schema, "ic ->s p")));
  // Weak similarity does fire and prices differ.
  EXPECT_FALSE(Satisfies(t, Fd(schema, "ic ->w p")));
}

TEST(SatisfiesTest, Figure5CertainFdHolds) {
  TableSchema schema = Schema("oicp");
  Table t = Rows(schema, {"1FAX", "1F_X", "3FAX", "3DKY"});
  EXPECT_TRUE(Satisfies(t, Fd(schema, "ic ->w p")));
  EXPECT_TRUE(Satisfies(t, Fd(schema, "ic ->s p")));
  // But ic ->w icp does NOT hold (rows 0,1 weakly agree on ic yet differ
  // on catalog) — the reason the icp projection keeps redundancy.
  EXPECT_FALSE(Satisfies(t, Fd(schema, "ic ->w icp")));
}

TEST(SatisfiesTest, Figure5ProjectionKeys) {
  // The icp projection of Figure 5: p-key p<ic> holds, c-key c<ic> not.
  TableSchema schema = Schema("icp");
  Table proj = Rows(schema, {"FAX", "F_X", "DKY"});
  EXPECT_TRUE(Satisfies(proj, Key(schema, "p<ic>")));
  EXPECT_FALSE(Satisfies(proj, Key(schema, "c<ic>")));
}

TEST(SatisfiesTest, Example1EmployeeIdentification) {
  // n(ame) d(ob) a(ppointment), NOT NULL n,a. J=John Smith, B=James
  // Brown; dobs 1,2; appointments D,F,P.
  TableSchema schema = Schema("nda", "na");
  Table t = Rows(schema, {"J1D", "J2F", "J_P", "B_P"});
  EXPECT_OK(t.CheckNfs());
  // The c-FD nd ->w d is violated: row 2's John Smith is not identified.
  EXPECT_FALSE(Satisfies(t, Fd(schema, "nd ->w d")));
  // Removing the ambiguous row satisfies it.
  Table fixed = Rows(schema, {"J1D", "J2F", "J1P", "B_P"});
  EXPECT_TRUE(Satisfies(fixed, Fd(schema, "nd ->w d")));
  // The c-key c<nd> would even forbid two appointments per employee.
  EXPECT_FALSE(Satisfies(fixed, Key(schema, "c<nd>")));
}

TEST(SatisfiesTest, Example2PossibleCertainColumns) {
  // e(mployee) d(ept) m(anager) s(alary): Turing rows.
  TableSchema schema = Schema("edms");
  Table t = Rows(schema, {"TCV_", "T_G_"});
  auto check = [&](const char* lhs_rhs_p, bool expect) {
    EXPECT_EQ(Satisfies(t, Fd(schema, lhs_rhs_p)), expect) << lhs_rhs_p;
  };
  check("e ->s d", false);
  check("e ->w d", false);
  check("e ->s m", false);
  check("e ->w m", false);
  check("e ->s s", true);
  check("e ->w s", true);
  check("d ->s d", true);
  check("d ->w d", false);  // the paper highlights this one
  check("d ->s m", true);
  check("d ->w m", false);
  check("m ->s e", true);
  check("m ->w e", true);
  check("m ->s d", true);
  check("m ->w d", true);
}

TEST(SatisfiesTest, EmptyLhsMeansConstantColumns) {
  TableSchema schema = Schema("ab");
  Table same = Rows(schema, {"1x", "1y"});
  EXPECT_TRUE(Satisfies(same, Fd(schema, "{} ->s a")));
  EXPECT_TRUE(Satisfies(same, Fd(schema, "{} ->w a")));
  EXPECT_FALSE(Satisfies(same, Fd(schema, "{} ->w b")));
}

TEST(SatisfiesTest, ViolationReportsRowsAndConstraint) {
  TableSchema schema = Schema("ab", "a");
  Table t = Rows(schema, {"11", "12"});
  ConstraintSet sigma = testing::Sigma(schema, "a ->w b");
  auto v = FindViolation(t, sigma);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->row1, 0);
  EXPECT_EQ(v->row2, 1);
  EXPECT_NE(v->ToString(schema).find("->w"), std::string::npos);
}

TEST(SatisfiesTest, ViolationReportsNfsFirst) {
  TableSchema schema = Schema("ab", "a");
  Table t = Rows(schema, {"_1"});
  auto v = FindViolation(t, ConstraintSet());
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->attribute.has_value());
  EXPECT_EQ(*v->attribute, 0);
  EXPECT_NE(v->ToString(schema).find("NOT NULL"), std::string::npos);
}

TEST(SatisfiesTest, SatisfiesAllChecksNfsAndSigma) {
  TableSchema schema = Schema("ab", "a");
  ConstraintSet sigma = testing::Sigma(schema, "a ->w b; p<a>");
  EXPECT_TRUE(SatisfiesAll(Rows(schema, {"11", "22"}), sigma));
  EXPECT_FALSE(SatisfiesAll(Rows(schema, {"11", "12"}), sigma));  // FD
  EXPECT_FALSE(SatisfiesAll(Rows(schema, {"_1"}), sigma));        // NFS
  EXPECT_FALSE(
      SatisfiesAll(Rows(schema, {"11", "11"}), sigma));  // key (dups)
}

}  // namespace
}  // namespace sqlnf
