// net/http.h: the incremental request reader yields identical parses
// regardless of how the byte stream is fragmented, enforces its
// framing limits with the right status codes (400/413/431/501), and
// re-arms cleanly across keep-alive requests — all without a socket.

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "sqlnf/net/http.h"

namespace sqlnf {
namespace {

using State = HttpRequestReader::State;

TEST(HttpReaderTest, ParsesPostWithBody) {
  HttpRequestReader reader;
  EXPECT_EQ(reader.Feed("POST /query?x=1 HTTP/1.1\r\n"
                        "Host: localhost\r\n"
                        "Content-Type: application/json\r\n"
                        "Content-Length: 11\r\n"
                        "\r\n"
                        "{\"sql\":\"a\"}"),
            State::kReady);
  const HttpRequest& req = reader.request();
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/query?x=1");
  EXPECT_EQ(req.path, "/query");
  EXPECT_EQ(req.headers.at("host"), "localhost");
  EXPECT_EQ(req.body, "{\"sql\":\"a\"}");
  EXPECT_TRUE(req.keep_alive);
}

TEST(HttpReaderTest, ByteAtATimeMatchesOneShot) {
  const std::string wire =
      "POST /q HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  HttpRequestReader reader;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(reader.Feed(std::string_view(&wire[i], 1)),
              State::kNeedMore)
        << "byte " << i;
  }
  ASSERT_EQ(reader.Feed(std::string_view(&wire.back(), 1)), State::kReady);
  EXPECT_EQ(reader.request().body, "hello");
}

TEST(HttpReaderTest, KeepAliveReArmsAndHandlesPipelining) {
  HttpRequestReader reader;
  // Two pipelined requests in one feed.
  ASSERT_EQ(reader.Feed("GET /a HTTP/1.1\r\n\r\n"
                        "GET /b HTTP/1.1\r\nConnection: close\r\n\r\n"),
            State::kReady);
  EXPECT_EQ(reader.request().path, "/a");
  EXPECT_TRUE(reader.request().keep_alive);
  ASSERT_EQ(reader.ConsumeRequest(), State::kReady);
  EXPECT_EQ(reader.request().path, "/b");
  EXPECT_FALSE(reader.request().keep_alive);
  EXPECT_EQ(reader.ConsumeRequest(), State::kNeedMore);
}

TEST(HttpReaderTest, Http10DefaultsToClose) {
  HttpRequestReader reader;
  ASSERT_EQ(reader.Feed("GET / HTTP/1.0\r\n\r\n"), State::kReady);
  EXPECT_FALSE(reader.request().keep_alive);
  HttpRequestReader reader2;
  ASSERT_EQ(reader2.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            State::kReady);
  EXPECT_TRUE(reader2.request().keep_alive);
}

TEST(HttpReaderTest, ToleratesBareLfFraming) {
  HttpRequestReader reader;
  ASSERT_EQ(reader.Feed("GET /x HTTP/1.1\nHost: h\n\n"), State::kReady);
  EXPECT_EQ(reader.request().path, "/x");
  EXPECT_EQ(reader.request().headers.at("host"), "h");
}

TEST(HttpReaderTest, MalformedRequestLineIs400) {
  for (const char* wire :
       {"\r\n\r\n",                       // empty request line
        "GET\r\n\r\n",                    // one token
        "GET /\r\n\r\n",                  // two tokens
        "GET / HTTP/1.1 extra\r\n\r\n",   // four tokens
        "GET / SMTP/1.0\r\n\r\n",         // wrong protocol
        "GET / HTTP/2.0\r\n\r\n"}) {      // unsupported version
    HttpRequestReader reader;
    EXPECT_EQ(reader.Feed(wire), State::kError) << wire;
    EXPECT_EQ(reader.error_status(), 400) << wire;
  }
}

TEST(HttpReaderTest, MalformedHeadersAre400) {
  for (const char* wire :
       {"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
        "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: \r\n\r\n"}) {
    HttpRequestReader reader;
    EXPECT_EQ(reader.Feed(wire), State::kError) << wire;
    EXPECT_EQ(reader.error_status(), 400) << wire;
  }
}

TEST(HttpReaderTest, OversizedHeadIs431) {
  HttpRequestReader::Limits limits;
  limits.max_head_bytes = 128;
  // Incomplete head already past the cap must be rejected without
  // waiting for the blank line (a drip-feed attacker never sends one).
  HttpRequestReader reader(limits);
  const std::string junk = "GET / HTTP/1.1\r\nX: " + std::string(200, 'a');
  EXPECT_EQ(reader.Feed(junk), State::kError);
  EXPECT_EQ(reader.error_status(), 431);

  // A complete-but-oversized head is rejected too.
  HttpRequestReader reader2(limits);
  const std::string complete = "GET / HTTP/1.1\r\nX: " +
                               std::string(200, 'a') + "\r\n\r\n";
  EXPECT_EQ(reader2.Feed(complete), State::kError);
  EXPECT_EQ(reader2.error_status(), 431);
}

TEST(HttpReaderTest, TooManyHeadersIs400) {
  HttpRequestReader::Limits limits;
  limits.max_headers = 4;
  limits.max_head_bytes = 1 << 20;
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) {
    wire += "h" + std::to_string(i) + ": v\r\n";
  }
  wire += "\r\n";
  HttpRequestReader reader(limits);
  EXPECT_EQ(reader.Feed(wire), State::kError);
  EXPECT_EQ(reader.error_status(), 400);
}

TEST(HttpReaderTest, OversizedBodyIs413BeforeTheBodyArrives) {
  HttpRequestReader::Limits limits;
  limits.max_body_bytes = 64;
  HttpRequestReader reader(limits);
  // The reject happens on the declared length alone — no need to
  // receive (or buffer) a single body byte.
  EXPECT_EQ(reader.Feed("POST /q HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"),
            State::kError);
  EXPECT_EQ(reader.error_status(), 413);
}

TEST(HttpReaderTest, TransferEncodingIs501) {
  HttpRequestReader reader;
  EXPECT_EQ(reader.Feed("POST /q HTTP/1.1\r\n"
                        "Transfer-Encoding: chunked\r\n\r\n"),
            State::kError);
  EXPECT_EQ(reader.error_status(), 501);
}

TEST(HttpResponseTest, SerializesStatusHeadersBody) {
  HttpResponse r;
  r.status = 404;
  r.body = "{\"ok\":false}";
  r.close = true;
  const std::string wire = SerializeHttpResponse(r);
  EXPECT_EQ(wire,
            "HTTP/1.1 404 Not Found\r\n"
            "Content-Length: 12\r\n"
            "Content-Type: application/json\r\n"
            "Connection: close\r\n"
            "\r\n"
            "{\"ok\":false}");
  // Empty body: no Content-Type, explicit zero length.
  HttpResponse empty;
  EXPECT_EQ(SerializeHttpResponse(empty),
            "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n");
}

}  // namespace
}  // namespace sqlnf
