// Dependency preservation of decompositions (Section 8 context): is Σ
// implied by the union of projected covers?

#include "sqlnf/decomposition/dependency_preservation.h"

#include <gtest/gtest.h>

#include "sqlnf/decomposition/vrnf_decompose.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::Schema;
using testing::Sigma;

TEST(PreservationTest, PreservedWhenFdInsideComponent) {
  TableSchema schema = Schema("abc", "abc");
  SchemaDesign design{schema, Sigma(schema, "a ->s b")};
  Decomposition d;
  d.components.push_back({Attrs(schema, "ab"), false, ""});
  d.components.push_back({Attrs(schema, "ac"), true, ""});
  ASSERT_OK_AND_ASSIGN(bool preserving, IsDependencyPreserving(design, d));
  EXPECT_TRUE(preserving);
}

TEST(PreservationTest, LostWhenFdSpansComponents) {
  // The classic: ab -> c with components {a,b} x {b,c} loses the FD.
  TableSchema schema = Schema("abc", "abc");
  SchemaDesign design{schema, Sigma(schema, "ab ->s c")};
  Decomposition d;
  d.components.push_back({Attrs(schema, "ab"), false, ""});
  d.components.push_back({Attrs(schema, "bc"), false, ""});
  ASSERT_OK_AND_ASSIGN(auto lost, LostConstraints(design, d));
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(std::get<FunctionalDependency>(lost[0]),
            testing::Fd(schema, "ab ->s c"));
}

TEST(PreservationTest, TransitiveChainPreservedAcrossComponents) {
  // a -> b, b -> c split as {a,b}, {b,c}: both FDs live in components;
  // the implied a -> c follows from their union.
  TableSchema schema = Schema("abc", "abc");
  SchemaDesign design{schema, Sigma(schema, "a ->s b; b ->s c; a ->s c")};
  Decomposition d;
  d.components.push_back({Attrs(schema, "ab"), false, ""});
  d.components.push_back({Attrs(schema, "bc"), false, ""});
  ASSERT_OK_AND_ASSIGN(bool preserving, IsDependencyPreserving(design, d));
  EXPECT_TRUE(preserving);
}

TEST(PreservationTest, KeysAreCheckedToo) {
  TableSchema schema = Schema("abc", "abc");
  SchemaDesign design{schema, Sigma(schema, "c<ab>")};
  Decomposition spans;
  spans.components.push_back({Attrs(schema, "ab"), false, ""});
  spans.components.push_back({Attrs(schema, "bc"), false, ""});
  ASSERT_OK_AND_ASSIGN(bool preserving,
                       IsDependencyPreserving(design, spans));
  // c<ab> lives inside the first component.
  EXPECT_TRUE(preserving);

  SchemaDesign spanning_key{schema, Sigma(schema, "c<ac>")};
  ASSERT_OK_AND_ASSIGN(bool preserved2,
                       IsDependencyPreserving(spanning_key, spans));
  EXPECT_FALSE(preserved2);
}

TEST(PreservationTest, VrnfDecompositionOfPaperExampleIsPreserving) {
  // Example 3: the FD oic ->w oicp becomes enforceable as the key
  // c<oic> on the [oicp] component... but c<oic> is not implied by
  // Σ[component] unless the key was part of Σ. The ORIGINAL Σ must be
  // re-derivable: oic ->w oicp ∈ Σ[oicp] trivially (the component is
  // all of T), so this decomposition preserves dependencies.
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "oic ->w oicp")};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  ASSERT_OK_AND_ASSIGN(
      bool preserving,
      IsDependencyPreserving(design, result.decomposition));
  EXPECT_TRUE(preserving);
}

TEST(PreservationTest, RespectsProjectionLimits) {
  TableSchema schema = Schema("abcdefgh", "abcdefgh");
  SchemaDesign design{schema, Sigma(schema, "a ->s b")};
  Decomposition d;
  d.components.push_back({schema.all(), true, ""});
  ProjectionOptions options;
  options.max_attributes = 4;
  EXPECT_FALSE(IsDependencyPreserving(design, d, options).ok());
}

}  // namespace
}  // namespace sqlnf
