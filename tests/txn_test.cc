// Cross-table transactions (engine/txn.h): undo-log rollback restores
// every touched table — contents, constraint indexes, dictionaries —
// bit-identically; commits make multi-table writes permanent as one
// unit; rejected statements retire the dictionary codes they minted.
// Ends with the differential mutation-sequence harness: random
// interleavings of INSERT / UPDATE / DELETE, rejected statements, and
// aborted transactions, checked against the row-major reference oracle
// after every single operation.

#include "sqlnf/engine/txn.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reference_oracle.h"
#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/engine/sql.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::OracleSatisfiesFd;
using testing::OracleSatisfiesKey;
using testing::RandomSchema;
using testing::RandomSigma;
using testing::Rows;
using testing::Schema;
using testing::Sigma;

Tuple Row(std::initializer_list<const char*> cells) {
  std::vector<Value> values;
  for (const char* c : cells) {
    values.push_back(c == nullptr ? Value::Null() : Value::Str(c));
  }
  return Tuple(std::move(values));
}

bool SameRows(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) return false;
  const AttributeSet all =
      AttributeSet::FullSet(a.schema().num_attributes());
  for (int i = 0; i < a.num_rows(); ++i) {
    if (!testing::OracleEqualOn(a.row(i), b.row(i), all)) return false;
  }
  return true;
}

/// Full pre-state capture of one stored table: a copy-on-write column
/// share plus the order-insensitive index digest.
struct TableState {
  EncodedTable columns;
  uint64_t index_fingerprint;

  explicit TableState(const StoredTable& stored)
      : columns(stored.columns()),
        index_fingerprint(stored.enforcer().IndexFingerprint()) {}

  void ExpectRestored(const StoredTable& stored) const {
    EXPECT_TRUE(stored.columns().BitIdentical(columns));
    EXPECT_EQ(stored.enforcer().IndexFingerprint(), index_fingerprint);
    EXPECT_OK(stored.enforcer().CheckInvariants());
  }
};

TEST(TxnTest, CommitMakesCrossTableWritesPermanent) {
  WriterScope writer;
  // The normalized-schema scenario: one logical fact fans out over two
  // component tables and must land in both or neither.
  Database db;
  TableSchema orders = TableSchema::MakeCompact("orders", "op", "op")
                           .value();
  TableSchema items = TableSchema::MakeCompact("items", "oi", "oi").value();
  ASSERT_OK(db.CreateTable(orders, Sigma(orders, "c<o>")));
  ASSERT_OK(db.CreateTable(items, ConstraintSet()));

  ASSERT_OK(db.Begin());
  EXPECT_TRUE(db.InTransaction());
  ASSERT_OK(db.Insert("orders", Row({"o1", "alice"})));
  ASSERT_OK(db.Insert("items", Row({"o1", "widget"})));
  ASSERT_OK(db.Insert("items", Row({"o1", "gadget"})));
  ASSERT_OK(db.Commit());
  EXPECT_FALSE(db.InTransaction());

  ASSERT_OK_AND_ASSIGN(const StoredTable* o, db.Find("orders"));
  ASSERT_OK_AND_ASSIGN(const StoredTable* i, db.Find("items"));
  EXPECT_EQ(o->num_rows(), 1);
  EXPECT_EQ(i->num_rows(), 2);
  EXPECT_OK(o->enforcer().CheckInvariants());
  EXPECT_OK(i->enforcer().CheckInvariants());
}

TEST(TxnTest, RollbackRestoresEveryTableBitIdentical) {
  WriterScope writer;
  Database db;
  TableSchema s1 = TableSchema::MakeCompact("t1", "abc", "a").value();
  TableSchema s2 = TableSchema::MakeCompact("t2", "xy", "x").value();
  ASSERT_OK(db.CreateTable(s1, Sigma(s1, "a ->w b")));
  ASSERT_OK(db.CreateTable(s2, Sigma(s2, "c<x>")));
  ASSERT_OK(db.Insert("t1", Row({"1", "p", "u"})));
  ASSERT_OK(db.Insert("t1", Row({"2", "q", nullptr})));
  ASSERT_OK(db.Insert("t1", Row({"3", "r", "w"})));
  ASSERT_OK(db.Insert("t2", Row({"k1", "v1"})));
  ASSERT_OK(db.Insert("t2", Row({"k2", nullptr})));

  ASSERT_OK_AND_ASSIGN(const StoredTable* t1, db.Find("t1"));
  ASSERT_OK_AND_ASSIGN(const StoredTable* t2, db.Find("t2"));
  const TableState before1(*t1);
  const TableState before2(*t2);

  // A transaction that inserts (minting fresh dictionary codes),
  // updates, and deletes across both tables — then aborts.
  ASSERT_OK(db.Begin());
  ASSERT_OK(db.Insert("t1", Row({"4", "s", "new-value"})));
  ASSERT_OK_AND_ASSIGN(
      int changed,
      db.Update("t1", std::vector<ColumnCondition>{{0, Value::Str("1")}},
                2, Value::Str("fresh")));
  EXPECT_EQ(changed, 1);
  ASSERT_OK_AND_ASSIGN(
      int removed,
      db.Delete("t1", std::vector<ColumnCondition>{{0, Value::Str("2")}}));
  EXPECT_EQ(removed, 1);
  ASSERT_OK(db.Insert("t2", Row({"k3", "v3"})));
  ASSERT_OK_AND_ASSIGN(
      removed,
      db.Delete("t2", std::vector<ColumnCondition>{{0, Value::Str("k1")}}));
  EXPECT_EQ(removed, 1);
  ASSERT_OK(db.Rollback());

  before1.ExpectRestored(*t1);
  before2.ExpectRestored(*t2);
}

// Satellite regression: a rejected UPDATE used to leak the dictionary
// entry it minted for the new value ("dead codes"). The statement
// rollback now trims the dictionaries back to their pre-statement
// high-water marks, so the table is bit-identical — dictionaries
// included — after the rejection.
TEST(TxnTest, RejectedUpdateRetiresMintedDictionaryCodes) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("abc", "abc");
  ASSERT_OK(db.CreateTable(schema, Sigma(schema, "a ->w b")));
  ASSERT_OK(db.Insert("T", Row({"1", "x", "p"})));
  ASSERT_OK(db.Insert("T", Row({"1", "x", "q"})));

  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  const TableState before(*stored);
  const int dict_before = stored->columns().dictionary_size(1);

  // Updating b on only one of the two a=1 rows breaks a ->w b. The new
  // value "never-seen" is minted during the write, then must be retired.
  auto rejected = db.Update(
      "T", std::vector<ColumnCondition>{{2, Value::Str("p")}}, 1,
      Value::Str("never-seen"));
  ASSERT_FALSE(rejected.ok());

  EXPECT_EQ(stored->columns().dictionary_size(1), dict_before);
  EXPECT_EQ(stored->columns().LookupCode(1, Value::Str("never-seen")),
            EncodedTable::kMissingCode);
  before.ExpectRestored(*stored);
}

TEST(TxnTest, RejectedStatementInsideTransactionRollsBackOnlyItself) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("ab", "ab");
  ASSERT_OK(db.CreateTable(schema, Sigma(schema, "c<a>")));
  ASSERT_OK(db.Insert("T", Row({"1", "x"})));

  ASSERT_OK(db.Begin());
  ASSERT_OK(db.Insert("T", Row({"2", "y"})));
  // Key collision with the committed row: statement rejected, the
  // transaction stays open with the prior insert intact.
  EXPECT_FALSE(db.Insert("T", Row({"1", "z"})).ok());
  EXPECT_TRUE(db.InTransaction());
  auto bad_update = db.Update(
      "T", std::vector<ColumnCondition>{{0, Value::Str("2")}}, 0,
      Value::Str("1"));
  EXPECT_FALSE(bad_update.ok());
  ASSERT_OK(db.Commit());

  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->num_rows(), 2);
  EXPECT_EQ(stored->DecodeRow(1)[0], Value::Str("2"));
  EXPECT_OK(stored->enforcer().CheckInvariants());
}

TEST(TxnTest, TransactionGuardRollsBackOnScopeExit) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("ab", "a");
  ASSERT_OK(db.CreateTable(schema, ConstraintSet()));
  ASSERT_OK(db.Insert("T", Row({"1", "x"})));
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  const TableState before(*stored);

  {
    TransactionGuard txn(&db);
    ASSERT_OK(txn.begin_status());
    ASSERT_OK(db.Insert("T", Row({"2", "y"})));
    EXPECT_EQ(stored->num_rows(), 2);
    // No Commit(): the guard aborts on scope exit.
  }
  EXPECT_FALSE(db.InTransaction());
  before.ExpectRestored(*stored);

  {
    TransactionGuard txn(&db);
    ASSERT_OK(txn.begin_status());
    ASSERT_OK(db.Insert("T", Row({"2", "y"})));
    ASSERT_OK(txn.Commit());
  }
  EXPECT_EQ(stored->num_rows(), 2);
}

TEST(TxnTest, NoNestingAndDdlBarred) {
  WriterScope writer;
  Database db;
  TableSchema schema = Schema("ab", "a");
  ASSERT_OK(db.CreateTable(schema, ConstraintSet()));
  EXPECT_FALSE(db.Commit().ok());    // no transaction open
  EXPECT_FALSE(db.Rollback().ok());  // no transaction open
  ASSERT_OK(db.Begin());
  EXPECT_FALSE(db.Begin().ok());  // transactions do not nest
  TableSchema other = TableSchema::MakeCompact("U", "a", "").value();
  EXPECT_FALSE(db.CreateTable(other, ConstraintSet()).ok());
  EXPECT_FALSE(db.DropTable("T").ok());
  EXPECT_FALSE(db.IngestTable(Rows(schema, {"01"}), ConstraintSet()).ok());
  ASSERT_OK(db.Rollback());
  // A failed TransactionGuard (nested begin) must not roll back the
  // outer transaction on destruction.
  ASSERT_OK(db.Begin());
  ASSERT_OK(db.Insert("T", Row({"1", "x"})));
  { TransactionGuard nested(&db); EXPECT_FALSE(nested.begin_status().ok()); }
  EXPECT_TRUE(db.InTransaction());
  ASSERT_OK(db.Commit());
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  EXPECT_EQ(stored->num_rows(), 1);
}

TEST(TxnTest, SqlBeginCommitRollbackVerbs) {
  WriterScope writer;
  Database db;
  SqlSession session(&db);
  ASSERT_OK(session
                .ExecuteScript(
                    "CREATE TABLE t (a TEXT NOT NULL, b TEXT);"
                    "BEGIN TRANSACTION;"
                    "INSERT INTO t VALUES ('1', 'x'), ('2', 'y');"
                    "ROLLBACK;")
                .status());
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("t"));
  EXPECT_EQ(stored->num_rows(), 0);

  ASSERT_OK(session
                .ExecuteScript(
                    "BEGIN;"
                    "INSERT INTO t VALUES ('1', 'x');"
                    "UPDATE t SET b = 'z' WHERE a = '1';"
                    "COMMIT;")
                .status());
  EXPECT_EQ(stored->num_rows(), 1);
  EXPECT_EQ(stored->DecodeRow(0)[1], Value::Str("z"));

  EXPECT_FALSE(session.Execute("COMMIT;").ok());  // nothing open
  ASSERT_OK(session.Execute("BEGIN WORK;").status());
  EXPECT_FALSE(session.Execute("DROP TABLE t;").ok());  // DDL barred
  ASSERT_OK(session.Execute("COMMIT;").status());
}

// ------------------------------------------------------------------
// The differential mutation-sequence harness (tentpole satellite):
// random interleavings of INSERT / UPDATE / DELETE — including
// rejected statements and aborted transactions — executed against the
// engine AND simulated on a row-major reference table with the
// literal-transcription oracle deciding accept/reject. After every
// operation the engine's materialized state must equal the reference
// exactly, and CheckInvariants() must hold; after every rollback the
// restored state must be bit-identical to the pre-Begin capture.

struct Reference {
  TableSchema schema;
  ConstraintSet sigma;
  Table table;

  bool SatisfiesSigma(const Table& t) const {
    for (const auto& fd : sigma.fds()) {
      if (!OracleSatisfiesFd(t, fd)) return false;
    }
    for (const auto& key : sigma.keys()) {
      if (!OracleSatisfiesKey(t, key)) return false;
    }
    return true;
  }

  bool ApplyInsert(const Tuple& row) {
    if (ValidateRowAgainst(table, row, sigma).has_value()) return false;
    EXPECT_OK(table.AddRow(row));
    return true;
  }

  // Mirrors Database::Update semantics: matched on marker equality,
  // changed where the cell differs, NFS check, whole-statement
  // post-image validation.
  bool ApplyUpdate(const std::vector<ColumnCondition>& conds,
                   AttributeId col, const Value& value) {
    std::vector<int> changed;
    for (int i = 0; i < table.num_rows(); ++i) {
      if (MatchesConditions(table.row(i), conds) &&
          !(table.row(i)[col] == value)) {
        changed.push_back(i);
      }
    }
    if (changed.empty()) return true;  // no-op statement, accepted
    if (value.is_null() && schema.nfs().Contains(col)) return false;
    Table candidate(schema);
    size_t next = 0;
    for (int i = 0; i < table.num_rows(); ++i) {
      Tuple t = table.row(i);
      if (next < changed.size() && changed[next] == i) {
        t[col] = value;
        ++next;
      }
      EXPECT_OK(candidate.AddRow(std::move(t)));
    }
    if (!SatisfiesSigma(candidate)) return false;
    table = std::move(candidate);
    return true;
  }

  void ApplyDelete(const std::vector<ColumnCondition>& conds) {
    Table survivors(schema);
    for (int i = 0; i < table.num_rows(); ++i) {
      if (!MatchesConditions(table.row(i), conds)) {
        EXPECT_OK(survivors.AddRow(table.row(i)));
      }
    }
    table = std::move(survivors);
  }
};

TEST(TxnTest, DifferentialMutationSequences) {
  WriterScope writer;
  Rng rng(20260808);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 2 + static_cast<int>(rng.Uniform(0, 2));
    const TableSchema schema = RandomSchema(&rng, n);
    const ConstraintSet sigma = RandomSigma(&rng, n, 1, 1);
    Reference ref{schema, sigma, Table(schema)};
    Database db;
    ASSERT_OK(db.CreateTable(ref.schema, ref.sigma));
    ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));

    auto random_value = [&]() {
      return rng.Chance(0.2) ? Value::Null()
                             : Value::Int(rng.Uniform(0, 2));
    };
    auto random_conditions = [&]() {
      std::vector<ColumnCondition> conds;
      const int k = static_cast<int>(rng.Uniform(0, 1));
      for (int j = 0; j <= k; ++j) {
        conds.push_back({static_cast<AttributeId>(rng.Index(n)),
                         random_value()});
      }
      return conds;
    };

    bool in_txn = false;
    std::optional<Table> txn_backup;          // reference at Begin
    std::optional<TableState> txn_capture;    // engine at Begin

    for (int step = 0; step < 120; ++step) {
      const double roll = rng.NextDouble();
      if (!in_txn && roll < 0.12) {
        ASSERT_OK(db.Begin());
        in_txn = true;
        txn_backup = ref.table;
        txn_capture.emplace(*stored);
      } else if (in_txn && roll < 0.18) {
        if (rng.Chance(0.5)) {
          ASSERT_OK(db.Commit());
        } else {
          ASSERT_OK(db.Rollback());
          ref.table = std::move(*txn_backup);
          txn_capture->ExpectRestored(*stored);
        }
        in_txn = false;
        txn_backup.reset();
        txn_capture.reset();
      } else if (roll < 0.6) {
        std::vector<Value> values;
        for (int c = 0; c < n; ++c) values.push_back(random_value());
        const Tuple row{values};
        const bool engine_ok = db.Insert("T", row).ok();
        const bool oracle_ok = ref.ApplyInsert(row);
        ASSERT_EQ(engine_ok, oracle_ok)
            << "trial=" << trial << " step=" << step << " INSERT";
      } else if (roll < 0.82) {
        const auto conds = random_conditions();
        const AttributeId col = static_cast<AttributeId>(rng.Index(n));
        const Value value = random_value();
        const bool engine_ok = db.Update("T", conds, col, value).ok();
        const bool oracle_ok = ref.ApplyUpdate(conds, col, value);
        ASSERT_EQ(engine_ok, oracle_ok)
            << "trial=" << trial << " step=" << step << " UPDATE";
      } else {
        const auto conds = random_conditions();
        ASSERT_OK(db.Delete("T", conds).status());
        ref.ApplyDelete(conds);
      }
      ASSERT_OK(stored->enforcer().CheckInvariants())
          << "trial=" << trial << " step=" << step;
      ASSERT_TRUE(SameRows(stored->Materialize(), ref.table))
          << "trial=" << trial << " step=" << step << "\nengine:\n"
          << stored->Materialize().ToString() << "\nreference:\n"
          << ref.table.ToString();
    }
    if (in_txn) {
      ASSERT_OK(db.Rollback());
      ref.table = std::move(*txn_backup);
      txn_capture->ExpectRestored(*stored);
      ASSERT_TRUE(SameRows(stored->Materialize(), ref.table));
    }
  }
}

TEST(TxnTest, VacuumBarredMidTransaction) {
  WriterScope writer;
  // The undo log records pre-compaction codes and dictionary high-water
  // marks; letting compaction renumber codes underneath it would make
  // rollback restore garbage. So VACUUM refuses while a transaction is
  // open — through the API and through SQL alike.
  const TableSchema schema = Schema("ab");
  Database db;
  ASSERT_OK(db.IngestTable(Rows(schema, {"1x", "2y"}), ConstraintSet()));
  ASSERT_OK(db.Update("T", {{0, Value::Str("1")}}, 0, Value::Str("3")).status());

  ASSERT_OK(db.Begin());
  const Result<int> barred = db.CompactTable("T");
  ASSERT_FALSE(barred.ok());
  EXPECT_EQ(barred.status().code(), StatusCode::kFailedPrecondition);

  SqlSession sql(&db);
  const auto sql_barred = sql.Execute("VACUUM T;");
  ASSERT_FALSE(sql_barred.ok());
  EXPECT_EQ(sql_barred.status().code(), StatusCode::kFailedPrecondition);

  // The refusal must not have disturbed the open transaction.
  ASSERT_OK(db.Insert("T", Tuple({Value::Str("4"), Value::Str("z")})));
  ASSERT_OK(db.Commit());

  // Outside a transaction the same call reclaims the dead "1".
  ASSERT_OK_AND_ASSIGN(const int retired, db.CompactTable("T"));
  EXPECT_GE(retired, 1);
  ASSERT_OK_AND_ASSIGN(const StoredTable* stored, db.Find("T"));
  ASSERT_OK(stored->enforcer().CheckInvariants());
  EXPECT_EQ(stored->num_rows(), 3);

  // Rollback across a post-compaction statement restores the canonical
  // encoding bit-identically — the high-water marks were taken AFTER
  // the renumbering, so they are consistent with it.
  const TableState before(*stored);
  ASSERT_OK(db.Begin());
  ASSERT_OK(db.Insert("T", Tuple({Value::Str("5"), Value::Str("w")})));
  ASSERT_OK(db.Rollback());
  before.ExpectRestored(*stored);
}

TEST(TxnTest, CompactionCanonicalizesFingerprintsAcrossHistories) {
  WriterScope writer;
  // Two databases under the same constraints arrive at the same decoded
  // contents through different UPDATE/DELETE histories. Their encodings
  // (and so their code-keyed constraint indexes) differ — until
  // compaction canonicalizes both, after which columns are bit-identical
  // and the index fingerprints agree.
  const TableSchema schema = Schema("abc");
  const ConstraintSet sigma = Sigma(schema, "c<a>");

  Database straight;
  ASSERT_OK(straight.IngestTable(
      Rows(schema, {"1xp", "2yq", "3zr"}), sigma));

  Database detour;
  ASSERT_OK(detour.IngestTable(
      Rows(schema, {"7mp", "2yq", "8nn", "3zs"}), sigma));
  ASSERT_OK(detour.Update("T", {{0, Value::Str("7")}}, 0, Value::Str("1")).status());
  ASSERT_OK(detour.Update("T", {{0, Value::Str("1")}}, 1, Value::Str("x")).status());
  ASSERT_OK(detour.Delete("T", {{0, Value::Str("8")}}).status());
  ASSERT_OK(detour.Update("T", {{0, Value::Str("3")}}, 2, Value::Str("r")).status());

  ASSERT_OK_AND_ASSIGN(const StoredTable* a, straight.Find("T"));
  ASSERT_OK_AND_ASSIGN(const StoredTable* b, detour.Find("T"));
  ASSERT_TRUE(SameRows(a->Materialize(), b->Materialize()));
  ASSERT_FALSE(a->columns().BitIdentical(b->columns()));

  ASSERT_OK(straight.CompactTable("T").status());
  ASSERT_OK(detour.CompactTable("T").status());

  EXPECT_TRUE(a->columns().BitIdentical(b->columns()));
  EXPECT_EQ(a->enforcer().IndexFingerprint(),
            b->enforcer().IndexFingerprint());
  ASSERT_OK(a->enforcer().CheckInvariants());
  ASSERT_OK(b->enforcer().CheckInvariants());

  // Constraints still bite on the compacted encoding: the certain key
  // on `a` rejects a duplicate.
  ASSERT_FALSE(
      detour.Insert("T", Tuple({Value::Str("1"), Value::Str("q"),
                                Value::Str("q")}))
          .ok());
}

}  // namespace
}  // namespace sqlnf
