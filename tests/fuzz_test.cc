// Randomized robustness: malformed text into the parsers and CSV
// reader must produce error statuses, never crashes or accepted
// garbage; random valid inputs must round-trip.

#include <string>

#include <gtest/gtest.h>

#include "sqlnf/constraints/parser.h"
#include "sqlnf/constraints/serialize.h"
#include "sqlnf/engine/csv.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Schema;

std::string RandomText(Rng* rng, int max_len) {
  static const char kAlphabet[] =
      "abcxyz ,;<>{}->sw\n\"\t0123456789#NULL";
  int len = static_cast<int>(rng->Uniform(0, max_len));
  std::string out;
  for (int i = 0; i < len; ++i) {
    out += kAlphabet[rng->Index(sizeof(kAlphabet) - 1)];
  }
  return out;
}

TEST(FuzzTest, ConstraintParserNeverCrashes) {
  Rng rng(404);
  TableSchema schema = Schema("abc", "a");
  for (int i = 0; i < 3000; ++i) {
    std::string text = RandomText(&rng, 40);
    auto fd = ParseFd(schema, text);
    auto key = ParseKey(schema, text);
    auto c = ParseConstraint(schema, text);
    auto set = ParseConstraintSet(schema, text);
    // If a full constraint set parses, every piece must render/reparse.
    if (set.ok()) {
      for (const Constraint& parsed : set->All()) {
        auto again =
            ParseConstraint(schema, ConstraintToString(parsed, schema));
        ASSERT_OK(again.status()) << text;
      }
    }
  }
}

TEST(FuzzTest, CsvReaderNeverCrashes) {
  Rng rng(505);
  for (int i = 0; i < 2000; ++i) {
    std::string text = RandomText(&rng, 80);
    auto table = ReadCsvString(text);
    if (table.ok()) {
      // Whatever parsed must serialize and reparse to the same shape.
      auto again = ReadCsvString(WriteCsvString(*table));
      ASSERT_OK(again.status()) << text;
      EXPECT_EQ(again->num_rows(), table->num_rows());
      EXPECT_EQ(again->num_columns(), table->num_columns());
    }
  }
}

TEST(FuzzTest, DesignParserNeverCrashes) {
  Rng rng(606);
  for (int i = 0; i < 2000; ++i) {
    std::string text = "table t\nattrs a b c\n" + RandomText(&rng, 60);
    auto design = ParseDesign(text);
    if (design.ok()) {
      auto again = ParseDesign(FormatDesign(*design));
      ASSERT_OK(again.status()) << text;
    }
  }
}

TEST(FuzzTest, CsvRoundTripsRandomTables) {
  Rng rng(707);
  for (int trial = 0; trial < 100; ++trial) {
    int cols = 1 + static_cast<int>(rng.Uniform(0, 5));
    TableSchema schema =
        Schema(std::string("abcdef").substr(0, cols));
    Table t(schema);
    int rows = static_cast<int>(rng.Uniform(0, 12));
    for (int r = 0; r < rows; ++r) {
      std::vector<Value> row;
      for (int c = 0; c < cols; ++c) {
        switch (rng.Uniform(0, 3)) {
          case 0:
            row.push_back(Value::Null());
            break;
          case 1:
            row.push_back(Value::Str(RandomText(&rng, 10)));
            break;
          default:
            row.push_back(Value::Str(std::to_string(rng.Uniform(0, 99))));
        }
      }
      ASSERT_OK(t.AddRow(Tuple(std::move(row))));
    }
    if (t.num_rows() == 0) continue;  // header-only CSV re-parses empty
    auto back = ReadCsvString(WriteCsvString(t));
    ASSERT_OK(back.status());
    ASSERT_EQ(back->num_rows(), t.num_rows());
    // Values round-trip as strings; ⊥ stays ⊥.
    for (int r = 0; r < t.num_rows(); ++r) {
      for (int c = 0; c < cols; ++c) {
        EXPECT_EQ(back->row(r)[c].is_null(), t.row(r)[c].is_null());
        if (!t.row(r)[c].is_null()) {
          EXPECT_EQ(back->row(r)[c].ToString(), t.row(r)[c].ToString());
        }
      }
    }
  }
}

}  // namespace
}  // namespace sqlnf
