// Randomized robustness: malformed text into the parsers and CSV
// reader must produce error statuses, never crashes or accepted
// garbage; random valid inputs must round-trip.

#include <string>

#include <gtest/gtest.h>

#include "sqlnf/constraints/parser.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/constraints/serialize.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/engine/csv.h"
#include "sqlnf/engine/validate.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Schema;

std::string RandomText(Rng* rng, int max_len) {
  static const char kAlphabet[] =
      "abcxyz ,;<>{}->sw\n\"\t0123456789#NULL";
  int len = static_cast<int>(rng->Uniform(0, max_len));
  std::string out;
  for (int i = 0; i < len; ++i) {
    out += kAlphabet[rng->Index(sizeof(kAlphabet) - 1)];
  }
  return out;
}

TEST(FuzzTest, ConstraintParserNeverCrashes) {
  Rng rng(404);
  TableSchema schema = Schema("abc", "a");
  for (int i = 0; i < 3000; ++i) {
    std::string text = RandomText(&rng, 40);
    auto fd = ParseFd(schema, text);
    auto key = ParseKey(schema, text);
    auto c = ParseConstraint(schema, text);
    auto set = ParseConstraintSet(schema, text);
    // If a full constraint set parses, every piece must render/reparse.
    if (set.ok()) {
      for (const Constraint& parsed : set->All()) {
        auto again =
            ParseConstraint(schema, ConstraintToString(parsed, schema));
        ASSERT_OK(again.status()) << text;
      }
    }
  }
}

TEST(FuzzTest, CsvReaderNeverCrashes) {
  Rng rng(505);
  for (int i = 0; i < 2000; ++i) {
    std::string text = RandomText(&rng, 80);
    auto table = ReadCsvString(text);
    if (table.ok()) {
      // Whatever parsed must serialize and reparse to the same shape.
      auto again = ReadCsvString(WriteCsvString(*table));
      ASSERT_OK(again.status()) << text;
      EXPECT_EQ(again->num_rows(), table->num_rows());
      EXPECT_EQ(again->num_columns(), table->num_columns());
    }
  }
}

TEST(FuzzTest, DesignParserNeverCrashes) {
  Rng rng(606);
  for (int i = 0; i < 2000; ++i) {
    std::string text = "table t\nattrs a b c\n" + RandomText(&rng, 60);
    auto design = ParseDesign(text);
    if (design.ok()) {
      auto again = ParseDesign(FormatDesign(*design));
      ASSERT_OK(again.status()) << text;
    }
  }
}

TEST(FuzzTest, CsvRoundTripsRandomTables) {
  Rng rng(707);
  for (int trial = 0; trial < 100; ++trial) {
    int cols = 1 + static_cast<int>(rng.Uniform(0, 5));
    TableSchema schema =
        Schema(std::string("abcdef").substr(0, cols));
    Table t(schema);
    int rows = static_cast<int>(rng.Uniform(0, 12));
    for (int r = 0; r < rows; ++r) {
      std::vector<Value> row;
      for (int c = 0; c < cols; ++c) {
        switch (rng.Uniform(0, 3)) {
          case 0:
            row.push_back(Value::Null());
            break;
          case 1:
            row.push_back(Value::Str(RandomText(&rng, 10)));
            break;
          default:
            row.push_back(Value::Str(std::to_string(rng.Uniform(0, 99))));
        }
      }
      ASSERT_OK(t.AddRow(Tuple(std::move(row))));
    }
    if (t.num_rows() == 0) continue;  // header-only CSV re-parses empty
    auto back = ReadCsvString(WriteCsvString(t));
    ASSERT_OK(back.status());
    ASSERT_EQ(back->num_rows(), t.num_rows());
    // Values round-trip as strings; ⊥ stays ⊥.
    for (int r = 0; r < t.num_rows(); ++r) {
      for (int c = 0; c < cols; ++c) {
        EXPECT_EQ(back->row(r)[c].is_null(), t.row(r)[c].is_null());
        if (!t.row(r)[c].is_null()) {
          EXPECT_EQ(back->row(r)[c].ToString(), t.row(r)[c].ToString());
        }
      }
    }
  }
}

// Any table the CSV reader accepts — including ones parsed from random
// garbage — must flow through the encoded validators without crashing,
// and their verdicts must match the all-pairs reference checker.
TEST(FuzzTest, CsvTablesThroughEncodedValidators) {
  Rng rng(808);
  int validated = 0;
  for (int i = 0; i < 2000; ++i) {
    auto table = ReadCsvString(RandomText(&rng, 80));
    if (!table.ok() || table->num_columns() == 0) continue;
    ++validated;
    const int n = table->num_columns();
    const EncodedTable enc(*table);
    for (int c = 0; c < 2; ++c) {
      FunctionalDependency fd;
      fd.lhs = testing::RandomSubset(&rng, n);
      fd.rhs = AttributeSet::Single(
          static_cast<AttributeId>(rng.Index(n)));
      KeyConstraint key;
      key.attrs = testing::RandomSubset(&rng, n, 0.5);
      if (key.attrs.empty()) key.attrs = fd.rhs;
      for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
        fd.mode = mode;
        key.mode = mode;
        EXPECT_EQ(ValidateFdEncoded(enc, fd), Satisfies(*table, fd))
            << "iter=" << i;
        EXPECT_EQ(ValidateKeyEncoded(enc, key), Satisfies(*table, key))
            << "iter=" << i;
        if (mode == Mode::kPossible) {
          EXPECT_EQ(ValidateFdPartition(enc, fd), Satisfies(*table, fd))
              << "iter=" << i;
          EXPECT_EQ(ValidateKeyPartition(enc, key), Satisfies(*table, key))
              << "iter=" << i;
        }
      }
    }
  }
  // The garbage alphabet parses often enough for this to bite.
  EXPECT_GT(validated, 50);
}

}  // namespace
}  // namespace sqlnf
