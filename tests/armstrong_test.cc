// Armstrong relations for the idealized relational case: the instance
// satisfies exactly the implied FDs.

#include "sqlnf/normalform/armstrong.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/reasoning/implication.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::RandomSubset;
using testing::Schema;
using testing::Sigma;

TEST(ArmstrongTest, RejectsNullableSchemas) {
  TableSchema schema = Schema("ab", "a");
  EXPECT_FALSE(BuildArmstrongRelation({schema, ConstraintSet()}).ok());
}

TEST(ArmstrongTest, RejectsOversizedSchemas) {
  std::vector<std::string> names;
  for (int i = 0; i < 20; ++i) names.push_back("a" + std::to_string(i));
  TableSchema schema =
      TableSchema::Make("t", names, names).value();
  EXPECT_FALSE(BuildArmstrongRelation({schema, ConstraintSet()}).ok());
}

TEST(ArmstrongTest, EmptySigmaYieldsFdFreeRelation) {
  TableSchema schema = Schema("abc", "abc");
  ASSERT_OK_AND_ASSIGN(Table armstrong,
                       BuildArmstrongRelation({schema, ConstraintSet()}));
  // Every non-trivial FD must fail; every trivial FD must hold.
  EXPECT_FALSE(Satisfies(armstrong, testing::Fd(schema, "a ->s b")));
  EXPECT_FALSE(Satisfies(armstrong, testing::Fd(schema, "ab ->s c")));
  EXPECT_TRUE(Satisfies(armstrong, testing::Fd(schema, "ab ->s a")));
}

TEST(ArmstrongTest, AllFdsImpliedYieldsSingleton) {
  TableSchema schema = Schema("ab", "ab");
  SchemaDesign design{schema, Sigma(schema, "{} ->s ab")};
  ASSERT_OK_AND_ASSIGN(Table armstrong, BuildArmstrongRelation(design));
  EXPECT_GE(armstrong.num_rows(), 1);
  EXPECT_TRUE(Satisfies(armstrong, testing::Fd(schema, "{} ->s ab")));
}

class ArmstrongPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ArmstrongPropertyTest, SatisfiesExactlyTheImpliedFds) {
  Rng rng(GetParam() * 47 + 23);
  for (int trial = 0; trial < 12; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    std::string names = std::string("abcdef").substr(0, n);
    TableSchema schema = Schema(names, names);
    ConstraintSet sigma;
    for (int f = 0; f < 3; ++f) {
      AttributeSet lhs = RandomSubset(&rng, n, 0.35);
      AttributeSet rhs = RandomSubset(&rng, n, 0.35);
      if (rhs.empty()) continue;
      sigma.AddFd(FunctionalDependency::Possible(lhs, rhs));
    }
    SchemaDesign design{schema, sigma};
    ASSERT_OK_AND_ASSIGN(Table armstrong, BuildArmstrongRelation(design));
    Implication imp(schema, sigma);

    // Exactness: Armstrong satisfies an FD iff Σ implies it (exhaustive
    // over all single-attribute RHS FDs).
    for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
      AttributeSet lhs = AttributeSet::FromBits(bits);
      for (AttributeId a = 0; a < n; ++a) {
        FunctionalDependency fd =
            FunctionalDependency::Possible(lhs, AttributeSet::Single(a));
        EXPECT_EQ(Satisfies(armstrong, fd), imp.Implies(fd))
            << fd.ToString(schema) << " over " << sigma.ToString(schema)
            << "\n"
            << armstrong.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArmstrongPropertyTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace sqlnf
