// net/server.h + net/service.h over a real loopback socket: endpoint
// round trips, machine-readable error JSON, framing rejects (400/413),
// keep-alive connection reuse, concurrent clients hammering reads and
// writes (under the `concurrency` ctest label, TSan in CI), and clean
// idempotent shutdown with connections in flight.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/session.h"
#include "sqlnf/net/client.h"
#include "sqlnf/net/server.h"
#include "sqlnf/net/service.h"
#include "sqlnf/util/json.h"
#include "test_util.h"

namespace sqlnf {
namespace {

/// A database + service + listening server on an ephemeral port.
struct TestServer {
  Database db;
  SessionRegistry registry{&db};
  SqlnfService service{&registry};
  HttpServer server;

  explicit TestServer(HttpServerOptions options = {})
      : server([this](const HttpRequest& r) { return service.Handle(r); },
               options) {
    Status started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
};

TEST(ServerTest, EndpointsRoundTrip) {
  TestServer ts;
  ASSERT_OK_AND_ASSIGN(HttpConnection conn,
                       HttpConnection::Open(ts.server.port()));

  ASSERT_OK_AND_ASSIGN(
      HttpClientResponse r,
      conn.Post("/query",
                R"({"sql":"CREATE TABLE t (a TEXT, b TEXT);)"
                R"(INSERT INTO t VALUES ('1', 'x'), ('1', 'y');"})"));
  EXPECT_EQ(r.status, 200);
  ASSERT_OK_AND_ASSIGN(JsonValue v, ParseJson(r.body));
  EXPECT_TRUE(v.Find("ok")->bool_value());

  ASSERT_OK_AND_ASSIGN(
      r, conn.Post("/query", R"({"sql":"SELECT a, b FROM t;"})"));
  EXPECT_EQ(r.status, 200);
  ASSERT_OK_AND_ASSIGN(v, ParseJson(r.body));
  const JsonValue& stmt = v.Find("statements")->items()[0];
  EXPECT_EQ(stmt.Find("affected")->int_value(), 2);
  EXPECT_EQ(stmt.Find("rows")->Find("data")->items().size(), 2u);

  ASSERT_OK_AND_ASSIGN(
      r, conn.Post("/validate",
                   R"({"table":"t","constraints":"a ->w b"})"));
  EXPECT_EQ(r.status, 200);
  ASSERT_OK_AND_ASSIGN(v, ParseJson(r.body));
  EXPECT_EQ(v.Find("violated")->int_value(), 1);

  ASSERT_OK_AND_ASSIGN(
      r, conn.Post("/discover", R"({"table":"t"})"));
  EXPECT_EQ(r.status, 200);
  ASSERT_OK_AND_ASSIGN(v, ParseJson(r.body));
  EXPECT_EQ(v.Find("rows")->int_value(), 2);

  ASSERT_OK_AND_ASSIGN(
      r, conn.Post("/normalize", R"({"table":"t"})"));
  EXPECT_EQ(r.status, 200);
  ASSERT_OK_AND_ASSIGN(v, ParseJson(r.body));
  EXPECT_NE(v.Find("design"), nullptr);

  ASSERT_OK_AND_ASSIGN(r, conn.Get("/health"));
  EXPECT_EQ(r.status, 200);
  ASSERT_OK_AND_ASSIGN(v, ParseJson(r.body));
  EXPECT_EQ(v.Find("tables")->int_value(), 1);
}

TEST(ServerTest, ErrorsAreMachineReadable) {
  TestServer ts;
  ASSERT_OK_AND_ASSIGN(HttpConnection conn,
                       HttpConnection::Open(ts.server.port()));

  // SQL parse error → 400 with position fields.
  ASSERT_OK_AND_ASSIGN(HttpClientResponse r,
                       conn.Post("/query", R"({"sql":"SELEC nope;"})"));
  EXPECT_EQ(r.status, 400);
  ASSERT_OK_AND_ASSIGN(JsonValue v, ParseJson(r.body));
  EXPECT_FALSE(v.Find("ok")->bool_value());
  const JsonValue* error = v.Find("error");
  EXPECT_EQ(error->Find("code")->str_value(), "ParseError");
  EXPECT_EQ(error->Find("statement_index")->int_value(), 0);
  EXPECT_EQ(error->Find("line")->int_value(), 1);

  // Unknown table → 404; unknown endpoint → 404; wrong method → 405;
  // body not JSON → 400; missing field → 400.
  ASSERT_OK_AND_ASSIGN(r,
                       conn.Post("/normalize", R"({"table":"nope"})"));
  EXPECT_EQ(r.status, 404);
  ASSERT_OK_AND_ASSIGN(r, conn.Post("/frobnicate", "{}"));
  EXPECT_EQ(r.status, 404);
  ASSERT_OK_AND_ASSIGN(r, conn.Get("/query"));
  EXPECT_EQ(r.status, 405);
  ASSERT_OK_AND_ASSIGN(r, conn.Post("/query", "not json"));
  EXPECT_EQ(r.status, 400);
  ASSERT_OK_AND_ASSIGN(r, conn.Post("/query", R"({"nosql":true})"));
  EXPECT_EQ(r.status, 400);

  // A transaction left open is rolled back and reported as 409.
  ASSERT_OK_AND_ASSIGN(
      r, conn.Post("/query",
                   R"({"sql":"CREATE TABLE u (a TEXT); BEGIN; )"
                   R"(INSERT INTO u VALUES ('z');"})"));
  EXPECT_EQ(r.status, 409);
  ASSERT_OK_AND_ASSIGN(
      r, conn.Post("/query", R"({"sql":"SELECT * FROM u;"})"));
  ASSERT_OK_AND_ASSIGN(v, ParseJson(r.body));
  EXPECT_EQ(v.Find("statements")
                ->items()[0]
                .Find("affected")
                ->int_value(),
            0);
}

TEST(ServerTest, OversizedBodyRejectedWith413) {
  HttpServerOptions options;
  options.limits.max_body_bytes = 256;
  TestServer ts(options);
  ASSERT_OK_AND_ASSIGN(HttpConnection conn,
                       HttpConnection::Open(ts.server.port()));
  const std::string big(1024, 'x');
  ASSERT_OK_AND_ASSIGN(
      HttpClientResponse r,
      conn.Post("/query", R"({"sql":")" + big + R"("})"));
  EXPECT_EQ(r.status, 413);
  EXPECT_EQ(r.headers.at("connection"), "close");
}

TEST(ServerTest, MalformedRequestLineRejectedWith400) {
  TestServer ts;
  ASSERT_OK_AND_ASSIGN(HttpConnection conn,
                       HttpConnection::Open(ts.server.port()));
  ASSERT_OK_AND_ASSIGN(HttpClientResponse r,
                       conn.RoundTrip("GARBAGE\r\n\r\n"));
  EXPECT_EQ(r.status, 400);
}

TEST(ServerTest, KeepAliveServesManyRequestsPerConnection) {
  TestServer ts;
  ASSERT_OK_AND_ASSIGN(HttpConnection conn,
                       HttpConnection::Open(ts.server.port()));
  ASSERT_OK_AND_ASSIGN(
      HttpClientResponse r,
      conn.Post("/query", R"({"sql":"CREATE TABLE t (a TEXT);"})"));
  ASSERT_EQ(r.status, 200);
  for (int i = 0; i < 32; ++i) {
    ASSERT_OK_AND_ASSIGN(r, conn.Get("/health"));
    ASSERT_EQ(r.status, 200);
  }
}

// Many clients race reads and writes through the one service; every
// write lands exactly once and readers always get a committed count.
TEST(ServerTest, ConcurrentClientsSerializeCorrectly) {
  TestServer ts;
  {
    ASSERT_OK_AND_ASSIGN(HttpConnection conn,
                         HttpConnection::Open(ts.server.port()));
    ASSERT_OK_AND_ASSIGN(
        HttpClientResponse r,
        conn.Post("/query", R"({"sql":"CREATE TABLE t (a TEXT);"})"));
    ASSERT_EQ(r.status, 200);
  }
  constexpr int kClients = 4;
  constexpr int kWritesEach = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto conn = HttpConnection::Open(ts.server.port());
      if (!conn.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kWritesEach; ++i) {
        const std::string value = std::to_string(c * 100 + i);
        auto w = conn->Post(
            "/query",
            R"({"sql":"INSERT INTO t VALUES (')" + value + R"(');"})");
        if (!w.ok() || w->status != 200) ++failures;
        auto read =
            conn->Post("/query", R"({"sql":"SELECT * FROM t;"})");
        if (!read.ok() || read->status != 200) ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  ASSERT_OK_AND_ASSIGN(HttpConnection conn,
                       HttpConnection::Open(ts.server.port()));
  ASSERT_OK_AND_ASSIGN(
      HttpClientResponse r,
      conn.Post("/query", R"({"sql":"SELECT * FROM t;"})"));
  ASSERT_OK_AND_ASSIGN(JsonValue v, ParseJson(r.body));
  EXPECT_EQ(v.Find("statements")
                ->items()[0]
                .Find("affected")
                ->int_value(),
            kClients * kWritesEach);
}

TEST(ServerTest, StopIsCleanAndIdempotentWithConnectionsOpen) {
  TestServer ts;
  ASSERT_OK_AND_ASSIGN(HttpConnection idle,
                       HttpConnection::Open(ts.server.port()));
  ASSERT_OK_AND_ASSIGN(HttpClientResponse r, idle.Get("/health"));
  EXPECT_EQ(r.status, 200);

  ts.server.Stop();  // with `idle` still connected
  EXPECT_FALSE(idle.Get("/health").ok());
  ts.server.Stop();  // second stop is a no-op
}

}  // namespace
}  // namespace sqlnf
