// util/json.h: the reader handles RFC 8259 documents (with int64-exact
// numbers and \u escapes), rejects malformed and hostile inputs with
// ParseError instead of crashing, and the writer's output parses back
// to the same tree — the property the HTTP API depends on.

#include <string>

#include <gtest/gtest.h>

#include "sqlnf/util/json.h"
#include "test_util.h"

namespace sqlnf {
namespace {

TEST(JsonParseTest, Scalars) {
  ASSERT_OK_AND_ASSIGN(JsonValue v, ParseJson("null"));
  EXPECT_TRUE(v.is_null());
  ASSERT_OK_AND_ASSIGN(v, ParseJson("true"));
  EXPECT_TRUE(v.bool_value());
  ASSERT_OK_AND_ASSIGN(v, ParseJson("-42"));
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.int_value(), -42);
  ASSERT_OK_AND_ASSIGN(v, ParseJson("2.5"));
  EXPECT_FALSE(v.is_int());
  EXPECT_DOUBLE_EQ(v.double_value(), 2.5);
  ASSERT_OK_AND_ASSIGN(v, ParseJson("\"a\\nb\""));
  EXPECT_EQ(v.str_value(), "a\nb");
}

TEST(JsonParseTest, Int64ExactBoundaries) {
  ASSERT_OK_AND_ASSIGN(JsonValue v, ParseJson("9223372036854775807"));
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.int_value(), INT64_MAX);
  ASSERT_OK_AND_ASSIGN(v, ParseJson("-9223372036854775808"));
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.int_value(), INT64_MIN);
  // One past the edge degrades to double, not garbage.
  ASSERT_OK_AND_ASSIGN(v, ParseJson("9223372036854775808"));
  EXPECT_TRUE(v.is_number());
  EXPECT_FALSE(v.is_int());
}

TEST(JsonParseTest, NestedStructure) {
  ASSERT_OK_AND_ASSIGN(
      JsonValue v,
      ParseJson(R"({"sql":"SELECT 1","threads":4,"tags":["a","b"]})"));
  ASSERT_TRUE(v.is_object());
  ASSERT_OK_AND_ASSIGN(std::string sql, v.GetString("sql"));
  EXPECT_EQ(sql, "SELECT 1");
  EXPECT_EQ(v.GetInt("threads", 1), 4);
  EXPECT_EQ(v.GetInt("absent", 7), 7);
  const JsonValue* tags = v.Find("tags");
  ASSERT_NE(tags, nullptr);
  ASSERT_EQ(tags->items().size(), 2u);
  EXPECT_EQ(tags->items()[1].str_value(), "b");
}

TEST(JsonParseTest, UnicodeEscapes) {
  ASSERT_OK_AND_ASSIGN(JsonValue v, ParseJson("\"\\u00e9\\u0041\""));
  EXPECT_EQ(v.str_value(), "\xc3\xa9"
                           "A");
}

TEST(JsonParseTest, RejectsMalformed) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing garbage
  EXPECT_FALSE(ParseJson("{\"a\":1} x").ok());
}

TEST(JsonParseTest, DepthCapStopsHostileNesting) {
  std::string deep(10000, '[');
  deep += std::string(10000, ']');
  Result<JsonValue> r = ParseJson(deep);  // must not overflow the stack
  EXPECT_FALSE(r.ok());
}

TEST(JsonWriterTest, ComposesAndRoundTrips) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(true);
  w.Key("name");
  w.String("he said \"hi\"\n");
  w.Key("counts");
  w.BeginArray();
  w.Int(1);
  w.Int(-2);
  w.Null();
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("x");
  w.Double(0.5);
  w.EndObject();
  w.EndObject();
  const std::string text = std::move(w).Take();

  ASSERT_OK_AND_ASSIGN(JsonValue v, ParseJson(text));
  EXPECT_TRUE(v.Find("ok")->bool_value());
  EXPECT_EQ(v.Find("name")->str_value(), "he said \"hi\"\n");
  ASSERT_EQ(v.Find("counts")->items().size(), 3u);
  EXPECT_EQ(v.Find("counts")->items()[1].int_value(), -2);
  EXPECT_TRUE(v.Find("counts")->items()[2].is_null());
  EXPECT_DOUBLE_EQ(v.Find("nested")->Find("x")->double_value(), 0.5);
}

TEST(JsonWriterTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(JsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  const std::string quoted = JsonQuote(std::string("\x01\t\n", 3));
  ASSERT_OK_AND_ASSIGN(JsonValue v, ParseJson(quoted));
  EXPECT_EQ(v.str_value(), std::string("\x01\t\n", 3));
}

}  // namespace
}  // namespace sqlnf
