// Engine substrate: CSV round-trips, relational operators, the grouped
// fast validators (cross-checked against the O(n²) reference), and DDL
// emission.

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/engine/csv.h"
#include "sqlnf/engine/ddl.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/engine/validate.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Fd;
using testing::Key;
using testing::RandomInstance;
using testing::RandomSchema;
using testing::Rows;
using testing::Schema;
using testing::Sigma;

TEST(CsvTest, ParsesHeaderAndNulls) {
  ASSERT_OK_AND_ASSIGN(
      Table t, ReadCsvString("a,b,c\n1,NULL,x\n2,y,\"NULL\"\n"));
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.schema().attribute_name(1), "b");
  EXPECT_TRUE(t.row(0)[1].is_null());
  EXPECT_EQ(t.row(1)[2], Value::Str("NULL"));  // quoted stays a string
}

TEST(CsvTest, QuotingAndEscapes) {
  ASSERT_OK_AND_ASSIGN(
      Table t, ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"));
  EXPECT_EQ(t.row(0)[0], Value::Str("x,y"));
  EXPECT_EQ(t.row(0)[1], Value::Str("he said \"hi\""));
}

TEST(CsvTest, EmbeddedNewlineInsideQuotes) {
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsvString("a\n\"line1\nline2\"\n"));
  EXPECT_EQ(t.row(0)[0], Value::Str("line1\nline2"));
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());           // arity
  EXPECT_FALSE(ReadCsvString("a\n\"unterminated\n").ok());  // quote
}

TEST(CsvTest, RejectsTextAfterClosingQuote) {
  // "abc"def used to silently parse as abcdef.
  auto r = ReadCsvString("a\n\"abc\"def\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("closing quote"), std::string::npos);
  // Re-opened quotes after a closed field are malformed too.
  EXPECT_FALSE(ReadCsvString("a\n\"abc\"\"def\"x\n").ok());
  EXPECT_FALSE(ReadCsvString("a\n\"\"x\n").ok());
  // The escaped-quote form stays valid.
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsvString("a\n\"ab\"\"cd\"\n"));
  EXPECT_EQ(t.row(0)[0].ToString(), "ab\"cd");
}

TEST(CsvTest, SkipsFullyEmptyRecords) {
  // A blank line mid-file used to become a bogus 1-field record and
  // fail with a misleading arity error.
  ASSERT_OK_AND_ASSIGN(Table t,
                       ReadCsvString("a,b\n1,2\n\n3,4\n\r\n5,6\n"));
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.row(1)[0].ToString(), "3");
  // A quoted empty field is still a real 1-field record.
  ASSERT_OK_AND_ASSIGN(Table one, ReadCsvString("a\n\"\"\n"));
  EXPECT_EQ(one.num_rows(), 1);
  EXPECT_EQ(one.row(0)[0].ToString(), "");
}

TEST(CsvTest, RoundTrip) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1_", "2x"});
  std::string csv = WriteCsvString(t);
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsvString(csv));
  EXPECT_EQ(back.num_rows(), 2);
  EXPECT_TRUE(back.row(0)[1].is_null());
  EXPECT_EQ(back.row(1)[1], Value::Str("x"));
}

TEST(CsvTest, RoundTripQuotesNullLookalikes) {
  TableSchema schema = Schema("a");
  Table t(schema);
  ASSERT_OK(t.AddRow(Tuple({Value::Str("NULL")})));
  std::string csv = WriteCsvString(t);
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsvString(csv));
  EXPECT_FALSE(back.row(0)[0].is_null());
  EXPECT_EQ(back.row(0)[0], Value::Str("NULL"));
}

TEST(CsvTest, FileRoundTrip) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"12", "3_"});
  const std::string path = ::testing::TempDir() + "/sqlnf_csv_test.csv";
  ASSERT_OK(WriteCsvFile(t, path));
  ASSERT_OK_AND_ASSIGN(Table back, ReadCsvFile(path));
  EXPECT_EQ(back.num_rows(), 2);
}

TEST(RelopsTest, SelectWhereAndAll) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1x", "2y", "1z"});
  Table ones = SelectWhere(
      t, [](const Tuple& row) { return row[0] == Value::Str("1"); });
  EXPECT_EQ(ones.num_rows(), 2);
  EXPECT_EQ(SelectAll(t).num_rows(), 3);
}

TEST(RelopsTest, CrossWithSequence) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1x", "2y"});
  ASSERT_OK_AND_ASSIGN(Table crossed, CrossWithSequence(t, 3, "new"));
  EXPECT_EQ(crossed.num_rows(), 6);
  EXPECT_EQ(crossed.num_columns(), 3);
  EXPECT_EQ(crossed.schema().attribute_name(0), "new");
  EXPECT_TRUE(crossed.schema().nfs().Contains(0));
  EXPECT_EQ(crossed.row(0)[0], Value::Int(1));
  EXPECT_EQ(crossed.row(5)[0], Value::Int(3));
  EXPECT_FALSE(CrossWithSequence(t, 0, "new").ok());
}

TEST(RelopsTest, UpdateWhere) {
  TableSchema schema = Schema("ab", "a");
  Table t = Rows(schema, {"1x", "1y", "2x"});
  ASSERT_OK_AND_ASSIGN(
      int changed,
      UpdateWhere(
          &t, [](const Tuple& row) { return row[0] == Value::Str("1"); },
          1, Value::Str("z")));
  EXPECT_EQ(changed, 2);
  EXPECT_EQ(t.row(0)[1], Value::Str("z"));
  EXPECT_EQ(t.row(2)[1], Value::Str("x"));
  // Setting an already-equal value does not count as a change.
  ASSERT_OK_AND_ASSIGN(
      int rechanged,
      UpdateWhere(
          &t, [](const Tuple& row) { return row[0] == Value::Str("1"); },
          1, Value::Str("z")));
  EXPECT_EQ(rechanged, 0);
  // NOT NULL columns refuse ⊥.
  EXPECT_FALSE(UpdateWhere(&t, [](const Tuple&) { return true; }, 0,
                           Value::Null())
                   .ok());
  EXPECT_FALSE(UpdateWhere(&t, [](const Tuple&) { return true; }, 9,
                           Value::Str("q"))
                   .ok());
}

TEST(RelopsTest, DeleteWhere) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1x", "2y", "1z"});
  int removed = DeleteWhere(
      &t, [](const Tuple& row) { return row[0] == Value::Str("1"); });
  EXPECT_EQ(removed, 2);
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.row(0)[1], Value::Str("y"));
}

TEST(RelopsTest, JoinAllReconstructs) {
  TableSchema schema = Schema("abc");
  Table t = Rows(schema, {"1xA", "2yB"});
  ASSERT_OK_AND_ASSIGN(Table left, ProjectMultiset(t, {0, 1}, "L"));
  ASSERT_OK_AND_ASSIGN(Table right, ProjectSet(t, {1, 2}, "R"));
  ASSERT_OK_AND_ASSIGN(Table joined, JoinAll({left, right}, "J"));
  EXPECT_EQ(joined.num_rows(), 2);
  EXPECT_EQ(joined.num_columns(), 3);
}

TEST(ValidateTest, MatchesReferenceOnPaperExamples) {
  TableSchema schema = Schema("oicp");
  Table fig5 = Rows(schema, {"1FAX", "1F_X", "3FAX", "3DKY"});
  EXPECT_TRUE(ValidateFd(fig5, Fd(schema, "ic ->w p")));
  EXPECT_FALSE(ValidateFd(fig5, Fd(schema, "ic ->w icp")));
  EXPECT_TRUE(ValidateFd(fig5, Fd(schema, "ic ->s p")));
  EXPECT_FALSE(ValidateKey(fig5, Key(schema, "c<ic>")));
  // All four rows are pairwise distinct, so the full p-key holds — but
  // rows 0,1 are weakly similar on everything, so the full c-key fails.
  EXPECT_TRUE(ValidateKey(fig5, Key(schema, "p<oicp>")));
  EXPECT_FALSE(ValidateKey(fig5, Key(schema, "c<oicp>")));

  Table dup = Rows(schema, {"1FAX", "1FAX"});
  EXPECT_FALSE(ValidateKey(dup, Key(schema, "p<oicp>")));
  EXPECT_FALSE(ValidateKey(dup, Key(schema, "c<oicp>")));
  EXPECT_TRUE(ValidateFd(dup, Fd(schema, "{} ->w oicp")));
}

TEST(ValidateTest, ViolationWitnessesAreReal) {
  TableSchema schema = Schema("abc");
  Table t = Rows(schema, {"1x_", "1xZ", "2yQ"});
  auto v = FindFdViolationFast(t, Fd(schema, "a ->w c"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->row1, 0);
  EXPECT_EQ(v->row2, 1);
}

class ValidatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ValidatorPropertyTest, FastValidatorsMatchReference) {
  Rng rng(GetParam() * 83 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema = RandomSchema(&rng, n);
    Table t = RandomInstance(&rng, schema, 15, 2, 0.3);
    for (int q = 0; q < 10; ++q) {
      FunctionalDependency fd;
      fd.lhs = testing::RandomSubset(&rng, n);
      fd.rhs = testing::RandomSubset(&rng, n);
      fd.mode = rng.Chance(0.5) ? Mode::kPossible : Mode::kCertain;
      EXPECT_EQ(ValidateFd(t, fd), Satisfies(t, fd))
          << fd.ToString(schema) << "\n" << t.ToString();
      KeyConstraint key{testing::RandomSubset(&rng, n, 0.5),
                        rng.Chance(0.5) ? Mode::kPossible
                                        : Mode::kCertain};
      EXPECT_EQ(ValidateKey(t, key), Satisfies(t, key))
          << key.ToString(schema) << "\n" << t.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorPropertyTest,
                         ::testing::Range(0, 6));

TEST(ValidateAllTest, ChecksNfsAndConstraints) {
  TableSchema schema = Schema("ab", "a");
  ConstraintSet sigma = Sigma(schema, "a ->w b; p<a>");
  EXPECT_TRUE(ValidateAll(Rows(schema, {"11", "22"}), sigma));
  EXPECT_FALSE(ValidateAll(Rows(schema, {"_1"}), sigma));
  EXPECT_FALSE(ValidateAll(Rows(schema, {"11", "12"}), sigma));
}

TEST(DdlTest, EmitCreateTable) {
  TableSchema schema =
      TableSchema::Make("purchase", {"item", "catalog", "price"},
                        {"item", "price"})
          .value();
  SchemaDesign design{schema, Sigma(schema, "c<item,price>; p<catalog>; "
                                            "c<catalog,price>; "
                                            "item,catalog ->w price")};
  std::string ddl = EmitCreateTable(design);
  EXPECT_NE(ddl.find("CREATE TABLE purchase"), std::string::npos);
  EXPECT_NE(ddl.find("item TEXT NOT NULL"), std::string::npos);
  EXPECT_NE(ddl.find("catalog TEXT,"), std::string::npos);
  EXPECT_NE(ddl.find("PRIMARY KEY (item, price)"), std::string::npos);
  EXPECT_NE(ddl.find("UNIQUE (catalog)"), std::string::npos);
  // c-key with nullable column → trigger comment.
  EXPECT_NE(ddl.find("trigger-based"), std::string::npos);
  // FDs are documented as comments.
  EXPECT_NE(ddl.find("-- FD"), std::string::npos);
}

}  // namespace
}  // namespace sqlnf
