// Predicate-fuzzer differential harness: random predicate TREES
// (nested OR/AND over comparison atoms — BETWEEN, IN, ⊥ literals,
// values absent from every dictionary) evaluated three independent
// ways on random tables:
//
//   1. the nested tree itself, recursively, on decoded tuples (the
//      literal oracle — no DNF, no codes),
//   2. MatchesPredicate on the tree's DNF flattening (row-major over
//      the engine's Predicate shape),
//   3. SelectRowsEncoded on the DNF against the dictionary encoding,
//      at threads ∈ {1, 2, 3, 8} × every SIMD dispatch level the
//      machine supports (compiled branch-free code intervals through
//      the simd_kernels.h scan kernels and the ParallelEmit count/fill
//      path).
//
// All paths must agree row for row — the SIMD level sweep is the
// executable form of the kernel bit-identity contract. A fourth pass
// re-runs the columnar selection after CompactDictionaries (canonical
// order-preserving re-encode) — same rows, now through the no-gather
// raw-code fast path.
//
// SQLNF_DIFF_ITERS (integer ≥ 1, default 1) multiplies the sweep; the
// nightly differential job runs ≥ 1000 trees.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/simd_kernels.h"
#include "sqlnf/core/table.h"
#include "sqlnf/engine/predicate.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/util/rng.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Schema;

int IterMultiplier() {
  const char* env = std::getenv("SQLNF_DIFF_ITERS");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v >= 1 ? v : 1;
}

int ScaledIters(int base) { return base * IterMultiplier(); }

// Every SIMD dispatch level this machine can run, scalar first. The
// scalar kernels are the differential oracle; each wider level must be
// bit-identical to them.
std::vector<simd::Level> SweepLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() >= simd::Level::kSimd128) {
    levels.push_back(simd::Level::kSimd128);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

// Unpins the dispatch level even when an ASSERT bails out of the sweep.
struct LevelSweepGuard {
  ~LevelSweepGuard() { simd::ClearLevelForTesting(); }
};

// ---------------------------------------------------------------- data

// Mixed-kind instance: small-domain ints AND strings in every column
// (so ordered comparisons cross the Int < Str kind boundary), ⊥
// anywhere.
Table RandomMixedInstance(Rng* rng, const TableSchema& schema, int rows,
                          int domain) {
  Table table(schema);
  for (int r = 0; r < rows; ++r) {
    std::vector<Value> values;
    for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
      const double roll = rng->NextDouble();
      if (roll < 0.2) {
        values.push_back(Value::Null());
      } else if (roll < 0.6) {
        values.push_back(Value::Int(rng->Uniform(0, domain - 1)));
      } else {
        values.push_back(Value::Str(
            std::string(1, static_cast<char>('a' + rng->Uniform(0, 4)))));
      }
    }
    auto st = table.AddRow(Tuple(std::move(values)));
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return table;
}

// Operand pool: in-domain ints, strings, ⊥, and values no dictionary
// has ever seen (large ints / unused strings).
Value RandomOperand(Rng* rng, int domain) {
  const double roll = rng->NextDouble();
  if (roll < 0.15) return Value::Null();
  if (roll < 0.30) return Value::Int(rng->Uniform(100, 105));  // absent
  if (roll < 0.40) return Value::Str("zzz");                   // absent
  if (roll < 0.75) return Value::Int(rng->Uniform(0, domain - 1));
  return Value::Str(
      std::string(1, static_cast<char>('a' + rng->Uniform(0, 4))));
}

PredicateAtom RandomAtom(Rng* rng, int num_columns, int domain) {
  const AttributeId col =
      static_cast<AttributeId>(rng->Index(static_cast<size_t>(num_columns)));
  switch (rng->Uniform(0, 7)) {
    case 0:
      return Cmp(col, CompareOp::kEq, RandomOperand(rng, domain));
    case 1:
      return Cmp(col, CompareOp::kNe, RandomOperand(rng, domain));
    case 2:
      return Cmp(col, CompareOp::kLt, RandomOperand(rng, domain));
    case 3:
      return Cmp(col, CompareOp::kLe, RandomOperand(rng, domain));
    case 4:
      return Cmp(col, CompareOp::kGt, RandomOperand(rng, domain));
    case 5:
      return Cmp(col, CompareOp::kGe, RandomOperand(rng, domain));
    case 6:
      // Bounds in random order: inverted ranges (empty) included.
      return Between(col, RandomOperand(rng, domain),
                     RandomOperand(rng, domain));
    default: {
      std::vector<Value> list;
      const int k = static_cast<int>(rng->Uniform(0, 3));  // 0 = empty IN
      for (int i = 0; i < k; ++i) {
        list.push_back(RandomOperand(rng, domain));
      }
      return In(col, std::move(list));
    }
  }
}

// ----------------------------------------------------- predicate trees

// A nested boolean tree — the shape a general WHERE grammar would
// produce before DNF flattening.
struct Node {
  enum class Kind { kAtom, kAnd, kOr };
  Kind kind = Kind::kAtom;
  PredicateAtom atom;
  std::vector<Node> children;
};

Node RandomTree(Rng* rng, int num_columns, int domain, int depth) {
  Node node;
  if (depth == 0 || rng->Chance(0.45)) {
    node.kind = Node::Kind::kAtom;
    node.atom = RandomAtom(rng, num_columns, domain);
    return node;
  }
  node.kind = rng->Chance(0.5) ? Node::Kind::kAnd : Node::Kind::kOr;
  const int fanout = static_cast<int>(rng->Uniform(2, 3));
  for (int i = 0; i < fanout; ++i) {
    node.children.push_back(RandomTree(rng, num_columns, domain, depth - 1));
  }
  return node;
}

// The literal tree oracle — nested evaluation, no DNF involved.
bool EvalTree(const Tuple& t, const Node& node) {
  switch (node.kind) {
    case Node::Kind::kAtom:
      return MatchesAtom(t[node.atom.column], node.atom);
    case Node::Kind::kAnd:
      for (const Node& child : node.children) {
        if (!EvalTree(t, child)) return false;
      }
      return true;
    case Node::Kind::kOr:
      for (const Node& child : node.children) {
        if (EvalTree(t, child)) return true;
      }
      return false;
  }
  return false;
}

// Flattens a tree to DNF: OR concatenates child DNFs, AND distributes
// (cross product of child disjuncts). Depth ≤ 3 / fanout ≤ 3 keeps the
// product tiny.
Predicate ToDnf(const Node& node) {
  switch (node.kind) {
    case Node::Kind::kAtom:
      return Predicate::And({node.atom});
    case Node::Kind::kOr: {
      Predicate out;
      for (const Node& child : node.children) {
        Predicate part = ToDnf(child);
        for (Conjunction& conj : part.disjuncts) {
          out.disjuncts.push_back(std::move(conj));
        }
      }
      return out;
    }
    case Node::Kind::kAnd: {
      Predicate out = Predicate::True();
      for (const Node& child : node.children) {
        const Predicate part = ToDnf(child);
        Predicate next;
        for (const Conjunction& left : out.disjuncts) {
          for (const Conjunction& right : part.disjuncts) {
            Conjunction merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.disjuncts.push_back(std::move(merged));
          }
        }
        out = std::move(next);
      }
      return out;
    }
  }
  return Predicate{};
}

// ------------------------------------------------------------ the fuzz

// One random (table, tree) case checked end to end across all paths
// and thread counts.
void CheckCase(Rng* rng, int case_id) {
  const int num_columns = static_cast<int>(rng->Uniform(2, 5));
  const TableSchema schema =
      Schema(std::string("abcdef").substr(0, num_columns));
  const int rows = static_cast<int>(rng->Uniform(0, 80));
  const int domain = static_cast<int>(rng->Uniform(2, 6));
  const Table table = RandomMixedInstance(rng, schema, rows, domain);
  const EncodedTable enc(table);

  const Node tree = RandomTree(rng, num_columns, domain, 3);
  const Predicate dnf = ToDnf(tree);
  ASSERT_OK(ValidatePredicate(dnf, num_columns));

  // Oracle selection from the nested tree.
  std::vector<int> expected;
  for (int i = 0; i < table.num_rows(); ++i) {
    if (EvalTree(table.row(i), tree)) expected.push_back(i);
    // DNF flattening must not change row-major semantics.
    ASSERT_EQ(EvalTree(table.row(i), tree),
              MatchesPredicate(table.row(i), dnf))
        << "case " << case_id << " row " << i;
  }

  // Compaction canonicalizes codes (order-preserving); the same DNF
  // recompiles onto raw-code intervals and must select the same rows.
  EncodedTable compacted = enc;
  compacted.CompactDictionaries();
  ASSERT_OK(compacted.CheckDictionaryOrder());

  LevelSweepGuard guard;
  for (const simd::Level level : SweepLevels()) {
    simd::SetLevelForTesting(level);
    for (int threads : {1, 2, 3, 8}) {
      ParallelOptions par;
      par.threads = threads;
      const std::vector<int> got = SelectRowsEncoded(enc, dnf, par);
      ASSERT_EQ(got, expected)
          << "case " << case_id << " threads " << threads << " level "
          << simd::LevelName(level);
    }
    ASSERT_EQ(SelectRowsEncoded(compacted, dnf), expected)
        << "case " << case_id << " after compaction, level "
        << simd::LevelName(level);
  }
}

TEST(PredicateFuzz, TreesMatchOracleAtEveryThreadCount) {
  // ≥ 3 trees per case; the nightly multiplier (SQLNF_DIFF_ITERS ≥ 3)
  // pushes the sweep past 1000 trees.
  const int cases = ScaledIters(400);
  Rng rng(20260808);
  for (int c = 0; c < cases; ++c) {
    CheckCase(&rng, c);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Directed corner cases the random sweep could visit rarely.
TEST(PredicateFuzz, DirectedEdgeCases) {
  const TableSchema schema = Schema("ab");
  Table table(schema);
  ASSERT_OK(table.AddRow(Tuple({Value::Int(1), Value::Null()})));
  ASSERT_OK(table.AddRow(Tuple({Value::Int(2), Value::Str("x")})));
  ASSERT_OK(table.AddRow(Tuple({Value::Null(), Value::Int(7)})));
  const EncodedTable enc(table);

  // ⊥ never satisfies an ordered comparison — even one ⊥ would trip.
  EXPECT_EQ(SelectRowsEncoded(enc, Predicate::And({Cmp(
                                       0, CompareOp::kGe, Value::Int(0))})),
            (std::vector<int>{0, 1}));
  // ⊥ operand: atom false everywhere.
  EXPECT_TRUE(SelectRowsEncoded(enc, Predicate::And({Cmp(
                                         0, CompareOp::kLt, Value::Null())}))
                  .empty());
  // Marker equality on ⊥ selects exactly the ⊥ cells; <> the rest.
  EXPECT_EQ(SelectRowsEncoded(enc, Predicate::And({Cmp(
                                       1, CompareOp::kEq, Value::Null())})),
            (std::vector<int>{0}));
  EXPECT_EQ(SelectRowsEncoded(enc, Predicate::And({Cmp(
                                       1, CompareOp::kNe, Value::Null())})),
            (std::vector<int>{1, 2}));
  // Cross-kind order: every Int < every Str.
  EXPECT_EQ(SelectRowsEncoded(enc, Predicate::And({Cmp(
                                       1, CompareOp::kLt, Value::Str("a"))})),
            (std::vector<int>{2}));
  // IN with ⊥ and an absent value.
  EXPECT_EQ(SelectRowsEncoded(
                enc, Predicate::And({In(
                         1, {Value::Null(), Value::Int(99)})})),
            (std::vector<int>{0}));
  // Empty IN and zero-disjunct predicates match nothing; inverted
  // BETWEEN is an empty interval.
  EXPECT_TRUE(SelectRowsEncoded(enc, Predicate::And({In(0, {})})).empty());
  EXPECT_TRUE(SelectRowsEncoded(enc, Predicate{}).empty());
  EXPECT_TRUE(
      SelectRowsEncoded(
          enc, Predicate::And(
                   {Between(0, Value::Int(5), Value::Int(1))}))
          .empty());
  // Predicate::True() selects everything.
  EXPECT_EQ(SelectRowsEncoded(enc, Predicate::True()),
            (std::vector<int>{0, 1, 2}));
}

// ------------------------------------------- block/vector tail directed

std::vector<int> RowMajorSelect(const Table& table, const Predicate& dnf) {
  std::vector<int> out;
  for (int i = 0; i < table.num_rows(); ++i) {
    if (MatchesPredicate(table.row(i), dnf)) out.push_back(i);
  }
  return out;
}

// Runs one (table, predicate) pair through every dispatch level at a
// serial and a parallel thread count and demands oracle agreement.
void CheckAllLevels(const Table& table, const EncodedTable& enc,
                    const Predicate& dnf, const std::string& label) {
  const std::vector<int> expected = RowMajorSelect(table, dnf);
  LevelSweepGuard guard;
  for (const simd::Level level : SweepLevels()) {
    simd::SetLevelForTesting(level);
    for (int threads : {1, 3}) {
      ParallelOptions par;
      par.threads = threads;
      ASSERT_EQ(SelectRowsEncoded(enc, dnf, par), expected)
          << label << " threads " << threads << " level "
          << simd::LevelName(level);
    }
  }
}

// EvalBlock tail handling: lengths below one vector, lengths that are
// not a multiple of any vector width (8/4), and the exact kBlock=2048
// boundary (2049 = one full block plus a one-row tail).
TEST(PredicateFuzz, BlockAndVectorTailsAgreeAtEveryLevel) {
  const TableSchema schema = Schema("a");
  for (int rows : {1, 3, 7, 8, 9, 37, 2047, 2048, 2049}) {
    Table table(schema);
    for (int i = 0; i < rows; ++i) {
      ASSERT_OK(table.AddRow(Tuple(
          {i % 11 == 3 ? Value::Null() : Value::Int(i % 5)})));
    }
    const EncodedTable enc(table);

    // eq, interval, IN (byte table), and a two-disjunct OR merge.
    Predicate two = Predicate::And({Cmp(0, CompareOp::kEq, Value::Int(0))});
    two.disjuncts.push_back({Cmp(0, CompareOp::kEq, Value::Int(4))});
    const Predicate preds[] = {
        Predicate::And({Cmp(0, CompareOp::kEq, Value::Int(2))}),
        Predicate::And({Cmp(0, CompareOp::kNe, Value::Int(2))}),
        Predicate::And({Between(0, Value::Int(1), Value::Int(3))}),
        Predicate::And({In(0, {Value::Int(0), Value::Int(4)})}),
        std::move(two),
    };
    for (size_t p = 0; p < std::size(preds); ++p) {
      CheckAllLevels(table, enc, preds[p],
                     "rows " + std::to_string(rows) + " pred " +
                         std::to_string(p));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// Dictionary-size boundaries for the gather kernels' clamp: d = 0
// (all-⊥ column — every code is a sentinel), d = 1, and a d = 2
// unordered dictionary that forces the rank-gather path.
TEST(PredicateFuzz, TinyDictionaryClampAtEveryLevel) {
  const TableSchema schema = Schema("a");

  // d = 0: 2500 rows of ⊥ spans a block boundary with no real codes.
  {
    Table table(schema);
    for (int i = 0; i < 2500; ++i) {
      ASSERT_OK(table.AddRow(Tuple({Value::Null()})));
    }
    const EncodedTable enc(table);
    const Predicate preds[] = {
        Predicate::And({Cmp(0, CompareOp::kGe, Value::Int(0))}),
        Predicate::And({Cmp(0, CompareOp::kEq, Value::Null())}),
        Predicate::And({Cmp(0, CompareOp::kNe, Value::Null())}),
        Predicate::And({In(0, {Value::Null(), Value::Int(1)})}),
    };
    for (size_t p = 0; p < std::size(preds); ++p) {
      CheckAllLevels(table, enc, preds[p], "d=0 pred " + std::to_string(p));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // d = 1: a single distinct value mixed with ⊥ across the boundary.
  {
    Table table(schema);
    for (int i = 0; i < 2049; ++i) {
      ASSERT_OK(table.AddRow(Tuple(
          {i % 2 == 0 ? Value::Int(7) : Value::Null()})));
    }
    const EncodedTable enc(table);
    const Predicate preds[] = {
        Predicate::And({Cmp(0, CompareOp::kEq, Value::Int(7))}),
        Predicate::And({Cmp(0, CompareOp::kLt, Value::Int(7))}),
        Predicate::And({Between(0, Value::Int(7), Value::Int(7))}),
        Predicate::And({In(0, {Value::Int(7), Value::Int(8)})}),
    };
    for (size_t p = 0; p < std::size(preds); ++p) {
      CheckAllLevels(table, enc, preds[p], "d=1 pred " + std::to_string(p));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // d = 2 with values first seen out of order (9 before 7): the
  // dictionary is NOT order-preserving, so ordered atoms compile to
  // rank intervals and exercise the rank-gather kernel with d = 2.
  {
    Table table(schema);
    for (int i = 0; i < 2049; ++i) {
      ASSERT_OK(table.AddRow(Tuple({Value::Int(i % 3 == 0 ? 9 : 7)})));
    }
    const EncodedTable enc(table);
    const Predicate preds[] = {
        Predicate::And({Cmp(0, CompareOp::kLt, Value::Int(9))}),
        Predicate::And({Cmp(0, CompareOp::kGe, Value::Int(8))}),
        Predicate::And({Between(0, Value::Int(7), Value::Int(8))}),
    };
    for (size_t p = 0; p < std::size(preds); ++p) {
      CheckAllLevels(table, enc, preds[p],
                     "unordered d=2 pred " + std::to_string(p));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace sqlnf
