// Decomposition reports: per-column occurrence accounting and per-step
// eliminations (the Section 7 bookkeeping).

#include "sqlnf/decomposition/report.h"

#include <gtest/gtest.h>

#include "sqlnf/decomposition/vrnf_decompose.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::Rows;
using testing::Schema;
using testing::Sigma;

TEST(ReportTest, CellAndColumnAccounting) {
  TableSchema schema = Schema("abc");
  Table t = Rows(schema, {"1xP", "1xP", "2yQ", "2yQ", "3zR"});
  Decomposition d;
  d.components.push_back({Attrs(schema, "ab"), true, "rest"});
  d.components.push_back({Attrs(schema, "bc"), false, "facts"});
  ASSERT_OK_AND_ASSIGN(DecompositionReport report,
                       ReportDecomposition(t, d));
  EXPECT_EQ(report.cells_before, 15);
  // rest keeps 5 rows × 2 cols; facts dedupes to 3 rows × 2 cols.
  EXPECT_EQ(report.cells_after, 16);

  // Column a: one component, multiset → occurrences unchanged.
  EXPECT_EQ(report.columns[0].components, 1);
  EXPECT_EQ(report.columns[0].values_eliminated(), 0);
  // Column b: in BOTH components → occurrences grew; no elimination
  // reported (join keys are not redundancy).
  EXPECT_EQ(report.columns[1].components, 2);
  EXPECT_EQ(report.columns[1].occurrences_after, 8);
  EXPECT_EQ(report.columns[1].values_eliminated(), 0);
  // Column c: deduplicated from 5 to 3 occurrences.
  EXPECT_EQ(report.columns[2].values_eliminated(), 2);
  EXPECT_EQ(report.TotalValuesEliminated(), 2);
  EXPECT_EQ(report.TotalNullsEliminated(), 0);
  EXPECT_NE(report.ToString(schema).find("c: 2 values"),
            std::string::npos);
}

TEST(ReportTest, NullsAccountedSeparately) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1_", "1_", "2x"});
  Decomposition d;
  d.components.push_back({Attrs(schema, "ab"), false, "dedup"});
  ASSERT_OK_AND_ASSIGN(DecompositionReport report,
                       ReportDecomposition(t, d));
  // (1,⊥) collapses: one ⊥ eliminated, no values.
  EXPECT_EQ(report.columns[1].nulls_eliminated(), 1);
  EXPECT_EQ(report.columns[1].values_eliminated(), 0);
}

TEST(ReportTest, StepReportMatchesDirectAccounting) {
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "ic ->w icp")};
  Table t = Rows(schema, {"1FAX", "2FAX", "3FAX", "4DKY"});
  ASSERT_OK_AND_ASSIGN(VrnfResult vrnf, VrnfDecompose(design));
  ASSERT_EQ(vrnf.steps.size(), 1u);
  ASSERT_OK_AND_ASSIGN(auto steps, ReportVrnfSteps(t, vrnf));
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].source_rows, 4);
  EXPECT_EQ(steps[0].set_rows, 2);  // (F,A,X) and (D,K,Y)
  ASSERT_EQ(steps[0].columns.size(), 1u);  // p is the only pure-RHS attr
  EXPECT_EQ(steps[0].columns[0].values_eliminated, 2);
  EXPECT_EQ(steps[0].columns[0].nulls_eliminated, 0);
}

TEST(ReportTest, InvalidDecompositionRejected) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"11"});
  Decomposition not_covering;
  not_covering.components.push_back({Attrs(schema, "a"), true, ""});
  EXPECT_FALSE(ReportDecomposition(t, not_covering).ok());
}

}  // namespace
}  // namespace sqlnf
