// Discovery substrate: agree sets, minimal hitting sets (brute-force
// cross-checked), FD/key mining (cross-checked against the satisfaction
// oracle), and the Section 7 classification (t-FDs, λ-FDs).

#include "sqlnf/discovery/discover.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/discovery/agree_sets.h"
#include "sqlnf/discovery/hitting_set.h"
#include "sqlnf/engine/validate.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::Fd;
using testing::RandomInstance;
using testing::RandomSchema;
using testing::Rows;
using testing::Schema;

TEST(AgreeSetsTest, EncodedTableCodes) {
  TableSchema schema = Schema("ab");
  Table t = Rows(schema, {"1x", "1y", "_x"});
  EncodedTable enc(t);
  EXPECT_EQ(enc.code(0, 0), enc.code(0, 1));
  EXPECT_EQ(enc.code(0, 2), EncodedTable::kNullCode);
  EXPECT_EQ(enc.code(1, 0), enc.code(1, 2));
  EXPECT_NE(enc.code(1, 0), enc.code(1, 1));
  EXPECT_EQ(enc.NullFreeColumns(), AttributeSet{1});
}

TEST(AgreeSetsTest, PairAgreementDefinitions) {
  TableSchema schema = Schema("abcd");
  Table t = Rows(schema, {"11_3", "1_23", "1124"});
  EncodedTable enc(t);
  // Rows 0,1: a equal; b one-null; c one-null; d equal.
  PairAgreement p01 = ComputeAgreement(enc, 0, 1);
  EXPECT_EQ(p01.eq, (AttributeSet{0, 3}));
  EXPECT_EQ(p01.strong, (AttributeSet{0, 3}));
  EXPECT_EQ(p01.weak, (AttributeSet{0, 1, 2, 3}));
  // Rows 0,2: a,b equal; c: ⊥ vs 2 (weak, not eq); d differs.
  PairAgreement p02 = ComputeAgreement(enc, 0, 2);
  EXPECT_EQ(p02.eq, (AttributeSet{0, 1}));
  EXPECT_EQ(p02.strong, (AttributeSet{0, 1}));
  EXPECT_EQ(p02.weak, (AttributeSet{0, 1, 2}));
}

TEST(AgreeSetsTest, MaximalSets) {
  std::vector<AttributeSet> sets = {{0, 1}, {0}, {1, 2}, {0, 1}};
  auto maximal = MaximalSets(sets);
  EXPECT_EQ(maximal.size(), 2u);
}

TEST(HittingSetTest, SimpleFamilies) {
  AttributeSet universe = AttributeSet::FullSet(4);
  // {{0,1},{1,2}} → minimal hitting sets {1},{0,2}.
  auto hs = MinimalHittingSets(universe, {{0, 1}, {1, 2}});
  ASSERT_EQ(hs.size(), 2u);
  EXPECT_EQ(hs[0], AttributeSet{1});
  EXPECT_EQ(hs[1], (AttributeSet{0, 2}));
}

TEST(HittingSetTest, EmptyFamilyAndUnhittable) {
  AttributeSet universe = AttributeSet::FullSet(3);
  auto hs = MinimalHittingSets(universe, {});
  ASSERT_EQ(hs.size(), 1u);
  EXPECT_TRUE(hs[0].empty());
  // A set disjoint from the universe is unhittable.
  EXPECT_TRUE(MinimalHittingSets({0, 1}, {{2}}).empty());
}

TEST(HittingSetTest, BruteForceCrossCheck) {
  Rng rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 4));
    AttributeSet universe = AttributeSet::FullSet(n);
    std::vector<AttributeSet> family;
    int sets = 1 + static_cast<int>(rng.Uniform(0, 4));
    for (int s = 0; s < sets; ++s) {
      AttributeSet f = testing::RandomSubset(&rng, n, 0.4);
      if (f.empty()) f.Add(static_cast<AttributeId>(rng.Index(n)));
      family.push_back(f);
    }
    auto fast = MinimalHittingSets(universe, family);

    // Brute force: all subsets, keep hitting ones, filter minimal.
    std::vector<AttributeSet> hitting;
    for (uint64_t bits = 0; bits < (uint64_t{1} << n); ++bits) {
      AttributeSet x = AttributeSet::FromBits(bits);
      bool hits_all = true;
      for (const AttributeSet& f : family) {
        if (!x.Intersects(f)) {
          hits_all = false;
          break;
        }
      }
      if (hits_all) hitting.push_back(x);
    }
    std::vector<AttributeSet> minimal;
    for (const AttributeSet& x : hitting) {
      bool is_minimal = true;
      for (const AttributeSet& y : hitting) {
        if (y.IsProperSubsetOf(x)) {
          is_minimal = false;
          break;
        }
      }
      if (is_minimal) minimal.push_back(x);
    }
    std::sort(minimal.begin(), minimal.end(),
              [](const AttributeSet& a, const AttributeSet& b) {
                return a.size() != b.size() ? a.size() < b.size()
                                            : a.bits() < b.bits();
              });
    EXPECT_EQ(fast, minimal) << "n=" << n;
  }
}

TEST(DiscoverTest, FindsPlantedClassicalFd) {
  TableSchema schema = Schema("abc");
  // b = f(a); c free.
  Table t = Rows(schema, {"11x", "11y", "22x", "22y", "33z"});
  ASSERT_OK_AND_ASSIGN(DiscoveryResult result, DiscoverConstraints(t));
  bool found = false;
  for (const auto& fd : result.classical_fds) {
    if (fd.lhs == AttributeSet{0} && fd.rhs.Contains(1)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DiscoverTest, Example1InternalCertainFd) {
  // The employee table of Example 1 with the ambiguous row fixed:
  // nd ->w d is discovered as an internal c-FD (d nullable).
  TableSchema schema = Schema("nda", "na");
  Table t = Rows(schema, {"J1D", "J2F", "J1P", "B_P"});
  ASSERT_TRUE(Satisfies(t, Fd(schema, "nd ->w d")));
  ASSERT_OK_AND_ASSIGN(DiscoveryResult result, DiscoverConstraints(t));
  bool found = false;
  for (const auto& fd : result.c_fds) {
    if (fd.lhs == Attrs(schema, "nd") && fd.rhs.Contains(1)) found = true;
  }
  EXPECT_TRUE(found) << "c-FDs found: " << result.c_fds.size();
}

TEST(DiscoverTest, KeysOnFigure5Projection) {
  TableSchema schema = Schema("icp");
  Table proj = Rows(schema, {"FAX", "F_X", "DKY"});
  ASSERT_OK_AND_ASSIGN(DiscoveryResult result, DiscoverConstraints(proj));
  // p<ic> holds, c<ic> does not (weak collision via ⊥).
  auto contains = [](const std::vector<KeyConstraint>& keys,
                     const AttributeSet& attrs) {
    for (const auto& k : keys) {
      if (k.attrs.IsSubsetOf(attrs)) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(result.p_keys, AttributeSet{0, 1}));
  EXPECT_FALSE(contains(result.c_keys, AttributeSet{0, 1}));
}

// Discovered constraints must hold; and minimality must hold: removing
// any LHS attribute breaks the FD.
class DiscoveryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DiscoveryPropertyTest, DiscoveredConstraintsHoldAndAreMinimal) {
  Rng rng(GetParam() * 71 + 19);
  for (int trial = 0; trial < 8; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema no_nfs = testing::Schema(std::string("abcdefgh").substr(0, n));
    Table t = RandomInstance(&rng, no_nfs, 12, 2, 0.2);
    ASSERT_OK_AND_ASSIGN(DiscoveryResult result, DiscoverConstraints(t));

    for (const auto& fd : result.p_fds) {
      EXPECT_TRUE(Satisfies(t, fd)) << fd.ToString(no_nfs);
      for (AttributeId a : fd.lhs) {
        FunctionalDependency smaller = fd;
        smaller.lhs.Remove(a);
        EXPECT_FALSE(Satisfies(t, smaller))
            << "not minimal: " << fd.ToString(no_nfs);
      }
    }
    for (const auto& fd : result.c_fds) {
      EXPECT_TRUE(Satisfies(t, fd)) << fd.ToString(no_nfs) << "\n"
                                    << t.ToString();
    }
    for (const auto& key : result.p_keys) {
      EXPECT_TRUE(Satisfies(t, key));
      for (AttributeId a : key.attrs) {
        KeyConstraint smaller = key;
        smaller.attrs.Remove(a);
        EXPECT_FALSE(Satisfies(t, smaller));
      }
    }
    for (const auto& key : result.c_keys) {
      EXPECT_TRUE(Satisfies(t, key));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoveryPropertyTest,
                         ::testing::Range(0, 5));

// The parallel pair sweep must be bit-identical to serial: same
// agreements in the same order, hence identical mined constraints.
TEST(DiscoverTest, ParallelSweepMatchesSerialExactly) {
  Rng rng(424242);
  TableSchema schema = testing::Schema("abcdef");
  // Big enough to cross the parallel threshold inside CollectAgreements.
  Table t = testing::RandomInstance(&rng, schema, 500, 4, 0.2);

  EncodedTable enc(t);
  const auto serial = CollectAgreements(enc, 0, ParallelOptions{1});
  for (int threads : {2, 4, 7}) {
    const auto parallel = CollectAgreements(enc, 0, ParallelOptions{threads});
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].eq, serial[i].eq);
      EXPECT_EQ(parallel[i].strong, serial[i].strong);
      EXPECT_EQ(parallel[i].weak, serial[i].weak);
    }
  }

  DiscoveryOptions serial_options;
  serial_options.threads = 1;
  DiscoveryOptions parallel_options;
  parallel_options.threads = 4;
  ASSERT_OK_AND_ASSIGN(DiscoveryResult a,
                       DiscoverConstraints(t, serial_options));
  ASSERT_OK_AND_ASSIGN(DiscoveryResult b,
                       DiscoverConstraints(t, parallel_options));
  EXPECT_EQ(a.null_free_columns, b.null_free_columns);
  EXPECT_EQ(a.classical_fds, b.classical_fds);
  EXPECT_EQ(a.nn_fds, b.nn_fds);
  EXPECT_EQ(a.p_fds, b.p_fds);
  EXPECT_EQ(a.c_fds, b.c_fds);
  EXPECT_EQ(a.p_keys, b.p_keys);
  EXPECT_EQ(a.c_keys, b.c_keys);

  // Parallel validation reaches the same verdicts too.
  for (const auto& fd : a.c_fds) {
    EXPECT_EQ(ValidateFd(t, fd, ParallelOptions{4}), ValidateFd(t, fd));
  }
}

TEST(ClassifyTest, TotalAndLambdaFds) {
  // b is a function of a; a is not a key (duplicates); a null-free.
  TableSchema schema = Schema("abc");
  Table t = Rows(schema, {"1xA", "1xB", "2yC", "2yD"});
  ASSERT_OK_AND_ASSIGN(DiscoveryResult result, DiscoverConstraints(t));
  FdClassification cls = ClassifyDiscovered(t, result);
  EXPECT_GT(cls.c_count, 0);
  EXPECT_GT(cls.t_count, 0);
  // a ->w ab is total, has external RHS b, and a is no c-key → λ-FD.
  bool lambda_found = false;
  for (const auto& fd : cls.lambda_fds) {
    if (fd.lhs == AttributeSet{0}) lambda_found = true;
  }
  EXPECT_TRUE(lambda_found);
  EXPECT_LE(cls.lambda_count, cls.t_count);
  EXPECT_LE(cls.t_count, cls.c_count);
}

TEST(ClassifyTest, RelativeProjectionSize) {
  TableSchema schema = Schema("abc");
  Table t = Rows(schema, {"1xA", "1xB", "2yC", "2yD"});
  ASSERT_OK_AND_ASSIGN(
      double rel,
      RelativeProjectionSize(
          t, FunctionalDependency::Certain(Attrs(schema, "a"),
                                           Attrs(schema, "ab"))));
  EXPECT_DOUBLE_EQ(rel, 0.5);  // 2 distinct (a,b) of 4 rows
}

}  // namespace
}  // namespace sqlnf
