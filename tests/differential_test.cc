// Differential test harness: every validation path in the repo must
// agree with the literal Definition-1/2 oracle (reference_oracle.h) on
// hundreds of seeded-random tables.
//
// Paths crossed per (table, constraint):
//   * the oracle (all-pairs, similarity inlined),
//   * constraints/satisfies.h (the reference checker),
//   * the legacy tuple-hashing path (FindFdViolationTuple / ...KeyTuple),
//   * the columnar kernels on a full EncodedTable at threads ∈ {1, 4},
//   * the stripped-partition path for possible constraints,
//   * the Table entry points (ValidateFd / ValidateKey / Find*Fast),
//   * the possible-world enumeration for keys on small tables.
//
// Verdicts must be identical everywhere. Witnesses may differ between
// paths (any violating pair is correct), so when a path reports a
// violation we re-check the reported pair against the oracle's
// similarity predicates instead of comparing pair indices.
//
// SQLNF_DIFF_ITERS (integer ≥ 1, default 1) multiplies every sweep —
// the nightly CI job runs the suite with a larger multiplier.

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/simd_kernels.h"
#include "sqlnf/datagen/generator.h"
#include "sqlnf/decomposition/encoded_ops.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/engine/validate.h"
#include "sqlnf/util/rng.h"
#include "reference_oracle.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::OracleEqualOn;
using testing::OracleSatisfiesFd;
using testing::OracleSatisfiesKey;
using testing::OracleSatisfiesKeyByWorlds;
using testing::OracleStronglySimilar;
using testing::OracleWeaklySimilar;
using testing::RandomInstance;
using testing::RandomSchema;
using testing::RandomSubset;

int IterMultiplier() {
  const char* env = std::getenv("SQLNF_DIFF_ITERS");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v >= 1 ? v : 1;
}

int ScaledIters(int base) { return base * IterMultiplier(); }

// Every SIMD dispatch level this machine can run, scalar (the
// differential oracle implementation) first.
std::vector<simd::Level> SweepLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() >= simd::Level::kSimd128) {
    levels.push_back(simd::Level::kSimd128);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

// Unpins the dispatch level even when an ASSERT bails out of a sweep.
struct LevelSweepGuard {
  ~LevelSweepGuard() { simd::ClearLevelForTesting(); }
};

// The witness a path returned must itself be a violating pair under the
// oracle's definitions — verdict equality alone would let a path return
// "violated" with a bogus pair.
void ExpectGenuineFdWitness(const Table& table, const FunctionalDependency& fd,
                            const Violation& v, const std::string& context) {
  ASSERT_GE(v.row1, 0) << context;
  ASSERT_LT(v.row1, table.num_rows()) << context;
  ASSERT_GE(v.row2, 0) << context;
  ASSERT_LT(v.row2, table.num_rows()) << context;
  const Tuple& t = table.row(v.row1);
  const Tuple& u = table.row(v.row2);
  const bool similar = fd.is_possible() ? OracleStronglySimilar(t, u, fd.lhs)
                                        : OracleWeaklySimilar(t, u, fd.lhs);
  EXPECT_TRUE(similar && !OracleEqualOn(t, u, fd.rhs))
      << context << ": reported pair (" << v.row1 << "," << v.row2
      << ") is not a violation of " << fd.ToString(table.schema());
}

void ExpectGenuineKeyWitness(const Table& table, const KeyConstraint& key,
                             const Violation& v, const std::string& context) {
  ASSERT_GE(v.row1, 0) << context;
  ASSERT_LT(v.row1, table.num_rows()) << context;
  ASSERT_GE(v.row2, 0) << context;
  ASSERT_LT(v.row2, table.num_rows()) << context;
  ASSERT_NE(v.row1, v.row2) << context;
  const Tuple& t = table.row(v.row1);
  const Tuple& u = table.row(v.row2);
  EXPECT_TRUE(key.is_possible() ? OracleStronglySimilar(t, u, key.attrs)
                                : OracleWeaklySimilar(t, u, key.attrs))
      << context << ": reported pair (" << v.row1 << "," << v.row2
      << ") is not a violation of " << key.ToString(table.schema());
}

void CheckFdAllPaths(const Table& table, const EncodedTable& enc,
                     const FunctionalDependency& fd,
                     const std::string& context) {
  const bool expect = OracleSatisfiesFd(table, fd);
  const std::string what = context + " fd=" + fd.ToString(table.schema());

  EXPECT_EQ(Satisfies(table, fd), expect) << what << " [satisfies.h]";
  EXPECT_EQ(ValidateFd(table, fd), expect) << what << " [ValidateFd]";

  auto tuple = FindFdViolationTuple(table, fd);
  EXPECT_EQ(!tuple.has_value(), expect) << what << " [tuple]";
  if (tuple) ExpectGenuineFdWitness(table, fd, *tuple, what + " [tuple]");

  for (int threads : {1, 4}) {
    const ParallelOptions par{threads};
    const std::string tag = what + " [encoded t=" + std::to_string(threads) +
                            "]";
    auto encoded = FindFdViolationEncoded(enc, fd, par);
    EXPECT_EQ(!encoded.has_value(), expect) << tag;
    if (encoded) ExpectGenuineFdWitness(table, fd, *encoded, tag);
    EXPECT_EQ(ValidateFdEncoded(enc, fd, par), expect) << tag;
  }

  auto fast = FindFdViolationFast(table, fd);
  EXPECT_EQ(!fast.has_value(), expect) << what << " [fast]";
  if (fast) ExpectGenuineFdWitness(table, fd, *fast, what + " [fast]");

  if (fd.is_possible()) {
    EXPECT_EQ(ValidateFdPartition(enc, fd), expect) << what << " [partition]";
  }
}

void CheckKeyAllPaths(const Table& table, const EncodedTable& enc,
                      const KeyConstraint& key, const std::string& context) {
  const bool expect = OracleSatisfiesKey(table, key);
  const std::string what = context + " key=" + key.ToString(table.schema());

  EXPECT_EQ(Satisfies(table, key), expect) << what << " [satisfies.h]";
  EXPECT_EQ(ValidateKey(table, key), expect) << what << " [ValidateKey]";

  auto tuple = FindKeyViolationTuple(table, key);
  EXPECT_EQ(!tuple.has_value(), expect) << what << " [tuple]";
  if (tuple) ExpectGenuineKeyWitness(table, key, *tuple, what + " [tuple]");

  for (int threads : {1, 4}) {
    const ParallelOptions par{threads};
    const std::string tag = what + " [encoded t=" + std::to_string(threads) +
                            "]";
    auto encoded = FindKeyViolationEncoded(enc, key, par);
    EXPECT_EQ(!encoded.has_value(), expect) << tag;
    if (encoded) ExpectGenuineKeyWitness(table, key, *encoded, tag);
    EXPECT_EQ(ValidateKeyEncoded(enc, key, par), expect) << tag;
  }

  auto fast = FindKeyViolationFast(table, key);
  EXPECT_EQ(!fast.has_value(), expect) << what << " [fast]";
  if (fast) ExpectGenuineKeyWitness(table, key, *fast, what + " [fast]");

  if (key.is_possible()) {
    EXPECT_EQ(ValidateKeyPartition(enc, key), expect) << what
                                                      << " [partition]";
  }
}

// All four constraint classes (p-/c-FD, p-/c-key) over random column
// subsets of one table, through every path.
void CheckTableAllClasses(const Table& table, Rng* rng,
                          const std::string& context,
                          int constraints_per_class = 3) {
  const int n = table.schema().num_attributes();
  const EncodedTable enc(table);
  for (int i = 0; i < constraints_per_class; ++i) {
    FunctionalDependency fd;
    fd.lhs = RandomSubset(rng, n);
    fd.rhs = RandomSubset(rng, n);
    if (fd.rhs.empty()) {
      fd.rhs = AttributeSet::Single(static_cast<AttributeId>(rng->Index(n)));
    }
    for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
      fd.mode = mode;
      CheckFdAllPaths(table, enc, fd, context);
    }
    KeyConstraint key;
    key.attrs = RandomSubset(rng, n, 0.5);
    if (key.attrs.empty()) {
      key.attrs =
          AttributeSet::Single(static_cast<AttributeId>(rng->Index(n)));
    }
    for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
      key.mode = mode;
      CheckKeyAllPaths(table, enc, key, context);
    }
  }
}

// --- Sweep 1: hand-rolled random instances with random NOT NULL sets.
// RandomInstance draws from a 3-value domain, so agreements, weak
// similarity through ⊥, and genuine violations all occur frequently.
TEST(DifferentialTest, RandomInstancesAllPaths) {
  Rng rng(20260806);
  const int tables = ScaledIters(120);
  for (int iter = 0; iter < tables; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 6));
    const TableSchema schema = RandomSchema(&rng, cols);
    const int rows = static_cast<int>(rng.Uniform(1, 60));
    const double null_rate = rng.NextDouble() * 0.5;
    const Table table = RandomInstance(&rng, schema, rows, /*domain=*/3,
                                       null_rate);
    CheckTableAllClasses(table, &rng,
                         "random iter=" + std::to_string(iter));
  }
}

// --- Sweep 2: datagen/generator tables — planted FDs, duplicate rows,
// dirty perturbations, per-column null rates. Exercises the string-typed
// value path and realistic (FD-respecting) data shapes.
TEST(DifferentialTest, GeneratorTablesAllPaths) {
  Rng rng(777);
  const int tables = ScaledIters(80);
  for (int iter = 0; iter < tables; ++iter) {
    TableSpec spec;
    spec.num_columns = static_cast<int>(rng.Uniform(3, 7));
    spec.num_rows = static_cast<int>(rng.Uniform(10, 120));
    spec.seed = 1000 + static_cast<uint64_t>(iter);
    for (int c = 0; c < spec.num_columns; ++c) {
      spec.domain_sizes.push_back(static_cast<int>(rng.Uniform(2, 8)));
      spec.null_rates.push_back(rng.Chance(0.5) ? rng.NextDouble() * 0.4
                                                : 0.0);
    }
    if (rng.Chance(0.7) && spec.num_columns >= 2) {
      PlantedFd fd;
      fd.lhs.push_back(static_cast<int>(rng.Index(spec.num_columns)));
      int rhs = static_cast<int>(rng.Index(spec.num_columns));
      if (rhs == fd.lhs[0]) rhs = (rhs + 1) % spec.num_columns;
      fd.rhs.push_back(rhs);
      spec.fds.push_back(fd);
    }
    spec.duplicate_rate = rng.Chance(0.5) ? rng.NextDouble() * 0.3 : 0.0;
    spec.dirty_rate = rng.Chance(0.5) ? rng.NextDouble() * 0.2 : 0.0;

    auto table = GenerateTable(spec);
    ASSERT_OK(table.status());
    CheckTableAllClasses(table.value(), &rng,
                         "generated iter=" + std::to_string(iter));
  }
}

// --- Sweep 3: whole-Σ validation. ValidateAll / ValidateAllEncoded
// must agree with SatisfiesAll (which includes the schema NFS).
TEST(DifferentialTest, WholeSigmaValidation) {
  Rng rng(4242);
  const int tables = ScaledIters(60);
  for (int iter = 0; iter < tables; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 6));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table =
        RandomInstance(&rng, schema, static_cast<int>(rng.Uniform(0, 40)),
                       /*domain=*/3, rng.NextDouble() * 0.4);
    const ConstraintSet sigma = testing::RandomSigma(
        &rng, cols, /*fds=*/static_cast<int>(rng.Uniform(0, 3)),
        /*keys=*/static_cast<int>(rng.Uniform(0, 2)));

    bool expect = true;
    for (AttributeId a : schema.nfs()) {
      for (int r = 0; r < table.num_rows(); ++r) {
        if (table.row(r)[a].is_null()) expect = false;
      }
    }
    for (const auto& fd : sigma.fds()) {
      if (!OracleSatisfiesFd(table, fd)) expect = false;
    }
    for (const auto& key : sigma.keys()) {
      if (!OracleSatisfiesKey(table, key)) expect = false;
    }

    EXPECT_EQ(SatisfiesAll(table, sigma), expect) << "iter=" << iter;
    const EncodedTable enc(table);
    for (int threads : {1, 4}) {
      const ParallelOptions par{threads};
      EXPECT_EQ(ValidateAll(table, sigma, par), expect)
          << "iter=" << iter << " t=" << threads;
      EXPECT_EQ(ValidateAllEncoded(enc, schema.nfs(), sigma, par), expect)
          << "iter=" << iter << " t=" << threads;
    }
  }
}

// --- Sweep 4: the possible-world semantics itself. On small tables the
// key definitions must coincide with their world characterization:
// p⟨X⟩ ⟺ some completion duplicate-free on X, c⟨X⟩ ⟺ every one.
TEST(DifferentialTest, KeyWorldSemanticsOnSmallTables) {
  Rng rng(9001);
  const int tables = ScaledIters(40);
  int enumerated = 0;
  for (int iter = 0; iter < tables; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 4));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table =
        RandomInstance(&rng, schema, static_cast<int>(rng.Uniform(1, 5)),
                       /*domain=*/2, 0.4);
    const EncodedTable enc(table);
    KeyConstraint key;
    key.attrs = RandomSubset(&rng, cols, 0.6);
    if (key.attrs.empty()) {
      key.attrs =
          AttributeSet::Single(static_cast<AttributeId>(rng.Index(cols)));
    }
    for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
      key.mode = mode;
      WorldLimits limits;
      limits.max_worlds = 50'000;
      auto worlds = OracleSatisfiesKeyByWorlds(table, key, limits);
      if (!worlds.ok()) continue;  // enumeration too large for this draw
      ++enumerated;
      const bool expect = worlds.value();
      EXPECT_EQ(OracleSatisfiesKey(table, key), expect)
          << "iter=" << iter << " key=" << key.ToString(schema);
      EXPECT_EQ(ValidateKeyEncoded(enc, key), expect)
          << "iter=" << iter << " key=" << key.ToString(schema);
      if (key.is_possible()) {
        EXPECT_EQ(ValidateKeyPartition(enc, key), expect)
            << "iter=" << iter << " key=" << key.ToString(schema);
      }
    }
  }
  // The sweep must actually exercise the enumeration, not skip it all.
  EXPECT_GE(enumerated, tables / 2);
}

// --- Pinned regressions: hand-written corners every path must agree on.
TEST(DifferentialTest, PinnedCorners) {
  using testing::Fd;
  using testing::Key;
  using testing::Rows;
  using testing::Schema;

  struct Case {
    const char* schema;
    std::vector<std::string> rows;
  };
  const std::vector<Case> cases = {
      {"ab", {}},                              // empty instance
      {"ab", {"1x"}},                          // single row
      {"ab", {"1x", "1x"}},                    // exact duplicates
      {"ab", {"1x", "1y"}},                    // FD violation, total
      {"ab", {"_x", "_y"}},                    // all-⊥ LHS
      {"ab", {"1x", "_y"}},                    // ⊥ meets value
      {"abc", {"1_x", "_2x", "12y"}},          // transitive weak links
      {"abc", {"11a", "11a", "1_b", "_1c"}},   // duplicates + nulls
      {"ab", {"__", "__"}},                    // fully null rows
  };
  Rng rng(5);
  int idx = 0;
  for (const Case& c : cases) {
    const TableSchema schema = Schema(c.schema);
    const Table table = Rows(schema, c.rows);
    const EncodedTable enc(table);
    const int n = schema.num_attributes();
    // Exhaustive over all non-empty attr subsets in both modes.
    for (uint64_t bits = 1; bits < (1ull << n); ++bits) {
      AttributeSet x;
      for (int a = 0; a < n; ++a) {
        if (bits & (1ull << a)) x.Add(a);
      }
      for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
        KeyConstraint key;
        key.attrs = x;
        key.mode = mode;
        CheckKeyAllPaths(table, enc, key, "pinned case " +
                                              std::to_string(idx));
        FunctionalDependency fd;
        fd.lhs = x;
        fd.rhs = AttributeSet::Single(
            static_cast<AttributeId>(rng.Index(n)));
        fd.mode = mode;
        CheckFdAllPaths(table, enc, fd, "pinned case " +
                                            std::to_string(idx));
      }
    }
    ++idx;
  }
}

// ===================== Columnar executor section =====================
//
// The encoded operators (decomposition/encoded_ops.h, the encoded DML
// of engine/relops.h, and the Database columnar paths) must produce
// multiset-identical results to their row-major reference counterparts
// on the same instance. Joins run at threads ∈ {1, 4}; Theorem-11
// lossless verdicts must agree between the two executors.

// Decoded result of an encoded operator vs its row-major reference:
// multiset-equal under Table semantics AND code-level multiset-equal
// after re-encoding the reference (so SameMultisetEncoded's dictionary
// translation is crossed against Table::SameMultiset on every draw).
void ExpectSameRelation(const Table& ref, const EncodedRelation& got,
                        const std::string& what) {
  const Table decoded = got.ToTable();
  EXPECT_EQ(ref.num_rows(), decoded.num_rows()) << what;
  EXPECT_TRUE(ref.SameMultiset(decoded)) << what;
  EXPECT_TRUE(SameMultisetEncoded(EncodedTable(ref), got.columns)) << what;
}

// Bit-identity between two runs of the same encoded operator: same
// schema, same row count, and code-for-code equal column vectors — the
// determinism contract of the morsel pipeline (multiset equality would
// let a thread-count-dependent row order slip through).
void ExpectBitIdentical(const EncodedRelation& serial,
                        const EncodedRelation& parallel,
                        const std::string& what) {
  ASSERT_EQ(serial.schema.num_attributes(),
            parallel.schema.num_attributes())
      << what;
  for (AttributeId a = 0; a < serial.schema.num_attributes(); ++a) {
    EXPECT_EQ(serial.schema.attribute_name(a),
              parallel.schema.attribute_name(a))
        << what;
  }
  ASSERT_EQ(serial.columns.num_rows(), parallel.columns.num_rows()) << what;
  for (AttributeId a = 0; a < serial.schema.num_attributes(); ++a) {
    EXPECT_EQ(serial.columns.column(a), parallel.columns.column(a))
        << what << " col " << a;
  }
}

// Random WHERE clause over `table`: 1–2 column=value conditions, values
// mostly drawn from stored rows (hits), sometimes ⊥ (matches exactly
// the ⊥ cells) or a constant no dictionary has seen (matches nothing).
std::vector<ColumnCondition> RandomConditions(Rng* rng, const Table& table) {
  std::vector<ColumnCondition> conds;
  const int k = 1 + static_cast<int>(rng->Index(2));
  for (int i = 0; i < k; ++i) {
    const AttributeId col =
        static_cast<AttributeId>(rng->Index(table.num_columns()));
    Value v;
    if (table.num_rows() > 0 && rng->Chance(0.7)) {
      v = table.row(static_cast<int>(rng->Index(table.num_rows())))[col];
    } else if (rng->Chance(0.4)) {
      v = Value::Null();
    } else {
      v = Value::Str("never-stored");
    }
    conds.push_back({col, std::move(v)});
  }
  return conds;
}

// --- Executor sweep 1: projections, joins, and the Theorem-11 lossless
// round trip, encoded vs row-major, on ~100 seeded random tables.
TEST(DifferentialTest, ExecutorProjectionsAndJoins) {
  Rng rng(20260807);
  const int tables = ScaledIters(100);
  for (int iter = 0; iter < tables; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 6));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table =
        RandomInstance(&rng, schema, static_cast<int>(rng.Uniform(0, 60)),
                       /*domain=*/3, rng.NextDouble() * 0.5);
    const EncodedTable enc(table);
    const std::string what = "executor iter=" + std::to_string(iter);

    // Projections I[X] and I[[X]] on a random non-empty X.
    AttributeSet x = RandomSubset(&rng, cols);
    if (x.empty()) {
      x = AttributeSet::Single(static_cast<AttributeId>(rng.Index(cols)));
    }
    auto set_ref = ProjectSet(table, x, "p");
    auto set_enc = ProjectSetEncoded(schema, enc, x, "p");
    ASSERT_OK(set_ref.status()) << what;
    ASSERT_OK(set_enc.status()) << what;
    ExpectSameRelation(set_ref.value(), set_enc.value(), what + " [set]");

    auto multi_ref = ProjectMultiset(table, x, "m");
    auto multi_enc = ProjectMultisetEncoded(schema, enc, x, "m");
    ASSERT_OK(multi_ref.status()) << what;
    ASSERT_OK(multi_enc.status()) << what;
    ExpectSameRelation(multi_ref.value(), multi_enc.value(),
                       what + " [multiset]");

    // Theorem 11 decomposition by a random FD: the encoded join of the
    // encoded projections must reproduce the row-major join, and the
    // lossless-for-instance verdicts must agree — at both thread counts.
    // LHS must be non-empty: an empty X with XY = T makes the first
    // component X(T−XY) empty, which both executors reject.
    FunctionalDependency fd;
    fd.lhs = RandomSubset(&rng, cols);
    fd.rhs = RandomSubset(&rng, cols);
    if (fd.lhs.empty()) {
      fd.lhs = AttributeSet::Single(static_cast<AttributeId>(rng.Index(cols)));
    }
    if (fd.rhs.empty()) {
      fd.rhs = AttributeSet::Single(static_cast<AttributeId>(rng.Index(cols)));
    }
    const Decomposition d = DecomposeByFd(schema, fd);
    auto join_ref = JoinComponents(table, d);
    ASSERT_OK(join_ref.status()) << what;
    auto lossless_ref = IsLosslessForInstance(table, d);
    ASSERT_OK(lossless_ref.status()) << what;
    std::optional<EncodedRelation> serial_join;
    for (int threads : {1, 2, 3, 8}) {
      const ParallelOptions par{threads};
      const std::string tag = what + " t=" + std::to_string(threads);
      auto join_enc = JoinComponentsEncoded(schema, enc, d, par);
      ASSERT_OK(join_enc.status()) << tag;
      // Align the join's component-ordered columns with the reference.
      std::vector<AttributeId> mapping;
      for (AttributeId a = 0; a < join_ref.value().num_columns(); ++a) {
        auto j = join_enc.value().schema.FindAttribute(
            join_ref.value().schema().attribute_name(a));
        ASSERT_OK(j.status()) << tag;
        mapping.push_back(j.value());
      }
      const EncodedRelation aligned{
          join_ref.value().schema(),
          join_enc.value().columns.GatherColumns(mapping)};
      ExpectSameRelation(join_ref.value(), aligned, tag + " [join]");

      auto lossless_enc = IsLosslessForInstanceEncoded(schema, enc, d, par);
      ASSERT_OK(lossless_enc.status()) << tag;
      EXPECT_EQ(lossless_enc.value(), lossless_ref.value()) << tag;

      // Every parallel run must reproduce the serial run bit for bit —
      // not just the same multiset.
      if (threads == 1) {
        serial_join = std::move(join_enc).value();
      } else {
        ExpectBitIdentical(*serial_join, join_enc.value(), tag);
      }
    }
    // Theorem 11 itself: when the instance satisfies the c-FD, the
    // decomposition must be lossless for it.
    fd.mode = Mode::kCertain;
    if (Satisfies(table, fd)) {
      EXPECT_TRUE(lossless_ref.value()) << what << " [thm11]";
    }
  }
}

// --- Executor join corners: adversarial shapes for the morsel pipeline
// — a single-hot-key skew table (one bucket holds every build row), a
// zero-match join (count pass totals 0), empty inputs on either side,
// and a join with no common columns (the cartesian path). Each is
// crossed against the row-major join — including the exact emitted row
// ORDER, which both executors pin to left-major / right-ascending —
// and the parallel runs must reproduce the serial run bit for bit.

Table MakeJoinInput(const std::string& name,
                    const std::vector<std::string>& attrs,
                    const std::vector<std::vector<Value>>& rows) {
  auto schema = TableSchema::Make(name, attrs, {});
  EXPECT_TRUE(schema.ok()) << schema.status().ToString();
  Table t(std::move(schema).value());
  for (const std::vector<Value>& r : rows) {
    auto st = t.AddRow(Tuple(r));
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return t;
}

void CheckJoinCorner(const Table& left, const Table& right,
                     const std::string& what) {
  auto ref = EqualityJoin(left, right, "j");
  ASSERT_OK(ref.status()) << what;
  const EncodedRelation el = EncodedRelation::FromTable(left);
  const EncodedRelation er = EncodedRelation::FromTable(right);
  // The serial scalar run anchors the sweep: every level × thread-count
  // combination must reproduce it bit for bit (the hash/probe/emit
  // kernels are bit-identical across dispatch levels by contract).
  std::optional<EncodedRelation> serial;
  LevelSweepGuard guard;
  for (const simd::Level level : SweepLevels()) {
    simd::SetLevelForTesting(level);
    for (int threads : {1, 2, 3, 8}) {
      const std::string tag = what + " t=" + std::to_string(threads) +
                              " level " + simd::LevelName(level);
      auto got = EqualityJoinEncoded(el, er, "j", ParallelOptions{threads});
      ASSERT_OK(got.status()) << tag;
      if (!serial.has_value()) {
        ExpectSameRelation(ref.value(), got.value(), what + " [serial]");
        const Table decoded = got.value().ToTable();
        ASSERT_EQ(ref.value().num_rows(), decoded.num_rows()) << what;
        for (int i = 0; i < decoded.num_rows(); ++i) {
          ASSERT_EQ(ref.value().row(i), decoded.row(i))
              << what << " row " << i;
        }
        serial = std::move(got).value();
      } else {
        ExpectBitIdentical(*serial, got.value(), tag);
      }
    }
  }
}

TEST(DifferentialTest, ExecutorJoinCorners) {
  // Skew: every left and right row carries the same key, so the CSR
  // index degenerates to one full bucket and each left morsel emits
  // |right| rows. A sprinkle of ⊥ keys exercises kNullCode equality.
  {
    std::vector<std::vector<Value>> lrows, rrows;
    for (int i = 0; i < 400; ++i) {
      const Value k = i % 11 == 0 ? Value::Null() : Value::Str("hot");
      lrows.push_back({k, Value::Int(i % 7)});
    }
    for (int j = 0; j < 23; ++j) {
      const Value k = j % 5 == 0 ? Value::Null() : Value::Str("hot");
      rrows.push_back({k, Value::Int(j)});
    }
    CheckJoinCorner(MakeJoinInput("L", {"k", "l"}, lrows),
                    MakeJoinInput("R", {"k", "r"}, rrows), "skew");
  }

  // Zero matches: shared column, disjoint key sets — the count pass
  // totals zero and the output must be an empty 3-column relation.
  {
    std::vector<std::vector<Value>> lrows, rrows;
    for (int i = 0; i < 50; ++i) {
      lrows.push_back({Value::Int(i), Value::Str("l")});
      rrows.push_back({Value::Int(1000 + i), Value::Str("r")});
    }
    CheckJoinCorner(MakeJoinInput("L", {"k", "l"}, lrows),
                    MakeJoinInput("R", {"k", "r"}, rrows), "zero-match");
  }

  // Empty inputs on either side (and both).
  {
    std::vector<std::vector<Value>> rows;
    for (int i = 0; i < 20; ++i) {
      rows.push_back({Value::Int(i % 4), Value::Int(i)});
    }
    const Table empty_l = MakeJoinInput("L", {"k", "l"}, {});
    const Table empty_r = MakeJoinInput("R", {"k", "r"}, {});
    CheckJoinCorner(empty_l, MakeJoinInput("R", {"k", "r"}, rows),
                    "empty-left");
    CheckJoinCorner(MakeJoinInput("L", {"k", "l"}, rows), empty_r,
                    "empty-right");
    CheckJoinCorner(empty_l, empty_r, "empty-both");
  }

  // No common columns: the cartesian path. Before the special case this
  // hashed every row to the same FNV offset basis — one giant bucket.
  {
    std::vector<std::vector<Value>> lrows, rrows;
    for (int i = 0; i < 37; ++i) {
      lrows.push_back({Value::Int(i), i % 6 == 0 ? Value::Null()
                                                 : Value::Str("x")});
    }
    for (int j = 0; j < 29; ++j) {
      rrows.push_back({Value::Str("y" + std::to_string(j % 3))});
    }
    CheckJoinCorner(MakeJoinInput("L", {"a", "b"}, lrows),
                    MakeJoinInput("R", {"c"}, rrows), "cartesian");
    CheckJoinCorner(MakeJoinInput("L", {"a", "b"}, lrows),
                    MakeJoinInput("R", {"c"}, {}), "cartesian-empty-right");
  }
}

// --- Executor sweep 2: DML on codes vs DML on rows. SelectRowsEncoded,
// UpdateWhereEncoded and DeleteWhereEncoded against the predicate-based
// reference operators with the equivalent ColumnCondition predicate.
TEST(DifferentialTest, ExecutorDmlOnCodes) {
  Rng rng(31337);
  const int tables = ScaledIters(100);
  for (int iter = 0; iter < tables; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 6));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table =
        RandomInstance(&rng, schema, static_cast<int>(rng.Uniform(0, 50)),
                       /*domain=*/3, rng.NextDouble() * 0.5);
    const std::string what = "dml iter=" + std::to_string(iter);
    const std::vector<ColumnCondition> conds = RandomConditions(&rng, table);
    auto pred = [&](const Tuple& t) { return MatchesConditions(t, conds); };

    // Selection: same rows, in the same (ascending) scan order, and the
    // morsel-parallel scan returns the exact same vector as serial.
    const EncodedTable enc(table);
    const Table sel_ref = SelectWhere(table, pred);
    const std::vector<int> sel = SelectRowsEncoded(enc, conds);
    const Table sel_enc = enc.GatherRows(sel).Decode(schema);
    EXPECT_EQ(sel_ref.num_rows(), sel_enc.num_rows()) << what;
    for (int i = 0; i < sel_ref.num_rows() && i < sel_enc.num_rows(); ++i) {
      EXPECT_EQ(sel_ref.row(i), sel_enc.row(i)) << what << " row " << i;
    }
    {
      // Same selection vector at every dispatch level × thread count.
      LevelSweepGuard guard;
      for (const simd::Level level : SweepLevels()) {
        simd::SetLevelForTesting(level);
        for (int threads : {1, 2, 3, 8}) {
          EXPECT_EQ(SelectRowsEncoded(enc, conds, ParallelOptions{threads}),
                    sel)
              << what << " t=" << threads << " level "
              << simd::LevelName(level);
        }
      }
    }

    // Update: a fresh non-⊥ value into a random column (⊥ would trip
    // the reference path's NFS guard, which the raw encoded op — used
    // below the Database layer, where the enforcer owns that check —
    // deliberately lacks).
    const AttributeId target =
        static_cast<AttributeId>(rng.Index(cols));
    const Value new_value =
        rng.Chance(0.5)
            ? Value::Str("updated-" + std::to_string(iter))
            : (table.num_rows() > 0
                   ? table.row(static_cast<int>(
                         rng.Index(table.num_rows())))[target]
                   : Value::Str("updated"));
    if (!new_value.is_null()) {
      Table upd_ref = table;
      EncodedTable upd_enc(table);
      auto changed_ref = UpdateWhere(&upd_ref, pred, target, new_value);
      ASSERT_OK(changed_ref.status()) << what;
      const int changed_enc =
          UpdateWhereEncoded(&upd_enc, conds, target, new_value);
      EXPECT_EQ(changed_ref.value(), changed_enc) << what;
      EXPECT_TRUE(upd_ref.SameMultiset(upd_enc.Decode(schema))) << what;
    }

    // Delete: same removed count, identical survivors.
    Table del_ref = table;
    EncodedTable del_enc(table);
    const int removed_ref = DeleteWhere(&del_ref, pred);
    const int removed_enc = DeleteWhereEncoded(&del_enc, conds);
    EXPECT_EQ(removed_ref, removed_enc) << what;
    EXPECT_TRUE(del_ref.SameMultiset(del_enc.Decode(schema))) << what;
  }
}

// --- Executor sweep 3: the Database columnar DML end to end. With an
// empty Σ (and an empty NFS, so no rejections) every Insert / Select /
// Update / Delete through the catalog must track a shadow row-major
// Table driven by the reference operators.
TEST(DifferentialTest, DatabaseColumnarDmlMatchesShadowTable) {
  WriterScope writer;
  Rng rng(60606);
  const int runs = ScaledIters(40);
  for (int iter = 0; iter < runs; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 5));
    std::string attrs;
    for (int i = 0; i < cols; ++i) attrs.push_back(static_cast<char>('a' + i));
    const TableSchema schema = testing::Schema(attrs, /*not_null=*/"");
    Table shadow =
        RandomInstance(&rng, schema, static_cast<int>(rng.Uniform(0, 40)),
                       /*domain=*/3, rng.NextDouble() * 0.4);
    const std::string what = "db iter=" + std::to_string(iter);

    Database db;
    ASSERT_OK(db.IngestTable(shadow, ConstraintSet{})) << what;
    auto stored = db.Find(schema.name());
    ASSERT_OK(stored.status()) << what;

    const int ops = static_cast<int>(rng.Uniform(3, 8));
    for (int op = 0; op < ops; ++op) {
      const std::vector<ColumnCondition> conds =
          RandomConditions(&rng, shadow);
      auto pred = [&](const Tuple& t) { return MatchesConditions(t, conds); };
      const int kind = static_cast<int>(rng.Index(4));
      if (kind == 0) {  // INSERT
        std::vector<Value> row;
        for (int c = 0; c < cols; ++c) {
          row.push_back(rng.Chance(0.2)
                            ? Value::Null()
                            : Value::Int(rng.Uniform(0, 2)));
        }
        Tuple t{std::move(row)};
        ASSERT_OK(db.Insert(schema.name(), t)) << what;
        ASSERT_OK(shadow.AddRow(t)) << what;
      } else if (kind == 1) {  // SELECT
        auto got = db.Select(schema.name(), conds);
        ASSERT_OK(got.status()) << what;
        EXPECT_TRUE(SelectWhere(shadow, pred).SameMultiset(got.value()))
            << what;
      } else if (kind == 2) {  // UPDATE (non-⊥ value: Σ empty, NFS empty)
        const AttributeId target = static_cast<AttributeId>(rng.Index(cols));
        const Value v = Value::Int(rng.Uniform(0, 2));
        auto changed = db.Update(schema.name(), conds, target, v);
        ASSERT_OK(changed.status()) << what;
        auto changed_ref = UpdateWhere(&shadow, pred, target, v);
        ASSERT_OK(changed_ref.status()) << what;
        EXPECT_EQ(changed.value(), changed_ref.value()) << what;
      } else {  // DELETE
        auto removed = db.Delete(schema.name(), conds);
        ASSERT_OK(removed.status()) << what;
        EXPECT_EQ(removed.value(), DeleteWhere(&shadow, pred)) << what;
      }
      EXPECT_TRUE((*stored)->Materialize().SameMultiset(shadow))
          << what << " after op " << op;
    }
  }
}

}  // namespace
}  // namespace sqlnf
