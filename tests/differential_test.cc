// Differential test harness: every validation path in the repo must
// agree with the literal Definition-1/2 oracle (reference_oracle.h) on
// hundreds of seeded-random tables.
//
// Paths crossed per (table, constraint):
//   * the oracle (all-pairs, similarity inlined),
//   * constraints/satisfies.h (the reference checker),
//   * the legacy tuple-hashing path (FindFdViolationTuple / ...KeyTuple),
//   * the columnar kernels on a full EncodedTable at threads ∈ {1, 4},
//   * the stripped-partition path for possible constraints,
//   * the Table entry points (ValidateFd / ValidateKey / Find*Fast),
//   * the possible-world enumeration for keys on small tables.
//
// Verdicts must be identical everywhere. Witnesses may differ between
// paths (any violating pair is correct), so when a path reports a
// violation we re-check the reported pair against the oracle's
// similarity predicates instead of comparing pair indices.
//
// SQLNF_DIFF_ITERS (integer ≥ 1, default 1) multiplies every sweep —
// the nightly CI job runs the suite with a larger multiplier.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/datagen/generator.h"
#include "sqlnf/engine/validate.h"
#include "sqlnf/util/rng.h"
#include "reference_oracle.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::OracleEqualOn;
using testing::OracleSatisfiesFd;
using testing::OracleSatisfiesKey;
using testing::OracleSatisfiesKeyByWorlds;
using testing::OracleStronglySimilar;
using testing::OracleWeaklySimilar;
using testing::RandomInstance;
using testing::RandomSchema;
using testing::RandomSubset;

int IterMultiplier() {
  const char* env = std::getenv("SQLNF_DIFF_ITERS");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v >= 1 ? v : 1;
}

int ScaledIters(int base) { return base * IterMultiplier(); }

// The witness a path returned must itself be a violating pair under the
// oracle's definitions — verdict equality alone would let a path return
// "violated" with a bogus pair.
void ExpectGenuineFdWitness(const Table& table, const FunctionalDependency& fd,
                            const Violation& v, const std::string& context) {
  ASSERT_GE(v.row1, 0) << context;
  ASSERT_LT(v.row1, table.num_rows()) << context;
  ASSERT_GE(v.row2, 0) << context;
  ASSERT_LT(v.row2, table.num_rows()) << context;
  const Tuple& t = table.row(v.row1);
  const Tuple& u = table.row(v.row2);
  const bool similar = fd.is_possible() ? OracleStronglySimilar(t, u, fd.lhs)
                                        : OracleWeaklySimilar(t, u, fd.lhs);
  EXPECT_TRUE(similar && !OracleEqualOn(t, u, fd.rhs))
      << context << ": reported pair (" << v.row1 << "," << v.row2
      << ") is not a violation of " << fd.ToString(table.schema());
}

void ExpectGenuineKeyWitness(const Table& table, const KeyConstraint& key,
                             const Violation& v, const std::string& context) {
  ASSERT_GE(v.row1, 0) << context;
  ASSERT_LT(v.row1, table.num_rows()) << context;
  ASSERT_GE(v.row2, 0) << context;
  ASSERT_LT(v.row2, table.num_rows()) << context;
  ASSERT_NE(v.row1, v.row2) << context;
  const Tuple& t = table.row(v.row1);
  const Tuple& u = table.row(v.row2);
  EXPECT_TRUE(key.is_possible() ? OracleStronglySimilar(t, u, key.attrs)
                                : OracleWeaklySimilar(t, u, key.attrs))
      << context << ": reported pair (" << v.row1 << "," << v.row2
      << ") is not a violation of " << key.ToString(table.schema());
}

void CheckFdAllPaths(const Table& table, const EncodedTable& enc,
                     const FunctionalDependency& fd,
                     const std::string& context) {
  const bool expect = OracleSatisfiesFd(table, fd);
  const std::string what = context + " fd=" + fd.ToString(table.schema());

  EXPECT_EQ(Satisfies(table, fd), expect) << what << " [satisfies.h]";
  EXPECT_EQ(ValidateFd(table, fd), expect) << what << " [ValidateFd]";

  auto tuple = FindFdViolationTuple(table, fd);
  EXPECT_EQ(!tuple.has_value(), expect) << what << " [tuple]";
  if (tuple) ExpectGenuineFdWitness(table, fd, *tuple, what + " [tuple]");

  for (int threads : {1, 4}) {
    const ParallelOptions par{threads};
    const std::string tag = what + " [encoded t=" + std::to_string(threads) +
                            "]";
    auto encoded = FindFdViolationEncoded(enc, fd, par);
    EXPECT_EQ(!encoded.has_value(), expect) << tag;
    if (encoded) ExpectGenuineFdWitness(table, fd, *encoded, tag);
    EXPECT_EQ(ValidateFdEncoded(enc, fd, par), expect) << tag;
  }

  auto fast = FindFdViolationFast(table, fd);
  EXPECT_EQ(!fast.has_value(), expect) << what << " [fast]";
  if (fast) ExpectGenuineFdWitness(table, fd, *fast, what + " [fast]");

  if (fd.is_possible()) {
    EXPECT_EQ(ValidateFdPartition(enc, fd), expect) << what << " [partition]";
  }
}

void CheckKeyAllPaths(const Table& table, const EncodedTable& enc,
                      const KeyConstraint& key, const std::string& context) {
  const bool expect = OracleSatisfiesKey(table, key);
  const std::string what = context + " key=" + key.ToString(table.schema());

  EXPECT_EQ(Satisfies(table, key), expect) << what << " [satisfies.h]";
  EXPECT_EQ(ValidateKey(table, key), expect) << what << " [ValidateKey]";

  auto tuple = FindKeyViolationTuple(table, key);
  EXPECT_EQ(!tuple.has_value(), expect) << what << " [tuple]";
  if (tuple) ExpectGenuineKeyWitness(table, key, *tuple, what + " [tuple]");

  for (int threads : {1, 4}) {
    const ParallelOptions par{threads};
    const std::string tag = what + " [encoded t=" + std::to_string(threads) +
                            "]";
    auto encoded = FindKeyViolationEncoded(enc, key, par);
    EXPECT_EQ(!encoded.has_value(), expect) << tag;
    if (encoded) ExpectGenuineKeyWitness(table, key, *encoded, tag);
    EXPECT_EQ(ValidateKeyEncoded(enc, key, par), expect) << tag;
  }

  auto fast = FindKeyViolationFast(table, key);
  EXPECT_EQ(!fast.has_value(), expect) << what << " [fast]";
  if (fast) ExpectGenuineKeyWitness(table, key, *fast, what + " [fast]");

  if (key.is_possible()) {
    EXPECT_EQ(ValidateKeyPartition(enc, key), expect) << what
                                                      << " [partition]";
  }
}

// All four constraint classes (p-/c-FD, p-/c-key) over random column
// subsets of one table, through every path.
void CheckTableAllClasses(const Table& table, Rng* rng,
                          const std::string& context,
                          int constraints_per_class = 3) {
  const int n = table.schema().num_attributes();
  const EncodedTable enc(table);
  for (int i = 0; i < constraints_per_class; ++i) {
    FunctionalDependency fd;
    fd.lhs = RandomSubset(rng, n);
    fd.rhs = RandomSubset(rng, n);
    if (fd.rhs.empty()) {
      fd.rhs = AttributeSet::Single(static_cast<AttributeId>(rng->Index(n)));
    }
    for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
      fd.mode = mode;
      CheckFdAllPaths(table, enc, fd, context);
    }
    KeyConstraint key;
    key.attrs = RandomSubset(rng, n, 0.5);
    if (key.attrs.empty()) {
      key.attrs =
          AttributeSet::Single(static_cast<AttributeId>(rng->Index(n)));
    }
    for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
      key.mode = mode;
      CheckKeyAllPaths(table, enc, key, context);
    }
  }
}

// --- Sweep 1: hand-rolled random instances with random NOT NULL sets.
// RandomInstance draws from a 3-value domain, so agreements, weak
// similarity through ⊥, and genuine violations all occur frequently.
TEST(DifferentialTest, RandomInstancesAllPaths) {
  Rng rng(20260806);
  const int tables = ScaledIters(120);
  for (int iter = 0; iter < tables; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 6));
    const TableSchema schema = RandomSchema(&rng, cols);
    const int rows = static_cast<int>(rng.Uniform(1, 60));
    const double null_rate = rng.NextDouble() * 0.5;
    const Table table = RandomInstance(&rng, schema, rows, /*domain=*/3,
                                       null_rate);
    CheckTableAllClasses(table, &rng,
                         "random iter=" + std::to_string(iter));
  }
}

// --- Sweep 2: datagen/generator tables — planted FDs, duplicate rows,
// dirty perturbations, per-column null rates. Exercises the string-typed
// value path and realistic (FD-respecting) data shapes.
TEST(DifferentialTest, GeneratorTablesAllPaths) {
  Rng rng(777);
  const int tables = ScaledIters(80);
  for (int iter = 0; iter < tables; ++iter) {
    TableSpec spec;
    spec.num_columns = static_cast<int>(rng.Uniform(3, 7));
    spec.num_rows = static_cast<int>(rng.Uniform(10, 120));
    spec.seed = 1000 + static_cast<uint64_t>(iter);
    for (int c = 0; c < spec.num_columns; ++c) {
      spec.domain_sizes.push_back(static_cast<int>(rng.Uniform(2, 8)));
      spec.null_rates.push_back(rng.Chance(0.5) ? rng.NextDouble() * 0.4
                                                : 0.0);
    }
    if (rng.Chance(0.7) && spec.num_columns >= 2) {
      PlantedFd fd;
      fd.lhs.push_back(static_cast<int>(rng.Index(spec.num_columns)));
      int rhs = static_cast<int>(rng.Index(spec.num_columns));
      if (rhs == fd.lhs[0]) rhs = (rhs + 1) % spec.num_columns;
      fd.rhs.push_back(rhs);
      spec.fds.push_back(fd);
    }
    spec.duplicate_rate = rng.Chance(0.5) ? rng.NextDouble() * 0.3 : 0.0;
    spec.dirty_rate = rng.Chance(0.5) ? rng.NextDouble() * 0.2 : 0.0;

    auto table = GenerateTable(spec);
    ASSERT_OK(table.status());
    CheckTableAllClasses(table.value(), &rng,
                         "generated iter=" + std::to_string(iter));
  }
}

// --- Sweep 3: whole-Σ validation. ValidateAll / ValidateAllEncoded
// must agree with SatisfiesAll (which includes the schema NFS).
TEST(DifferentialTest, WholeSigmaValidation) {
  Rng rng(4242);
  const int tables = ScaledIters(60);
  for (int iter = 0; iter < tables; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 6));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table =
        RandomInstance(&rng, schema, static_cast<int>(rng.Uniform(0, 40)),
                       /*domain=*/3, rng.NextDouble() * 0.4);
    const ConstraintSet sigma = testing::RandomSigma(
        &rng, cols, /*fds=*/static_cast<int>(rng.Uniform(0, 3)),
        /*keys=*/static_cast<int>(rng.Uniform(0, 2)));

    bool expect = true;
    for (AttributeId a : schema.nfs()) {
      for (int r = 0; r < table.num_rows(); ++r) {
        if (table.row(r)[a].is_null()) expect = false;
      }
    }
    for (const auto& fd : sigma.fds()) {
      if (!OracleSatisfiesFd(table, fd)) expect = false;
    }
    for (const auto& key : sigma.keys()) {
      if (!OracleSatisfiesKey(table, key)) expect = false;
    }

    EXPECT_EQ(SatisfiesAll(table, sigma), expect) << "iter=" << iter;
    const EncodedTable enc(table);
    for (int threads : {1, 4}) {
      const ParallelOptions par{threads};
      EXPECT_EQ(ValidateAll(table, sigma, par), expect)
          << "iter=" << iter << " t=" << threads;
      EXPECT_EQ(ValidateAllEncoded(enc, schema.nfs(), sigma, par), expect)
          << "iter=" << iter << " t=" << threads;
    }
  }
}

// --- Sweep 4: the possible-world semantics itself. On small tables the
// key definitions must coincide with their world characterization:
// p⟨X⟩ ⟺ some completion duplicate-free on X, c⟨X⟩ ⟺ every one.
TEST(DifferentialTest, KeyWorldSemanticsOnSmallTables) {
  Rng rng(9001);
  const int tables = ScaledIters(40);
  int enumerated = 0;
  for (int iter = 0; iter < tables; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(2, 4));
    const TableSchema schema = RandomSchema(&rng, cols);
    const Table table =
        RandomInstance(&rng, schema, static_cast<int>(rng.Uniform(1, 5)),
                       /*domain=*/2, 0.4);
    const EncodedTable enc(table);
    KeyConstraint key;
    key.attrs = RandomSubset(&rng, cols, 0.6);
    if (key.attrs.empty()) {
      key.attrs =
          AttributeSet::Single(static_cast<AttributeId>(rng.Index(cols)));
    }
    for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
      key.mode = mode;
      WorldLimits limits;
      limits.max_worlds = 50'000;
      auto worlds = OracleSatisfiesKeyByWorlds(table, key, limits);
      if (!worlds.ok()) continue;  // enumeration too large for this draw
      ++enumerated;
      const bool expect = worlds.value();
      EXPECT_EQ(OracleSatisfiesKey(table, key), expect)
          << "iter=" << iter << " key=" << key.ToString(schema);
      EXPECT_EQ(ValidateKeyEncoded(enc, key), expect)
          << "iter=" << iter << " key=" << key.ToString(schema);
      if (key.is_possible()) {
        EXPECT_EQ(ValidateKeyPartition(enc, key), expect)
            << "iter=" << iter << " key=" << key.ToString(schema);
      }
    }
  }
  // The sweep must actually exercise the enumeration, not skip it all.
  EXPECT_GE(enumerated, tables / 2);
}

// --- Pinned regressions: hand-written corners every path must agree on.
TEST(DifferentialTest, PinnedCorners) {
  using testing::Fd;
  using testing::Key;
  using testing::Rows;
  using testing::Schema;

  struct Case {
    const char* schema;
    std::vector<std::string> rows;
  };
  const std::vector<Case> cases = {
      {"ab", {}},                              // empty instance
      {"ab", {"1x"}},                          // single row
      {"ab", {"1x", "1x"}},                    // exact duplicates
      {"ab", {"1x", "1y"}},                    // FD violation, total
      {"ab", {"_x", "_y"}},                    // all-⊥ LHS
      {"ab", {"1x", "_y"}},                    // ⊥ meets value
      {"abc", {"1_x", "_2x", "12y"}},          // transitive weak links
      {"abc", {"11a", "11a", "1_b", "_1c"}},   // duplicates + nulls
      {"ab", {"__", "__"}},                    // fully null rows
  };
  Rng rng(5);
  int idx = 0;
  for (const Case& c : cases) {
    const TableSchema schema = Schema(c.schema);
    const Table table = Rows(schema, c.rows);
    const EncodedTable enc(table);
    const int n = schema.num_attributes();
    // Exhaustive over all non-empty attr subsets in both modes.
    for (uint64_t bits = 1; bits < (1ull << n); ++bits) {
      AttributeSet x;
      for (int a = 0; a < n; ++a) {
        if (bits & (1ull << a)) x.Add(a);
      }
      for (Mode mode : {Mode::kPossible, Mode::kCertain}) {
        KeyConstraint key;
        key.attrs = x;
        key.mode = mode;
        CheckKeyAllPaths(table, enc, key, "pinned case " +
                                              std::to_string(idx));
        FunctionalDependency fd;
        fd.lhs = x;
        fd.rhs = AttributeSet::Single(
            static_cast<AttributeId>(rng.Index(n)));
        fd.mode = mode;
        CheckFdAllPaths(table, enc, fd, "pinned case " +
                                            std::to_string(idx));
      }
    }
    ++idx;
  }
}

}  // namespace
}  // namespace sqlnf
