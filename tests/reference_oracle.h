// The differential-testing oracle: Definition 1 (possible/certain FDs)
// and the possible/certain key definitions, transcribed LITERALLY from
// the paper — a quantifier over all tuple pairs with the similarity
// notions inlined as per-attribute value comparisons. Deliberately
// independent of core/similarity.h, constraints/satisfies.h and the
// engine kernels: the only shared vocabulary is Value equality. Slow
// (O(n²·|T|)) and proud of it.
//
// For keys, the possible-world characterization [Köhler/Link/Zhou] is
// also provided via related/possible_worlds.h enumeration:
//   p⟨X⟩ holds  ⟺  SOME completion has no two rows equal on X,
//   c⟨X⟩ holds  ⟺  EVERY completion has no two rows equal on X.
// Differential tests run it on small tables only (world counts explode).

#ifndef SQLNF_TESTS_REFERENCE_ORACLE_H_
#define SQLNF_TESTS_REFERENCE_ORACLE_H_

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"
#include "sqlnf/related/possible_worlds.h"
#include "sqlnf/util/status.h"

namespace sqlnf::testing {

/// t[A] = t'[A] for all A ∈ X; ⊥ matches only ⊥ (syntactic equality).
inline bool OracleEqualOn(const Tuple& t, const Tuple& u,
                          const AttributeSet& x) {
  for (AttributeId a : x) {
    if (!(t[a] == u[a])) return false;
  }
  return true;
}

/// t[X] ~s t'[X]: every A ∈ X non-null on both sides and equal.
inline bool OracleStronglySimilar(const Tuple& t, const Tuple& u,
                                  const AttributeSet& x) {
  for (AttributeId a : x) {
    if (t[a].is_null() || u[a].is_null() || !(t[a] == u[a])) return false;
  }
  return true;
}

/// t[X] ~w t'[X]: every A ∈ X equal or ⊥ on either side.
inline bool OracleWeaklySimilar(const Tuple& t, const Tuple& u,
                                const AttributeSet& x) {
  for (AttributeId a : x) {
    if (t[a].is_null() || u[a].is_null()) continue;
    if (!(t[a] == u[a])) return false;
  }
  return true;
}

/// Definition 1: I ⊢ X →s Y (possible) / X →w Y (certain) — for ALL
/// pairs t ≠ t' (by position; duplicates form pairs too): LHS
/// similarity implies exact equality on Y.
inline bool OracleSatisfiesFd(const Table& table,
                              const FunctionalDependency& fd) {
  const int n = table.num_rows();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Tuple& t = table.row(i);
      const Tuple& u = table.row(j);
      const bool similar = fd.is_possible()
                               ? OracleStronglySimilar(t, u, fd.lhs)
                               : OracleWeaklySimilar(t, u, fd.lhs);
      if (similar && !OracleEqualOn(t, u, fd.rhs)) return false;
    }
  }
  return true;
}

/// p⟨X⟩ / c⟨X⟩: no two rows with distinct identities strongly / weakly
/// similar on X (duplicate rows violate every key — paper, Fig. 3).
inline bool OracleSatisfiesKey(const Table& table,
                               const KeyConstraint& key) {
  const int n = table.num_rows();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const Tuple& t = table.row(i);
      const Tuple& u = table.row(j);
      const bool similar = key.is_possible()
                               ? OracleStronglySimilar(t, u, key.attrs)
                               : OracleWeaklySimilar(t, u, key.attrs);
      if (similar) return false;
    }
  }
  return true;
}

inline bool OracleSatisfies(const Table& table, const Constraint& c) {
  if (const auto* fd = std::get_if<FunctionalDependency>(&c)) {
    return OracleSatisfiesFd(table, *fd);
  }
  return OracleSatisfiesKey(table, std::get<KeyConstraint>(c));
}

/// The possible-world key oracle: enumerates the canonical completions
/// of the ⊥ cells in `key.attrs` and asks whether X is duplicate-free.
/// p⟨X⟩ quantifies existentially over worlds, c⟨X⟩ universally.
/// Returns OutOfRange when the enumeration exceeds `limits`.
inline Result<bool> OracleSatisfiesKeyByWorlds(const Table& table,
                                               const KeyConstraint& key,
                                               const WorldLimits& limits = {}) {
  bool some_world_duplicate_free = false;
  bool every_world_duplicate_free = true;
  auto duplicate_free = [&](const Table& world) {
    for (int i = 0; i < world.num_rows(); ++i) {
      for (int j = i + 1; j < world.num_rows(); ++j) {
        if (OracleEqualOn(world.row(i), world.row(j), key.attrs)) {
          return false;
        }
      }
    }
    return true;
  };
  auto visited = ForEachCompletion(
      table, key.attrs,
      [&](const Table& world) {
        if (duplicate_free(world)) {
          some_world_duplicate_free = true;
        } else {
          every_world_duplicate_free = false;
        }
        // Stop once both quantifiers are decided.
        return !(some_world_duplicate_free && !every_world_duplicate_free);
      },
      limits);
  if (!visited.ok()) return visited.status();
  return key.is_possible() ? some_world_duplicate_free
                           : every_world_duplicate_free;
}

}  // namespace sqlnf::testing

#endif  // SQLNF_TESTS_REFERENCE_ORACLE_H_
