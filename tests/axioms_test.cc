// The axiom systems 𝔉, 𝔎, 𝔉𝔎 (Tables 1-3): per-rule soundness checked
// by model checking on random instances, derivation examples from the
// paper, and proof explanations.

#include "sqlnf/reasoning/axioms.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Fd;
using testing::Key;
using testing::RandomInstance;
using testing::RandomSchema;
using testing::RandomSigma;
using testing::Schema;
using testing::Sigma;

TEST(AxiomsTest, PaperDerivationExample) {
  // Section 4.1: from oi ->s c and ic ->w p, L-augmentation gives
  // oic ->w p, pseudo-transitivity gives oi ->s p.
  TableSchema schema = Schema("oicp", "ocp");
  ASSERT_OK_AND_ASSIGN(
      AxiomEngine engine,
      AxiomEngine::Saturate(schema, Sigma(schema, "oi ->s c; ic ->w p")));
  EXPECT_TRUE(engine.Derivable(Fd(schema, "oic ->w p")));
  EXPECT_TRUE(engine.Derivable(Fd(schema, "oi ->s p")));
  EXPECT_FALSE(engine.Derivable(Fd(schema, "oi ->w p")));
}

TEST(AxiomsTest, PaperKeyDerivationExample) {
  // Section 4.2: key-null-transitivity derives p<oi> from oi ->s c and
  // p<oic> because c ∈ T_S.
  TableSchema schema = Schema("oicp", "ocp");
  ASSERT_OK_AND_ASSIGN(
      AxiomEngine engine,
      AxiomEngine::Saturate(schema, Sigma(schema, "oi ->s c; p<oic>")));
  EXPECT_TRUE(engine.Derivable(Key(schema, "p<oi>")));
  EXPECT_FALSE(engine.Derivable(Key(schema, "c<oi>")));
}

TEST(AxiomsTest, StrengtheningNeedsNullFreeLhs) {
  TableSchema nn = Schema("ab", "a");
  ASSERT_OK_AND_ASSIGN(AxiomEngine e1,
                       AxiomEngine::Saturate(nn, Sigma(nn, "a ->s b")));
  EXPECT_TRUE(e1.Derivable(Fd(nn, "a ->w b")));

  TableSchema nullable = Schema("ab", "");
  ASSERT_OK_AND_ASSIGN(
      AxiomEngine e2,
      AxiomEngine::Saturate(nullable, Sigma(nullable, "a ->s b")));
  EXPECT_FALSE(e2.Derivable(Fd(nullable, "a ->w b")));
}

TEST(AxiomsTest, WeakeningIsDerivable) {
  // X ->w Y ⊢ X ->s Y follows from R + T even though no explicit
  // weakening rule exists.
  TableSchema schema = Schema("ab", "");
  ASSERT_OK_AND_ASSIGN(
      AxiomEngine engine,
      AxiomEngine::Saturate(schema, Sigma(schema, "a ->w b")));
  EXPECT_TRUE(engine.Derivable(Fd(schema, "a ->s b")));
}

TEST(AxiomsTest, KeyFdWeakening) {
  TableSchema schema = Schema("abc", "");
  ASSERT_OK_AND_ASSIGN(AxiomEngine engine,
                       AxiomEngine::Saturate(schema, Sigma(schema, "c<a>")));
  EXPECT_TRUE(engine.Derivable(Fd(schema, "a ->w bc")));
  EXPECT_TRUE(engine.Derivable(Key(schema, "p<a>")));  // kW
  EXPECT_TRUE(engine.Derivable(Fd(schema, "a ->s bc")));
}

TEST(AxiomsTest, ExplainProducesLinearProof) {
  TableSchema schema = Schema("oicp", "ocp");
  ASSERT_OK_AND_ASSIGN(
      AxiomEngine engine,
      AxiomEngine::Saturate(schema, Sigma(schema, "oi ->s c; ic ->w p")));
  ASSERT_OK_AND_ASSIGN(std::string proof,
                       engine.Explain(Constraint(Fd(schema, "oi ->s p"))));
  EXPECT_NE(proof.find("premise"), std::string::npos);
  EXPECT_NE(proof.find("{o,i} ->s {p}"), std::string::npos);
  // Underivable constraints report NotFound.
  EXPECT_FALSE(engine.Explain(Constraint(Fd(schema, "oi ->w p"))).ok());
}

TEST(AxiomsTest, RefusesLargeSchemas) {
  TableSchema big = Schema("abcdefgh");
  EXPECT_FALSE(AxiomEngine::Saturate(big, ConstraintSet()).ok());
}

TEST(AxiomsTest, EmptyRhsFdsAreTriviallyDerivable) {
  TableSchema schema = Schema("ab", "");
  ASSERT_OK_AND_ASSIGN(AxiomEngine engine,
                       AxiomEngine::Saturate(schema, ConstraintSet()));
  EXPECT_TRUE(engine.Derivable(Fd(schema, "a ->w {}")));
  EXPECT_TRUE(engine.Derivable(Fd(schema, "a ->s {}")));
}

// Soundness of the whole calculus (Theorems 1 and 4, "sound" half):
// every derivable constraint holds in every random instance that
// satisfies the premises.
class AxiomSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(AxiomSoundnessTest, DerivedConstraintsHoldInModels) {
  Rng rng(GetParam() * 13 + 1);
  for (int trial = 0; trial < 8; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 1));  // 2..3 attributes
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(&rng, n, 2, 1);
    auto engine = AxiomEngine::Saturate(schema, sigma);
    ASSERT_OK(engine.status());
    auto fds = engine->DerivedFds();
    auto keys = engine->DerivedKeys();
    for (int m = 0; m < 20; ++m) {
      Table instance = RandomInstance(&rng, schema, 3, 2);
      if (!SatisfiesAll(instance, sigma)) continue;
      for (const auto& fd : fds) {
        EXPECT_TRUE(Satisfies(instance, fd))
            << fd.ToString(schema) << " derived from "
            << sigma.ToString(schema) << "\n"
            << instance.ToString();
      }
      for (const auto& key : keys) {
        EXPECT_TRUE(Satisfies(instance, key))
            << key.ToString(schema) << " derived from "
            << sigma.ToString(schema) << "\n"
            << instance.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxiomSoundnessTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace sqlnf
