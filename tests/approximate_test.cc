// Approximate FDs/keys (the dirty-data lens): ε = 0 agrees with exact
// discovery; small ε recovers planted constraints hidden by corrupted
// rows.

#include "sqlnf/discovery/approximate.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sqlnf/datagen/generator.h"
#include "sqlnf/discovery/tane.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::RandomInstance;
using testing::Rows;
using testing::Schema;

TEST(ApproximateTest, ExactWhenEpsilonZero) {
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 2));
    TableSchema schema = testing::Schema(std::string("abcd").substr(0, n));
    Table t = RandomInstance(&rng, schema, 12, 2, 0.2);

    ApproximateOptions approx;
    approx.epsilon = 0.0;
    approx.max_lhs_size = n;
    ASSERT_OK_AND_ASSIGN(ApproximateResult a, DiscoverApproximate(t, approx));

    TaneOptions tane_options;
    tane_options.max_lhs_size = n + 1;
    ASSERT_OK_AND_ASSIGN(TaneResult tane, DiscoverFdsTane(t, tane_options));

    // Compare as (lhs, rhs) pairs.
    std::vector<std::pair<uint64_t, int>> approx_pairs, tane_pairs;
    for (const auto& fd : a.fds) {
      approx_pairs.emplace_back(fd.lhs.bits(), fd.rhs);
      EXPECT_EQ(fd.error, 0.0);
    }
    for (const auto& fd : tane.fds) {
      for (AttributeId r : fd.rhs) {
        tane_pairs.emplace_back(fd.lhs.bits(), r);
      }
    }
    std::sort(approx_pairs.begin(), approx_pairs.end());
    std::sort(tane_pairs.begin(), tane_pairs.end());
    EXPECT_EQ(approx_pairs, tane_pairs) << t.ToString();

    std::vector<AttributeSet> approx_keys;
    for (const auto& key : a.keys) approx_keys.push_back(key.attrs);
    std::sort(approx_keys.begin(), approx_keys.end());
    EXPECT_EQ(approx_keys, tane.minimal_keys);
  }
}

TEST(ApproximateTest, RecoversDirtyFd) {
  // b = f(a) except one corrupted row.
  TableSchema schema = Schema("abc");
  Table t = Rows(schema, {"1xA", "1xB", "2yC", "2yD", "3zE", "3zF",
                          "1qG"});  // row 6 breaks a -> b
  ApproximateOptions exact;
  exact.epsilon = 0.0;
  ASSERT_OK_AND_ASSIGN(ApproximateResult none, DiscoverApproximate(t, exact));
  bool found_exact = false;
  for (const auto& fd : none.fds) {
    if (fd.lhs == AttributeSet{0} && fd.rhs == 1) found_exact = true;
  }
  EXPECT_FALSE(found_exact);

  ApproximateOptions loose;
  loose.epsilon = 0.2;  // one of seven rows
  ASSERT_OK_AND_ASSIGN(ApproximateResult some, DiscoverApproximate(t, loose));
  bool found = false;
  for (const auto& fd : some.fds) {
    if (fd.lhs == AttributeSet{0} && fd.rhs == 1) {
      found = true;
      EXPECT_NEAR(fd.error, 1.0 / 7.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ApproximateTest, NearKeysMatchFigure6Narrative) {
  // A should-be-key column with duplicated contact details (the
  // paper's "identical contact details stored multiple times").
  TableSchema schema = Schema("kv");
  Table t(schema);
  for (int i = 0; i < 48; ++i) {
    ASSERT_OK(t.AddRowText({std::to_string(i), "v" + std::to_string(i)}));
  }
  ASSERT_OK(t.AddRowText({"7", "v7"}));   // dup
  ASSERT_OK(t.AddRowText({"13", "v13"})); // dup
  ApproximateOptions options;
  options.epsilon = 0.05;  // 2 of 50 rows duplicated
  ASSERT_OK_AND_ASSIGN(ApproximateResult result,
                       DiscoverApproximate(t, options));
  bool k_near_key = false;
  for (const auto& key : result.keys) {
    if (key.attrs == AttributeSet{0}) {
      k_near_key = true;
      EXPECT_NEAR(key.error, 2.0 / 50.0, 1e-9);
    }
  }
  EXPECT_TRUE(k_near_key);
}

TEST(ApproximateTest, MinimalityHoldsWithinEpsilon) {
  Rng rng(66);
  TableSchema schema = Schema("abcd");
  Table t = RandomInstance(&rng, schema, 20, 3, 0.1);
  ApproximateOptions options;
  options.epsilon = 0.1;
  options.max_lhs_size = 3;
  ASSERT_OK_AND_ASSIGN(ApproximateResult result,
                       DiscoverApproximate(t, options));
  // No reported FD's LHS contains another reported LHS for the same RHS.
  for (const auto& f1 : result.fds) {
    for (const auto& f2 : result.fds) {
      if (f1.rhs != f2.rhs) continue;
      if (f1.lhs == f2.lhs) continue;
      EXPECT_FALSE(f1.lhs.IsProperSubsetOf(f2.lhs))
          << "non-minimal approximate FD reported";
    }
  }
}

TEST(ApproximateTest, RejectsBadArguments) {
  Table empty(Schema("a"));
  EXPECT_FALSE(DiscoverApproximate(empty).ok());
  Table one = Rows(Schema("a"), {"1"});
  ApproximateOptions bad;
  bad.epsilon = 1.5;
  EXPECT_FALSE(DiscoverApproximate(one, bad).ok());
}

}  // namespace
}  // namespace sqlnf
