#include "sqlnf/core/schema.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqlnf {
namespace {

TEST(SchemaTest, MakeBasic) {
  auto schema = TableSchema::Make("t", {"a", "b", "c"}, {"a", "c"});
  ASSERT_OK(schema.status());
  EXPECT_EQ(schema->num_attributes(), 3);
  EXPECT_EQ(schema->attribute_name(1), "b");
  EXPECT_TRUE(schema->nfs().Contains(0));
  EXPECT_FALSE(schema->nfs().Contains(1));
  EXPECT_TRUE(schema->nfs().Contains(2));
}

TEST(SchemaTest, RejectsEmpty) {
  EXPECT_FALSE(TableSchema::Make("t", {}).ok());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  EXPECT_FALSE(TableSchema::Make("t", {"a", "a"}).ok());
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(TableSchema::Make("t", {"a", ""}).ok());
}

TEST(SchemaTest, RejectsUnknownNotNull) {
  EXPECT_FALSE(TableSchema::Make("t", {"a"}, {"z"}).ok());
}

TEST(SchemaTest, RejectsTooManyAttributes) {
  std::vector<std::string> names;
  for (int i = 0; i < 65; ++i) names.push_back("a" + std::to_string(i));
  EXPECT_FALSE(TableSchema::Make("t", names).ok());
}

TEST(SchemaTest, MakeCompactMatchesPaperNotation) {
  // PURCHASE = oicp with T_S = ocp (paper, Section 4.1).
  auto schema = TableSchema::MakeCompact("PURCHASE", "oicp", "ocp");
  ASSERT_OK(schema.status());
  EXPECT_EQ(schema->num_attributes(), 4);
  EXPECT_EQ(schema->attribute_name(0), "o");
  EXPECT_EQ(schema->nfs(), (AttributeSet{0, 2, 3}));
}

TEST(SchemaTest, FindAttribute) {
  TableSchema schema = testing::Schema("abc");
  ASSERT_OK_AND_ASSIGN(AttributeId id, schema.FindAttribute("b"));
  EXPECT_EQ(id, 1);
  EXPECT_FALSE(schema.FindAttribute("z").ok());
}

TEST(SchemaTest, FormatSet) {
  TableSchema schema = testing::Schema("abc");
  EXPECT_EQ(schema.FormatSet({0, 2}), "{a,c}");
  EXPECT_EQ(schema.FormatSet({}), "{}");
}

TEST(SchemaTest, ProjectRenumbersAndKeepsNfs) {
  TableSchema schema = testing::Schema("abcd", "bd");
  ASSERT_OK_AND_ASSIGN(TableSchema p, schema.Project({1, 3}, "p"));
  EXPECT_EQ(p.num_attributes(), 2);
  EXPECT_EQ(p.attribute_name(0), "b");
  EXPECT_EQ(p.attribute_name(1), "d");
  EXPECT_EQ(p.nfs(), AttributeSet::FullSet(2));
}

TEST(SchemaTest, ProjectRejectsEmptyAndForeign) {
  TableSchema schema = testing::Schema("ab");
  EXPECT_FALSE(schema.Project({}, "p").ok());
  EXPECT_FALSE(schema.Project({5}, "p").ok());
}

TEST(SchemaTest, SetNfsValidates) {
  TableSchema schema = testing::Schema("ab");
  EXPECT_OK(schema.SetNfs({1}));
  EXPECT_FALSE(schema.SetNfs({3}).ok());
}

TEST(SchemaTest, SameStructureIgnoresName) {
  auto a = TableSchema::MakeCompact("X", "ab", "a");
  auto b = TableSchema::MakeCompact("Y", "ab", "a");
  auto c = TableSchema::MakeCompact("X", "ab", "b");
  EXPECT_TRUE(a->SameStructure(*b));
  EXPECT_FALSE(a->SameStructure(*c));
}

}  // namespace
}  // namespace sqlnf
