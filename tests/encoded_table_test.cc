// Unit tests for the shared columnar representation
// (core/encoded_table.h): encoding invariants, incremental maintenance
// (AppendRow / UpdateCell / EraseRows), dictionary probing, and the
// code-bijection equivalence used by the enforcer consistency tests.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sqlnf/core/encoded_table.h"
#include "sqlnf/util/parallel.h"
#include "sqlnf/util/rng.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Rows;
using testing::Schema;

TEST(EncodedTableTest, CodesAreFirstOccurrenceDense) {
  const TableSchema schema = Schema("ab");
  const Table table = Rows(schema, {"1x", "2x", "1y", "_x"});
  const EncodedTable enc(table);
  ASSERT_EQ(enc.num_rows(), 4);
  ASSERT_EQ(enc.num_columns(), 2);
  // Column a: "1"→0, "2"→1, "1"→0, ⊥.
  EXPECT_EQ(enc.code(0, 0), 0u);
  EXPECT_EQ(enc.code(0, 1), 1u);
  EXPECT_EQ(enc.code(0, 2), 0u);
  EXPECT_EQ(enc.code(0, 3), EncodedTable::kNullCode);
  // Column b: "x"→0, "y"→1.
  EXPECT_EQ(enc.code(1, 0), 0u);
  EXPECT_EQ(enc.code(1, 2), 1u);
  EXPECT_EQ(enc.dictionary_size(0), 2);
  EXPECT_EQ(enc.dictionary_size(1), 2);
}

TEST(EncodedTableTest, SimilarityPredicatesOnCodes) {
  const uint32_t kNull = EncodedTable::kNullCode;
  EXPECT_TRUE(CodesEqual(3, 3));
  EXPECT_FALSE(CodesEqual(3, 4));
  EXPECT_TRUE(CodesEqual(kNull, kNull));  // syntactic: ⊥ = ⊥
  EXPECT_TRUE(CodesStronglySimilar(3, 3));
  EXPECT_FALSE(CodesStronglySimilar(kNull, kNull));
  EXPECT_TRUE(CodesWeaklySimilar(3, 3));
  EXPECT_TRUE(CodesWeaklySimilar(kNull, 7));
  EXPECT_TRUE(CodesWeaklySimilar(7, kNull));
  EXPECT_FALSE(CodesWeaklySimilar(3, 4));
}

TEST(EncodedTableTest, PartialEncodingCoversOnlyRequestedColumns) {
  const TableSchema schema = Schema("abc");
  const Table table = Rows(schema, {"1x9", "2y8"});
  const AttributeSet cols = testing::Attrs(schema, "ac");
  const EncodedTable enc(table, cols);
  EXPECT_TRUE(enc.encoded_columns().Contains(0));
  EXPECT_FALSE(enc.encoded_columns().Contains(1));
  EXPECT_TRUE(enc.encoded_columns().Contains(2));
  EXPECT_EQ(enc.code(0, 1), 1u);
  EXPECT_EQ(enc.code(2, 1), 1u);
}

TEST(EncodedTableTest, LookupCodeProbesWithoutMutating) {
  const TableSchema schema = Schema("a");
  const Table table = Rows(schema, {"1", "2"});
  const EncodedTable enc(table);
  EXPECT_EQ(enc.LookupCode(0, Value::Str("1")), 0u);
  EXPECT_EQ(enc.LookupCode(0, Value::Str("2")), 1u);
  EXPECT_EQ(enc.LookupCode(0, Value::Null()), EncodedTable::kNullCode);
  // A never-seen value maps to the reserved miss code...
  EXPECT_EQ(enc.LookupCode(0, Value::Str("3")), EncodedTable::kMissingCode);
  // ...and the dictionary did not grow.
  EXPECT_EQ(enc.dictionary_size(0), 2);
  // The miss code equals no stored code, is non-null, and is weakly
  // similar only through ⊥ — mirroring the value semantics.
  EXPECT_FALSE(CodesStronglySimilar(EncodedTable::kMissingCode,
                                    EncodedTable::kNullCode));
  EXPECT_TRUE(CodesWeaklySimilar(EncodedTable::kMissingCode,
                                 EncodedTable::kNullCode));
  EXPECT_FALSE(CodesWeaklySimilar(EncodedTable::kMissingCode, 0));
}

TEST(EncodedTableTest, AppendRowGrowsDictionaries) {
  const TableSchema schema = Schema("ab");
  EncodedTable enc(schema.num_attributes());
  EXPECT_EQ(enc.num_rows(), 0);
  enc.AppendRow(Tuple({Value::Int(1), Value::Null()}));
  enc.AppendRow(Tuple({Value::Int(2), Value::Int(7)}));
  enc.AppendRow(Tuple({Value::Int(1), Value::Int(7)}));
  EXPECT_EQ(enc.num_rows(), 3);
  EXPECT_EQ(enc.code(0, 2), 0u);
  EXPECT_EQ(enc.code(1, 0), EncodedTable::kNullCode);
  EXPECT_EQ(enc.code(1, 2), enc.code(1, 1));
  EXPECT_EQ(enc.dictionary_size(0), 2);
  EXPECT_EQ(enc.dictionary_size(1), 1);
}

TEST(EncodedTableTest, UpdateCellAndNullFreeColumns) {
  const TableSchema schema = Schema("ab");
  const Table table = Rows(schema, {"1x", "2_"});
  EncodedTable enc(table);
  EXPECT_TRUE(enc.NullFreeColumns().Contains(0));
  EXPECT_FALSE(enc.NullFreeColumns().Contains(1));
  // Filling the ⊥ makes the column instance-null-free again.
  enc.UpdateCell(1, 1, Value::Str("y"));
  EXPECT_TRUE(enc.NullFreeColumns().Contains(1));
  EXPECT_EQ(enc.DecodeCode(1, enc.code(1, 1)), Value::Str("y"));
  // And nulling a cell removes it.
  enc.UpdateCell(0, 0, Value::Null());
  EXPECT_FALSE(enc.NullFreeColumns().Contains(0));
}

TEST(EncodedTableTest, EraseRowsCompactsAndKeepsNullCounts) {
  const TableSchema schema = Schema("ab");
  const Table table = Rows(schema, {"1x", "2_", "3y", "4_", "5z"});
  EncodedTable enc(table);
  enc.EraseRows({1, 3});  // drop both ⊥ rows
  ASSERT_EQ(enc.num_rows(), 3);
  EXPECT_EQ(enc.DecodeCode(0, enc.code(0, 0)), Value::Str("1"));
  EXPECT_EQ(enc.DecodeCode(0, enc.code(0, 1)), Value::Str("3"));
  EXPECT_EQ(enc.DecodeCode(0, enc.code(0, 2)), Value::Str("5"));
  EXPECT_TRUE(enc.NullFreeColumns().Contains(1));
}

TEST(EncodedTableTest, EquivalentToIsCodeBijectionNotIdentity) {
  const TableSchema schema = Schema("ab");
  // Same rows, different insertion order → different code assignment.
  const Table t1 = Rows(schema, {"1x", "2y", "_z"});
  const Table t2 = Rows(schema, {"2y", "1x", "_z"});
  const EncodedTable e1(t1);
  // Seed e2's dictionaries with t2's order, then rebuild t1's rows:
  // the same cells end up under DIFFERENT codes.
  EncodedTable e2(t2);
  e2.EraseRows({0, 1, 2});
  for (int r = 0; r < t1.num_rows(); ++r) e2.AppendRow(t1.row(r));
  EXPECT_NE(e1.code(0, 0), e2.code(0, 0));  // codes differ...
  EXPECT_TRUE(e1.EquivalentTo(e2));         // ...values must not

  // A different value in any cell breaks equivalence.
  e2.UpdateCell(2, 0, Value::Str("9"));
  EXPECT_FALSE(e1.EquivalentTo(e2));
  // So does a ⊥ mismatch.
  EncodedTable e3(t1);
  e3.UpdateCell(0, 1, Value::Null());
  EXPECT_FALSE(e1.EquivalentTo(e3));
}

TEST(EncodedTableTest, RandomizedMaintenanceMatchesReEncode) {
  Rng rng(99);
  const TableSchema schema = Schema("abc");
  for (int iter = 0; iter < 20; ++iter) {
    Table table(schema);
    EncodedTable enc(schema.num_attributes());
    for (int step = 0; step < 60; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.5 || table.num_rows() == 0) {
        std::vector<Value> values;
        for (int a = 0; a < 3; ++a) {
          values.push_back(rng.Chance(0.2)
                               ? Value::Null()
                               : Value::Int(rng.Uniform(0, 4)));
        }
        Tuple row(std::move(values));
        ASSERT_TRUE(table.AddRow(row).ok());
        enc.AppendRow(row);
      } else if (roll < 0.8) {
        const int r = static_cast<int>(rng.Index(table.num_rows()));
        const AttributeId a = static_cast<AttributeId>(rng.Index(3));
        const Value v = rng.Chance(0.2) ? Value::Null()
                                        : Value::Int(rng.Uniform(0, 4));
        (*table.mutable_row(r))[a] = v;
        enc.UpdateCell(r, a, v);
      } else {
        const int r = static_cast<int>(rng.Index(table.num_rows()));
        Table next(schema);
        for (int i = 0; i < table.num_rows(); ++i) {
          if (i != r) ASSERT_TRUE(next.AddRow(table.row(i)).ok());
        }
        table = std::move(next);
        enc.EraseRows({r});
      }
      ASSERT_TRUE(enc.EquivalentTo(EncodedTable(table)))
          << "iter=" << iter << " step=" << step;
    }
  }
}

TEST(EncodedTableTest, DistinctRowsFirstOccurrenceAtAnyThreadCount) {
  // The CSR-indexed DistinctRows must return ascending first-occurrence
  // ids — the contract behind set projection — and be identical with
  // and without a pool. Random tables with heavy duplication and ⊥.
  Rng rng(321);
  for (int iter = 0; iter < 30; ++iter) {
    const int cols = static_cast<int>(rng.Uniform(1, 4));
    const TableSchema schema = testing::RandomSchema(&rng, cols);
    const Table table = testing::RandomInstance(
        &rng, schema, static_cast<int>(rng.Uniform(0, 80)), /*domain=*/2,
        0.3);
    const EncodedTable enc(table);

    // Reference: quadratic first-occurrence scan on codes.
    std::vector<int> expected;
    for (int i = 0; i < enc.num_rows(); ++i) {
      bool first = true;
      for (int j = 0; j < i && first; ++j) {
        bool same = true;
        for (AttributeId a = 0; a < cols; ++a) {
          if (enc.code(a, i) != enc.code(a, j)) {
            same = false;
            break;
          }
        }
        if (same) first = false;
      }
      if (first) expected.push_back(i);
    }

    EXPECT_EQ(enc.DistinctRows(), expected) << "iter=" << iter;
    for (int threads : {2, 3, 8}) {
      ThreadPool pool(threads);
      EXPECT_EQ(enc.DistinctRows(&pool), expected)
          << "iter=" << iter << " threads=" << threads;
    }
  }
}

TEST(EncodedTableTest, AllocateTargetThenFillMatchesGather) {
  // Writing codes through mutable_codes + RecountNulls must agree with
  // the allocation-per-call GatherRows path.
  const TableSchema schema = testing::Schema("abc");
  const Table table = testing::Rows(
      schema, {"1x_", "2y_", "1xz", "2_z", "1xz"});
  const EncodedTable enc(table);
  const std::vector<int> rows = {4, 0, 2, 2};

  std::vector<std::pair<const EncodedTable*, AttributeId>> sources;
  for (AttributeId a = 0; a < 3; ++a) sources.emplace_back(&enc, a);
  EncodedTable out = EncodedTable::AllocateTarget(
      sources, static_cast<int>(rows.size()));
  for (AttributeId a = 0; a < 3; ++a) {
    uint32_t* dst = out.mutable_codes(a);
    for (size_t i = 0; i < rows.size(); ++i) dst[i] = enc.code(a, rows[i]);
  }
  out.RecountNulls();

  const EncodedTable gathered = enc.GatherRows(rows);
  ASSERT_TRUE(out.EquivalentTo(gathered));
  EXPECT_EQ(out.NullFreeColumns(), gathered.NullFreeColumns());
}

TEST(EncodedTableTest, CompactionReclaimsDeadCodesAfterUpdates) {
  // An update-heavy workload strands dictionary entries: every
  // overwritten value keeps its code but no row references it.
  const TableSchema schema = Schema("ab");
  const Table table = Rows(schema, {"1x", "2y", "3z"});
  EncodedTable enc(table);
  enc.UpdateCell(0, 0, Value::Str("9"));  // "1" now dead
  enc.UpdateCell(1, 0, Value::Str("9"));  // "2" now dead
  enc.UpdateCell(2, 1, Value::Str("w"));  // "z" now dead
  enc.EraseRows({1});                     // "y" now dead too
  ASSERT_EQ(enc.dictionary_size(0), 4);   // 1 2 3 9
  ASSERT_EQ(enc.dictionary_size(1), 4);   // x y z w

  const Table before = enc.Decode(schema);
  const std::vector<int> retired = enc.CompactDictionaries();
  EXPECT_EQ(retired, (std::vector<int>{2, 2}));
  EXPECT_EQ(enc.dictionary_size(0), 2);  // 3 9
  EXPECT_EQ(enc.dictionary_size(1), 2);  // w x
  ASSERT_OK(enc.CheckDictionaryOrder());
  for (AttributeId a = 0; a < 2; ++a) {
    EXPECT_TRUE(enc.DictionaryOrdered(a)) << "col " << a;
  }
  // Decoded contents are untouched by compaction.
  EXPECT_TRUE(enc.EquivalentTo(EncodedTable(before)));
  // A second compaction is a no-op: already canonical.
  EXPECT_EQ(enc.CompactDictionaries(), (std::vector<int>{0, 0}));
}

TEST(EncodedTableTest, CompactionCanonicalizesAcrossHistories) {
  // Two encodings of the SAME decoded contents reached through
  // different mutation histories carry different codes — after
  // compaction both are the canonical (value-ordered, dead-free)
  // encoding, hence bit-identical.
  const TableSchema schema = Schema("ab");
  const Table target = Rows(schema, {"2x", "1_", "3y"});

  EncodedTable direct(target);  // codes in first-occurrence order

  EncodedTable history(schema.num_attributes());
  history.AppendRow(Tuple({Value::Str("9"), Value::Str("q")}));
  history.AppendRow(Tuple({Value::Str("1"), Value::Null()}));
  history.AppendRow(Tuple({Value::Str("3"), Value::Str("y")}));
  history.AppendRow(Tuple({Value::Str("5"), Value::Str("x")}));
  history.UpdateCell(0, 0, Value::Str("2"));
  history.UpdateCell(0, 1, Value::Str("x"));
  history.EraseRows({3});

  ASSERT_TRUE(history.EquivalentTo(direct));
  ASSERT_FALSE(history.BitIdentical(direct));  // codes differ pre-compaction

  direct.CompactDictionaries();
  history.CompactDictionaries();
  ASSERT_OK(direct.CheckDictionaryOrder());
  ASSERT_OK(history.CheckDictionaryOrder());
  EXPECT_TRUE(history.BitIdentical(direct));
  EXPECT_TRUE(direct.EquivalentTo(EncodedTable(target)));
}

TEST(EncodedTableTest, CompactionLeavesSharedCopiesBitStable) {
  // Compaction rewrites codes by publishing fresh column versions, so a
  // snapshot taken before it keeps its pre-compaction codes unchanged.
  const TableSchema schema = Schema("ab");
  EncodedTable live(Rows(schema, {"2x", "1y", "2_"}));
  live.UpdateCell(1, 0, Value::Str("3"));  // dead "1"
  const EncodedTable frozen = live;        // O(columns) pointer share
  const EncodedTable expected = live;

  const std::vector<int> retired = live.CompactDictionaries();
  EXPECT_EQ(retired, (std::vector<int>{1, 0}));
  EXPECT_TRUE(frozen.BitIdentical(expected));
  EXPECT_FALSE(frozen.BitIdentical(live));
  EXPECT_TRUE(frozen.EquivalentTo(live));
}

TEST(EncodedTableTest, RandomizedCompactionPreservesContents) {
  Rng rng(7741);
  const TableSchema schema = Schema("abc");
  for (int iter = 0; iter < 15; ++iter) {
    Table table(schema);
    EncodedTable enc(schema.num_attributes());
    for (int step = 0; step < 50; ++step) {
      if (rng.Chance(0.5) || table.num_rows() == 0) {
        std::vector<Value> values;
        for (int a = 0; a < 3; ++a) {
          values.push_back(rng.Chance(0.2)
                               ? Value::Null()
                               : Value::Int(rng.Uniform(0, 9)));
        }
        Tuple row(std::move(values));
        ASSERT_TRUE(table.AddRow(row).ok());
        enc.AppendRow(row);
      } else {
        const int r = static_cast<int>(rng.Index(table.num_rows()));
        const AttributeId a = static_cast<AttributeId>(rng.Index(3));
        const Value v = rng.Chance(0.2) ? Value::Null()
                                        : Value::Int(rng.Uniform(0, 9));
        (*table.mutable_row(r))[a] = v;
        enc.UpdateCell(r, a, v);
      }
    }
    enc.CompactDictionaries();
    ASSERT_OK(enc.CheckDictionaryOrder()) << "iter=" << iter;
    // Canonical form: bit-identical to a compacted fresh encoding.
    EncodedTable fresh(table);
    fresh.CompactDictionaries();
    ASSERT_TRUE(enc.BitIdentical(fresh)) << "iter=" << iter;
  }
}

}  // namespace
}  // namespace sqlnf
