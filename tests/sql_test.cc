// The SQL front end: parsing, execution, constraint enforcement via
// the extended DDL clauses (CERTAIN KEY / CERTAIN FD / POSSIBLE FD).

#include "sqlnf/engine/sql.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqlnf {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  Database db_;
  SqlSession sql_{&db_};

  // Each test runs single-threaded; the helpers claim the writer role
  // so the role-annotated SQL entry points are reachable.
  QueryResult Must(const std::string& statement) {
    WriterScope writer;
    auto result = sql_.Execute(statement);
    EXPECT_TRUE(result.ok()) << statement << "\n"
                             << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }
  Status Try(const std::string& statement) {
    WriterScope writer;
    auto result = sql_.Execute(statement);
    return result.ok() ? Status::OK() : result.status();
  }
};

TEST_F(SqlTest, CreateInsertSelect) {
  Must("CREATE TABLE purchase (order_id TEXT NOT NULL, item TEXT NOT "
       "NULL, catalog TEXT, price TEXT NOT NULL);");
  Must("INSERT INTO purchase VALUES ('5299401', 'Fitbit', 'Amazon', "
       "'240'), ('7485113', 'Dora', 'Kingtoys', '25');");
  QueryResult all = Must("SELECT * FROM purchase;");
  ASSERT_TRUE(all.rows.has_value());
  EXPECT_EQ(all.rows->num_rows(), 2);
  EXPECT_EQ(all.rows->num_columns(), 4);

  QueryResult filtered =
      Must("SELECT item, price FROM purchase WHERE order_id = '5299401';");
  ASSERT_TRUE(filtered.rows.has_value());
  EXPECT_EQ(filtered.rows->num_rows(), 1);
  EXPECT_EQ(filtered.rows->num_columns(), 2);
  EXPECT_EQ(filtered.rows->schema().attribute_name(0), "item");
  EXPECT_EQ(filtered.rows->row(0)[1], Value::Str("240"));
}

TEST_F(SqlTest, NullLiteralsAndMarkerEquality) {
  Must("CREATE TABLE t (a TEXT NOT NULL, b TEXT);");
  Must("INSERT INTO t VALUES ('1', NULL), ('2', 'x');");
  QueryResult nulls = Must("SELECT * FROM t WHERE b = NULL;");
  EXPECT_EQ(nulls.rows->num_rows(), 1);
  EXPECT_EQ(nulls.rows->row(0)[0], Value::Str("1"));
}

TEST_F(SqlTest, NotNullEnforced) {
  Must("CREATE TABLE t (a TEXT NOT NULL, b TEXT);");
  Status st = Try("INSERT INTO t VALUES (NULL, 'x');");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("NOT NULL"), std::string::npos);
}

TEST_F(SqlTest, CertainFdEnforcedOnInsert) {
  Must("CREATE TABLE purchase (item TEXT NOT NULL, catalog TEXT, "
       "price TEXT NOT NULL, CERTAIN FD (item, catalog -> price));");
  Must("INSERT INTO purchase VALUES ('Fitbit', 'Amazon', '240');");
  Must("INSERT INTO purchase VALUES ('Fitbit', NULL, '240');");
  // ⊥-catalog weakly matches Amazon; a different price is rejected.
  EXPECT_FALSE(
      Try("INSERT INTO purchase VALUES ('Fitbit', NULL, '200');").ok());
  EXPECT_FALSE(
      Try("INSERT INTO purchase VALUES ('Fitbit', 'Amazon', '199');")
          .ok());
  Must("INSERT INTO purchase VALUES ('Dora', 'Kingtoys', '25');");
}

TEST_F(SqlTest, CertainKeyOverNullableColumns) {
  Must("CREATE TABLE t (i TEXT NOT NULL, c TEXT, p TEXT, "
       "CERTAIN KEY (i, c));");
  Must("INSERT INTO t VALUES ('F', 'A', '1');");
  EXPECT_FALSE(Try("INSERT INTO t VALUES ('F', NULL, '2');").ok());
  Must("INSERT INTO t VALUES ('G', NULL, '3');");
  // A second ⊥ row for G weakly collides with the first.
  EXPECT_FALSE(Try("INSERT INTO t VALUES ('G', 'B', '4');").ok());
}

TEST_F(SqlTest, PrimaryKeyImpliesNotNullAndUniqueness) {
  Must("CREATE TABLE t (id TEXT, v TEXT, PRIMARY KEY (id));");
  Must("INSERT INTO t VALUES ('1', 'a');");
  EXPECT_FALSE(Try("INSERT INTO t VALUES ('1', 'b');").ok());
  EXPECT_FALSE(Try("INSERT INTO t VALUES (NULL, 'c');").ok());
  Must("INSERT INTO t VALUES ('2', 'b');");
}

TEST_F(SqlTest, UniqueIsPossibleKey) {
  Must("CREATE TABLE t (a TEXT, b TEXT, UNIQUE (a));");
  Must("INSERT INTO t VALUES ('1', 'x');");
  EXPECT_FALSE(Try("INSERT INTO t VALUES ('1', 'y');").ok());
  // p-keys ignore ⊥ rows (strong similarity never fires on ⊥).
  Must("INSERT INTO t VALUES (NULL, 'y');");
  Must("INSERT INTO t VALUES (NULL, 'z');");
}

TEST_F(SqlTest, UpdateAndDelete) {
  Must("CREATE TABLE t (a TEXT NOT NULL, b TEXT, "
       "CERTAIN FD (a -> b));");
  Must("INSERT INTO t VALUES ('1', 'x'), ('1', 'x'), ('2', 'y');");
  // Consistent whole-group update succeeds.
  QueryResult updated = Must("UPDATE t SET b = 'z' WHERE a = '1';");
  EXPECT_EQ(updated.affected, 2);
  QueryResult remaining = Must("SELECT * FROM t WHERE b = 'z';");
  EXPECT_EQ(remaining.rows->num_rows(), 2);
  QueryResult deleted = Must("DELETE FROM t WHERE a = '1';");
  EXPECT_EQ(deleted.affected, 2);
  EXPECT_EQ(Must("SELECT * FROM t;").rows->num_rows(), 1);
}

TEST_F(SqlTest, NaturalJoin) {
  Must("CREATE TABLE left_t (a TEXT, b TEXT);");
  Must("CREATE TABLE right_t (b TEXT, c TEXT);");
  Must("INSERT INTO left_t VALUES ('1', 'x'), ('2', NULL);");
  Must("INSERT INTO right_t VALUES ('x', 'P'), (NULL, 'Q');");
  QueryResult joined =
      Must("SELECT * FROM left_t NATURAL JOIN right_t;");
  ASSERT_TRUE(joined.rows.has_value());
  EXPECT_EQ(joined.rows->num_columns(), 3);
  // Equality join: 'x'–'x' and ⊥–⊥.
  EXPECT_EQ(joined.rows->num_rows(), 2);
}

TEST_F(SqlTest, ShowAndDescribe) {
  Must("CREATE TABLE t (a TEXT NOT NULL, b TEXT, CERTAIN KEY (a));");
  QueryResult tables = Must("SHOW TABLES;");
  EXPECT_EQ(tables.rows->num_rows(), 1);
  QueryResult desc = Must("DESCRIBE t;");
  EXPECT_EQ(desc.rows->num_rows(), 2);
  EXPECT_NE(desc.message.find("c<{a}>"), std::string::npos);
  Must("DROP TABLE t;");
  EXPECT_EQ(Must("SHOW TABLES;").rows->num_rows(), 0);
}

TEST_F(SqlTest, ScriptExecution) {
  WriterScope writer;
  auto results = sql_.ExecuteScript(R"(
    -- the paper's running example, enforced
    CREATE TABLE purchase (
      order_id TEXT NOT NULL,
      item TEXT NOT NULL,
      catalog TEXT,
      price TEXT NOT NULL,
      CERTAIN FD (item, catalog -> price)
    );
    INSERT INTO purchase VALUES ('1', 'Fitbit', 'Amazon', '240');
    INSERT INTO purchase VALUES ('1', 'Fitbit', NULL, '240');
    SELECT * FROM purchase;
  )");
  ASSERT_OK(results.status());
  ASSERT_EQ(results->size(), 4u);  // CREATE + 2 INSERTs + SELECT
  EXPECT_EQ(results->back().rows->num_rows(), 2);
}

TEST_F(SqlTest, ScriptStopsAtFirstError) {
  WriterScope writer;
  auto results = sql_.ExecuteScript(
      "CREATE TABLE t (a TEXT, UNIQUE (a));"
      "INSERT INTO t VALUES ('1');"
      "INSERT INTO t VALUES ('1');"  // rejected
      "INSERT INTO t VALUES ('2');");
  EXPECT_FALSE(results.ok());
  // The table kept its consistent state.
  QueryResult rows = Must("SELECT * FROM t;");
  EXPECT_EQ(rows.rows->num_rows(), 1);
}

TEST_F(SqlTest, ParseErrors) {
  EXPECT_FALSE(Try("SELEC * FROM t;").ok());
  EXPECT_FALSE(Try("SELECT * FORM t;").ok());
  EXPECT_FALSE(Try("CREATE TABLE;").ok());
  EXPECT_FALSE(Try("INSERT INTO t VALUES ('unterminated);").ok());
  EXPECT_FALSE(Try("SELECT * FROM missing_table;").ok());
  EXPECT_FALSE(Try("CREATE TABLE t (a TEXT) extra;").ok());
}

TEST_F(SqlTest, StringEscapes) {
  Must("CREATE TABLE t (a TEXT);");
  Must("INSERT INTO t VALUES ('it''s');");
  QueryResult rows = Must("SELECT * FROM t WHERE a = 'it''s';");
  EXPECT_EQ(rows.rows->num_rows(), 1);
  EXPECT_EQ(rows.rows->row(0)[0], Value::Str("it's"));
}

TEST_F(SqlTest, IntegerLiterals) {
  Must("CREATE TABLE t (n INTEGER, m INTEGER);");
  Must("INSERT INTO t VALUES (42, -7);");
  QueryResult rows = Must("SELECT * FROM t WHERE n = 42;");
  EXPECT_EQ(rows.rows->num_rows(), 1);
  EXPECT_EQ(rows.rows->row(0)[1], Value::Int(-7));
}

TEST_F(SqlTest, RangePredicates) {
  Must("CREATE TABLE t (n INTEGER, s TEXT);");
  Must("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, NULL), "
       "(NULL, 'e');");

  // Each ordered operator reduces to one code/rank interval; ⊥ cells
  // (row 5's n) never satisfy an ordered comparison.
  EXPECT_EQ(Must("SELECT * FROM t WHERE n < 3;").rows->num_rows(), 2);
  EXPECT_EQ(Must("SELECT * FROM t WHERE n <= 3;").rows->num_rows(), 3);
  EXPECT_EQ(Must("SELECT * FROM t WHERE n > 3;").rows->num_rows(), 1);
  EXPECT_EQ(Must("SELECT * FROM t WHERE n >= 3;").rows->num_rows(), 2);
  EXPECT_EQ(Must("SELECT * FROM t WHERE n BETWEEN 2 AND 3;").rows->num_rows(),
            2);
  // <> and != are the exact marker complement of =, so ⊥ rows count.
  EXPECT_EQ(Must("SELECT * FROM t WHERE n <> 2;").rows->num_rows(), 4);
  EXPECT_EQ(Must("SELECT * FROM t WHERE n != 2;").rows->num_rows(), 4);
  EXPECT_EQ(Must("SELECT * FROM t WHERE s IN ('a', 'c', 'zzz');")
                .rows->num_rows(),
            2);
  // IN with NULL uses marker equality: it picks up the ⊥ cell.
  EXPECT_EQ(Must("SELECT * FROM t WHERE s IN (NULL, 'b');").rows->num_rows(),
            2);
}

TEST_F(SqlTest, WherePrecedenceAndOr) {
  Must("CREATE TABLE t (n INTEGER, s TEXT);");
  Must("INSERT INTO t VALUES (1, 'a'), (2, 'a'), (3, 'b'), (4, 'b');");
  // AND binds tighter than OR: (n<2) OR (n>3 AND s='b') → rows 1, 4.
  QueryResult rows =
      Must("SELECT * FROM t WHERE n < 2 OR n > 3 AND s = 'b';");
  ASSERT_EQ(rows.rows->num_rows(), 2);
  EXPECT_EQ(rows.rows->row(0)[0], Value::Int(1));
  EXPECT_EQ(rows.rows->row(1)[0], Value::Int(4));
  // BETWEEN consumes its own AND; the conjunction continues after it.
  EXPECT_EQ(Must("SELECT * FROM t WHERE n BETWEEN 1 AND 3 AND s = 'a';")
                .rows->num_rows(),
            2);
  // Cross-kind comparison under the Value total order: Int < Str.
  EXPECT_EQ(Must("SELECT * FROM t WHERE n < 'x';").rows->num_rows(), 4);
}

TEST_F(SqlTest, UpdateDeleteWithRangePredicates) {
  Must("CREATE TABLE t (n INTEGER, s TEXT);");
  Must("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd');");
  QueryResult upd = Must("UPDATE t SET s = 'hi' WHERE n BETWEEN 2 AND 3;");
  EXPECT_EQ(upd.affected, 2);
  EXPECT_EQ(Must("SELECT * FROM t WHERE s = 'hi';").rows->num_rows(), 2);
  QueryResult del = Must("DELETE FROM t WHERE n >= 4 OR s = 'a';");
  EXPECT_EQ(del.affected, 2);
  EXPECT_EQ(Must("SELECT * FROM t;").rows->num_rows(), 2);
}

TEST_F(SqlTest, VacuumStatement) {
  Must("CREATE TABLE t (n INTEGER, s TEXT);");
  Must("INSERT INTO t VALUES (1, 'a'), (2, 'b');");
  Must("UPDATE t SET s = 'c' WHERE n = 1;");  // strands 'a'
  QueryResult vac = Must("VACUUM t;");
  EXPECT_EQ(vac.affected, 1);
  EXPECT_NE(vac.message.find("1 dictionary entries reclaimed"),
            std::string::npos);
  // Already canonical: a second pass reclaims nothing.
  EXPECT_EQ(Must("VACUUM t;").affected, 0);
  // Barred while a transaction is open.
  Must("BEGIN;");
  EXPECT_FALSE(Try("VACUUM t;").ok());
  Must("ROLLBACK;");
  EXPECT_EQ(Must("VACUUM t;").affected, 0);
  EXPECT_FALSE(Try("VACUUM missing;").ok());
}

TEST_F(SqlTest, WhereParseErrors) {
  Must("CREATE TABLE t (n INTEGER, s TEXT);");
  Must("INSERT INTO t VALUES (1, 'a');");
  EXPECT_FALSE(Try("SELECT * FROM t WHERE n ! 1;").ok());   // bare !
  EXPECT_FALSE(Try("SELECT * FROM t WHERE n = ;").ok());
  EXPECT_FALSE(Try("SELECT * FROM t WHERE n BETWEEN 1;").ok());
  EXPECT_FALSE(Try("SELECT * FROM t WHERE n BETWEEN 1 2;").ok());
  EXPECT_FALSE(Try("SELECT * FROM t WHERE n IN 1;").ok());   // no parens
  EXPECT_FALSE(Try("SELECT * FROM t WHERE n IN ();").ok());  // ≥ 1 member
  EXPECT_FALSE(Try("SELECT * FROM t WHERE n < 1 OR;").ok());
  EXPECT_FALSE(Try("SELECT * FROM t WHERE missing = 1;").ok());
  EXPECT_FALSE(Try("VACUUM t extra;").ok());
}

}  // namespace
}  // namespace sqlnf
