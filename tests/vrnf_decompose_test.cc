// Algorithm 3 (Theorem 16): the paper's Example 3, the reduction to the
// classical case, and property sweeps (losslessness + VRNF of every
// component on random instances).

#include "sqlnf/decomposition/vrnf_decompose.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/decomposition/lossless.h"
#include "sqlnf/reasoning/implication.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::Fd;
using testing::RandomInstance;
using testing::RandomSchema;
using testing::Rows;
using testing::Schema;
using testing::Sigma;

TEST(VrnfDecomposeTest, PaperExample3) {
  // (oicp, oip, {oic ->w cp}) → {[[oic]] with no key, [oicp] with
  // c<oic>}; given as total FD oic ->w oicp.
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "oic ->w oicp")};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));

  ASSERT_EQ(result.steps.size(), 1u);
  EXPECT_EQ(result.steps[0].fd.lhs, Attrs(schema, "oic"));
  EXPECT_EQ(result.steps[0].set_component, schema.all());
  EXPECT_EQ(result.steps[0].rest_component, Attrs(schema, "oic"));

  ASSERT_EQ(result.decomposition.components.size(), 2u);
  // FIFO order: the remainder [[oic]] first, then the [oicp] set part.
  EXPECT_EQ(result.decomposition.components[0].attrs,
            Attrs(schema, "oic"));
  EXPECT_TRUE(result.decomposition.components[0].multiset);
  EXPECT_TRUE(result.component_keys[0].empty());
  EXPECT_EQ(result.decomposition.components[1].attrs, schema.all());
  EXPECT_FALSE(result.decomposition.components[1].multiset);
  ASSERT_EQ(result.component_keys[1].size(), 1u);
  EXPECT_EQ(result.component_keys[1][0].attrs, Attrs(schema, "oic"));

  ASSERT_OK_AND_ASSIGN(bool vrnf, AllComponentsVrnf(design, result));
  EXPECT_TRUE(vrnf);
}

TEST(VrnfDecomposeTest, AlreadyVrnfStaysWhole) {
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "c<oic>")};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  EXPECT_TRUE(result.steps.empty());
  ASSERT_EQ(result.decomposition.components.size(), 1u);
  EXPECT_EQ(result.decomposition.components[0].attrs, schema.all());
}

TEST(VrnfDecomposeTest, RejectsNonTotalInput) {
  TableSchema schema = Schema("abc", "");
  EXPECT_FALSE(VrnfDecompose({schema, Sigma(schema, "a ->w b")}).ok());
  EXPECT_FALSE(VrnfDecompose({schema, Sigma(schema, "a ->s ab")}).ok());
  EXPECT_FALSE(VrnfDecompose({schema, Sigma(schema, "p<a>")}).ok());
}

TEST(VrnfDecomposeTest, NormalizeToTotalRewrites) {
  TableSchema schema = Schema("abc", "ab");
  // p-FD with null-free LHS and p-key with null-free attrs normalize.
  ASSERT_OK_AND_ASSIGN(
      ConstraintSet total,
      NormalizeToTotal(schema, Sigma(schema, "a ->s c; p<ab>")));
  EXPECT_TRUE(total.AllCertain());
  EXPECT_TRUE(total.AllFdsTotal());
  EXPECT_TRUE(EquivalentSigmas(schema, total,
                               Sigma(schema, "a ->s c; p<ab>")));
  // A p-FD with a nullable LHS attribute cannot be rewritten.
  EXPECT_FALSE(NormalizeToTotal(schema, Sigma(schema, "c ->s a")).ok());
  // Nor a p-key with nullable attributes.
  EXPECT_FALSE(NormalizeToTotal(schema, Sigma(schema, "p<c>")).ok());
}

TEST(VrnfDecomposeTest, ClassicalSpecialCaseSplitsLikeBcnf) {
  // T_S = T, key on the schema: Algorithm 3 = classical BCNF
  // decomposition. a -> b with key c<ac>: split into [ab] and [ac].
  TableSchema schema = Schema("abc", "abc");
  SchemaDesign design{schema, Sigma(schema, "a ->w ab; c<ac>")};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  ASSERT_EQ(result.decomposition.components.size(), 2u);
  EXPECT_EQ(result.decomposition.components[0].attrs, Attrs(schema, "ac"));
  EXPECT_EQ(result.decomposition.components[1].attrs, Attrs(schema, "ab"));
  ASSERT_OK_AND_ASSIGN(bool vrnf, AllComponentsVrnf(design, result));
  EXPECT_TRUE(vrnf);
}

TEST(VrnfDecomposeTest, LosslessOnPaperInstance) {
  TableSchema schema = Schema("oicp", "oip");
  SchemaDesign design{schema, Sigma(schema, "oic ->w oicp")};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  // §6.2's four-row instance (with duplicates and ⊥).
  Table t = Rows(schema, {"1F_X", "1F_X", "3DKY", "3DKY"});
  ASSERT_TRUE(SatisfiesAll(t, design.sigma));
  ASSERT_OK_AND_ASSIGN(bool lossless,
                       IsLosslessForInstance(t, result.decomposition));
  EXPECT_TRUE(lossless);
}

TEST(VrnfDecomposeTest, ChainedDecomposition) {
  // Two independent total FDs must both be split off.
  TableSchema schema = Schema("abcde", "abcde");
  SchemaDesign design{schema, Sigma(schema, "a ->w ab; c ->w cd")};
  ASSERT_OK_AND_ASSIGN(VrnfResult result, VrnfDecompose(design));
  EXPECT_EQ(result.steps.size(), 2u);
  EXPECT_EQ(result.decomposition.components.size(), 3u);
  ASSERT_OK_AND_ASSIGN(bool vrnf, AllComponentsVrnf(design, result));
  EXPECT_TRUE(vrnf);
}

// Theorem 16 as a property: on random total-FD + c-key inputs the
// algorithm terminates with (a) a valid decomposition, (b) all
// components in VRNF, and (c) lossless reconstruction for random
// instances satisfying Σ.
class Theorem16Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem16Test, DecomposesLosslesslyIntoVrnf) {
  Rng rng(GetParam() * 61 + 13);
  int exercised = 0;
  for (int trial = 0; trial < 25; ++trial) {
    int n = 3 + static_cast<int>(rng.Uniform(0, 2));
    TableSchema schema = RandomSchema(&rng, n);
    // Random total FDs and certain keys.
    ConstraintSet sigma;
    int fds = 1 + static_cast<int>(rng.Uniform(0, 2));
    for (int f = 0; f < fds; ++f) {
      AttributeSet lhs = testing::RandomSubset(&rng, n, 0.3);
      AttributeSet rhs = lhs.Union(testing::RandomSubset(&rng, n, 0.3));
      if (rhs == lhs || lhs.empty()) continue;
      sigma.AddFd(FunctionalDependency::Certain(lhs, rhs));
    }
    if (rng.Chance(0.4)) {
      sigma.AddKey(
          KeyConstraint::Certain(testing::RandomSubset(&rng, n, 0.5)));
    }
    if (sigma.empty()) continue;
    SchemaDesign design{schema, sigma};
    auto result = VrnfDecompose(design);
    ASSERT_OK(result.status()) << design.ToString();
    ++exercised;
    EXPECT_OK(result->decomposition.Validate(schema));
    ASSERT_OK_AND_ASSIGN(bool vrnf, AllComponentsVrnf(design, *result));
    EXPECT_TRUE(vrnf) << design.ToString();

    for (int m = 0; m < 10; ++m) {
      Table instance = RandomInstance(&rng, schema, 5, 2, 0.3);
      if (!SatisfiesAll(instance, sigma)) continue;
      ASSERT_OK_AND_ASSIGN(
          bool lossless,
          IsLosslessForInstance(instance, result->decomposition));
      EXPECT_TRUE(lossless) << design.ToString() << "\n"
                            << instance.ToString() << "\n"
                            << result->decomposition.ToString(schema);
    }
  }
  EXPECT_GT(exercised, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem16Test, ::testing::Range(0, 6));

}  // namespace
}  // namespace sqlnf
