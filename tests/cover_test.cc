#include "sqlnf/reasoning/cover.h"

#include <gtest/gtest.h>

#include "sqlnf/reasoning/implication.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::RandomSchema;
using testing::RandomSigma;
using testing::Schema;
using testing::Sigma;

TEST(CoverTest, MinimizeLhsDropsExtraneousAttributes) {
  TableSchema schema = Schema("abc", "abc");
  // ab ->s c is implied already by a ->s c; the LHS shrinks to a.
  ConstraintSet sigma = Sigma(schema, "a ->s c; ab ->s c");
  ConstraintSet minimized = MinimizeLhs(schema, sigma);
  EXPECT_EQ(minimized.fds()[1].lhs, AttributeSet{0});
  EXPECT_TRUE(EquivalentSigmas(schema, sigma, minimized));
}

TEST(CoverTest, MinimizeKeys) {
  TableSchema schema = Schema("abc", "abc");
  ConstraintSet sigma = Sigma(schema, "c<a>; c<ab>");
  ConstraintSet minimized = MinimizeKeys(schema, sigma);
  EXPECT_EQ(minimized.keys()[1].attrs, AttributeSet{0});
  EXPECT_TRUE(EquivalentSigmas(schema, sigma, minimized));
}

TEST(CoverTest, RemoveRedundantDropsImplied) {
  TableSchema schema = Schema("abc", "abc");
  ConstraintSet sigma = Sigma(schema, "a ->s b; b ->s c; a ->s c");
  ConstraintSet reduced = RemoveRedundant(schema, sigma);
  EXPECT_EQ(reduced.fds().size(), 2u);
  EXPECT_TRUE(EquivalentSigmas(schema, sigma, reduced));
}

TEST(CoverTest, ReducedCoverCombines) {
  TableSchema schema = Schema("abcd", "abcd");
  ConstraintSet sigma =
      Sigma(schema, "a ->s b; ab ->s c; a ->s c; c<ad>; c<abd>");
  ConstraintSet reduced = ReducedCover(schema, sigma);
  EXPECT_TRUE(EquivalentSigmas(schema, sigma, reduced));
  EXPECT_LT(reduced.size(), sigma.size());
}

TEST(CoverTest, KeepsNonRedundantMixedModes) {
  TableSchema schema = Schema("ab", "");
  // a ->s b does NOT imply a ->w b on nullable schemas; both stay.
  ConstraintSet sigma = Sigma(schema, "a ->s b; a ->w b");
  ConstraintSet reduced = ReducedCover(schema, sigma);
  // a ->w b implies a ->s b, so only the certain one must survive.
  EXPECT_EQ(reduced.fds().size(), 1u);
  EXPECT_TRUE(reduced.fds()[0].is_certain());
  EXPECT_TRUE(EquivalentSigmas(schema, sigma, reduced));
}

class CoverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoverPropertyTest, ReducedCoverStaysEquivalent) {
  Rng rng(GetParam() * 11 + 5);
  for (int trial = 0; trial < 25; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 4));
    TableSchema schema = RandomSchema(&rng, n);
    ConstraintSet sigma = RandomSigma(
        &rng, n, static_cast<int>(rng.Uniform(0, 6)),
        static_cast<int>(rng.Uniform(0, 3)));
    ConstraintSet reduced = ReducedCover(schema, sigma);
    EXPECT_TRUE(EquivalentSigmas(schema, sigma, reduced))
        << sigma.ToString(schema) << " vs " << reduced.ToString(schema);
    EXPECT_LE(reduced.size(), sigma.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace sqlnf
