#include "sqlnf/core/attribute_set.h"

#include <algorithm>
#include <iterator>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sqlnf/util/rng.h"

namespace sqlnf {
namespace {

TEST(AttributeSetTest, EmptyAndSingle) {
  AttributeSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0);
  AttributeSet s = AttributeSet::Single(5);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.size(), 1);
}

TEST(AttributeSetTest, FullSet) {
  EXPECT_EQ(AttributeSet::FullSet(0).size(), 0);
  EXPECT_EQ(AttributeSet::FullSet(5).size(), 5);
  EXPECT_EQ(AttributeSet::FullSet(64).size(), 64);
  EXPECT_TRUE(AttributeSet::FullSet(3).Contains(2));
  EXPECT_FALSE(AttributeSet::FullSet(3).Contains(3));
}

TEST(AttributeSetTest, AddRemove) {
  AttributeSet s;
  s.Add(0);
  s.Add(63);
  EXPECT_EQ(s.size(), 2);
  s.Remove(0);
  EXPECT_FALSE(s.Contains(0));
  EXPECT_TRUE(s.Contains(63));
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a = {0, 1, 2};
  AttributeSet b = {2, 3};
  EXPECT_EQ((a | b), (AttributeSet{0, 1, 2, 3}));
  EXPECT_EQ((a & b), AttributeSet{2});
  EXPECT_EQ((a - b), (AttributeSet{0, 1}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE((a - b).Intersects(b));
}

TEST(AttributeSetTest, SubsetRelations) {
  AttributeSet a = {1, 2};
  AttributeSet b = {1, 2, 3};
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.IsProperSubsetOf(b));
  EXPECT_FALSE(a.IsProperSubsetOf(a));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(AttributeSet().IsSubsetOf(a));
}

TEST(AttributeSetTest, IterationAscending) {
  AttributeSet s = {5, 1, 40};
  std::vector<AttributeId> ids = s.ToVector();
  EXPECT_EQ(ids, (std::vector<AttributeId>{1, 5, 40}));
  std::vector<AttributeId> iterated;
  for (AttributeId a : s) iterated.push_back(a);
  EXPECT_EQ(iterated, ids);
}

TEST(AttributeSetTest, IterationEmpty) {
  for (AttributeId a : AttributeSet()) {
    FAIL() << "unexpected element " << a;
  }
}

TEST(AttributeSetTest, RandomizedAlgebraAgainstStdSet) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::set<int> sa, sb;
    AttributeSet a, b;
    for (int i = 0; i < 10; ++i) {
      int x = static_cast<int>(rng.Uniform(0, 63));
      int y = static_cast<int>(rng.Uniform(0, 63));
      sa.insert(x);
      a.Add(x);
      sb.insert(y);
      b.Add(y);
    }
    std::set<int> su, si, sd;
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::inserter(su, su.begin()));
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(si, si.begin()));
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(sd, sd.begin()));
    auto to_std = [](const AttributeSet& s) {
      std::set<int> out;
      for (AttributeId id : s) out.insert(id);
      return out;
    };
    EXPECT_EQ(to_std(a | b), su);
    EXPECT_EQ(to_std(a & b), si);
    EXPECT_EQ(to_std(a - b), sd);
    EXPECT_EQ(a.size(), static_cast<int>(sa.size()));
    EXPECT_EQ(a.IsSubsetOf(b),
              std::includes(sb.begin(), sb.end(), sa.begin(), sa.end()));
  }
}

TEST(AttributeSetTest, Bounds) {
  // FullSet is guarded at both ends: negative n is the empty set (a
  // negative shift would be UB), n >= 64 saturates.
  EXPECT_TRUE(AttributeSet::FullSet(0).empty());
  EXPECT_EQ(AttributeSet::FullSet(64).size(), 64);
  EXPECT_EQ(AttributeSet::FullSet(64),
            AttributeSet::FromBits(~uint64_t{0}));

  // Boundary ids round-trip through Add/Contains/Remove.
  AttributeSet s;
  s.Add(0);
  s.Add(63);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(63));
  EXPECT_EQ(s.size(), 2);
  s.Remove(0);
  s.Remove(63);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(AttributeSet::Single(63).ToVector(),
            std::vector<AttributeId>{63});

#ifndef NDEBUG
  // Out-of-range ids are a precondition violation; debug builds assert.
  EXPECT_DEATH(AttributeSet::FullSet(-1), "");
  EXPECT_DEATH(AttributeSet().Add(-1), "");
  EXPECT_DEATH(AttributeSet().Add(64), "");
  EXPECT_DEATH(AttributeSet().Remove(64), "");
  EXPECT_DEATH((void)AttributeSet().Contains(-1), "");
#else
  // Release builds rely on the guard for FullSet only.
  EXPECT_TRUE(AttributeSet::FullSet(-1).empty());
#endif
}

}  // namespace
}  // namespace sqlnf
