// Shared helpers for the sqlnf test suite: terse constructors for
// schemas/constraints/tables using the paper's compact notation, and
// seeded random generators for the property-based sweeps.

#ifndef SQLNF_TESTS_TEST_UTIL_H_
#define SQLNF_TESTS_TEST_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/constraints/parser.h"
#include "sqlnf/core/table.h"
#include "sqlnf/util/rng.h"

#define ASSERT_OK(expr) ASSERT_TRUE((expr).ok()) << (expr).ToString()
#define EXPECT_OK(expr) EXPECT_TRUE((expr).ok()) << (expr).ToString()
#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  auto SQLNF_CONCAT(_test_res_, __LINE__) = (expr);            \
  ASSERT_TRUE(SQLNF_CONCAT(_test_res_, __LINE__).ok())         \
      << SQLNF_CONCAT(_test_res_, __LINE__).status().ToString(); \
  lhs = std::move(SQLNF_CONCAT(_test_res_, __LINE__)).value()

namespace sqlnf::testing {

/// Schema with single-char attributes, e.g. Schema("oicp", "ocp").
inline TableSchema Schema(std::string_view attrs,
                          std::string_view not_null = "") {
  auto result = TableSchema::MakeCompact("T", attrs, not_null);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Parses an FD in compact notation, asserting success.
inline FunctionalDependency Fd(const TableSchema& schema,
                               std::string_view text) {
  auto result = ParseFd(schema, text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

inline KeyConstraint Key(const TableSchema& schema, std::string_view text) {
  auto result = ParseKey(schema, text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

inline ConstraintSet Sigma(const TableSchema& schema,
                           std::string_view text) {
  auto result = ParseConstraintSet(schema, text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

inline AttributeSet Attrs(const TableSchema& schema,
                          std::string_view text) {
  auto result = ParseAttributeSet(schema, text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Builds a table from compact rows; each cell is one character,
/// '_' = ⊥. E.g. Rows(schema, {"01a", "01_"}).
inline Table Rows(const TableSchema& schema,
                  const std::vector<std::string>& rows) {
  Table table(schema);
  for (const std::string& r : rows) {
    EXPECT_EQ(static_cast<int>(r.size()), schema.num_attributes());
    std::vector<Value> values;
    for (char c : r) {
      values.push_back(c == '_' ? Value::Null()
                                : Value::Str(std::string(1, c)));
    }
    auto st = table.AddRow(Tuple(std::move(values)));
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return table;
}

/// Random schema (n attributes, random NFS).
inline TableSchema RandomSchema(Rng* rng, int n) {
  std::string attrs, nfs;
  for (int i = 0; i < n; ++i) {
    char c = static_cast<char>('a' + i);
    attrs += c;
    if (rng->Chance(0.5)) nfs += c;
  }
  return Schema(attrs, nfs);
}

inline AttributeSet RandomSubset(Rng* rng, int n, double p = 0.4) {
  AttributeSet out;
  for (int i = 0; i < n; ++i) {
    if (rng->Chance(p)) out.Add(i);
  }
  return out;
}

/// Random constraint set: `fds` FDs and `keys` keys over n attributes.
inline ConstraintSet RandomSigma(Rng* rng, int n, int fds, int keys) {
  ConstraintSet sigma;
  for (int i = 0; i < fds; ++i) {
    FunctionalDependency fd;
    fd.lhs = RandomSubset(rng, n);
    fd.rhs = RandomSubset(rng, n);
    fd.mode = rng->Chance(0.5) ? Mode::kPossible : Mode::kCertain;
    if (fd.rhs.empty()) fd.rhs = AttributeSet::Single(
        static_cast<AttributeId>(rng->Index(n)));
    sigma.AddFd(fd);
  }
  for (int i = 0; i < keys; ++i) {
    KeyConstraint key;
    key.attrs = RandomSubset(rng, n, 0.5);
    if (key.attrs.empty()) key.attrs.Add(
        static_cast<AttributeId>(rng->Index(n)));
    key.mode = rng->Chance(0.5) ? Mode::kPossible : Mode::kCertain;
    sigma.AddKey(key);
  }
  return sigma;
}

/// Random instance over `schema`: values from a small pool so that
/// agreements happen; ⊥ only outside the NFS.
inline Table RandomInstance(Rng* rng, const TableSchema& schema, int rows,
                            int domain = 3, double null_rate = 0.25) {
  Table table(schema);
  for (int r = 0; r < rows; ++r) {
    std::vector<Value> values;
    for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
      if (!schema.nfs().Contains(a) && rng->Chance(null_rate)) {
        values.push_back(Value::Null());
      } else {
        values.push_back(Value::Int(rng->Uniform(0, domain - 1)));
      }
    }
    auto st = table.AddRow(Tuple(std::move(values)));
    EXPECT_TRUE(st.ok());
  }
  return table;
}

}  // namespace sqlnf::testing

#endif  // SQLNF_TESTS_TEST_UTIL_H_
