// Projections, equality joins, and lossless decomposition (Definitions
// 6-8, Theorem 11), on the paper's Figures 2, 4, 5 and random sweeps.

#include "sqlnf/decomposition/decomposition.h"

#include <gtest/gtest.h>

#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/decomposition/lossless.h"
#include "test_util.h"

namespace sqlnf {
namespace {

using testing::Attrs;
using testing::Fd;
using testing::RandomInstance;
using testing::RandomSchema;
using testing::Rows;
using testing::Schema;

TEST(ProjectionOpsTest, SetVsMultiset) {
  TableSchema schema = Schema("abc");
  Table t = Rows(schema, {"11x", "11y", "22z", "11x"});
  ASSERT_OK_AND_ASSIGN(Table ms, ProjectMultiset(t, {0, 1}, "ms"));
  EXPECT_EQ(ms.num_rows(), 4);
  ASSERT_OK_AND_ASSIGN(Table s, ProjectSet(t, {0, 1}, "s"));
  EXPECT_EQ(s.num_rows(), 2);  // (1,1) and (2,2)
  // ⊥ is preserved by projection and distinct tuples with ⊥ are kept.
  Table tn = Rows(schema, {"1_x", "1_y", "1_x"});
  ASSERT_OK_AND_ASSIGN(Table sn, ProjectSet(tn, {0, 1, 2}, "sn"));
  EXPECT_EQ(sn.num_rows(), 2);
}

TEST(ProjectionOpsTest, ValidateDecomposition) {
  TableSchema schema = Schema("abc");
  Decomposition good;
  good.components.push_back({Attrs(schema, "ab"), true, ""});
  good.components.push_back({Attrs(schema, "bc"), false, ""});
  EXPECT_OK(good.Validate(schema));

  Decomposition not_covering;
  not_covering.components.push_back({Attrs(schema, "ab"), true, ""});
  EXPECT_FALSE(not_covering.Validate(schema).ok());

  Decomposition empty_comp;
  empty_comp.components.push_back({AttributeSet(), false, ""});
  empty_comp.components.push_back({schema.all(), true, ""});
  EXPECT_FALSE(empty_comp.Validate(schema).ok());
}

TEST(EqualityJoinTest, JoinsOnCommonColumnsWithExactNullMatch) {
  TableSchema left_schema = Schema("ab");
  TableSchema right_schema =
      TableSchema::MakeCompact("R", "bc").value();
  Table left = Rows(left_schema, {"1x", "2_", "3y"});
  Table right = Rows(right_schema, {"xA", "_B", "yC", "zD"});
  ASSERT_OK_AND_ASSIGN(Table joined, EqualityJoin(left, right, "J"));
  EXPECT_EQ(joined.num_columns(), 3);
  EXPECT_EQ(joined.num_rows(), 3);  // x-x, ⊥-⊥, y-y; z unmatched
  // The ⊥ row joined with the ⊥ row only.
  bool found_null_join = false;
  for (const Tuple& t : joined.rows()) {
    if (t[1].is_null()) {
      EXPECT_EQ(t[2], Value::Str("B"));
      found_null_join = true;
    }
  }
  EXPECT_TRUE(found_null_join);
}

TEST(EqualityJoinTest, BagSemantics) {
  TableSchema ls = TableSchema::MakeCompact("L", "ab").value();
  TableSchema rs = TableSchema::MakeCompact("R", "bc").value();
  Table left = Rows(ls, {"1x", "1x"});
  Table right = Rows(rs, {"xA", "xB"});
  ASSERT_OK_AND_ASSIGN(Table joined, EqualityJoin(left, right, "J"));
  EXPECT_EQ(joined.num_rows(), 4);  // 2 left × 2 matching right
}

TEST(LosslessTest, Figure2ClassicalDecomposition) {
  TableSchema schema = Schema("oicp");
  Table purchase = Rows(schema, {"1FAX", "1FBX", "3FAX", "3DKY"});
  Decomposition d = DecomposeByFd(schema, Fd(schema, "ic ->w p"));
  // Components: [[oic]] and [icp].
  ASSERT_EQ(d.components.size(), 2u);
  EXPECT_TRUE(d.components[0].multiset);
  EXPECT_EQ(d.components[0].attrs, Attrs(schema, "oic"));
  EXPECT_FALSE(d.components[1].multiset);
  EXPECT_EQ(d.components[1].attrs, Attrs(schema, "icp"));

  ASSERT_OK_AND_ASSIGN(auto tables, ProjectAll(purchase, d));
  EXPECT_EQ(tables[0].num_rows(), 4);
  EXPECT_EQ(tables[1].num_rows(), 3);  // the two 240-rows merged

  ASSERT_OK_AND_ASSIGN(bool lossless, IsLosslessForInstance(purchase, d));
  EXPECT_TRUE(lossless);
}

TEST(LosslessTest, Figure4PFdDecompositionIsLossy) {
  // The instance satisfies ic ->s p but its decomposition loses
  // information — p-FDs do not support decomposition under nulls.
  TableSchema schema = Schema("oicp");
  Table t = Rows(schema, {"1F_X", "2F_Y"});
  ASSERT_TRUE(Satisfies(t, Fd(schema, "ic ->s p")));
  Decomposition d = DecomposeByFd(schema, Fd(schema, "ic ->s p"));
  ASSERT_OK_AND_ASSIGN(bool lossless, IsLosslessForInstance(t, d));
  EXPECT_FALSE(lossless);
}

TEST(LosslessTest, Figure5CertainFdDecompositionIsLossless) {
  TableSchema schema = Schema("oicp");
  Table t = Rows(schema, {"1FAX", "1F_X", "3FAX", "3DKY"});
  ASSERT_TRUE(Satisfies(t, Fd(schema, "ic ->w p")));
  Decomposition d = DecomposeByFd(schema, Fd(schema, "ic ->w p"));
  ASSERT_OK_AND_ASSIGN(bool lossless, IsLosslessForInstance(t, d));
  EXPECT_TRUE(lossless);
}

TEST(LosslessTest, LienPartialDecompositionTheorem) {
  // Lien (paper §3): a table satisfying the p-FD X ->s Y decomposes
  // losslessly ON ITS X-TOTAL PART. Figure 4's instance: lossy as a
  // whole, lossless after dropping the ⊥-catalog rows.
  TableSchema schema = Schema("oicp");
  Table t = Rows(schema, {"1F_X", "2F_Y", "3GAZ", "4GAZ"});
  FunctionalDependency p_fd = Fd(schema, "ic ->s p");
  ASSERT_TRUE(Satisfies(t, p_fd));
  Decomposition d = DecomposeByFd(schema, p_fd);
  ASSERT_OK_AND_ASSIGN(bool whole, IsLosslessForInstance(t, d));
  EXPECT_FALSE(whole);
  Table total_part = XTotalPart(t, p_fd.lhs);
  EXPECT_EQ(total_part.num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(bool partial,
                       IsLosslessForInstance(total_part, d));
  EXPECT_TRUE(partial);
}

class LienTheoremTest : public ::testing::TestWithParam<int> {};

TEST_P(LienTheoremTest, XTotalPartAlwaysDecomposesUnderPfds) {
  Rng rng(GetParam() * 59 + 31);
  int exercised = 0;
  for (int trial = 0; trial < 100; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema = RandomSchema(&rng, n);
    Table instance = RandomInstance(&rng, schema, 6, 2, 0.3);
    FunctionalDependency fd;
    fd.lhs = testing::RandomSubset(&rng, n);
    fd.rhs = testing::RandomSubset(&rng, n);
    fd.mode = Mode::kPossible;
    if (fd.rhs.empty()) continue;
    if (!Satisfies(instance, fd)) continue;
    Table total = XTotalPart(instance, fd.lhs);
    if (total.num_rows() == 0) continue;
    ++exercised;
    Decomposition d = DecomposeByFd(schema, fd);
    ASSERT_OK_AND_ASSIGN(bool lossless, IsLosslessForInstance(total, d));
    EXPECT_TRUE(lossless) << fd.ToString(schema) << "\n"
                          << total.ToString();
  }
  EXPECT_GT(exercised, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LienTheoremTest, ::testing::Range(0, 4));

// Theorem 11 as a property: whenever an instance satisfies a c-FD, the
// induced binary decomposition is lossless. (And the multiset side
// preserves duplicates.)
class Theorem11Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem11Test, CertainFdsDecomposeLosslessly) {
  Rng rng(GetParam() * 53 + 29);
  int exercised = 0;
  for (int trial = 0; trial < 120; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema = RandomSchema(&rng, n);
    Table instance = RandomInstance(&rng, schema, 6, 2, 0.3);
    FunctionalDependency fd;
    fd.lhs = testing::RandomSubset(&rng, n);
    fd.rhs = testing::RandomSubset(&rng, n);
    fd.mode = Mode::kCertain;
    if (fd.rhs.empty() || fd.lhs.Union(fd.rhs) == schema.all()) continue;
    if (!Satisfies(instance, fd)) continue;
    ++exercised;
    Decomposition d = DecomposeByFd(schema, fd);
    ASSERT_OK_AND_ASSIGN(bool lossless,
                         IsLosslessForInstance(instance, d));
    EXPECT_TRUE(lossless)
        << fd.ToString(schema) << "\n" << instance.ToString();
  }
  EXPECT_GT(exercised, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem11Test, ::testing::Range(0, 6));

// Theorem 12: when the TOTAL form X →w XY holds, c<X> holds on the set
// projection I[XY] — the property that makes Algorithm 3's components
// redundancy-free.
class Theorem12Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem12Test, TotalFdsInduceCertainKeysOnProjections) {
  Rng rng(GetParam() * 89 + 37);
  int exercised = 0;
  for (int trial = 0; trial < 800; ++trial) {
    int n = 2 + static_cast<int>(rng.Uniform(0, 3));
    TableSchema schema = RandomSchema(&rng, n);
    Table instance = RandomInstance(&rng, schema, 4, 2, 0.25);
    AttributeSet x = testing::RandomSubset(&rng, n, 0.4);
    AttributeSet y = testing::RandomSubset(&rng, n, 0.4).Difference(x);
    if (y.empty()) continue;
    FunctionalDependency total =
        FunctionalDependency::Certain(x, x.Union(y));
    if (!Satisfies(instance, total)) continue;
    ++exercised;
    auto projected = ProjectSet(instance, x.Union(y), "xy");
    ASSERT_OK(projected.status());
    // c<X> on the projection, with X renumbered to local ids.
    AttributeSet local;
    for (AttributeId a : x) {
      auto id = projected->schema().FindAttribute(
          schema.attribute_name(a));
      ASSERT_OK(id.status());
      local.Add(*id);
    }
    EXPECT_TRUE(Satisfies(*projected, KeyConstraint::Certain(local)))
        << total.ToString(schema) << "\n"
        << instance.ToString() << projected->ToString();
  }
  EXPECT_GT(exercised, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem12Test, ::testing::Range(0, 5));

}  // namespace
}  // namespace sqlnf
