// The session layer: per-connection execution state over one shared
// Database, extending the single-writer / multi-reader contract to
// concurrent sessions BY CONSTRUCTION.
//
// A SessionRegistry owns what all connections share — the Database,
// the writer mutex that serializes mutating scripts, and a cache of
// parsed constraint sets. Each connection (an HTTP socket in net/, the
// CLI's query/validate commands, a test thread) holds its own Session,
// which routes every script down one of two paths:
//
//   * ALL statements read-only (SELECT / SHOW / DESCRIBE) → take one
//     atomic SnapshotAll() and execute lock-free against the immutable
//     snapshot map (engine/sql.h ExecuteReadOnly). Any number of
//     sessions run this path concurrently with the writer.
//   * ANY write statement → acquire the registry's writer mutex, enter
//     a WriterScope, and drive SqlSession. The phantom capability
//     (engine/writer_role.h) makes the exclusion machine-checked: the
//     read-only path cannot even compile a call to a mutating method.
//
// Multi-session servers must not let a transaction survive a request
// (another session would silently join it once the writer mutex is
// released), so by default an open transaction at end-of-script is
// rolled back and reported as an error; the single-session CLI shell
// opts out via SessionOptions::allow_open_transaction.
//
// The layer also hosts the shared non-SQL cores the CLI and the HTTP
// service both render from: constraint validation over an encoding
// (ValidationReport — the CLI's `validate` output is RenderText() of
// it, byte for byte), discovery, and normalization.

#ifndef SQLNF_ENGINE_SESSION_H_
#define SQLNF_ENGINE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/result.h"
#include "sqlnf/engine/sql.h"
#include "sqlnf/util/mutex.h"
#include "sqlnf/util/status.h"
#include "sqlnf/util/thread_annotations.h"

namespace sqlnf {

/// One constraint's verdict within a ValidationReport.
struct ConstraintCheck {
  std::string text;  // fd/key rendered against the table schema
  bool violated = false;
  int row1 = -1, row2 = -1;  // witness pair when violated
};

/// Outcome of validating a constraint set against one table.
struct ValidationReport {
  int rows = 0;
  int columns = 0;
  int threads = 1;
  size_t total = 0;                    // constraints checked
  std::vector<ConstraintCheck> checks; // FDs first, then keys
  int violated = 0;

  /// The historical `sqlnf validate` stdout (header, per-constraint
  /// lines, footer) — byte-identical to the pre-refactor printf code
  /// (golden-pinned).
  std::string RenderText() const;

  /// JSON object used by the /validate endpoint.
  std::string RenderJson() const;
};

/// Validates Σ against an encoding that covers every mentioned column
/// (a fresh per-call encoding or a table snapshot's columns). FDs are
/// checked in declaration order, then keys, matching the CLI.
ValidationReport ValidateConstraints(const TableSchema& schema,
                                     const EncodedTable& enc,
                                     const ConstraintSet& sigma,
                                     int threads);

/// Constraint discovery summary for one table (text forms are rendered
/// against the table schema with the instance-inferred NFS).
struct DiscoveryReport {
  int rows = 0;
  int columns = 0;
  std::string null_free;  // formatted attribute set
  std::vector<std::string> c_fds, p_fds, c_keys, p_keys;
  int nn_count = 0, p_count = 0, c_count = 0, t_count = 0,
      lambda_count = 0;

  std::string RenderJson() const;
};

/// Outcome of mine-and-normalize on one table.
struct NormalizationOutcome {
  std::string design;         // mined design, text form
  std::string decomposition;  // components (empty when !normalized)
  std::string ddl;            // CREATE TABLE statements
  bool normalized = false;    // false when no λ-FDs were found

  std::string RenderJson() const;
};

struct SessionOptions {
  /// Thread count for validation / discovery kernels.
  int threads = 1;
  /// Permit a transaction to remain open after Execute() returns.
  /// Safe only for a single-session front end (the CLI shell); servers
  /// leave this false and get auto-rollback + error instead.
  bool allow_open_transaction = false;
};

/// Shared state behind all sessions: the database, the writer mutex
/// serializing mutating scripts across sessions, and a cache of parsed
/// constraint sets keyed by (schema columns, constraint text).
class SessionRegistry {
 public:
  /// `db` must outlive the registry.
  explicit SessionRegistry(Database* db) : db_(db) {}

  Database* db() const { return db_; }
  Mutex& writer_mu() SQLNF_RETURN_CAPABILITY(writer_mu_) {
    return writer_mu_;
  }

  /// Parses `text` against `schema`, serving repeats from the cache.
  /// The returned set is immutable and shared across sessions.
  Result<std::shared_ptr<const ConstraintSet>> ParsedConstraints(
      const TableSchema& schema, const std::string& text);

  /// Cache observability (for tests and /health).
  int64_t cache_hits() const;
  int64_t cache_misses() const;

 private:
  Database* db_;
  /// Serializes mutating scripts across sessions; read-only scripts
  /// never touch it.
  Mutex writer_mu_;

  mutable Mutex cache_mu_;
  std::map<std::string, std::shared_ptr<const ConstraintSet>> cache_
      SQLNF_GUARDED_BY(cache_mu_);
  int64_t hits_ SQLNF_GUARDED_BY(cache_mu_) = 0;
  int64_t misses_ SQLNF_GUARDED_BY(cache_mu_) = 0;
};

/// Per-connection execution state. Not thread-safe itself (one
/// connection = one session = one thread at a time); any number of
/// sessions over the same registry may run concurrently.
class Session {
 public:
  explicit Session(SessionRegistry* registry, SessionOptions options = {})
      : registry_(registry), options_(options) {}

  const SessionOptions& options() const { return options_; }

  /// Executes a SQL script: all-read-only scripts run lock-free
  /// against one atomic snapshot set; anything else serializes through
  /// the writer mutex. Never fails at the call level — errors are
  /// inside the ResultSet, with script-absolute offsets.
  ResultSet Execute(const std::string& script);

  /// Validates a constraint-set text against the table's committed
  /// snapshot (parsed sets are cached in the registry).
  Result<ValidationReport> Validate(const std::string& table,
                                    const std::string& constraints);

  /// Mines constraints from the table's committed snapshot.
  /// `max_rows` <= 0 keeps the discovery default cap.
  Result<DiscoveryReport> Discover(const std::string& table,
                                   int max_rows = 0);

  /// Mines λ-FDs and certain keys from the committed snapshot, runs
  /// the paper's Algorithm 3, and emits component DDL.
  Result<NormalizationOutcome> Normalize(const std::string& table);

 private:
  ResultSet ExecuteSnapshots(std::string_view script,
                             const std::vector<SqlStatement>& statements);
  ResultSet ExecuteWriter(std::string_view script,
                          const std::vector<SqlStatement>& statements);

  SessionRegistry* registry_;
  SessionOptions options_;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_SESSION_H_
