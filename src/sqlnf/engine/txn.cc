#include "sqlnf/engine/txn.h"

#include "sqlnf/engine/catalog.h"

namespace sqlnf {

TableUndo& UndoLog::Touch(const std::string& table,
                          const EncodedTable& encoding) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    it = tables_.emplace(table, TableUndo{}).first;
    it->second.dict_mark = encoding.DictionarySizes();
  }
  return it->second;
}

void UndoLog::RollbackTable(const TableUndo& undo,
                            IncrementalEnforcer* enforcer) {
  for (auto it = undo.ops.rbegin(); it != undo.ops.rend(); ++it) {
    const UndoRecord& r = *it;
    switch (r.kind) {
      case UndoRecord::Kind::kInsert:
        // Every later mutation is already undone, so the inserted row
        // sits at its original append position again.
        enforcer->Remove(r.row_id);
        enforcer->CompactAfterErase({r.row_id});
        break;
      case UndoRecord::Kind::kUpdate:
        enforcer->Remove(r.row_id);
        enforcer->Add(r.pre_image, r.row_id);
        break;
      case UndoRecord::Kind::kDelete:
        enforcer->Restore(r.erased_ids, r.erased_rows);
        break;
    }
  }
  enforcer->TrimDictionaries(undo.dict_mark);
}

TransactionGuard::TransactionGuard(Database* db)
    : db_(db), begin_status_(db->Begin()) {
  finished_ = !begin_status_.ok();
}

TransactionGuard::~TransactionGuard() {
  if (!finished_) (void)db_->Rollback();
}

Status TransactionGuard::Commit() {
  if (finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  finished_ = true;
  return db_->Commit();
}

Status TransactionGuard::Rollback() {
  if (finished_) {
    return Status::FailedPrecondition("transaction already finished");
  }
  finished_ = true;
  return db_->Rollback();
}

}  // namespace sqlnf
