// Scalable constraint validation (the Section 7 consistency check).
//
// The reference checkers in constraints/satisfies.h are O(n²) over all
// row pairs. For large instances we exploit that weakly similar tuples
// must agree EXACTLY on every LHS column that contains no ⊥ anywhere in
// the instance: partition rows on those columns, then compare pairs
// only within partitions. For possible (strong) semantics, only rows
// total on the LHS can participate, and strong similarity within the
// partition is plain equality — no pair loop at all.
//
// Since PR 2 the kernels run on the shared columnar representation
// (core/encoded_table.h): rows are bucketed by their dictionary CODES
// (radix on the code value for single-column groups, FNV-mixed hashing
// for wider ones) and all within-bucket predicates are integer
// compares. The Table entry points encode just the columns a constraint
// mentions and forward to the EncodedTable kernels; callers that
// already hold an encoding (the catalog's enforcer, discovery, batch
// validation) skip the encode entirely. The pre-columnar tuple-hashing
// path is kept as *Tuple for differential testing and bench ablations.
//
// Property tests cross-check every validator against the reference and
// a literal Definition-1/2 oracle (tests/reference_oracle.h).
//
// Every entry point takes an optional ParallelOptions: with threads > 1
// the buckets are scanned by a thread pool with first-violation
// short-circuit. Satisfaction verdicts are identical to serial; when a
// constraint is violated, WHICH violating pair is reported may differ
// (any violating pair is a correct witness).

#ifndef SQLNF_ENGINE_VALIDATE_H_
#define SQLNF_ENGINE_VALIDATE_H_

#include <optional>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/table.h"
#include "sqlnf/util/parallel.h"

namespace sqlnf {

/// Fast validation of one FD. Matches constraints/satisfies.h exactly.
bool ValidateFd(const Table& table, const FunctionalDependency& fd,
                const ParallelOptions& par = {});

/// Fast validation of one key.
bool ValidateKey(const Table& table, const KeyConstraint& key,
                 const ParallelOptions& par = {});

/// Fast validation of a whole constraint set (plus the NFS). Encodes
/// the union of all mentioned columns once and reuses it.
bool ValidateAll(const Table& table, const ConstraintSet& sigma,
                 const ParallelOptions& par = {});

/// Like ValidateFd but returns the first violating row pair.
std::optional<Violation> FindFdViolationFast(
    const Table& table, const FunctionalDependency& fd,
    const ParallelOptions& par = {});

/// Like ValidateKey but returns the first violating row pair.
std::optional<Violation> FindKeyViolationFast(
    const Table& table, const KeyConstraint& key,
    const ParallelOptions& par = {});

// ---- Columnar kernels ------------------------------------------------
// `enc` must cover every column the constraint mentions
// (enc.encoded_columns() ⊇ lhs ∪ rhs / attrs).

std::optional<Violation> FindFdViolationEncoded(
    const EncodedTable& enc, const FunctionalDependency& fd,
    const ParallelOptions& par = {});

std::optional<Violation> FindKeyViolationEncoded(
    const EncodedTable& enc, const KeyConstraint& key,
    const ParallelOptions& par = {});

bool ValidateFdEncoded(const EncodedTable& enc,
                       const FunctionalDependency& fd,
                       const ParallelOptions& par = {});

bool ValidateKeyEncoded(const EncodedTable& enc, const KeyConstraint& key,
                        const ParallelOptions& par = {});

/// Whole-Σ validation on a shared encoding; `nfs` is the schema's NOT
/// NULL set (the NFS holds iff those columns are null-free here).
bool ValidateAllEncoded(const EncodedTable& enc, const AttributeSet& nfs,
                        const ConstraintSet& sigma,
                        const ParallelOptions& par = {});

// ---- Stripped-partition path (world semantics) -----------------------
// Possible constraints quantify over some completion of the ⊥ cells;
// syntactically they trigger on strong similarity, i.e. exact equality
// of total rows. That makes them expressible over stripped partitions
// (discovery/partition.h) with ⊥ as an ordinary value, restricted to
// classes total on the LHS:  X →s Y  ⟺  e(X) = e(XY)  and
// p⟨X⟩  ⟺  e(X) = 0  over the X-total classes. Requires is_possible().

bool ValidateFdPartition(const EncodedTable& enc,
                         const FunctionalDependency& fd);

bool ValidateKeyPartition(const EncodedTable& enc,
                          const KeyConstraint& key);

// ---- Legacy tuple-hashing path ---------------------------------------
// The pre-columnar implementation (HashOn(Tuple) buckets + Value
// compares). Verdict-equivalent to the encoded kernels; kept as the
// differential-testing baseline and for the encoded-vs-tuple bench.

std::optional<Violation> FindFdViolationTuple(
    const Table& table, const FunctionalDependency& fd,
    const ParallelOptions& par = {});

std::optional<Violation> FindKeyViolationTuple(
    const Table& table, const KeyConstraint& key,
    const ParallelOptions& par = {});

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_VALIDATE_H_
