// Scalable constraint validation (the Section 7 consistency check).
//
// The reference checkers in constraints/satisfies.h are O(n²) over all
// row pairs. For large instances we exploit that weakly similar tuples
// must agree EXACTLY on every LHS column that contains no ⊥ anywhere in
// the instance: hash-partition rows on those columns, then compare pairs
// only within partitions. For possible (strong) semantics, only rows
// total on the LHS can participate, and strong similarity within the
// partition is plain equality — no pair loop at all.
//
// Property tests cross-check every validator against the reference.
//
// Every entry point takes an optional ParallelOptions: with threads > 1
// the hash buckets are scanned by a thread pool with first-violation
// short-circuit. Satisfaction verdicts are identical to serial; when a
// constraint is violated, WHICH violating pair is reported may differ
// (any violating pair is a correct witness).

#ifndef SQLNF_ENGINE_VALIDATE_H_
#define SQLNF_ENGINE_VALIDATE_H_

#include <optional>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/table.h"
#include "sqlnf/util/parallel.h"

namespace sqlnf {

/// Fast validation of one FD. Matches constraints/satisfies.h exactly.
bool ValidateFd(const Table& table, const FunctionalDependency& fd,
                const ParallelOptions& par = {});

/// Fast validation of one key.
bool ValidateKey(const Table& table, const KeyConstraint& key,
                 const ParallelOptions& par = {});

/// Fast validation of a whole constraint set (plus the NFS).
bool ValidateAll(const Table& table, const ConstraintSet& sigma,
                 const ParallelOptions& par = {});

/// Like ValidateFd but returns the first violating row pair.
std::optional<Violation> FindFdViolationFast(
    const Table& table, const FunctionalDependency& fd,
    const ParallelOptions& par = {});

/// Like ValidateKey but returns the first violating row pair.
std::optional<Violation> FindKeyViolationFast(
    const Table& table, const KeyConstraint& key,
    const ParallelOptions& par = {});

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_VALIDATE_H_
