// Incremental constraint enforcement with code-based hash indexes.
//
// ValidateRowAgainst (catalog.h) probes every stored row per insert.
// This enforcer maintains ONE dictionary encoding of the stored rows
// (core/encoded_table.h) plus, per constraint, a hash index keyed by
// the row's CODES on the constraint's STABLE columns.
//
// For CERTAIN (weak) constraints the stable columns are the LHS/key
// attributes that are schema-level NOT NULL: two rows can only be
// weakly similar on the LHS when they agree exactly on those columns,
// so candidate conflicts live in one bucket; within a bucket the
// pairwise predicate runs on integer codes. A certain constraint whose
// LHS has no NOT NULL attribute keeps a single bucket (the theoretical
// worst case — weak similarity can relate anything through ⊥).
//
// For POSSIBLE (strong) constraints strong similarity requires exact,
// total equality on EVERY similarity attribute, so the stable set is
// the full similarity-attribute set regardless of the schema's NFS —
// rows with a ⊥ there can never conflict and are not indexed at all.
// This keeps buckets tight even for an all-nullable key (previously
// such a key degraded to one bucket and O(n) per insert).
//
// A candidate row is checked WITHOUT touching the encoding: its cells
// are probed against the dictionaries (LookupCode), and a value never
// seen before can only conflict through ⊥ — which the code predicates
// handle. The encoding is maintained across the write paths
// (Add / Remove / CompactAfterErase / Restore) and never rebuilt from
// scratch; Restore is the DELETE-rollback inverse the transaction undo
// log (engine/txn.h) replays on abort.
//
// Equivalence with the batch semantics is property-tested against
// constraints/satisfies.h; the encoding's consistency with a
// from-scratch re-encode is property-tested in enforcer_test. The
// CheckInvariants() debug hook re-derives the buckets ↔ encoding
// consistency on demand — the differential mutation harness calls it
// after every operation.

#ifndef SQLNF_ENGINE_ENFORCER_H_
#define SQLNF_ENGINE_ENFORCER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/table.h"
#include "sqlnf/engine/writer_role.h"
#include "sqlnf/util/status.h"
#include "sqlnf/util/thread_annotations.h"

namespace sqlnf {

/// Incremental checker for one (schema, Σ) pair. The enforcer does not
/// own the table; feed it every accepted row via Add() (or Rebuild()
/// after bulk changes).
///
/// Thread discipline: the enforcer is live, mutable state owned by the
/// catalog's write path — it is never published to snapshot readers.
/// Every probe or mutation therefore requires the engine's WriterThread
/// role (engine/writer_role.h); only the debug/introspection hooks at
/// the bottom are role-free, for single-threaded test harnesses.
class IncrementalEnforcer {
 public:
  IncrementalEnforcer(const TableSchema& schema, const ConstraintSet& sigma);

  /// Violation the candidate row would cause against the rows added so
  /// far, or nullopt when it is safe. The candidate is named in the
  /// violation by the current append position (encoding().num_rows()).
  std::optional<Violation> Check(const Tuple& row) const
      SQLNF_REQUIRES(writer_thread_role);

  /// Registers an accepted row (the table's row index `row_id`).
  /// `row_id` must be the append position — encoded rows and table rows
  /// stay aligned — except when re-adding a row previously Remove()d in
  /// place (the UPDATE write path), where the slot is re-encoded.
  void Add(const Tuple& row, int row_id) SQLNF_REQUIRES(writer_thread_role);

  /// Unregisters a previously Add()ed row from the constraint indexes.
  /// Must run while the encoded slot still holds the pre-image (it is
  /// hashed from the stored codes). The slot itself stays: Add() with
  /// the same id re-encodes it, and CompactAfterErase() drops it for
  /// deletes.
  void Remove(int row_id) SQLNF_REQUIRES(writer_thread_role);

  /// Renumbers the indexed row ids after rows `erased` (ascending,
  /// already Remove()d) were deleted from the table, and compacts the
  /// encoding to match: every surviving id drops by the number of
  /// erased ids below it. O(index entries), no rehashing.
  void CompactAfterErase(const std::vector<int>& erased)
      SQLNF_REQUIRES(writer_thread_role);

  /// Inverse of Remove + CompactAfterErase — the DELETE rollback.
  /// Re-inserts `rows[k]` at row id `erased[k]` of the restored table
  /// (`erased` ascending, post-restore numbering): surviving ids shift
  /// back up, the encoding re-inserts the pre-image cells (identical
  /// codes — dictionaries never shrank in between), and the restored
  /// rows are re-indexed. O(index entries + restored cells).
  void Restore(const std::vector<int>& erased, const std::vector<Tuple>& rows)
      SQLNF_REQUIRES(writer_thread_role);

  /// Retires dictionary codes minted past the recorded high-water marks
  /// (core/encoded_table.h TrimDictionaries) — the final step of a
  /// statement or transaction rollback, after every re-added pre-image
  /// is back in place.
  void TrimDictionaries(const std::vector<int>& sizes)
      SQLNF_REQUIRES(writer_thread_role) {
    encoded_.TrimDictionaries(sizes);
  }

  /// Order-preserving dictionary compaction of the maintained encoding
  /// (core/encoded_table.h CompactDictionaries): dead codes left by
  /// UPDATEs/DELETEs are reclaimed, survivors re-encode canonically
  /// (ascending value order), and the code-keyed constraint indexes
  /// are rebuilt from the new codes. Returns the total number of
  /// retired dictionary entries. Not a Rebuild(): no row-major Table
  /// is consulted, no Value re-encodes, and rebuilds() stays put. The
  /// caller must guarantee no undo log holds pre-compaction codes
  /// (Database::CompactTable bars it mid-transaction).
  int CompactDictionaries() SQLNF_REQUIRES(writer_thread_role);

  /// Drops all state and re-encodes the table's current rows.
  /// Last-resort bulk rebuild; the write paths maintain everything
  /// incrementally via Add/Remove/CompactAfterErase/Restore.
  void Rebuild(const Table& table) SQLNF_REQUIRES(writer_thread_role);

  /// Number of Rebuild() calls over this enforcer's lifetime — lets
  /// tests assert the incremental write paths never fall back to a full
  /// rebuild.
  int rebuilds() const { return rebuilds_; }

  /// The maintained columnar view of the Add()ed rows — the same
  /// representation engine/validate.h and discovery consume, so batch
  /// re-validation and mining skip the encode step.
  const EncodedTable& encoding() const { return encoded_; }

  // ---- Debug / test introspection.

  /// Re-derives every invariant the incremental maintenance relies on
  /// and returns Internal with a description on the first breach:
  /// dictionary bijectivity, code ranges and ⊥ counts of the encoding,
  /// and buckets ↔ encoding consistency per constraint index (each row
  /// indexed exactly when it must be, under the hash of its CURRENT
  /// codes, with no duplicate or out-of-range ids). O(rows · |Σ| +
  /// dictionary sizes) — a debug hook, not a fast path.
  Status CheckInvariants() const;

  /// Order-insensitive digest of the constraint indexes (bucket keys
  /// and their id sets) plus the dictionary high-water marks. Two
  /// enforcers over the same history agree; the abort protocol is
  /// tested by fingerprint equality before Begin and after Rollback.
  uint64_t IndexFingerprint() const;

  /// Bucket fan-out of one constraint index (indexes are ordered: all
  /// FDs in Σ order, then all keys in Σ order).
  struct IndexStats {
    int buckets = 0;         // distinct non-empty buckets
    int largest_bucket = 0;  // ids in the fullest bucket
    int indexed_rows = 0;    // total ids across buckets
  };
  int num_indexes() const { return static_cast<int>(indexes_.size()); }
  IndexStats Stats(int index) const;

 private:
  struct ConstraintIndex {
    Constraint constraint;
    AttributeSet similarity_attrs;  // LHS for FDs, attrs for keys
    AttributeSet rhs;               // empty for keys
    bool strong = false;            // possible (strong) vs certain (weak)
    AttributeSet stable;            // hash attrs: full set when strong,
                                    // similarity_attrs ∩ NFS when weak
    std::unordered_map<uint64_t, std::vector<int>> buckets;
  };

  /// FNV mix of the row's codes on `attrs`; `codes` is one code per
  /// schema column (a candidate's LookupCode vector or a stored row's
  /// encoded codes).
  static uint64_t HashCodes(const std::vector<uint32_t>& codes,
                            const AttributeSet& attrs);
  uint64_t HashStoredRow(int row_id, const AttributeSet& attrs) const;

  /// True when the encoded row has no ⊥ on `attrs`.
  bool RowTotal(int row_id, const AttributeSet& attrs) const;

  /// Whether `row_id`'s current codes belong in `index` at all (strong
  /// constraints skip rows that are not total on the similarity attrs).
  bool ShouldIndex(const ConstraintIndex& index, int row_id) const;

  /// Pushes `row_id` into every index it belongs to, hashed from its
  /// CURRENT codes (the slot must already hold them).
  void IndexRow(int row_id);

  TableSchema schema_;
  EncodedTable encoded_;
  std::vector<ConstraintIndex> indexes_;
  int rebuilds_ = 0;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_ENFORCER_H_
