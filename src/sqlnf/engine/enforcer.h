// Incremental constraint enforcement with code-based hash indexes.
//
// ValidateRowAgainst (catalog.h) probes every stored row per insert.
// This enforcer maintains ONE dictionary encoding of the stored rows
// (core/encoded_table.h) plus, per constraint, a hash index keyed by
// the row's CODES on the constraint's STABLE columns — the LHS/key
// attributes that are schema-level NOT NULL. Two rows can only be
// (weakly or strongly) similar on the LHS when they agree exactly on
// those columns, so candidate conflicts live in one bucket; within a
// bucket the pairwise predicate runs on integer codes. Constraints
// whose LHS has no NOT NULL attribute keep a single bucket (the
// theoretical worst case — weak similarity can relate anything
// through ⊥).
//
// A candidate row is checked WITHOUT touching the encoding: its cells
// are probed against the dictionaries (LookupCode), and a value never
// seen before can only conflict through ⊥ — which the code predicates
// handle. The encoding is maintained across the write paths
// (Add / Remove / CompactAfterErase) and never rebuilt from scratch.
//
// Equivalence with the batch semantics is property-tested against
// constraints/satisfies.h; the encoding's consistency with a
// from-scratch re-encode is property-tested in enforcer_test.

#ifndef SQLNF_ENGINE_ENFORCER_H_
#define SQLNF_ENGINE_ENFORCER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/table.h"

namespace sqlnf {

/// Incremental checker for one (schema, Σ) pair. The enforcer does not
/// own the table; feed it every accepted row via Add() (or Rebuild()
/// after bulk changes).
class IncrementalEnforcer {
 public:
  IncrementalEnforcer(const TableSchema& schema, const ConstraintSet& sigma);

  /// Violation the candidate row would cause against the rows added so
  /// far, or nullopt when it is safe. The candidate is named in the
  /// violation by the current append position (encoding().num_rows()).
  std::optional<Violation> Check(const Tuple& row) const;

  /// Registers an accepted row (the table's row index `row_id`).
  /// `row_id` must be the append position — encoded rows and table rows
  /// stay aligned — except when re-adding a row previously Remove()d in
  /// place (the UPDATE write path), where the slot is re-encoded.
  void Add(const Tuple& row, int row_id);

  /// Unregisters a previously Add()ed row from the constraint indexes.
  /// Must run while the encoded slot still holds the pre-image (it is
  /// hashed from the stored codes). The slot itself stays: Add() with
  /// the same id re-encodes it, and CompactAfterErase() drops it for
  /// deletes.
  void Remove(int row_id);

  /// Renumbers the indexed row ids after rows `erased` (ascending,
  /// already Remove()d) were deleted from the table, and compacts the
  /// encoding to match: every surviving id drops by the number of
  /// erased ids below it. O(index entries), no rehashing.
  void CompactAfterErase(const std::vector<int>& erased);

  /// Drops all state and re-encodes the table's current rows.
  /// Last-resort bulk rebuild; the write paths maintain everything
  /// incrementally via Add/Remove/CompactAfterErase.
  void Rebuild(const Table& table);

  /// Number of Rebuild() calls over this enforcer's lifetime — lets
  /// tests assert the incremental write paths never fall back to a full
  /// rebuild.
  int rebuilds() const { return rebuilds_; }

  /// The maintained columnar view of the Add()ed rows — the same
  /// representation engine/validate.h and discovery consume, so batch
  /// re-validation and mining skip the encode step.
  const EncodedTable& encoding() const { return encoded_; }

 private:
  struct ConstraintIndex {
    Constraint constraint;
    AttributeSet similarity_attrs;  // LHS for FDs, attrs for keys
    AttributeSet rhs;               // empty for keys
    bool strong = false;            // possible (strong) vs certain (weak)
    AttributeSet stable;            // similarity_attrs ∩ schema NFS
    std::unordered_map<uint64_t, std::vector<int>> buckets;
  };

  /// FNV mix of the row's codes on `attrs`; `codes` is one code per
  /// schema column (a candidate's LookupCode vector or a stored row's
  /// encoded codes).
  static uint64_t HashCodes(const std::vector<uint32_t>& codes,
                            const AttributeSet& attrs);
  uint64_t HashStoredRow(int row_id, const AttributeSet& attrs) const;

  /// True when the encoded row has no ⊥ on `attrs`.
  bool RowTotal(int row_id, const AttributeSet& attrs) const;

  TableSchema schema_;
  EncodedTable encoded_;
  std::vector<ConstraintIndex> indexes_;
  int rebuilds_ = 0;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_ENFORCER_H_
