// Incremental constraint enforcement with hash indexes.
//
// ValidateRowAgainst (catalog.h) probes every stored row per insert.
// This enforcer maintains, per constraint, a hash index keyed by the
// row's values on the constraint's STABLE columns — the LHS/key
// attributes that are schema-level NOT NULL. Two rows can only be
// (weakly or strongly) similar on the LHS when they agree exactly on
// those columns, so candidate conflicts live in one bucket; within a
// bucket the exact pairwise predicate runs. Constraints whose LHS has
// no NOT NULL attribute keep a single bucket (the theoretical worst
// case — weak similarity can relate anything through ⊥).
//
// Equivalence with the batch semantics is property-tested against
// constraints/satisfies.h.

#ifndef SQLNF_ENGINE_ENFORCER_H_
#define SQLNF_ENGINE_ENFORCER_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/table.h"

namespace sqlnf {

/// Incremental checker for one (schema, Σ) pair. The enforcer does not
/// own the table; feed it every accepted row via Add() (or Rebuild()
/// after bulk changes).
class IncrementalEnforcer {
 public:
  IncrementalEnforcer(const TableSchema& schema, const ConstraintSet& sigma);

  /// Violation the candidate row would cause against the rows added so
  /// far, or nullopt when it is safe. `table` must hold exactly the
  /// rows previously Add()ed (used to fetch conflict partners).
  std::optional<Violation> Check(const Table& table,
                                 const Tuple& row) const;

  /// Registers an accepted row (the table's row index `row_id`).
  void Add(const Tuple& row, int row_id);

  /// Unregisters a previously Add()ed row. `row` must hold the exact
  /// values it was indexed with (the PRE-image for updates — the hash
  /// locates the bucket). A row Add() skipped (strong constraint, ⊥ on
  /// the LHS) is silently absent; that is fine.
  void Remove(const Tuple& row, int row_id);

  /// Renumbers the indexed row ids after rows `erased` (ascending,
  /// already Remove()d) were deleted from the table: every surviving id
  /// drops by the number of erased ids below it. O(index entries), no
  /// rehashing — the cheap half of what Rebuild used to redo.
  void CompactAfterErase(const std::vector<int>& erased);

  /// Drops all indexed rows and re-adds the table's current rows.
  /// Last-resort bulk rebuild; the write paths maintain the index
  /// incrementally via Add/Remove/CompactAfterErase.
  void Rebuild(const Table& table);

  /// Number of Rebuild() calls over this enforcer's lifetime — lets
  /// tests assert the incremental write paths never fall back to a full
  /// rebuild.
  int rebuilds() const { return rebuilds_; }

 private:
  struct ConstraintIndex {
    Constraint constraint;
    AttributeSet similarity_attrs;  // LHS for FDs, attrs for keys
    AttributeSet rhs;               // empty for keys
    bool strong = false;            // possible (strong) vs certain (weak)
    AttributeSet stable;            // similarity_attrs ∩ schema NFS
    std::unordered_map<size_t, std::vector<int>> buckets;
  };

  static size_t HashOn(const Tuple& row, const AttributeSet& attrs);

  TableSchema schema_;
  std::vector<ConstraintIndex> indexes_;
  int rebuilds_ = 0;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_ENFORCER_H_
