// Database: a catalog of tables with NATIVELY ENFORCED paper
// constraints.
//
// SQL can declare NOT NULL and UNIQUE, but certain keys over nullable
// columns and (possible/certain) FDs are beyond its declarative reach —
// the DDL emitter (engine/ddl.h) can only leave comments. This catalog
// closes the loop: every write (insert / update / delete) is validated
// against the table's full constraint set (p-/c-FDs, p-/c-keys, NFS)
// and rejected with a Violation message when it would break one, the
// way a trigger-based enforcement layer would.
//
// Writes are atomic per statement: a rejected write leaves the table
// untouched.

#ifndef SQLNF_ENGINE_CATALOG_H_
#define SQLNF_ENGINE_CATALOG_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/table.h"
#include "sqlnf/engine/enforcer.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// Checks one candidate row against an existing (assumed-consistent)
/// instance: NFS, then each constraint against every stored row.
/// Returns the violation or nullopt. O(rows · |Σ|) — incremental, not
/// quadratic.
std::optional<Violation> ValidateRowAgainst(const Table& table,
                                            const Tuple& row,
                                            const ConstraintSet& sigma);

/// One stored table: instance + enforced constraints + insert index.
struct StoredTable {
  Table data;
  ConstraintSet sigma;
  IncrementalEnforcer enforcer;

  StoredTable(Table t, ConstraintSet s)
      : data(std::move(t)),
        sigma(std::move(s)),
        enforcer(data.schema(), sigma) {}
};

/// An in-memory multi-table database with constraint enforcement.
class Database {
 public:
  /// Registers an empty table. Fails when the name exists.
  Status CreateTable(const TableSchema& schema, ConstraintSet sigma);

  /// Removes a table. NotFound when absent.
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// The stored table; NotFound when absent.
  Result<const StoredTable*> Find(const std::string& name) const;

  /// Inserts one row after validating it against the instance and Σ.
  /// FailedPrecondition with the violation text on rejection.
  Status Insert(const std::string& name, Tuple row);

  /// UPDATE ... SET column = value WHERE predicate. The whole statement
  /// is validated post-image; on violation nothing changes. Returns
  /// rows changed.
  Result<int> Update(const std::string& name,
                     const std::function<bool(const Tuple&)>& predicate,
                     AttributeId column, const Value& value);

  /// DELETE FROM ... WHERE predicate. Deletes cannot violate FDs/keys
  /// (they are anti-monotone), so no validation is needed. Returns rows
  /// removed.
  Result<int> Delete(const std::string& name,
                     const std::function<bool(const Tuple&)>& predicate);

 private:
  Result<StoredTable*> FindMutable(const std::string& name);

  std::map<std::string, StoredTable> tables_;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_CATALOG_H_
