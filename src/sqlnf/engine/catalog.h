// Database: a catalog of tables with NATIVELY ENFORCED paper
// constraints, stored columnar.
//
// SQL can declare NOT NULL and UNIQUE, but certain keys over nullable
// columns and (possible/certain) FDs are beyond its declarative reach —
// the DDL emitter (engine/ddl.h) can only leave comments. This catalog
// closes the loop: every write (insert / update / delete) is validated
// against the table's full constraint set (p-/c-FDs, p-/c-keys, NFS)
// and rejected with a Violation message when it would break one, the
// way a trigger-based enforcement layer would.
//
// PRIMARY STORAGE is the dictionary encoding the incremental enforcer
// maintains across every write (core/encoded_table.h): one uint32 code
// column per attribute, kept consistent by AppendRow / UpdateCell /
// EraseRows — there is no row-major copy of the instance. Queries
// (engine/sql.h, decomposition/encoded_ops.h) execute on the codes;
// the row-major Table appears only at the ingest/decode boundary (CSV,
// SQL literals, ToString, test oracles) via Materialize()/DecodeRow().
//
// Writes are atomic per statement: a rejected write leaves the table
// untouched (a rejected UPDATE may still grow dictionaries — codes are
// append-only by design, and retired codes are harmless).

#ifndef SQLNF_ENGINE_CATALOG_H_
#define SQLNF_ENGINE_CATALOG_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/table.h"
#include "sqlnf/engine/enforcer.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// Checks one candidate row against an existing (assumed-consistent)
/// instance: NFS, then each constraint against every stored row.
/// Returns the violation or nullopt. O(rows · |Σ|) — the row-major
/// reference for the enforcer's differential tests.
std::optional<Violation> ValidateRowAgainst(const Table& table,
                                            const Tuple& row,
                                            const ConstraintSet& sigma);

/// One stored table. The instance lives as the enforcer's maintained
/// encoding — columns() IS the data; Materialize() decodes on demand.
class StoredTable {
 public:
  StoredTable(TableSchema schema, ConstraintSet s)
      : schema_(std::move(schema)),
        sigma_(std::move(s)),
        enforcer_(schema_, sigma_) {}

  const TableSchema& schema() const { return schema_; }
  const ConstraintSet& sigma() const { return sigma_; }

  /// The columnar instance: one code column per attribute, all encoded.
  const EncodedTable& columns() const { return enforcer_.encoding(); }

  int num_rows() const { return columns().num_rows(); }
  int num_columns() const { return schema_.num_attributes(); }

  /// Decodes one stored row (the decode boundary for row predicates and
  /// result sets).
  Tuple DecodeRow(int row) const;

  /// Decodes the whole instance into a row-major Table.
  Table Materialize() const { return columns().Decode(schema_); }

  IncrementalEnforcer& enforcer() { return enforcer_; }
  const IncrementalEnforcer& enforcer() const { return enforcer_; }

 private:
  TableSchema schema_;
  ConstraintSet sigma_;
  IncrementalEnforcer enforcer_;
};

/// An in-memory multi-table database with constraint enforcement.
class Database {
 public:
  /// Registers an empty table. Fails when the name exists.
  Status CreateTable(const TableSchema& schema, ConstraintSet sigma);

  /// Bulk-loads a row-major table through the enforcer (the CSV/ingest
  /// boundary); the table name comes from data.schema(). Fails on the
  /// first rejected row and drops the partially loaded table.
  Status IngestTable(const Table& data, ConstraintSet sigma);

  /// Removes a table. NotFound when absent.
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// The stored table; NotFound when absent.
  Result<const StoredTable*> Find(const std::string& name) const;

  /// Inserts one row after validating it against the instance and Σ.
  /// FailedPrecondition with the violation text on rejection.
  Status Insert(const std::string& name, Tuple row);

  /// SELECT: the rows satisfying every condition, matched on codes and
  /// decoded only for the result.
  Result<Table> Select(const std::string& name,
                       const std::vector<ColumnCondition>& where) const;

  /// UPDATE ... SET column = value WHERE conditions, executed on codes
  /// (the SQL layer's default path). The whole statement is validated
  /// post-image on the maintained encoding; on violation every changed
  /// slot is rolled back. Returns rows changed.
  Result<int> Update(const std::string& name,
                     const std::vector<ColumnCondition>& where,
                     AttributeId column, const Value& value);

  /// UPDATE with an arbitrary row predicate: rows are decoded to
  /// evaluate it, then the write takes the same columnar path.
  Result<int> Update(const std::string& name,
                     const std::function<bool(const Tuple&)>& predicate,
                     AttributeId column, const Value& value);

  /// DELETE FROM ... WHERE conditions, executed on codes. Deletes
  /// cannot violate FDs/keys (they are anti-monotone), so no validation
  /// is needed. Returns rows removed.
  Result<int> Delete(const std::string& name,
                     const std::vector<ColumnCondition>& where);

  /// DELETE with an arbitrary row predicate (decodes rows to evaluate
  /// it).
  Result<int> Delete(const std::string& name,
                     const std::function<bool(const Tuple&)>& predicate);

 private:
  Result<StoredTable*> FindMutable(const std::string& name);

  /// Shared columnar write core: flips `column` to `value` on the
  /// matched rows, validates the post-image, rolls back on violation.
  Result<int> UpdateMatched(StoredTable* stored,
                            const std::vector<int>& matches,
                            AttributeId column, const Value& value);

  /// Shared delete core: `matches` must be ascending.
  int DeleteMatched(StoredTable* stored, const std::vector<int>& matches);

  std::map<std::string, StoredTable> tables_;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_CATALOG_H_
