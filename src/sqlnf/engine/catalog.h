// Database: a catalog of tables with NATIVELY ENFORCED paper
// constraints, stored columnar.
//
// SQL can declare NOT NULL and UNIQUE, but certain keys over nullable
// columns and (possible/certain) FDs are beyond its declarative reach —
// the DDL emitter (engine/ddl.h) can only leave comments. This catalog
// closes the loop: every write (insert / update / delete) is validated
// against the table's full constraint set (p-/c-FDs, p-/c-keys, NFS)
// and rejected with a Violation message when it would break one, the
// way a trigger-based enforcement layer would.
//
// PRIMARY STORAGE is the dictionary encoding the incremental enforcer
// maintains across every write (core/encoded_table.h): one uint32 code
// column per attribute, kept consistent by AppendRow / UpdateCell /
// EraseRows — there is no row-major copy of the instance. Queries
// (engine/sql.h, decomposition/encoded_ops.h) execute on the codes;
// the row-major Table appears only at the ingest/decode boundary (CSV,
// SQL literals, ToString, test oracles) via Materialize()/DecodeRow().
//
// ATOMICITY. Writes are atomic per statement: a rejected statement
// rolls back every slot it touched AND retires the dictionary codes it
// minted (engine/txn.h), leaving the table bit-identical. Between
// Begin() and Commit() statements accumulate in an undo log instead of
// auto-committing, so a logical write that fans out over N normalized
// component tables commits or aborts as one unit; Rollback() restores
// every touched table — contents, constraint indexes, dictionaries —
// to its pre-transaction state. DDL (create / ingest / drop) is barred
// while a transaction is open.
//
// SNAPSHOT READS. Each stored table publishes an immutable snapshot of
// its encoding at commit points. Publishing is lazy copy-on-write: the
// snapshot shares every column with the live encoding (O(columns)
// pointer copies), and the writer's next mutation detaches just the
// columns it touches — many reader threads can therefore execute
// SELECT/JOIN against a stable epoch while the single writer keeps
// batching mutations. A snapshot's columns are freed when the last
// reader drops its TableSnapshot (shared_ptr refcount — no epoch list
// to sweep). Concurrency contract: any number of threads may call
// GetSnapshot() and read the returned snapshot, concurrently with ONE
// writer thread calling the mutating methods; the remaining accessors
// (Find / Select / Materialize / ...) touch live state and belong to
// the writer thread.
//
// The contract is MACHINE-CHECKED (DESIGN.md §8): Database::mu_ is a
// capability-annotated Mutex guarding tables_ and txn_, StoredTable's
// publication methods take the guarding mutex as a parameter with
// SQLNF_REQUIRES(mu), and every writer-thread-only entry point
// requires the WriterThread phantom capability
// (engine/writer_role.h) — so a reader context that never entered a
// WriterScope cannot even compile a call to Insert or Update under
// clang -Wthread-safety.

#ifndef SQLNF_ENGINE_CATALOG_H_
#define SQLNF_ENGINE_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/constraints/satisfies.h"
#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/table.h"
#include "sqlnf/engine/enforcer.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/engine/txn.h"
#include "sqlnf/engine/writer_role.h"
#include "sqlnf/util/mutex.h"
#include "sqlnf/util/status.h"
#include "sqlnf/util/thread_annotations.h"

namespace sqlnf {

/// Checks one candidate row against an existing (assumed-consistent)
/// instance: NFS, then each constraint against every stored row.
/// Returns the violation or nullopt. O(rows · |Σ|) — the row-major
/// reference for the enforcer's differential tests.
std::optional<Violation> ValidateRowAgainst(const Table& table,
                                            const Tuple& row,
                                            const ConstraintSet& sigma);

/// An immutable view of one table at a commit point. Copyable and
/// cheap to pass between threads; the columns stay alive (and
/// bit-stable) for as long as any copy holds them. `epoch` increments
/// with every published version, so readers can correlate what they
/// saw with the writer's commit history.
struct TableSnapshot {
  TableSchema schema;
  ConstraintSet sigma;
  std::shared_ptr<const EncodedTable> columns;
  uint64_t epoch = 0;

  int num_rows() const { return columns->num_rows(); }
  Table Materialize() const { return columns->Decode(schema); }
};

/// SELECT against a snapshot: the rows satisfying the WHERE predicate
/// tree (engine/predicate.h — ranges, BETWEEN, IN, OR), matched on
/// codes and decoded only at the result boundary. Safe to run from any
/// reader thread without touching the Database; the compiled predicate
/// reads only the snapshot's immutable columns.
Result<Table> SelectFromSnapshot(const TableSnapshot& snapshot,
                                 const Predicate& where);

/// Legacy conjunctive form (lowers through ToPredicate).
Result<Table> SelectFromSnapshot(const TableSnapshot& snapshot,
                                 const std::vector<ColumnCondition>& where);

/// One stored table. The instance lives as the enforcer's maintained
/// encoding — columns() IS the data; Materialize() decodes on demand.
class StoredTable {
 public:
  StoredTable(TableSchema schema, ConstraintSet s)
      : schema_(std::move(schema)),
        sigma_(std::move(s)),
        enforcer_(schema_, sigma_) {}

  const TableSchema& schema() const { return schema_; }
  const ConstraintSet& sigma() const { return sigma_; }

  /// The columnar instance: one code column per attribute, all encoded.
  const EncodedTable& columns() const { return enforcer_.encoding(); }

  int num_rows() const { return columns().num_rows(); }
  int num_columns() const { return schema_.num_attributes(); }

  /// Decodes one stored row (the decode boundary for row predicates and
  /// result sets).
  Tuple DecodeRow(int row) const;

  /// Decodes the whole instance into a row-major Table.
  Table Materialize() const { return columns().Decode(schema_); }

  IncrementalEnforcer& enforcer() { return enforcer_; }
  const IncrementalEnforcer& enforcer() const { return enforcer_; }

  // ---- Snapshot publication (driven by Database under its mutex).
  //
  // Each method takes the guarding mutex as a parameter: the analysis
  // substitutes the caller's argument into SQLNF_REQUIRES, so
  // `stored->Snapshot(mu_)` type-checks exactly when Database holds
  // mu_. (A back-pointer to the mutex would defeat the syntactic
  // matching — the capability expression must be the caller's own.)

  /// The published snapshot, refreshed first when a commit has dirtied
  /// it. The refresh is an O(columns) copy sharing every column with
  /// the live encoding; the writer's next mutation pays the
  /// copy-on-write detach, so back-to-back commits with no reader in
  /// between never clone anything.
  TableSnapshot Snapshot(Mutex& mu) SQLNF_REQUIRES(mu) {
    PinSnapshot(mu);
    return TableSnapshot{schema_, sigma_, snapshot_, epoch_};
  }

  /// Refreshes the published snapshot if dirty, without handing it out.
  /// A transaction's first write to this table pins the committed state
  /// here so mid-transaction readers never observe uncommitted rows.
  void PinSnapshot(Mutex& mu) SQLNF_REQUIRES(mu) {
    static_cast<void>(mu);  // capability-only parameter
    if (stale_) {
      snapshot_ = std::make_shared<const EncodedTable>(columns());
      ++epoch_;
      stale_ = false;
    }
  }

  /// Marks the published snapshot out of date. Called at commit points
  /// only — never mid-transaction.
  void MarkDirty(Mutex& mu) SQLNF_REQUIRES(mu) {
    static_cast<void>(mu);  // capability-only parameter
    stale_ = true;
  }

  /// Published versions so far (0 until the first Snapshot()).
  uint64_t epoch() const { return epoch_; }

 private:
  TableSchema schema_;
  ConstraintSet sigma_;
  IncrementalEnforcer enforcer_;
  // Publication state — mutated only via the SQLNF_REQUIRES(mu)
  // methods above, under Database::mu_ (the owning mutex is not a
  // member, so GUARDED_BY cannot name it here; the method-level
  // requirements carry the whole contract).
  std::shared_ptr<const EncodedTable> snapshot_;
  uint64_t epoch_ = 0;
  bool stale_ = true;
};

/// An in-memory multi-table database with constraint enforcement,
/// snapshot reads, and cross-table transactions.
///
/// Role annotations mirror the concurrency contract above: methods
/// marked SQLNF_REQUIRES(writer_thread_role) belong to the single
/// writer thread (establish a WriterScope there); the role-free
/// methods (GetSnapshot, HasTable, TableNames, InTransaction) are safe
/// from any reader thread.
class Database {
 public:
  /// Registers an empty table. Fails when the name exists or a
  /// transaction is open.
  Status CreateTable(const TableSchema& schema, ConstraintSet sigma)
      SQLNF_REQUIRES(writer_thread_role);

  /// Bulk-loads a row-major table through the enforcer (the CSV/ingest
  /// boundary); the table name comes from data.schema(). Fails on the
  /// first rejected row and drops the partially loaded table. Runs as
  /// one implicit transaction, publishing a single snapshot at the end.
  Status IngestTable(const Table& data, ConstraintSet sigma)
      SQLNF_REQUIRES(writer_thread_role);

  /// Removes a table. NotFound when absent; fails inside a transaction.
  Status DropTable(const std::string& name)
      SQLNF_REQUIRES(writer_thread_role);

  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// The stored table; NotFound when absent. Live state — writer
  /// thread only (readers use GetSnapshot).
  Result<const StoredTable*> Find(const std::string& name) const
      SQLNF_REQUIRES(writer_thread_role);

  /// Inserts one row after validating it against the instance and Σ.
  /// FailedPrecondition with the violation text on rejection.
  Status Insert(const std::string& name, Tuple row)
      SQLNF_REQUIRES(writer_thread_role);

  /// SELECT on live state: the rows satisfying the WHERE predicate
  /// tree, matched on codes, gathered columnar, and decoded only at
  /// the result boundary. Writer thread only — concurrent readers go
  /// through GetSnapshot + SelectFromSnapshot.
  Result<Table> Select(const std::string& name, const Predicate& where) const
      SQLNF_REQUIRES(writer_thread_role);

  /// Legacy conjunctive form (lowers through ToPredicate).
  Result<Table> Select(const std::string& name,
                       const std::vector<ColumnCondition>& where) const
      SQLNF_REQUIRES(writer_thread_role);

  /// UPDATE ... SET column = value WHERE predicate tree, executed on
  /// codes (the SQL layer's default path). The whole statement is
  /// validated post-image on the maintained encoding; on violation
  /// every changed slot is rolled back and the statement's dictionary
  /// codes are retired. Returns rows changed.
  Result<int> Update(const std::string& name, const Predicate& where,
                     AttributeId column, const Value& value)
      SQLNF_REQUIRES(writer_thread_role);

  /// Legacy conjunctive form (lowers through ToPredicate).
  Result<int> Update(const std::string& name,
                     const std::vector<ColumnCondition>& where,
                     AttributeId column, const Value& value)
      SQLNF_REQUIRES(writer_thread_role);

  /// UPDATE with an arbitrary row predicate: rows are decoded to
  /// evaluate it, then the write takes the same columnar path.
  Result<int> Update(const std::string& name,
                     const std::function<bool(const Tuple&)>& predicate,
                     AttributeId column, const Value& value)
      SQLNF_REQUIRES(writer_thread_role);

  /// DELETE FROM ... WHERE predicate tree, executed on codes. Deletes
  /// cannot violate FDs/keys (they are anti-monotone), so no validation
  /// is needed. Returns rows removed.
  Result<int> Delete(const std::string& name, const Predicate& where)
      SQLNF_REQUIRES(writer_thread_role);

  /// Legacy conjunctive form (lowers through ToPredicate).
  Result<int> Delete(const std::string& name,
                     const std::vector<ColumnCondition>& where)
      SQLNF_REQUIRES(writer_thread_role);

  /// DELETE with an arbitrary row predicate (decodes rows to evaluate
  /// it).
  Result<int> Delete(const std::string& name,
                     const std::function<bool(const Tuple&)>& predicate)
      SQLNF_REQUIRES(writer_thread_role);

  /// VACUUM: order-preserving dictionary compaction of one table
  /// (enforcer CompactDictionaries — dead codes reclaimed, survivors
  /// re-encoded canonically, constraint indexes rebuilt). Returns the
  /// number of retired dictionary entries. Barred while a transaction
  /// is open: the undo log records pre-compaction codes and dictionary
  /// high-water marks, which compaction would invalidate. Readers are
  /// unaffected — published snapshots keep the pre-compaction columns
  /// alive and bit-stable; the next GetSnapshot sees canonical codes.
  Result<int> CompactTable(const std::string& name)
      SQLNF_REQUIRES(writer_thread_role);

  // ---- Snapshot reads.

  /// The table's latest committed snapshot, publishing a fresh epoch if
  /// commits happened since the last call. Thread-safe against the
  /// writer; the returned snapshot is read without any lock.
  Result<TableSnapshot> GetSnapshot(const std::string& name);

  /// Committed snapshots of every table, taken atomically under one
  /// lock acquisition — the read-only script path in engine/session.h
  /// resolves all its table references against this map, so a script
  /// never mixes epochs from either side of a concurrent commit.
  /// O(tables) pointer copies; no column data is cloned.
  std::map<std::string, TableSnapshot> SnapshotAll();

  // ---- Transactions. One open transaction at a time (single-writer
  // engine); statements between Begin and Commit log their inverses and
  // publish no snapshots, so readers keep the pre-transaction epoch
  // until Commit. A statement rejected mid-transaction rolls back only
  // itself; the transaction stays open.

  Status Begin() SQLNF_REQUIRES(writer_thread_role);

  /// Makes the transaction's effects permanent and publishable.
  Status Commit() SQLNF_REQUIRES(writer_thread_role);

  /// Replays the undo log newest-first: every touched table — contents,
  /// constraint indexes, dictionaries — returns bit-identical to its
  /// pre-transaction state.
  Status Rollback() SQLNF_REQUIRES(writer_thread_role);

  bool InTransaction() const;

 private:
  Result<const StoredTable*> FindLocked(const std::string& name) const
      SQLNF_REQUIRES(mu_);
  Result<StoredTable*> FindMutable(const std::string& name)
      SQLNF_REQUIRES(mu_);

  Status CreateTableLocked(const TableSchema& schema, ConstraintSet sigma)
      SQLNF_REQUIRES(mu_);
  Status InsertLocked(const std::string& name, Tuple row)
      SQLNF_REQUIRES(mu_, writer_thread_role);

  /// Shared columnar write core: flips `column` to `value` on the
  /// matched rows, validates the post-image, rolls back (slots and
  /// dictionary marks) on violation.
  Result<int> UpdateMatched(StoredTable* stored,
                            const std::vector<int>& matches,
                            AttributeId column, const Value& value)
      SQLNF_REQUIRES(mu_, writer_thread_role);

  /// Shared delete core: `matches` must be ascending.
  int DeleteMatched(StoredTable* stored, const std::vector<int>& matches)
      SQLNF_REQUIRES(mu_, writer_thread_role);

  /// Serializes snapshot publication against the writer; all mutating
  /// entry points and GetSnapshot take it.
  mutable Mutex mu_;
  std::map<std::string, StoredTable> tables_ SQLNF_GUARDED_BY(mu_);
  // Non-null while a transaction is open.
  std::unique_ptr<UndoLog> txn_ SQLNF_GUARDED_BY(mu_)
      SQLNF_PT_GUARDED_BY(mu_);
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_CATALOG_H_
