// Cross-table transactions: an explicit undo log over the enforcer
// primitives (Add / Remove+Add / Remove+CompactAfterErase), plus the
// RAII TransactionGuard.
//
// The Database (engine/catalog.h) routes every Insert / Update / Delete
// through this log. Outside an explicit transaction each statement
// auto-commits (its validated effects are final the moment it returns);
// between Begin() and Commit() the statements' inverses accumulate
// here, and Rollback() replays them newest-first so that an insert into
// N normalized component tables commits or fails as one unit — the
// consistency requirement a decomposed schema adds to every logical
// write ("one fact, N component rows").
//
// Undo record semantics (each is the exact inverse of one applied,
// validated mutation):
//
//   kInsert  {row_id}                → Remove + CompactAfterErase: at
//            undo time every later mutation has already been undone, so
//            the row sits at `row_id` again and is the highest row.
//   kUpdate  {row_id, pre_image}     → Remove + Add(pre_image) in
//            place; re-encoding the pre-image reproduces its original
//            codes because dictionaries never shrink mid-transaction.
//   kDelete  {erased_ids, pre_rows}  → IncrementalEnforcer::Restore:
//            survivors shift back up, the pre-image cells re-encode at
//            their original positions.
//
// Replaying strictly newest-first keeps every record's row ids valid at
// its own undo step. After the replay, TrimDictionaries retires the
// codes the transaction minted (recorded as per-column dictionary
// high-water marks on first touch of each table) — so an aborted
// transaction leaves tables, constraint indexes AND dictionaries
// bit-identical to their pre-transaction state. The same mark/trim
// mechanism runs at statement scope inside UpdateMatched, fixing the
// historical leak where a rejected UPDATE left its freshly minted
// dictionary entry behind.
//
// Statement vs transaction scope: a statement that fails validation
// inside an open transaction rolls back only itself (its records never
// reach this log); the transaction stays open and the caller chooses to
// Commit the prior statements or Rollback everything.

#ifndef SQLNF_ENGINE_TXN_H_
#define SQLNF_ENGINE_TXN_H_

#include <map>
#include <string>
#include <vector>

#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/table.h"
#include "sqlnf/engine/enforcer.h"
#include "sqlnf/engine/writer_role.h"
#include "sqlnf/util/status.h"
#include "sqlnf/util/thread_annotations.h"

namespace sqlnf {

class Database;

/// One logged mutation, stored as the inputs of its inverse.
struct UndoRecord {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind = Kind::kInsert;

  int row_id = 0;   // kInsert: appended id; kUpdate: updated id
  Tuple pre_image;  // kUpdate: the full pre-image row

  // kDelete: the erased ids (ascending, pre-delete numbering — which is
  // also their post-restore numbering) and their pre-image rows.
  std::vector<int> erased_ids;
  std::vector<Tuple> erased_rows;
};

/// Undo state of one table inside one transaction.
struct TableUndo {
  std::vector<UndoRecord> ops;  // applied order; undone in reverse
  std::vector<int> dict_mark;   // dictionary sizes at first touch
};

/// The undo log of one open transaction: per touched table, the inverse
/// operations plus the dictionary high-water marks taken before the
/// transaction's first mutation of that table.
class UndoLog {
 public:
  /// The table's undo state, creating it — and recording the
  /// dictionary marks from `encoding` — on first touch. Must be called
  /// BEFORE the statement mutates the table.
  TableUndo& Touch(const std::string& table, const EncodedTable& encoding)
      SQLNF_REQUIRES(writer_thread_role);

  const std::map<std::string, TableUndo>& tables() const { return tables_; }

  /// Undoes one table's records newest-first against its enforcer, then
  /// trims the dictionaries to the recorded marks. Also the shared
  /// engine for statement-scope rollback (with a statement-local
  /// TableUndo).
  static void RollbackTable(const TableUndo& undo,
                            IncrementalEnforcer* enforcer)
      SQLNF_REQUIRES(writer_thread_role);

 private:
  std::map<std::string, TableUndo> tables_;
};

/// RAII transaction scope: Begin() on construction, Rollback() on
/// destruction unless Commit() was called — so an early return from a
/// multi-table write sequence aborts cleanly.
///
///   TransactionGuard txn(&db);
///   SQLNF_RETURN_NOT_OK(txn.begin_status());
///   SQLNF_RETURN_NOT_OK(db.Insert("orders", ...));
///   SQLNF_RETURN_NOT_OK(db.Insert("order_items", ...));
///   return txn.Commit();
class TransactionGuard {
 public:
  explicit TransactionGuard(Database* db) SQLNF_REQUIRES(writer_thread_role);
  ~TransactionGuard() SQLNF_REQUIRES(writer_thread_role);

  TransactionGuard(const TransactionGuard&) = delete;
  TransactionGuard& operator=(const TransactionGuard&) = delete;

  /// Whether Begin() succeeded (it fails when a transaction is already
  /// open — transactions do not nest).
  const Status& begin_status() const { return begin_status_; }

  /// Commits the transaction; after this the destructor is a no-op.
  Status Commit() SQLNF_REQUIRES(writer_thread_role);

  /// Rolls back explicitly; after this the destructor is a no-op.
  Status Rollback() SQLNF_REQUIRES(writer_thread_role);

 private:
  Database* db_;
  Status begin_status_;
  bool finished_ = false;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_TXN_H_
