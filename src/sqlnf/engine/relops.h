// Relational operators for the mini query engine.
//
// Together with decomposition/decomposition.h (projections, equality
// join) these power the Section 7 performance experiment: scan a
// de-normalized table vs. re-join its normalized components, and scale a
// small table up by crossing it with a numbers column.

#ifndef SQLNF_ENGINE_RELOPS_H_
#define SQLNF_ENGINE_RELOPS_H_

#include <functional>
#include <string>
#include <vector>

#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/table.h"
#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/engine/predicate.h"
#include "sqlnf/util/parallel.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// One conjunct of the engine's WHERE shape: column = value under
/// MARKER equality — a ⊥ value matches exactly the ⊥ cells (the same
/// equality the paper's equality join uses), not SQL's three-valued
/// NULL.
struct ColumnCondition {
  AttributeId column;
  Value value;
};

/// Evaluates the conjunction on a decoded tuple — the row-major
/// reference for the columnar selection below.
bool MatchesConditions(const Tuple& t,
                       const std::vector<ColumnCondition>& conditions);

/// The predicate-tree form of a legacy conjunction: one disjunct of
/// kEq atoms. Conjunction call sites lower through this, so both
/// WHERE shapes run the same compiled scan.
Predicate ToPredicate(const std::vector<ColumnCondition>& conditions);

/// Selection vector (ascending row ids) of the rows satisfying the
/// predicate tree, computed on codes: atoms compile once against the
/// encoding (dictionary probes, order-index binary searches —
/// engine/predicate.h), then one fused pass of branch-free integer
/// compares per row block evaluates the whole DNF. A value absent from
/// a dictionary matches no row (kEq/kIn) or every row (kNe);
/// Predicate::True() selects every row. With `par.threads > 1` the
/// scan runs as a two-phase count/fill emission over row morsels
/// (util/parallel.h ParallelEmit) — the returned vector is identical
/// at every thread count.
std::vector<int> SelectRowsEncoded(const EncodedTable& enc,
                                   const Predicate& pred,
                                   const ParallelOptions& par = {});

/// Legacy conjunction overload; no conditions selects every row.
std::vector<int> SelectRowsEncoded(
    const EncodedTable& enc, const std::vector<ColumnCondition>& conditions,
    const ParallelOptions& par = {});

/// In-place columnar "UPDATE ... SET column = value WHERE pred",
/// re-encoding only the cells whose code actually changes; returns rows
/// changed. Constraint/NFS checks live in the Database layer
/// (engine/catalog.h); this is the bare executor primitive.
int UpdateWhereEncoded(EncodedTable* enc, const Predicate& pred,
                       AttributeId column, const Value& value);
int UpdateWhereEncoded(EncodedTable* enc,
                       const std::vector<ColumnCondition>& conditions,
                       AttributeId column, const Value& value);

/// In-place columnar "DELETE FROM ... WHERE pred"; returns rows
/// removed.
int DeleteWhereEncoded(EncodedTable* enc, const Predicate& pred);
int DeleteWhereEncoded(EncodedTable* enc,
                       const std::vector<ColumnCondition>& conditions);

/// Copies rows satisfying `predicate` into a new table ("SELECT ...
/// WHERE"). The predicate sees each row.
Table SelectWhere(const Table& table,
                  const std::function<bool(const Tuple&)>& predicate);

/// Full scan materializing every row ("SELECT *"); returns the copy.
/// Exists so benchmarks measure a realistic materializing scan.
Table SelectAll(const Table& table);

/// Crosses `table` with an integer column `column` holding 1..n —
/// the paper's trick to scale the 173-row contractor table to a
/// "typical size". The new column is NOT NULL and is prepended.
Result<Table> CrossWithSequence(const Table& table, int n,
                                const std::string& column);

/// Folds the equality join over all tables left-to-right.
Result<Table> JoinAll(const std::vector<Table>& tables,
                      const std::string& name);

/// In-place "UPDATE ... SET column = value WHERE predicate"; returns
/// the number of rows changed. This is the primitive behind the
/// update-anomaly demonstrations: on a de-normalized table, keeping a
/// c-FD satisfied forces touching every row of a similarity group.
Result<int> UpdateWhere(Table* table,
                        const std::function<bool(const Tuple&)>& predicate,
                        AttributeId column, const Value& value);

/// In-place "DELETE FROM ... WHERE predicate"; returns rows removed.
int DeleteWhere(Table* table,
                const std::function<bool(const Tuple&)>& predicate);

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_RELOPS_H_
