// Predicate trees over encoded columns: the engine's WHERE shape.
//
// A Predicate is kept in DISJUNCTIVE NORMAL FORM — an OR over
// conjunctions of atoms — because every SQL WHERE the parser accepts
// (engine/sql.h) flattens into it, and DNF evaluates as two nested
// branch-free loops over match bytes. An atom compares one column
// against literals:
//
//   col =  v | col <> v                 marker equality / its complement
//   col <  v | <= | > | >=             ordered comparison
//   col BETWEEN a AND b                shorthand for >= a AND <= b
//   col IN (v1, ..., vk)               marker equality with any member
//
// ⊥ SEMANTICS (MARKER, not SQL three-valued logic — consistent with the
// paper's Section 2 tuple equality and the engine's existing
// ColumnCondition): `=` is syntactic marker equality, so `col = NULL`
// matches exactly the ⊥ cells and `<>` matches the complement. Ordered
// comparisons EXCLUDE ⊥ by definition: a ⊥ cell satisfies no
// `<`/`<=`/`>`/`>=`/BETWEEN atom, and a ⊥ operand (e.g. `col < NULL`)
// makes the atom false everywhere. Values of different kinds compare by
// Value's total order (Int < Str). IN is k-fold marker equality — ⊥ may
// appear in the list and matches the ⊥ cells.
//
// Two evaluators share these semantics and are differentially tested
// against each other (tests/predicate_fuzz_test.cc):
//
//   MatchesPredicate   the literal row-major oracle on decoded tuples
//   CompiledPredicate  the columnar evaluator: per atom, dictionary
//                      probes / binary searches happen ONCE at compile
//                      time, reducing the atom to an integer test on
//                      raw uint32 codes (equality, code interval, rank
//                      interval, or a membership byte table); rows are
//                      then evaluated in blocks through the explicit
//                      SIMD kernels of core/simd_kernels.h (scalar /
//                      128-bit / AVX2, runtime-dispatched,
//                      bit-identical across levels by contract — the
//                      fuzzer sweeps SQLNF_SIMD_LEVEL to prove it).
//
// Ordered atoms compile through the column's order index
// (core/encoded_table.h): `col < v` becomes a half-open RANK interval
// [0, LowerBoundRank(v)), tested as one gather
// rank[min(code, d)] plus one unsigned compare — the kNoRank sentinel
// at slot d makes ⊥ fall outside every interval without a branch. On a
// compacted (DictionaryOrdered) column the gather disappears and the
// interval tests raw codes directly.

#ifndef SQLNF_ENGINE_PREDICATE_H_
#define SQLNF_ENGINE_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/simd_kernels.h"
#include "sqlnf/core/table.h"
#include "sqlnf/core/value.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// Atom comparison operators. kBetween uses `value`..`upper`
/// inclusive; kIn uses `list`; all others use `value` alone.
enum class CompareOp : uint8_t {
  kEq,       // marker equality (⊥ = ⊥ matches)
  kNe,       // complement of kEq
  kLt,       // ordered, ⊥ excluded
  kLe,
  kGt,
  kGe,
  kBetween,  // value <= col <= upper, ⊥ excluded
  kIn,       // marker equality with any list member
};

/// One comparison of a column against literal operand(s).
struct PredicateAtom {
  AttributeId column = 0;
  CompareOp op = CompareOp::kEq;
  Value value;              // operand; lower bound for kBetween
  Value upper;              // kBetween only
  std::vector<Value> list;  // kIn only; empty list matches nothing
};

/// AND of atoms; empty conjunction is TRUE.
using Conjunction = std::vector<PredicateAtom>;

/// OR of conjunctions (DNF); zero disjuncts is FALSE.
struct Predicate {
  std::vector<Conjunction> disjuncts;

  /// The predicate matching every row: one empty conjunction.
  static Predicate True() { return Predicate{{Conjunction{}}}; }

  /// A single-conjunction predicate (the common parser output).
  static Predicate And(Conjunction atoms) {
    return Predicate{{std::move(atoms)}};
  }

  bool IsTrue() const {
    for (const Conjunction& c : disjuncts) {
      if (c.empty()) return true;
    }
    return false;
  }
};

/// Convenience atom builders (tests and parser).
PredicateAtom Cmp(AttributeId column, CompareOp op, Value value);
PredicateAtom Between(AttributeId column, Value lo, Value hi);
PredicateAtom In(AttributeId column, std::vector<Value> list);

/// Checks every atom references a column < num_columns and carries the
/// operand shape its op requires. The engine validates once at the
/// statement boundary; evaluators may assume validity.
Status ValidatePredicate(const Predicate& pred, int num_columns);

/// The literal row-major oracle: evaluates the tree on a decoded tuple
/// exactly as the semantics above read. Differential reference for
/// CompiledPredicate.
bool MatchesAtom(const Value& cell, const PredicateAtom& atom);
bool MatchesPredicate(const Tuple& t, const Predicate& pred);

/// A predicate compiled against one EncodedTable: every dictionary
/// probe and order-index binary search is done up front, leaving pure
/// integer tests per row. Immutable after Compile, so one instance is
/// safely shared by all scan threads. Holds raw pointers into the
/// table's columns — the table must outlive the compiled form and not
/// be mutated while evaluations run (the engine guarantees this:
/// scans compile against an immutable snapshot or run on the single
/// writer thread).
class CompiledPredicate {
 public:
  /// Rows evaluated per EvalBlock call; scratch buffers of this many
  /// bytes fit on the stack of each scan thread.
  static constexpr int kBlock = 2048;

  CompiledPredicate(const EncodedTable& enc, const Predicate& pred);

  /// Writes match[j] = 1 if row begin+j satisfies the predicate else 0,
  /// for j in [0, n). Requires n <= kBlock and match sized n.
  /// Branch-free over the block; const and thread-safe.
  void EvalBlock(int64_t begin, int64_t n, uint8_t* match) const;

  /// True when no row can ever match (e.g. zero disjuncts, or every
  /// disjunct contains an unsatisfiable atom).
  bool never_matches() const { return disjuncts_.empty(); }

  /// True when every row matches (some disjunct compiled to no tests).
  bool always_matches() const { return always_; }

 private:
  // One atom reduced to an integer test on codes. `kTable` is the
  // general membership form: d+1 live bytes indexed by min(code, d),
  // slot d holding ⊥'s membership (kNullCode gathers onto it), plus
  // simd::kByteTablePad trailing zeros for the AVX2 4-byte gather.
  struct Atom {
    enum class Kind : uint8_t {
      kEqCode,        // codes[i] == want
      kNeCode,        // codes[i] != want
      kCodeInterval,  // (codes[i] - lo) < span   (ordered dictionary)
      kRankInterval,  // (rank[min(codes[i],d)] - lo) < span
      kTable,         // table[min(codes[i],d)]
    };
    Kind kind = Kind::kEqCode;
    const uint32_t* codes = nullptr;
    const uint32_t* rank = nullptr;  // kRankInterval
    uint32_t d = 0;                  // gather clamp: min(code, d)
    uint32_t want = 0;               // kEqCode / kNeCode
    uint32_t lo = 0;                 // intervals
    uint32_t span = 0;
    std::vector<uint8_t> table;      // kTable
  };

  // One atom's test over a block, routed to the simd kernel matching
  // its kind at dispatch level `level`: the first atom of a
  // conjunction assigns (Store::kAssign), later atoms AND — so no
  // fill-with-ones pass precedes the scan loops.
  static void ApplyAtom(const Atom& atom, simd::Level level, int64_t begin,
                        int len, simd::Store store, uint8_t* out);

  std::vector<std::vector<Atom>> disjuncts_;
  bool always_ = false;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_PREDICATE_H_
