#include "sqlnf/engine/relops.h"

#include <algorithm>
#include <optional>

#include "sqlnf/core/simd_kernels.h"

namespace sqlnf {

bool MatchesConditions(const Tuple& t,
                       const std::vector<ColumnCondition>& conditions) {
  for (const ColumnCondition& c : conditions) {
    if (!(t[c.column] == c.value)) return false;
  }
  return true;
}

Predicate ToPredicate(const std::vector<ColumnCondition>& conditions) {
  Conjunction conj;
  conj.reserve(conditions.size());
  for (const ColumnCondition& c : conditions) {
    conj.push_back(Cmp(c.column, CompareOp::kEq, c.value));
  }
  return Predicate::And(std::move(conj));
}

std::vector<int> SelectRowsEncoded(const EncodedTable& enc,
                                   const Predicate& pred,
                                   const ParallelOptions& par) {
  std::vector<int> sel;
  // All probing and order-index work happens once, here; the scan
  // below touches only flat uint32 code arrays. The compiled form is
  // immutable and shared read-only by all scan threads.
  const CompiledPredicate compiled(enc, pred);
  if (compiled.never_matches()) return sel;
  if (compiled.always_matches()) {
    sel.resize(enc.num_rows());
    for (int i = 0; i < enc.num_rows(); ++i) sel[i] = i;
    return sel;
  }

  std::optional<ThreadPool> pool_storage;
  if (par.threads > 1 && enc.num_rows() > 1) {
    pool_storage.emplace(par.threads);
  }
  constexpr int kBlock = CompiledPredicate::kBlock;
  // Both phases run the same EvalBlock kernels; the count phase sums
  // match bytes (simd::CountBytes) and the fill phase compress-stores
  // the selected row ids (simd::CompressStore) into this chunk's
  // exactly-sized window of `sel` — each chunk writes a disjoint
  // range, so the emission stays bit-identical at any thread count.
  const simd::Level level = simd::ActiveLevel();
  ParallelEmit(
      pool_storage ? &*pool_storage : nullptr, 0, enc.num_rows(),
      [&](int64_t b, int64_t e) {
        uint8_t match[kBlock];
        int64_t n = 0;
        for (int64_t at = b; at < e; at += kBlock) {
          const int64_t len = std::min<int64_t>(kBlock, e - at);
          compiled.EvalBlock(at, len, match);
          n += simd::CountBytes(level, match, static_cast<int>(len));
        }
        return n;
      },
      [&](int64_t total) { sel.resize(total); },
      [&](int64_t b, int64_t e, int64_t offset) {
        uint8_t match[kBlock];
        for (int64_t at = b; at < e; at += kBlock) {
          const int64_t len = std::min<int64_t>(kBlock, e - at);
          compiled.EvalBlock(at, len, match);
          offset += simd::CompressStore(level, match, static_cast<int>(len),
                                        static_cast<int>(at),
                                        sel.data() + offset);
        }
      });
  return sel;
}

std::vector<int> SelectRowsEncoded(
    const EncodedTable& enc,
    const std::vector<ColumnCondition>& conditions,
    const ParallelOptions& par) {
  return SelectRowsEncoded(enc, ToPredicate(conditions), par);
}

int UpdateWhereEncoded(EncodedTable* enc, const Predicate& pred,
                       AttributeId column, const Value& value) {
  const uint32_t want = enc->LookupCode(column, value);
  int changed = 0;
  for (int i : SelectRowsEncoded(*enc, pred)) {
    if (enc->code(column, i) == want) continue;
    enc->UpdateCell(i, column, value);
    ++changed;
  }
  return changed;
}

int UpdateWhereEncoded(EncodedTable* enc,
                       const std::vector<ColumnCondition>& conditions,
                       AttributeId column, const Value& value) {
  return UpdateWhereEncoded(enc, ToPredicate(conditions), column, value);
}

int DeleteWhereEncoded(EncodedTable* enc, const Predicate& pred) {
  std::vector<int> sel = SelectRowsEncoded(*enc, pred);
  enc->EraseRows(sel);
  return static_cast<int>(sel.size());
}

int DeleteWhereEncoded(EncodedTable* enc,
                       const std::vector<ColumnCondition>& conditions) {
  return DeleteWhereEncoded(enc, ToPredicate(conditions));
}

Table SelectWhere(const Table& table,
                  const std::function<bool(const Tuple&)>& predicate) {
  Table out(table.schema());
  for (const Tuple& t : table.rows()) {
    if (predicate(t)) {
      Status st = out.AddRow(t);
      (void)st;  // same schema, arity always matches
    }
  }
  return out;
}

Table SelectAll(const Table& table) {
  return SelectWhere(table, [](const Tuple&) { return true; });
}

Result<Table> CrossWithSequence(const Table& table, int n,
                                const std::string& column) {
  if (n <= 0) return Status::Invalid("sequence length must be positive");
  std::vector<std::string> names = {column};
  std::vector<std::string> not_null = {column};
  for (int i = 0; i < table.num_columns(); ++i) {
    names.push_back(table.schema().attribute_name(i));
    if (table.schema().nfs().Contains(i)) {
      not_null.push_back(table.schema().attribute_name(i));
    }
  }
  SQLNF_ASSIGN_OR_RETURN(
      TableSchema schema,
      TableSchema::Make(table.schema().name() + "_x" + std::to_string(n),
                        names, not_null));
  Table out(std::move(schema));
  for (int k = 1; k <= n; ++k) {
    for (const Tuple& t : table.rows()) {
      std::vector<Value> row;
      row.reserve(t.size() + 1);
      row.push_back(Value::Int(k));
      for (const Value& v : t.values()) row.push_back(v);
      SQLNF_RETURN_NOT_OK(out.AddRow(Tuple(std::move(row))));
    }
  }
  return out;
}

Result<Table> JoinAll(const std::vector<Table>& tables,
                      const std::string& name) {
  if (tables.empty()) return Status::Invalid("nothing to join");
  if (tables.size() == 1) return tables[0];
  // Fold without first deep-copying tables[0] into the accumulator; each
  // step move-assigns the freshly joined result.
  SQLNF_ASSIGN_OR_RETURN(Table joined,
                         EqualityJoin(tables[0], tables[1], name));
  for (size_t i = 2; i < tables.size(); ++i) {
    SQLNF_ASSIGN_OR_RETURN(joined, EqualityJoin(joined, tables[i], name));
  }
  return joined;
}

Result<int> UpdateWhere(Table* table,
                        const std::function<bool(const Tuple&)>& predicate,
                        AttributeId column, const Value& value) {
  if (column < 0 || column >= table->num_columns()) {
    return Status::Invalid("update column out of range");
  }
  if (value.is_null() && table->schema().nfs().Contains(column)) {
    return Status::FailedPrecondition(
        "cannot set NOT NULL column '" +
        table->schema().attribute_name(column) + "' to NULL");
  }
  int changed = 0;
  for (int i = 0; i < table->num_rows(); ++i) {
    if (!predicate(table->row(i))) continue;
    if (!(table->row(i)[column] == value)) {
      table->SetCell(i, column, value);
      ++changed;
    }
  }
  return changed;
}

int DeleteWhere(Table* table,
                const std::function<bool(const Tuple&)>& predicate) {
  Table kept(table->schema());
  int removed = 0;
  for (const Tuple& t : table->rows()) {
    if (predicate(t)) {
      ++removed;
    } else {
      Status st = kept.AddRow(t);
      (void)st;
    }
  }
  *table = std::move(kept);
  return removed;
}

}  // namespace sqlnf
