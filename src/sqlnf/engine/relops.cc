#include "sqlnf/engine/relops.h"

namespace sqlnf {

bool MatchesConditions(const Tuple& t,
                       const std::vector<ColumnCondition>& conditions) {
  for (const ColumnCondition& c : conditions) {
    if (!(t[c.column] == c.value)) return false;
  }
  return true;
}

std::vector<int> SelectRowsEncoded(
    const EncodedTable& enc,
    const std::vector<ColumnCondition>& conditions) {
  std::vector<int> sel;
  if (conditions.empty()) {
    sel.resize(enc.num_rows());
    for (int i = 0; i < enc.num_rows(); ++i) sel[i] = i;
    return sel;
  }
  // First condition scans its column; the rest refine the selection.
  {
    const ColumnCondition& c = conditions[0];
    const uint32_t want = enc.LookupCode(c.column, c.value);
    const std::vector<uint32_t>& codes = enc.column(c.column);
    for (int i = 0; i < enc.num_rows(); ++i) {
      if (codes[i] == want) sel.push_back(i);
    }
  }
  for (size_t k = 1; k < conditions.size() && !sel.empty(); ++k) {
    const ColumnCondition& c = conditions[k];
    const uint32_t want = enc.LookupCode(c.column, c.value);
    const std::vector<uint32_t>& codes = enc.column(c.column);
    size_t write = 0;
    for (int i : sel) {
      if (codes[i] == want) sel[write++] = i;
    }
    sel.resize(write);
  }
  return sel;
}

int UpdateWhereEncoded(EncodedTable* enc,
                       const std::vector<ColumnCondition>& conditions,
                       AttributeId column, const Value& value) {
  const uint32_t want = enc->LookupCode(column, value);
  int changed = 0;
  for (int i : SelectRowsEncoded(*enc, conditions)) {
    if (enc->code(column, i) == want) continue;
    enc->UpdateCell(i, column, value);
    ++changed;
  }
  return changed;
}

int DeleteWhereEncoded(EncodedTable* enc,
                       const std::vector<ColumnCondition>& conditions) {
  std::vector<int> sel = SelectRowsEncoded(*enc, conditions);
  enc->EraseRows(sel);
  return static_cast<int>(sel.size());
}

Table SelectWhere(const Table& table,
                  const std::function<bool(const Tuple&)>& predicate) {
  Table out(table.schema());
  for (const Tuple& t : table.rows()) {
    if (predicate(t)) {
      Status st = out.AddRow(t);
      (void)st;  // same schema, arity always matches
    }
  }
  return out;
}

Table SelectAll(const Table& table) {
  return SelectWhere(table, [](const Tuple&) { return true; });
}

Result<Table> CrossWithSequence(const Table& table, int n,
                                const std::string& column) {
  if (n <= 0) return Status::Invalid("sequence length must be positive");
  std::vector<std::string> names = {column};
  std::vector<std::string> not_null = {column};
  for (int i = 0; i < table.num_columns(); ++i) {
    names.push_back(table.schema().attribute_name(i));
    if (table.schema().nfs().Contains(i)) {
      not_null.push_back(table.schema().attribute_name(i));
    }
  }
  SQLNF_ASSIGN_OR_RETURN(
      TableSchema schema,
      TableSchema::Make(table.schema().name() + "_x" + std::to_string(n),
                        names, not_null));
  Table out(std::move(schema));
  for (int k = 1; k <= n; ++k) {
    for (const Tuple& t : table.rows()) {
      std::vector<Value> row;
      row.reserve(t.size() + 1);
      row.push_back(Value::Int(k));
      for (const Value& v : t.values()) row.push_back(v);
      SQLNF_RETURN_NOT_OK(out.AddRow(Tuple(std::move(row))));
    }
  }
  return out;
}

Result<Table> JoinAll(const std::vector<Table>& tables,
                      const std::string& name) {
  if (tables.empty()) return Status::Invalid("nothing to join");
  if (tables.size() == 1) return tables[0];
  // Fold without first deep-copying tables[0] into the accumulator; each
  // step move-assigns the freshly joined result.
  SQLNF_ASSIGN_OR_RETURN(Table joined,
                         EqualityJoin(tables[0], tables[1], name));
  for (size_t i = 2; i < tables.size(); ++i) {
    SQLNF_ASSIGN_OR_RETURN(joined, EqualityJoin(joined, tables[i], name));
  }
  return joined;
}

Result<int> UpdateWhere(Table* table,
                        const std::function<bool(const Tuple&)>& predicate,
                        AttributeId column, const Value& value) {
  if (column < 0 || column >= table->num_columns()) {
    return Status::Invalid("update column out of range");
  }
  if (value.is_null() && table->schema().nfs().Contains(column)) {
    return Status::FailedPrecondition(
        "cannot set NOT NULL column '" +
        table->schema().attribute_name(column) + "' to NULL");
  }
  int changed = 0;
  for (int i = 0; i < table->num_rows(); ++i) {
    if (!predicate(table->row(i))) continue;
    if (!(table->row(i)[column] == value)) {
      table->SetCell(i, column, value);
      ++changed;
    }
  }
  return changed;
}

int DeleteWhere(Table* table,
                const std::function<bool(const Tuple&)>& predicate) {
  Table kept(table->schema());
  int removed = 0;
  for (const Tuple& t : table->rows()) {
    if (predicate(t)) {
      ++removed;
    } else {
      Status st = kept.AddRow(t);
      (void)st;
    }
  }
  *table = std::move(kept);
  return removed;
}

}  // namespace sqlnf
