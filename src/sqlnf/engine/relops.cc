#include "sqlnf/engine/relops.h"

#include <optional>

namespace sqlnf {

bool MatchesConditions(const Tuple& t,
                       const std::vector<ColumnCondition>& conditions) {
  for (const ColumnCondition& c : conditions) {
    if (!(t[c.column] == c.value)) return false;
  }
  return true;
}

std::vector<int> SelectRowsEncoded(
    const EncodedTable& enc,
    const std::vector<ColumnCondition>& conditions,
    const ParallelOptions& par) {
  std::vector<int> sel;
  if (conditions.empty()) {
    sel.resize(enc.num_rows());
    for (int i = 0; i < enc.num_rows(); ++i) sel[i] = i;
    return sel;
  }
  // One dictionary probe per condition up front; the scan itself is a
  // fused conjunction of integer compares per row — no per-condition
  // intermediate selection vectors.
  std::vector<const uint32_t*> codes(conditions.size());
  std::vector<uint32_t> want(conditions.size());
  for (size_t k = 0; k < conditions.size(); ++k) {
    codes[k] = enc.column(conditions[k].column).data();
    want[k] = enc.LookupCode(conditions[k].column, conditions[k].value);
  }
  auto matches = [&](int64_t i) {
    for (size_t k = 0; k < conditions.size(); ++k) {
      if (codes[k][i] != want[k]) return false;
    }
    return true;
  };

  std::optional<ThreadPool> pool_storage;
  if (par.threads > 1 && enc.num_rows() > 1) {
    pool_storage.emplace(par.threads);
  }
  ParallelEmit(
      pool_storage ? &*pool_storage : nullptr, 0, enc.num_rows(),
      [&](int64_t b, int64_t e) {
        int64_t n = 0;
        for (int64_t i = b; i < e; ++i) {
          if (matches(i)) ++n;
        }
        return n;
      },
      [&](int64_t total) { sel.resize(total); },
      [&](int64_t b, int64_t e, int64_t offset) {
        for (int64_t i = b; i < e; ++i) {
          if (matches(i)) sel[offset++] = static_cast<int>(i);
        }
      });
  return sel;
}

int UpdateWhereEncoded(EncodedTable* enc,
                       const std::vector<ColumnCondition>& conditions,
                       AttributeId column, const Value& value) {
  const uint32_t want = enc->LookupCode(column, value);
  int changed = 0;
  for (int i : SelectRowsEncoded(*enc, conditions)) {
    if (enc->code(column, i) == want) continue;
    enc->UpdateCell(i, column, value);
    ++changed;
  }
  return changed;
}

int DeleteWhereEncoded(EncodedTable* enc,
                       const std::vector<ColumnCondition>& conditions) {
  std::vector<int> sel = SelectRowsEncoded(*enc, conditions);
  enc->EraseRows(sel);
  return static_cast<int>(sel.size());
}

Table SelectWhere(const Table& table,
                  const std::function<bool(const Tuple&)>& predicate) {
  Table out(table.schema());
  for (const Tuple& t : table.rows()) {
    if (predicate(t)) {
      Status st = out.AddRow(t);
      (void)st;  // same schema, arity always matches
    }
  }
  return out;
}

Table SelectAll(const Table& table) {
  return SelectWhere(table, [](const Tuple&) { return true; });
}

Result<Table> CrossWithSequence(const Table& table, int n,
                                const std::string& column) {
  if (n <= 0) return Status::Invalid("sequence length must be positive");
  std::vector<std::string> names = {column};
  std::vector<std::string> not_null = {column};
  for (int i = 0; i < table.num_columns(); ++i) {
    names.push_back(table.schema().attribute_name(i));
    if (table.schema().nfs().Contains(i)) {
      not_null.push_back(table.schema().attribute_name(i));
    }
  }
  SQLNF_ASSIGN_OR_RETURN(
      TableSchema schema,
      TableSchema::Make(table.schema().name() + "_x" + std::to_string(n),
                        names, not_null));
  Table out(std::move(schema));
  for (int k = 1; k <= n; ++k) {
    for (const Tuple& t : table.rows()) {
      std::vector<Value> row;
      row.reserve(t.size() + 1);
      row.push_back(Value::Int(k));
      for (const Value& v : t.values()) row.push_back(v);
      SQLNF_RETURN_NOT_OK(out.AddRow(Tuple(std::move(row))));
    }
  }
  return out;
}

Result<Table> JoinAll(const std::vector<Table>& tables,
                      const std::string& name) {
  if (tables.empty()) return Status::Invalid("nothing to join");
  if (tables.size() == 1) return tables[0];
  // Fold without first deep-copying tables[0] into the accumulator; each
  // step move-assigns the freshly joined result.
  SQLNF_ASSIGN_OR_RETURN(Table joined,
                         EqualityJoin(tables[0], tables[1], name));
  for (size_t i = 2; i < tables.size(); ++i) {
    SQLNF_ASSIGN_OR_RETURN(joined, EqualityJoin(joined, tables[i], name));
  }
  return joined;
}

Result<int> UpdateWhere(Table* table,
                        const std::function<bool(const Tuple&)>& predicate,
                        AttributeId column, const Value& value) {
  if (column < 0 || column >= table->num_columns()) {
    return Status::Invalid("update column out of range");
  }
  if (value.is_null() && table->schema().nfs().Contains(column)) {
    return Status::FailedPrecondition(
        "cannot set NOT NULL column '" +
        table->schema().attribute_name(column) + "' to NULL");
  }
  int changed = 0;
  for (int i = 0; i < table->num_rows(); ++i) {
    if (!predicate(table->row(i))) continue;
    if (!(table->row(i)[column] == value)) {
      table->SetCell(i, column, value);
      ++changed;
    }
  }
  return changed;
}

int DeleteWhere(Table* table,
                const std::function<bool(const Tuple&)>& predicate) {
  Table kept(table->schema());
  int removed = 0;
  for (const Tuple& t : table->rows()) {
    if (predicate(t)) {
      ++removed;
    } else {
      Status st = kept.AddRow(t);
      (void)st;
    }
  }
  *table = std::move(kept);
  return removed;
}

}  // namespace sqlnf
