// The WriterThread phantom capability.
//
// The engine's concurrency contract (engine/catalog.h) allows any
// number of reader threads on the snapshot path (GetSnapshot /
// SelectFromSnapshot) concurrently with exactly ONE writer thread
// driving the mutating entry points. No mutex expresses "this method
// belongs to the writer thread" — Database::mu_ serializes individual
// calls, but two threads interleaving Insert statements would still be
// a contract breach (each would also read live state lock-free via
// Find/Select between its statements).
//
// writer_thread_role encodes that discipline as a Clang capability:
// every writer-thread-only entry point — Database mutators and live
// accessors, enforcer index mutation, transactions, SQL execution — is
// annotated SQLNF_REQUIRES(writer_thread_role), making it a
// compile-time error (-Wthread-safety) to reach one from a context
// that never established a WriterScope. The snapshot read path needs
// no role, so reader code simply cannot call a mutator.
//
// WriterScope is a zero-cost assertion, not a lock: entering one says
// "this scope IS the single writer thread". Establish it once at the
// top of the thread that owns writes (a test body, a benchmark's
// writer loop, the CLI main) — never inside a lambda handed to other
// threads unless that lambda is the writer.

#ifndef SQLNF_ENGINE_WRITER_ROLE_H_
#define SQLNF_ENGINE_WRITER_ROLE_H_

#include "sqlnf/util/mutex.h"
#include "sqlnf/util/thread_annotations.h"

namespace sqlnf {

/// The engine-wide WriterThread capability (phantom; no runtime state).
inline ThreadRole writer_thread_role;

/// Scoped claim of the writer role for the current thread.
class SQLNF_SCOPED_CAPABILITY WriterScope {
 public:
  WriterScope() SQLNF_ACQUIRE(writer_thread_role) {}
  ~WriterScope() SQLNF_RELEASE() {}

  WriterScope(const WriterScope&) = delete;
  WriterScope& operator=(const WriterScope&) = delete;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_WRITER_ROLE_H_
