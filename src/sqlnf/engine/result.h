// The result layer: one structured outcome type for every execution
// path (CLI, session, HTTP service), with text / CSV / JSON renderers
// over it.
//
// Before this layer, each front end rendered ad hoc: the CLI printf'd
// tables, errors were bare message strings, and a network caller had
// nothing machine-readable to parse. Now every executor produces a
// ResultSet — per-statement columnar payloads plus, on failure, a
// structured ErrorDetail (status code, statement index, byte offset,
// line:column) — and the front ends differ only in which renderer they
// apply. RenderStatementText reproduces the pre-refactor CLI output
// byte for byte (pinned by the golden-output ctest).

#ifndef SQLNF_ENGINE_RESULT_H_
#define SQLNF_ENGINE_RESULT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sqlnf/core/table.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// Outcome of one statement: the columnar payload (SELECT / SHOW /
/// DESCRIBE), the DML row count, and a human-readable summary.
struct QueryResult {
  std::optional<Table> rows;  // SELECT / SHOW / DESCRIBE payload
  int affected = 0;           // DML row count
  std::string message;        // human-readable summary

  std::string ToString() const;
};

/// Structured error location and classification. `byte_offset` indexes
/// into the submitted script text (-1 when the failure has no textual
/// anchor, e.g. a constraint violation); `line`/`column` are 1-based
/// and derived from the offset.
struct ErrorDetail {
  StatusCode code = StatusCode::kOk;
  std::string message;
  int statement_index = -1;
  int byte_offset = -1;
  int line = 0;
  int column = 0;

  /// "ParseError: expected FROM (statement 2, line 3:7)" — the CLI
  /// diagnostic form; degrades gracefully when fields are unknown.
  std::string ToString() const;
};

/// Outcome of executing a script: the per-statement results up to the
/// first error, plus the error itself (if any). All execution paths —
/// Session::Execute, the HTTP endpoints, the CLI commands — return
/// this shape; renderers below turn it into text, CSV, or JSON.
struct ResultSet {
  Status status;                        // OK iff the whole script ran
  ErrorDetail error;                    // populated when !status.ok()
  std::vector<QueryResult> statements;  // results before the error

  bool ok() const { return status.ok(); }

  static ResultSet Of(std::vector<QueryResult> results) {
    ResultSet rs;
    rs.statements = std::move(results);
    return rs;
  }
  static ResultSet Fail(Status status, ErrorDetail detail) {
    ResultSet rs;
    rs.status = std::move(status);
    rs.error = std::move(detail);
    return rs;
  }
};

/// Builds an ErrorDetail from a Status plus location info, deriving
/// line/column from `script` when `byte_offset` is in range.
ErrorDetail MakeErrorDetail(const Status& status, std::string_view script,
                            int statement_index, int byte_offset);

/// The pre-refactor CLI rendering of one statement: message, then the
/// ASCII table when rows are present. Byte-identical to the historical
/// QueryResult::ToString output (golden-pinned).
std::string RenderStatementText(const QueryResult& result);

/// CSV rendering: each statement's rows as an RFC-4180 block (header +
/// rows), statements separated by a blank line; row-less statements
/// contribute their message as a comment-free single line.
std::string RenderCsv(const ResultSet& rs);

/// JSON envelope used by the HTTP service:
///   {"ok":true,"statements":[{"message":...,"affected":N,
///    "rows":{"columns":[...],"data":[[...],...]}}]}
/// or on failure
///   {"ok":false,"error":{"code":...,"message":...,"statement_index":N,
///    "byte_offset":N,"line":N,"column":N},"statements":[...]}
/// Cells map ⊥ → null, ints → numbers, strings → strings.
std::string RenderJson(const ResultSet& rs);

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_RESULT_H_
