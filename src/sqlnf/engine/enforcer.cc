#include "sqlnf/engine/enforcer.h"

#include <algorithm>

#include "sqlnf/core/similarity.h"
#include "sqlnf/util/fnv.h"

namespace sqlnf {

IncrementalEnforcer::IncrementalEnforcer(const TableSchema& schema,
                                         const ConstraintSet& sigma)
    : schema_(schema) {
  for (const auto& fd : sigma.fds()) {
    ConstraintIndex index;
    index.constraint = fd;
    index.similarity_attrs = fd.lhs;
    index.rhs = fd.rhs;
    index.strong = fd.is_possible();
    index.stable = fd.lhs.Intersect(schema.nfs());
    indexes_.push_back(std::move(index));
  }
  for (const auto& key : sigma.keys()) {
    ConstraintIndex index;
    index.constraint = key;
    index.similarity_attrs = key.attrs;
    index.strong = key.is_possible();
    index.stable = key.attrs.Intersect(schema.nfs());
    indexes_.push_back(std::move(index));
  }
}

size_t IncrementalEnforcer::HashOn(const Tuple& row,
                                   const AttributeSet& attrs) {
  uint64_t h = kFnv64OffsetBasis;
  for (AttributeId a : attrs) h = FnvMix(h, row[a].Hash());
  return h;
}

std::optional<Violation> IncrementalEnforcer::Check(
    const Table& table, const Tuple& row) const {
  for (AttributeId a : schema_.nfs()) {
    if (row[a].is_null()) {
      Violation v;
      v.row1 = v.row2 = table.num_rows();
      v.attribute = a;
      return v;
    }
  }
  for (const ConstraintIndex& index : indexes_) {
    auto bucket = index.buckets.find(HashOn(row, index.stable));
    if (bucket == index.buckets.end()) continue;
    for (int other_id : bucket->second) {
      const Tuple& other = table.row(other_id);
      // Hash collisions: confirm exact match on the stable columns.
      if (!row.EqualOn(other, index.stable)) continue;
      const AttributeSet rest =
          index.similarity_attrs.Difference(index.stable);
      const bool similar = index.strong
                               ? StronglySimilar(row, other, rest)
                               : WeaklySimilar(row, other, rest);
      if (!similar) continue;
      if (index.rhs.empty() || !row.EqualOn(other, index.rhs)) {
        return Violation{other_id, table.num_rows(), index.constraint,
                         std::nullopt};
      }
    }
  }
  return std::nullopt;
}

void IncrementalEnforcer::Add(const Tuple& row, int row_id) {
  for (ConstraintIndex& index : indexes_) {
    // Rows not total on the similarity attrs can still conflict under
    // weak similarity, but never under strong similarity — skip them
    // for possible constraints to keep buckets tight.
    if (index.strong && !row.IsTotal(index.similarity_attrs)) continue;
    index.buckets[HashOn(row, index.stable)].push_back(row_id);
  }
}

void IncrementalEnforcer::Remove(const Tuple& row, int row_id) {
  for (ConstraintIndex& index : indexes_) {
    // Mirror Add(): rows skipped there were never indexed.
    if (index.strong && !row.IsTotal(index.similarity_attrs)) continue;
    auto bucket = index.buckets.find(HashOn(row, index.stable));
    if (bucket == index.buckets.end()) continue;
    auto& ids = bucket->second;
    auto it = std::find(ids.begin(), ids.end(), row_id);
    if (it == ids.end()) continue;
    ids.erase(it);
    if (ids.empty()) index.buckets.erase(bucket);
  }
}

void IncrementalEnforcer::CompactAfterErase(const std::vector<int>& erased) {
  if (erased.empty()) return;
  for (ConstraintIndex& index : indexes_) {
    for (auto& [hash, ids] : index.buckets) {
      for (int& id : ids) {
        id -= static_cast<int>(
            std::upper_bound(erased.begin(), erased.end(), id) -
            erased.begin());
      }
    }
  }
}

void IncrementalEnforcer::Rebuild(const Table& table) {
  ++rebuilds_;
  for (ConstraintIndex& index : indexes_) index.buckets.clear();
  for (int i = 0; i < table.num_rows(); ++i) {
    Add(table.row(i), i);
  }
}

}  // namespace sqlnf
