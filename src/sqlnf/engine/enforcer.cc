#include "sqlnf/engine/enforcer.h"

#include "sqlnf/core/similarity.h"

namespace sqlnf {

IncrementalEnforcer::IncrementalEnforcer(const TableSchema& schema,
                                         const ConstraintSet& sigma)
    : schema_(schema) {
  for (const auto& fd : sigma.fds()) {
    ConstraintIndex index;
    index.constraint = fd;
    index.similarity_attrs = fd.lhs;
    index.rhs = fd.rhs;
    index.strong = fd.is_possible();
    index.stable = fd.lhs.Intersect(schema.nfs());
    indexes_.push_back(std::move(index));
  }
  for (const auto& key : sigma.keys()) {
    ConstraintIndex index;
    index.constraint = key;
    index.similarity_attrs = key.attrs;
    index.strong = key.is_possible();
    index.stable = key.attrs.Intersect(schema.nfs());
    indexes_.push_back(std::move(index));
  }
}

size_t IncrementalEnforcer::HashOn(const Tuple& row,
                                   const AttributeSet& attrs) {
  size_t h = 0x51ed270b;
  for (AttributeId a : attrs) h = h * 1099511628211ull + row[a].Hash();
  return h;
}

std::optional<Violation> IncrementalEnforcer::Check(
    const Table& table, const Tuple& row) const {
  for (AttributeId a : schema_.nfs()) {
    if (row[a].is_null()) {
      Violation v;
      v.row1 = v.row2 = table.num_rows();
      v.attribute = a;
      return v;
    }
  }
  for (const ConstraintIndex& index : indexes_) {
    auto bucket = index.buckets.find(HashOn(row, index.stable));
    if (bucket == index.buckets.end()) continue;
    for (int other_id : bucket->second) {
      const Tuple& other = table.row(other_id);
      // Hash collisions: confirm exact match on the stable columns.
      if (!row.EqualOn(other, index.stable)) continue;
      const AttributeSet rest =
          index.similarity_attrs.Difference(index.stable);
      const bool similar = index.strong
                               ? StronglySimilar(row, other, rest)
                               : WeaklySimilar(row, other, rest);
      if (!similar) continue;
      if (index.rhs.empty() || !row.EqualOn(other, index.rhs)) {
        return Violation{other_id, table.num_rows(), index.constraint,
                         std::nullopt};
      }
    }
  }
  return std::nullopt;
}

void IncrementalEnforcer::Add(const Tuple& row, int row_id) {
  for (ConstraintIndex& index : indexes_) {
    // Rows not total on the similarity attrs can still conflict under
    // weak similarity, but never under strong similarity — skip them
    // for possible constraints to keep buckets tight.
    if (index.strong && !row.IsTotal(index.similarity_attrs)) continue;
    index.buckets[HashOn(row, index.stable)].push_back(row_id);
  }
}

void IncrementalEnforcer::Rebuild(const Table& table) {
  for (ConstraintIndex& index : indexes_) index.buckets.clear();
  for (int i = 0; i < table.num_rows(); ++i) {
    Add(table.row(i), i);
  }
}

}  // namespace sqlnf
