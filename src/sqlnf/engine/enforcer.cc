#include "sqlnf/engine/enforcer.h"

#include <algorithm>
#include <cassert>

#include "sqlnf/util/fnv.h"

namespace sqlnf {

IncrementalEnforcer::IncrementalEnforcer(const TableSchema& schema,
                                         const ConstraintSet& sigma)
    : schema_(schema), encoded_(schema.num_attributes()) {
  // Stable (hash) attributes per constraint: a weak (certain)
  // constraint can relate rows through ⊥, so only schema-level NOT NULL
  // attributes pin a bucket; strong similarity requires exact total
  // equality on every attribute, so strong constraints hash the full
  // similarity set and skip non-total rows entirely.
  for (const auto& fd : sigma.fds()) {
    ConstraintIndex index;
    index.constraint = fd;
    index.similarity_attrs = fd.lhs;
    index.rhs = fd.rhs;
    index.strong = fd.is_possible();
    index.stable =
        index.strong ? fd.lhs : fd.lhs.Intersect(schema.nfs());
    indexes_.push_back(std::move(index));
  }
  for (const auto& key : sigma.keys()) {
    ConstraintIndex index;
    index.constraint = key;
    index.similarity_attrs = key.attrs;
    index.strong = key.is_possible();
    index.stable =
        index.strong ? key.attrs : key.attrs.Intersect(schema.nfs());
    indexes_.push_back(std::move(index));
  }
}

uint64_t IncrementalEnforcer::HashCodes(const std::vector<uint32_t>& codes,
                                        const AttributeSet& attrs) {
  uint64_t h = kFnv64OffsetBasis;
  for (AttributeId a : attrs) h = FnvMix(h, codes[a]);
  return h;
}

uint64_t IncrementalEnforcer::HashStoredRow(int row_id,
                                            const AttributeSet& attrs) const {
  uint64_t h = kFnv64OffsetBasis;
  for (AttributeId a : attrs) h = FnvMix(h, encoded_.code(a, row_id));
  return h;
}

bool IncrementalEnforcer::RowTotal(int row_id,
                                   const AttributeSet& attrs) const {
  for (AttributeId a : attrs) {
    if (encoded_.code(a, row_id) == EncodedTable::kNullCode) return false;
  }
  return true;
}

bool IncrementalEnforcer::ShouldIndex(const ConstraintIndex& index,
                                      int row_id) const {
  // Rows not total on the similarity attrs can still conflict under
  // weak similarity, but never under strong similarity — skip them
  // for possible constraints to keep buckets tight.
  return !index.strong || RowTotal(row_id, index.similarity_attrs);
}

std::optional<Violation> IncrementalEnforcer::Check(const Tuple& row) const {
  const int candidate_id = encoded_.num_rows();
  for (AttributeId a : schema_.nfs()) {
    if (row[a].is_null()) {
      Violation v;
      v.row1 = v.row2 = candidate_id;
      v.attribute = a;
      return v;
    }
  }
  // Probe the dictionaries once; a value the encoding has never seen
  // maps to kMissingCode, which equals no stored code — such a cell can
  // only conflict through ⊥, exactly like the value semantics.
  std::vector<uint32_t> cand(encoded_.num_columns());
  for (AttributeId a = 0; a < encoded_.num_columns(); ++a) {
    cand[a] = encoded_.LookupCode(a, row[a]);
  }
  for (const ConstraintIndex& index : indexes_) {
    if (index.strong) {
      // Strong similarity needs the candidate total on the similarity
      // attrs; a ⊥ (or never-seen) cell there matches no stored row.
      bool can_conflict = true;
      for (AttributeId a : index.similarity_attrs) {
        if (cand[a] == EncodedTable::kNullCode ||
            cand[a] == EncodedTable::kMissingCode) {
          can_conflict = false;
          break;
        }
      }
      if (!can_conflict) continue;
    }
    auto bucket = index.buckets.find(HashCodes(cand, index.stable));
    if (bucket == index.buckets.end()) continue;
    const AttributeSet rest =
        index.similarity_attrs.Difference(index.stable);
    for (int other_id : bucket->second) {
      // Hash collisions: confirm exact code match on the stable columns.
      bool stable_equal = true;
      for (AttributeId a : index.stable) {
        if (cand[a] != encoded_.code(a, other_id)) {
          stable_equal = false;
          break;
        }
      }
      if (!stable_equal) continue;
      bool similar = true;
      for (AttributeId a : rest) {
        const uint32_t other = encoded_.code(a, other_id);
        if (index.strong ? !CodesStronglySimilar(cand[a], other)
                         : !CodesWeaklySimilar(cand[a], other)) {
          similar = false;
          break;
        }
      }
      if (!similar) continue;
      bool rhs_equal = true;
      for (AttributeId a : index.rhs) {
        if (cand[a] != encoded_.code(a, other_id)) {
          rhs_equal = false;
          break;
        }
      }
      if (index.rhs.empty() || !rhs_equal) {
        return Violation{other_id, candidate_id, index.constraint,
                         std::nullopt};
      }
    }
  }
  return std::nullopt;
}

void IncrementalEnforcer::IndexRow(int row_id) {
  for (ConstraintIndex& index : indexes_) {
    if (!ShouldIndex(index, row_id)) continue;
    index.buckets[HashStoredRow(row_id, index.stable)].push_back(row_id);
  }
}

void IncrementalEnforcer::Add(const Tuple& row, int row_id) {
  if (row_id == encoded_.num_rows()) {
    encoded_.AppendRow(row);
  } else {
    // Re-add in place (the UPDATE write path re-encodes the slot).
    assert(row_id >= 0 && row_id < encoded_.num_rows());
    for (AttributeId a = 0; a < encoded_.num_columns(); ++a) {
      encoded_.UpdateCell(row_id, a, row[a]);
    }
  }
  IndexRow(row_id);
}

void IncrementalEnforcer::Remove(int row_id) {
  // The encoding still holds the pre-image; hash from the stored codes.
  for (ConstraintIndex& index : indexes_) {
    // Mirror IndexRow(): rows skipped there were never indexed.
    if (!ShouldIndex(index, row_id)) continue;
    auto bucket = index.buckets.find(HashStoredRow(row_id, index.stable));
    if (bucket == index.buckets.end()) continue;
    auto& ids = bucket->second;
    auto it = std::find(ids.begin(), ids.end(), row_id);
    if (it == ids.end()) continue;
    ids.erase(it);
    if (ids.empty()) index.buckets.erase(bucket);
  }
}

void IncrementalEnforcer::CompactAfterErase(const std::vector<int>& erased) {
  if (erased.empty()) return;
  encoded_.EraseRows(erased);
  for (ConstraintIndex& index : indexes_) {
    for (auto& [hash, ids] : index.buckets) {
      for (int& id : ids) {
        id -= static_cast<int>(
            std::upper_bound(erased.begin(), erased.end(), id) -
            erased.begin());
      }
    }
  }
}

void IncrementalEnforcer::Restore(const std::vector<int>& erased,
                                  const std::vector<Tuple>& rows) {
  if (erased.empty()) return;
  assert(erased.size() == rows.size());
  // survivor_final[c] = the post-restore id of the row currently
  // numbered c: survivors occupy, in order, the positions NOT being
  // restored.
  const int restored =
      encoded_.num_rows() + static_cast<int>(erased.size());
  std::vector<int> survivor_final;
  survivor_final.reserve(encoded_.num_rows());
  size_t next = 0;
  for (int pos = 0; pos < restored; ++pos) {
    if (next < erased.size() && erased[next] == pos) {
      ++next;
      continue;
    }
    survivor_final.push_back(pos);
  }
  for (ConstraintIndex& index : indexes_) {
    for (auto& [hash, ids] : index.buckets) {
      for (int& id : ids) id = survivor_final[id];
    }
  }
  encoded_.UneraseRows(erased, rows);
  for (int id : erased) IndexRow(id);
}

int IncrementalEnforcer::CompactDictionaries() {
  const std::vector<int> retired = encoded_.CompactDictionaries();
  // Codes may change even when nothing was retired (an unordered
  // dictionary still canonicalizes), so the code-keyed buckets are
  // rebuilt from the new codes unconditionally. Bucket contents are a
  // pure function of the (deterministic) new codes, so two enforcers
  // with equal decoded contents fingerprint identically afterwards.
  for (ConstraintIndex& index : indexes_) index.buckets.clear();
  for (int id = 0; id < encoded_.num_rows(); ++id) IndexRow(id);
  int total = 0;
  for (int r : retired) total += r;
  return total;
}

void IncrementalEnforcer::Rebuild(const Table& table) {
  ++rebuilds_;
  encoded_ = EncodedTable(schema_.num_attributes());
  for (ConstraintIndex& index : indexes_) index.buckets.clear();
  for (int i = 0; i < table.num_rows(); ++i) {
    Add(table.row(i), i);
  }
}

Status IncrementalEnforcer::CheckInvariants() const {
  const int n = encoded_.num_rows();
  // Order index first: sorted/rank/ordered must stay consistent with
  // the dictionaries across every write and compaction.
  SQLNF_RETURN_NOT_OK(encoded_.CheckDictionaryOrder());
  // Encoding: code ranges, ⊥ counts, dictionary bijectivity.
  for (AttributeId col : encoded_.encoded_columns()) {
    const std::vector<uint32_t>& codes = encoded_.column(col);
    if (static_cast<int>(codes.size()) != n) {
      return Status::Internal("column " + std::to_string(col) +
                              " code vector out of sync with row count");
    }
    const uint32_t dict_size =
        static_cast<uint32_t>(encoded_.dictionary_size(col));
    int nulls = 0;
    for (uint32_t code : codes) {
      if (code == EncodedTable::kNullCode) {
        ++nulls;
        continue;
      }
      if (code >= dict_size) {
        return Status::Internal("column " + std::to_string(col) +
                                " stores a retired or unminted code");
      }
    }
    if (nulls != encoded_.null_count(col)) {
      return Status::Internal("column " + std::to_string(col) +
                              " null count drifted from its codes");
    }
    for (uint32_t code = 0; code < dict_size; ++code) {
      if (encoded_.LookupCode(col, encoded_.DecodeCode(col, code)) != code) {
        return Status::Internal("column " + std::to_string(col) +
                                " dictionary is not a bijection at code " +
                                std::to_string(code));
      }
    }
  }
  // Indexes: every row present exactly where it must be, hashed from
  // its current codes.
  for (size_t i = 0; i < indexes_.size(); ++i) {
    const ConstraintIndex& index = indexes_[i];
    std::vector<char> seen(n, 0);
    for (const auto& [hash, ids] : index.buckets) {
      if (ids.empty()) {
        return Status::Internal("index " + std::to_string(i) +
                                " retains an empty bucket");
      }
      for (int id : ids) {
        if (id < 0 || id >= n) {
          return Status::Internal("index " + std::to_string(i) +
                                  " holds out-of-range row id " +
                                  std::to_string(id));
        }
        if (seen[id]) {
          return Status::Internal("index " + std::to_string(i) +
                                  " holds row " + std::to_string(id) +
                                  " twice");
        }
        seen[id] = 1;
        if (!ShouldIndex(index, id)) {
          return Status::Internal("index " + std::to_string(i) +
                                  " holds non-total row " +
                                  std::to_string(id) +
                                  " of a strong constraint");
        }
        if (HashStoredRow(id, index.stable) != hash) {
          return Status::Internal("index " + std::to_string(i) +
                                  " files row " + std::to_string(id) +
                                  " under a stale hash");
        }
      }
    }
    for (int id = 0; id < n; ++id) {
      if (ShouldIndex(index, id) && !seen[id]) {
        return Status::Internal("index " + std::to_string(i) +
                                " is missing row " + std::to_string(id));
      }
    }
  }
  return Status::OK();
}

uint64_t IncrementalEnforcer::IndexFingerprint() const {
  uint64_t fp = kFnv64OffsetBasis;
  for (AttributeId col : encoded_.encoded_columns()) {
    fp = FnvMix(fp,
                static_cast<uint64_t>(encoded_.dictionary_size(col)));
  }
  for (const ConstraintIndex& index : indexes_) {
    // Per-bucket digests combined commutatively: bucket iteration order
    // and within-bucket insertion order are implementation noise, the
    // (key → id set) mapping is the state.
    uint64_t acc = 0;
    for (const auto& [hash, ids] : index.buckets) {
      std::vector<int> sorted = ids;
      std::sort(sorted.begin(), sorted.end());
      uint64_t h = FnvMix(kFnv64OffsetBasis, hash);
      for (int id : sorted) h = FnvMix(h, static_cast<uint64_t>(id));
      acc += h;
    }
    fp = FnvMix(fp, acc);
  }
  return fp;
}

IncrementalEnforcer::IndexStats IncrementalEnforcer::Stats(int index) const {
  IndexStats stats;
  for (const auto& [hash, ids] : indexes_[index].buckets) {
    ++stats.buckets;
    stats.indexed_rows += static_cast<int>(ids.size());
    stats.largest_bucket =
        std::max(stats.largest_bucket, static_cast<int>(ids.size()));
  }
  return stats;
}

}  // namespace sqlnf
