#include "sqlnf/engine/enforcer.h"

#include <algorithm>
#include <cassert>

#include "sqlnf/util/fnv.h"

namespace sqlnf {

IncrementalEnforcer::IncrementalEnforcer(const TableSchema& schema,
                                         const ConstraintSet& sigma)
    : schema_(schema), encoded_(schema.num_attributes()) {
  for (const auto& fd : sigma.fds()) {
    ConstraintIndex index;
    index.constraint = fd;
    index.similarity_attrs = fd.lhs;
    index.rhs = fd.rhs;
    index.strong = fd.is_possible();
    index.stable = fd.lhs.Intersect(schema.nfs());
    indexes_.push_back(std::move(index));
  }
  for (const auto& key : sigma.keys()) {
    ConstraintIndex index;
    index.constraint = key;
    index.similarity_attrs = key.attrs;
    index.strong = key.is_possible();
    index.stable = key.attrs.Intersect(schema.nfs());
    indexes_.push_back(std::move(index));
  }
}

uint64_t IncrementalEnforcer::HashCodes(const std::vector<uint32_t>& codes,
                                        const AttributeSet& attrs) {
  uint64_t h = kFnv64OffsetBasis;
  for (AttributeId a : attrs) h = FnvMix(h, codes[a]);
  return h;
}

uint64_t IncrementalEnforcer::HashStoredRow(int row_id,
                                            const AttributeSet& attrs) const {
  uint64_t h = kFnv64OffsetBasis;
  for (AttributeId a : attrs) h = FnvMix(h, encoded_.code(a, row_id));
  return h;
}

bool IncrementalEnforcer::RowTotal(int row_id,
                                   const AttributeSet& attrs) const {
  for (AttributeId a : attrs) {
    if (encoded_.code(a, row_id) == EncodedTable::kNullCode) return false;
  }
  return true;
}

std::optional<Violation> IncrementalEnforcer::Check(const Tuple& row) const {
  const int candidate_id = encoded_.num_rows();
  for (AttributeId a : schema_.nfs()) {
    if (row[a].is_null()) {
      Violation v;
      v.row1 = v.row2 = candidate_id;
      v.attribute = a;
      return v;
    }
  }
  // Probe the dictionaries once; a value the encoding has never seen
  // maps to kMissingCode, which equals no stored code — such a cell can
  // only conflict through ⊥, exactly like the value semantics.
  std::vector<uint32_t> cand(encoded_.num_columns());
  for (AttributeId a = 0; a < encoded_.num_columns(); ++a) {
    cand[a] = encoded_.LookupCode(a, row[a]);
  }
  for (const ConstraintIndex& index : indexes_) {
    auto bucket = index.buckets.find(HashCodes(cand, index.stable));
    if (bucket == index.buckets.end()) continue;
    const AttributeSet rest =
        index.similarity_attrs.Difference(index.stable);
    for (int other_id : bucket->second) {
      // Hash collisions: confirm exact code match on the stable columns.
      bool stable_equal = true;
      for (AttributeId a : index.stable) {
        if (cand[a] != encoded_.code(a, other_id)) {
          stable_equal = false;
          break;
        }
      }
      if (!stable_equal) continue;
      bool similar = true;
      for (AttributeId a : rest) {
        const uint32_t other = encoded_.code(a, other_id);
        if (index.strong ? !CodesStronglySimilar(cand[a], other)
                         : !CodesWeaklySimilar(cand[a], other)) {
          similar = false;
          break;
        }
      }
      if (!similar) continue;
      bool rhs_equal = true;
      for (AttributeId a : index.rhs) {
        if (cand[a] != encoded_.code(a, other_id)) {
          rhs_equal = false;
          break;
        }
      }
      if (index.rhs.empty() || !rhs_equal) {
        return Violation{other_id, candidate_id, index.constraint,
                         std::nullopt};
      }
    }
  }
  return std::nullopt;
}

void IncrementalEnforcer::Add(const Tuple& row, int row_id) {
  if (row_id == encoded_.num_rows()) {
    encoded_.AppendRow(row);
  } else {
    // Re-add in place (the UPDATE write path re-encodes the slot).
    assert(row_id >= 0 && row_id < encoded_.num_rows());
    for (AttributeId a = 0; a < encoded_.num_columns(); ++a) {
      encoded_.UpdateCell(row_id, a, row[a]);
    }
  }
  for (ConstraintIndex& index : indexes_) {
    // Rows not total on the similarity attrs can still conflict under
    // weak similarity, but never under strong similarity — skip them
    // for possible constraints to keep buckets tight.
    if (index.strong &&
        !RowTotal(row_id, index.similarity_attrs)) {
      continue;
    }
    index.buckets[HashStoredRow(row_id, index.stable)].push_back(row_id);
  }
}

void IncrementalEnforcer::Remove(int row_id) {
  // The encoding still holds the pre-image; hash from the stored codes.
  for (ConstraintIndex& index : indexes_) {
    // Mirror Add(): rows skipped there were never indexed.
    if (index.strong && !RowTotal(row_id, index.similarity_attrs)) {
      continue;
    }
    auto bucket = index.buckets.find(HashStoredRow(row_id, index.stable));
    if (bucket == index.buckets.end()) continue;
    auto& ids = bucket->second;
    auto it = std::find(ids.begin(), ids.end(), row_id);
    if (it == ids.end()) continue;
    ids.erase(it);
    if (ids.empty()) index.buckets.erase(bucket);
  }
}

void IncrementalEnforcer::CompactAfterErase(const std::vector<int>& erased) {
  if (erased.empty()) return;
  encoded_.EraseRows(erased);
  for (ConstraintIndex& index : indexes_) {
    for (auto& [hash, ids] : index.buckets) {
      for (int& id : ids) {
        id -= static_cast<int>(
            std::upper_bound(erased.begin(), erased.end(), id) -
            erased.begin());
      }
    }
  }
}

void IncrementalEnforcer::Rebuild(const Table& table) {
  ++rebuilds_;
  encoded_ = EncodedTable(schema_.num_attributes());
  for (ConstraintIndex& index : indexes_) index.buckets.clear();
  for (int i = 0; i < table.num_rows(); ++i) {
    Add(table.row(i), i);
  }
}

}  // namespace sqlnf
