#include "sqlnf/engine/sql.h"

#include <cctype>
#include <functional>
#include <optional>

#include "sqlnf/decomposition/encoded_ops.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/util/string_util.h"

namespace sqlnf {

std::string QueryResult::ToString() const {
  std::string out = message;
  if (rows.has_value()) {
    if (!out.empty()) out += "\n";
    out += rows->ToString();
  }
  return out;
}

namespace {

// ---------------------------------------------------------------- lexer

enum class TokenKind { kIdentifier, kString, kNumber, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (as written), symbol, digits, or
                      // unescaped string body
  std::string upper;  // identifier uppercased, for keyword matching
};

Result<std::vector<Token>> Lex(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  auto push_symbol = [&](std::string s) {
    out.push_back({TokenKind::kSymbol, std::move(s), ""});
  };
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;  // line comment
      continue;
    }
    if (c == '\'') {
      std::string body;
      ++i;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            body += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        body += sql[i++];
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      out.push_back({TokenKind::kString, std::move(body), ""});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::string digits(1, c);
      ++i;
      while (i < sql.size() &&
             std::isdigit(static_cast<unsigned char>(sql[i]))) {
        digits += sql[i++];
      }
      out.push_back({TokenKind::kNumber, std::move(digits), ""});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        word += sql[i++];
      }
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      out.push_back({TokenKind::kIdentifier, std::move(word),
                     std::move(upper)});
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '>') {
      push_symbol("->");
      i += 2;
      continue;
    }
    // Comparison operators; the two-character forms lex as one token.
    if (c == '<') {
      if (i + 1 < sql.size() && (sql[i + 1] == '=' || sql[i + 1] == '>')) {
        push_symbol(std::string("<") + sql[i + 1]);
        i += 2;
      } else {
        push_symbol("<");
        ++i;
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < sql.size() && sql[i + 1] == '=') {
        push_symbol(">=");
        i += 2;
      } else {
        push_symbol(">");
        ++i;
      }
      continue;
    }
    if (c == '!') {
      if (i + 1 < sql.size() && sql[i + 1] == '=') {
        push_symbol("!=");
        i += 2;
        continue;
      }
      return Status::ParseError("unexpected character '!' in SQL");
    }
    if (std::string("(),=;*").find(c) != std::string::npos) {
      push_symbol(std::string(1, c));
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' in SQL");
  }
  out.push_back({TokenKind::kEnd, "", ""});
  return out;
}

// --------------------------------------------------------------- parser

// The parser executes as it goes, so every statement method that
// reaches the Database inherits the session's WriterThread role
// requirement (engine/writer_role.h); the pure token helpers are
// role-free.
class Parser {
 public:
  Parser(std::vector<Token> tokens, Database* db)
      : tokens_(std::move(tokens)), db_(db) {}

  Result<QueryResult> ParseAndExecute() SQLNF_REQUIRES(writer_thread_role) {
    if (AcceptKeyword("CREATE")) return Create();
    if (AcceptKeyword("INSERT")) return Insert();
    if (AcceptKeyword("SELECT")) return Select();
    if (AcceptKeyword("UPDATE")) return Update();
    if (AcceptKeyword("DELETE")) return Delete();
    if (AcceptKeyword("DROP")) return Drop();
    if (AcceptKeyword("VACUUM")) return Vacuum();
    if (AcceptKeyword("SHOW")) return Show();
    if (AcceptKeyword("DESCRIBE")) return Describe();
    if (AcceptKeyword("BEGIN")) return Begin();
    if (AcceptKeyword("COMMIT")) return TxnEnd(/*commit=*/true);
    if (AcceptKeyword("ROLLBACK")) return TxnEnd(/*commit=*/false);
    return Status::ParseError("unknown statement: expected CREATE / "
                              "INSERT / SELECT / UPDATE / DELETE / DROP / "
                              "VACUUM / SHOW / DESCRIBE / BEGIN / COMMIT / "
                              "ROLLBACK");
  }

 private:
  // ---- token helpers.
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool AcceptKeyword(const char* kw) {
    if (Peek().kind == TokenKind::kIdentifier && Peek().upper == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw +
                                ", got '" + Peek().text + "'");
    }
    return Status::OK();
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) {
      return Status::ParseError(std::string("expected '") + s +
                                "', got '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError("expected identifier, got '" +
                                Peek().text + "'");
    }
    return Next().text;
  }
  Result<Value> ExpectLiteral() {
    if (Peek().kind == TokenKind::kString) return Value::Str(Next().text);
    if (Peek().kind == TokenKind::kNumber) {
      return Value::Int(std::stoll(Next().text));
    }
    if (Peek().kind == TokenKind::kIdentifier && Peek().upper == "NULL") {
      ++pos_;
      return Value::Null();
    }
    return Status::ParseError("expected literal, got '" + Peek().text +
                              "'");
  }
  Status ExpectStatementEnd() {
    AcceptSymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Status::ParseError("trailing input after statement: '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }

  // Parenthesized comma-separated column-name list (after the '(').
  Result<std::vector<std::string>> ColumnList() {
    std::vector<std::string> cols;
    do {
      SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      cols.push_back(std::move(col));
    } while (AcceptSymbol(","));
    SQLNF_RETURN_NOT_OK(ExpectSymbol(")"));
    return cols;
  }

  // ---- statements.
  Result<QueryResult> Create() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectSymbol("("));

    std::vector<std::string> columns;
    std::vector<std::string> not_null;
    struct PendingKey {
      std::vector<std::string> cols;
      Mode mode;
      bool primary;
    };
    struct PendingFd {
      std::vector<std::string> lhs, rhs;
      Mode mode;
    };
    std::vector<PendingKey> keys;
    std::vector<PendingFd> fds;

    do {
      if (AcceptKeyword("PRIMARY")) {
        SQLNF_RETURN_NOT_OK(ExpectKeyword("KEY"));
        SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
        SQLNF_ASSIGN_OR_RETURN(auto cols, ColumnList());
        keys.push_back({std::move(cols), Mode::kCertain, true});
      } else if (AcceptKeyword("UNIQUE")) {
        SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
        SQLNF_ASSIGN_OR_RETURN(auto cols, ColumnList());
        keys.push_back({std::move(cols), Mode::kPossible, false});
      } else if (AcceptKeyword("CERTAIN") || AcceptKeyword("POSSIBLE")) {
        const Mode mode = tokens_[pos_ - 1].upper == "CERTAIN"
                              ? Mode::kCertain
                              : Mode::kPossible;
        if (AcceptKeyword("KEY")) {
          SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
          SQLNF_ASSIGN_OR_RETURN(auto cols, ColumnList());
          keys.push_back({std::move(cols), mode, false});
        } else {
          SQLNF_RETURN_NOT_OK(ExpectKeyword("FD"));
          SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
          PendingFd fd;
          fd.mode = mode;
          do {
            SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
            fd.lhs.push_back(std::move(col));
          } while (AcceptSymbol(","));
          SQLNF_RETURN_NOT_OK(ExpectSymbol("->"));
          do {
            SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
            fd.rhs.push_back(std::move(col));
          } while (AcceptSymbol(","));
          SQLNF_RETURN_NOT_OK(ExpectSymbol(")"));
          fds.push_back(std::move(fd));
        }
      } else {
        // Column definition: name TYPE [NOT NULL].
        SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        if (Peek().kind == TokenKind::kIdentifier &&
            (Peek().upper == "TEXT" || Peek().upper == "INTEGER" ||
             Peek().upper == "VARCHAR" || Peek().upper == "INT")) {
          ++pos_;  // type is declarative only
        }
        if (AcceptKeyword("NOT")) {
          SQLNF_RETURN_NOT_OK(ExpectKeyword("NULL"));
          not_null.push_back(col);
        }
        columns.push_back(std::move(col));
      }
    } while (AcceptSymbol(","));
    SQLNF_RETURN_NOT_OK(ExpectSymbol(")"));
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());

    // PRIMARY KEY columns are NOT NULL in SQL.
    for (const PendingKey& key : keys) {
      if (!key.primary) continue;
      for (const std::string& col : key.cols) not_null.push_back(col);
    }
    SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                           TableSchema::Make(name, columns, not_null));
    ConstraintSet sigma;
    for (const PendingKey& key : keys) {
      SQLNF_ASSIGN_OR_RETURN(AttributeSet attrs,
                             schema.ResolveAll(key.cols));
      sigma.AddKey({attrs, key.mode});
    }
    for (const PendingFd& fd : fds) {
      SQLNF_ASSIGN_OR_RETURN(AttributeSet lhs, schema.ResolveAll(fd.lhs));
      SQLNF_ASSIGN_OR_RETURN(AttributeSet rhs, schema.ResolveAll(fd.rhs));
      sigma.AddFd({lhs, rhs, fd.mode});
    }
    SQLNF_RETURN_NOT_OK(db_->CreateTable(schema, std::move(sigma)));
    QueryResult result;
    result.message = "created table " + name;
    return result;
  }

  Result<QueryResult> Insert() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_RETURN_NOT_OK(ExpectKeyword("INTO"));
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    int inserted = 0;
    do {
      SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> values;
      do {
        SQLNF_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
        values.push_back(std::move(v));
      } while (AcceptSymbol(","));
      SQLNF_RETURN_NOT_OK(ExpectSymbol(")"));
      SQLNF_RETURN_NOT_OK(db_->Insert(name, Tuple(std::move(values))));
      ++inserted;
    } while (AcceptSymbol(","));
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    QueryResult result;
    result.affected = inserted;
    result.message = std::to_string(inserted) + " row(s) inserted";
    return result;
  }

  // One WHERE atom:
  //   col (= | <> | != | < | <= | > | >=) lit
  //   col BETWEEN lit AND lit              (the AND belongs to BETWEEN)
  //   col IN (lit [, lit]*)
  // `=`/`<>`/IN use marker equality (col = NULL matches exactly the ⊥
  // cells); ordered comparisons exclude ⊥ by definition
  // (engine/predicate.h).
  Result<PredicateAtom> WhereAtom(const TableSchema& schema) {
    SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    SQLNF_ASSIGN_OR_RETURN(AttributeId id, schema.FindAttribute(col));
    if (AcceptKeyword("BETWEEN")) {
      SQLNF_ASSIGN_OR_RETURN(Value lo, ExpectLiteral());
      SQLNF_RETURN_NOT_OK(ExpectKeyword("AND"));
      SQLNF_ASSIGN_OR_RETURN(Value hi, ExpectLiteral());
      return Between(id, std::move(lo), std::move(hi));
    }
    if (AcceptKeyword("IN")) {
      SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> list;
      do {
        SQLNF_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
        list.push_back(std::move(v));
      } while (AcceptSymbol(","));
      SQLNF_RETURN_NOT_OK(ExpectSymbol(")"));
      return In(id, std::move(list));
    }
    CompareOp op;
    if (AcceptSymbol("=")) {
      op = CompareOp::kEq;
    } else if (AcceptSymbol("<>") || AcceptSymbol("!=")) {
      op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (AcceptSymbol("<")) {
      op = CompareOp::kLt;
    } else if (AcceptSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (AcceptSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Status::ParseError(
          "expected comparison operator, BETWEEN, or IN, got '" +
          Peek().text + "'");
    }
    SQLNF_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
    return Cmp(id, op, std::move(v));
  }

  // WHERE atom [AND atom]* [OR atom [AND atom]*]* → the predicate tree
  // in DNF (AND binds tighter than OR; no parenthesized grouping). The
  // executor compiles the whole tree onto codes (engine/predicate.h).
  // No WHERE clause yields Predicate::True().
  Result<Predicate> WhereClause(const TableSchema& schema) {
    if (!AcceptKeyword("WHERE")) return Predicate::True();
    Predicate pred;
    do {
      Conjunction conj;
      do {
        SQLNF_ASSIGN_OR_RETURN(PredicateAtom atom, WhereAtom(schema));
        conj.push_back(std::move(atom));
      } while (AcceptKeyword("AND"));
      pred.disjuncts.push_back(std::move(conj));
    } while (AcceptKeyword("OR"));
    return pred;
  }

  Result<QueryResult> Select() SQLNF_REQUIRES(writer_thread_role) {
    // Projection list.
    bool star = false;
    std::vector<std::string> cols;
    if (AcceptSymbol("*")) {
      star = true;
    } else {
      do {
        SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        cols.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }
    SQLNF_RETURN_NOT_OK(ExpectKeyword("FROM"));
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_ASSIGN_OR_RETURN(const StoredTable* stored, db_->Find(name));
    // Columnar plan: fold joins on codes, filter into a selection
    // vector, and decode only the selected rows of the projected
    // columns — the stored encoding is never copied.
    const TableSchema* cur_schema = &stored->schema();
    const EncodedTable* cur_cols = &stored->columns();
    std::optional<EncodedRelation> joined;
    while (AcceptKeyword("NATURAL")) {
      SQLNF_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      SQLNF_ASSIGN_OR_RETURN(std::string other, ExpectIdentifier());
      SQLNF_ASSIGN_OR_RETURN(const StoredTable* right, db_->Find(other));
      SQLNF_ASSIGN_OR_RETURN(
          EncodedRelation next,
          EqualityJoinEncoded(*cur_schema, *cur_cols, right->schema(),
                              right->columns(), name + "_join"));
      joined = std::move(next);
      cur_schema = &joined->schema;
      cur_cols = &joined->columns;
    }
    SQLNF_ASSIGN_OR_RETURN(auto conditions, WhereClause(*cur_schema));
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());

    const std::vector<int> sel = SelectRowsEncoded(*cur_cols, conditions);
    std::vector<AttributeId> ids;
    std::optional<TableSchema> out_schema;
    if (star) {
      ids.resize(cur_schema->num_attributes());
      for (AttributeId a = 0; a < cur_schema->num_attributes(); ++a) {
        ids[a] = a;
      }
      out_schema = *cur_schema;
    } else {
      // Projection preserving the requested column order.
      std::vector<std::string> names;
      for (const std::string& col : cols) {
        SQLNF_ASSIGN_OR_RETURN(AttributeId id,
                               cur_schema->FindAttribute(col));
        ids.push_back(id);
        names.push_back(col);
      }
      SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                             TableSchema::Make("result", names));
      out_schema = std::move(schema);
    }
    Table output(std::move(*out_schema));
    output.ReserveRows(static_cast<int>(sel.size()));
    for (int i : sel) {
      std::vector<Value> row;
      row.reserve(ids.size());
      for (AttributeId id : ids) {
        row.push_back(cur_cols->DecodeCode(id, cur_cols->code(id, i)));
      }
      SQLNF_RETURN_NOT_OK(output.AddRow(Tuple(std::move(row))));
    }
    QueryResult result;
    result.affected = output.num_rows();
    result.message = std::to_string(output.num_rows()) + " row(s)";
    result.rows = std::move(output);
    return result;
  }

  Result<QueryResult> Update() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectKeyword("SET"));
    SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectSymbol("="));
    SQLNF_ASSIGN_OR_RETURN(Value value, ExpectLiteral());
    SQLNF_ASSIGN_OR_RETURN(const StoredTable* stored, db_->Find(name));
    SQLNF_ASSIGN_OR_RETURN(AttributeId column,
                           stored->schema().FindAttribute(col));
    SQLNF_ASSIGN_OR_RETURN(auto conditions, WhereClause(stored->schema()));
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_ASSIGN_OR_RETURN(int changed,
                           db_->Update(name, conditions, column, value));
    QueryResult result;
    result.affected = changed;
    result.message = std::to_string(changed) + " row(s) updated";
    return result;
  }

  Result<QueryResult> Delete() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_RETURN_NOT_OK(ExpectKeyword("FROM"));
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_ASSIGN_OR_RETURN(const StoredTable* stored, db_->Find(name));
    SQLNF_ASSIGN_OR_RETURN(auto conditions, WhereClause(stored->schema()));
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_ASSIGN_OR_RETURN(int removed, db_->Delete(name, conditions));
    QueryResult result;
    result.affected = removed;
    result.message = std::to_string(removed) + " row(s) deleted";
    return result;
  }

  Result<QueryResult> Drop() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_RETURN_NOT_OK(db_->DropTable(name));
    QueryResult result;
    result.message = "dropped table " + name;
    return result;
  }

  // VACUUM t: order-preserving dictionary compaction (dead codes
  // reclaimed, codes canonicalized — Database::CompactTable). Barred
  // inside a transaction.
  Result<QueryResult> Vacuum() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_ASSIGN_OR_RETURN(int retired, db_->CompactTable(name));
    QueryResult result;
    result.affected = retired;
    result.message = "vacuumed " + name + ": " + std::to_string(retired) +
                     " dictionary entries reclaimed";
    return result;
  }

  // BEGIN / COMMIT / ROLLBACK, each with an optional TRANSACTION or
  // WORK noise word. Statements between BEGIN and COMMIT take effect
  // (and become visible to snapshot readers) only at COMMIT; ROLLBACK
  // restores every touched table bit-identically.
  Result<QueryResult> Begin() SQLNF_REQUIRES(writer_thread_role) {
    AcceptKeyword("TRANSACTION") || AcceptKeyword("WORK");
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_RETURN_NOT_OK(db_->Begin());
    QueryResult result;
    result.message = "transaction started";
    return result;
  }

  Result<QueryResult> TxnEnd(bool commit) SQLNF_REQUIRES(writer_thread_role) {
    AcceptKeyword("TRANSACTION") || AcceptKeyword("WORK");
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_RETURN_NOT_OK(commit ? db_->Commit() : db_->Rollback());
    QueryResult result;
    result.message =
        commit ? "transaction committed" : "transaction rolled back";
    return result;
  }

  Result<QueryResult> Show() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_RETURN_NOT_OK(ExpectKeyword("TABLES"));
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                           TableSchema::Make("tables", {"name", "rows"}));
    Table listing(std::move(schema));
    for (const std::string& name : db_->TableNames()) {
      auto stored = db_->Find(name);
      SQLNF_RETURN_NOT_OK(listing.AddRow(Tuple(
          {Value::Str(name), Value::Int((*stored)->num_rows())})));
    }
    QueryResult result;
    result.message = std::to_string(listing.num_rows()) + " table(s)";
    result.rows = std::move(listing);
    return result;
  }

  Result<QueryResult> Describe() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_ASSIGN_OR_RETURN(const StoredTable* stored, db_->Find(name));
    const TableSchema& schema = stored->schema();
    SQLNF_ASSIGN_OR_RETURN(
        TableSchema out_schema,
        TableSchema::Make("columns", {"column", "not_null"}));
    Table listing(std::move(out_schema));
    for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
      SQLNF_RETURN_NOT_OK(listing.AddRow(
          Tuple({Value::Str(schema.attribute_name(a)),
                 Value::Str(schema.nfs().Contains(a) ? "yes" : "no")})));
    }
    QueryResult result;
    result.message = "constraints: " + stored->sigma().ToString(schema);
    result.rows = std::move(listing);
    return result;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Database* db_;
};

}  // namespace

Result<QueryResult> SqlSession::Execute(std::string_view statement) {
  SQLNF_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(statement));
  return Parser(std::move(tokens), db_).ParseAndExecute();
}

namespace {

/// True when `statement` holds nothing but '--' line comments and
/// whitespace.
bool OnlyComments(const std::string& statement) {
  for (const std::string& line : SplitString(statement, '\n')) {
    std::string_view stripped = StripAsciiWhitespace(line);
    if (!stripped.empty() && !StartsWith(stripped, "--")) return false;
  }
  return true;
}

/// Splits the script on ';' outside string literals, dropping '--'
/// line comments and empty / comment-only statements. Pure text
/// processing — execution happens in ExecuteScript's loop, so no
/// capability requirement crosses a lambda boundary.
std::vector<std::string> SplitStatements(std::string_view script) {
  std::vector<std::string> statements;
  std::string current;
  bool in_string = false;
  auto flush = [&] {
    if (!StripAsciiWhitespace(current).empty() && !OnlyComments(current)) {
      statements.push_back(current);
    }
    current.clear();
  };
  for (size_t i = 0; i < script.size(); ++i) {
    char c = script[i];
    // Skip '--' line comments outside string literals (their content —
    // apostrophes included — must not affect statement splitting).
    if (!in_string && c == '-' && i + 1 < script.size() &&
        script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      continue;
    }
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      flush();
      continue;
    }
    current += c;
  }
  flush();
  return statements;
}

}  // namespace

Result<std::vector<QueryResult>> SqlSession::ExecuteScript(
    std::string_view script) {
  std::vector<QueryResult> results;
  for (const std::string& statement : SplitStatements(script)) {
    SQLNF_ASSIGN_OR_RETURN(QueryResult result, Execute(statement));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace sqlnf
