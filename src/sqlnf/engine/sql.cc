#include "sqlnf/engine/sql.h"

#include <cctype>
#include <functional>
#include <optional>
#include <utility>

#include "sqlnf/decomposition/encoded_ops.h"
#include "sqlnf/engine/relops.h"
#include "sqlnf/util/string_util.h"

namespace sqlnf {

namespace {

// ---------------------------------------------------------------- lexer

enum class TokenKind { kIdentifier, kString, kNumber, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (as written), symbol, digits, or
                      // unescaped string body
  std::string upper;  // identifier uppercased, for keyword matching
  size_t offset = 0;  // byte offset of the token in the statement text
};

Result<std::vector<Token>> Lex(std::string_view sql, int* error_offset) {
  std::vector<Token> out;
  size_t i = 0;
  auto push_symbol = [&](std::string s, size_t at) {
    out.push_back({TokenKind::kSymbol, std::move(s), "", at});
  };
  auto fail = [&](size_t at, std::string msg) {
    if (error_offset != nullptr) *error_offset = static_cast<int>(at);
    return Status::ParseError(std::move(msg));
  };
  while (i < sql.size()) {
    const size_t start = i;
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;  // line comment
      continue;
    }
    if (c == '\'') {
      std::string body;
      ++i;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            body += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        body += sql[i++];
      }
      if (!closed) return fail(start, "unterminated string literal");
      out.push_back({TokenKind::kString, std::move(body), "", start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < sql.size() &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      std::string digits(1, c);
      ++i;
      while (i < sql.size() &&
             std::isdigit(static_cast<unsigned char>(sql[i]))) {
        digits += sql[i++];
      }
      out.push_back({TokenKind::kNumber, std::move(digits), "", start});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_')) {
        word += sql[i++];
      }
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      out.push_back({TokenKind::kIdentifier, std::move(word),
                     std::move(upper), start});
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '>') {
      push_symbol("->", start);
      i += 2;
      continue;
    }
    // Comparison operators; the two-character forms lex as one token.
    if (c == '<') {
      if (i + 1 < sql.size() && (sql[i + 1] == '=' || sql[i + 1] == '>')) {
        push_symbol(std::string("<") + sql[i + 1], start);
        i += 2;
      } else {
        push_symbol("<", start);
        ++i;
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < sql.size() && sql[i + 1] == '=') {
        push_symbol(">=", start);
        i += 2;
      } else {
        push_symbol(">", start);
        ++i;
      }
      continue;
    }
    if (c == '!') {
      if (i + 1 < sql.size() && sql[i + 1] == '=') {
        push_symbol("!=", start);
        i += 2;
        continue;
      }
      return fail(start, "unexpected character '!' in SQL");
    }
    if (std::string("(),=;*").find(c) != std::string::npos) {
      push_symbol(std::string(1, c), start);
      ++i;
      continue;
    }
    return fail(start,
                std::string("unexpected character '") + c + "' in SQL");
  }
  out.push_back({TokenKind::kEnd, "", "", sql.size()});
  return out;
}

// ------------------------------------------------ parsed statement forms
//
// The parser produces these database-independent structures; binding
// against storage happens afterwards, against either the live catalog
// (writer thread) or a snapshot map (any reader thread). Keeping the
// parse output purely textual is what lets one grammar serve both
// sides of the concurrency contract without a capability ever hiding
// behind an indirection.

/// A name plus where it appeared (for error offsets at bind time).
struct NamedRef {
  std::string name;
  size_t offset = 0;
};

/// One WHERE atom, columns still by name.
struct ParsedAtom {
  enum class Kind { kCompare, kBetween, kIn };
  Kind atom_kind = Kind::kCompare;
  std::string col;
  size_t col_offset = 0;
  CompareOp op = CompareOp::kEq;  // kCompare
  Value value;                    // kCompare
  Value lo, hi;                   // kBetween
  std::vector<Value> list;        // kIn
};

/// WHERE in DNF, columns unresolved. No disjuncts = no WHERE clause.
struct ParsedWhere {
  std::vector<std::vector<ParsedAtom>> disjuncts;
};

/// SELECT proj FROM t [NATURAL JOIN u]* [WHERE ...].
struct ParsedSelect {
  bool star = false;
  std::vector<NamedRef> cols;    // empty when star
  std::vector<NamedRef> tables;  // FROM first, then the join chain
  ParsedWhere where;
};

/// One bound table: schema + encoded columns, wherever they live (a
/// StoredTable's live encoding or a snapshot's immutable columns).
struct TableRef {
  const TableSchema* schema = nullptr;
  const EncodedTable* columns = nullptr;
};

/// Resolves a ParsedWhere against the (possibly joined) schema. On an
/// unknown column, reports the atom's offset through `error_offset`.
Result<Predicate> BindWhere(const ParsedWhere& where,
                            const TableSchema& schema, int* error_offset) {
  if (where.disjuncts.empty()) return Predicate::True();
  Predicate pred;
  for (const std::vector<ParsedAtom>& parsed_conj : where.disjuncts) {
    Conjunction conj;
    for (const ParsedAtom& atom : parsed_conj) {
      auto id_or = schema.FindAttribute(atom.col);
      if (!id_or.ok()) {
        if (error_offset != nullptr) {
          *error_offset = static_cast<int>(atom.col_offset);
        }
        return id_or.status();
      }
      const AttributeId id = *id_or;
      switch (atom.atom_kind) {
        case ParsedAtom::Kind::kCompare:
          conj.push_back(Cmp(id, atom.op, atom.value));
          break;
        case ParsedAtom::Kind::kBetween:
          conj.push_back(Between(id, atom.lo, atom.hi));
          break;
        case ParsedAtom::Kind::kIn:
          conj.push_back(In(id, atom.list));
          break;
      }
    }
    pred.disjuncts.push_back(std::move(conj));
  }
  return pred;
}

/// The shared SELECT executor: joins the bound tables, compiles the
/// WHERE onto codes, and decodes only the selected rows of the
/// projected columns. Role-free — it reads only through the TableRefs
/// the caller resolved, never the Database.
Result<QueryResult> SelectCore(const ParsedSelect& ps,
                               const std::vector<TableRef>& refs,
                               int* error_offset) {
  const TableSchema* cur_schema = refs[0].schema;
  const EncodedTable* cur_cols = refs[0].columns;
  std::optional<EncodedRelation> joined;
  for (size_t i = 1; i < refs.size(); ++i) {
    SQLNF_ASSIGN_OR_RETURN(
        EncodedRelation next,
        EqualityJoinEncoded(*cur_schema, *cur_cols, *refs[i].schema,
                            *refs[i].columns,
                            ps.tables[0].name + "_join"));
    joined = std::move(next);
    cur_schema = &joined->schema;
    cur_cols = &joined->columns;
  }
  SQLNF_ASSIGN_OR_RETURN(Predicate conditions,
                         BindWhere(ps.where, *cur_schema, error_offset));

  const std::vector<int> sel = SelectRowsEncoded(*cur_cols, conditions);
  std::vector<AttributeId> ids;
  std::optional<TableSchema> out_schema;
  if (ps.star) {
    ids.resize(cur_schema->num_attributes());
    for (AttributeId a = 0; a < cur_schema->num_attributes(); ++a) {
      ids[a] = a;
    }
    out_schema = *cur_schema;
  } else {
    // Projection preserving the requested column order.
    std::vector<std::string> names;
    for (const NamedRef& col : ps.cols) {
      auto id_or = cur_schema->FindAttribute(col.name);
      if (!id_or.ok()) {
        if (error_offset != nullptr) {
          *error_offset = static_cast<int>(col.offset);
        }
        return id_or.status();
      }
      ids.push_back(*id_or);
      names.push_back(col.name);
    }
    SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                           TableSchema::Make("result", names));
    out_schema = std::move(schema);
  }
  Table output(std::move(*out_schema));
  output.ReserveRows(static_cast<int>(sel.size()));
  for (int i : sel) {
    std::vector<Value> row;
    row.reserve(ids.size());
    for (AttributeId id : ids) {
      row.push_back(cur_cols->DecodeCode(id, cur_cols->code(id, i)));
    }
    SQLNF_RETURN_NOT_OK(output.AddRow(Tuple(std::move(row))));
  }
  QueryResult result;
  result.affected = output.num_rows();
  result.message = std::to_string(output.num_rows()) + " row(s)";
  result.rows = std::move(output);
  return result;
}

/// SHOW TABLES payload from (name, rows) pairs.
Result<QueryResult> MakeShowResult(
    const std::vector<std::pair<std::string, int>>& tables) {
  SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                         TableSchema::Make("tables", {"name", "rows"}));
  Table listing(std::move(schema));
  for (const auto& [name, rows] : tables) {
    SQLNF_RETURN_NOT_OK(
        listing.AddRow(Tuple({Value::Str(name), Value::Int(rows)})));
  }
  QueryResult result;
  result.message = std::to_string(listing.num_rows()) + " table(s)";
  result.rows = std::move(listing);
  return result;
}

/// DESCRIBE payload from a schema + constraint set.
Result<QueryResult> MakeDescribeResult(const TableSchema& schema,
                                       const ConstraintSet& sigma) {
  SQLNF_ASSIGN_OR_RETURN(
      TableSchema out_schema,
      TableSchema::Make("columns", {"column", "not_null"}));
  Table listing(std::move(out_schema));
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    SQLNF_RETURN_NOT_OK(listing.AddRow(
        Tuple({Value::Str(schema.attribute_name(a)),
               Value::Str(schema.nfs().Contains(a) ? "yes" : "no")})));
  }
  QueryResult result;
  result.message = "constraints: " + sigma.ToString(schema);
  result.rows = std::move(listing);
  return result;
}

// --------------------------------------------------------------- parser

// Write-capable statements execute as they parse, so every method that
// reaches the Database inherits the session's WriterThread role
// requirement (engine/writer_role.h). The read-only statements
// (SELECT / SHOW / DESCRIBE) parse into the textual structures above
// and bind afterwards — ParseAndExecuteReadOnly resolves them against
// a snapshot map with no role at all.
class Parser {
 public:
  // `db` may be null for read-only parsing (ParseAndExecuteReadOnly).
  Parser(std::vector<Token> tokens, Database* db)
      : tokens_(std::move(tokens)), db_(db) {}

  /// Byte offset (within the statement) of the token that produced the
  /// last error; -1 when no error was located.
  int error_offset() const { return error_offset_; }

  Result<QueryResult> ParseAndExecute() SQLNF_REQUIRES(writer_thread_role) {
    if (AcceptKeyword("CREATE")) return Create();
    if (AcceptKeyword("INSERT")) return Insert();
    if (AcceptKeyword("SELECT")) {
      SQLNF_ASSIGN_OR_RETURN(ParsedSelect ps, ParseSelectStatement());
      return SelectLive(ps);
    }
    if (AcceptKeyword("UPDATE")) return Update();
    if (AcceptKeyword("DELETE")) return Delete();
    if (AcceptKeyword("DROP")) return Drop();
    if (AcceptKeyword("VACUUM")) return Vacuum();
    if (AcceptKeyword("SHOW")) {
      SQLNF_RETURN_NOT_OK(ParseShowStatement());
      return ShowLive();
    }
    if (AcceptKeyword("DESCRIBE")) {
      SQLNF_ASSIGN_OR_RETURN(NamedRef table, ParseDescribeStatement());
      return DescribeLive(table);
    }
    if (AcceptKeyword("BEGIN")) return Begin();
    if (AcceptKeyword("COMMIT")) return TxnEnd(/*commit=*/true);
    if (AcceptKeyword("ROLLBACK")) return TxnEnd(/*commit=*/false);
    return ParseErrorHere("unknown statement: expected CREATE / "
                          "INSERT / SELECT / UPDATE / DELETE / DROP / "
                          "VACUUM / SHOW / DESCRIBE / BEGIN / COMMIT / "
                          "ROLLBACK");
  }

  /// The snapshot-bound executor: SELECT / SHOW / DESCRIBE against a
  /// consistent snapshot map. Role-free by construction — only the
  /// immutable snapshot columns are touched.
  Result<QueryResult> ParseAndExecuteReadOnly(
      const std::map<std::string, TableSnapshot>& snaps) {
    if (AcceptKeyword("SELECT")) {
      SQLNF_ASSIGN_OR_RETURN(ParsedSelect ps, ParseSelectStatement());
      return SelectSnap(ps, snaps);
    }
    if (AcceptKeyword("SHOW")) {
      SQLNF_RETURN_NOT_OK(ParseShowStatement());
      std::vector<std::pair<std::string, int>> tables;
      for (const auto& [name, snap] : snaps) {
        tables.emplace_back(name, snap.num_rows());
      }
      return MakeShowResult(tables);
    }
    if (AcceptKeyword("DESCRIBE")) {
      SQLNF_ASSIGN_OR_RETURN(NamedRef table, ParseDescribeStatement());
      auto it = snaps.find(table.name);
      if (it == snaps.end()) {
        error_offset_ = static_cast<int>(table.offset);
        return Status::NotFound("no table named '" + table.name + "'");
      }
      return MakeDescribeResult(it->second.schema, it->second.sigma);
    }
    return ParseErrorHere(
        "read-only execution supports SELECT / SHOW / DESCRIBE only");
  }

 private:
  // ---- token helpers.
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  Status ParseErrorHere(std::string msg) {
    error_offset_ = static_cast<int>(Peek().offset);
    return Status::ParseError(std::move(msg));
  }
  bool AcceptKeyword(const char* kw) {
    if (Peek().kind == TokenKind::kIdentifier && Peek().upper == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return ParseErrorHere(std::string("expected ") + kw + ", got '" +
                            Peek().text + "'");
    }
    return Status::OK();
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) {
      return ParseErrorHere(std::string("expected '") + s + "', got '" +
                            Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ParseErrorHere("expected identifier, got '" + Peek().text +
                            "'");
    }
    return Next().text;
  }
  Result<NamedRef> ExpectNamedRef() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ParseErrorHere("expected identifier, got '" + Peek().text +
                            "'");
    }
    const Token& tok = Next();
    return NamedRef{tok.text, tok.offset};
  }
  Result<Value> ExpectLiteral() {
    if (Peek().kind == TokenKind::kString) return Value::Str(Next().text);
    if (Peek().kind == TokenKind::kNumber) {
      return Value::Int(std::stoll(Next().text));
    }
    if (Peek().kind == TokenKind::kIdentifier && Peek().upper == "NULL") {
      ++pos_;
      return Value::Null();
    }
    return ParseErrorHere("expected literal, got '" + Peek().text + "'");
  }
  Status ExpectStatementEnd() {
    AcceptSymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      return ParseErrorHere("trailing input after statement: '" +
                            Peek().text + "'");
    }
    return Status::OK();
  }

  // Parenthesized comma-separated column-name list (after the '(').
  Result<std::vector<std::string>> ColumnList() {
    std::vector<std::string> cols;
    do {
      SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      cols.push_back(std::move(col));
    } while (AcceptSymbol(","));
    SQLNF_RETURN_NOT_OK(ExpectSymbol(")"));
    return cols;
  }

  // ---- statements.
  Result<QueryResult> Create() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectSymbol("("));

    std::vector<std::string> columns;
    std::vector<std::string> not_null;
    struct PendingKey {
      std::vector<std::string> cols;
      Mode mode;
      bool primary;
    };
    struct PendingFd {
      std::vector<std::string> lhs, rhs;
      Mode mode;
    };
    std::vector<PendingKey> keys;
    std::vector<PendingFd> fds;

    do {
      if (AcceptKeyword("PRIMARY")) {
        SQLNF_RETURN_NOT_OK(ExpectKeyword("KEY"));
        SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
        SQLNF_ASSIGN_OR_RETURN(auto cols, ColumnList());
        keys.push_back({std::move(cols), Mode::kCertain, true});
      } else if (AcceptKeyword("UNIQUE")) {
        SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
        SQLNF_ASSIGN_OR_RETURN(auto cols, ColumnList());
        keys.push_back({std::move(cols), Mode::kPossible, false});
      } else if (AcceptKeyword("CERTAIN") || AcceptKeyword("POSSIBLE")) {
        const Mode mode = tokens_[pos_ - 1].upper == "CERTAIN"
                              ? Mode::kCertain
                              : Mode::kPossible;
        if (AcceptKeyword("KEY")) {
          SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
          SQLNF_ASSIGN_OR_RETURN(auto cols, ColumnList());
          keys.push_back({std::move(cols), mode, false});
        } else {
          SQLNF_RETURN_NOT_OK(ExpectKeyword("FD"));
          SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
          PendingFd fd;
          fd.mode = mode;
          do {
            SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
            fd.lhs.push_back(std::move(col));
          } while (AcceptSymbol(","));
          SQLNF_RETURN_NOT_OK(ExpectSymbol("->"));
          do {
            SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
            fd.rhs.push_back(std::move(col));
          } while (AcceptSymbol(","));
          SQLNF_RETURN_NOT_OK(ExpectSymbol(")"));
          fds.push_back(std::move(fd));
        }
      } else {
        // Column definition: name TYPE [NOT NULL].
        SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        if (Peek().kind == TokenKind::kIdentifier &&
            (Peek().upper == "TEXT" || Peek().upper == "INTEGER" ||
             Peek().upper == "VARCHAR" || Peek().upper == "INT")) {
          ++pos_;  // type is declarative only
        }
        if (AcceptKeyword("NOT")) {
          SQLNF_RETURN_NOT_OK(ExpectKeyword("NULL"));
          not_null.push_back(col);
        }
        columns.push_back(std::move(col));
      }
    } while (AcceptSymbol(","));
    SQLNF_RETURN_NOT_OK(ExpectSymbol(")"));
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());

    // PRIMARY KEY columns are NOT NULL in SQL.
    for (const PendingKey& key : keys) {
      if (!key.primary) continue;
      for (const std::string& col : key.cols) not_null.push_back(col);
    }
    SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                           TableSchema::Make(name, columns, not_null));
    ConstraintSet sigma;
    for (const PendingKey& key : keys) {
      SQLNF_ASSIGN_OR_RETURN(AttributeSet attrs,
                             schema.ResolveAll(key.cols));
      sigma.AddKey({attrs, key.mode});
    }
    for (const PendingFd& fd : fds) {
      SQLNF_ASSIGN_OR_RETURN(AttributeSet lhs, schema.ResolveAll(fd.lhs));
      SQLNF_ASSIGN_OR_RETURN(AttributeSet rhs, schema.ResolveAll(fd.rhs));
      sigma.AddFd({lhs, rhs, fd.mode});
    }
    SQLNF_RETURN_NOT_OK(db_->CreateTable(schema, std::move(sigma)));
    QueryResult result;
    result.message = "created table " + name;
    return result;
  }

  Result<QueryResult> Insert() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_RETURN_NOT_OK(ExpectKeyword("INTO"));
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    int inserted = 0;
    do {
      SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> values;
      do {
        SQLNF_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
        values.push_back(std::move(v));
      } while (AcceptSymbol(","));
      SQLNF_RETURN_NOT_OK(ExpectSymbol(")"));
      SQLNF_RETURN_NOT_OK(db_->Insert(name, Tuple(std::move(values))));
      ++inserted;
    } while (AcceptSymbol(","));
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    QueryResult result;
    result.affected = inserted;
    result.message = std::to_string(inserted) + " row(s) inserted";
    return result;
  }

  // One WHERE atom:
  //   col (= | <> | != | < | <= | > | >=) lit
  //   col BETWEEN lit AND lit              (the AND belongs to BETWEEN)
  //   col IN (lit [, lit]*)
  // `=`/`<>`/IN use marker equality (col = NULL matches exactly the ⊥
  // cells); ordered comparisons exclude ⊥ by definition
  // (engine/predicate.h). Columns stay names here — resolution happens
  // at bind time (BindWhere), against whichever storage the caller
  // resolved.
  Result<ParsedAtom> WhereAtom() {
    SQLNF_ASSIGN_OR_RETURN(NamedRef col, ExpectNamedRef());
    ParsedAtom atom;
    atom.col = std::move(col.name);
    atom.col_offset = col.offset;
    if (AcceptKeyword("BETWEEN")) {
      atom.atom_kind = ParsedAtom::Kind::kBetween;
      SQLNF_ASSIGN_OR_RETURN(atom.lo, ExpectLiteral());
      SQLNF_RETURN_NOT_OK(ExpectKeyword("AND"));
      SQLNF_ASSIGN_OR_RETURN(atom.hi, ExpectLiteral());
      return atom;
    }
    if (AcceptKeyword("IN")) {
      atom.atom_kind = ParsedAtom::Kind::kIn;
      SQLNF_RETURN_NOT_OK(ExpectSymbol("("));
      do {
        SQLNF_ASSIGN_OR_RETURN(Value v, ExpectLiteral());
        atom.list.push_back(std::move(v));
      } while (AcceptSymbol(","));
      SQLNF_RETURN_NOT_OK(ExpectSymbol(")"));
      return atom;
    }
    atom.atom_kind = ParsedAtom::Kind::kCompare;
    if (AcceptSymbol("=")) {
      atom.op = CompareOp::kEq;
    } else if (AcceptSymbol("<>") || AcceptSymbol("!=")) {
      atom.op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      atom.op = CompareOp::kLe;
    } else if (AcceptSymbol("<")) {
      atom.op = CompareOp::kLt;
    } else if (AcceptSymbol(">=")) {
      atom.op = CompareOp::kGe;
    } else if (AcceptSymbol(">")) {
      atom.op = CompareOp::kGt;
    } else {
      return ParseErrorHere(
          "expected comparison operator, BETWEEN, or IN, got '" +
          Peek().text + "'");
    }
    SQLNF_ASSIGN_OR_RETURN(atom.value, ExpectLiteral());
    return atom;
  }

  // WHERE atom [AND atom]* [OR atom [AND atom]*]* → DNF, textual (AND
  // binds tighter than OR; no parenthesized grouping). No WHERE clause
  // yields an empty ParsedWhere, which binds to Predicate::True().
  Result<ParsedWhere> WhereClause() {
    ParsedWhere where;
    if (!AcceptKeyword("WHERE")) return where;
    do {
      std::vector<ParsedAtom> conj;
      do {
        SQLNF_ASSIGN_OR_RETURN(ParsedAtom atom, WhereAtom());
        conj.push_back(std::move(atom));
      } while (AcceptKeyword("AND"));
      where.disjuncts.push_back(std::move(conj));
    } while (AcceptKeyword("OR"));
    return where;
  }

  // SELECT after the keyword: projection, FROM, join chain, WHERE —
  // parse only, no storage access (shared by both execution paths).
  Result<ParsedSelect> ParseSelectStatement() {
    ParsedSelect ps;
    if (AcceptSymbol("*")) {
      ps.star = true;
    } else {
      do {
        SQLNF_ASSIGN_OR_RETURN(NamedRef col, ExpectNamedRef());
        ps.cols.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }
    SQLNF_RETURN_NOT_OK(ExpectKeyword("FROM"));
    SQLNF_ASSIGN_OR_RETURN(NamedRef table, ExpectNamedRef());
    ps.tables.push_back(std::move(table));
    while (AcceptKeyword("NATURAL")) {
      SQLNF_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      SQLNF_ASSIGN_OR_RETURN(NamedRef other, ExpectNamedRef());
      ps.tables.push_back(std::move(other));
    }
    SQLNF_ASSIGN_OR_RETURN(ps.where, WhereClause());
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    return ps;
  }

  // SHOW after the keyword (only SHOW TABLES exists).
  Status ParseShowStatement() {
    SQLNF_RETURN_NOT_OK(ExpectKeyword("TABLES"));
    return ExpectStatementEnd();
  }

  // DESCRIBE after the keyword: the table name.
  Result<NamedRef> ParseDescribeStatement() {
    SQLNF_ASSIGN_OR_RETURN(NamedRef table, ExpectNamedRef());
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    return table;
  }

  // ---- read-only statement binding, live (writer) side.

  Result<QueryResult> SelectLive(const ParsedSelect& ps)
      SQLNF_REQUIRES(writer_thread_role) {
    std::vector<TableRef> refs;
    refs.reserve(ps.tables.size());
    for (const NamedRef& t : ps.tables) {
      auto stored_or = db_->Find(t.name);
      if (!stored_or.ok()) {
        error_offset_ = static_cast<int>(t.offset);
        return stored_or.status();
      }
      refs.push_back({&(*stored_or)->schema(), &(*stored_or)->columns()});
    }
    return SelectCore(ps, refs, &error_offset_);
  }

  Result<QueryResult> SelectSnap(
      const ParsedSelect& ps,
      const std::map<std::string, TableSnapshot>& snaps) {
    std::vector<TableRef> refs;
    refs.reserve(ps.tables.size());
    for (const NamedRef& t : ps.tables) {
      auto it = snaps.find(t.name);
      if (it == snaps.end()) {
        error_offset_ = static_cast<int>(t.offset);
        return Status::NotFound("no table named '" + t.name + "'");
      }
      refs.push_back({&it->second.schema, it->second.columns.get()});
    }
    return SelectCore(ps, refs, &error_offset_);
  }

  Result<QueryResult> ShowLive() SQLNF_REQUIRES(writer_thread_role) {
    std::vector<std::pair<std::string, int>> tables;
    for (const std::string& name : db_->TableNames()) {
      auto stored = db_->Find(name);
      if (!stored.ok()) continue;  // raced drop cannot happen; defensive
      tables.emplace_back(name, (*stored)->num_rows());
    }
    return MakeShowResult(tables);
  }

  Result<QueryResult> DescribeLive(const NamedRef& table)
      SQLNF_REQUIRES(writer_thread_role) {
    auto stored_or = db_->Find(table.name);
    if (!stored_or.ok()) {
      error_offset_ = static_cast<int>(table.offset);
      return stored_or.status();
    }
    return MakeDescribeResult((*stored_or)->schema(),
                              (*stored_or)->sigma());
  }

  // ---- write statements (execute as they parse).

  Result<QueryResult> Update() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectKeyword("SET"));
    SQLNF_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectSymbol("="));
    SQLNF_ASSIGN_OR_RETURN(Value value, ExpectLiteral());
    SQLNF_ASSIGN_OR_RETURN(const StoredTable* stored, db_->Find(name));
    SQLNF_ASSIGN_OR_RETURN(AttributeId column,
                           stored->schema().FindAttribute(col));
    SQLNF_ASSIGN_OR_RETURN(ParsedWhere where, WhereClause());
    SQLNF_ASSIGN_OR_RETURN(
        Predicate conditions,
        BindWhere(where, stored->schema(), &error_offset_));
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_ASSIGN_OR_RETURN(int changed,
                           db_->Update(name, conditions, column, value));
    QueryResult result;
    result.affected = changed;
    result.message = std::to_string(changed) + " row(s) updated";
    return result;
  }

  Result<QueryResult> Delete() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_RETURN_NOT_OK(ExpectKeyword("FROM"));
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_ASSIGN_OR_RETURN(const StoredTable* stored, db_->Find(name));
    SQLNF_ASSIGN_OR_RETURN(ParsedWhere where, WhereClause());
    SQLNF_ASSIGN_OR_RETURN(
        Predicate conditions,
        BindWhere(where, stored->schema(), &error_offset_));
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_ASSIGN_OR_RETURN(int removed, db_->Delete(name, conditions));
    QueryResult result;
    result.affected = removed;
    result.message = std::to_string(removed) + " row(s) deleted";
    return result;
  }

  Result<QueryResult> Drop() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_RETURN_NOT_OK(db_->DropTable(name));
    QueryResult result;
    result.message = "dropped table " + name;
    return result;
  }

  // VACUUM t: order-preserving dictionary compaction (dead codes
  // reclaimed, codes canonicalized — Database::CompactTable). Barred
  // inside a transaction.
  Result<QueryResult> Vacuum() SQLNF_REQUIRES(writer_thread_role) {
    SQLNF_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_ASSIGN_OR_RETURN(int retired, db_->CompactTable(name));
    QueryResult result;
    result.affected = retired;
    result.message = "vacuumed " + name + ": " + std::to_string(retired) +
                     " dictionary entries reclaimed";
    return result;
  }

  // BEGIN / COMMIT / ROLLBACK, each with an optional TRANSACTION or
  // WORK noise word. Statements between BEGIN and COMMIT take effect
  // (and become visible to snapshot readers) only at COMMIT; ROLLBACK
  // restores every touched table bit-identically.
  Result<QueryResult> Begin() SQLNF_REQUIRES(writer_thread_role) {
    AcceptKeyword("TRANSACTION") || AcceptKeyword("WORK");
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_RETURN_NOT_OK(db_->Begin());
    QueryResult result;
    result.message = "transaction started";
    return result;
  }

  Result<QueryResult> TxnEnd(bool commit) SQLNF_REQUIRES(writer_thread_role) {
    AcceptKeyword("TRANSACTION") || AcceptKeyword("WORK");
    SQLNF_RETURN_NOT_OK(ExpectStatementEnd());
    SQLNF_RETURN_NOT_OK(commit ? db_->Commit() : db_->Rollback());
    QueryResult result;
    result.message =
        commit ? "transaction committed" : "transaction rolled back";
    return result;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Database* db_;
  int error_offset_ = -1;
};

}  // namespace

Result<QueryResult> SqlSession::Execute(std::string_view statement,
                                        int* error_offset) {
  int lex_offset = -1;
  auto tokens_or = Lex(statement, &lex_offset);
  if (!tokens_or.ok()) {
    if (error_offset != nullptr) *error_offset = lex_offset;
    return tokens_or.status();
  }
  Parser parser(std::move(*tokens_or), db_);
  Result<QueryResult> result = parser.ParseAndExecute();
  if (!result.ok() && error_offset != nullptr) {
    *error_offset = parser.error_offset();
  }
  return result;
}

Result<QueryResult> ExecuteReadOnly(
    const std::map<std::string, TableSnapshot>& snapshots,
    std::string_view statement, int* error_offset) {
  int lex_offset = -1;
  auto tokens_or = Lex(statement, &lex_offset);
  if (!tokens_or.ok()) {
    if (error_offset != nullptr) *error_offset = lex_offset;
    return tokens_or.status();
  }
  Parser parser(std::move(*tokens_or), /*db=*/nullptr);
  Result<QueryResult> result = parser.ParseAndExecuteReadOnly(snapshots);
  if (!result.ok() && error_offset != nullptr) {
    *error_offset = parser.error_offset();
  }
  return result;
}

namespace {

/// True when `statement` holds nothing but '--' line comments and
/// whitespace.
bool OnlyComments(std::string_view statement) {
  for (const std::string& line :
       SplitString(std::string(statement), '\n')) {
    std::string_view stripped = StripAsciiWhitespace(line);
    if (!stripped.empty() && !StartsWith(stripped, "--")) return false;
  }
  return true;
}

}  // namespace

std::vector<SqlStatement> SplitSqlStatements(std::string_view script) {
  std::vector<SqlStatement> statements;
  size_t start = 0;
  bool in_string = false;
  auto flush = [&](size_t end) {
    std::string_view piece = script.substr(start, end - start);
    if (!StripAsciiWhitespace(piece).empty() && !OnlyComments(piece)) {
      statements.push_back({piece, start});
    }
    start = end + 1;
  };
  for (size_t i = 0; i < script.size(); ++i) {
    const char c = script[i];
    // '--' line comments outside string literals run to end of line;
    // their content — apostrophes and semicolons included — must not
    // affect splitting. The slices keep the comment text (the lexer
    // skips it), preserving script byte offsets.
    if (!in_string && c == '-' && i + 1 < script.size() &&
        script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      continue;
    }
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) flush(i);
  }
  flush(script.size());
  return statements;
}

bool StatementIsReadOnly(std::string_view statement) {
  size_t i = 0;
  while (i < statement.size()) {
    const char c = statement[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < statement.size() && statement[i + 1] == '-') {
      while (i < statement.size() && statement[i] != '\n') ++i;
      continue;
    }
    break;
  }
  std::string word;
  while (i < statement.size() &&
         (std::isalnum(static_cast<unsigned char>(statement[i])) ||
          statement[i] == '_')) {
    word += static_cast<char>(
        std::toupper(static_cast<unsigned char>(statement[i])));
    ++i;
  }
  return word == "SELECT" || word == "SHOW" || word == "DESCRIBE";
}

Result<std::vector<QueryResult>> SqlSession::ExecuteScript(
    std::string_view script) {
  std::vector<QueryResult> results;
  for (const SqlStatement& statement : SplitSqlStatements(script)) {
    SQLNF_ASSIGN_OR_RETURN(QueryResult result, Execute(statement.text));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace sqlnf
