#include "sqlnf/engine/session.h"

#include <utility>

#include "sqlnf/constraints/parser.h"
#include "sqlnf/constraints/serialize.h"
#include "sqlnf/decomposition/vrnf_decompose.h"
#include "sqlnf/discovery/discover.h"
#include "sqlnf/engine/ddl.h"
#include "sqlnf/engine/validate.h"
#include "sqlnf/engine/writer_role.h"
#include "sqlnf/util/json.h"
#include "sqlnf/util/parallel.h"

namespace sqlnf {

// ------------------------------------------------------------ validation

std::string ValidationReport::RenderText() const {
  std::string out = "table: " + std::to_string(rows) + " rows x " +
                    std::to_string(columns) + " columns; validating " +
                    std::to_string(total) + " constraint(s), threads=" +
                    std::to_string(threads) + "\n";
  for (const ConstraintCheck& check : checks) {
    if (check.violated) {
      out += "  VIOLATED   " + check.text + "  (rows " +
             std::to_string(check.row1) + ", " +
             std::to_string(check.row2) + ")\n";
    } else {
      out += "  satisfied  " + check.text + "\n";
    }
  }
  out += std::to_string(violated) + " of " + std::to_string(total) +
         " constraint(s) violated\n";
  return out;
}

std::string ValidationReport::RenderJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows");
  w.Int(rows);
  w.Key("columns");
  w.Int(columns);
  w.Key("threads");
  w.Int(threads);
  w.Key("constraints");
  w.Int(static_cast<int64_t>(total));
  w.Key("violated");
  w.Int(violated);
  w.Key("checks");
  w.BeginArray();
  for (const ConstraintCheck& check : checks) {
    w.BeginObject();
    w.Key("constraint");
    w.String(check.text);
    w.Key("violated");
    w.Bool(check.violated);
    if (check.violated) {
      w.Key("witness_rows");
      w.BeginArray();
      w.Int(check.row1);
      w.Int(check.row2);
      w.EndArray();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

ValidationReport ValidateConstraints(const TableSchema& schema,
                                     const EncodedTable& enc,
                                     const ConstraintSet& sigma,
                                     int threads) {
  ValidationReport report;
  report.rows = enc.num_rows();
  report.columns = schema.num_attributes();
  report.threads = threads;
  report.total = sigma.All().size();
  const ParallelOptions par{threads};
  auto add = [&](std::string text, const std::optional<Violation>& v) {
    ConstraintCheck check;
    check.text = std::move(text);
    if (v) {
      check.violated = true;
      check.row1 = v->row1;
      check.row2 = v->row2;
      ++report.violated;
    }
    report.checks.push_back(std::move(check));
  };
  for (const auto& fd : sigma.fds()) {
    add(fd.ToString(schema), FindFdViolationEncoded(enc, fd, par));
  }
  for (const auto& key : sigma.keys()) {
    add(key.ToString(schema), FindKeyViolationEncoded(enc, key, par));
  }
  return report;
}

// ------------------------------------------------------------- discovery

std::string DiscoveryReport::RenderJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows");
  w.Int(rows);
  w.Key("columns");
  w.Int(columns);
  w.Key("null_free");
  w.String(null_free);
  auto list = [&w](const char* key, const std::vector<std::string>& xs) {
    w.Key(key);
    w.BeginArray();
    for (const std::string& x : xs) w.String(x);
    w.EndArray();
  };
  list("certain_fds", c_fds);
  list("possible_fds", p_fds);
  list("certain_keys", c_keys);
  list("possible_keys", p_keys);
  w.Key("classification");
  w.BeginObject();
  w.Key("nn");
  w.Int(nn_count);
  w.Key("p");
  w.Int(p_count);
  w.Key("c");
  w.Int(c_count);
  w.Key("total");
  w.Int(t_count);
  w.Key("lambda");
  w.Int(lambda_count);
  w.EndObject();
  w.EndObject();
  return std::move(w).Take();
}

std::string NormalizationOutcome::RenderJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("normalized");
  w.Bool(normalized);
  w.Key("design");
  w.String(design);
  w.Key("decomposition");
  w.String(decomposition);
  w.Key("ddl");
  w.String(ddl);
  w.EndObject();
  return std::move(w).Take();
}

// -------------------------------------------------------------- registry

Result<std::shared_ptr<const ConstraintSet>>
SessionRegistry::ParsedConstraints(const TableSchema& schema,
                                   const std::string& text) {
  // The cache key covers the resolution context (the column names)
  // besides the text: DROP + CREATE can reuse a table name with a
  // different schema, and the same text must then re-parse.
  std::string key;
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    key += schema.attribute_name(a);
    key += ',';
  }
  key += '\n';
  key += text;
  {
    MutexLock lock(cache_mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  SQLNF_ASSIGN_OR_RETURN(ConstraintSet sigma,
                         ParseConstraintSet(schema, text));
  auto shared = std::make_shared<const ConstraintSet>(std::move(sigma));
  MutexLock lock(cache_mu_);
  ++misses_;
  cache_.emplace(std::move(key), shared);
  return shared;
}

int64_t SessionRegistry::cache_hits() const {
  MutexLock lock(cache_mu_);
  return hits_;
}

int64_t SessionRegistry::cache_misses() const {
  MutexLock lock(cache_mu_);
  return misses_;
}

// --------------------------------------------------------------- session

ResultSet Session::Execute(const std::string& script) {
  const std::vector<SqlStatement> statements = SplitSqlStatements(script);
  bool all_read_only = true;
  for (const SqlStatement& st : statements) {
    if (!StatementIsReadOnly(st.text)) {
      all_read_only = false;
      break;
    }
  }
  // Inside an open transaction (CLI shell), reads must observe the
  // transaction's own uncommitted writes — snapshots never do — so the
  // script takes the writer path regardless.
  if (all_read_only && !registry_->db()->InTransaction()) {
    return ExecuteSnapshots(script, statements);
  }
  return ExecuteWriter(script, statements);
}

ResultSet Session::ExecuteSnapshots(
    std::string_view script, const std::vector<SqlStatement>& statements) {
  // One lock acquisition for the whole script: every statement binds
  // against the same committed epoch set, then executes lock-free.
  const std::map<std::string, TableSnapshot> snaps =
      registry_->db()->SnapshotAll();
  ResultSet rs;
  for (size_t i = 0; i < statements.size(); ++i) {
    int offset = -1;
    Result<QueryResult> r =
        ExecuteReadOnly(snaps, statements[i].text, &offset);
    if (!r.ok()) {
      const int absolute =
          offset >= 0 ? offset + static_cast<int>(statements[i].offset)
                      : -1;
      rs.status = r.status();
      rs.error = MakeErrorDetail(r.status(), script,
                                 static_cast<int>(i), absolute);
      return rs;
    }
    rs.statements.push_back(std::move(*r));
  }
  return rs;
}

ResultSet Session::ExecuteWriter(
    std::string_view script, const std::vector<SqlStatement>& statements) {
  MutexLock lock(registry_->writer_mu());
  WriterScope writer;  // this thread IS the writer while the lock is held
  SqlSession sql(registry_->db());
  ResultSet rs;
  for (size_t i = 0; i < statements.size(); ++i) {
    int offset = -1;
    Result<QueryResult> r = sql.Execute(statements[i].text, &offset);
    if (!r.ok()) {
      const int absolute =
          offset >= 0 ? offset + static_cast<int>(statements[i].offset)
                      : -1;
      rs.status = r.status();
      rs.error = MakeErrorDetail(r.status(), script,
                                 static_cast<int>(i), absolute);
      break;
    }
    rs.statements.push_back(std::move(*r));
  }
  // A transaction that outlives the request would be silently joined by
  // whichever session takes the writer mutex next — roll it back unless
  // this session is explicitly single-user (the CLI shell).
  if (!options_.allow_open_transaction &&
      registry_->db()->InTransaction()) {
    (void)registry_->db()->Rollback();
    if (rs.ok()) {
      rs.status = Status::FailedPrecondition(
          "transaction left open at end of script; rolled back");
      rs.error = MakeErrorDetail(rs.status, script, -1, -1);
    }
  }
  return rs;
}

Result<ValidationReport> Session::Validate(const std::string& table,
                                           const std::string& constraints) {
  SQLNF_ASSIGN_OR_RETURN(TableSnapshot snap,
                         registry_->db()->GetSnapshot(table));
  SQLNF_ASSIGN_OR_RETURN(std::shared_ptr<const ConstraintSet> sigma,
                         registry_->ParsedConstraints(snap.schema,
                                                      constraints));
  return ValidateConstraints(snap.schema, *snap.columns, *sigma,
                             options_.threads);
}

Result<DiscoveryReport> Session::Discover(const std::string& table,
                                          int max_rows) {
  SQLNF_ASSIGN_OR_RETURN(TableSnapshot snap,
                         registry_->db()->GetSnapshot(table));
  const Table data = snap.Materialize();
  DiscoveryOptions options;
  options.hitting.max_size = 5;
  options.threads = options_.threads;
  if (max_rows > 0) options.max_rows = max_rows;
  SQLNF_ASSIGN_OR_RETURN(DiscoveryResult mined,
                         DiscoverConstraints(data, options));

  TableSchema schema = data.schema();
  (void)schema.SetNfs(mined.null_free_columns);
  DiscoveryReport report;
  report.rows = data.num_rows();
  report.columns = data.num_columns();
  report.null_free = schema.FormatSet(schema.nfs());
  for (const auto& fd : mined.c_fds) {
    report.c_fds.push_back(fd.ToString(schema));
  }
  for (const auto& fd : mined.p_fds) {
    report.p_fds.push_back(fd.ToString(schema));
  }
  for (const auto& key : mined.c_keys) {
    report.c_keys.push_back(key.ToString(schema));
  }
  for (const auto& key : mined.p_keys) {
    report.p_keys.push_back(key.ToString(schema));
  }
  const FdClassification cls = ClassifyDiscovered(data, mined);
  report.nn_count = cls.nn_count;
  report.p_count = cls.p_count;
  report.c_count = cls.c_count;
  report.t_count = cls.t_count;
  report.lambda_count = cls.lambda_count;
  return report;
}

Result<NormalizationOutcome> Session::Normalize(const std::string& table) {
  SQLNF_ASSIGN_OR_RETURN(TableSnapshot snap,
                         registry_->db()->GetSnapshot(table));
  const Table data = snap.Materialize();
  DiscoveryOptions options;
  options.hitting.max_size = 4;
  options.threads = options_.threads;
  SQLNF_ASSIGN_OR_RETURN(DiscoveryResult mined,
                         DiscoverConstraints(data, options));

  TableSchema schema = data.schema();
  (void)schema.SetNfs(mined.null_free_columns);
  const FdClassification cls = ClassifyDiscovered(data, mined);
  ConstraintSet sigma;
  for (const auto& fd : cls.lambda_fds) sigma.AddUniqueFd(fd);
  for (const auto& key : mined.c_keys) sigma.AddUniqueKey(key);
  SchemaDesign design{schema, sigma};

  NormalizationOutcome out;
  out.design = FormatDesign(design);
  if (sigma.fds().empty()) return out;  // nothing to normalize
  SQLNF_ASSIGN_OR_RETURN(VrnfResult result, VrnfDecompose(design));
  out.decomposition = result.decomposition.ToString(schema);
  out.ddl = EmitDecompositionDdl(design, result);
  out.normalized = true;
  return out;
}

}  // namespace sqlnf
