#include "sqlnf/engine/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace sqlnf {

namespace {

struct RawField {
  std::string text;
  bool quoted = false;
};

// Splits CSV text into records of fields, honoring quotes.
Result<std::vector<std::vector<RawField>>> Tokenize(std::string_view text) {
  std::vector<std::vector<RawField>> records;
  std::vector<RawField> record;
  RawField field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field = RawField{};
    field_started = false;
  };
  auto end_record = [&]() {
    // A fully empty line (no separators, no quotes, no text) is not a
    // 1-field record — skip it, as RFC 4180 readers do. Treating it as
    // a record used to surface as a misleading arity error.
    if (record.empty() && !field_started) return;
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.text += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.text += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        // A quote may only OPEN a field; one after field text (quoted
        // or not) is malformed.
        if (field_started) {
          return Status::ParseError(
              field.quoted ? "quote after closing quote"
                           : "stray quote inside unquoted field");
        }
        in_quotes = true;
        field.quoted = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_record();
        break;
      default:
        if (field.quoted) {
          // "abc"def — previously the trailing text was silently
          // concatenated onto the quoted field.
          return Status::ParseError("text after closing quote");
        }
        field.text += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quote");
  // Flush a trailing record without final newline.
  if (field_started || !record.empty() || !field.text.empty()) {
    end_record();
  }
  return records;
}

}  // namespace

Result<Table> ReadCsvString(std::string_view text,
                            const CsvOptions& options) {
  SQLNF_ASSIGN_OR_RETURN(auto records, Tokenize(text));
  if (records.empty()) {
    return Status::ParseError("CSV input has no records");
  }

  size_t first_data = 0;
  std::vector<std::string> names;
  if (options.has_header) {
    for (const RawField& f : records[0]) names.push_back(f.text);
    first_data = 1;
  } else {
    for (size_t i = 0; i < records[0].size(); ++i) {
      names.push_back("c" + std::to_string(i));
    }
  }
  SQLNF_ASSIGN_OR_RETURN(TableSchema schema,
                         TableSchema::Make(options.table_name, names));
  Table table(std::move(schema));
  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != names.size()) {
      return Status::ParseError(
          "record " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(names.size()));
    }
    std::vector<Value> row;
    row.reserve(names.size());
    for (const RawField& f : records[r]) {
      if (!f.quoted && f.text == options.null_token) {
        row.push_back(Value::Null());
      } else {
        row.push_back(Value::Str(f.text));
      }
    }
    SQLNF_RETURN_NOT_OK(table.AddRow(Tuple(std::move(row))));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  CsvOptions opts = options;
  if (opts.table_name == "csv") opts.table_name = path;
  return ReadCsvString(buffer.str(), opts);
}

namespace {

std::string EscapeField(const std::string& text,
                        const std::string& null_token) {
  bool needs_quotes = text == null_token ||
                      text.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return text;
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (int i = 0; i < table.num_columns(); ++i) {
      if (i > 0) out += ',';
      out += EscapeField(table.schema().attribute_name(i),
                         options.null_token);
    }
    out += '\n';
  }
  for (const Tuple& t : table.rows()) {
    for (int i = 0; i < t.size(); ++i) {
      if (i > 0) out += ',';
      const Value& v = t[i];
      std::string field =
          v.is_null() ? options.null_token
                      : EscapeField(v.ToString(), options.null_token);
      // A lone empty field would render as a blank line, which readers
      // (ours included) skip — quote it to keep the record.
      if (t.size() == 1 && field.empty()) field = "\"\"";
      out += field;
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for write");
  out << WriteCsvString(table, options);
  return out ? Status::OK() : Status::IoError("write failed: " + path);
}

}  // namespace sqlnf
