// CSV import/export for Table.
//
// Minimal RFC-4180-style dialect: comma separator, double-quote quoting
// with "" escapes, one record per line (embedded newlines inside quotes
// are supported on read). The token NULL (unquoted) denotes ⊥; a quoted
// "NULL" stays the string NULL.

#ifndef SQLNF_ENGINE_CSV_H_
#define SQLNF_ENGINE_CSV_H_

#include <string>
#include <string_view>

#include "sqlnf/core/table.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

struct CsvOptions {
  bool has_header = true;       // first record carries column names
  std::string null_token = "NULL";
  std::string table_name = "csv";
};

/// Parses CSV text into a table. Without a header, columns are named
/// c0, c1, .... All rows must have the same arity.
Result<Table> ReadCsvString(std::string_view text,
                            const CsvOptions& options = {});

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes a table (header + rows). ⊥ becomes the null token;
/// values equal to the null token, or containing separators/quotes,
/// are quoted.
std::string WriteCsvString(const Table& table,
                           const CsvOptions& options = {});

/// Writes a CSV file to disk.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_CSV_H_
