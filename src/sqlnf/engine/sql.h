// A small SQL front end over the constraint-enforcing Database.
//
// Supported statements (case-insensitive keywords, ';'-terminated):
//
//   CREATE TABLE t (
//     col TEXT [NOT NULL], ...,
//     [PRIMARY KEY (cols),]            -- c-key + NOT NULL columns
//     [UNIQUE (cols),]                 -- possible key p<cols>
//     [CERTAIN KEY (cols),]            -- c-key c<cols>  (SQL extension)
//     [POSSIBLE KEY (cols),]           -- p-key          (SQL extension)
//     [CERTAIN FD (lhs -> rhs),]       -- c-FD           (SQL extension)
//     [POSSIBLE FD (lhs -> rhs)]       -- p-FD           (SQL extension)
//   );
//   INSERT INTO t VALUES (lit, ...) [, (lit, ...)]*;
//   SELECT * | col[, col]* FROM t [NATURAL JOIN u]* [WHERE pred];
//   UPDATE t SET col = lit [WHERE pred];
//   DELETE FROM t [WHERE pred];
//   DROP TABLE t;
//   VACUUM t;                            -- dictionary compaction
//   SHOW TABLES;
//   DESCRIBE t;
//   BEGIN [TRANSACTION|WORK]; COMMIT; ROLLBACK;
//
// WHERE predicates (AND binds tighter than OR; no parentheses):
//
//   pred := conj [OR conj]*
//   conj := atom [AND atom]*
//   atom := col (= | <> | != | < | <= | > | >=) lit
//         | col BETWEEN lit AND lit      -- >= lit AND <= lit
//         | col IN (lit [, lit]*)
//
// Literals: 'single-quoted strings' ('' escapes a quote), integers,
// NULL. Types are declarative only (everything is a Value). WHERE
// semantics are MARKER semantics, not SQL's three-valued WHERE (this
// engine is about schema design): `=`/`<>`/IN use marker equality, so
// col = NULL matches exactly the ⊥ rows, and ordered comparisons
// (`<`/`<=`/`>`/`>=`/BETWEEN) exclude ⊥ by definition — a ⊥ cell never
// satisfies one, nor does a NULL bound (engine/predicate.h). The whole
// clause compiles to branch-free integer tests on dictionary codes.
//
// The CERTAIN/POSSIBLE clauses are this library's SQL extension: they
// declare the paper's constraint classes, and the Database enforces
// them on every write — including certain keys over nullable columns,
// which standard SQL cannot express declaratively.
//
// Transactions: between BEGIN and COMMIT, DML accumulates in the
// Database's undo log (engine/txn.h) — an insert fanned out over N
// normalized component tables commits or aborts as one unit, and
// ROLLBACK restores every touched table bit-identically. A statement
// rejected mid-transaction rolls back only itself; DDL is barred
// while a transaction is open.
//
// TWO EXECUTION PATHS, ONE PARSER. Statements are parsed into
// database-independent structures first and bound to storage second,
// so the same grammar serves both sides of the concurrency contract:
// SqlSession drives live state and requires the WriterThread role,
// while ExecuteReadOnly binds SELECT / SHOW / DESCRIBE against an
// immutable snapshot map and is safe from any reader thread — no
// capability ever crosses an indirection boundary (DESIGN.md §8).

#ifndef SQLNF_ENGINE_SQL_H_
#define SQLNF_ENGINE_SQL_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/result.h"
#include "sqlnf/engine/writer_role.h"
#include "sqlnf/util/status.h"
#include "sqlnf/util/thread_annotations.h"

namespace sqlnf {

/// One statement of a script: a slice of the original text (comments
/// included — the lexer skips them) plus its byte offset in the
/// script, so statement-relative error offsets can be mapped back to
/// script coordinates (engine/result.h MakeErrorDetail).
struct SqlStatement {
  std::string_view text;
  size_t offset = 0;
};

/// Splits a script on ';' outside string literals and '--' comments,
/// dropping empty and comment-only pieces. Pure text processing.
std::vector<SqlStatement> SplitSqlStatements(std::string_view script);

/// True when the statement's leading keyword is SELECT / SHOW /
/// DESCRIBE — the statements ExecuteReadOnly can serve from snapshots.
bool StatementIsReadOnly(std::string_view statement);

/// Executes one read-only statement (SELECT / SHOW / DESCRIBE) against
/// a consistent snapshot map (Database::SnapshotAll). Role-free: reads
/// only the immutable snapshot columns, so any number of threads can
/// call it concurrently with the single writer. On error, when
/// `error_offset` is non-null it receives the byte offset of the
/// offending token within `statement` (-1 when unlocatable).
Result<QueryResult> ExecuteReadOnly(
    const std::map<std::string, TableSnapshot>& snapshots,
    std::string_view statement, int* error_offset = nullptr);

/// Executes SQL against a Database. Stateless besides the Database
/// pointer; statements are independent.
///
/// A session drives DML/DDL through the Database's live state, so it
/// belongs to the single writer thread: both entry points require the
/// WriterThread role (engine/writer_role.h). Reader threads query
/// snapshots (ExecuteReadOnly above), not SqlSession.
class SqlSession {
 public:
  /// `db` must outlive the session.
  explicit SqlSession(Database* db) : db_(db) {}

  /// Executes exactly one statement (trailing ';' optional). On error,
  /// `error_offset` (when non-null) receives the byte offset of the
  /// offending token within `statement`, or -1 when the failure has no
  /// textual anchor (e.g. a constraint violation).
  Result<QueryResult> Execute(std::string_view statement,
                              int* error_offset = nullptr)
      SQLNF_REQUIRES(writer_thread_role);

  /// Executes a ';'-separated script, stopping at the first error.
  /// '--' line comments are ignored.
  Result<std::vector<QueryResult>> ExecuteScript(std::string_view script)
      SQLNF_REQUIRES(writer_thread_role);

 private:
  Database* db_;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_SQL_H_
