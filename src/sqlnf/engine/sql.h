// A small SQL front end over the constraint-enforcing Database.
//
// Supported statements (case-insensitive keywords, ';'-terminated):
//
//   CREATE TABLE t (
//     col TEXT [NOT NULL], ...,
//     [PRIMARY KEY (cols),]            -- c-key + NOT NULL columns
//     [UNIQUE (cols),]                 -- possible key p<cols>
//     [CERTAIN KEY (cols),]            -- c-key c<cols>  (SQL extension)
//     [POSSIBLE KEY (cols),]           -- p-key          (SQL extension)
//     [CERTAIN FD (lhs -> rhs),]       -- c-FD           (SQL extension)
//     [POSSIBLE FD (lhs -> rhs)]       -- p-FD           (SQL extension)
//   );
//   INSERT INTO t VALUES (lit, ...) [, (lit, ...)]*;
//   SELECT * | col[, col]* FROM t [NATURAL JOIN u]* [WHERE pred];
//   UPDATE t SET col = lit [WHERE pred];
//   DELETE FROM t [WHERE pred];
//   DROP TABLE t;
//   VACUUM t;                            -- dictionary compaction
//   SHOW TABLES;
//   DESCRIBE t;
//   BEGIN [TRANSACTION|WORK]; COMMIT; ROLLBACK;
//
// WHERE predicates (AND binds tighter than OR; no parentheses):
//
//   pred := conj [OR conj]*
//   conj := atom [AND atom]*
//   atom := col (= | <> | != | < | <= | > | >=) lit
//         | col BETWEEN lit AND lit      -- >= lit AND <= lit
//         | col IN (lit [, lit]*)
//
// Literals: 'single-quoted strings' ('' escapes a quote), integers,
// NULL. Types are declarative only (everything is a Value). WHERE
// semantics are MARKER semantics, not SQL's three-valued WHERE (this
// engine is about schema design): `=`/`<>`/IN use marker equality, so
// col = NULL matches exactly the ⊥ rows, and ordered comparisons
// (`<`/`<=`/`>`/`>=`/BETWEEN) exclude ⊥ by definition — a ⊥ cell never
// satisfies one, nor does a NULL bound (engine/predicate.h). The whole
// clause compiles to branch-free integer tests on dictionary codes.
//
// The CERTAIN/POSSIBLE clauses are this library's SQL extension: they
// declare the paper's constraint classes, and the Database enforces
// them on every write — including certain keys over nullable columns,
// which standard SQL cannot express declaratively.
//
// Transactions: between BEGIN and COMMIT, DML accumulates in the
// Database's undo log (engine/txn.h) — an insert fanned out over N
// normalized component tables commits or aborts as one unit, and
// ROLLBACK restores every touched table bit-identically. A statement
// rejected mid-transaction rolls back only itself; DDL is barred
// while a transaction is open.

#ifndef SQLNF_ENGINE_SQL_H_
#define SQLNF_ENGINE_SQL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sqlnf/engine/catalog.h"
#include "sqlnf/engine/writer_role.h"
#include "sqlnf/util/status.h"
#include "sqlnf/util/thread_annotations.h"

namespace sqlnf {

/// Outcome of one statement.
struct QueryResult {
  std::optional<Table> rows;  // SELECT / SHOW / DESCRIBE payload
  int affected = 0;           // DML row count
  std::string message;        // human-readable summary

  std::string ToString() const;
};

/// Executes SQL against a Database. Stateless besides the Database
/// pointer; statements are independent.
///
/// A session drives DML/DDL through the Database's live state, so it
/// belongs to the single writer thread: both entry points require the
/// WriterThread role (engine/writer_role.h). Reader threads query
/// snapshots (GetSnapshot + SelectFromSnapshot), not SQL.
class SqlSession {
 public:
  /// `db` must outlive the session.
  explicit SqlSession(Database* db) : db_(db) {}

  /// Executes exactly one statement (trailing ';' optional).
  Result<QueryResult> Execute(std::string_view statement)
      SQLNF_REQUIRES(writer_thread_role);

  /// Executes a ';'-separated script, stopping at the first error.
  /// '--' line comments are ignored.
  Result<std::vector<QueryResult>> ExecuteScript(std::string_view script)
      SQLNF_REQUIRES(writer_thread_role);

 private:
  Database* db_;
};

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_SQL_H_
