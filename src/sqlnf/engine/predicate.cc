#include "sqlnf/engine/predicate.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>
#include <utility>

namespace sqlnf {

PredicateAtom Cmp(AttributeId column, CompareOp op, Value value) {
  PredicateAtom atom;
  atom.column = column;
  atom.op = op;
  atom.value = std::move(value);
  return atom;
}

PredicateAtom Between(AttributeId column, Value lo, Value hi) {
  PredicateAtom atom;
  atom.column = column;
  atom.op = CompareOp::kBetween;
  atom.value = std::move(lo);
  atom.upper = std::move(hi);
  return atom;
}

PredicateAtom In(AttributeId column, std::vector<Value> list) {
  PredicateAtom atom;
  atom.column = column;
  atom.op = CompareOp::kIn;
  atom.list = std::move(list);
  return atom;
}

Status ValidatePredicate(const Predicate& pred, int num_columns) {
  for (const Conjunction& conj : pred.disjuncts) {
    for (const PredicateAtom& atom : conj) {
      if (atom.column < 0 || atom.column >= num_columns) {
        return Status::Invalid("predicate column " +
                               std::to_string(atom.column) +
                               " out of range");
      }
      if (atom.op == CompareOp::kIn && !atom.upper.is_null()) {
        return Status::Invalid("IN atom carries a BETWEEN upper bound");
      }
      if (atom.op != CompareOp::kIn && !atom.list.empty()) {
        return Status::Invalid("non-IN atom carries an IN list");
      }
      if (atom.op != CompareOp::kBetween && atom.op != CompareOp::kIn &&
          !atom.upper.is_null()) {
        return Status::Invalid("upper bound outside BETWEEN");
      }
    }
  }
  return Status::OK();
}

bool MatchesAtom(const Value& cell, const PredicateAtom& atom) {
  switch (atom.op) {
    case CompareOp::kEq:
      return cell == atom.value;
    case CompareOp::kNe:
      return !(cell == atom.value);
    case CompareOp::kLt:
      if (cell.is_null() || atom.value.is_null()) return false;
      return cell < atom.value;
    case CompareOp::kLe:
      if (cell.is_null() || atom.value.is_null()) return false;
      return !(atom.value < cell);
    case CompareOp::kGt:
      if (cell.is_null() || atom.value.is_null()) return false;
      return atom.value < cell;
    case CompareOp::kGe:
      if (cell.is_null() || atom.value.is_null()) return false;
      return !(cell < atom.value);
    case CompareOp::kBetween:
      if (cell.is_null() || atom.value.is_null() || atom.upper.is_null()) {
        return false;
      }
      return !(cell < atom.value) && !(atom.upper < cell);
    case CompareOp::kIn:
      for (const Value& member : atom.list) {
        if (cell == member) return true;
      }
      return false;
  }
  return false;
}

bool MatchesPredicate(const Tuple& t, const Predicate& pred) {
  for (const Conjunction& conj : pred.disjuncts) {
    bool all = true;
    for (const PredicateAtom& atom : conj) {
      if (!MatchesAtom(t[atom.column], atom)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

CompiledPredicate::CompiledPredicate(const EncodedTable& enc,
                                     const Predicate& pred) {
  for (const Conjunction& conj : pred.disjuncts) {
    std::vector<Atom> compiled;
    compiled.reserve(conj.size());
    bool feasible = true;
    for (const PredicateAtom& atom : conj) {
      assert(enc.encoded_columns().Contains(atom.column));
      const uint32_t d =
          static_cast<uint32_t>(enc.dictionary_size(atom.column));
      Atom out;
      out.codes = enc.column(atom.column).data();
      out.d = d;
      auto rank_interval = [&](uint32_t lo, uint32_t hi) {
        // Half-open [lo, hi) over ranks; empty interval kills the
        // conjunction. On an ordered dictionary rank is the identity,
        // so the same interval tests raw codes with no gather —
        // kNullCode wraps far above any span, keeping ⊥ excluded.
        if (lo >= hi) {
          feasible = false;
          return;
        }
        out.lo = lo;
        out.span = hi - lo;
        if (enc.DictionaryOrdered(atom.column)) {
          out.kind = Atom::Kind::kCodeInterval;
        } else {
          out.kind = Atom::Kind::kRankInterval;
          out.rank = enc.CodeRanks(atom.column).data();
        }
      };
      switch (atom.op) {
        case CompareOp::kEq:
          // A kMissingCode want matches no cell — no special case
          // needed, no stored code ever equals it.
          out.kind = Atom::Kind::kEqCode;
          out.want = enc.LookupCode(atom.column, atom.value);
          break;
        case CompareOp::kNe:
          // want == kMissingCode correctly matches every row.
          out.kind = Atom::Kind::kNeCode;
          out.want = enc.LookupCode(atom.column, atom.value);
          break;
        case CompareOp::kLt:
          if (atom.value.is_null()) {
            feasible = false;
            break;
          }
          rank_interval(0, enc.LowerBoundRank(atom.column, atom.value));
          break;
        case CompareOp::kLe:
          if (atom.value.is_null()) {
            feasible = false;
            break;
          }
          rank_interval(0, enc.UpperBoundRank(atom.column, atom.value));
          break;
        case CompareOp::kGt:
          if (atom.value.is_null()) {
            feasible = false;
            break;
          }
          rank_interval(enc.UpperBoundRank(atom.column, atom.value), d);
          break;
        case CompareOp::kGe:
          if (atom.value.is_null()) {
            feasible = false;
            break;
          }
          rank_interval(enc.LowerBoundRank(atom.column, atom.value), d);
          break;
        case CompareOp::kBetween:
          if (atom.value.is_null() || atom.upper.is_null()) {
            feasible = false;
            break;
          }
          rank_interval(enc.LowerBoundRank(atom.column, atom.value),
                        enc.UpperBoundRank(atom.column, atom.upper));
          break;
        case CompareOp::kIn: {
          // Membership byte table over codes; slot d is ⊥ (kNullCode
          // gathers onto it via min(code, d)).
          out.kind = Atom::Kind::kTable;
          // d+1 live slots plus the pad bytes the AVX2 scale-1 gather
          // reads past slot d (simd::ByteTable contract).
          out.table.assign(d + 1 + simd::kByteTablePad, 0);
          bool any = false;
          for (const Value& member : atom.list) {
            const uint32_t code = enc.LookupCode(atom.column, member);
            if (code == EncodedTable::kMissingCode) continue;
            out.table[std::min(code, d)] = 1;
            any = true;
          }
          if (!any) feasible = false;
          break;
        }
      }
      if (!feasible) break;
      compiled.push_back(std::move(out));
    }
    if (!feasible) continue;  // this disjunct can never match
    if (compiled.empty()) always_ = true;
    disjuncts_.push_back(std::move(compiled));
  }
}

void CompiledPredicate::ApplyAtom(const Atom& atom, simd::Level level,
                                  int64_t begin, int len, simd::Store store,
                                  uint8_t* out) {
  const uint32_t* codes = atom.codes + begin;
  switch (atom.kind) {
    case Atom::Kind::kEqCode:
      simd::EqCode(level, codes, len, atom.want, store, out);
      break;
    case Atom::Kind::kNeCode:
      simd::NeCode(level, codes, len, atom.want, store, out);
      break;
    case Atom::Kind::kCodeInterval:
      // Unsigned wrap: kNullCode - lo lands far above span, so ⊥
      // (and any code below lo) tests false without a branch.
      simd::CodeInterval(level, codes, len, atom.lo, atom.span, store, out);
      break;
    case Atom::Kind::kRankInterval:
      simd::RankInterval(level, codes, len, atom.rank, atom.d, atom.lo,
                         atom.span, store, out);
      break;
    case Atom::Kind::kTable:
      simd::ByteTable(level, codes, len, atom.table.data(), atom.d, store,
                      out);
      break;
  }
}

void CompiledPredicate::EvalBlock(int64_t begin, int64_t n,
                                  uint8_t* match) const {
  assert(n <= kBlock);
  const int len = static_cast<int>(n);
  if (disjuncts_.empty()) {
    std::memset(match, 0, static_cast<size_t>(len));
    return;
  }
  // Resolve the dispatch level once per block, not per atom: the
  // override/env lookup stays off the inner path, and every atom of
  // the block provably runs at one level.
  const simd::Level level = simd::ActiveLevel();
  // The first disjunct writes `match` directly; later disjuncts build
  // their conjunction in scratch and OR it in. A one-range predicate
  // is then a single assign loop over the block — no zero-init, no
  // fill-with-ones, no merge.
  uint8_t conj[kBlock];
  bool first_disjunct = true;
  for (const std::vector<Atom>& atoms : disjuncts_) {
    uint8_t* out = first_disjunct ? match : conj;
    bool first_atom = true;
    for (const Atom& atom : atoms) {
      ApplyAtom(atom, level, begin, len,
                first_atom ? simd::Store::kAssign : simd::Store::kAnd, out);
      first_atom = false;
    }
    // An empty conjunction is TRUE (the compiler marks always_, but
    // stay correct if EvalBlock is called anyway).
    if (first_atom) {
      std::memset(out, 1, static_cast<size_t>(len));
    }
    if (!first_disjunct) {
      simd::OrBytes(level, conj, len, match);
    }
    first_disjunct = false;
  }
}

}  // namespace sqlnf
