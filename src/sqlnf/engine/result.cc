#include "sqlnf/engine/result.h"

#include <utility>

#include "sqlnf/core/value.h"
#include "sqlnf/engine/csv.h"
#include "sqlnf/util/json.h"

namespace sqlnf {

std::string QueryResult::ToString() const {
  std::string out = message;
  if (rows.has_value()) {
    if (!out.empty()) out += "\n";
    out += rows->ToString();
  }
  return out;
}

std::string ErrorDetail::ToString() const {
  std::string out = StatusCodeToString(code);
  out += ": ";
  out += message;
  std::string loc;
  if (statement_index >= 0) {
    loc += "statement " + std::to_string(statement_index + 1);
  }
  if (line > 0) {
    if (!loc.empty()) loc += ", ";
    loc += "line " + std::to_string(line) + ":" + std::to_string(column);
  }
  if (!loc.empty()) out += " (" + loc + ")";
  return out;
}

ErrorDetail MakeErrorDetail(const Status& status, std::string_view script,
                            int statement_index, int byte_offset) {
  ErrorDetail d;
  d.code = status.code();
  d.message = status.message();
  d.statement_index = statement_index;
  d.byte_offset = byte_offset;
  if (byte_offset >= 0 &&
      static_cast<size_t>(byte_offset) <= script.size()) {
    d.line = 1;
    d.column = 1;
    for (int i = 0; i < byte_offset; ++i) {
      if (script[i] == '\n') {
        ++d.line;
        d.column = 1;
      } else {
        ++d.column;
      }
    }
  }
  return d;
}

std::string RenderStatementText(const QueryResult& result) {
  return result.ToString();
}

std::string RenderCsv(const ResultSet& rs) {
  std::string out;
  bool first = true;
  for (const QueryResult& r : rs.statements) {
    if (!first) out += "\n";
    first = false;
    if (r.rows.has_value()) {
      out += WriteCsvString(*r.rows);
    } else {
      out += r.message;
      out += "\n";
    }
  }
  return out;
}

namespace {

void WriteCell(const Value& v, JsonWriter* w) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      w->Null();
      break;
    case Value::Kind::kInt:
      w->Int(v.int_value());
      break;
    case Value::Kind::kString:
      w->String(v.str_value());
      break;
  }
}

void WriteStatement(const QueryResult& r, JsonWriter* w) {
  w->BeginObject();
  w->Key("message");
  w->String(r.message);
  w->Key("affected");
  w->Int(r.affected);
  if (r.rows.has_value()) {
    const Table& t = *r.rows;
    w->Key("rows");
    w->BeginObject();
    w->Key("columns");
    w->BeginArray();
    for (int c = 0; c < t.num_columns(); ++c) {
      w->String(t.schema().attribute_name(c));
    }
    w->EndArray();
    w->Key("data");
    w->BeginArray();
    for (int i = 0; i < t.num_rows(); ++i) {
      w->BeginArray();
      for (int c = 0; c < t.num_columns(); ++c) {
        WriteCell(t.row(i)[c], w);
      }
      w->EndArray();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndObject();
}

}  // namespace

std::string RenderJson(const ResultSet& rs) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok");
  w.Bool(rs.ok());
  if (!rs.ok()) {
    w.Key("error");
    w.BeginObject();
    w.Key("code");
    w.String(StatusCodeToString(rs.error.code));
    w.Key("message");
    w.String(rs.error.message);
    w.Key("statement_index");
    w.Int(rs.error.statement_index);
    w.Key("byte_offset");
    w.Int(rs.error.byte_offset);
    w.Key("line");
    w.Int(rs.error.line);
    w.Key("column");
    w.Int(rs.error.column);
    w.EndObject();
  }
  w.Key("statements");
  w.BeginArray();
  for (const QueryResult& r : rs.statements) WriteStatement(r, &w);
  w.EndArray();
  w.EndObject();
  return std::move(w).Take();
}

}  // namespace sqlnf
