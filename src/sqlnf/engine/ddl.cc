#include "sqlnf/engine/ddl.h"

namespace sqlnf {

namespace {

std::string ColumnList(const TableSchema& schema, const AttributeSet& set) {
  std::string out;
  bool first = true;
  for (AttributeId a : set) {
    if (!first) out += ", ";
    first = false;
    out += schema.attribute_name(a);
  }
  return out;
}

}  // namespace

std::string EmitCreateTable(const SchemaDesign& design) {
  const TableSchema& schema = design.table;

  std::vector<std::string> items;  // column and constraint lines
  std::vector<std::string> notes;  // inexpressible constraints
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    std::string line = schema.attribute_name(a) + " TEXT";
    if (schema.nfs().Contains(a)) line += " NOT NULL";
    items.push_back(std::move(line));
  }
  bool primary_used = false;
  for (const KeyConstraint& key : design.sigma.keys()) {
    const bool null_free = key.attrs.IsSubsetOf(schema.nfs());
    if (key.is_certain() && null_free && !primary_used) {
      items.push_back("PRIMARY KEY (" + ColumnList(schema, key.attrs) +
                      ")");
      primary_used = true;
    } else if (key.is_possible() || null_free) {
      // UNIQUE matches p-key semantics (null-containing rows never
      // conflict); on null-free columns it is exact for both modes.
      items.push_back("UNIQUE (" + ColumnList(schema, key.attrs) + ")");
    } else {
      // c-key with nullable columns: not declaratively expressible.
      notes.push_back("-- certain key c<" + ColumnList(schema, key.attrs) +
                      "> requires trigger-based enforcement "
                      "(weak similarity)");
    }
  }

  std::string out = "CREATE TABLE " + schema.name() + " (\n";
  for (size_t i = 0; i < items.size(); ++i) {
    out += "  " + items[i] + (i + 1 < items.size() ? "," : "") + "\n";
  }
  out += ");\n";
  for (const std::string& note : notes) out += note + "\n";
  for (const auto& fd : design.sigma.fds()) {
    out += "-- FD " + fd.ToString(schema) +
           " (not declaratively expressible in SQL)\n";
  }
  return out;
}

std::string EmitDecompositionDdl(const SchemaDesign& design,
                                 const VrnfResult& result) {
  std::string out;
  for (size_t i = 0; i < result.decomposition.components.size(); ++i) {
    const Component& component = result.decomposition.components[i];
    auto projected = design.table.Project(
        component.attrs,
        component.name.empty()
            ? design.table.name() + "_" + std::to_string(i)
            : component.name);
    if (!projected.ok()) continue;  // validated upstream

    SchemaDesign sub{std::move(projected).value(), {}};
    for (const KeyConstraint& key : result.component_keys[i]) {
      // Translate global ids into the projected schema's ids.
      AttributeSet local;
      for (AttributeId a : key.attrs) {
        auto id = sub.table.FindAttribute(design.table.attribute_name(a));
        if (id.ok()) local.Add(id.value());
      }
      sub.sigma.AddKey(KeyConstraint::Certain(local));
    }
    out += "-- component " + component.ToString(design.table) +
           (component.multiset ? "  (multiset projection)"
                               : "  (set projection)") +
           "\n";
    out += EmitCreateTable(sub);
    out += "\n";
  }
  return out;
}

}  // namespace sqlnf
