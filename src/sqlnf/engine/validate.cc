#include "sqlnf/engine/validate.h"

#include <unordered_map>
#include <vector>

#include "sqlnf/core/similarity.h"

namespace sqlnf {

namespace {

// LHS columns that contain no ⊥ anywhere in the instance. Weakly
// similar rows agree exactly on these, so they partition the pair space.
AttributeSet InstanceNullFree(const Table& table, const AttributeSet& x) {
  AttributeSet out = x;
  for (AttributeId a : x) {
    for (const Tuple& t : table.rows()) {
      if (t[a].is_null()) {
        out.Remove(a);
        break;
      }
    }
  }
  return out;
}

size_t HashOn(const Tuple& t, const AttributeSet& x) {
  size_t h = 0x84222325u;
  for (AttributeId a : x) h = h * 1099511628211ull + t[a].Hash();
  return h;
}

// Buckets row indices by exact values on `group_by` (must be total on
// those columns for all listed rows).
std::unordered_map<size_t, std::vector<int>> BucketRows(
    const Table& table, const AttributeSet& group_by,
    const std::vector<int>& rows) {
  std::unordered_map<size_t, std::vector<int>> buckets;
  buckets.reserve(rows.size());
  for (int i : rows) {
    buckets[HashOn(table.row(i), group_by)].push_back(i);
  }
  return buckets;
}

std::vector<int> AllRows(const Table& table) {
  std::vector<int> rows(table.num_rows());
  for (int i = 0; i < table.num_rows(); ++i) rows[i] = i;
  return rows;
}

// Pairwise check within one bucket: LHS-similarity minus the already
// grouped columns, then the RHS condition. `rest` is LHS − group
// columns. Returns the violating pair if any.
template <typename SimilarFn, typename BadFn>
std::optional<Violation> ScanBucket(const Table& table,
                                    const std::vector<int>& bucket,
                                    const AttributeSet& group_by,
                                    SimilarFn&& similar, BadFn&& bad) {
  for (size_t i = 0; i < bucket.size(); ++i) {
    for (size_t j = i + 1; j < bucket.size(); ++j) {
      const Tuple& t = table.row(bucket[i]);
      const Tuple& u = table.row(bucket[j]);
      // Hash collisions: confirm the grouped columns really match.
      if (!t.EqualOn(u, group_by)) continue;
      if (similar(t, u) && bad(t, u)) {
        return Violation{bucket[i], bucket[j], std::nullopt, std::nullopt};
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<Violation> FindFdViolationFast(
    const Table& table, const FunctionalDependency& fd) {
  std::optional<Violation> violation;
  if (fd.is_possible()) {
    // Only rows total on the LHS participate; strong similarity within a
    // full-LHS bucket is automatic.
    std::vector<int> rows;
    for (int i = 0; i < table.num_rows(); ++i) {
      if (table.row(i).IsTotal(fd.lhs)) rows.push_back(i);
    }
    for (auto& [hash, bucket] : BucketRows(table, fd.lhs, rows)) {
      violation = ScanBucket(
          table, bucket, fd.lhs,
          [&](const Tuple& t, const Tuple& u) {
            return StronglySimilar(t, u, fd.lhs);
          },
          [&](const Tuple& t, const Tuple& u) {
            return !t.EqualOn(u, fd.rhs);
          });
      if (violation) break;
    }
  } else {
    const AttributeSet group = InstanceNullFree(table, fd.lhs);
    const AttributeSet rest = fd.lhs.Difference(group);
    for (auto& [hash, bucket] : BucketRows(table, group, AllRows(table))) {
      violation = ScanBucket(
          table, bucket, group,
          [&](const Tuple& t, const Tuple& u) {
            return WeaklySimilar(t, u, rest);
          },
          [&](const Tuple& t, const Tuple& u) {
            return !t.EqualOn(u, fd.rhs);
          });
      if (violation) break;
    }
  }
  if (violation) violation->constraint = Constraint(fd);
  return violation;
}

std::optional<Violation> FindKeyViolationFast(const Table& table,
                                              const KeyConstraint& key) {
  std::optional<Violation> violation;
  if (key.is_possible()) {
    std::vector<int> rows;
    for (int i = 0; i < table.num_rows(); ++i) {
      if (table.row(i).IsTotal(key.attrs)) rows.push_back(i);
    }
    for (auto& [hash, bucket] : BucketRows(table, key.attrs, rows)) {
      violation = ScanBucket(
          table, bucket, key.attrs,
          [&](const Tuple& t, const Tuple& u) {
            return StronglySimilar(t, u, key.attrs);
          },
          [](const Tuple&, const Tuple&) { return true; });
      if (violation) break;
    }
  } else {
    const AttributeSet group = InstanceNullFree(table, key.attrs);
    const AttributeSet rest = key.attrs.Difference(group);
    for (auto& [hash, bucket] : BucketRows(table, group, AllRows(table))) {
      violation = ScanBucket(
          table, bucket, group,
          [&](const Tuple& t, const Tuple& u) {
            return WeaklySimilar(t, u, rest);
          },
          [](const Tuple&, const Tuple&) { return true; });
      if (violation) break;
    }
  }
  if (violation) violation->constraint = Constraint(key);
  return violation;
}

bool ValidateFd(const Table& table, const FunctionalDependency& fd) {
  return !FindFdViolationFast(table, fd).has_value();
}

bool ValidateKey(const Table& table, const KeyConstraint& key) {
  return !FindKeyViolationFast(table, key).has_value();
}

bool ValidateAll(const Table& table, const ConstraintSet& sigma) {
  if (!table.CheckNfs().ok()) return false;
  for (const auto& fd : sigma.fds()) {
    if (!ValidateFd(table, fd)) return false;
  }
  for (const auto& key : sigma.keys()) {
    if (!ValidateKey(table, key)) return false;
  }
  return true;
}

}  // namespace sqlnf
