#include "sqlnf/engine/validate.h"

#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sqlnf/core/similarity.h"
#include "sqlnf/util/fnv.h"
#include "sqlnf/util/parallel.h"

namespace sqlnf {

namespace {

// Tables below this row count are validated serially even when the
// caller asks for threads: the pool + merge overhead dwarfs the scan.
constexpr int kParallelRowThreshold = 2048;

// LHS columns that contain no ⊥ anywhere in the instance. Weakly
// similar rows agree exactly on these, so they partition the pair
// space. Served from the Table's incrementally maintained cache — no
// per-call instance rescan.
AttributeSet InstanceNullFree(const Table& table, const AttributeSet& x) {
  return x.Intersect(table.NullFreeColumns());
}

size_t HashOn(const Tuple& t, const AttributeSet& x) {
  uint64_t h = kFnv64OffsetBasis;
  for (AttributeId a : x) h = FnvMix(h, t[a].Hash());
  return h;
}

using BucketMap = std::unordered_map<size_t, std::vector<int>>;

// Buckets row indices by exact values on `group_by` (must be total on
// those columns for all listed rows). With a pool, each thread buckets
// a contiguous slice of `rows`, and the slices merge in slice order —
// bucket contents come out in ascending row order either way.
BucketMap BucketRows(const Table& table, const AttributeSet& group_by,
                     const std::vector<int>& rows, ThreadPool* pool) {
  if (pool == nullptr) {
    BucketMap buckets;
    buckets.reserve(rows.size());
    for (int i : rows) {
      buckets[HashOn(table.row(i), group_by)].push_back(i);
    }
    return buckets;
  }
  return ParallelReduce<BucketMap>(
      *pool, 0, static_cast<int64_t>(rows.size()), BucketMap{},
      [&](int64_t b, int64_t e) {
        BucketMap local;
        local.reserve(e - b);
        for (int64_t k = b; k < e; ++k) {
          local[HashOn(table.row(rows[k]), group_by)].push_back(rows[k]);
        }
        return local;
      },
      [](BucketMap acc, BucketMap part) {
        if (acc.empty()) return part;
        for (auto& [hash, ids] : part) {
          auto& dst = acc[hash];
          dst.insert(dst.end(), ids.begin(), ids.end());
        }
        return acc;
      });
}

std::vector<int> AllRows(const Table& table) {
  std::vector<int> rows(table.num_rows());
  for (int i = 0; i < table.num_rows(); ++i) rows[i] = i;
  return rows;
}

// Pairwise check within one bucket: LHS-similarity minus the already
// grouped columns, then the RHS condition. `rest` is LHS − group
// columns. Returns the violating pair if any.
template <typename SimilarFn, typename BadFn>
std::optional<Violation> ScanBucket(const Table& table,
                                    const std::vector<int>& bucket,
                                    const AttributeSet& group_by,
                                    SimilarFn&& similar, BadFn&& bad) {
  for (size_t i = 0; i < bucket.size(); ++i) {
    for (size_t j = i + 1; j < bucket.size(); ++j) {
      const Tuple& t = table.row(bucket[i]);
      const Tuple& u = table.row(bucket[j]);
      // Hash collisions: confirm the grouped columns really match.
      if (!t.EqualOn(u, group_by)) continue;
      if (similar(t, u) && bad(t, u)) {
        return Violation{bucket[i], bucket[j], std::nullopt, std::nullopt};
      }
    }
  }
  return std::nullopt;
}

// Scans every bucket for a violation, short-circuiting on the first
// one. With a pool, buckets are claimed dynamically (one task per
// multi-row bucket) and a found-flag stops the remaining scans early;
// any violating pair is a correct witness, so the parallel pick may
// differ from the serial one.
template <typename SimilarFn, typename BadFn>
std::optional<Violation> ScanBuckets(const Table& table,
                                     const BucketMap& buckets,
                                     const AttributeSet& group_by,
                                     SimilarFn&& similar, BadFn&& bad,
                                     ThreadPool* pool) {
  if (pool == nullptr) {
    for (const auto& [hash, bucket] : buckets) {
      auto violation = ScanBucket(table, bucket, group_by, similar, bad);
      if (violation) return violation;
    }
    return std::nullopt;
  }
  std::vector<const std::vector<int>*> work;
  work.reserve(buckets.size());
  for (const auto& [hash, bucket] : buckets) {
    if (bucket.size() > 1) work.push_back(&bucket);
  }
  std::atomic<bool> found{false};
  std::mutex mu;
  std::optional<Violation> result;
  pool->RunTasks(static_cast<int>(work.size()), [&](int k) {
    if (found.load(std::memory_order_relaxed)) return;
    auto violation = ScanBucket(table, *work[k], group_by, similar, bad);
    if (violation) {
      std::lock_guard<std::mutex> lock(mu);
      if (!result) result = violation;
      found.store(true, std::memory_order_relaxed);
    }
  });
  return result;
}

// True when parallelism is requested and the table is big enough to
// amortize a pool.
bool WantPool(const Table& table, const ParallelOptions& par) {
  return par.threads > 1 && table.num_rows() >= kParallelRowThreshold;
}

}  // namespace

std::optional<Violation> FindFdViolationFast(const Table& table,
                                             const FunctionalDependency& fd,
                                             const ParallelOptions& par) {
  std::optional<ThreadPool> pool;
  if (WantPool(table, par)) pool.emplace(par.threads);
  ThreadPool* p = pool ? &*pool : nullptr;
  std::optional<Violation> violation;
  if (fd.is_possible()) {
    // Only rows total on the LHS participate; strong similarity within a
    // full-LHS bucket is automatic.
    std::vector<int> rows;
    for (int i = 0; i < table.num_rows(); ++i) {
      if (table.row(i).IsTotal(fd.lhs)) rows.push_back(i);
    }
    violation = ScanBuckets(
        table, BucketRows(table, fd.lhs, rows, p), fd.lhs,
        [&](const Tuple& t, const Tuple& u) {
          return StronglySimilar(t, u, fd.lhs);
        },
        [&](const Tuple& t, const Tuple& u) {
          return !t.EqualOn(u, fd.rhs);
        },
        p);
  } else {
    const AttributeSet group = InstanceNullFree(table, fd.lhs);
    const AttributeSet rest = fd.lhs.Difference(group);
    violation = ScanBuckets(
        table, BucketRows(table, group, AllRows(table), p), group,
        [&](const Tuple& t, const Tuple& u) {
          return WeaklySimilar(t, u, rest);
        },
        [&](const Tuple& t, const Tuple& u) {
          return !t.EqualOn(u, fd.rhs);
        },
        p);
  }
  if (violation) violation->constraint = Constraint(fd);
  return violation;
}

std::optional<Violation> FindKeyViolationFast(const Table& table,
                                              const KeyConstraint& key,
                                              const ParallelOptions& par) {
  std::optional<ThreadPool> pool;
  if (WantPool(table, par)) pool.emplace(par.threads);
  ThreadPool* p = pool ? &*pool : nullptr;
  std::optional<Violation> violation;
  if (key.is_possible()) {
    std::vector<int> rows;
    for (int i = 0; i < table.num_rows(); ++i) {
      if (table.row(i).IsTotal(key.attrs)) rows.push_back(i);
    }
    violation = ScanBuckets(
        table, BucketRows(table, key.attrs, rows, p), key.attrs,
        [&](const Tuple& t, const Tuple& u) {
          return StronglySimilar(t, u, key.attrs);
        },
        [](const Tuple&, const Tuple&) { return true; }, p);
  } else {
    const AttributeSet group = InstanceNullFree(table, key.attrs);
    const AttributeSet rest = key.attrs.Difference(group);
    violation = ScanBuckets(
        table, BucketRows(table, group, AllRows(table), p), group,
        [&](const Tuple& t, const Tuple& u) {
          return WeaklySimilar(t, u, rest);
        },
        [](const Tuple&, const Tuple&) { return true; }, p);
  }
  if (violation) violation->constraint = Constraint(key);
  return violation;
}

bool ValidateFd(const Table& table, const FunctionalDependency& fd,
                const ParallelOptions& par) {
  return !FindFdViolationFast(table, fd, par).has_value();
}

bool ValidateKey(const Table& table, const KeyConstraint& key,
                 const ParallelOptions& par) {
  return !FindKeyViolationFast(table, key, par).has_value();
}

bool ValidateAll(const Table& table, const ConstraintSet& sigma,
                 const ParallelOptions& par) {
  if (!table.CheckNfs().ok()) return false;
  for (const auto& fd : sigma.fds()) {
    if (!ValidateFd(table, fd, par)) return false;
  }
  for (const auto& key : sigma.keys()) {
    if (!ValidateKey(table, key, par)) return false;
  }
  return true;
}

}  // namespace sqlnf
