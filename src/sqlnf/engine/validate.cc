#include "sqlnf/engine/validate.h"

#include <atomic>
#include <cassert>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sqlnf/core/similarity.h"
#include "sqlnf/core/simd_kernels.h"
#include "sqlnf/discovery/partition.h"
#include "sqlnf/util/fnv.h"
#include "sqlnf/util/mutex.h"
#include "sqlnf/util/parallel.h"

namespace sqlnf {

namespace {

// Tables below this row count are validated serially even when the
// caller asks for threads: the pool + merge overhead dwarfs the scan.
constexpr int kParallelRowThreshold = 2048;

// True when parallelism is requested and the table is big enough to
// amortize a pool.
bool WantPool(int num_rows, const ParallelOptions& par) {
  return par.threads > 1 && num_rows >= kParallelRowThreshold;
}

std::vector<int> AllRows(int n) {
  std::vector<int> rows(n);
  for (int i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

using BucketList = std::vector<std::vector<int>>;
using BucketMap = std::unordered_map<uint64_t, std::vector<int>>;

// A contiguous view of one bucket's row ids.
struct Span {
  const int* data = nullptr;
  size_t size = 0;
};

// Bucketed rows behind a uniform scan surface: `spans` is what
// ScanBuckets walks; `owned` (hash path) or `csr` (radix path) holds
// the storage the spans point into. Radix buckets live side by side in
// one flat array instead of one heap vector per dictionary entry.
struct Buckets {
  std::vector<Span> spans;
  BucketList owned;
  std::vector<int> csr;
};

Buckets FromBucketList(BucketList list) {
  Buckets out;
  out.owned = std::move(list);
  out.spans.reserve(out.owned.size());
  for (const std::vector<int>& b : out.owned) {
    out.spans.push_back({b.data(), b.size()});
  }
  return out;
}

// Buckets row ids by an integer key. With a pool, each thread buckets a
// contiguous slice of `rows`, and the slices merge in slice order —
// bucket contents come out in ascending row order either way.
template <typename KeyFn>
BucketList HashBuckets(const std::vector<int>& rows, KeyFn&& key,
                       ThreadPool* pool) {
  BucketMap map;
  if (pool == nullptr) {
    map.reserve(rows.size());
    for (int i : rows) map[key(i)].push_back(i);
  } else {
    map = ParallelReduce<BucketMap>(
        *pool, 0, static_cast<int64_t>(rows.size()), BucketMap{},
        [&](int64_t b, int64_t e) {
          BucketMap local;
          local.reserve(e - b);
          for (int64_t k = b; k < e; ++k) {
            local[key(rows[k])].push_back(rows[k]);
          }
          return local;
        },
        [](BucketMap acc, BucketMap part) {
          if (acc.empty()) return part;
          for (auto& [hash, ids] : part) {
            auto& dst = acc[hash];
            dst.insert(dst.end(), ids.begin(), ids.end());
          }
          return acc;
        });
  }
  BucketList out;
  out.reserve(map.size());
  for (auto& [hash, ids] : map) out.push_back(std::move(ids));
  return out;
}

// Scans every bucket for a pair with bad(i, j), short-circuiting on the
// first one. With a pool, buckets are claimed dynamically (one task per
// multi-row bucket) and a found-flag stops the remaining scans early;
// any violating pair is a correct witness, so the parallel pick may
// differ from the serial one.
template <typename BadFn>
std::optional<Violation> ScanBuckets(const Buckets& buckets, BadFn&& bad,
                                     ThreadPool* pool) {
  auto scan_one = [&](const Span& bucket) -> std::optional<Violation> {
    for (size_t i = 0; i < bucket.size; ++i) {
      for (size_t j = i + 1; j < bucket.size; ++j) {
        if (bad(bucket.data[i], bucket.data[j])) {
          return Violation{bucket.data[i], bucket.data[j], std::nullopt,
                           std::nullopt};
        }
      }
    }
    return std::nullopt;
  };
  if (pool == nullptr) {
    for (const Span& bucket : buckets.spans) {
      if (auto violation = scan_one(bucket)) return violation;
    }
    return std::nullopt;
  }
  std::vector<const Span*> work;
  work.reserve(buckets.spans.size());
  for (const Span& bucket : buckets.spans) {
    if (bucket.size > 1) work.push_back(&bucket);
  }
  std::atomic<bool> found{false};
  Mutex mu;
  std::optional<Violation> result;
  pool->RunTasks(static_cast<int>(work.size()), [&](int k) {
    if (found.load(std::memory_order_relaxed)) return;
    if (auto violation = scan_one(*work[k])) {
      MutexLock lock(mu);
      if (!result) result = violation;
      found.store(true, std::memory_order_relaxed);
    }
  });
  return result;
}

// ---- code kernels ----------------------------------------------------

uint64_t HashCodesOn(const EncodedTable& enc, int row,
                     const AttributeSet& attrs) {
  uint64_t h = kFnv64OffsetBasis;
  for (AttributeId a : attrs) h = FnvMix(h, enc.code(a, row));
  return h;
}

bool CodesEqualOn(const EncodedTable& enc, int r1, int r2,
                  const AttributeSet& attrs) {
  for (AttributeId a : attrs) {
    if (enc.code(a, r1) != enc.code(a, r2)) return false;
  }
  return true;
}

bool CodesWeaklySimilarOn(const EncodedTable& enc, int r1, int r2,
                          const AttributeSet& attrs) {
  for (AttributeId a : attrs) {
    if (!CodesWeaklySimilar(enc.code(a, r1), enc.code(a, r2))) return false;
  }
  return true;
}

bool RowTotalOn(const EncodedTable& enc, int row,
                const AttributeSet& attrs) {
  for (AttributeId a : attrs) {
    if (enc.code(a, row) == EncodedTable::kNullCode) return false;
  }
  return true;
}

// Buckets `rows` by their codes on `group`. Rows must be total on
// `group` (both call sites guarantee it). Single-column groups
// radix-bucket directly on the dense code value — no hashing and no
// collisions; wider groups hash-mix the codes, and *exact is cleared so
// the scan re-confirms group equality per pair.
//
// The radix path is a CSR count → prefix → scatter build: row codes
// are gathered through simd::GatherCodes, histogrammed per code, and
// scattered into one flat row array — bucket contents stay in
// ascending row order (stable scatter over an ascending row list),
// matching the hash path's ordering guarantee.
Buckets BucketByCodes(const EncodedTable& enc, const AttributeSet& group,
                      const std::vector<int>& rows, ThreadPool* pool,
                      bool* exact) {
  *exact = true;
  if (group.empty()) {
    Buckets out;
    out.csr = rows;
    if (!out.csr.empty()) out.spans.push_back({out.csr.data(), out.csr.size()});
    return out;
  }
  if (group.size() == 1) {
    const AttributeId a = *group.begin();
    // Rows are total on `a`, so every gathered code is a dense
    // dictionary code < d — the histogram needs no sentinel slot.
    const size_t d = static_cast<size_t>(enc.dictionary_size(a));
    const int n = static_cast<int>(rows.size());
    std::vector<uint32_t> codes(rows.size());
    simd::GatherCodes(simd::ActiveLevel(), enc.column(a).data(), rows.data(),
                      n, codes.data());
    std::vector<uint32_t> starts(d + 1, 0);
    for (int k = 0; k < n; ++k) ++starts[codes[k] + 1];
    for (size_t c = 1; c <= d; ++c) starts[c] += starts[c - 1];
    Buckets out;
    out.csr.resize(rows.size());
    std::vector<uint32_t> cursor(starts.begin(), starts.end() - 1);
    for (int k = 0; k < n; ++k) out.csr[cursor[codes[k]]++] = rows[k];
    out.spans.reserve(d);
    for (size_t c = 0; c < d; ++c) {
      const size_t len = starts[c + 1] - starts[c];
      if (len > 0) out.spans.push_back({out.csr.data() + starts[c], len});
    }
    return out;
  }
  *exact = false;
  return FromBucketList(HashBuckets(
      rows, [&](int i) { return HashCodesOn(enc, i, group); }, pool));
}

}  // namespace

std::optional<Violation> FindFdViolationEncoded(
    const EncodedTable& enc, const FunctionalDependency& fd,
    const ParallelOptions& par) {
  assert(fd.lhs.Union(fd.rhs).IsSubsetOf(enc.encoded_columns()));
  std::optional<ThreadPool> pool;
  if (WantPool(enc.num_rows(), par)) pool.emplace(par.threads);
  ThreadPool* p = pool ? &*pool : nullptr;
  std::optional<Violation> violation;
  bool exact = false;
  if (fd.is_possible()) {
    // Only rows total on the LHS participate; strong similarity within
    // a full-LHS bucket is automatic.
    std::vector<int> rows;
    for (int i = 0; i < enc.num_rows(); ++i) {
      if (RowTotalOn(enc, i, fd.lhs)) rows.push_back(i);
    }
    Buckets buckets = BucketByCodes(enc, fd.lhs, rows, p, &exact);
    violation = ScanBuckets(
        buckets,
        [&](int i, int j) {
          return (exact || CodesEqualOn(enc, i, j, fd.lhs)) &&
                 !CodesEqualOn(enc, i, j, fd.rhs);
        },
        p);
  } else {
    const AttributeSet group = fd.lhs.Intersect(enc.NullFreeColumns());
    const AttributeSet rest = fd.lhs.Difference(group);
    Buckets buckets =
        BucketByCodes(enc, group, AllRows(enc.num_rows()), p, &exact);
    violation = ScanBuckets(
        buckets,
        [&](int i, int j) {
          return (exact || CodesEqualOn(enc, i, j, group)) &&
                 CodesWeaklySimilarOn(enc, i, j, rest) &&
                 !CodesEqualOn(enc, i, j, fd.rhs);
        },
        p);
  }
  if (violation) violation->constraint = Constraint(fd);
  return violation;
}

std::optional<Violation> FindKeyViolationEncoded(const EncodedTable& enc,
                                                 const KeyConstraint& key,
                                                 const ParallelOptions& par) {
  assert(key.attrs.IsSubsetOf(enc.encoded_columns()));
  std::optional<ThreadPool> pool;
  if (WantPool(enc.num_rows(), par)) pool.emplace(par.threads);
  ThreadPool* p = pool ? &*pool : nullptr;
  std::optional<Violation> violation;
  bool exact = false;
  if (key.is_possible()) {
    std::vector<int> rows;
    for (int i = 0; i < enc.num_rows(); ++i) {
      if (RowTotalOn(enc, i, key.attrs)) rows.push_back(i);
    }
    Buckets buckets = BucketByCodes(enc, key.attrs, rows, p, &exact);
    violation = ScanBuckets(
        buckets,
        [&](int i, int j) {
          return exact || CodesEqualOn(enc, i, j, key.attrs);
        },
        p);
  } else {
    const AttributeSet group = key.attrs.Intersect(enc.NullFreeColumns());
    const AttributeSet rest = key.attrs.Difference(group);
    Buckets buckets =
        BucketByCodes(enc, group, AllRows(enc.num_rows()), p, &exact);
    violation = ScanBuckets(
        buckets,
        [&](int i, int j) {
          return (exact || CodesEqualOn(enc, i, j, group)) &&
                 CodesWeaklySimilarOn(enc, i, j, rest);
        },
        p);
  }
  if (violation) violation->constraint = Constraint(key);
  return violation;
}

bool ValidateFdEncoded(const EncodedTable& enc,
                       const FunctionalDependency& fd,
                       const ParallelOptions& par) {
  return !FindFdViolationEncoded(enc, fd, par).has_value();
}

bool ValidateKeyEncoded(const EncodedTable& enc, const KeyConstraint& key,
                        const ParallelOptions& par) {
  return !FindKeyViolationEncoded(enc, key, par).has_value();
}

bool ValidateAllEncoded(const EncodedTable& enc, const AttributeSet& nfs,
                        const ConstraintSet& sigma,
                        const ParallelOptions& par) {
  assert(nfs.IsSubsetOf(enc.encoded_columns()));
  if (!nfs.IsSubsetOf(enc.NullFreeColumns())) return false;
  for (const auto& fd : sigma.fds()) {
    if (!ValidateFdEncoded(enc, fd, par)) return false;
  }
  for (const auto& key : sigma.keys()) {
    if (!ValidateKeyEncoded(enc, key, par)) return false;
  }
  return true;
}

// ---- stripped-partition path -----------------------------------------

namespace {

// π_X as the product of the single-column partitions (⊥ an ordinary
// value, so classes are EXACT-equality groups on X).
StrippedPartition PartitionOn(const EncodedTable& enc,
                              const AttributeSet& x) {
  StrippedPartition p = StrippedPartition::Universe(enc.num_rows());
  for (AttributeId a : x) {
    p = p.Intersect(StrippedPartition::ForColumn(enc, a), enc.num_rows());
  }
  return p;
}

// e over the classes total on `x`. Class members share their X codes,
// so the representative decides totality for the whole class; the
// non-total classes are exactly the ones strong similarity ignores.
int TotalClassError(const StrippedPartition& p, const EncodedTable& enc,
                    const AttributeSet& x) {
  int error = 0;
  for (const auto& cls : p.classes()) {
    if (RowTotalOn(enc, cls.front(), x)) {
      error += static_cast<int>(cls.size()) - 1;
    }
  }
  return error;
}

}  // namespace

bool ValidateFdPartition(const EncodedTable& enc,
                         const FunctionalDependency& fd) {
  assert(fd.is_possible());
  const StrippedPartition px = PartitionOn(enc, fd.lhs);
  StrippedPartition pxy = px;
  for (AttributeId a : fd.rhs.Difference(fd.lhs)) {
    pxy = pxy.Intersect(StrippedPartition::ForColumn(enc, a),
                        enc.num_rows());
  }
  return TotalClassError(px, enc, fd.lhs) ==
         TotalClassError(pxy, enc, fd.lhs);
}

bool ValidateKeyPartition(const EncodedTable& enc,
                          const KeyConstraint& key) {
  assert(key.is_possible());
  return TotalClassError(PartitionOn(enc, key.attrs), enc, key.attrs) == 0;
}

// ---- legacy tuple-hashing path ---------------------------------------

namespace {

size_t HashOn(const Tuple& t, const AttributeSet& x) {
  uint64_t h = kFnv64OffsetBasis;
  for (AttributeId a : x) h = FnvMix(h, t[a].Hash());
  return h;
}

Buckets BucketRows(const Table& table, const AttributeSet& group_by,
                   const std::vector<int>& rows, ThreadPool* pool) {
  return FromBucketList(HashBuckets(
      rows, [&](int i) { return HashOn(table.row(i), group_by); }, pool));
}

}  // namespace

std::optional<Violation> FindFdViolationTuple(const Table& table,
                                              const FunctionalDependency& fd,
                                              const ParallelOptions& par) {
  std::optional<ThreadPool> pool;
  if (WantPool(table.num_rows(), par)) pool.emplace(par.threads);
  ThreadPool* p = pool ? &*pool : nullptr;
  std::optional<Violation> violation;
  if (fd.is_possible()) {
    std::vector<int> rows;
    for (int i = 0; i < table.num_rows(); ++i) {
      if (table.row(i).IsTotal(fd.lhs)) rows.push_back(i);
    }
    violation = ScanBuckets(
        BucketRows(table, fd.lhs, rows, p),
        [&](int i, int j) {
          const Tuple& t = table.row(i);
          const Tuple& u = table.row(j);
          // Hash collisions: confirm the grouped columns really match.
          return t.EqualOn(u, fd.lhs) && StronglySimilar(t, u, fd.lhs) &&
                 !t.EqualOn(u, fd.rhs);
        },
        p);
  } else {
    const AttributeSet group = fd.lhs.Intersect(table.NullFreeColumns());
    const AttributeSet rest = fd.lhs.Difference(group);
    violation = ScanBuckets(
        BucketRows(table, group, AllRows(table.num_rows()), p),
        [&](int i, int j) {
          const Tuple& t = table.row(i);
          const Tuple& u = table.row(j);
          return t.EqualOn(u, group) && WeaklySimilar(t, u, rest) &&
                 !t.EqualOn(u, fd.rhs);
        },
        p);
  }
  if (violation) violation->constraint = Constraint(fd);
  return violation;
}

std::optional<Violation> FindKeyViolationTuple(const Table& table,
                                               const KeyConstraint& key,
                                               const ParallelOptions& par) {
  std::optional<ThreadPool> pool;
  if (WantPool(table.num_rows(), par)) pool.emplace(par.threads);
  ThreadPool* p = pool ? &*pool : nullptr;
  std::optional<Violation> violation;
  if (key.is_possible()) {
    std::vector<int> rows;
    for (int i = 0; i < table.num_rows(); ++i) {
      if (table.row(i).IsTotal(key.attrs)) rows.push_back(i);
    }
    violation = ScanBuckets(
        BucketRows(table, key.attrs, rows, p),
        [&](int i, int j) {
          return table.row(i).EqualOn(table.row(j), key.attrs);
        },
        p);
  } else {
    const AttributeSet group = key.attrs.Intersect(table.NullFreeColumns());
    const AttributeSet rest = key.attrs.Difference(group);
    violation = ScanBuckets(
        BucketRows(table, group, AllRows(table.num_rows()), p),
        [&](int i, int j) {
          const Tuple& t = table.row(i);
          const Tuple& u = table.row(j);
          return t.EqualOn(u, group) && WeaklySimilar(t, u, rest);
        },
        p);
  }
  if (violation) violation->constraint = Constraint(key);
  return violation;
}

// ---- Table entry points (encode-and-forward) -------------------------

std::optional<Violation> FindFdViolationFast(const Table& table,
                                             const FunctionalDependency& fd,
                                             const ParallelOptions& par) {
  const EncodedTable enc(table, fd.lhs.Union(fd.rhs));
  return FindFdViolationEncoded(enc, fd, par);
}

std::optional<Violation> FindKeyViolationFast(const Table& table,
                                              const KeyConstraint& key,
                                              const ParallelOptions& par) {
  const EncodedTable enc(table, key.attrs);
  return FindKeyViolationEncoded(enc, key, par);
}

bool ValidateFd(const Table& table, const FunctionalDependency& fd,
                const ParallelOptions& par) {
  return !FindFdViolationFast(table, fd, par).has_value();
}

bool ValidateKey(const Table& table, const KeyConstraint& key,
                 const ParallelOptions& par) {
  return !FindKeyViolationFast(table, key, par).has_value();
}

bool ValidateAll(const Table& table, const ConstraintSet& sigma,
                 const ParallelOptions& par) {
  if (!table.CheckNfs().ok()) return false;
  AttributeSet needed;
  for (const auto& fd : sigma.fds()) needed = needed | fd.lhs | fd.rhs;
  for (const auto& key : sigma.keys()) needed = needed | key.attrs;
  const EncodedTable enc(table, needed);
  for (const auto& fd : sigma.fds()) {
    if (!ValidateFdEncoded(enc, fd, par)) return false;
  }
  for (const auto& key : sigma.keys()) {
    if (!ValidateKeyEncoded(enc, key, par)) return false;
  }
  return true;
}

}  // namespace sqlnf
