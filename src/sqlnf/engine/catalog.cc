#include "sqlnf/engine/catalog.h"

#include "sqlnf/core/similarity.h"
#include "sqlnf/engine/validate.h"

namespace sqlnf {

std::optional<Violation> ValidateRowAgainst(const Table& table,
                                            const Tuple& row,
                                            const ConstraintSet& sigma) {
  // NFS first.
  for (AttributeId a : table.schema().nfs()) {
    if (row[a].is_null()) {
      Violation v;
      v.row1 = v.row2 = table.num_rows();
      v.attribute = a;
      return v;
    }
  }
  // Pair the candidate with every stored row.
  for (int i = 0; i < table.num_rows(); ++i) {
    const Tuple& existing = table.row(i);
    for (const auto& fd : sigma.fds()) {
      const bool similar = fd.is_possible()
                               ? StronglySimilar(row, existing, fd.lhs)
                               : WeaklySimilar(row, existing, fd.lhs);
      if (similar && !row.EqualOn(existing, fd.rhs)) {
        return Violation{i, table.num_rows(), Constraint(fd),
                         std::nullopt};
      }
    }
    for (const auto& key : sigma.keys()) {
      const bool similar = key.is_possible()
                               ? StronglySimilar(row, existing, key.attrs)
                               : WeaklySimilar(row, existing, key.attrs);
      if (similar) {
        return Violation{i, table.num_rows(), Constraint(key),
                         std::nullopt};
      }
    }
  }
  return std::nullopt;
}

namespace {

/// First violation in the encoded instance, if any — the whole-statement
/// post-image check of the UPDATE path, running entirely on codes.
std::optional<Violation> FindViolationEncoded(const EncodedTable& enc,
                                              const ConstraintSet& sigma) {
  for (const auto& fd : sigma.fds()) {
    if (auto v = FindFdViolationEncoded(enc, fd)) return v;
  }
  for (const auto& key : sigma.keys()) {
    if (auto v = FindKeyViolationEncoded(enc, key)) return v;
  }
  return std::nullopt;
}

}  // namespace

Tuple StoredTable::DecodeRow(int row) const {
  const EncodedTable& enc = columns();
  std::vector<Value> values;
  values.reserve(num_columns());
  for (AttributeId a = 0; a < num_columns(); ++a) {
    values.push_back(enc.DecodeCode(a, enc.code(a, row)));
  }
  return Tuple(std::move(values));
}

Status Database::CreateTable(const TableSchema& schema,
                             ConstraintSet sigma) {
  if (tables_.count(schema.name())) {
    return Status::Invalid("table '" + schema.name() + "' already exists");
  }
  tables_.emplace(schema.name(), StoredTable(schema, std::move(sigma)));
  return Status::OK();
}

Status Database::IngestTable(const Table& data, ConstraintSet sigma) {
  const std::string& name = data.schema().name();
  SQLNF_RETURN_NOT_OK(CreateTable(data.schema(), std::move(sigma)));
  for (const Tuple& row : data.rows()) {
    Status st = Insert(name, row);
    if (!st.ok()) {
      (void)DropTable(name);
      return st;
    }
  }
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

Result<const StoredTable*> Database::Find(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

Result<StoredTable*> Database::FindMutable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

Status Database::Insert(const std::string& name, Tuple row) {
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  if (row.size() != stored->num_columns()) {
    return Status::Invalid("INSERT arity mismatch: got " +
                           std::to_string(row.size()) + ", expected " +
                           std::to_string(stored->num_columns()));
  }
  if (auto violation = stored->enforcer().Check(row)) {
    return Status::FailedPrecondition(
        "INSERT rejected: " + violation->ToString(stored->schema()));
  }
  stored->enforcer().Add(row, stored->num_rows());
  return Status::OK();
}

Result<Table> Database::Select(
    const std::string& name,
    const std::vector<ColumnCondition>& where) const {
  SQLNF_ASSIGN_OR_RETURN(const StoredTable* stored, Find(name));
  Table out(stored->schema());
  const std::vector<int> sel = SelectRowsEncoded(stored->columns(), where);
  out.ReserveRows(static_cast<int>(sel.size()));
  for (int i : sel) {
    SQLNF_RETURN_NOT_OK(out.AddRow(stored->DecodeRow(i)));
  }
  return out;
}

Result<int> Database::UpdateMatched(StoredTable* stored,
                                    const std::vector<int>& matches,
                                    AttributeId column, const Value& value) {
  const EncodedTable& enc = stored->columns();
  // A value the dictionary has never seen is kMissingCode, which equals
  // no stored code — every matched row then counts as changed.
  const uint32_t want = enc.LookupCode(column, value);
  std::vector<int> changed;
  for (int i : matches) {
    if (enc.code(column, i) != want) changed.push_back(i);
  }
  if (changed.empty()) return 0;
  if (value.is_null() && stored->schema().nfs().Contains(column)) {
    return Status::FailedPrecondition(
        "UPDATE rejected: NOT NULL column cannot hold NULL");
  }
  // Flip the changed slots in place: unindex each row under its
  // PRE-image codes, then re-add the post-image (which re-encodes the
  // slot). Untouched rows keep their ids — no rebuild, no copy.
  IncrementalEnforcer& enforcer = stored->enforcer();
  std::vector<Tuple> pre;
  pre.reserve(changed.size());
  for (int i : changed) pre.push_back(stored->DecodeRow(i));
  for (size_t k = 0; k < changed.size(); ++k) {
    Tuple post = pre[k];
    post[column] = value;
    enforcer.Remove(changed[k]);
    enforcer.Add(post, changed[k]);
  }
  // Whole-statement post-image validation on the maintained encoding.
  // The NFS cannot newly fail (only `column` changed, checked above).
  if (auto violation = FindViolationEncoded(stored->columns(),
                                            stored->sigma())) {
    for (size_t k = 0; k < changed.size(); ++k) {
      enforcer.Remove(changed[k]);
      enforcer.Add(pre[k], changed[k]);
    }
    return Status::FailedPrecondition(
        "UPDATE rejected: " + violation->ToString(stored->schema()));
  }
  return static_cast<int>(changed.size());
}

Result<int> Database::Update(const std::string& name,
                             const std::vector<ColumnCondition>& where,
                             AttributeId column, const Value& value) {
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  if (column < 0 || column >= stored->num_columns()) {
    return Status::Invalid("UPDATE column out of range");
  }
  return UpdateMatched(stored, SelectRowsEncoded(stored->columns(), where),
                       column, value);
}

Result<int> Database::Update(
    const std::string& name,
    const std::function<bool(const Tuple&)>& predicate, AttributeId column,
    const Value& value) {
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  if (column < 0 || column >= stored->num_columns()) {
    return Status::Invalid("UPDATE column out of range");
  }
  std::vector<int> matches;
  for (int i = 0; i < stored->num_rows(); ++i) {
    if (predicate(stored->DecodeRow(i))) matches.push_back(i);
  }
  return UpdateMatched(stored, matches, column, value);
}

int Database::DeleteMatched(StoredTable* stored,
                            const std::vector<int>& matches) {
  // Unindex the erased rows (while their codes still hold them), then
  // compact the encoding and renumber the survivors in place.
  for (int i : matches) stored->enforcer().Remove(i);
  stored->enforcer().CompactAfterErase(matches);
  return static_cast<int>(matches.size());
}

Result<int> Database::Delete(const std::string& name,
                             const std::vector<ColumnCondition>& where) {
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  return DeleteMatched(stored, SelectRowsEncoded(stored->columns(), where));
}

Result<int> Database::Delete(
    const std::string& name,
    const std::function<bool(const Tuple&)>& predicate) {
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  std::vector<int> matches;
  for (int i = 0; i < stored->num_rows(); ++i) {
    if (predicate(stored->DecodeRow(i))) matches.push_back(i);
  }
  return DeleteMatched(stored, matches);
}

}  // namespace sqlnf
