#include "sqlnf/engine/catalog.h"

#include "sqlnf/core/similarity.h"
#include "sqlnf/engine/validate.h"

namespace sqlnf {

std::optional<Violation> ValidateRowAgainst(const Table& table,
                                            const Tuple& row,
                                            const ConstraintSet& sigma) {
  // NFS first.
  for (AttributeId a : table.schema().nfs()) {
    if (row[a].is_null()) {
      Violation v;
      v.row1 = v.row2 = table.num_rows();
      v.attribute = a;
      return v;
    }
  }
  // Pair the candidate with every stored row.
  for (int i = 0; i < table.num_rows(); ++i) {
    const Tuple& existing = table.row(i);
    for (const auto& fd : sigma.fds()) {
      const bool similar = fd.is_possible()
                               ? StronglySimilar(row, existing, fd.lhs)
                               : WeaklySimilar(row, existing, fd.lhs);
      if (similar && !row.EqualOn(existing, fd.rhs)) {
        return Violation{i, table.num_rows(), Constraint(fd),
                         std::nullopt};
      }
    }
    for (const auto& key : sigma.keys()) {
      const bool similar = key.is_possible()
                               ? StronglySimilar(row, existing, key.attrs)
                               : WeaklySimilar(row, existing, key.attrs);
      if (similar) {
        return Violation{i, table.num_rows(), Constraint(key),
                         std::nullopt};
      }
    }
  }
  return std::nullopt;
}

Status Database::CreateTable(const TableSchema& schema,
                             ConstraintSet sigma) {
  if (tables_.count(schema.name())) {
    return Status::Invalid("table '" + schema.name() + "' already exists");
  }
  tables_.emplace(schema.name(),
                  StoredTable(Table(schema), std::move(sigma)));
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

Result<const StoredTable*> Database::Find(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

Result<StoredTable*> Database::FindMutable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

Status Database::Insert(const std::string& name, Tuple row) {
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  if (row.size() != stored->data.num_columns()) {
    return Status::Invalid("INSERT arity mismatch: got " +
                           std::to_string(row.size()) + ", expected " +
                           std::to_string(stored->data.num_columns()));
  }
  if (auto violation = stored->enforcer.Check(stored->data, row)) {
    return Status::FailedPrecondition(
        "INSERT rejected: " +
        violation->ToString(stored->data.schema()));
  }
  stored->enforcer.Add(row, stored->data.num_rows());
  return stored->data.AddRow(std::move(row));
}

Result<int> Database::Update(
    const std::string& name,
    const std::function<bool(const Tuple&)>& predicate, AttributeId column,
    const Value& value) {
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  if (column < 0 || column >= stored->data.num_columns()) {
    return Status::Invalid("UPDATE column out of range");
  }
  // Post-image validation on a copy; swap in on success.
  Table candidate = stored->data;
  std::vector<int> changed_rows;
  for (int i = 0; i < candidate.num_rows(); ++i) {
    if (!predicate(candidate.row(i))) continue;
    if (!((*candidate.mutable_row(i))[column] == value)) {
      (*candidate.mutable_row(i))[column] = value;
      changed_rows.push_back(i);
    }
  }
  if (changed_rows.empty()) return 0;
  if (!candidate.CheckNfs().ok()) {
    return Status::FailedPrecondition(
        "UPDATE rejected: NOT NULL column cannot hold NULL");
  }
  if (!ValidateAll(candidate, stored->sigma)) {
    auto violation = FindViolation(candidate, stored->sigma);
    return Status::FailedPrecondition(
        "UPDATE rejected: " +
        (violation ? violation->ToString(candidate.schema())
                   : std::string("constraint violation")));
  }
  // Maintain the enforcer incrementally: unindex the changed rows under
  // their PRE-image values (the hash keys), then re-add the post-images.
  // Untouched rows keep their ids — no full rebuild.
  for (int i : changed_rows) stored->enforcer.Remove(stored->data.row(i), i);
  stored->data = std::move(candidate);
  for (int i : changed_rows) stored->enforcer.Add(stored->data.row(i), i);
  return static_cast<int>(changed_rows.size());
}

Result<int> Database::Delete(
    const std::string& name,
    const std::function<bool(const Tuple&)>& predicate) {
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  Table kept(stored->data.schema());
  std::vector<int> erased;
  for (int i = 0; i < stored->data.num_rows(); ++i) {
    const Tuple& t = stored->data.row(i);
    if (predicate(t)) {
      erased.push_back(i);
    } else {
      SQLNF_RETURN_NOT_OK(kept.AddRow(t));
    }
  }
  // Unindex the erased rows, then renumber the survivors in place —
  // surviving rows keep their relative order, so each id drops by the
  // number of erased ids below it. No full rebuild.
  for (int i : erased) stored->enforcer.Remove(stored->data.row(i), i);
  stored->data = std::move(kept);
  stored->enforcer.CompactAfterErase(erased);
  return static_cast<int>(erased.size());
}

}  // namespace sqlnf
