#include "sqlnf/engine/catalog.h"

#include "sqlnf/core/similarity.h"
#include "sqlnf/engine/validate.h"

namespace sqlnf {

std::optional<Violation> ValidateRowAgainst(const Table& table,
                                            const Tuple& row,
                                            const ConstraintSet& sigma) {
  // NFS first.
  for (AttributeId a : table.schema().nfs()) {
    if (row[a].is_null()) {
      Violation v;
      v.row1 = v.row2 = table.num_rows();
      v.attribute = a;
      return v;
    }
  }
  // Pair the candidate with every stored row.
  for (int i = 0; i < table.num_rows(); ++i) {
    const Tuple& existing = table.row(i);
    for (const auto& fd : sigma.fds()) {
      const bool similar = fd.is_possible()
                               ? StronglySimilar(row, existing, fd.lhs)
                               : WeaklySimilar(row, existing, fd.lhs);
      if (similar && !row.EqualOn(existing, fd.rhs)) {
        return Violation{i, table.num_rows(), Constraint(fd),
                         std::nullopt};
      }
    }
    for (const auto& key : sigma.keys()) {
      const bool similar = key.is_possible()
                               ? StronglySimilar(row, existing, key.attrs)
                               : WeaklySimilar(row, existing, key.attrs);
      if (similar) {
        return Violation{i, table.num_rows(), Constraint(key),
                         std::nullopt};
      }
    }
  }
  return std::nullopt;
}

namespace {

/// First violation in the encoded instance, if any — the whole-statement
/// post-image check of the UPDATE path, running entirely on codes.
std::optional<Violation> FindViolationEncoded(const EncodedTable& enc,
                                              const ConstraintSet& sigma) {
  for (const auto& fd : sigma.fds()) {
    if (auto v = FindFdViolationEncoded(enc, fd)) return v;
  }
  for (const auto& key : sigma.keys()) {
    if (auto v = FindKeyViolationEncoded(enc, key)) return v;
  }
  return std::nullopt;
}

}  // namespace

Tuple StoredTable::DecodeRow(int row) const {
  const EncodedTable& enc = columns();
  std::vector<Value> values;
  values.reserve(num_columns());
  for (AttributeId a = 0; a < num_columns(); ++a) {
    values.push_back(enc.DecodeCode(a, enc.code(a, row)));
  }
  return Tuple(std::move(values));
}

Result<Table> SelectFromSnapshot(const TableSnapshot& snapshot,
                                 const Predicate& where) {
  SQLNF_RETURN_NOT_OK(
      ValidatePredicate(where, snapshot.schema.num_attributes()));
  const std::vector<int> sel = SelectRowsEncoded(*snapshot.columns, where);
  return snapshot.columns->GatherRows(sel).Decode(snapshot.schema);
}

Result<Table> SelectFromSnapshot(
    const TableSnapshot& snapshot,
    const std::vector<ColumnCondition>& where) {
  return SelectFromSnapshot(snapshot, ToPredicate(where));
}

Status Database::CreateTableLocked(const TableSchema& schema,
                                   ConstraintSet sigma) {
  if (tables_.contains(schema.name())) {
    return Status::Invalid("table '" + schema.name() + "' already exists");
  }
  tables_.emplace(schema.name(), StoredTable(schema, std::move(sigma)));
  return Status::OK();
}

Status Database::CreateTable(const TableSchema& schema,
                             ConstraintSet sigma) {
  MutexLock lock(mu_);
  if (txn_) {
    return Status::FailedPrecondition(
        "DDL is not allowed inside a transaction");
  }
  return CreateTableLocked(schema, std::move(sigma));
}

Status Database::IngestTable(const Table& data, ConstraintSet sigma) {
  MutexLock lock(mu_);
  if (txn_) {
    return Status::FailedPrecondition(
        "DDL is not allowed inside a transaction");
  }
  const std::string& name = data.schema().name();
  SQLNF_RETURN_NOT_OK(CreateTableLocked(data.schema(), std::move(sigma)));
  // One implicit transaction around the bulk load: no snapshot is
  // republished per row, so copy-on-write never clones mid-ingest.
  txn_ = std::make_unique<UndoLog>();
  for (const Tuple& row : data.rows()) {
    Status st = InsertLocked(name, row);
    if (!st.ok()) {
      txn_.reset();
      tables_.erase(name);
      return st;
    }
  }
  txn_.reset();
  tables_.find(name)->second.MarkDirty(mu_);
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  MutexLock lock(mu_);
  if (txn_) {
    return Status::FailedPrecondition(
        "DDL is not allowed inside a transaction");
  }
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  MutexLock lock(mu_);
  return tables_.contains(name);
}

std::vector<std::string> Database::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

Result<const StoredTable*> Database::FindLocked(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

Result<const StoredTable*> Database::Find(const std::string& name) const {
  // The map lookup itself is serialized; the returned pointer is live
  // state, which the writer role on this method keeps single-threaded.
  MutexLock lock(mu_);
  return FindLocked(name);
}

Result<StoredTable*> Database::FindMutable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return &it->second;
}

Status Database::InsertLocked(const std::string& name, Tuple row) {
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  if (row.size() != stored->num_columns()) {
    return Status::Invalid("INSERT arity mismatch: got " +
                           std::to_string(row.size()) + ", expected " +
                           std::to_string(stored->num_columns()));
  }
  if (auto violation = stored->enforcer().Check(row)) {
    return Status::FailedPrecondition(
        "INSERT rejected: " + violation->ToString(stored->schema()));
  }
  const int row_id = stored->num_rows();
  if (txn_) {
    // Pin the committed state for readers, then log the inverse. Touch
    // runs BEFORE the mutation so the dictionary high-water marks
    // predate any code this statement mints.
    stored->PinSnapshot(mu_);
    TableUndo& undo = txn_->Touch(name, stored->columns());
    stored->enforcer().Add(row, row_id);
    UndoRecord r;
    r.kind = UndoRecord::Kind::kInsert;
    r.row_id = row_id;
    undo.ops.push_back(std::move(r));
  } else {
    stored->enforcer().Add(row, row_id);
    stored->MarkDirty(mu_);  // auto-commit
  }
  return Status::OK();
}

Status Database::Insert(const std::string& name, Tuple row) {
  MutexLock lock(mu_);
  return InsertLocked(name, std::move(row));
}

Result<Table> Database::Select(const std::string& name,
                               const Predicate& where) const {
  MutexLock lock(mu_);
  SQLNF_ASSIGN_OR_RETURN(const StoredTable* stored, FindLocked(name));
  SQLNF_RETURN_NOT_OK(ValidatePredicate(where, stored->num_columns()));
  // Columnar end to end: selection vector → gather → one decode at the
  // result boundary (no per-row DecodeRow round trips).
  const std::vector<int> sel = SelectRowsEncoded(stored->columns(), where);
  return stored->columns().GatherRows(sel).Decode(stored->schema());
}

Result<Table> Database::Select(
    const std::string& name,
    const std::vector<ColumnCondition>& where) const {
  return Select(name, ToPredicate(where));
}

Result<int> Database::UpdateMatched(StoredTable* stored,
                                    const std::vector<int>& matches,
                                    AttributeId column, const Value& value) {
  const EncodedTable& enc = stored->columns();
  // A value the dictionary has never seen is kMissingCode, which equals
  // no stored code — every matched row then counts as changed.
  const uint32_t want = enc.LookupCode(column, value);
  std::vector<int> changed;
  for (int i : matches) {
    if (enc.code(column, i) != want) changed.push_back(i);
  }
  if (changed.empty()) return 0;
  if (value.is_null() && stored->schema().nfs().Contains(column)) {
    return Status::FailedPrecondition(
        "UPDATE rejected: NOT NULL column cannot hold NULL");
  }
  if (txn_) {
    stored->PinSnapshot(mu_);
    txn_->Touch(stored->schema().name(), enc);
  }
  // Statement-scope undo: pre-images plus the dictionary high-water
  // marks, so a rejected statement also retires the codes it minted.
  TableUndo statement;
  statement.dict_mark = enc.DictionarySizes();
  for (int i : changed) {
    UndoRecord r;
    r.kind = UndoRecord::Kind::kUpdate;
    r.row_id = i;
    r.pre_image = stored->DecodeRow(i);
    statement.ops.push_back(std::move(r));
  }
  // Flip the changed slots in place: unindex each row under its
  // PRE-image codes, then re-add the post-image (which re-encodes the
  // slot). Untouched rows keep their ids — no rebuild, no copy.
  IncrementalEnforcer& enforcer = stored->enforcer();
  for (const UndoRecord& r : statement.ops) {
    Tuple post = r.pre_image;
    post[column] = value;
    enforcer.Remove(r.row_id);
    enforcer.Add(post, r.row_id);
  }
  // Whole-statement post-image validation on the maintained encoding.
  // The NFS cannot newly fail (only `column` changed, checked above).
  if (auto violation = FindViolationEncoded(stored->columns(),
                                            stored->sigma())) {
    UndoLog::RollbackTable(statement, &enforcer);
    return Status::FailedPrecondition(
        "UPDATE rejected: " + violation->ToString(stored->schema()));
  }
  if (txn_) {
    TableUndo& undo = txn_->Touch(stored->schema().name(), enc);
    for (UndoRecord& r : statement.ops) undo.ops.push_back(std::move(r));
  } else {
    stored->MarkDirty(mu_);  // auto-commit
  }
  return static_cast<int>(changed.size());
}

Result<int> Database::Update(const std::string& name,
                             const Predicate& where, AttributeId column,
                             const Value& value) {
  MutexLock lock(mu_);
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  if (column < 0 || column >= stored->num_columns()) {
    return Status::Invalid("UPDATE column out of range");
  }
  SQLNF_RETURN_NOT_OK(ValidatePredicate(where, stored->num_columns()));
  return UpdateMatched(stored, SelectRowsEncoded(stored->columns(), where),
                       column, value);
}

Result<int> Database::Update(const std::string& name,
                             const std::vector<ColumnCondition>& where,
                             AttributeId column, const Value& value) {
  return Update(name, ToPredicate(where), column, value);
}

Result<int> Database::Update(
    const std::string& name,
    const std::function<bool(const Tuple&)>& predicate, AttributeId column,
    const Value& value) {
  MutexLock lock(mu_);
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  if (column < 0 || column >= stored->num_columns()) {
    return Status::Invalid("UPDATE column out of range");
  }
  std::vector<int> matches;
  for (int i = 0; i < stored->num_rows(); ++i) {
    if (predicate(stored->DecodeRow(i))) matches.push_back(i);
  }
  return UpdateMatched(stored, matches, column, value);
}

int Database::DeleteMatched(StoredTable* stored,
                            const std::vector<int>& matches) {
  if (matches.empty()) return 0;
  if (txn_) {
    stored->PinSnapshot(mu_);
    TableUndo& undo = txn_->Touch(stored->schema().name(),
                                  stored->columns());
    UndoRecord r;
    r.kind = UndoRecord::Kind::kDelete;
    r.erased_ids = matches;
    r.erased_rows.reserve(matches.size());
    for (int i : matches) r.erased_rows.push_back(stored->DecodeRow(i));
    undo.ops.push_back(std::move(r));
  }
  // Unindex the erased rows (while their codes still hold them), then
  // compact the encoding and renumber the survivors in place.
  for (int i : matches) stored->enforcer().Remove(i);
  stored->enforcer().CompactAfterErase(matches);
  if (!txn_) stored->MarkDirty(mu_);  // auto-commit
  return static_cast<int>(matches.size());
}

Result<int> Database::Delete(const std::string& name,
                             const Predicate& where) {
  MutexLock lock(mu_);
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  SQLNF_RETURN_NOT_OK(ValidatePredicate(where, stored->num_columns()));
  return DeleteMatched(stored, SelectRowsEncoded(stored->columns(), where));
}

Result<int> Database::Delete(const std::string& name,
                             const std::vector<ColumnCondition>& where) {
  return Delete(name, ToPredicate(where));
}

Result<int> Database::Delete(
    const std::string& name,
    const std::function<bool(const Tuple&)>& predicate) {
  MutexLock lock(mu_);
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  std::vector<int> matches;
  for (int i = 0; i < stored->num_rows(); ++i) {
    if (predicate(stored->DecodeRow(i))) matches.push_back(i);
  }
  return DeleteMatched(stored, matches);
}

Result<int> Database::CompactTable(const std::string& name) {
  MutexLock lock(mu_);
  if (txn_) {
    // The undo log records pre-compaction codes and dictionary
    // high-water marks; replaying it over canonical codes would
    // restore garbage. VACUUM therefore waits for the commit point.
    return Status::FailedPrecondition(
        "VACUUM is not allowed inside a transaction");
  }
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  // Keep the current epoch readable: published snapshot columns are
  // separate shared_ptrs, and compaction publishes fresh column
  // versions rather than mutating in place, so concurrent readers
  // keep their pre-compaction codes bit-stable.
  stored->PinSnapshot(mu_);
  const int retired = stored->enforcer().CompactDictionaries();
  stored->MarkDirty(mu_);  // next GetSnapshot sees canonical codes
  return retired;
}

Result<TableSnapshot> Database::GetSnapshot(const std::string& name) {
  MutexLock lock(mu_);
  SQLNF_ASSIGN_OR_RETURN(StoredTable * stored, FindMutable(name));
  // Mid-transaction this can only refresh tables the transaction has
  // not touched (a touched table was pinned clean by its first write),
  // so uncommitted rows are never published.
  return stored->Snapshot(mu_);
}

std::map<std::string, TableSnapshot> Database::SnapshotAll() {
  MutexLock lock(mu_);
  std::map<std::string, TableSnapshot> out;
  for (auto& [name, stored] : tables_) {
    out.emplace(name, stored.Snapshot(mu_));
  }
  return out;
}

Status Database::Begin() {
  MutexLock lock(mu_);
  if (txn_) {
    return Status::FailedPrecondition(
        "a transaction is already in progress");
  }
  txn_ = std::make_unique<UndoLog>();
  return Status::OK();
}

Status Database::Commit() {
  MutexLock lock(mu_);
  if (!txn_) {
    return Status::FailedPrecondition("no transaction in progress");
  }
  for (const auto& [name, undo] : txn_->tables()) {
    tables_.find(name)->second.MarkDirty(mu_);  // DDL is barred mid-txn
  }
  txn_.reset();
  return Status::OK();
}

Status Database::Rollback() {
  MutexLock lock(mu_);
  if (!txn_) {
    return Status::FailedPrecondition("no transaction in progress");
  }
  for (const auto& [name, undo] : txn_->tables()) {
    UndoLog::RollbackTable(undo, &tables_.find(name)->second.enforcer());
  }
  txn_.reset();
  return Status::OK();
}

bool Database::InTransaction() const {
  MutexLock lock(mu_);
  return txn_ != nullptr;
}

}  // namespace sqlnf
