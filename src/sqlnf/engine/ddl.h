// SQL DDL emission: turning designs and decompositions into CREATE
// TABLE statements.
//
// NOT NULL columns map directly. Certain keys over null-free columns
// map to PRIMARY KEY/UNIQUE; possible keys map to UNIQUE (SQL's UNIQUE
// treats rows with nulls as distinct, which matches p-key semantics for
// single-occurrence ⊥). Constraints SQL cannot express declaratively
// (c-keys with nullable columns, FDs) are emitted as comments so the
// generated schema remains honest.

#ifndef SQLNF_ENGINE_DDL_H_
#define SQLNF_ENGINE_DDL_H_

#include <string>

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/decomposition/vrnf_decompose.h"

namespace sqlnf {

/// CREATE TABLE for one design. All columns are typed TEXT (the library
/// is type-agnostic); keys become table constraints where expressible.
std::string EmitCreateTable(const SchemaDesign& design);

/// DDL for every component of a VRNF decomposition of `design`,
/// including the Theorem-12 keys the decomposition guarantees.
std::string EmitDecompositionDdl(const SchemaDesign& design,
                                 const VrnfResult& result);

}  // namespace sqlnf

#endif  // SQLNF_ENGINE_DDL_H_
