#include "sqlnf/related/possible_worlds.h"

#include <string>

namespace sqlnf {

namespace {

// Null positions and candidate targets for one column.
struct ColumnPlan {
  AttributeId column;
  std::vector<int> null_rows;
  std::vector<Value> candidates;  // existing values + fresh values
  int num_existing = 0;
};

// Classical FD on a total (within lhs/rhs) table: exact equality.
bool ClassicalFdHolds(const Table& table, const AttributeSet& lhs,
                      const AttributeSet& rhs) {
  const int n = table.num_rows();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (table.row(i).EqualOn(table.row(j), lhs) &&
          !table.row(i).EqualOn(table.row(j), rhs)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Result<long long> ForEachCompletion(
    const Table& table, const AttributeSet& columns,
    const std::function<bool(const Table&)>& fn,
    const WorldLimits& limits) {
  std::vector<ColumnPlan> plans;
  long long world_estimate = 1;
  for (AttributeId col : columns) {
    ColumnPlan plan;
    plan.column = col;
    for (int r = 0; r < table.num_rows(); ++r) {
      if (table.row(r)[col].is_null()) plan.null_rows.push_back(r);
    }
    if (plan.null_rows.empty()) continue;
    plan.candidates = table.ColumnValues(col);
    plan.num_existing = static_cast<int>(plan.candidates.size());
    // k pairwise-distinct fresh values; names cannot collide with data
    // values because they use a reserved prefix unlikely in tests, and
    // equality patterns only need distinctness.
    for (size_t k = 0; k < plan.null_rows.size(); ++k) {
      plan.candidates.push_back(Value::Str(
          "__world__" + std::to_string(col) + "_" + std::to_string(k)));
    }
    for (size_t i = 0; i < plan.null_rows.size(); ++i) {
      world_estimate *= static_cast<long long>(plan.candidates.size());
      if (world_estimate > limits.max_worlds) {
        return Status::OutOfRange(
            "completion space exceeds max_worlds limit");
      }
    }
    plans.push_back(std::move(plan));
  }

  Table world = table;
  long long visited = 0;
  bool keep_going = true;

  // Odometer over all (column, null position) choices.
  std::vector<std::pair<int, int>> slots;  // (plan idx, null idx)
  for (size_t p = 0; p < plans.size(); ++p) {
    for (size_t k = 0; k < plans[p].null_rows.size(); ++k) {
      slots.emplace_back(static_cast<int>(p), static_cast<int>(k));
    }
  }
  std::vector<int> odometer(slots.size(), 0);
  while (keep_going) {
    for (size_t s = 0; s < slots.size(); ++s) {
      const ColumnPlan& plan = plans[slots[s].first];
      (*world.mutable_row(
          plan.null_rows[slots[s].second]))[plan.column] =
          plan.candidates[odometer[s]];
    }
    ++visited;
    if (!fn(world)) break;
    // Advance the odometer.
    size_t s = 0;
    for (; s < slots.size(); ++s) {
      const ColumnPlan& plan = plans[slots[s].first];
      if (++odometer[s] < static_cast<int>(plan.candidates.size())) break;
      odometer[s] = 0;
    }
    if (s == slots.size()) keep_going = false;
  }
  return visited;
}

Result<bool> HoldsInSomeCompletion(const Table& table,
                                   const AttributeSet& lhs,
                                   const AttributeSet& rhs,
                                   const WorldLimits& limits) {
  bool found = false;
  SQLNF_ASSIGN_OR_RETURN(
      long long visited,
      ForEachCompletion(
          table, table.schema().all(),
          [&](const Table& world) {
            if (ClassicalFdHolds(world, lhs, rhs)) {
              found = true;
              return false;
            }
            return true;
          },
          limits));
  (void)visited;
  return found;
}

Result<bool> HoldsInEveryCompletion(const Table& table,
                                    const AttributeSet& lhs,
                                    const AttributeSet& rhs,
                                    const WorldLimits& limits) {
  bool all = true;
  SQLNF_ASSIGN_OR_RETURN(
      long long visited,
      ForEachCompletion(
          table, table.schema().all(),
          [&](const Table& world) {
            if (!ClassicalFdHolds(world, lhs, rhs)) {
              all = false;
              return false;
            }
            return true;
          },
          limits));
  (void)visited;
  return all;
}

}  // namespace sqlnf
