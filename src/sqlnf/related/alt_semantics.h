// Alternative FD semantics from the literature (paper Section 3,
// Example 2), for comparison against possible/certain FDs:
//
//  * Vassiliou [39]: three-valued satisfaction. Per ordered tuple pair
//    (reflexive pairs included) the implication  t[X]=t'[X] ⇒ t[Y]=t'[Y]
//    is evaluated in Łukasiewicz three-valued logic, where an atomic
//    comparison involving ⊥ is `unknown`; the FD's value is the minimum
//    over all pairs (holds / may hold / does not hold).
//  * Levene/Loizou [24]: weak FDs (hold in SOME possible world) and
//    strong FDs (hold in EVERY possible world) under the
//    "value unknown at present" completion semantics.
//  * LHS-replacement characterizations of Lien's possible FDs and this
//    paper's certain FDs: X →s Y holds iff SOME replacement of the ⊥
//    occurrences in the X-columns satisfies the FD classically;
//    X →w Y holds iff EVERY such replacement does.

#ifndef SQLNF_RELATED_ALT_SEMANTICS_H_
#define SQLNF_RELATED_ALT_SEMANTICS_H_

#include "sqlnf/constraints/constraint.h"
#include "sqlnf/core/table.h"
#include "sqlnf/related/possible_worlds.h"

namespace sqlnf {

enum class ThreeValued { kFalse, kUnknown, kTrue };

const char* ThreeValuedToString(ThreeValued v);

/// Vassiliou's three-valued FD satisfaction (Łukasiewicz, reflexive
/// pairs included).
ThreeValued VassiliouFd(const Table& table, const AttributeSet& lhs,
                        const AttributeSet& rhs);

/// Levene/Loizou weak FD: the classical FD holds in some completion.
Result<bool> LeveneLoizouWeakFd(const Table& table, const AttributeSet& lhs,
                                const AttributeSet& rhs,
                                const WorldLimits& limits = {});

/// Levene/Loizou strong FD: the classical FD holds in every completion.
Result<bool> LeveneLoizouStrongFd(const Table& table,
                                  const AttributeSet& lhs,
                                  const AttributeSet& rhs,
                                  const WorldLimits& limits = {});

/// ∃-replacement semantics: some replacement of ⊥ in the LHS columns
/// makes every LHS-matching pair agree on the ORIGINAL RHS values (the
/// replacement affects matching only). Coincides with the possible FD
/// X →s Y (tested property).
Result<bool> SomeLhsReplacementSatisfies(const Table& table,
                                         const AttributeSet& lhs,
                                         const AttributeSet& rhs,
                                         const WorldLimits& limits = {});

/// ∀-replacement semantics: every replacement of ⊥ in the LHS columns
/// satisfies the FD classically. Coincides with the certain FD X →w Y.
Result<bool> EveryLhsReplacementSatisfies(const Table& table,
                                          const AttributeSet& lhs,
                                          const AttributeSet& rhs,
                                          const WorldLimits& limits = {});

}  // namespace sqlnf

#endif  // SQLNF_RELATED_ALT_SEMANTICS_H_
