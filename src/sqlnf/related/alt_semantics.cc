#include "sqlnf/related/alt_semantics.h"

#include <algorithm>

namespace sqlnf {

const char* ThreeValuedToString(ThreeValued v) {
  switch (v) {
    case ThreeValued::kFalse:
      return "F";
    case ThreeValued::kUnknown:
      return "unk";
    case ThreeValued::kTrue:
      return "T";
  }
  return "?";
}

namespace {

// Three-valued equality of one attribute pair: unknown when ⊥ involved.
ThreeValued Eq3(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return ThreeValued::kUnknown;
  return a == b ? ThreeValued::kTrue : ThreeValued::kFalse;
}

// Kleene conjunction over a set of attributes.
ThreeValued And3(const Tuple& t, const Tuple& u, const AttributeSet& x) {
  ThreeValued acc = ThreeValued::kTrue;
  for (AttributeId a : x) {
    acc = std::min(acc, Eq3(t[a], u[a]));
    if (acc == ThreeValued::kFalse) break;
  }
  return acc;
}

// Łukasiewicz implication: numeric min(1, 1 − p + q) over {0, ½, 1}.
ThreeValued Implies3(ThreeValued p, ThreeValued q) {
  int val = 2 - static_cast<int>(p) + static_cast<int>(q);
  return static_cast<ThreeValued>(std::min(val, 2));
}

// Replacement-world FD check: the replacement only affects LHS
// matching; RHS equality is evaluated on the ORIGINAL tuples (⊥ as a
// marker). This is what makes internal c-FDs like Example 1's
// nd ->w d meaningful: completing a ⊥ dob can force two rows to match
// on the LHS while their stored dobs (⊥ vs a date) still differ.
bool ReplacementWorldSatisfies(const Table& world, const Table& original,
                               const AttributeSet& lhs,
                               const AttributeSet& rhs) {
  const int n = world.num_rows();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (world.row(i).EqualOn(world.row(j), lhs) &&
          !original.row(i).EqualOn(original.row(j), rhs)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

ThreeValued VassiliouFd(const Table& table, const AttributeSet& lhs,
                        const AttributeSet& rhs) {
  ThreeValued acc = ThreeValued::kTrue;
  const int n = table.num_rows();
  for (int i = 0; i < n && acc != ThreeValued::kFalse; ++i) {
    for (int j = 0; j < n; ++j) {  // ordered pairs, reflexive included
      const Tuple& t = table.row(i);
      const Tuple& u = table.row(j);
      acc = std::min(acc, Implies3(And3(t, u, lhs), And3(t, u, rhs)));
      if (acc == ThreeValued::kFalse) break;
    }
  }
  return acc;
}

Result<bool> LeveneLoizouWeakFd(const Table& table, const AttributeSet& lhs,
                                const AttributeSet& rhs,
                                const WorldLimits& limits) {
  return HoldsInSomeCompletion(table, lhs, rhs, limits);
}

Result<bool> LeveneLoizouStrongFd(const Table& table,
                                  const AttributeSet& lhs,
                                  const AttributeSet& rhs,
                                  const WorldLimits& limits) {
  return HoldsInEveryCompletion(table, lhs, rhs, limits);
}

Result<bool> SomeLhsReplacementSatisfies(const Table& table,
                                         const AttributeSet& lhs,
                                         const AttributeSet& rhs,
                                         const WorldLimits& limits) {
  bool found = false;
  SQLNF_ASSIGN_OR_RETURN(
      long long visited,
      ForEachCompletion(table, lhs,
                        [&](const Table& world) {
                          if (ReplacementWorldSatisfies(world, table, lhs,
                                                        rhs)) {
                            found = true;
                            return false;
                          }
                          return true;
                        },
                        limits));
  (void)visited;
  return found;
}

Result<bool> EveryLhsReplacementSatisfies(const Table& table,
                                          const AttributeSet& lhs,
                                          const AttributeSet& rhs,
                                          const WorldLimits& limits) {
  bool all = true;
  SQLNF_ASSIGN_OR_RETURN(
      long long visited,
      ForEachCompletion(table, lhs,
                        [&](const Table& world) {
                          if (!ReplacementWorldSatisfies(world, table, lhs,
                                                         rhs)) {
                            all = false;
                            return false;
                          }
                          return true;
                        },
                        limits));
  (void)visited;
  return all;
}

}  // namespace sqlnf
