// Possible-world (completion) enumeration for tables with ⊥.
//
// A completion replaces every ⊥ occurrence by a domain value. Domains
// are infinite, but FD/key satisfaction depends only on the equality
// pattern within each column, so it suffices to enumerate, per column,
// assignments of the ⊥ positions to either (a) one of the existing
// values of that column or (b) one of k "fresh" pairwise-distinct
// values (k = number of ⊥ positions in the column); columns are
// independent. Every equality pattern a real completion could exhibit
// is realized by at least one enumerated world.
//
// This engine powers the Levene/Loizou weak & strong FDs (Section 3 /
// Example 2) and the ∃/∀ LHS-replacement characterization of possible
// and certain FDs (Section 2's intuition), and the tests that validate
// both characterizations.

#ifndef SQLNF_RELATED_POSSIBLE_WORLDS_H_
#define SQLNF_RELATED_POSSIBLE_WORLDS_H_

#include <functional>
#include <vector>

#include "sqlnf/core/table.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

struct WorldLimits {
  /// Abort when the enumeration would exceed this many worlds.
  long long max_worlds = 2'000'000;
};

/// Calls `fn` for every canonical completion of `table`, restricted to
/// replacing ⊥ only in `columns` (pass schema.all() for full
/// completions). Stops early when `fn` returns false. Returns the
/// number of worlds visited, or OutOfRange past the limit.
Result<long long> ForEachCompletion(
    const Table& table, const AttributeSet& columns,
    const std::function<bool(const Table&)>& fn,
    const WorldLimits& limits = {});

/// True when some / every completion of `table` (all columns) satisfies
/// the classical FD lhs → rhs (evaluated as exact value equality, which
/// on total data coincides with both Definition-1 semantics).
Result<bool> HoldsInSomeCompletion(const Table& table,
                                   const AttributeSet& lhs,
                                   const AttributeSet& rhs,
                                   const WorldLimits& limits = {});
Result<bool> HoldsInEveryCompletion(const Table& table,
                                    const AttributeSet& lhs,
                                    const AttributeSet& rhs,
                                    const WorldLimits& limits = {});

}  // namespace sqlnf

#endif  // SQLNF_RELATED_POSSIBLE_WORLDS_H_
