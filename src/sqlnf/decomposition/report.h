// Decomposition accounting, mirroring the paper's Section 7 reporting:
// per-column redundant value occurrences eliminated, null-marker
// occurrences eliminated, and total cell counts before/after (the
// 3806 → 3720 comparison for the LMRP contractor table).

#ifndef SQLNF_DECOMPOSITION_REPORT_H_
#define SQLNF_DECOMPOSITION_REPORT_H_

#include <string>
#include <vector>

#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/decomposition/vrnf_decompose.h"

namespace sqlnf {

/// Occurrence counts for one original column across the decomposition.
struct ColumnStats {
  AttributeId column = 0;
  int components = 0;          // how many components contain the column
  int occurrences_before = 0;  // = original row count
  int occurrences_after = 0;   // summed over containing components
  int nulls_before = 0;
  int nulls_after = 0;

  int values_before() const { return occurrences_before - nulls_before; }
  int values_after() const { return occurrences_after - nulls_after; }
  /// Redundant non-null value occurrences eliminated (0 when the column
  /// is replicated into several components and grew).
  int values_eliminated() const {
    int d = values_before() - values_after();
    return d > 0 ? d : 0;
  }
  /// ⊥ occurrences eliminated (possible but not guaranteed, paper §7).
  int nulls_eliminated() const {
    int d = nulls_before - nulls_after;
    return d > 0 ? d : 0;
  }
};

struct DecompositionReport {
  std::vector<Table> tables;  // projected tables, component order
  std::vector<ColumnStats> columns;
  int64_t cells_before = 0;
  int64_t cells_after = 0;

  int TotalValuesEliminated() const;
  int TotalNullsEliminated() const;

  /// Paper-style summary text.
  std::string ToString(const TableSchema& schema) const;
};

/// Projects `original` by `d` and tallies the elimination statistics.
Result<DecompositionReport> ReportDecomposition(const Table& original,
                                                const Decomposition& d);

/// Per-step accounting for an Algorithm-3 run, matching the paper's
/// Section 7 numbers: for each split by X →w XY, every pure-RHS
/// attribute A ∈ XY − X loses (source rows − set-projection rows)
/// occurrences; LHS attributes replicated into other components are join
/// keys, not redundancy, and are not counted.
struct StepElimination {
  VrnfStep step;
  int source_rows = 0;
  int set_rows = 0;
  struct PerColumn {
    AttributeId column = 0;
    int values_eliminated = 0;
    int nulls_eliminated = 0;
  };
  std::vector<PerColumn> columns;  // one entry per A ∈ XY − X
};

Result<std::vector<StepElimination>> ReportVrnfSteps(
    const Table& original, const VrnfResult& result);

}  // namespace sqlnf

#endif  // SQLNF_DECOMPOSITION_REPORT_H_
