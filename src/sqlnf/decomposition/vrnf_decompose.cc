#include "sqlnf/decomposition/vrnf_decompose.h"

#include <deque>
#include <functional>
#include <optional>

#include "sqlnf/reasoning/implication.h"

namespace sqlnf {

std::string VrnfStep::ToString(const TableSchema& schema) const {
  std::string comp = schema.FormatSet(component);
  return std::string("split ") +
         (component_multiset ? "[[" + comp + "]]" : "[" + comp + "]") +
         " by " + fd.ToString(schema) + " into [[" +
         schema.FormatSet(rest_component) + "]]-kind and [" +
         schema.FormatSet(set_component) + "]";
}

namespace {

// Enumerates subsets of `universe` by ascending size, invoking `fn` on
// each; stops early when fn returns true. Skips supersets of any set
// recorded in `skip` (implied c-keys: their supersets are keys too and
// can never be violators).
bool ForEachSubsetAscending(
    const AttributeSet& universe,
    std::vector<AttributeSet>* skip,
    const std::function<bool(const AttributeSet&)>& fn) {
  std::vector<AttributeId> ids = universe.ToVector();
  const int n = static_cast<int>(ids.size());
  std::vector<int> pick;
  // Iterative k-combination enumeration for k = 0..n.
  for (int k = 0; k <= n; ++k) {
    pick.assign(k, 0);
    for (int i = 0; i < k; ++i) pick[i] = i;
    while (true) {
      AttributeSet subset;
      for (int i : pick) subset.Add(ids[i]);
      bool skipped = false;
      for (const AttributeSet& s : *skip) {
        if (s.IsSubsetOf(subset)) {
          skipped = true;
          break;
        }
      }
      if (!skipped && fn(subset)) return true;
      // next combination
      int i = k - 1;
      while (i >= 0 && pick[i] == n - k + i) --i;
      if (i < 0) break;
      ++pick[i];
      for (int j = i + 1; j < k; ++j) pick[j] = pick[j - 1] + 1;
    }
    if (k == 0 && n == 0) break;
  }
  return false;
}

// An LHS X ⊆ comp with an external implied c-FD inside comp and no
// implied c-key — or nullopt when the component is in VRNF.
//
// Pick order: the input FDs' own LHSs first, in Σ order (these are
// total by Algorithm 3's precondition, and following the user's
// declaration order reproduces the decompositions the paper reports);
// then an exhaustive ascending-size sweep, whose minimal-size picks are
// LHS-minimal and therefore total by the paper's preservation note.
std::optional<AttributeSet> FindVrnfViolator(const Implication& imp,
                                             const ConstraintSet& sigma,
                                             const AttributeSet& comp) {
  auto is_violator = [&](const AttributeSet& x) {
    if (imp.Implies(KeyConstraint::Certain(x))) return false;
    return !imp.CClosure(x).Intersect(comp).Difference(x).empty();
  };
  for (const FunctionalDependency& fd : sigma.fds()) {
    if (fd.lhs.IsSubsetOf(comp) && is_violator(fd.lhs)) return fd.lhs;
  }

  std::optional<AttributeSet> found;
  std::vector<AttributeSet> implied_keys;
  ForEachSubsetAscending(
      comp, &implied_keys, [&](const AttributeSet& x) {
        if (imp.Implies(KeyConstraint::Certain(x))) {
          implied_keys.push_back(x);
          return false;
        }
        AttributeSet ext = imp.CClosure(x).Intersect(comp).Difference(x);
        if (!ext.empty()) {
          found = x;
          return true;
        }
        return false;
      });
  return found;
}

}  // namespace

Result<VrnfResult> VrnfDecompose(const SchemaDesign& design,
                                 const VrnfOptions& options) {
  if (!design.sigma.AllCertain()) {
    return Status::Invalid(
        "Algorithm 3 requires certain keys and certain (total) FDs; use "
        "NormalizeToTotal to rewrite equivalent possible constraints");
  }
  if (!design.sigma.AllFdsTotal()) {
    return Status::Invalid(
        "Algorithm 3 requires total FDs (X ->w XY); use NormalizeToTotal");
  }
  if (design.table.num_attributes() > options.max_component_attributes) {
    return Status::OutOfRange(
        "schema exceeds max_component_attributes for the exhaustive VRNF "
        "check");
  }

  VrnfResult result;

  // Components carry the c-keys they have gained along the way: a split
  // [XY] satisfies c⟨X⟩ on all its instances (Theorem 12), and the
  // paper's Example 3 output (T2 = oicp, Σ2 = {c⟨oic⟩}) shows the
  // component schema is declared with that key — without it the
  // violating FD would still be "implied" on the component and the
  // algorithm could never terminate.
  struct Pending {
    AttributeSet attrs;
    bool multiset;
    std::vector<KeyConstraint> keys;  // accumulated, global ids
  };
  std::deque<Pending> queue;
  queue.push_back({design.table.all(), /*multiset=*/true, {}});

  int name_counter = 0;
  while (!queue.empty()) {
    Pending item = queue.front();
    queue.pop_front();

    ConstraintSet sigma_i = design.sigma;
    for (const KeyConstraint& k : item.keys) sigma_i.AddUniqueKey(k);
    Implication imp(design.table, sigma_i);

    std::optional<AttributeSet> x =
        FindVrnfViolator(imp, design.sigma, item.attrs);
    if (!x.has_value()) {
      Component component{item.attrs, item.multiset,
                          design.table.name() + "_" +
                              std::to_string(name_counter++)};
      result.decomposition.components.push_back(component);
      result.component_keys.push_back(item.keys);
      continue;
    }

    const AttributeSet xc = imp.CClosure(*x);
    if (!x->IsSubsetOf(xc)) {
      // The preservation property (LHS-minimal FDs implied by total FDs
      // and certain keys are total) guarantees this never fires.
      return Status::Internal(
          "LHS-minimal violator is not total; input outside Algorithm 3's "
          "class?");
    }
    const AttributeSet ext = xc.Intersect(item.attrs).Difference(*x);
    const AttributeSet xy = x->Union(ext);
    const AttributeSet rest = item.attrs.Difference(ext);

    VrnfStep step;
    step.component = item.attrs;
    step.component_multiset = item.multiset;
    step.fd = FunctionalDependency::Certain(*x, xy);
    step.set_component = xy;
    step.rest_component = rest;
    result.steps.push_back(step);

    // Accumulated keys survive projection when their attributes do.
    std::vector<KeyConstraint> rest_keys;
    for (const KeyConstraint& k : item.keys) {
      if (k.attrs.IsSubsetOf(rest)) rest_keys.push_back(k);
    }
    std::vector<KeyConstraint> xy_keys;
    for (const KeyConstraint& k : item.keys) {
      if (k.attrs.IsSubsetOf(xy)) xy_keys.push_back(k);
    }
    xy_keys.push_back(KeyConstraint::Certain(*x));  // Theorem 12

    queue.push_back({rest, item.multiset, std::move(rest_keys)});
    queue.push_back({xy, /*multiset=*/false, std::move(xy_keys)});
  }

  return result;
}

Result<ConstraintSet> NormalizeToTotal(const TableSchema& schema,
                                       const ConstraintSet& sigma) {
  Implication imp(schema, sigma);
  ConstraintSet out;
  for (const auto& fd : sigma.fds()) {
    FunctionalDependency total =
        FunctionalDependency::Certain(fd.lhs, fd.lhs.Union(fd.rhs));
    if (fd.IsTotal()) {
      out.AddUniqueFd(fd);
    } else if (imp.Implies(total)) {
      // Equivalent rewrite: Σ implies the total form, and the total form
      // implies the original (decomposition + weakening).
      out.AddUniqueFd(total);
    } else {
      return Status::Invalid(
          "FD " + fd.ToString(schema) +
          " has no equivalent total form under Sigma (its certain/total "
          "strengthening is not implied)");
    }
  }
  for (const auto& key : sigma.keys()) {
    if (key.is_certain()) {
      out.AddUniqueKey(key);
    } else if (imp.Implies(KeyConstraint::Certain(key.attrs))) {
      out.AddUniqueKey(KeyConstraint::Certain(key.attrs));
    } else {
      return Status::Invalid(
          "key " + key.ToString(schema) +
          " has no equivalent certain form under Sigma");
    }
  }
  return out;
}

Result<bool> AllComponentsVrnf(const SchemaDesign& design,
                               const VrnfResult& result,
                               const VrnfOptions& options) {
  for (size_t i = 0; i < result.decomposition.components.size(); ++i) {
    const Component& c = result.decomposition.components[i];
    if (c.attrs.size() > options.max_component_attributes) {
      return Status::OutOfRange("component too large for VRNF check");
    }
    ConstraintSet sigma_i = design.sigma;
    if (i < result.component_keys.size()) {
      for (const KeyConstraint& k : result.component_keys[i]) {
        sigma_i.AddUniqueKey(k);
      }
    }
    Implication imp(design.table, sigma_i);
    if (FindVrnfViolator(imp, design.sigma, c.attrs).has_value()) {
      return false;
    }
  }
  return true;
}

}  // namespace sqlnf
