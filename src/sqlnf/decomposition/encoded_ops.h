// Columnar relational operators over the dictionary encoding.
//
// These are the encoded counterparts of decomposition/decomposition.h
// and decomposition/lossless.h: set projection I[X] (dedup by code
// hash), multiset projection I[[X]], the equality join of Theorem 11,
// and the lossless-join round-trip check — all executing on uint32 code
// columns, decoding Values only at result boundaries.
//
// The one subtlety is cross-table equality. Within one encoding, code
// equality IS value equality; across two encodings the dictionaries
// differ, so the join first builds a per-column dictionary TRANSLATION
// MAP (EncodedTable::TranslationTo) carrying the right side's codes
// into the left side's code space. kNullCode is shared by construction
// (⊥ matches only ⊥ — the paper's equality-join semantics), and a right
// value absent from the left dictionary translates to kMissingCode,
// which matches no left code. After translation the join is a plain
// integer hash join. Every operator here is differentially tested
// against its row-major counterpart (tests/differential_test.cc,
// executor section), which remains the reference path.

#ifndef SQLNF_DECOMPOSITION_ENCODED_OPS_H_
#define SQLNF_DECOMPOSITION_ENCODED_OPS_H_

#include <string>
#include <vector>

#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/schema.h"
#include "sqlnf/core/table.h"
#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/util/parallel.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// A schema paired with a fully encoded instance — what the columnar
/// operators consume and produce. The row-major Table appears only at
/// the boundaries (FromTable on ingest, ToTable on decode).
struct EncodedRelation {
  TableSchema schema;
  EncodedTable columns;

  static EncodedRelation FromTable(const Table& table) {
    return {table.schema(), EncodedTable(table)};
  }
  Table ToTable() const { return columns.Decode(schema); }
};

/// Set projection I[X] on codes: gather the X columns, dedup rows by
/// code hash (first-occurrence order, matching ProjectSet exactly).
Result<EncodedRelation> ProjectSetEncoded(const TableSchema& schema,
                                          const EncodedTable& enc,
                                          const AttributeSet& x,
                                          const std::string& name);

/// Multiset projection I[[X]] on codes: a column gather, no row copy.
Result<EncodedRelation> ProjectMultisetEncoded(const TableSchema& schema,
                                               const EncodedTable& enc,
                                               const AttributeSet& x,
                                               const std::string& name);

/// Projects onto every component of `d` (the encoded ProjectAll).
Result<std::vector<EncodedRelation>> ProjectAllEncoded(
    const TableSchema& schema, const EncodedTable& enc,
    const Decomposition& d);

/// Natural equality join on codes (common columns by name; identical
/// values, ⊥ = ⊥ included — Theorem 11 semantics). The right side's
/// common-column codes are translated into the left side's code space,
/// then the join is a hash join over integer keys; the output gathers
/// matching rows from both sides' untouched dictionaries. With
/// `par.threads > 1` the probe phase is parallel over left-row chunks;
/// the emitted row order is identical to serial.
Result<EncodedRelation> EqualityJoinEncoded(const TableSchema& left_schema,
                                            const EncodedTable& left,
                                            const TableSchema& right_schema,
                                            const EncodedTable& right,
                                            const std::string& name,
                                            const ParallelOptions& par = {});

inline Result<EncodedRelation> EqualityJoinEncoded(
    const EncodedRelation& left, const EncodedRelation& right,
    const std::string& name, const ParallelOptions& par = {}) {
  return EqualityJoinEncoded(left.schema, left.columns, right.schema,
                             right.columns, name, par);
}

/// Reconstructs the instance from the projections of `d` by folding the
/// encoded equality join left-to-right (the encoded JoinComponents).
Result<EncodedRelation> JoinComponentsEncoded(const TableSchema& schema,
                                              const EncodedTable& enc,
                                              const Decomposition& d,
                                              const ParallelOptions& par = {});

/// True when the two fully encoded tables hold identical row multisets
/// under VALUE semantics (columns paired positionally; the dictionaries
/// may differ — b's codes are carried through a translation map into
/// a's code space before comparing).
bool SameMultisetEncoded(const EncodedTable& a, const EncodedTable& b);

/// The encoded IsLosslessForInstance: joins the projections of `d` and
/// compares against `enc` as a multiset, entirely on codes. `enc` must
/// be a full encoding of the instance over `schema`.
Result<bool> IsLosslessForInstanceEncoded(const TableSchema& schema,
                                          const EncodedTable& enc,
                                          const Decomposition& d,
                                          const ParallelOptions& par = {});

}  // namespace sqlnf

#endif  // SQLNF_DECOMPOSITION_ENCODED_OPS_H_
