// Columnar relational operators over the dictionary encoding.
//
// These are the encoded counterparts of decomposition/decomposition.h
// and decomposition/lossless.h: set projection I[X] (dedup by code
// hash), multiset projection I[[X]], the equality join of Theorem 11,
// and the lossless-join round-trip check — all executing on uint32 code
// columns, decoding Values only at result boundaries.
//
// The one subtlety is cross-table equality. Within one encoding, code
// equality IS value equality; across two encodings the dictionaries
// differ, so the join first builds a per-column dictionary TRANSLATION
// MAP (EncodedTable::TranslationTo) carrying the right side's codes
// into the left side's code space. kNullCode is shared by construction
// (⊥ matches only ⊥ — the paper's equality-join semantics), and a right
// value absent from the left dictionary translates to kMissingCode,
// which matches no left code. After translation the join is a plain
// integer hash join. Every operator here is differentially tested
// against its row-major counterpart (tests/differential_test.cc,
// executor section), which remains the reference path.

#ifndef SQLNF_DECOMPOSITION_ENCODED_OPS_H_
#define SQLNF_DECOMPOSITION_ENCODED_OPS_H_

#include <string>
#include <vector>

#include "sqlnf/core/encoded_table.h"
#include "sqlnf/core/schema.h"
#include "sqlnf/core/table.h"
#include "sqlnf/decomposition/decomposition.h"
#include "sqlnf/util/parallel.h"
#include "sqlnf/util/status.h"

namespace sqlnf {

/// A schema paired with a fully encoded instance — what the columnar
/// operators consume and produce. The row-major Table appears only at
/// the boundaries (FromTable on ingest, ToTable on decode).
struct EncodedRelation {
  TableSchema schema;
  EncodedTable columns;

  static EncodedRelation FromTable(const Table& table) {
    return {table.schema(), EncodedTable(table)};
  }
  Table ToTable() const { return columns.Decode(schema); }
};

/// Set projection I[X] on codes: gather the X columns, dedup rows by
/// code hash (first-occurrence order, matching ProjectSet exactly).
/// With a pool the column gather, the distinct-row emission, and the
/// row gather run chunk-parallel (identical result).
Result<EncodedRelation> ProjectSetEncoded(const TableSchema& schema,
                                          const EncodedTable& enc,
                                          const AttributeSet& x,
                                          const std::string& name,
                                          ThreadPool* pool = nullptr);

/// Multiset projection I[[X]] on codes: a column gather, no row copy
/// (parallel over columns with a pool).
Result<EncodedRelation> ProjectMultisetEncoded(const TableSchema& schema,
                                               const EncodedTable& enc,
                                               const AttributeSet& x,
                                               const std::string& name,
                                               ThreadPool* pool = nullptr);

/// Projects onto every component of `d` (the encoded ProjectAll).
Result<std::vector<EncodedRelation>> ProjectAllEncoded(
    const TableSchema& schema, const EncodedTable& enc,
    const Decomposition& d, ThreadPool* pool = nullptr);

/// Natural equality join on codes (common columns by name; identical
/// values, ⊥ = ⊥ included — Theorem 11 semantics). The right side's
/// common-column codes are translated into the left side's code space,
/// then the join runs as a morsel-driven pipeline: a flat CSR hash
/// index over the right rows (core/code_hash_index.h, built with a
/// parallel count/prefix/fill pass), and a two-phase probe
/// (util/parallel.h ParallelEmit) whose count pass sizes each left-row
/// morsel's output window and whose fill pass writes the joined code
/// columns directly into a pre-sized EncodedTable — no intermediate
/// match-pair list is ever materialized. A join with no common columns
/// takes a dedicated cartesian path (row-count products, sequential
/// fills) instead of funnelling every row through one hash bucket.
/// The emitted row order — left-major, right rows ascending within a
/// left row — is identical at every thread count.
Result<EncodedRelation> EqualityJoinEncoded(const TableSchema& left_schema,
                                            const EncodedTable& left,
                                            const TableSchema& right_schema,
                                            const EncodedTable& right,
                                            const std::string& name,
                                            const ParallelOptions& par = {});

/// Shared-pool variant for callers composing several joins/projections
/// (`nullptr` runs serial). Same result, pool construction amortized.
Result<EncodedRelation> EqualityJoinEncoded(const TableSchema& left_schema,
                                            const EncodedTable& left,
                                            const TableSchema& right_schema,
                                            const EncodedTable& right,
                                            const std::string& name,
                                            ThreadPool* pool);

inline Result<EncodedRelation> EqualityJoinEncoded(
    const EncodedRelation& left, const EncodedRelation& right,
    const std::string& name, const ParallelOptions& par = {}) {
  return EqualityJoinEncoded(left.schema, left.columns, right.schema,
                             right.columns, name, par);
}

/// Reconstructs the instance from the projections of `d` with the
/// encoded equality join (the encoded JoinComponents). Components are
/// folded smallest-output-schema-first (stable tie-break by declaration
/// index) to keep intermediate join widths small; the result's column
/// order and schema still match the declaration-order fold exactly (the
/// Algorithm-3 recombination contract), only the row order may differ.
Result<EncodedRelation> JoinComponentsEncoded(const TableSchema& schema,
                                              const EncodedTable& enc,
                                              const Decomposition& d,
                                              const ParallelOptions& par = {});

/// True when the two fully encoded tables hold identical row multisets
/// under VALUE semantics (columns paired positionally; the dictionaries
/// may differ — b's codes are carried through a translation map into
/// a's code space before comparing).
bool SameMultisetEncoded(const EncodedTable& a, const EncodedTable& b);

/// The encoded IsLosslessForInstance: joins the projections of `d` and
/// compares against `enc` as a multiset, entirely on codes. `enc` must
/// be a full encoding of the instance over `schema`.
Result<bool> IsLosslessForInstanceEncoded(const TableSchema& schema,
                                          const EncodedTable& enc,
                                          const Decomposition& d,
                                          const ParallelOptions& par = {});

}  // namespace sqlnf

#endif  // SQLNF_DECOMPOSITION_ENCODED_OPS_H_
