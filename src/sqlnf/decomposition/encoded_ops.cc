#include "sqlnf/decomposition/encoded_ops.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <utility>

#include "sqlnf/core/code_hash_index.h"

namespace sqlnf {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

std::vector<AttributeId> ToColumnList(const AttributeSet& x) {
  std::vector<AttributeId> cols;
  cols.reserve(x.size());
  for (AttributeId a : x) cols.push_back(a);
  return cols;
}

}  // namespace

Result<EncodedRelation> ProjectMultisetEncoded(const TableSchema& schema,
                                               const EncodedTable& enc,
                                               const AttributeSet& x,
                                               const std::string& name,
                                               ThreadPool* pool) {
  SQLNF_ASSIGN_OR_RETURN(TableSchema out_schema, schema.Project(x, name));
  return EncodedRelation{std::move(out_schema),
                         enc.GatherColumns(ToColumnList(x), pool)};
}

Result<EncodedRelation> ProjectSetEncoded(const TableSchema& schema,
                                          const EncodedTable& enc,
                                          const AttributeSet& x,
                                          const std::string& name,
                                          ThreadPool* pool) {
  SQLNF_ASSIGN_OR_RETURN(TableSchema out_schema, schema.Project(x, name));
  EncodedTable gathered = enc.GatherColumns(ToColumnList(x), pool);
  std::vector<int> first = gathered.DistinctRows(pool);
  return EncodedRelation{std::move(out_schema),
                         gathered.GatherRows(first, pool)};
}

Result<std::vector<EncodedRelation>> ProjectAllEncoded(
    const TableSchema& schema, const EncodedTable& enc,
    const Decomposition& d, ThreadPool* pool) {
  SQLNF_RETURN_NOT_OK(d.Validate(schema));
  std::vector<EncodedRelation> out;
  out.reserve(d.components.size());
  for (size_t i = 0; i < d.components.size(); ++i) {
    const Component& c = d.components[i];
    std::string name =
        c.name.empty() ? schema.name() + "_" + std::to_string(i) : c.name;
    if (c.multiset) {
      SQLNF_ASSIGN_OR_RETURN(EncodedRelation r,
                             ProjectMultisetEncoded(schema, enc, c.attrs,
                                                    name, pool));
      out.push_back(std::move(r));
    } else {
      SQLNF_ASSIGN_OR_RETURN(EncodedRelation r,
                             ProjectSetEncoded(schema, enc, c.attrs, name,
                                               pool));
      out.push_back(std::move(r));
    }
  }
  return out;
}

Result<EncodedRelation> EqualityJoinEncoded(const TableSchema& ls,
                                            const EncodedTable& left_cols,
                                            const TableSchema& rs,
                                            const EncodedTable& right_cols,
                                            const std::string& name,
                                            ThreadPool* pool) {
  // Column plan identical to the row-major EqualityJoin: all left
  // columns, then right-only; common columns pair up by name.
  std::vector<std::pair<AttributeId, AttributeId>> common;  // (l, r)
  std::vector<AttributeId> right_only;
  std::vector<std::string> out_names;
  std::vector<std::string> out_not_null;
  for (AttributeId l = 0; l < ls.num_attributes(); ++l) {
    out_names.push_back(ls.attribute_name(l));
    if (ls.nfs().Contains(l)) out_not_null.push_back(ls.attribute_name(l));
  }
  for (AttributeId r = 0; r < rs.num_attributes(); ++r) {
    auto l = ls.FindAttribute(rs.attribute_name(r));
    if (l.ok()) {
      common.emplace_back(l.value(), r);
    } else {
      right_only.push_back(r);
      out_names.push_back(rs.attribute_name(r));
      if (rs.nfs().Contains(r)) {
        out_not_null.push_back(rs.attribute_name(r));
      }
    }
  }
  SQLNF_ASSIGN_OR_RETURN(TableSchema out_schema,
                         TableSchema::Make(name, out_names, out_not_null));

  const int left_rows = left_cols.num_rows();
  const int right_rows = right_cols.num_rows();
  const int num_left_out = ls.num_attributes();

  // Output layout: every left column, then the right-only columns, each
  // keeping its source dictionary. AllocateTarget pre-sizes the code
  // vectors once the count pass has fixed the row total; the fill pass
  // writes codes straight into them.
  std::vector<std::pair<const EncodedTable*, AttributeId>> sources;
  sources.reserve(num_left_out + right_only.size());
  for (AttributeId l = 0; l < num_left_out; ++l) {
    sources.emplace_back(&left_cols, l);
  }
  for (AttributeId r : right_only) sources.emplace_back(&right_cols, r);
  const size_t num_out = sources.size();

  std::optional<EncodedTable> out;
  std::vector<uint32_t*> dst(num_out, nullptr);
  std::vector<const uint32_t*> src(num_out, nullptr);
  for (size_t c = 0; c < num_out; ++c) {
    src[c] = sources[c].first->column(sources[c].second).data();
  }
  auto allocate_out = [&](int64_t total) -> Status {
    if (total > std::numeric_limits<int>::max()) {
      return Status::Invalid("join result exceeds 2^31 rows");
    }
    out.emplace(EncodedTable::AllocateTarget(sources,
                                             static_cast<int>(total)));
    for (size_t c = 0; c < num_out; ++c) {
      dst[c] = out->mutable_codes(static_cast<AttributeId>(c));
    }
    return Status::OK();
  };
  Status alloc_status = Status::OK();

  if (common.empty()) {
    // No shared columns: the join is the full cartesian product. The
    // hash path would send every row through a single bucket; instead
    // the output shape is known up front — left-major, right rows
    // ascending, exactly the order the degenerate hash probe emitted —
    // and each left morsel fills its own window with sequential copies.
    const int64_t total =
        static_cast<int64_t>(left_rows) * static_cast<int64_t>(right_rows);
    SQLNF_RETURN_NOT_OK(allocate_out(total));
    auto fill = [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        const int64_t base = i * right_rows;
        for (size_t c = 0; c < static_cast<size_t>(num_left_out); ++c) {
          // One left code replicated across the row's whole window.
          std::fill(dst[c] + base, dst[c] + base + right_rows, src[c][i]);
        }
        for (size_t c = num_left_out; c < num_out; ++c) {
          std::copy(src[c], src[c] + right_rows, dst[c] + base);
        }
      }
    };
    if (pool != nullptr && left_rows > 1) {
      ParallelFor(*pool, 0, left_rows, fill);
    } else {
      fill(0, left_rows);
    }
    out->RecountNulls(pool);
    return EncodedRelation{std::move(out_schema), std::move(*out)};
  }

  // Carry the right side's common-column codes into the left side's code
  // space once per dictionary entry. kNullCode passes through (⊥ matches
  // only ⊥); a value the left never saw becomes kMissingCode, which
  // matches no left code — exactly the equality-join semantics. The
  // translation map is O(dictionary); the per-row carry loop is the
  // rows-sized part and runs chunk-parallel.
  std::vector<std::vector<uint32_t>> rkey(common.size());
  for (size_t k = 0; k < common.size(); ++k) {
    const std::vector<uint32_t> map = right_cols.TranslationTo(
        common[k].second, left_cols, common[k].first);
    std::vector<uint32_t>& col = rkey[k];
    col.resize(right_rows);
    const std::vector<uint32_t>& codes =
        right_cols.column(common[k].second);
    auto carry = [&](int64_t begin, int64_t end) {
      for (int64_t j = begin; j < end; ++j) {
        col[j] = codes[j] == EncodedTable::kNullCode
                     ? EncodedTable::kNullCode
                     : map[codes[j]];
      }
    };
    if (pool != nullptr && right_rows > 1) {
      ParallelFor(*pool, 0, right_rows, carry);
    } else {
      carry(0, right_rows);
    }
  }

  // CSR hash index over the carried right keys (count → prefix → fill,
  // chunk-parallel; buckets list rows ascending at any thread count).
  std::vector<const std::vector<uint32_t>*> right_keys;
  right_keys.reserve(common.size());
  for (const std::vector<uint32_t>& col : rkey) right_keys.push_back(&col);
  const CodeHashIndex index(right_keys, right_rows, pool);

  std::vector<const std::vector<uint32_t>*> left_keys;
  left_keys.reserve(common.size());
  for (size_t k = 0; k < common.size(); ++k) {
    left_keys.push_back(&left_cols.column(common[k].first));
  }

  // The probe kernel both passes share: visit row i's matches in bucket
  // (= ascending right-row) order. The caller supplies row i's key
  // hash — both passes batch-hash their probe rows tile-wise through
  // CodeHashIndex::HashRows (SIMD FNV mixing) instead of re-walking
  // the key columns row-at-a-time.
  auto for_matches = [&](int i, uint64_t hash, auto&& body) {
    const CodeHashIndex::Range bucket = index.Bucket(hash);
    for (const int* p = bucket.begin; p != bucket.end; ++p) {
      const int j = *p;
      bool match = true;
      for (size_t k = 0; k < common.size(); ++k) {
        if ((*left_keys[k])[i] != rkey[k][j]) {
          match = false;
          break;
        }
      }
      if (match) body(j);
    }
  };
  constexpr int kProbeTile = 512;

  // Two-phase morsel probe: count sizes each chunk's output window, the
  // prefix sum inside ParallelEmit fixes deterministic chunk-ordered
  // offsets, and fill writes the joined code columns directly into the
  // pre-sized output — left-major, ascending right rows within a left
  // row, so the emitted order is identical at every thread count.
  ParallelEmit(
      pool, 0, left_rows,
      [&](int64_t begin, int64_t end) {
        int64_t n = 0;
        uint64_t hashes[kProbeTile];
        for (int64_t at = begin; at < end; at += kProbeTile) {
          const int len = static_cast<int>(
              std::min<int64_t>(kProbeTile, end - at));
          CodeHashIndex::HashRows(left_keys, static_cast<int>(at),
                                  static_cast<int>(at) + len, hashes);
          for (int i = 0; i < len; ++i) {
            for_matches(static_cast<int>(at) + i, hashes[i],
                        [&](int) { ++n; });
          }
        }
        return n;
      },
      [&](int64_t total) { alloc_status = allocate_out(total); },
      [&](int64_t begin, int64_t end, int64_t offset) {
        if (!alloc_status.ok()) return;
        uint64_t hashes[kProbeTile];
        for (int64_t at = begin; at < end; at += kProbeTile) {
          const int len = static_cast<int>(
              std::min<int64_t>(kProbeTile, end - at));
          CodeHashIndex::HashRows(left_keys, static_cast<int>(at),
                                  static_cast<int>(at) + len, hashes);
          for (int ti = 0; ti < len; ++ti) {
            const int64_t i = at + ti;
            for_matches(static_cast<int>(i), hashes[ti], [&](int j) {
              for (size_t c = 0; c < static_cast<size_t>(num_left_out);
                   ++c) {
                dst[c][offset] = src[c][i];
              }
              for (size_t c = num_left_out; c < num_out; ++c) {
                dst[c][offset] = src[c][j];
              }
              ++offset;
            });
          }
        }
      });
  SQLNF_RETURN_NOT_OK(alloc_status);
  out->RecountNulls(pool);
  return EncodedRelation{std::move(out_schema), std::move(*out)};
}

Result<EncodedRelation> EqualityJoinEncoded(const TableSchema& ls,
                                            const EncodedTable& left_cols,
                                            const TableSchema& rs,
                                            const EncodedTable& right_cols,
                                            const std::string& name,
                                            const ParallelOptions& par) {
  if (par.threads > 1) {
    ThreadPool pool(par.threads);
    return EqualityJoinEncoded(ls, left_cols, rs, right_cols, name, &pool);
  }
  return EqualityJoinEncoded(ls, left_cols, rs, right_cols, name,
                             static_cast<ThreadPool*>(nullptr));
}

Result<EncodedRelation> JoinComponentsEncoded(const TableSchema& schema,
                                              const EncodedTable& enc,
                                              const Decomposition& d,
                                              const ParallelOptions& par) {
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (par.threads > 1) {
    pool_storage.emplace(par.threads);
    pool = &*pool_storage;
  }
  SQLNF_ASSIGN_OR_RETURN(std::vector<EncodedRelation> parts,
                         ProjectAllEncoded(schema, enc, d, pool));
  if (parts.size() == 1) return std::move(parts[0]);

  // The declaration-order fold's output layout (first occurrence of
  // each attribute across components, NOT NULL taken from the first
  // component carrying it) is the contract callers align against —
  // record it before reordering the fold.
  std::vector<std::string> canon_names;
  std::vector<std::string> canon_not_null;
  for (const EncodedRelation& part : parts) {
    for (AttributeId a = 0; a < part.schema.num_attributes(); ++a) {
      const std::string& attr = part.schema.attribute_name(a);
      if (std::find(canon_names.begin(), canon_names.end(), attr) !=
          canon_names.end()) {
        continue;
      }
      canon_names.push_back(attr);
      if (part.schema.nfs().Contains(a)) canon_not_null.push_back(attr);
    }
  }

  // Fold smallest-output-schema-first (stable tie-break by declaration
  // index): narrow components join early, so the Algorithm-3
  // recombination carries thin intermediates instead of dragging the
  // widest component through every step.
  std::vector<size_t> order(parts.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return parts[a].schema.num_attributes() < parts[b].schema.num_attributes();
  });

  EncodedRelation joined = std::move(parts[order[0]]);
  for (size_t i = 1; i < order.size(); ++i) {
    SQLNF_ASSIGN_OR_RETURN(
        joined, EqualityJoinEncoded(joined.schema, joined.columns,
                                    parts[order[i]].schema,
                                    parts[order[i]].columns,
                                    schema.name() + "_joined", pool));
  }

  // Restore the declaration-order column layout.
  SQLNF_ASSIGN_OR_RETURN(
      TableSchema canon_schema,
      TableSchema::Make(schema.name() + "_joined", canon_names,
                        canon_not_null));
  std::vector<AttributeId> mapping;
  mapping.reserve(canon_names.size());
  for (const std::string& attr : canon_names) {
    SQLNF_ASSIGN_OR_RETURN(AttributeId id,
                           joined.schema.FindAttribute(attr));
    mapping.push_back(id);
  }
  return EncodedRelation{std::move(canon_schema),
                         joined.columns.GatherColumns(mapping, pool)};
}

bool SameMultisetEncoded(const EncodedTable& a, const EncodedTable& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  const int cols = a.num_columns();
  const int rows = a.num_rows();

  // b's codes carried into a's code space; a row of b holding a value a
  // never saw translates to kMissingCode and can match nothing.
  std::vector<std::vector<uint32_t>> trans(cols);
  for (AttributeId col = 0; col < cols; ++col) {
    trans[col] = b.TranslationTo(col, a, col);
  }
  auto b_code = [&](AttributeId col, int row) {
    const uint32_t c = b.code(col, row);
    return c == EncodedTable::kNullCode ? EncodedTable::kNullCode
                                        : trans[col][c];
  };

  // Multiset compare by hash bucket: count a's rows, then drain with b's.
  struct Entry {
    int row;    // representative row id in a
    int count;  // multiplicity not yet matched
  };
  std::unordered_map<uint64_t, std::vector<Entry>> buckets;
  buckets.reserve(static_cast<size_t>(rows));
  auto hash_a = [&](int row) {
    uint64_t h = kFnvOffset;
    for (AttributeId col = 0; col < cols; ++col) {
      h ^= a.code(col, row);
      h *= kFnvPrime;
    }
    return h;
  };
  for (int i = 0; i < rows; ++i) {
    std::vector<Entry>& bucket = buckets[hash_a(i)];
    bool found = false;
    for (Entry& e : bucket) {
      bool same = true;
      for (AttributeId col = 0; col < cols; ++col) {
        if (a.code(col, i) != a.code(col, e.row)) {
          same = false;
          break;
        }
      }
      if (same) {
        ++e.count;
        found = true;
        break;
      }
    }
    if (!found) bucket.push_back({i, 1});
  }
  for (int j = 0; j < rows; ++j) {
    uint64_t h = kFnvOffset;
    for (AttributeId col = 0; col < cols; ++col) {
      h ^= b_code(col, j);
      h *= kFnvPrime;
    }
    auto it = buckets.find(h);
    if (it == buckets.end()) return false;
    bool matched = false;
    for (Entry& e : it->second) {
      bool same = true;
      for (AttributeId col = 0; col < cols; ++col) {
        if (a.code(col, e.row) != b_code(col, j)) {
          same = false;
          break;
        }
      }
      if (same) {
        if (e.count == 0) return false;
        --e.count;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;  // equal row totals ⟹ every count drained to zero
}

Result<bool> IsLosslessForInstanceEncoded(const TableSchema& schema,
                                          const EncodedTable& enc,
                                          const Decomposition& d,
                                          const ParallelOptions& par) {
  SQLNF_ASSIGN_OR_RETURN(EncodedRelation joined,
                         JoinComponentsEncoded(schema, enc, d, par));
  if (joined.columns.num_rows() != enc.num_rows()) return false;
  // Align the join's component-ordered columns with the original schema,
  // then compare multisets on codes.
  std::vector<AttributeId> mapping;  // original id -> joined id
  mapping.reserve(schema.num_attributes());
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    SQLNF_ASSIGN_OR_RETURN(
        AttributeId j, joined.schema.FindAttribute(schema.attribute_name(a)));
    mapping.push_back(j);
  }
  return SameMultisetEncoded(enc, joined.columns.GatherColumns(mapping));
}

}  // namespace sqlnf
