#include "sqlnf/decomposition/encoded_ops.h"

#include <cstdint>
#include <unordered_map>
#include <utility>

namespace sqlnf {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

std::vector<AttributeId> ToColumnList(const AttributeSet& x) {
  std::vector<AttributeId> cols;
  cols.reserve(x.size());
  for (AttributeId a : x) cols.push_back(a);
  return cols;
}

}  // namespace

Result<EncodedRelation> ProjectMultisetEncoded(const TableSchema& schema,
                                               const EncodedTable& enc,
                                               const AttributeSet& x,
                                               const std::string& name) {
  SQLNF_ASSIGN_OR_RETURN(TableSchema out_schema, schema.Project(x, name));
  return EncodedRelation{std::move(out_schema),
                         enc.GatherColumns(ToColumnList(x))};
}

Result<EncodedRelation> ProjectSetEncoded(const TableSchema& schema,
                                          const EncodedTable& enc,
                                          const AttributeSet& x,
                                          const std::string& name) {
  SQLNF_ASSIGN_OR_RETURN(TableSchema out_schema, schema.Project(x, name));
  EncodedTable gathered = enc.GatherColumns(ToColumnList(x));
  std::vector<int> first = gathered.DistinctRows();
  return EncodedRelation{std::move(out_schema), gathered.GatherRows(first)};
}

Result<std::vector<EncodedRelation>> ProjectAllEncoded(
    const TableSchema& schema, const EncodedTable& enc,
    const Decomposition& d) {
  SQLNF_RETURN_NOT_OK(d.Validate(schema));
  std::vector<EncodedRelation> out;
  out.reserve(d.components.size());
  for (size_t i = 0; i < d.components.size(); ++i) {
    const Component& c = d.components[i];
    std::string name =
        c.name.empty() ? schema.name() + "_" + std::to_string(i) : c.name;
    if (c.multiset) {
      SQLNF_ASSIGN_OR_RETURN(EncodedRelation r,
                             ProjectMultisetEncoded(schema, enc, c.attrs,
                                                    name));
      out.push_back(std::move(r));
    } else {
      SQLNF_ASSIGN_OR_RETURN(EncodedRelation r,
                             ProjectSetEncoded(schema, enc, c.attrs, name));
      out.push_back(std::move(r));
    }
  }
  return out;
}

Result<EncodedRelation> EqualityJoinEncoded(const TableSchema& ls,
                                            const EncodedTable& left_cols,
                                            const TableSchema& rs,
                                            const EncodedTable& right_cols,
                                            const std::string& name,
                                            const ParallelOptions& par) {

  // Column plan identical to the row-major EqualityJoin: all left
  // columns, then right-only; common columns pair up by name.
  std::vector<std::pair<AttributeId, AttributeId>> common;  // (l, r)
  std::vector<AttributeId> right_only;
  std::vector<std::string> out_names;
  std::vector<std::string> out_not_null;
  for (AttributeId l = 0; l < ls.num_attributes(); ++l) {
    out_names.push_back(ls.attribute_name(l));
    if (ls.nfs().Contains(l)) out_not_null.push_back(ls.attribute_name(l));
  }
  for (AttributeId r = 0; r < rs.num_attributes(); ++r) {
    auto l = ls.FindAttribute(rs.attribute_name(r));
    if (l.ok()) {
      common.emplace_back(l.value(), r);
    } else {
      right_only.push_back(r);
      out_names.push_back(rs.attribute_name(r));
      if (rs.nfs().Contains(r)) {
        out_not_null.push_back(rs.attribute_name(r));
      }
    }
  }
  SQLNF_ASSIGN_OR_RETURN(TableSchema out_schema,
                         TableSchema::Make(name, out_names, out_not_null));

  // Carry the right side's common-column codes into the left side's code
  // space once per dictionary entry. kNullCode passes through (⊥ matches
  // only ⊥); a value the left never saw becomes kMissingCode, which
  // matches no left code — exactly the equality-join semantics.
  const int right_rows = right_cols.num_rows();
  std::vector<std::vector<uint32_t>> rkey(common.size());
  for (size_t k = 0; k < common.size(); ++k) {
    const std::vector<uint32_t> map = right_cols.TranslationTo(
        common[k].second, left_cols, common[k].first);
    std::vector<uint32_t>& col = rkey[k];
    col.resize(right_rows);
    const std::vector<uint32_t>& codes =
        right_cols.column(common[k].second);
    for (int j = 0; j < right_rows; ++j) {
      col[j] = codes[j] == EncodedTable::kNullCode ? EncodedTable::kNullCode
                                                   : map[codes[j]];
    }
  }

  auto hash_right = [&](int j) {
    uint64_t h = kFnvOffset;
    for (size_t k = 0; k < common.size(); ++k) {
      h ^= rkey[k][j];
      h *= kFnvPrime;
    }
    return h;
  };
  auto hash_left = [&](int i) {
    uint64_t h = kFnvOffset;
    for (size_t k = 0; k < common.size(); ++k) {
      h ^= left_cols.code(common[k].first, i);
      h *= kFnvPrime;
    }
    return h;
  };

  std::unordered_map<uint64_t, std::vector<int>> index;
  index.reserve(static_cast<size_t>(right_rows));
  for (int j = 0; j < right_rows; ++j) index[hash_right(j)].push_back(j);

  // Probe left rows; emitted order is left-major with right buckets in
  // insertion order — identical at any thread count because chunks fold
  // left-to-right.
  using Matches = std::vector<std::pair<int, int>>;
  auto probe = [&](int64_t begin, int64_t end) {
    Matches m;
    for (int64_t i = begin; i < end; ++i) {
      auto it = index.find(hash_left(static_cast<int>(i)));
      if (it == index.end()) continue;
      for (int j : it->second) {
        bool match = true;
        for (size_t k = 0; k < common.size(); ++k) {
          if (left_cols.code(common[k].first, static_cast<int>(i)) !=
              rkey[k][j]) {
            match = false;
            break;
          }
        }
        if (match) m.emplace_back(static_cast<int>(i), j);
      }
    }
    return m;
  };

  const int left_rows = left_cols.num_rows();
  Matches matches;
  if (par.threads > 1 && left_rows > 1) {
    ThreadPool pool(par.threads);
    matches = ParallelReduce<Matches>(
        pool, 0, left_rows, Matches{}, probe,
        [](Matches acc, Matches part) {
          acc.insert(acc.end(), part.begin(), part.end());
          return acc;
        });
  } else {
    matches = probe(0, left_rows);
  }

  std::vector<int> lrows;
  std::vector<int> rrows;
  lrows.reserve(matches.size());
  rrows.reserve(matches.size());
  for (const auto& [i, j] : matches) {
    lrows.push_back(i);
    rrows.push_back(j);
  }
  EncodedTable out_cols =
      right_only.empty()
          ? left_cols.GatherRows(lrows)
          : EncodedTable::Concat(
                left_cols.GatherRows(lrows),
                right_cols.GatherColumns(right_only).GatherRows(rrows));
  return EncodedRelation{std::move(out_schema), std::move(out_cols)};
}

Result<EncodedRelation> JoinComponentsEncoded(const TableSchema& schema,
                                              const EncodedTable& enc,
                                              const Decomposition& d,
                                              const ParallelOptions& par) {
  SQLNF_ASSIGN_OR_RETURN(std::vector<EncodedRelation> parts,
                         ProjectAllEncoded(schema, enc, d));
  EncodedRelation joined = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    SQLNF_ASSIGN_OR_RETURN(
        joined, EqualityJoinEncoded(joined, parts[i],
                                    schema.name() + "_joined", par));
  }
  return joined;
}

bool SameMultisetEncoded(const EncodedTable& a, const EncodedTable& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  const int cols = a.num_columns();
  const int rows = a.num_rows();

  // b's codes carried into a's code space; a row of b holding a value a
  // never saw translates to kMissingCode and can match nothing.
  std::vector<std::vector<uint32_t>> trans(cols);
  for (AttributeId col = 0; col < cols; ++col) {
    trans[col] = b.TranslationTo(col, a, col);
  }
  auto b_code = [&](AttributeId col, int row) {
    const uint32_t c = b.code(col, row);
    return c == EncodedTable::kNullCode ? EncodedTable::kNullCode
                                        : trans[col][c];
  };

  // Multiset compare by hash bucket: count a's rows, then drain with b's.
  struct Entry {
    int row;    // representative row id in a
    int count;  // multiplicity not yet matched
  };
  std::unordered_map<uint64_t, std::vector<Entry>> buckets;
  buckets.reserve(static_cast<size_t>(rows));
  auto hash_a = [&](int row) {
    uint64_t h = kFnvOffset;
    for (AttributeId col = 0; col < cols; ++col) {
      h ^= a.code(col, row);
      h *= kFnvPrime;
    }
    return h;
  };
  for (int i = 0; i < rows; ++i) {
    std::vector<Entry>& bucket = buckets[hash_a(i)];
    bool found = false;
    for (Entry& e : bucket) {
      bool same = true;
      for (AttributeId col = 0; col < cols; ++col) {
        if (a.code(col, i) != a.code(col, e.row)) {
          same = false;
          break;
        }
      }
      if (same) {
        ++e.count;
        found = true;
        break;
      }
    }
    if (!found) bucket.push_back({i, 1});
  }
  for (int j = 0; j < rows; ++j) {
    uint64_t h = kFnvOffset;
    for (AttributeId col = 0; col < cols; ++col) {
      h ^= b_code(col, j);
      h *= kFnvPrime;
    }
    auto it = buckets.find(h);
    if (it == buckets.end()) return false;
    bool matched = false;
    for (Entry& e : it->second) {
      bool same = true;
      for (AttributeId col = 0; col < cols; ++col) {
        if (a.code(col, e.row) != b_code(col, j)) {
          same = false;
          break;
        }
      }
      if (same) {
        if (e.count == 0) return false;
        --e.count;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;  // equal row totals ⟹ every count drained to zero
}

Result<bool> IsLosslessForInstanceEncoded(const TableSchema& schema,
                                          const EncodedTable& enc,
                                          const Decomposition& d,
                                          const ParallelOptions& par) {
  SQLNF_ASSIGN_OR_RETURN(EncodedRelation joined,
                         JoinComponentsEncoded(schema, enc, d, par));
  if (joined.columns.num_rows() != enc.num_rows()) return false;
  // Align the join's component-ordered columns with the original schema,
  // then compare multisets on codes.
  std::vector<AttributeId> mapping;  // original id -> joined id
  mapping.reserve(schema.num_attributes());
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    SQLNF_ASSIGN_OR_RETURN(
        AttributeId j, joined.schema.FindAttribute(schema.attribute_name(a)));
    mapping.push_back(j);
  }
  return SameMultisetEncoded(enc, joined.columns.GatherColumns(mapping));
}

}  // namespace sqlnf
